package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Topology selects the interconnect model.
type Topology int

// Interconnect models. The paper's processor interconnect "is modeled as a
// fixed-delay network" (§5) — that is TopoFixed, the default. TopoMesh2D
// is an extension: nodes on a near-square 2-D mesh with NetTime charged
// per hop, which makes home-node distance visible in remote latencies.
const (
	TopoFixed Topology = iota
	TopoMesh2D
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case TopoFixed:
		return "fixed-delay"
	case TopoMesh2D:
		return "mesh-2d"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// meshDims returns the mesh shape for n nodes: the most square rows×cols
// factorization with rows*cols >= n.
func meshDims(n int) (rows, cols int) {
	rows = 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// hops returns the Manhattan distance between two nodes on the mesh.
func (m *Machine) hops(a, b int) int {
	if a == b {
		return 0
	}
	_, cols := meshDims(m.P.Nodes)
	ra, ca := a/cols, a%cols
	rb, cb := b/cols, b%cols
	d := ra - rb
	if d < 0 {
		d = -d
	}
	e := ca - cb
	if e < 0 {
		e = -e
	}
	return d + e
}

// meshExtra returns the additional round-trip propagation latency for a
// transaction between two nodes beyond the fixed-delay model's single-hop
// assumption (zero under TopoFixed or for adjacent/equal nodes).
func (m *Machine) meshExtra(a, b int) sim.Time {
	if m.P.Topology != TopoMesh2D || a == b {
		return 0
	}
	h := m.hops(a, b)
	if h <= 1 {
		return 0
	}
	return m.P.Cyc(2 * (h - 1) * m.P.NetNS)
}

package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/faults"
	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PairRegs models the shared hardware registers of a CMP used for A–R
// stream synchronization (paper §2.2: "a shared register (or memory
// location) between the two processors in a CMP"). Accesses cost
// Params.RegAccessCycles and generate no coherence traffic. Counters are
// monotonic so that per-region re-initialization cannot race with a
// lagging partner: the token semaphore of Figure 1 is realized as
// available = Allowance + RBarriers - ABarriers.
type PairRegs struct {
	RBarriers int64 // tokens inserted by the R-stream (barriers passed)
	ABarriers int64 // tokens consumed by the A-stream (barriers skipped)
	Allowance int64 // current region's initial token count
	SysPosted int64 // syscall/scheduling decisions posted by the R-stream
	SysTaken  int64 // decisions consumed by the A-stream
	SchedLo   int64 // published scheduling decision: first iteration
	SchedHi   int64 // published scheduling decision: one past last
	Recover   int64 // recovery request flag (R sets, A clears)
	AIdle     int64 // A-stream abandoned the current region (recovery taken)
	RRegion   int64 // last parallel-region sequence the R-stream picked up
}

// Node is one dual-processor CMP with its slice of global memory.
type Node struct {
	ID    int
	M     *Machine
	L2    *cache.Cache
	Bus   *sim.Resource // intra-node bus
	NIIn  *sim.Resource // network interface, incoming
	NIOut *sim.Resource // network interface, outgoing
	Mem   *sim.Resource // memory controller
	DC    *sim.Resource // home directory controller (NILocalDCTime occupancy)
	Procs [2]*Proc
	Regs  PairRegs
}

// BusIdle reports whether the node bus is free at the current time; the
// slipstream runtime uses this to decide whether a skipped shared store can
// be converted into an exclusive prefetch ("this conversion occurs only
// when ... no resource contention exists", §5.1).
func (n *Node) BusIdle() bool { return n.Bus.BusyUntil() <= n.M.Eng.Now() }

// Proc is one simulated processor. Exactly one Proc executes at a time
// (driven by the sim engine), so simulator state needs no locking.
type Proc struct {
	GID  int // global index: node*2 + cpu
	CPU  int // 0 or 1 within the node
	Node *Node
	L1   *cache.Cache
	Ctx  *sim.Context

	// Slipstream wiring (set by the slipstream controller; nil/zero when
	// running in normal modes).
	Role      stats.Role
	Pair      *Proc // partner processor on the same CMP
	SelfInval bool  // A-stream reads send self-invalidation hints

	// Accounting.
	Bd        stats.Breakdown
	cat       stats.Category // category charged for wait cycles
	startTime sim.Time
	endTime   sim.Time
	started   bool
	Loads     uint64
	Stores    uint64
	L2Misses  uint64
	Remote    uint64
}

// Machine is the whole simulated multiprocessor.
type Machine struct {
	P     Params
	Eng   *sim.Engine
	Space *shmem.Space
	Dir   *directory.Directory
	Nodes []*Node
	Procs []*Proc
	Class stats.Class
	Proto ProtoStats
	Trace *trace.Buffer // nil unless Params.TraceCap > 0

	// Faults, when non-nil, injects deterministic hardware-level faults
	// (latency spikes, bus bursts, straggler CMPs) into the timing model.
	// It never touches data or coherence state: faults cost time only.
	Faults *faults.Injector

	lineShift uint

	// sharerScratch backs the invalidation fan-out's sharer list. Exactly
	// one processor executes at a time, so a single machine-wide scratch
	// buffer keeps the directory hot path allocation-free.
	sharerScratch [64]int
}

// New builds a machine from params.
func New(p Params) *Machine {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		P:     p,
		Eng:   sim.NewEngine(),
		Space: shmem.NewSpace(),
		Dir:   directory.New(p.Nodes),
		Trace: trace.New(p.TraceCap),
		Nodes: make([]*Node, 0, p.Nodes),
		Procs: make([]*Proc, 0, 2*p.Nodes),
	}
	for 1<<m.lineShift != p.LineBytes {
		m.lineShift++
	}
	for n := 0; n < p.Nodes; n++ {
		nd := &Node{
			ID:    n,
			M:     m,
			L2:    cache.New(fmt.Sprintf("L2.%d", n), p.L2Bytes, p.L2Assoc, p.LineBytes),
			Bus:   sim.NewResource(fmt.Sprintf("bus.%d", n)),
			NIIn:  sim.NewResource(fmt.Sprintf("ni-in.%d", n)),
			NIOut: sim.NewResource(fmt.Sprintf("ni-out.%d", n)),
			Mem:   sim.NewResource(fmt.Sprintf("mem.%d", n)),
			DC:    sim.NewResource(fmt.Sprintf("dc.%d", n)),
		}
		for c := 0; c < 2; c++ {
			pr := &Proc{
				GID:  n*2 + c,
				CPU:  c,
				Node: nd,
				L1:   cache.New(fmt.Sprintf("L1.%d.%d", n, c), p.L1Bytes, p.L1Assoc, p.LineBytes),
				cat:  stats.CatMem,
			}
			nd.Procs[c] = pr
			m.Procs = append(m.Procs, pr)
		}
		m.Nodes = append(m.Nodes, nd)
	}
	return m
}

// LineOf maps an address to its cache line number.
func (m *Machine) LineOf(addr shmem.Addr) uint64 { return uint64(addr) >> m.lineShift }

// procNames holds preformatted context names for every possible processor
// (at most 64 nodes × 2), so Start does not format per run.
var procNames = func() [128]string {
	var names [128]string
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	return names
}()

// Start binds a program body to processor gid; the body begins executing at
// simulation time 0 when Run is called.
func (m *Machine) Start(gid int, body func(*Proc)) {
	p := m.Procs[gid]
	p.Ctx = m.Eng.Spawn(procNames[gid], 0, func(*sim.Context) {
		p.started = true
		p.startTime = m.Eng.Now()
		body(p)
		p.endTime = m.Eng.Now()
	})
}

// Run executes the simulation to completion, then classifies any
// still-resident unused fills (Figure 3/5 "Only" category).
func (m *Machine) Run() error {
	if err := m.Eng.Run(); err != nil {
		return err
	}
	m.finalizeClass()
	return m.CheckCoherence()
}

// finalizeClass flushes classification for fills that were never evicted
// and never referenced by the partner stream before the run ended.
func (m *Machine) finalizeClass() {
	if !m.P.TrackClass {
		return
	}
	for _, nd := range m.Nodes {
		nd.L2.ForEachResident(func(l *cache.Line) {
			m.classifyDrop(l)
		})
	}
}

// CheckCoherence validates directory invariants against L2 contents.
func (m *Machine) CheckCoherence() error {
	var err error
	m.Dir.ForEach(func(line uint64, e *directory.Entry) {
		if err != nil {
			return
		}
		if e2 := e.Check(); e2 != nil {
			err = fmt.Errorf("machine: line %#x: %w", line, e2)
			return
		}
		switch e.State {
		case directory.ModifiedSt:
			l := m.Nodes[e.Owner].L2.Peek(line)
			if l == nil || l.State != cache.Modified {
				err = fmt.Errorf("machine: line %#x: directory owner %d has no modified copy", line, e.Owner)
			}
		case directory.SharedSt:
			for _, n := range e.OtherSharers(-1) {
				l := m.Nodes[n].L2.Peek(line)
				if l == nil || l.State != cache.Shared {
					err = fmt.Errorf("machine: line %#x: directory sharer %d has no shared copy", line, n)
					return
				}
			}
		}
	})
	return err
}

// ---- Processor operations -------------------------------------------------

// Compute charges n busy cycles of computation. On a straggler node (an
// armed fault plan's CMP-slowdown class) every computation pays extra.
func (p *Proc) Compute(n sim.Time) {
	if n == 0 {
		return
	}
	n += p.Node.M.Faults.NodeSlowdown(p.Node.ID, n)
	p.Ctx.Advance(n)
	p.Bd.Add(stats.CatBusy, n)
}

// Wait charges n cycles to the current wait category (used by runtime spin
// loops so that lock/barrier/scheduling/job waits are attributed).
func (p *Proc) Wait(n sim.Time) {
	if n == 0 {
		return
	}
	p.Ctx.Advance(n)
	p.Bd.Add(p.cat, n)
}

// SetCategory sets the category charged for wait cycles and returns the
// previous one. Hot paths bracket waits with a SetCategory/restore pair
// instead of WithCategory so no closure is allocated per operation.
func (p *Proc) SetCategory(c stats.Category) stats.Category {
	old := p.cat
	p.cat = c
	return old
}

// WithCategory runs fn with wait cycles attributed to c.
func (p *Proc) WithCategory(c stats.Category, fn func()) {
	old := p.SetCategory(c)
	fn()
	p.cat = old
}

// Category returns the current wait category.
func (p *Proc) Category() stats.Category { return p.cat }

// Load performs a timed read of addr through the memory hierarchy.
func (p *Proc) Load(addr shmem.Addr) {
	p.Loads++
	lat := p.access(addr, false, false)
	p.trace(trace.Load, addr, int64(lat))
	p.charge(lat)
}

// trace records an access event when tracing is enabled.
func (p *Proc) trace(k trace.Kind, addr shmem.Addr, arg int64) {
	m := p.Node.M
	if m.Trace.Enabled() {
		m.Trace.Add(trace.Event{At: m.Eng.Now(), Proc: p.GID, Kind: k, Line: m.LineOf(addr), Arg: arg})
	}
}

// Store performs a timed write of addr (obtaining exclusive ownership).
// Only timing is modelled here; the caller updates the backing store.
func (p *Proc) Store(addr shmem.Addr) {
	p.Stores++
	lat := p.access(addr, true, false)
	p.trace(trace.Store, addr, int64(lat))
	p.charge(lat)
}

// RMW performs a timed atomic read-modify-write (timing equals a store:
// the line must be held modified).
func (p *Proc) RMW(addr shmem.Addr) {
	p.Stores++
	lat := p.access(addr, true, false)
	p.charge(lat)
}

// Prefetch issues a non-blocking prefetch for addr, exclusive when excl is
// set. The requester is charged only the issue cost; the fill completes in
// the background (its completion time gates later merged accesses). This is
// the operation A-stream shared stores are converted into.
func (p *Proc) Prefetch(addr shmem.Addr, excl bool) {
	lat := p.access(addr, excl, true)
	p.trace(trace.Prefetch, addr, int64(lat))
	p.Compute(1)
}

// charge attributes a memory access latency: the L1-hit portion counts as
// busy work, the remainder as a stall in the current category.
func (p *Proc) charge(lat sim.Time) {
	hit := p.Node.M.P.L1HitCycles
	if lat <= hit {
		p.Ctx.Advance(lat)
		p.Bd.Add(stats.CatBusy, lat)
		return
	}
	p.Ctx.Advance(lat)
	p.Bd.Add(stats.CatBusy, hit)
	p.Bd.Add(p.cat, lat-hit)
}

// ---- The access path -------------------------------------------------------

// access runs one memory operation through L1, L2, and (on L2 miss or
// upgrade) the directory protocol. It updates all coherence state
// synchronously and returns the latency to charge. For prefetches the state
// changes are identical but the caller does not stall.
func (p *Proc) access(addr shmem.Addr, write, prefetch bool) sim.Time {
	m := p.Node.M
	now := m.Eng.Now()
	line := m.LineOf(addr)

	// L1.
	if l1 := p.L1.Lookup(line); l1 != nil {
		if !write || l1.State == cache.Modified {
			p.L1.Hits++
			if l2 := p.Node.L2.Peek(line); l2 != nil {
				p.markPairUse(l2, now)
			}
			return m.P.L1HitCycles
		}
		// Write hit on a Shared L1 line: upgrade through L2.
	}
	p.L1.Misses++

	lat := m.P.L1HitCycles + m.P.L2HitCycles
	l2 := p.Node.L2.Lookup(line)
	if l2 != nil {
		p.Node.L2.Hits++
		// Merge with an in-flight fill for this line.
		if l2.FillDone > now {
			lat += sim.Time(l2.FillDone - now)
			m.Proto.Merged++
		}
		p.markPairUse(l2, now)
		if write && l2.State == cache.Shared {
			lat += p.dirUpgrade(line, now)
			l2.State = cache.Modified
			m.Proto.Upgrades++
		}
	} else {
		p.L2Misses++
		p.Node.L2.Misses++
		var fillLat sim.Time
		l2, fillLat = p.dirFetch(line, write, now)
		lat += fillLat
		// Injected memory-latency spike: the fill takes longer (and, via
		// FillDone below, delays merged accesses), nothing else changes.
		lat += m.Faults.MemSpikeLat(p.GID)
		if m.P.TrackClass && p.Pair != nil {
			l2.FilledBy = p.GID
			if write {
				l2.FillKindV = cache.FillReadEx
			} else {
				l2.FillKindV = cache.FillRead
			}
			l2.Prefetch = prefetch
		}
		l2.FillDone = now + uint64(lat)
	}

	// Maintain the node's two L1s under the (inclusive) L2.
	if write {
		other := p.Node.Procs[1-p.CPU]
		other.L1.Invalidate(line)
		l2.L1Mask = 1 << uint(p.CPU)
		l2.L1Dirty = int8(p.CPU)
	} else {
		if l2.L1Dirty >= 0 && int(l2.L1Dirty) != p.CPU {
			// Other local L1 holds it dirty: it supplies through the L2.
			l2.L1Dirty = -1
		}
		l2.L1Mask |= 1 << uint(p.CPU)
	}
	if !prefetch {
		p.fillL1(line, write)
	}
	return lat
}

// fillL1 installs a line in the L1, handling the victim.
func (p *Proc) fillL1(line uint64, write bool) {
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	if l1 := p.L1.Peek(line); l1 != nil {
		l1.State = st // upgrade in place
		return
	}
	_, victim, ev := p.L1.Insert(line, st)
	if ev {
		// Write-back to L2 is free of charge (intra-CMP); clear tracking.
		if l2 := p.Node.L2.Peek(victim.Tag); l2 != nil {
			l2.L1Mask &^= 1 << uint(p.CPU)
			if l2.L1Dirty == int8(p.CPU) {
				l2.L1Dirty = -1
			}
		}
	}
}

// dirUpgrade handles a store to a line the L2 holds Shared: the home
// directory invalidates the other sharers.
func (p *Proc) dirUpgrade(line uint64, now sim.Time) sim.Time {
	m := p.Node.M
	e := m.Dir.Entry(line)
	home := m.Dir.Home(line)
	others := e.AppendOtherSharers(m.sharerScratch[:0], p.Node.ID)
	// An upgrade is a round trip to the home directory without the memory
	// data fetch.
	var lat sim.Time
	if home != p.Node.ID {
		lat = m.P.Cyc(m.P.RemoteMissNS - m.P.MemNS)
		lat += m.netDelay(p.Node, m.Nodes[home], now)
	} else {
		lat = m.P.Cyc(m.P.LocalMissNS - m.P.MemNS)
		lat += m.busDelay(p.Node, now)
	}
	lat += waitOnly(m.Nodes[home].DC, now, m.P.Cyc(m.P.NILocalDCNS))
	if len(others) > 0 {
		lat += m.P.Cyc(2*m.P.NetNS + len(others)*m.P.InvalPerShNS)
		for _, n := range others {
			m.invalidateNode(m.Nodes[n], line)
		}
		m.Proto.Invals += uint64(len(others))
	}
	e.Sharers = 0
	e.State = directory.Uncached
	e.SetOwner(p.Node.ID)
	return lat
}

// dirFetch handles an L2 miss: a full directory transaction that fills the
// node's L2 and returns (line, latency).
func (p *Proc) dirFetch(line uint64, write bool, now sim.Time) (*cache.Line, sim.Time) {
	m := p.Node.M
	nd := p.Node
	e := m.Dir.Entry(line)
	home := m.Dir.Home(line)
	local := home == nd.ID

	base := m.P.LocalMissNS
	if !local {
		base = m.P.RemoteMissNS
	}
	lat := m.P.Cyc(base)
	lat += m.meshExtra(nd.ID, home)

	// Contention: queueing on the requester bus, the NIs (remote), the home
	// directory controller (NILocalDCTime: the DC is occupied for every
	// transaction against a home line — the classic DSM hot-home
	// bottleneck), and the home memory controller. Occupancy is already
	// part of the base latency, so only the queueing wait is added.
	// Injected bus-contention burst: occupy the requester's bus so this
	// and subsequent transactions queue behind it.
	if burst := m.Faults.BusBurstOcc(nd.ID); burst > 0 {
		nd.Bus.Acquire(now, burst)
	}
	lat += waitOnly(nd.Bus, now, m.P.Cyc(m.P.BusNS))
	if !local {
		lat += waitOnly(nd.NIOut, now, m.P.Cyc(m.P.NIRemoteDCNS))
		lat += waitOnly(m.Nodes[home].NIIn, now, m.P.Cyc(m.P.NIRemoteDCNS))
	}
	lat += waitOnly(m.Nodes[home].DC, now, m.P.Cyc(m.P.NILocalDCNS))
	lat += waitOnly(m.Nodes[home].Mem, now, m.P.Cyc(m.P.MemNS))

	switch e.State {
	case directory.Uncached:
		// Fill from memory.
	case directory.SharedSt:
		if write {
			others := e.AppendOtherSharers(m.sharerScratch[:0], nd.ID)
			if len(others) > 0 {
				lat += m.P.Cyc(2*m.P.NetNS + len(others)*m.P.InvalPerShNS)
				for _, n := range others {
					m.invalidateNode(m.Nodes[n], line)
				}
				m.Proto.Invals += uint64(len(others))
			}
			e.Sharers = 0
			e.State = directory.Uncached
		}
	case directory.ModifiedSt:
		owner := e.Owner
		if owner == nd.ID {
			// Inclusion guarantees the owner's L2 held the line; an L2 miss
			// with local ownership means state corruption.
			panic(fmt.Sprintf("machine: node %d misses line %#x it owns", nd.ID, line))
		}
		lat += m.P.Cyc(m.P.DirtyForwardNS)
		lat += m.meshExtra(home, owner)/2 + m.meshExtra(owner, nd.ID)/2
		lat += waitOnly(m.Nodes[owner].NIOut, now, m.P.Cyc(m.P.NIRemoteDCNS))
		ownerNode := m.Nodes[owner]
		m.Proto.DirtyFwd++
		if !write && p.SelfInval && p.Role == stats.RoleA {
			m.Proto.SelfInvals++
		}
		if write {
			m.Proto.Invals++
		}
		if write || (p.SelfInval && p.Role == stats.RoleA) {
			// Writer takes the only copy; or the A-stream's reference sends
			// a self-invalidation hint, so the producer writes back and
			// drops its copy instead of keeping a shared one.
			m.invalidateNode(ownerNode, line)
			e.ClearOwner()
		} else {
			if l := ownerNode.L2.Peek(line); l != nil {
				l.State = cache.Shared
				if l.L1Dirty >= 0 {
					l.L1Dirty = -1
				}
				// Downgrade the owner's L1 copies to Shared as well.
				for c := 0; c < 2; c++ {
					if l1 := ownerNode.Procs[c].L1.Peek(line); l1 != nil {
						l1.State = cache.Shared
					}
				}
			}
			e.State = directory.SharedSt
			e.Owner = -1
			// Owner remains a sharer.
		}
	}

	// Record the new holder.
	if write {
		e.Sharers = 0
		e.SetOwner(nd.ID)
	} else {
		e.AddSharer(nd.ID)
	}

	// Install in L2, handling the victim.
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	l2, victim, ev := nd.L2.Insert(line, st)
	if ev {
		p.evictL2(victim)
	}
	if !local {
		p.Remote++
		m.Proto.RemoteFills++
	} else {
		m.Proto.LocalFills++
	}
	if m.Trace.Enabled() {
		m.Trace.Add(trace.Event{At: now, Proc: p.GID, Kind: trace.Fill, Line: line, Arg: int64(home)})
	}
	return l2, lat
}

// evictL2 handles an L2 victim: L1 back-invalidation (inclusion), directory
// update, and writeback resource occupancy (off the critical path).
func (p *Proc) evictL2(victim cache.Line) {
	m := p.Node.M
	nd := p.Node
	for c := 0; c < 2; c++ {
		if victim.L1Mask&(1<<uint(c)) != 0 {
			nd.Procs[c].L1.Invalidate(victim.Tag)
		}
	}
	e := m.Dir.Entry(victim.Tag)
	if victim.State == cache.Modified {
		// Writeback consumes home DC and memory bandwidth but does not
		// stall the requester.
		m.Proto.Writebacks++
		home := m.Dir.Home(victim.Tag)
		if m.Trace.Enabled() {
			m.Trace.Add(trace.Event{At: m.Eng.Now(), Proc: nd.ID, Kind: trace.Writeback, Line: victim.Tag, Arg: int64(home)})
		}
		m.Nodes[home].DC.Acquire(m.Eng.Now(), m.P.Cyc(m.P.NILocalDCNS))
		m.Nodes[home].Mem.Acquire(m.Eng.Now(), m.P.Cyc(m.P.MemNS))
		if e.State == directory.ModifiedSt && e.Owner == nd.ID {
			e.ClearOwner()
		}
	} else if e.State == directory.SharedSt {
		e.RemoveSharer(nd.ID)
	}
	m.classifyDrop(&victim)
}

// invalidateNode removes a line from a node's L2 and L1s and classifies an
// unused fill as Only.
func (m *Machine) invalidateNode(nd *Node, line uint64) {
	old, was := nd.L2.Invalidate(line)
	if !was {
		return
	}
	if m.Trace.Enabled() {
		m.Trace.Add(trace.Event{At: m.Eng.Now(), Proc: nd.ID, Kind: trace.Inval, Line: line})
	}
	for c := 0; c < 2; c++ {
		if old.L1Mask&(1<<uint(c)) != 0 {
			nd.Procs[c].L1.Invalidate(line)
			m.Proto.L1BackInvals++
		}
	}
	m.classifyDrop(&old)
}

// markPairUse records a partner-stream touch of a tracked fill.
func (p *Proc) markPairUse(l2 *cache.Line, now sim.Time) {
	m := p.Node.M
	if !m.P.TrackClass || l2.FilledBy < 0 || l2.UsedByPair {
		return
	}
	filler := m.Procs[l2.FilledBy]
	if filler.Pair != p {
		return
	}
	out := stats.OutTimely
	if now < l2.FillDone {
		out = stats.OutLate
	}
	m.Class.Add(filler.Role, kindOf(l2.FillKindV), out)
	l2.UsedByPair = true
}

// classifyDrop records an Only outcome for a tracked fill that is being
// evicted/invalidated (or remains at end of run) without a partner touch.
func (m *Machine) classifyDrop(l *cache.Line) {
	if !m.P.TrackClass || l.FilledBy < 0 || l.UsedByPair {
		return
	}
	filler := m.Procs[l.FilledBy]
	if filler.Pair == nil {
		return
	}
	m.Class.Add(filler.Role, kindOf(l.FillKindV), stats.OutOnly)
}

func kindOf(k cache.FillKind) stats.ReqKind {
	if k == cache.FillReadEx {
		return stats.ReqReadEx
	}
	return stats.ReqRead
}

// busDelay charges the node bus and returns the queueing wait.
func (m *Machine) busDelay(nd *Node, now sim.Time) sim.Time {
	return waitOnly(nd.Bus, now, m.P.Cyc(m.P.BusNS))
}

// netDelay models the queueing component of a round trip to another node:
// bus plus NI waits (propagation time is inside the caller's base latency).
func (m *Machine) netDelay(from, to *Node, now sim.Time) sim.Time {
	w := waitOnly(from.Bus, now, m.P.Cyc(m.P.BusNS))
	w += waitOnly(from.NIOut, now, m.P.Cyc(m.P.NIRemoteDCNS))
	w += waitOnly(to.NIIn, now, m.P.Cyc(m.P.NIRemoteDCNS))
	return w
}

// waitOnly acquires a resource and returns only the queueing-delay portion.
func waitOnly(r *sim.Resource, now, occ sim.Time) sim.Time {
	total := r.Acquire(now, occ)
	return total - occ
}

// WallTime returns the end-to-end simulated time of the last finished
// processor (the parallel execution time).
func (m *Machine) WallTime() sim.Time {
	var t sim.Time
	for _, p := range m.Procs {
		if p.started && p.endTime > t {
			t = p.endTime
		}
	}
	return t
}

// TotalBreakdown sums all processors' breakdowns.
func (m *Machine) TotalBreakdown() stats.Breakdown {
	var b stats.Breakdown
	for _, p := range m.Procs {
		b.AddAll(&p.Bd)
	}
	return b
}

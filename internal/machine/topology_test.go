package machine

import (
	"testing"

	"repro/internal/shmem"
	"repro/internal/sim"
)

func TestMeshDims(t *testing.T) {
	for _, tc := range []struct{ n, rows, cols int }{
		{16, 4, 4}, {4, 2, 2}, {8, 2, 4}, {2, 1, 2}, {9, 3, 3}, {12, 3, 4},
	} {
		r, c := meshDims(tc.n)
		if r != tc.rows || c != tc.cols {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", tc.n, r, c, tc.rows, tc.cols)
		}
	}
}

func TestHops(t *testing.T) {
	p := DefaultParams() // 16 nodes: 4x4
	p.Topology = TopoMesh2D
	m := New(p)
	for _, tc := range []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {3, 12, 6},
	} {
		if got := m.hops(tc.a, tc.b); got != tc.want {
			t.Errorf("hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if m.hops(tc.b, tc.a) != tc.want {
			t.Errorf("hops not symmetric for (%d,%d)", tc.a, tc.b)
		}
	}
}

func TestMeshExtraZeroUnderFixed(t *testing.T) {
	m := New(DefaultParams())
	if m.meshExtra(0, 15) != 0 {
		t.Fatal("fixed topology charged mesh hops")
	}
}

func TestMeshLatencyGrowsWithDistance(t *testing.T) {
	p := DefaultParams()
	p.Topology = TopoMesh2D
	m := New(p)
	// Line homed at node 1 (adjacent) vs node 15 (6 hops) from node 0.
	var near, far sim.Time
	m.Start(0, func(pr *Proc) {
		t0 := pr.Ctx.Now()
		pr.Load(shmem.Addr(1 * m.P.LineBytes)) // home node 1
		near = pr.Ctx.Now() - t0
		t0 = pr.Ctx.Now()
		pr.Load(shmem.Addr(15 * m.P.LineBytes)) // home node 15
		far = pr.Ctx.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	wantExtra := m.P.Cyc(2 * 5 * m.P.NetNS) // (6-1) extra hops each way
	if far != near+wantExtra {
		t.Fatalf("far-near = %d, want %d (near=%d far=%d)", far-near, wantExtra, near, far)
	}
}

func TestTopologyString(t *testing.T) {
	if TopoFixed.String() != "fixed-delay" || TopoMesh2D.String() != "mesh-2d" {
		t.Fatal("topology strings")
	}
}

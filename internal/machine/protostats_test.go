package machine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/shmem"
	"repro/internal/stats"
)

func TestProtoCountsFills(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		p.Load(0)                             // local (home 0)
		p.Load(shmem.Addr(m.P.LineBytes))     // remote (home 1)
		p.Load(shmem.Addr(2 * m.P.LineBytes)) // remote (home 2)
	})
	if m.Proto.LocalFills != 1 || m.Proto.RemoteFills != 2 {
		t.Fatalf("fills local=%d remote=%d, want 1/2", m.Proto.LocalFills, m.Proto.RemoteFills)
	}
	if m.Proto.Fills() != 3 {
		t.Fatalf("total fills = %d", m.Proto.Fills())
	}
}

func TestProtoCountsUpgradeAndInval(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(0, func(p *Proc) {
		p.Load(addr)
		phase = 1
		p.Ctx.SpinUntil(func() bool { return phase == 2 }, 10, nil)
	})
	m.Start(2, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Load(addr)  // both nodes share
		p.Store(addr) // upgrade: invalidates node 0
		phase = 2
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Proto.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", m.Proto.Upgrades)
	}
	if m.Proto.Invals != 1 {
		t.Fatalf("invals = %d, want 1", m.Proto.Invals)
	}
}

func TestProtoCountsDirtyForward(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(0, func(p *Proc) {
		p.Store(addr)
		phase = 1
	})
	m.Start(2, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Load(addr) // 3-hop from dirty owner
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Proto.DirtyFwd != 1 {
		t.Fatalf("dirty forwards = %d, want 1", m.Proto.DirtyFwd)
	}
}

func TestProtoCountsMergedAndWriteback(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		addr := shmem.Addr(m.P.LineBytes)
		p.Prefetch(addr, false)
		p.Load(addr) // merges into the in-flight fill
		// Force writebacks: write more lines mapping to one set than ways.
		setStride := uint64(m.P.LineBytes) * uint64(m.Nodes[0].L2.Sets())
		for w := 0; w <= m.P.L2Assoc; w++ {
			p.Store(shmem.Addr(uint64(w)*setStride + 4096))
		}
	})
	if m.Proto.Merged == 0 {
		t.Fatal("no merged access counted")
	}
	if m.Proto.Writebacks == 0 {
		t.Fatal("no writeback counted despite set overflow")
	}
}

func TestProtoString(t *testing.T) {
	var s ProtoStats
	s.LocalFills = 3
	s.Upgrades = 2
	out := s.String()
	if !strings.Contains(out, "local=3") || !strings.Contains(out, "upgrades=2") {
		t.Fatalf("String() = %q", out)
	}
}

func TestNodeReports(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Load(shmem.Addr(i * m.P.LineBytes))
		}
	})
	reps := m.NodeReports()
	if len(reps) != 4 {
		t.Fatalf("reports = %d", len(reps))
	}
	var uses uint64
	for _, r := range reps {
		uses += r.DCUses
	}
	if uses == 0 {
		t.Fatal("no DC usage recorded")
	}
	if reps[0].L2Misses == 0 {
		t.Fatal("requester node shows no L2 misses")
	}
	rep := m.UtilizationReport()
	if !strings.Contains(rep, "dc-util") {
		t.Fatalf("utilization report = %q", rep)
	}
}

func TestUtilizationReportEmptyRun(t *testing.T) {
	m := small()
	if got := m.UtilizationReport(); !strings.Contains(got, "no simulated time") {
		t.Fatalf("empty report = %q", got)
	}
}

func TestSelfInvalCounter(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	a.SelfInval = true
	phase := 0
	m.Start(2, func(p *Proc) {
		p.Store(0)
		phase = 1
	})
	m.Start(1, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Load(0)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Proto.SelfInvals != 1 {
		t.Fatalf("self-invalidations = %d, want 1", m.Proto.SelfInvals)
	}
}

func TestTracingCapturesEvents(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 4
	p.TraceCap = 64
	m := New(p)
	runOne(t, m, 0, func(pr *Proc) {
		pr.Load(0)
		pr.Store(0)
		pr.Prefetch(shmem.Addr(p.LineBytes), true)
	})
	if !m.Trace.Enabled() {
		t.Fatal("trace not enabled")
	}
	evs := m.Trace.Events()
	if len(evs) < 3 {
		t.Fatalf("traced %d events, want >= 3", len(evs))
	}
	var kinds [8]int
	for _, e := range evs {
		kinds[e.Kind]++
	}
	if kinds[0] == 0 || kinds[1] == 0 || kinds[2] == 0 || kinds[3] == 0 {
		t.Fatalf("missing kinds in trace: %v", kinds)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(pr *Proc) { pr.Load(0) })
	if m.Trace.Enabled() || m.Trace.Total() != 0 {
		t.Fatal("tracing active without TraceCap")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(pr *Proc) {
		pr.Load(0)
		pr.Store(shmem.Addr(m.P.LineBytes))
		pr.Compute(10)
	})
	s := m.TakeSnapshot(true)
	if s.WallCycle != m.WallTime() || s.Nodes != 4 {
		t.Fatalf("snapshot header wrong: %+v", s)
	}
	if s.Breakdown["busy"] == 0 || s.Breakdown["mem"] == 0 {
		t.Fatalf("snapshot breakdown empty: %v", s.Breakdown)
	}
	if s.Protocol.Fills() == 0 {
		t.Fatal("snapshot protocol empty")
	}
	if len(s.PerNode) != 4 {
		t.Fatalf("per-node reports = %d", len(s.PerNode))
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.WallCycle != s.WallCycle || back.Breakdown["busy"] != s.Breakdown["busy"] {
		t.Fatal("round trip lost data")
	}
}

func TestSnapshotIncludesClassification(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	m.Start(1, func(pr *Proc) { pr.Load(0) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.TakeSnapshot(false)
	if len(s.Class) == 0 {
		t.Fatal("snapshot missing classification for a slipstream pair")
	}
	if s.PerNode != nil {
		t.Fatal("per-node reports included without request")
	}
}

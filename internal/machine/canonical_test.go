package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestParamsCanonicalRoundTrip checks that the canonical encoding carries
// every field: decode(encode(p)) must reproduce p exactly, including
// non-default values in every field.
func TestParamsCanonicalRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 7
	p.Topology = TopoMesh2D
	p.TraceCap = 12
	p.TrackClass = false
	p.ClockGHz = 2.5
	p.SpinPollCycles = 33

	data, err := p.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParamsFromCanonicalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestParamsCanonicalStable pins the encoding bytes of the default
// configuration: two encodings must be identical, and the hash must match
// the recorded golden. If this test fails because Params changed, bump the
// golden AND the slipd cache-key version — cached results keyed by the old
// encoding no longer describe the new machine.
func TestParamsCanonicalStable(t *testing.T) {
	a, err := DefaultParams().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultParams().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", a, b)
	}
	sum := sha256.Sum256(a)
	const golden = "23f69c44c63be5b54cf5b583c6852f31f446b269a780571cea92dda1d6103bb2"
	if got := hex.EncodeToString(sum[:]); got != golden {
		t.Fatalf("canonical hash changed: %s (encoding: %s)\nupdate the golden and bump the slipd cache-key version", got, a)
	}
}

// TestParamsCanonicalRejectsUnknown checks that an encoding with fields
// this build does not know about is refused rather than partially applied.
func TestParamsCanonicalRejectsUnknown(t *testing.T) {
	if _, err := ParamsFromCanonicalJSON([]byte(`{"nodes":4,"quantum_links":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParamsFromCanonicalJSON([]byte(`{"nodes":4}{}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// Package machine assembles the simulated multiprocessor the paper
// evaluates on: N dual-processor CMP nodes, each with split per-processor
// L1 caches and a shared unified L2, connected by a fixed-delay network
// with contention modelled at the network inputs/outputs and at the memory
// controllers, and kept coherent by an invalidate-based fully-mapped
// directory protocol (paper §5 and Table 1).
package machine

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Params are the simulated system parameters (paper Table 1). Latencies
// given in nanoseconds are converted to cycles at ClockGHz.
type Params struct {
	ClockGHz float64 // processor clock (1.2 GHz)
	Nodes    int     // number of dual-processor CMP nodes (16)

	LineBytes int // cache line size

	L1Bytes     int      // per-processor L1 size (16 KB)
	L1Assoc     int      // L1 associativity (2)
	L1HitCycles sim.Time // L1 hit latency (1 cycle)

	L2Bytes     int      // per-CMP unified L2 size (1 MB)
	L2Assoc     int      // L2 associativity (4)
	L2HitCycles sim.Time // L2 hit latency (10 cycles)

	// SimOS memory-system parameters (ns). Bus/NI/Mem values are used as
	// resource occupancies for contention; the Local/Remote minima are the
	// end-to-end uncontended miss latencies the paper quotes (170/290 ns).
	BusNS          int // node bus occupancy per transaction (30)
	PILocalDCNS    int // processor interface local dc time (10)
	NILocalDCNS    int // network interface local dc time (60)
	NIRemoteDCNS   int // network interface remote dc time (10)
	NetNS          int // network traversal per hop (50)
	MemNS          int // memory controller occupancy (50)
	LocalMissNS    int // minimum latency to fill L2 from local memory (170)
	RemoteMissNS   int // minimum latency to fill L2 from remote memory (290)
	DirtyForwardNS int // extra for 3-hop forwarding from a dirty owner
	InvalPerShNS   int // per-sharer serialization for invalidation fan-out

	RegAccessCycles sim.Time // CMP pair-register (hardware semaphore) access

	SpinPollCycles sim.Time // spin-wait polling interval

	Topology Topology // interconnect model (paper default: fixed delay)

	TraceCap int // retain the last N simulation events (0 = tracing off)

	TrackClass bool // classify shared requests for Figures 3/5
}

// DefaultParams returns the paper's Table 1 configuration.
func DefaultParams() Params {
	return Params{
		ClockGHz:        1.2,
		Nodes:           16,
		LineBytes:       64,
		L1Bytes:         16 * 1024,
		L1Assoc:         2,
		L1HitCycles:     1,
		L2Bytes:         1024 * 1024,
		L2Assoc:         4,
		L2HitCycles:     10,
		BusNS:           30,
		PILocalDCNS:     10,
		NILocalDCNS:     60,
		NIRemoteDCNS:    10,
		NetNS:           50,
		MemNS:           50,
		LocalMissNS:     170,
		RemoteMissNS:    290,
		DirtyForwardNS:  70, // one extra network hop + two remote DC times
		InvalPerShNS:    10,
		RegAccessCycles: 2,
		SpinPollCycles:  20,
		TrackClass:      true,
	}
}

// Cyc converts nanoseconds to clock cycles, rounding to nearest.
func (p Params) Cyc(ns int) sim.Time {
	return sim.Time(float64(ns)*p.ClockGHz + 0.5)
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.ClockGHz <= 0:
		return fmt.Errorf("machine: clock %v GHz invalid", p.ClockGHz)
	case p.Nodes <= 0 || p.Nodes > 64:
		return fmt.Errorf("machine: node count %d out of range", p.Nodes)
	case p.LineBytes <= 0 || p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("machine: line size %d not a power of two", p.LineBytes)
	case p.RemoteMissNS < p.LocalMissNS:
		return fmt.Errorf("machine: remote miss (%d ns) below local miss (%d ns)", p.RemoteMissNS, p.LocalMissNS)
	}
	return nil
}

// Table1 renders the configuration in the shape of the paper's Table 1.
func (p Params) Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulated System Parameters\n")
	fmt.Fprintf(&sb, "  CPU: dual-processor CMP model, clock %.1f GHz, %d nodes\n", p.ClockGHz, p.Nodes)
	fmt.Fprintf(&sb, "  L1 caches (I/D): %d KB, %d-way, hit %d cycle(s)\n", p.L1Bytes/1024, p.L1Assoc, p.L1HitCycles)
	fmt.Fprintf(&sb, "  L2 cache (unified, shared): %d MB, %d-way, hit %d cycles\n", p.L2Bytes/(1024*1024), p.L2Assoc, p.L2HitCycles)
	fmt.Fprintf(&sb, "  Memory parameters (ns): BusTime=%d PILocalDCTime=%d NILocalDCTime=%d NIRemoteDCTime=%d NetTime=%d MemTime=%d\n",
		p.BusNS, p.PILocalDCNS, p.NILocalDCNS, p.NIRemoteDCNS, p.NetNS, p.MemNS)
	fmt.Fprintf(&sb, "  Minimum L2 fill latency: local %d ns, remote %d ns\n", p.LocalMissNS, p.RemoteMissNS)
	fmt.Fprintf(&sb, "  Line size: %d B\n", p.LineBytes)
	return sb.String()
}

package machine

import (
	"encoding/json"
	"io"

	"repro/internal/stats"
)

// Snapshot is a machine's end-of-run measurement record in a stable,
// serializable form (the -json output of cmd/slipsim).
type Snapshot struct {
	Nodes     int               `json:"nodes"`
	ClockGHz  float64           `json:"clock_ghz"`
	Topology  string            `json:"topology"`
	WallCycle uint64            `json:"wall_cycles"`
	WallMS    float64           `json:"wall_ms"`
	Breakdown map[string]uint64 `json:"breakdown_cycles"`
	Protocol  ProtoStats        `json:"protocol"`
	Class     map[string]uint64 `json:"classification,omitempty"`
	PerNode   []NodeReport      `json:"per_node,omitempty"`
}

// TakeSnapshot collects the machine's measurements after Run. When perNode
// is set the per-node resource reports are included.
func (m *Machine) TakeSnapshot(perNode bool) Snapshot {
	bd := m.TotalBreakdown()
	s := Snapshot{
		Nodes:     m.P.Nodes,
		ClockGHz:  m.P.ClockGHz,
		Topology:  m.P.Topology.String(),
		WallCycle: m.WallTime(),
		WallMS:    float64(m.WallTime()) / (m.P.ClockGHz * 1e6),
		Breakdown: map[string]uint64{},
		Protocol:  m.Proto,
	}
	for c := stats.CatBusy; c < stats.NumCats; c++ {
		s.Breakdown[c.String()] = bd[c]
	}
	cls := map[string]uint64{}
	for r := stats.RoleR; r < stats.NumRoles; r++ {
		for k := stats.ReqRead; k < stats.NumKinds; k++ {
			for o := stats.OutTimely; o < stats.NumOutcomes; o++ {
				if n := m.Class.Counts[r][k][o]; n > 0 {
					cls[r.String()+"-"+k.String()+"-"+o.String()] = n
				}
			}
		}
	}
	if len(cls) > 0 {
		s.Class = cls
	}
	if perNode {
		s.PerNode = m.NodeReports()
	}
	return s
}

// WriteJSON marshals the snapshot with indentation.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

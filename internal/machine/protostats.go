package machine

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ProtoStats counts coherence-protocol events machine-wide. The paper's
// analysis (§5.1) reasons about exactly these: clean 2-hop fills, dirty
// 3-hop forwards, upgrades, invalidation fan-out, writebacks, and the
// merged requests that make A-Late coverage possible.
type ProtoStats struct {
	LocalFills   uint64 // L2 fills served by the local home memory
	RemoteFills  uint64 // L2 fills served by a remote home (clean, 2-hop)
	DirtyFwd     uint64 // fills forwarded from a dirty owner (3-hop)
	Upgrades     uint64 // stores hitting a Shared L2 line (ownership only)
	Invals       uint64 // sharer copies invalidated by stores
	SelfInvals   uint64 // owner copies dropped by A-stream read hints
	Writebacks   uint64 // dirty L2 victims written back to memory
	Merged       uint64 // accesses merged into an in-flight fill
	L1BackInvals uint64 // L1 lines removed to preserve L2 inclusion
}

// String renders the counters on one line.
func (s *ProtoStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fills: local=%d remote=%d 3hop=%d", s.LocalFills, s.RemoteFills, s.DirtyFwd)
	fmt.Fprintf(&sb, "  upgrades=%d invals=%d selfinv=%d wb=%d merged=%d l1-backinv=%d",
		s.Upgrades, s.Invals, s.SelfInvals, s.Writebacks, s.Merged, s.L1BackInvals)
	return sb.String()
}

// Fills returns the total number of L2 fills.
func (s *ProtoStats) Fills() uint64 { return s.LocalFills + s.RemoteFills + s.DirtyFwd }

// NodeReport summarizes one node's resource utilization over a run.
type NodeReport struct {
	Node     int
	BusUses  uint64
	BusBusy  sim.Time
	BusWait  sim.Time
	DCUses   uint64
	DCBusy   sim.Time
	DCWait   sim.Time
	MemUses  uint64
	MemBusy  sim.Time
	MemWait  sim.Time
	L2Misses uint64
	L2Evicts uint64
}

// NodeReports collects per-node resource statistics.
func (m *Machine) NodeReports() []NodeReport {
	out := make([]NodeReport, len(m.Nodes))
	for i, nd := range m.Nodes {
		out[i] = NodeReport{
			Node:     nd.ID,
			BusUses:  nd.Bus.Uses(),
			BusBusy:  nd.Bus.BusyTotal(),
			BusWait:  nd.Bus.WaitTotal(),
			DCUses:   nd.DC.Uses(),
			DCBusy:   nd.DC.BusyTotal(),
			DCWait:   nd.DC.WaitTotal(),
			MemUses:  nd.Mem.Uses(),
			MemBusy:  nd.Mem.BusyTotal(),
			MemWait:  nd.Mem.WaitTotal(),
			L2Misses: nd.L2.Misses,
			L2Evicts: nd.L2.Evicts,
		}
	}
	return out
}

// UtilizationReport renders per-node resource utilization relative to the
// run's wall time (hot-home imbalance shows up here).
func (m *Machine) UtilizationReport() string {
	wall := m.WallTime()
	if wall == 0 {
		return "(no simulated time)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %12s %9s %9s %9s\n", "node", "L2 misses", "bus-util", "dc-util", "mem-util")
	for _, r := range m.NodeReports() {
		fmt.Fprintf(&sb, "%-5d %12d %8.1f%% %8.1f%% %8.1f%%\n", r.Node, r.L2Misses,
			100*float64(r.BusBusy)/float64(wall),
			100*float64(r.DCBusy)/float64(wall),
			100*float64(r.MemBusy)/float64(wall))
	}
	return sb.String()
}

package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestUpgradeLatencyLocalVsRemote: an ownership upgrade is a directory
// round trip without the memory fetch, so it must be cheaper than a miss
// and dearer for remote homes than local ones.
func TestUpgradeLatencyLocalVsRemote(t *testing.T) {
	m := small()
	localAddr := shmem.Addr(0)                      // home node 0
	remoteAddr := shmem.Addr(uint64(m.P.LineBytes)) // home node 1
	var upLocal, upRemote sim.Time
	runOne(t, m, 0, func(p *Proc) {
		p.Load(localAddr)
		t0 := p.Ctx.Now()
		p.Store(localAddr)
		upLocal = p.Ctx.Now() - t0
		p.Load(remoteAddr)
		t0 = p.Ctx.Now()
		p.Store(remoteAddr)
		upRemote = p.Ctx.Now() - t0
	})
	missLocal := m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.LocalMissNS)
	if upLocal >= missLocal {
		t.Fatalf("local upgrade (%d) not cheaper than local miss (%d)", upLocal, missLocal)
	}
	if upRemote <= upLocal {
		t.Fatalf("remote upgrade (%d) not dearer than local (%d)", upRemote, upLocal)
	}
}

// TestThreeHopLocalHome: requester's home holds the directory but a third
// node owns the line dirty.
func TestThreeHopLocalHome(t *testing.T) {
	m := small()
	addr := shmem.Addr(0) // home node 0
	phase := 0
	m.Start(2, func(p *Proc) { // node 1 dirties the line
		p.Store(addr)
		phase = 1
	})
	var lat sim.Time
	m.Start(0, func(p *Proc) { // node 0 (the home) reads it back
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		t0 := p.Ctx.Now()
		p.Load(addr)
		lat = p.Ctx.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	min := m.P.Cyc(m.P.LocalMissNS + m.P.DirtyForwardNS)
	if lat < min {
		t.Fatalf("local-home 3-hop read = %d, want >= %d", lat, min)
	}
	e := m.Dir.Peek(m.LineOf(addr))
	if e.State.String() != "S" {
		t.Fatalf("state after read-back: %v", e.State)
	}
}

// TestWriteToDirtyRemote: a store to a line owned dirty elsewhere takes
// the only copy and invalidates the old owner.
func TestWriteToDirtyRemote(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(2, func(p *Proc) {
		p.Store(addr)
		phase = 1
	})
	m.Start(4, func(p *Proc) { // node 2 overwrites
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Store(addr)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	e := m.Dir.Peek(m.LineOf(addr))
	if e.Owner != 2 {
		t.Fatalf("owner = %d, want 2", e.Owner)
	}
	if m.Nodes[1].L2.Peek(m.LineOf(addr)) != nil {
		t.Fatal("old owner kept its copy")
	}
}

// TestPrefetchSharedDoesNotTakeOwnership.
func TestPrefetchSharedVsExclusive(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		p.Prefetch(shmem.Addr(0), false)
		p.Prefetch(shmem.Addr(uint64(m.P.LineBytes)), true)
	})
	if e := m.Dir.Peek(0); e.State.String() != "S" {
		t.Fatalf("shared prefetch state = %v", e.State)
	}
	if e := m.Dir.Peek(1); e.State.String() != "M" || e.Owner != 0 {
		t.Fatalf("exclusive prefetch entry = %+v", e)
	}
}

// TestRefillAfterInvalidationGetsFreshClassification: a line invalidated
// and refetched by the pair gets a second, independent classification.
func TestRefillAfterInvalidation(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	addr := shmem.Addr(0)
	phase := 0
	m.Start(1, func(p *Proc) { // A fills, R uses (timely)
		p.Load(addr)
		phase = 1
		p.Ctx.SpinUntil(func() bool { return phase == 3 }, 10, nil)
		p.Load(addr) // refill after node 1's store; A fills again
		phase = 4
	})
	m.Start(0, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Compute(2000)
		p.Load(addr) // A-timely #1
		phase = 2
		p.Ctx.SpinUntil(func() bool { return phase == 4 }, 10, nil)
		p.Compute(2000)
		p.Load(addr) // A-timely #2
	})
	m.Start(2, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 2 }, 10, nil)
		p.Store(addr) // invalidate node 0's copy
		phase = 3
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutTimely]; got != 2 {
		t.Fatalf("A-read-timely = %d, want 2 (two independent fills)", got)
	}
}

// TestPairUseDetectedOnL1Hit: the partner's touch counts even when it hits
// in its own L1 (first touch fills both L2 metadata and partner L1).
func TestPairUseViaL1Hit(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	phase := 0
	m.Start(1, func(p *Proc) {
		p.Load(0)
		phase = 1
	})
	m.Start(0, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Compute(1000)
		p.Load(0) // touch #1: marks UsedByPair, fills R's L1
		p.Load(0) // touch #2: L1 hit; must not double-count
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	total := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutTimely]
	if total != 1 {
		t.Fatalf("A-read-timely = %d, want exactly 1", total)
	}
}

// TestRMWCountsAsStore.
func TestRMWTiming(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		p.RMW(0)
		if p.Stores != 1 {
			t.Errorf("RMW not counted as store")
		}
	})
	if e := m.Dir.Peek(0); e.State.String() != "M" {
		t.Fatal("RMW did not take ownership")
	}
}

// Property: arbitrary interleaved traffic from all processors leaves the
// directory and caches coherent, and every proc's breakdown accounts for
// every cycle it was alive.
func TestPropertyCoherenceUnderRandomTraffic(t *testing.T) {
	f := func(seed uint16) bool {
		p := DefaultParams()
		p.Nodes = 4
		p.L2Bytes = 8 * 1024 // force evictions
		p.L1Bytes = 1024
		m := New(p)
		for gid := 0; gid < 8; gid++ {
			gid := gid
			m.Start(gid, func(pr *Proc) {
				x := uint64(seed)*2654435761 + uint64(gid)
				start := pr.Ctx.Now()
				for i := 0; i < 200; i++ {
					x = x*6364136223846793005 + 1442695040888963407
					addr := shmem.Addr((x >> 13) % (16 * 1024))
					switch x % 4 {
					case 0:
						pr.Store(addr)
					case 1:
						pr.Prefetch(addr, x%8 == 1)
					default:
						pr.Load(addr)
					}
				}
				if got := pr.Bd.Total(); got != uint64(pr.Ctx.Now()-start) {
					t.Errorf("proc %d breakdown %d != elapsed %d", gid, got, pr.Ctx.Now()-start)
				}
			})
		}
		return m.Run() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: total classified fills never exceed total fills, and the
// classification is complete after Run (every tracked fill has an outcome).
func TestPropertyClassificationComplete(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 2
	p.L2Bytes = 8 * 1024
	m := New(p)
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	for gid := 0; gid < 2; gid++ {
		gid := gid
		m.Start(gid, func(pr *Proc) {
			x := uint64(gid + 7)
			for i := 0; i < 500; i++ {
				x = x*6364136223846793005 + 1
				pr.Load(shmem.Addr((x >> 20) % (32 * 1024)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	classified := m.Class.KindTotal(stats.ReqRead) + m.Class.KindTotal(stats.ReqReadEx)
	if classified == 0 {
		t.Fatal("nothing classified")
	}
	if classified > m.Proto.Fills() {
		t.Fatalf("classified %d > fills %d", classified, m.Proto.Fills())
	}
}

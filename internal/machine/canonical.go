package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Canonical encoding of Params. The slipd result cache keys cached runs by
// a hash of the full simulated-machine configuration, so the encoding must
// be byte-stable across processes and releases: fields are emitted in a
// fixed alphabetical order through canonParams rather than in Params
// declaration order, and every field is explicit (no omitempty) so a
// zero-valued field and an absent field cannot hash differently.

// canonParams mirrors Params with a frozen field order and frozen JSON
// names. Adding a Params field requires adding it here (in alphabetical
// tag order) and updating the hash-stability test golden, which is exactly
// the bump-the-cache-key behavior a new parameter should have.
type canonParams struct {
	BusNS           int     `json:"bus_ns"`
	ClockGHz        float64 `json:"clock_ghz"`
	DirtyForwardNS  int     `json:"dirty_forward_ns"`
	InvalPerShNS    int     `json:"inval_per_sharer_ns"`
	L1Assoc         int     `json:"l1_assoc"`
	L1Bytes         int     `json:"l1_bytes"`
	L1HitCycles     uint64  `json:"l1_hit_cycles"`
	L2Assoc         int     `json:"l2_assoc"`
	L2Bytes         int     `json:"l2_bytes"`
	L2HitCycles     uint64  `json:"l2_hit_cycles"`
	LineBytes       int     `json:"line_bytes"`
	LocalMissNS     int     `json:"local_miss_ns"`
	MemNS           int     `json:"mem_ns"`
	NILocalDCNS     int     `json:"ni_local_dc_ns"`
	NIRemoteDCNS    int     `json:"ni_remote_dc_ns"`
	NetNS           int     `json:"net_ns"`
	Nodes           int     `json:"nodes"`
	PILocalDCNS     int     `json:"pi_local_dc_ns"`
	RemoteMissNS    int     `json:"remote_miss_ns"`
	RegAccessCycles uint64  `json:"reg_access_cycles"`
	SpinPollCycles  uint64  `json:"spin_poll_cycles"`
	Topology        string  `json:"topology"`
	TraceCap        int     `json:"trace_cap"`
	TrackClass      bool    `json:"track_class"`
}

// CanonicalJSON renders p in the canonical encoding.
func (p Params) CanonicalJSON() ([]byte, error) {
	return json.Marshal(canonParams{
		BusNS:           p.BusNS,
		ClockGHz:        p.ClockGHz,
		DirtyForwardNS:  p.DirtyForwardNS,
		InvalPerShNS:    p.InvalPerShNS,
		L1Assoc:         p.L1Assoc,
		L1Bytes:         p.L1Bytes,
		L1HitCycles:     uint64(p.L1HitCycles),
		L2Assoc:         p.L2Assoc,
		L2Bytes:         p.L2Bytes,
		L2HitCycles:     uint64(p.L2HitCycles),
		LineBytes:       p.LineBytes,
		LocalMissNS:     p.LocalMissNS,
		MemNS:           p.MemNS,
		NILocalDCNS:     p.NILocalDCNS,
		NIRemoteDCNS:    p.NIRemoteDCNS,
		NetNS:           p.NetNS,
		Nodes:           p.Nodes,
		PILocalDCNS:     p.PILocalDCNS,
		RemoteMissNS:    p.RemoteMissNS,
		RegAccessCycles: uint64(p.RegAccessCycles),
		SpinPollCycles:  uint64(p.SpinPollCycles),
		Topology:        p.Topology.String(),
		TraceCap:        p.TraceCap,
		TrackClass:      p.TrackClass,
	})
}

// ParamsFromCanonicalJSON decodes a canonical encoding back into Params.
// Unknown fields are rejected so a spec written against a newer parameter
// set fails loudly instead of silently simulating the wrong machine.
func ParamsFromCanonicalJSON(data []byte) (Params, error) {
	var c canonParams
	if err := strictUnmarshal(data, &c); err != nil {
		return Params{}, fmt.Errorf("machine: canonical params: %w", err)
	}
	topo, err := parseTopology(c.Topology)
	if err != nil {
		return Params{}, err
	}
	return Params{
		BusNS:           c.BusNS,
		ClockGHz:        c.ClockGHz,
		DirtyForwardNS:  c.DirtyForwardNS,
		InvalPerShNS:    c.InvalPerShNS,
		L1Assoc:         c.L1Assoc,
		L1Bytes:         c.L1Bytes,
		L1HitCycles:     sim.Time(c.L1HitCycles),
		L2Assoc:         c.L2Assoc,
		L2Bytes:         c.L2Bytes,
		L2HitCycles:     sim.Time(c.L2HitCycles),
		LineBytes:       c.LineBytes,
		LocalMissNS:     c.LocalMissNS,
		MemNS:           c.MemNS,
		NILocalDCNS:     c.NILocalDCNS,
		NIRemoteDCNS:    c.NIRemoteDCNS,
		NetNS:           c.NetNS,
		Nodes:           c.Nodes,
		PILocalDCNS:     c.PILocalDCNS,
		RemoteMissNS:    c.RemoteMissNS,
		RegAccessCycles: sim.Time(c.RegAccessCycles),
		SpinPollCycles:  sim.Time(c.SpinPollCycles),
		Topology:        topo,
		TraceCap:        c.TraceCap,
		TrackClass:      c.TrackClass,
	}, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// parseTopology resolves a topology name from the canonical encoding.
func parseTopology(s string) (Topology, error) {
	for _, t := range []Topology{TopoFixed, TopoMesh2D} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("machine: unknown topology %q", s)
}

package machine

import (
	"testing"

	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// small returns a 4-node machine with default latencies.
func small() *Machine {
	p := DefaultParams()
	p.Nodes = 4
	return New(p)
}

func TestParamsTable1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Table1()
	for _, want := range []string{"1.2 GHz", "16 KB", "1 MB", "BusTime=30", "local 170 ns, remote 290 ns"} {
		if !contains(s, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCycConversion(t *testing.T) {
	p := DefaultParams()
	if p.Cyc(170) != 204 {
		t.Fatalf("170ns = %d cycles, want 204", p.Cyc(170))
	}
	if p.Cyc(290) != 348 {
		t.Fatalf("290ns = %d cycles, want 348", p.Cyc(290))
	}
	if p.Cyc(0) != 0 {
		t.Fatal("0ns != 0 cycles")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	for _, mod := range []func(*Params){
		func(p *Params) { p.ClockGHz = 0 },
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.Nodes = 100 },
		func(p *Params) { p.LineBytes = 48 },
		func(p *Params) { p.RemoteMissNS = p.LocalMissNS - 1 },
	} {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Fatalf("Validate accepted bad config %+v", p)
		}
	}
}

// runOne executes body on proc gid and returns the machine.
func runOne(t *testing.T, m *Machine, gid int, body func(*Proc)) {
	t.Helper()
	m.Start(gid, body)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestColdLocalMissLatency(t *testing.T) {
	m := small()
	// Choose an address homed at node 0 (line 0 % 4 == 0).
	addr := shmem.Addr(0)
	var lat sim.Time
	runOne(t, m, 0, func(p *Proc) {
		t0 := p.Ctx.Now()
		p.Load(addr)
		lat = p.Ctx.Now() - t0
	})
	// L1 hit + L2 hit + 170ns local miss = 1 + 10 + 204 = 215.
	want := m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.LocalMissNS)
	if lat != want {
		t.Fatalf("cold local miss = %d cycles, want %d", lat, want)
	}
}

func TestColdRemoteMissLatency(t *testing.T) {
	m := small()
	// Line 1 is homed at node 1; access from node 0.
	addr := shmem.Addr(uint64(m.P.LineBytes))
	var lat sim.Time
	runOne(t, m, 0, func(p *Proc) {
		t0 := p.Ctx.Now()
		p.Load(addr)
		lat = p.Ctx.Now() - t0
	})
	want := m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.RemoteMissNS)
	if lat != want {
		t.Fatalf("cold remote miss = %d cycles, want %d", lat, want)
	}
}

func TestL1HitAfterMiss(t *testing.T) {
	m := small()
	var lat sim.Time
	runOne(t, m, 0, func(p *Proc) {
		p.Load(0)
		t0 := p.Ctx.Now()
		p.Load(0)
		lat = p.Ctx.Now() - t0
	})
	if lat != m.P.L1HitCycles {
		t.Fatalf("L1 hit = %d cycles, want %d", lat, m.P.L1HitCycles)
	}
}

func TestL2HitFromSiblingProc(t *testing.T) {
	// CPU 1 loads a line CPU 0 already brought into the shared L2: it pays
	// L1+L2 hit latency only, no directory transaction.
	m := small()
	done := false
	m.Start(0, func(p *Proc) {
		p.Load(0)
		done = true
	})
	var lat sim.Time
	m.Start(1, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return done }, 10, nil)
		t0 := p.Ctx.Now()
		p.Load(0)
		lat = p.Ctx.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if lat != m.P.L1HitCycles+m.P.L2HitCycles {
		t.Fatalf("sibling L2 hit = %d, want %d", lat, m.P.L1HitCycles+m.P.L2HitCycles)
	}
}

func TestStoreEstablishesOwnership(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	runOne(t, m, 0, func(p *Proc) {
		p.Store(addr)
	})
	line := m.LineOf(addr)
	e := m.Dir.Peek(line)
	if e == nil || e.State.String() != "M" || e.Owner != 0 {
		t.Fatalf("directory after store: %+v", e)
	}
	l2 := m.Nodes[0].L2.Peek(line)
	if l2 == nil || l2.State.String() != "M" {
		t.Fatalf("L2 after store: %+v", l2)
	}
}

func TestWriteInvalidatesRemoteSharers(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(0, func(p *Proc) {
		p.Load(addr)
		phase = 1
		p.Ctx.SpinUntil(func() bool { return phase == 2 }, 10, nil)
		// Reader's copy must be gone after node 1's store.
		if m.Nodes[0].L2.Peek(m.LineOf(addr)) != nil {
			t.Error("sharer L2 copy not invalidated by remote store")
		}
		if p.L1.Peek(m.LineOf(addr)) != nil {
			t.Error("sharer L1 copy not invalidated by remote store")
		}
	})
	m.Start(2, func(p *Proc) { // proc 2 = node 1 cpu 0
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Store(addr)
		phase = 2
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	e := m.Dir.Peek(m.LineOf(addr))
	if e.Owner != 1 {
		t.Fatalf("owner = %d, want 1", e.Owner)
	}
}

func TestDirtyRemoteReadDowngradesOwner(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(0, func(p *Proc) {
		p.Store(addr)
		phase = 1
	})
	var lat sim.Time
	m.Start(2, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		t0 := p.Ctx.Now()
		p.Load(addr)
		lat = p.Ctx.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	line := m.LineOf(addr)
	e := m.Dir.Peek(line)
	if e.State.String() != "S" || !e.HasSharer(0) || !e.HasSharer(1) {
		t.Fatalf("directory after 3-hop read: %+v", e)
	}
	if l := m.Nodes[0].L2.Peek(line); l == nil || l.State.String() != "S" {
		t.Fatal("owner not downgraded to shared")
	}
	// 3-hop: remote miss + forwarding extra.
	min := m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.RemoteMissNS+m.P.DirtyForwardNS)
	if lat < min {
		t.Fatalf("3-hop read latency %d < minimum %d", lat, min)
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	runOne(t, m, 0, func(p *Proc) {
		p.Load(addr)
		p.Store(addr) // upgrade in place
	})
	e := m.Dir.Peek(m.LineOf(addr))
	if e.State.String() != "M" || e.Owner != 0 {
		t.Fatalf("after upgrade: %+v", e)
	}
}

func TestIntraCMPWriteInvalidatesSiblingL1(t *testing.T) {
	m := small()
	addr := shmem.Addr(0)
	phase := 0
	m.Start(0, func(p *Proc) {
		p.Load(addr)
		phase = 1
		p.Ctx.SpinUntil(func() bool { return phase == 2 }, 10, nil)
		if p.L1.Peek(m.LineOf(addr)) != nil {
			t.Error("sibling L1 copy survived local write")
		}
	})
	m.Start(1, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Store(addr)
		phase = 2
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownAccountsAllCycles(t *testing.T) {
	m := small()
	var total sim.Time
	var p0 *Proc
	runOne(t, m, 0, func(p *Proc) {
		p0 = p
		start := p.Ctx.Now()
		p.Compute(100)
		for i := 0; i < 50; i++ {
			p.Load(shmem.Addr(i * 64))
			p.Store(shmem.Addr(i * 64))
		}
		p.WithCategory(stats.CatBarrier, func() { p.Wait(77) })
		total = p.Ctx.Now() - start
	})
	if got := p0.Bd.Total(); got != uint64(total) {
		t.Fatalf("breakdown total %d != elapsed %d", got, total)
	}
	if p0.Bd[stats.CatBarrier] != 77 {
		t.Fatalf("barrier cycles = %d, want 77", p0.Bd[stats.CatBarrier])
	}
	if p0.Bd[stats.CatBusy] < 100 {
		t.Fatalf("busy cycles = %d, want >= 100", p0.Bd[stats.CatBusy])
	}
}

func TestMemoryControllerContention(t *testing.T) {
	// Two procs on different nodes hammer lines homed at node 0
	// simultaneously; queueing at node 0's memory controller must make the
	// combined latency exceed two isolated accesses.
	m := small()
	var lat [2]sim.Time
	for i, gid := range []int{2, 4} { // nodes 1 and 2
		i, gid := i, gid
		m.Start(gid, func(p *Proc) {
			t0 := p.Ctx.Now()
			for k := 0; k < 8; k++ {
				p.Load(shmem.Addr(uint64(k*4*m.P.LineBytes) + uint64(i*1024*m.P.LineBytes)))
			}
			lat[i] = p.Ctx.Now() - t0
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	solo := 8 * (m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.RemoteMissNS))
	if lat[0] <= solo && lat[1] <= solo {
		t.Fatalf("no contention visible: %v vs solo %d", lat, solo)
	}
}

func TestPrefetchNonBlocking(t *testing.T) {
	m := small()
	var issue sim.Time
	runOne(t, m, 0, func(p *Proc) {
		t0 := p.Ctx.Now()
		p.Prefetch(shmem.Addr(64), true)
		issue = p.Ctx.Now() - t0
	})
	if issue > 5 {
		t.Fatalf("prefetch issue cost %d cycles, want tiny", issue)
	}
	// State should be established.
	e := m.Dir.Peek(m.LineOf(64))
	if e == nil || e.Owner != 0 {
		t.Fatalf("prefetch-exclusive did not take ownership: %+v", e)
	}
}

func TestMergedAccessWaitsForInflightFill(t *testing.T) {
	m := small()
	addr := shmem.Addr(uint64(m.P.LineBytes)) // remote line (home node 1)
	var lat sim.Time
	runOne(t, m, 0, func(p *Proc) {
		p.Prefetch(addr, false)
		t0 := p.Ctx.Now()
		p.Load(addr) // must merge: waits for the in-flight fill
		lat = p.Ctx.Now() - t0
	})
	if lat < m.P.Cyc(m.P.RemoteMissNS)/2 {
		t.Fatalf("merged access latency %d too small; merge not modelled", lat)
	}
	full := m.P.L1HitCycles + m.P.L2HitCycles + m.P.Cyc(m.P.RemoteMissNS)
	if lat > full+10 {
		t.Fatalf("merged access latency %d exceeds full miss %d", lat, full)
	}
}

func TestClassificationTimely(t *testing.T) {
	m := small()
	// Pair procs 0 (R) and 1 (A) on node 0.
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	addr := shmem.Addr(uint64(m.P.LineBytes))
	phase := 0
	m.Start(1, func(p *Proc) {
		p.Load(addr) // A fetches
		phase = 1
	})
	m.Start(0, func(p *Proc) {
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Compute(1000) // well past fill completion
		p.Load(addr)    // R touches: A-Timely
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutTimely]; got != 1 {
		t.Fatalf("A-read-timely = %d, want 1 (class=%+v)", got, m.Class)
	}
}

func TestClassificationLate(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	addr := shmem.Addr(uint64(m.P.LineBytes))
	m.Start(1, func(p *Proc) {
		p.Prefetch(addr, false) // in-flight fill
	})
	m.Start(0, func(p *Proc) {
		p.Compute(5)
		p.Load(addr) // arrives while fill in flight: A-Late
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutLate]; got != 1 {
		t.Fatalf("A-read-late = %d, want 1 (class=%+v)", got, m.Class)
	}
}

func TestClassificationOnlyAtEndOfRun(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	m.Start(1, func(p *Proc) {
		p.Load(shmem.Addr(64)) // never touched by R
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutOnly]; got != 1 {
		t.Fatalf("A-read-only = %d, want 1", got)
	}
}

func TestClassificationOnlyOnInvalidation(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	addr := shmem.Addr(0)
	phase := 0
	m.Start(1, func(p *Proc) {
		p.Load(addr)
		phase = 1
	})
	m.Start(2, func(p *Proc) { // node 1 writes, invalidating A's fill
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Store(addr)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Class.Counts[stats.RoleA][stats.ReqRead][stats.OutOnly]; got != 1 {
		t.Fatalf("A-read-only after invalidation = %d, want 1", got)
	}
}

func TestSelfInvalidationDropsOwnerCopy(t *testing.T) {
	m := small()
	r, a := m.Procs[0], m.Procs[1]
	r.Role, a.Role = stats.RoleR, stats.RoleA
	r.Pair, a.Pair = a, r
	a.SelfInval = true
	addr := shmem.Addr(0)
	phase := 0
	m.Start(2, func(p *Proc) { // producer on node 1
		p.Store(addr)
		phase = 1
	})
	m.Start(1, func(p *Proc) { // A-stream consumer read
		p.Ctx.SpinUntil(func() bool { return phase == 1 }, 10, nil)
		p.Load(addr)
		phase = 2
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes[1].L2.Peek(m.LineOf(addr)) != nil {
		t.Fatal("producer kept its copy despite self-invalidation hint")
	}
	e := m.Dir.Peek(m.LineOf(addr))
	if e.State.String() != "S" || !e.HasSharer(0) || e.HasSharer(1) {
		t.Fatalf("directory after self-invalidation: %+v", e)
	}
}

func TestPairRegsFreeOfCoherenceTraffic(t *testing.T) {
	m := small()
	runOne(t, m, 0, func(p *Proc) {
		loads := p.Loads
		p.Node.Regs.Allowance = 3
		if p.Node.Regs.Allowance != 3 {
			t.Error("register write lost")
		}
		if p.Loads != loads {
			t.Error("register access generated memory traffic")
		}
	})
}

func TestCoherenceCheckAfterRandomTraffic(t *testing.T) {
	m := small()
	for gid := 0; gid < 8; gid++ {
		gid := gid
		m.Start(gid, func(p *Proc) {
			x := uint64(gid*2654435761 + 12345)
			for i := 0; i < 300; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				addr := shmem.Addr((x >> 16) % (1 << 14))
				if x%3 == 0 {
					p.Store(addr)
				} else {
					p.Load(addr)
				}
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatalf("coherence check failed after random traffic: %v", err)
	}
}

func TestWallTime(t *testing.T) {
	m := small()
	m.Start(0, func(p *Proc) { p.Compute(100) })
	m.Start(2, func(p *Proc) { p.Compute(500) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.WallTime() != 500 {
		t.Fatalf("wall time = %d, want 500", m.WallTime())
	}
}

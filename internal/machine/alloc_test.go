package machine

import (
	"testing"

	"repro/internal/shmem"
)

// loadStoreAllocs measures the allocations of one full simulation whose
// single context performs the given number of Load/Store round-trips over a
// small working set.
func loadStoreAllocs(t *testing.T, accesses int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		p := DefaultParams()
		p.Nodes = 2
		p.TrackClass = false
		m := New(p)
		arr := shmem.NewI64(m.Space, 64, p.LineBytes)
		m.Start(0, func(pr *Proc) {
			for i := 0; i < accesses; i++ {
				pr.Load(arr.Addr(i % 64))
				pr.Store(arr.Addr(i % 64))
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// The memory-access path (Load/Store through L1, L2, and the directory)
// must not allocate per access: total run allocations may not scale with
// the access count. This locks in the typed event heap, the closure-free
// category accounting, and the scratch-buffer sharer lists — a regression
// fails go test directly, not just the bench ratchet.
func TestLoadStoreRoundTripAllocFree(t *testing.T) {
	// One throwaway run warms the sim worker pool and lazy tables.
	loadStoreAllocs(t, 10)
	small := loadStoreAllocs(t, 100)
	large := loadStoreAllocs(t, 10100)
	slope := (large - small) / 10000
	if slope > 0.01 {
		t.Fatalf("Load/Store round-trip allocates: %.0f allocs at 100 accesses, %.0f at 10100 (%.4f allocs/access)",
			small, large, slope)
	}
}

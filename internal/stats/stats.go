// Package stats holds the measurement types the paper's evaluation reports:
// per-processor execution-time breakdowns (Figures 2 and 4) and the
// shared-data memory-request classification (Figures 3 and 5).
package stats

import (
	"fmt"
	"strings"
)

// Category labels where a processor's cycles went. The set matches the
// paper's Figure 2/4 legend: busy cycles, memory stalls, lock and barrier
// synchronization, scheduling time, and job-wait time (a slave waiting for
// a parallel region to be assigned).
type Category int

// Time categories.
const (
	CatBusy Category = iota
	CatMem
	CatLock
	CatBarrier
	CatSched
	CatJobWait
	NumCats
)

// String returns the category label used in reports.
func (c Category) String() string {
	switch c {
	case CatBusy:
		return "busy"
	case CatMem:
		return "mem"
	case CatLock:
		return "lock"
	case CatBarrier:
		return "barrier"
	case CatSched:
		return "sched"
	case CatJobWait:
		return "jobwait"
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// Breakdown accumulates cycles per category.
type Breakdown [NumCats]uint64

// Add charges cycles to a category.
func (b *Breakdown) Add(c Category, cycles uint64) { b[c] += cycles }

// Total returns the sum over all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// AddAll accumulates another breakdown into this one.
func (b *Breakdown) AddAll(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Shares returns each category as a fraction of the total (zeros if empty).
func (b *Breakdown) Shares() [NumCats]float64 {
	var out [NumCats]float64
	t := b.Total()
	if t == 0 {
		return out
	}
	for i, v := range b {
		out[i] = float64(v) / float64(t)
	}
	return out
}

// String renders the breakdown as "busy=42.0% mem=30.1% ...".
func (b *Breakdown) String() string {
	sh := b.Shares()
	parts := make([]string, NumCats)
	for i := range sh {
		parts[i] = fmt.Sprintf("%s=%.1f%%", Category(i), sh[i]*100)
	}
	return strings.Join(parts, " ")
}

// Role distinguishes the two streams of a slipstream pair.
type Role int

// Stream roles.
const (
	RoleR Role = iota // the true task
	RoleA             // the advanced, speculative task
	NumRoles
)

// String returns "R" or "A".
func (r Role) String() string {
	if r == RoleA {
		return "A"
	}
	return "R"
}

// ReqKind splits shared-data requests the way Figures 3/5 do.
type ReqKind int

// Request kinds: a read (shared) fill or a read-exclusive fill.
const (
	ReqRead ReqKind = iota
	ReqReadEx
	NumKinds
)

// String returns the request-kind label.
func (k ReqKind) String() string {
	if k == ReqReadEx {
		return "readex"
	}
	return "read"
}

// Outcome classifies what happened to a fill brought into the shared L2.
//
//	Timely — the partner stream referenced the line after the fill completed.
//	Late   — the partner stream referenced the line while the fill was still
//	         in flight (it stalled on the merged request).
//	Only   — the line was evicted or invalidated (or the run ended) without
//	         the partner ever referencing it.
type Outcome int

// Fill outcomes.
const (
	OutTimely Outcome = iota
	OutLate
	OutOnly
	NumOutcomes
)

// String returns the outcome label.
func (o Outcome) String() string {
	switch o {
	case OutTimely:
		return "timely"
	case OutLate:
		return "late"
	}
	return "only"
}

// Class accumulates the Figure 3/5 classification: for each stream role and
// request kind, how many L2 fills ended in each outcome.
type Class struct {
	Counts [NumRoles][NumKinds][NumOutcomes]uint64
}

// Add records one classified fill.
func (c *Class) Add(r Role, k ReqKind, o Outcome) { c.Counts[r][k][o]++ }

// KindTotal returns the number of fills of kind k summed over roles and
// outcomes — the denominator for the paper's percentage breakdowns.
func (c *Class) KindTotal(k ReqKind) uint64 {
	var t uint64
	for r := 0; r < int(NumRoles); r++ {
		for o := 0; o < int(NumOutcomes); o++ {
			t += c.Counts[r][k][o]
		}
	}
	return t
}

// Share returns the fraction of kind-k fills that are (role, outcome).
func (c *Class) Share(r Role, k ReqKind, o Outcome) float64 {
	t := c.KindTotal(k)
	if t == 0 {
		return 0
	}
	return float64(c.Counts[r][k][o]) / float64(t)
}

// AddAll merges another classification into this one.
func (c *Class) AddAll(o *Class) {
	for r := range c.Counts {
		for k := range c.Counts[r] {
			for out := range c.Counts[r][k] {
				c.Counts[r][k][out] += o.Counts[r][k][out]
			}
		}
	}
}

// String renders the classification as two lines (read and readex shares).
func (c *Class) String() string {
	var sb strings.Builder
	for k := ReqRead; k < NumKinds; k++ {
		fmt.Fprintf(&sb, "%-7s", k.String())
		for r := RoleA; r >= RoleR; r-- {
			for o := OutTimely; o < NumOutcomes; o++ {
				fmt.Fprintf(&sb, " %s-%s=%5.1f%%", r, o, c.Share(r, k, o)*100)
			}
		}
		if k == ReqRead {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

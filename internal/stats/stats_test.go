package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(CatBusy, 60)
	b.Add(CatMem, 30)
	b.Add(CatBarrier, 10)
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	sh := b.Shares()
	if sh[CatBusy] != 0.6 || sh[CatMem] != 0.3 || sh[CatBarrier] != 0.1 {
		t.Fatalf("shares = %v", sh)
	}
	if sh[CatLock] != 0 || sh[CatSched] != 0 || sh[CatJobWait] != 0 {
		t.Fatalf("unused categories nonzero: %v", sh)
	}
}

func TestBreakdownEmptyShares(t *testing.T) {
	var b Breakdown
	sh := b.Shares()
	for _, v := range sh {
		if v != 0 {
			t.Fatalf("empty shares = %v", sh)
		}
	}
}

func TestBreakdownAddAll(t *testing.T) {
	var a, b Breakdown
	a.Add(CatBusy, 10)
	b.Add(CatBusy, 5)
	b.Add(CatLock, 7)
	a.AddAll(&b)
	if a[CatBusy] != 15 || a[CatLock] != 7 {
		t.Fatalf("merged = %v", a)
	}
}

func TestCategoryNames(t *testing.T) {
	names := []string{"busy", "mem", "lock", "barrier", "sched", "jobwait"}
	for i, want := range names {
		if Category(i).String() != want {
			t.Fatalf("cat %d = %q, want %q", i, Category(i), want)
		}
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add(CatBusy, 1)
	s := b.String()
	if !strings.Contains(s, "busy=100.0%") {
		t.Fatalf("String() = %q", s)
	}
}

func TestClassSharesSumToOnePerKind(t *testing.T) {
	var c Class
	c.Add(RoleA, ReqRead, OutTimely)
	c.Add(RoleA, ReqRead, OutLate)
	c.Add(RoleR, ReqRead, OutTimely)
	c.Add(RoleR, ReqRead, OutOnly)
	c.Add(RoleA, ReqReadEx, OutTimely)
	sum := 0.0
	for r := RoleR; r < NumRoles; r++ {
		for o := OutTimely; o < NumOutcomes; o++ {
			sum += c.Share(r, ReqRead, o)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("read shares sum = %v", sum)
	}
	if c.KindTotal(ReqRead) != 4 || c.KindTotal(ReqReadEx) != 1 {
		t.Fatalf("kind totals = %d, %d", c.KindTotal(ReqRead), c.KindTotal(ReqReadEx))
	}
}

func TestClassShareEmptyKind(t *testing.T) {
	var c Class
	if c.Share(RoleA, ReqRead, OutTimely) != 0 {
		t.Fatal("empty class share nonzero")
	}
}

func TestClassAddAll(t *testing.T) {
	var a, b Class
	a.Add(RoleA, ReqRead, OutTimely)
	b.Add(RoleA, ReqRead, OutTimely)
	b.Add(RoleR, ReqReadEx, OutOnly)
	a.AddAll(&b)
	if a.Counts[RoleA][ReqRead][OutTimely] != 2 {
		t.Fatal("merge lost counts")
	}
	if a.Counts[RoleR][ReqReadEx][OutOnly] != 1 {
		t.Fatal("merge lost readex counts")
	}
}

func TestEnumStrings(t *testing.T) {
	if RoleA.String() != "A" || RoleR.String() != "R" {
		t.Fatal("role strings")
	}
	if ReqRead.String() != "read" || ReqReadEx.String() != "readex" {
		t.Fatal("kind strings")
	}
	if OutTimely.String() != "timely" || OutLate.String() != "late" || OutOnly.String() != "only" {
		t.Fatal("outcome strings")
	}
}

func TestClassString(t *testing.T) {
	var c Class
	c.Add(RoleA, ReqRead, OutTimely)
	s := c.String()
	if !strings.Contains(s, "A-timely") || !strings.Contains(s, "read") {
		t.Fatalf("String() = %q", s)
	}
}

func TestPropertySharesSumToOne(t *testing.T) {
	f := func(vals [NumCats]uint16) bool {
		var b Breakdown
		total := uint64(0)
		for i, v := range vals {
			b.Add(Category(i), uint64(v))
			total += uint64(v)
		}
		if total == 0 {
			return true
		}
		sum := 0.0
		for _, s := range b.Shares() {
			sum += s
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package omp

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestForOrderedSerializesInOrder(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		c := cfg(mode, 4)
		rt, _ := New(c)
		const n = 40
		var order []int
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.ForOrdered(0, n, func(i int, ordered func(func())) {
					t2.Compute(uint64((i * 13) % 50)) // uneven work
					ordered(func() { order = append(order, i) })
				})
			})
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(order) != n {
			t.Fatalf("%v: ordered ran %d times, want %d", mode, len(order), n)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("%v: ordered sequence %v broken at %d", mode, order[:i+1], i)
			}
		}
	}
}

func TestForOrderedSkippedByA(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	aRan := false
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForOrdered(0, 8, func(i int, ordered func(func())) {
				ordered(func() {
					if t2.IsA() {
						aRan = true
					}
				})
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aRan {
		t.Fatal("A-stream executed an ordered region")
	}
}

func TestTwoOrderedLoopsSameRegion(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	var first, second []int
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForOrdered(0, 6, func(i int, ordered func(func())) {
				ordered(func() { first = append(first, i) })
			})
			t2.ForOrdered(0, 6, func(i int, ordered func(func())) {
				ordered(func() { second = append(second, i) })
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	if len(first) != 6 || len(second) != 6 {
		t.Fatalf("ordered loops ran %d/%d iterations", len(first), len(second))
	}
}

func TestSectionsDynamicRunsAllOnce(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeSlipstream} {
		c := cfg(mode, 4)
		rt, _ := New(c)
		counts := make([]int, 10)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				bodies := make([]func(), 10)
				for s := range bodies {
					s := s
					bodies[s] = func() {
						if !t2.IsA() {
							counts[s]++
						}
					}
				}
				t2.SectionsDynamic(bodies...)
			})
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for s, n := range counts {
			if n != 1 {
				t.Fatalf("%v: section %d ran %d times", mode, s, n)
			}
		}
	}
}

func TestForAffinityCoversAllIterations(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		c := cfg(mode, 4)
		rt, _ := New(c)
		const n = 177
		count := rt.NewI64(n)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.ForAffinity(5, 0, n, func(i int) {
					if !t2.IsA() {
						t2.StI(count, i, count.Get(i)+1)
					}
					t2.Compute(3)
				})
			})
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := 0; i < n; i++ {
			if count.Get(i) != 1 {
				t.Fatalf("%v: iteration %d ran %d times", mode, i, count.Get(i))
			}
		}
	}
}

func TestForAffinityPrefersOwnBlock(t *testing.T) {
	c := cfg(core.ModeSingle, 4)
	rt, _ := New(c)
	const n = 64 // 16 per thread
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForAffinity(4, 0, n, func(i int) {
				if owner[i] < 0 {
					owner[i] = t2.ID()
				}
				t2.Compute(10)
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	// With uniform work nobody needs to steal: every iteration should be
	// executed by its block owner.
	for i, o := range owner {
		want := i * 4 / n
		if o != want {
			t.Fatalf("iteration %d ran on thread %d, want block owner %d", i, o, want)
		}
	}
}

func TestForAffinityStealsFromImbalance(t *testing.T) {
	c := cfg(core.ModeSingle, 4)
	rt, _ := New(c)
	const n = 64
	owner := make([]int, n)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForAffinity(2, 0, n, func(i int) {
				owner[i] = t2.ID()
				if i < 16 {
					t2.Compute(8000) // thread 0's block is very heavy
				} else {
					t2.Compute(5)
				}
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for i := 0; i < 16; i++ {
		if owner[i] != 0 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("no iterations stolen from the overloaded block")
	}
}

func TestForAffinitySlipstreamVerifies(t *testing.T) {
	// A-streams must replay exactly their R-stream's claimed chunks,
	// including steals.
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	const n = 120
	dst := rt.NewF64(n)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForAffinity(3, 0, n, func(i int) {
				t2.Compute(uint64(1 + (i*7)%40))
				t2.StF(dst, i, float64(i)+0.5)
			})
			t2.ForAffinity(3, 0, n, func(i int) {
				t2.StF(dst, i, t2.LdF(dst, i)*2)
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dst.Get(i) != 2*(float64(i)+0.5) {
			t.Fatalf("dst[%d] = %v", i, dst.Get(i))
		}
	}
}

func TestDirectiveIfHelper(t *testing.T) {
	d := &core.Directive{Type: core.LocalSync, Tokens: 1, HasTokens: true}
	if got := core.If(true, d); got != d {
		t.Fatal("If(true) did not pass the directive through")
	}
	if got := core.If(false, d); got.Type != core.NoneSync {
		t.Fatalf("If(false) = %+v, want NONE", got)
	}
	// End-to-end: gate slipstream on CMP count, as §3.3 suggests.
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	aRan := false
	limit := 4 // "use slipstream only when more than 4 CMPs"
	if err := rt.Run(func(m *Thread) {
		m.ParallelD(core.If(c.Machine.Nodes > limit, nil), func(t2 *Thread) {
			if t2.IsA() {
				aRan = true
			}
			t2.Compute(5)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aRan {
		t.Fatal("slipstream ran despite failing the IF condition")
	}
}

func TestParallelTunedSettlesAndStaysCorrect(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	tu := core.NewAutoTuner(core.G0, core.L1)
	const n = 512
	arr := rt.NewF64(n)
	iters := 0
	if err := rt.Run(func(m *Thread) {
		for it := 0; it < 8; it++ { // 2 candidates x (1 warmup + 1 trial) + settled runs
			iters++
			m.ParallelTuned(tu, "sweep", func(t2 *Thread) {
				t2.For(0, n, func(i int) {
					t2.StF(arr, i, t2.LdF(arr, i)+1)
					t2.Compute(3)
				})
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !tu.Settled() {
		t.Fatalf("tuner not settled after %d executions:\n%s", iters, tu.Summary())
	}
	if _, ok := tu.Best("sweep"); !ok {
		t.Fatal("no best recorded")
	}
	for i := 0; i < n; i++ {
		if arr.Get(i) != 8 {
			t.Fatalf("arr[%d] = %v, want 8 (tuning must not change results)", i, arr.Get(i))
		}
	}
}

func TestRegionProfiler(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	rt.EnableProfile()
	if err := rt.Run(func(m *Thread) {
		for it := 0; it < 3; it++ {
			m.ParallelP("sweep", nil, func(t2 *Thread) {
				t2.For(0, 100, func(i int) { t2.Compute(10) })
			})
		}
		m.Parallel(func(t2 *Thread) { t2.Compute(5) }) // unlabeled
	}); err != nil {
		t.Fatal(err)
	}
	profs := rt.Profiles()
	if len(profs) != 2 {
		t.Fatalf("profiles = %+v, want sweep + one unlabeled", profs)
	}
	var sweep *RegionProfile
	for i := range profs {
		if profs[i].Label == "sweep" {
			sweep = &profs[i]
		}
	}
	if sweep == nil || sweep.Count != 3 || sweep.Cycles == 0 {
		t.Fatalf("sweep profile = %+v", sweep)
	}
	var sb strings.Builder
	rt.WriteProfile(&sb)
	if !strings.Contains(sb.String(), "sweep") || !strings.Contains(sb.String(), "region-4") {
		t.Fatalf("profile report:\n%s", sb.String())
	}
}

func TestProfilerOffByDefault(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.ParallelP("x", nil, func(t2 *Thread) { t2.Compute(1) })
	}); err != nil {
		t.Fatal(err)
	}
	if len(rt.Profiles()) != 0 {
		t.Fatal("profiler recorded while disabled")
	}
}

func TestThreadTime(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	var t0, t1 float64
	if err := rt.Run(func(m *Thread) {
		t0 = m.Time()
		m.Parallel(func(t2 *Thread) { t2.Compute(1_200_000) }) // 1 ms at 1.2 GHz
		t1 = m.Time()
	}); err != nil {
		t.Fatal(err)
	}
	if d := t1 - t0; d < 0.0009 || d > 0.002 {
		t.Fatalf("elapsed = %v s, want ~1 ms", d)
	}
}

func TestInputInSingleMode(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.Master(func() { t2.Input(500) })
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleReducesPerRegion(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeSlipstream} {
		c := cfg(mode, 4)
		rt, _ := New(c)
		var s1, s2 float64
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				a := t2.ReduceSumF(1)
				b := t2.ReduceSumF(10)
				if t2.ID() == 0 && !t2.IsA() {
					s1, s2 = a, b
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		if s1 != 4 || s2 != 40 {
			t.Fatalf("%v: reduces = %v, %v; want 4, 40", mode, s1, s2)
		}
	}
}

func TestSectionsMoreThanTeam(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	ran := make([]int, 7)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			bodies := make([]func(), 7)
			for s := range bodies {
				s := s
				bodies[s] = func() { ran[s]++ }
			}
			t2.Sections(bodies...)
		})
	}); err != nil {
		t.Fatal(err)
	}
	for s, n := range ran {
		if n != 1 {
			t.Fatalf("section %d ran %d times", s, n)
		}
	}
}

package omp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// staticRunAllocs measures the allocations of one complete runtime run: a
// parallel region executing a static worksharing loop of iters iterations
// over shared data, including the implied and region-end barriers.
func staticRunAllocs(t *testing.T, iters int) float64 {
	t.Helper()
	p := machine.DefaultParams()
	p.Nodes = 2
	return testing.AllocsPerRun(5, func() {
		rt, err := New(Config{Machine: p, Mode: core.ModeSingle})
		if err != nil {
			t.Fatal(err)
		}
		data := rt.NewF64(64)
		err = rt.Run(func(m *Thread) {
			m.Parallel(func(th *Thread) {
				th.For(0, iters, func(i int) {
					th.LdF(data, i%64)
					th.StF(data, i%64, float64(i))
				})
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// taskRunAllocs measures the allocations of one run that spawns n
// single-iteration taskloop chunks from the master and drains them at a
// task barrier — exercising the push (spawn), pop (owner drain), and
// steal (second thread) hot paths of the task deques.
func taskRunAllocs(t *testing.T, n int) float64 {
	t.Helper()
	p := machine.DefaultParams()
	p.Nodes = 2
	return testing.AllocsPerRun(5, func() {
		rt, err := New(Config{Machine: p, Mode: core.ModeSingle})
		if err != nil {
			t.Fatal(err)
		}
		data := rt.NewF64(64)
		body := func(c *Thread, clo, chi int) {
			for i := clo; i < chi; i++ {
				c.LdF(data, i%64)
			}
		}
		err = rt.Run(func(m *Thread) {
			m.Parallel(func(th *Thread) {
				th.Master(func() { th.TaskloopChunked(1, 0, n, body) })
				th.TaskBarrier()
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// Task push/pop/steal must not allocate per task: the record table, rings,
// and scheduler cells are preallocated at first use, and taskloop chunks
// share one closure. Only the constant setup cost may differ between a
// 100-task and a 6100-task run.
func TestTaskSchedulingAllocFree(t *testing.T) {
	taskRunAllocs(t, 10) // warm the sim worker pool
	small := taskRunAllocs(t, 100)
	large := taskRunAllocs(t, 6100)
	slope := (large - small) / 6000
	if slope > 0.01 {
		t.Fatalf("task scheduling allocates: %.0f allocs at 100 tasks, %.0f at 6100 (%.4f allocs/task)",
			small, large, slope)
	}
}

// A static-schedule iteration (loads, stores, spin polls, barriers) must
// not allocate per iteration: runtime construction dominates and the cost
// may not scale with the iteration count. A per-iteration allocation
// regression in the runtime, machine, or sim layers fails this test
// directly, independent of the bench ratchet.
func TestStaticScheduleIterationAllocFree(t *testing.T) {
	staticRunAllocs(t, 10) // warm the sim worker pool
	small := staticRunAllocs(t, 100)
	large := staticRunAllocs(t, 10100)
	slope := (large - small) / 10000
	if slope > 0.01 {
		t.Fatalf("static-sched iteration allocates: %.0f allocs at 100 iters, %.0f at 10100 (%.4f allocs/iter)",
			small, large, slope)
	}
}

package omp

import (
	"repro/internal/stats"
)

// recoveryCheckStride is how many iterations an A-stream executes between
// polls of the recovery flag (a pair-register access each poll).
const recoveryCheckStride = 256

// For runs a worksharing loop over [lo, hi) with the run's default
// schedule, ending with the construct's implied barrier.
func (t *Thread) For(lo, hi int, body func(i int)) {
	t.ForSched(t.rt.Cfg.Sched, t.rt.Cfg.Chunk, lo, hi, false, body)
}

// ForNowait is For without the implied barrier (OpenMP nowait clause).
func (t *Thread) ForNowait(lo, hi int, body func(i int)) {
	t.ForSched(t.rt.Cfg.Sched, t.rt.Cfg.Chunk, lo, hi, true, body)
}

// ForStatic runs the loop with a static schedule regardless of the run's
// default (used by programs that hard-code static scheduling, as LU does
// in the paper's benchmark set).
func (t *Thread) ForStatic(lo, hi int, body func(i int)) {
	t.ForSched(Static, 0, lo, hi, false, body)
}

// ForSched runs a worksharing loop with an explicit schedule and chunk.
func (t *Thread) ForSched(sched Schedule, chunk int, lo, hi int, nowait bool, body func(i int)) {
	switch sched {
	case Static:
		t.forStatic(lo, hi, body)
	case Dynamic:
		t.forDynamic(chunk, lo, hi, body, false)
	case Guided:
		t.forDynamic(chunk, lo, hi, body, true)
	}
	if !nowait {
		t.Barrier()
	}
}

// forStatic block-partitions [lo, hi) by thread ID. Each thread computes
// its block independently from the thread count and ID, so an A-stream
// reaches the same assignment as its R-stream with no synchronization at
// all (§3.2.1) — the least restrictive model for slipstream.
func (t *Thread) forStatic(lo, hi int, body func(i int)) {
	if t.abandoned {
		return
	}
	n := hi - lo
	if n <= 0 {
		return
	}
	nth := t.rt.teamSize
	myLo := lo + t.id*n/nth
	myHi := lo + (t.id+1)*n/nth
	t.Compute(4) // index arithmetic
	t.runChunk(myLo, myHi, body)
}

// runChunk executes iterations, letting A-streams poll for recovery at a
// coarse stride. A straggler thread (an armed fault plan's thread class)
// pays a per-iteration stall on every chunk it executes: under static
// scheduling the whole block is slowed and the team waits at the barrier,
// while dynamic scheduling migrates work away from the straggler.
func (t *Thread) runChunk(lo, hi int, body func(i int)) {
	if !t.isA {
		if d := t.rt.M.Faults.ThreadStall(t.id, hi-lo); d > 0 {
			t.P.Wait(d)
		}
	}
	for i := lo; i < hi; i++ {
		if t.abandoned {
			return
		}
		body(i)
		if t.isA && (i-lo)%recoveryCheckStride == recoveryCheckStride-1 {
			if t.rt.SS.ARecoveryPending(t.P) {
				t.rt.SS.AAbsorbRecovery(t.P)
				t.abandoned = true
				return
			}
		}
	}
}

// forDynamic implements dynamic and guided schedules: threads serialize
// through the loop's scheduler critical section to claim chunks (§3.2.2:
// "the scheduling decision should be serialized using a critical
// section"). In slipstream mode the R-stream publishes every decision —
// including the terminal empty one — through the pair's syscall semaphore,
// and the A-stream waits for and replays those decisions, since it cannot
// know a priori which chunks its R-stream will win.
func (t *Thread) forDynamic(chunk, lo, hi int, body func(i int), guided bool) {
	rt := t.rt
	if chunk <= 0 {
		chunk = 1
	}
	if t.isA {
		if !t.ssActive {
			return
		}
		for !t.abandoned {
			lo64, hi64, ok := rt.SS.ATakeDecision(t.P)
			if !ok {
				rt.SS.AAbsorbRecovery(t.P)
				t.abandoned = true
				return
			}
			if lo64 >= hi64 {
				return // terminal decision
			}
			t.runChunk(int(lo64), int(hi64), body)
		}
		return
	}

	ls := rt.loopInstance(int(t.lastSeq), t.loopIdx, lo)
	t.loopIdx++
	for {
		var cLo, cHi int
		old := t.P.SetCategory(stats.CatSched)
		if guided {
			// Guided chunks depend on the remaining count, so the
			// scheduler serializes through a critical section (§3.2.2).
			t.lockAcquire(ls.lock, stats.CatSched)
			t.P.Load(ls.next.Addr(0))
			cLo = int(ls.next.Get(0))
			remaining := hi - cLo
			size := chunk
			if g := remaining / (2 * rt.teamSize); g > size {
				size = g
			}
			cHi = cLo + size
			if cHi > hi {
				cHi = hi
			}
			if remaining > 0 {
				t.P.Store(ls.next.Addr(0))
				ls.next.Set(0, int64(cHi))
			}
			t.lockRelease(ls.lock)
		} else {
			// Fixed-size dynamic chunks: one atomic fetch-and-add on the
			// shared counter; serialization comes from the counter line
			// migrating between CMPs.
			cLo = int(t.fetchAdd(ls.next, 0, int64(chunk)))
			cHi = cLo + chunk
			if cHi > hi {
				cHi = hi
			}
		}
		t.P.SetCategory(old)
		if t.ssActive {
			rt.SS.RPublishDecision(t.P, int64(cLo), int64(cHi))
		}
		if cLo >= hi {
			return
		}
		t.runChunk(cLo, cHi, body)
	}
}

// loopInstance returns (lazily creating) the shared scheduler state for a
// dynamic/guided loop occurrence, with the next-iteration counter
// initialized to lo.
func (rt *Runtime) loopInstance(seq, idx, lo int) *loopState {
	key := [2]int{seq, idx}
	ls := rt.loops[key]
	if ls == nil {
		ls = &loopState{lock: rt.NewLock(), next: rt.NewI64(1)}
		ls.next.Set(0, int64(lo))
		rt.loops[key] = ls
	}
	return ls
}

// affinityInstance returns the shared per-thread counters of an affinity-
// scheduled loop occurrence: next[t] and end[t] delimit thread t's block.
func (rt *Runtime) affinityInstance(seq, idx, lo, hi int) *loopState {
	key := [2]int{seq, idx}
	ls := rt.loops[key]
	if ls == nil {
		nth := rt.teamSize
		ls = &loopState{next: rt.NewI64(nth), end: rt.NewI64(nth)}
		n := hi - lo
		for t := 0; t < nth; t++ {
			ls.next.Set(t, int64(lo+t*n/nth))
			ls.end.Set(t, int64(lo+(t+1)*n/nth))
		}
		rt.loops[key] = ls
	}
	return ls
}

// ForAffinity runs the loop with affinity scheduling (the extension the
// paper cites in §3.2.2): each thread first drains its own static block in
// chunks — preserving cache affinity across repeated loop instances — and
// then steals chunks from the most loaded victim. In slipstream mode the
// R-stream publishes every claimed chunk to its A-stream exactly as
// dynamic scheduling does, since steals are timing-dependent.
func (t *Thread) ForAffinity(chunk, lo, hi int, body func(i int)) {
	rt := t.rt
	if chunk <= 0 {
		chunk = 1
	}
	if t.isA {
		// Replay the R-stream's claimed chunks.
		if t.ssActive {
			for !t.abandoned {
				lo64, hi64, ok := rt.SS.ATakeDecision(t.P)
				if !ok {
					rt.SS.AAbsorbRecovery(t.P)
					t.abandoned = true
					break
				}
				if lo64 >= hi64 {
					break
				}
				t.runChunk(int(lo64), int(hi64), body)
			}
		}
		t.Barrier()
		return
	}

	ls := rt.affinityInstance(int(t.lastSeq), t.loopIdx, lo, hi)
	t.loopIdx++
	claim := func(victim int) (cLo, cHi int, ok bool) {
		old := t.P.SetCategory(stats.CatSched)
		end := int(ls.end.Get(victim)) // block bounds are loop constants
		got := int(t.fetchAdd(ls.next, victim, int64(chunk)))
		if got < end {
			cLo = got
			cHi = got + chunk
			if cHi > end {
				cHi = end
			}
			ok = true
		}
		t.P.SetCategory(old)
		return cLo, cHi, ok
	}
	work := func(cLo, cHi int) {
		if t.ssActive {
			rt.SS.RPublishDecision(t.P, int64(cLo), int64(cHi))
		}
		t.runChunk(cLo, cHi, body)
	}
	// Phase 1: own block.
	for {
		cLo, cHi, ok := claim(t.id)
		if !ok {
			break
		}
		work(cLo, cHi)
	}
	// Phase 2: steal from the victim with the most remaining work.
	for {
		victim, best := -1, 0
		old := t.P.SetCategory(stats.CatSched)
		for v := 0; v < rt.teamSize; v++ {
			if v == t.id {
				continue
			}
			t.P.Load(ls.next.Addr(v))
			if left := int(ls.end.Get(v) - ls.next.Get(v)); left > best {
				victim, best = v, left
			}
		}
		t.P.SetCategory(old)
		if victim < 0 {
			break
		}
		cLo, cHi, ok := claim(victim)
		if !ok {
			continue // lost the race; rescan
		}
		work(cLo, cHi)
	}
	if t.ssActive {
		rt.SS.RPublishDecision(t.P, 0, 0) // terminal decision
	}
	t.Barrier()
}

package omp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// RegionProfile is the measured cost of one parallel-region call site
// (identified by the label passed to ParallelP, or by sequence number for
// unlabeled regions).
type RegionProfile struct {
	Label  string
	Count  int
	Cycles uint64
}

// profiler accumulates per-region timings on the master thread.
type profiler struct {
	enabled  bool
	labeling bool // inside ParallelP: suppress the sequence-keyed record
	byLabel  map[string]*RegionProfile
}

// EnableProfile turns on per-region timing. Regions run through ParallelP
// are keyed by label; Parallel/ParallelD calls are keyed "region-<seq>".
func (rt *Runtime) EnableProfile() {
	rt.prof.enabled = true
	if rt.prof.byLabel == nil {
		rt.prof.byLabel = make(map[string]*RegionProfile)
	}
}

// record adds one region execution.
func (p *profiler) record(label string, cycles uint64) {
	if !p.enabled {
		return
	}
	r := p.byLabel[label]
	if r == nil {
		r = &RegionProfile{Label: label}
		p.byLabel[label] = r
	}
	r.Count++
	r.Cycles += cycles
}

// Profiles returns the accumulated per-region costs, most expensive first.
func (rt *Runtime) Profiles() []RegionProfile {
	out := make([]RegionProfile, 0, len(rt.prof.byLabel))
	for _, r := range rt.prof.byLabel {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// WriteProfile renders the region profile as a table.
func (rt *Runtime) WriteProfile(w io.Writer) {
	total := uint64(0)
	for _, r := range rt.prof.byLabel {
		total += r.Cycles
	}
	fmt.Fprintf(w, "%-24s %6s %12s %7s\n", "region", "calls", "cycles", "share")
	for _, r := range rt.Profiles() {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Cycles) / float64(total)
		}
		fmt.Fprintf(w, "%-24s %6d %12d %6.1f%%\n", r.Label, r.Count, r.Cycles, share)
	}
}

// ParallelP is Parallel with a profiling label (and optional directive):
// when profiling is enabled, the master's wall time for each execution of
// the region accumulates under the label.
func (t *Thread) ParallelP(label string, dir *core.Directive, body func(*Thread)) {
	rt := t.rt
	start := t.P.Ctx.Now()
	rt.prof.labeling = true
	t.ParallelD(dir, body)
	rt.prof.labeling = false
	rt.prof.record(label, t.P.Ctx.Now()-start)
}

// Package omp is an OpenMP-style runtime for the simulated machine,
// structured the way the Omni compiler's generated code and runtime
// library are (paper §4.1): a pool of slave threads is created at program
// start and spins on a shared job flag; parallel regions are functions the
// master publishes to the pool; worksharing constructs (for-loops with
// static/dynamic/guided schedules, single, master, sections, critical,
// atomic, reduction, flush) are runtime calls.
//
// Slipstream support (paper §3) is woven into the runtime exactly where
// the paper modifies Omni's library: barrier synchronization, construct
// handling, reduction handling, and task assignment. The same program runs
// unmodified in single, double, or slipstream mode.
package omp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/shmem"
	"repro/internal/stats"
)

// Schedule selects the worksharing schedule for parallel loops.
type Schedule int

// Loop schedules.
const (
	Static Schedule = iota
	Dynamic
	Guided
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("sched(%d)", int(s))
}

// Config describes one run of a program.
type Config struct {
	Machine machine.Params
	Mode    core.Mode

	// Slipstream is the global slipstream setting (used when Mode is
	// ModeSlipstream and Env is empty). The zero value is the paper's
	// default: zero-token global synchronization.
	Slipstream core.Config
	// Env, when non-empty, is the OMP_SLIPSTREAM environment value and
	// takes the place of Slipstream (runtime control of the same binary).
	Env string
	// SelfInvalidate enables A-stream self-invalidation hints (only
	// effective under global synchronization).
	SelfInvalidate bool

	Sched Schedule // default loop schedule
	Chunk int      // dynamic/guided chunk size (0 = 1, the Omni default)

	// Faults, when non-nil with a positive rate, arms a deterministic
	// fault plan for the run: machine-level latency faults, forced
	// divergences and token losses in the slipstream protocol, and
	// straggler threads in the scheduler. Faults cost time, never
	// correctness — injected runs still verify.
	Faults *faults.Config

	// TaskDequeCap overrides the per-thread task deque capacity (0 = the
	// default; spawns past a full deque execute undeferred).
	TaskDequeCap int
	// TaskIDBudget overrides the per-thread, per-region explicit task ID
	// budget (0 = the default; exhausted spawns execute undeferred).
	TaskIDBudget int
}

// job is one published parallel region.
type job struct {
	fn  func(*Thread)
	cfg core.Config // resolved slipstream config for this region
}

// Runtime is the runtime library instance for one program run.
type Runtime struct {
	Cfg Config
	M   *machine.Machine
	SS  *core.Controller

	team     []*Thread // master + R/normal slaves (the OpenMP team)
	aTeam    []*Thread // A-stream shadows (slipstream mode only)
	teamSize int

	// Shared runtime state (lives in simulated shared memory).
	jobSeq   *shmem.I64 // [0]: latest published region sequence (-1 ends)
	barCount *shmem.I64
	barSense *shmem.I64

	jobs []*job // indexed by region sequence (entry 0 unused)

	critLocks map[string]*Lock
	singles   map[[2]int]*shmem.I64
	reduces   map[[2]int]*shmem.F64
	loops     map[[2]int]*loopState
	taskbars  map[[2]int]*shmem.I64

	// tasks is the work-stealing task scheduler state (task.go), created
	// lazily on the first task construct so task-free programs keep a
	// byte-identical shared-memory layout.
	tasks *taskRT

	// g0Pending holds R-streams whose global-sync token should be inserted
	// at the current barrier's completion instant (§2.2: the token goes in
	// "before exiting the barrier").
	g0Pending []*machine.Proc

	prof profiler
}

// loopState is the shared scheduler state of one dynamic/guided/affinity
// loop instance: a next-iteration counter (per thread for affinity, with
// end holding the block limits), lock-protected for guided schedules.
type loopState struct {
	lock *Lock
	next *shmem.I64
	end  *shmem.I64
}

// New builds a machine and runtime for cfg.
func New(cfg Config) (*Runtime, error) {
	if cfg.Mode == core.ModeSlipstream {
		cfg.Machine.TrackClass = true
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	m := machine.New(cfg.Machine)
	// Each run gets its own injector, so concurrent runs of the same plan
	// stay independent and each is deterministic in isolation.
	m.Faults = faults.New(cfg.Faults)
	ss, err := core.NewController(m, cfg.Mode == core.ModeSlipstream, cfg.Env)
	if err != nil {
		return nil, err
	}
	if cfg.Mode == core.ModeSlipstream && cfg.Env == "" {
		ss.SetGlobal(core.Directive{Type: cfg.Slipstream.Type, Tokens: cfg.Slipstream.Tokens, HasTokens: true})
	}
	rt := &Runtime{
		Cfg:       cfg,
		M:         m,
		SS:        ss,
		critLocks: make(map[string]*Lock),
		singles:   make(map[[2]int]*shmem.I64),
		reduces:   make(map[[2]int]*shmem.F64),
		loops:     make(map[[2]int]*loopState),
		taskbars:  make(map[[2]int]*shmem.I64),
		jobs:      []*job{nil},
	}
	rt.jobSeq = rt.NewI64(1)
	rt.barCount = rt.NewI64(1)
	rt.barSense = rt.NewI64(1)

	switch cfg.Mode {
	case core.ModeSingle:
		rt.teamSize = cfg.Machine.Nodes
		for i := 0; i < rt.teamSize; i++ {
			rt.team = append(rt.team, &Thread{rt: rt, id: i, P: m.Procs[2*i]})
		}
	case core.ModeDouble:
		rt.teamSize = 2 * cfg.Machine.Nodes
		for i := 0; i < rt.teamSize; i++ {
			rt.team = append(rt.team, &Thread{rt: rt, id: i, P: m.Procs[i]})
		}
	case core.ModeSlipstream:
		rt.teamSize = cfg.Machine.Nodes
		ss.WirePairs(cfg.SelfInvalidate)
		for i := 0; i < rt.teamSize; i++ {
			rt.team = append(rt.team, &Thread{rt: rt, id: i, P: m.Procs[2*i]})
			rt.aTeam = append(rt.aTeam, &Thread{rt: rt, id: i, P: m.Procs[2*i+1], isA: true})
		}
	default:
		return nil, fmt.Errorf("omp: unknown mode %v", cfg.Mode)
	}
	return rt, nil
}

// NumThreads returns the OpenMP team size (half the processors in
// slipstream mode, per paper §3.1 "Thread count/ID").
func (rt *Runtime) NumThreads() int { return rt.teamSize }

// Faults returns the run's fault injector (nil when no plan is armed; a
// nil injector is safe to query).
func (rt *Runtime) Faults() *faults.Injector { return rt.M.Faults }

// FaultsInjected reports how many faults the run's plan injected.
func (rt *Runtime) FaultsInjected() uint64 { return rt.M.Faults.Total() }

// NewF64 allocates a shared float64 array (untimed: program setup).
func (rt *Runtime) NewF64(n int) *shmem.F64 {
	return shmem.NewF64(rt.M.Space, n, rt.Cfg.Machine.LineBytes)
}

// NewI64 allocates a shared int64 array (untimed: program setup).
func (rt *Runtime) NewI64(n int) *shmem.I64 {
	return shmem.NewI64(rt.M.Space, n, rt.Cfg.Machine.LineBytes)
}

// NewLock allocates a lock whose word lives in shared memory.
func (rt *Runtime) NewLock() *Lock { return &Lock{w: rt.NewI64(1)} }

// Run executes program to completion: the master thread runs the serial
// code, everyone else enters the slave pool. It returns the machine-level
// error, if any (deadlock or coherence violation).
func (rt *Runtime) Run(program func(*Thread)) error {
	master := rt.team[0]
	rt.M.Start(master.P.GID, func(*machine.Proc) {
		program(master)
		rt.terminate(master)
	})
	for _, t := range rt.team[1:] {
		t := t
		rt.M.Start(t.P.GID, func(*machine.Proc) { rt.slaveLoop(t) })
	}
	for _, t := range rt.aTeam {
		t := t
		rt.M.Start(t.P.GID, func(*machine.Proc) { rt.slaveLoop(t) })
	}
	return rt.M.Run()
}

// terminate publishes the end-of-program sentinel so the pool drains.
func (rt *Runtime) terminate(master *Thread) {
	master.P.Store(rt.jobSeq.Addr(0))
	rt.jobSeq.Set(0, -1)
}

// slaveLoop is the pool loop: spin on the job flag, run the region, repeat.
// Job-wait spinning is attributed to the jobwait category (Figure 2/4).
func (rt *Runtime) slaveLoop(t *Thread) {
	poll := rt.Cfg.Machine.SpinPollCycles
	for {
		old := t.P.SetCategory(stats.CatJobWait)
		var seq int64
		for {
			t.P.Load(rt.jobSeq.Addr(0))
			seq = rt.jobSeq.Get(0)
			if seq < 0 || seq > t.lastSeq {
				break
			}
			t.P.Wait(poll)
		}
		t.P.SetCategory(old)
		if seq < 0 {
			return
		}
		t.lastSeq = seq
		t.runRegion(rt.jobs[seq], seq)
	}
}

// Parallel opens a parallel region executing body on every team thread
// (and, in slipstream mode, on every A-stream). Only the master may call
// it; nesting is not supported (execution mode is fixed per region, §3.1).
func (t *Thread) Parallel(body func(*Thread)) { t.ParallelD(nil, body) }

// ParallelTuned runs a parallel region whose slipstream configuration is
// chosen by an AutoTuner: the tuner cycles candidate configurations across
// repeated executions of the same region key and then locks in the
// fastest (the per-region exploration §5.1 calls for).
func (t *Thread) ParallelTuned(tu *core.AutoTuner, key string, body func(*Thread)) {
	dir := tu.Directive(key)
	start := t.P.Ctx.Now()
	t.ParallelD(dir, body)
	tu.Report(key, t.P.Ctx.Now()-start)
}

// ParallelD is Parallel with an attached SLIPSTREAM directive (nil = none).
func (t *Thread) ParallelD(dir *core.Directive, body func(*Thread)) {
	rt := t.rt
	if t.id != 0 || t.isA {
		panic("omp: Parallel called off the master thread")
	}
	if t.inRegion {
		panic("omp: nested parallel regions are not supported")
	}
	cfg := rt.SS.Effective(dir)
	if rt.tasks != nil {
		// Recycle the task tables before any thread can enter the region.
		rt.tasks.regionReset()
	}
	rt.jobs = append(rt.jobs, &job{fn: body, cfg: cfg})
	seq := int64(len(rt.jobs) - 1)
	start := t.P.Ctx.Now()
	// Publish the job: one store; the pool's spin loads take the line.
	t.P.Store(rt.jobSeq.Addr(0))
	rt.jobSeq.Set(0, seq)
	t.lastSeq = seq
	t.runRegion(rt.jobs[seq], seq)
	if rt.prof.enabled && !rt.prof.labeling {
		rt.prof.record(fmt.Sprintf("region-%d", seq), t.P.Ctx.Now()-start)
	}
}

// runRegion executes one parallel region on this thread, including the
// implicit end-of-region barrier.
func (t *Thread) runRegion(j *job, seq int64) {
	rt := t.rt
	t.inRegion = true
	t.regionCfg = j.cfg
	t.ssActive = rt.SS.Active(j.cfg)
	t.singleIdx = 0
	t.reduceIdx = 0
	t.loopIdx = 0
	t.orderedIdx = 0
	t.taskBarIdx = 0
	t.curTask = int32(t.id) + 1 // this thread's implicit task
	t.abandoned = false
	defer func() { t.inRegion = false }()

	if t.isA {
		if !t.ssActive {
			// Slipstream disabled for this region: the A-stream idles.
			return
		}
		rt.SS.AAwaitRegion(t.P, seq)
		rt.SS.AStartRegion(t.P)
		j.fn(t)
		t.Barrier() // consume the end-of-region token
		return
	}
	if t.ssActive {
		rt.SS.RPickupRegion(t.P, seq, j.cfg)
	}
	j.fn(t)
	t.Barrier() // implicit region-end barrier
}

package omp

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

// TestGuidedChunksShrink: with all threads competing, guided scheduling
// produces ownership runs (chunks) whose sizes shrink from about
// remaining/(2*threads) down to the minimum chunk.
func TestGuidedChunksShrink(t *testing.T) {
	c := cfg(core.ModeSingle, 4)
	rt, _ := New(c)
	const n = 2000
	owner := make([]int, n)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForSched(Guided, 2, 0, n, false, func(i int) {
				owner[i] = t2.ID()
				t2.Compute(5)
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	// Split into ownership runs.
	var runs []int
	runLen := 1
	for i := 1; i < n; i++ {
		if owner[i] == owner[i-1] {
			runLen++
		} else {
			runs = append(runs, runLen)
			runLen = 1
		}
	}
	runs = append(runs, runLen)
	if len(runs) < 4 {
		t.Fatalf("guided produced only %d ownership runs", len(runs))
	}
	first, last := runs[0], runs[len(runs)-1]
	want := n / (2 * 4)
	if first < want/2 || first > 2*want {
		t.Fatalf("first chunk %d, want about %d", first, want)
	}
	if last > first {
		t.Fatalf("chunks grew: first %d, last %d", first, last)
	}
}

// TestNamedCriticalsIndependent: different names use different locks, so
// counts protected by each are exact and both make progress.
func TestNamedCriticalsIndependent(t *testing.T) {
	c := cfg(core.ModeDouble, 2)
	rt, _ := New(c)
	a := rt.NewI64(1)
	b := rt.NewI64(1)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			for k := 0; k < 8; k++ {
				t2.CriticalNamed("a", func() { t2.StI(a, 0, t2.LdI(a, 0)+1) })
				t2.CriticalNamed("b", func() { t2.StI(b, 0, t2.LdI(b, 0)+1) })
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if a.Get(0) != 32 || b.Get(0) != 32 {
		t.Fatalf("counts = %d, %d; want 32, 32", a.Get(0), b.Get(0))
	}
}

// TestLockWaitAttribution: contended lock time lands in the lock category.
func TestLockWaitAttribution(t *testing.T) {
	c := cfg(core.ModeSingle, 4)
	rt, _ := New(c)
	cell := rt.NewI64(1)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			for k := 0; k < 5; k++ {
				t2.Critical(func() {
					t2.Compute(2000) // long critical section forces queueing
					t2.StI(cell, 0, t2.LdI(cell, 0)+1)
				})
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	var lock uint64
	for _, p := range rt.M.Procs {
		lock += p.Bd[stats.CatLock]
	}
	if lock < 20000 {
		t.Fatalf("lock wait = %d cycles, expected heavy contention", lock)
	}
}

// TestStaticPartitionProperty: static blocks tile [lo,hi) exactly for any
// team size and range.
func TestStaticPartitionProperty(t *testing.T) {
	f := func(loRaw, spanRaw uint8, nodesRaw uint8) bool {
		nodes := 1 + int(nodesRaw%8)
		lo := int(loRaw % 50)
		hi := lo + int(spanRaw)
		c := cfg(core.ModeSingle, nodes)
		rt, _ := New(c)
		seen := make([]int, hi-lo)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.ForStatic(lo, hi, func(i int) {
					seen[i-lo]++
				})
			})
		}); err != nil {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicChunkBoundaries: every dynamic chunk is at most the requested
// size and they tile the space.
func TestDynamicChunkBoundaries(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	c.Sched = Dynamic
	c.Chunk = 7
	rt, _ := New(c)
	const n = 50
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, n, func(i int) { owner[i] = t2.ID() })
		})
	}); err != nil {
		t.Fatal(err)
	}
	// Owners change only at multiples of the chunk size.
	for i := 1; i < n; i++ {
		if owner[i] != owner[i-1] && i%7 != 0 {
			t.Fatalf("chunk boundary at %d not aligned to chunk size", i)
		}
	}
}

// TestRuntimeAccessors: thread metadata APIs.
func TestRuntimeAccessors(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		if m.ID() != 0 || m.IsA() {
			t.Error("master metadata wrong")
		}
		if m.Num() != 2 || m.Runtime() != rt {
			t.Error("accessors wrong")
		}
		m.Parallel(func(t2 *Thread) {
			if t2.Num() != 2 {
				t.Error("team size in region wrong")
			}
			t2.Compute(1)
		})
	}); err != nil {
		t.Fatal(err)
	}
}

package omp

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

// TestTokenAccountingAcrossRegions: after a program with several regions
// and barriers, every pair's consumed-token count equals its inserted
// count (A-streams neither leak nor overdraw tokens).
func TestTokenAccountingAcrossRegions(t *testing.T) {
	for _, ss := range []core.Config{core.G0, core.L1, {Type: core.LocalSync, Tokens: 3}} {
		c := cfg(core.ModeSlipstream, 4)
		c.Slipstream = ss
		rt, _ := New(c)
		if err := rt.Run(func(m *Thread) {
			for r := 0; r < 3; r++ {
				m.Parallel(func(t2 *Thread) {
					for b := 0; b < 4; b++ {
						t2.Compute(50)
						t2.Barrier()
					}
				})
			}
		}); err != nil {
			t.Fatalf("%v: %v", ss, err)
		}
		for _, nd := range rt.M.Nodes {
			if nd.Regs.ABarriers != nd.Regs.RBarriers {
				t.Fatalf("%v node %d: A=%d R=%d (tokens leaked)", ss, nd.ID, nd.Regs.ABarriers, nd.Regs.RBarriers)
			}
		}
		if rt.SS.Recoveries() != 0 {
			t.Fatalf("%v: unexpected recoveries", ss)
		}
	}
}

// TestAStreamLeadBounded: under LOCAL_SYNC with k tokens the A-stream can
// never be more than k+1 barriers ahead of its R-stream at any instant.
// We sample the registers from the R side at every barrier.
func TestAStreamLeadBounded(t *testing.T) {
	for _, tok := range []int{0, 1, 2} {
		c := cfg(core.ModeSlipstream, 2)
		c.Slipstream = core.Config{Type: core.LocalSync, Tokens: tok}
		rt, _ := New(c)
		maxLead := int64(0)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				for b := 0; b < 8; b++ {
					t2.Compute(200)
					if !t2.IsA() {
						r := t2.P.Node.Regs
						if lead := r.ABarriers - r.RBarriers; lead > maxLead {
							maxLead = lead
						}
					}
					t2.Barrier()
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		if maxLead > int64(tok)+1 {
			t.Fatalf("tokens=%d: A led by %d barriers, bound is %d", tok, maxLead, tok+1)
		}
	}
}

// TestG0TokenAvailableAtCompletion: under global sync the A-stream's
// barrier wait ends at the barrier's completion, not after its R-stream's
// wake-up — the A-stream of a *non-flipping* R must lead it into the next
// session.
func TestG0TokenAvailableAtCompletion(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	c.Slipstream = core.G0
	rt, _ := New(c)
	var aAt, rAt uint64
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			// Stagger arrivals so thread 0 is never the last arriver.
			t2.Compute(uint64(100 + 500*t2.ID()))
			t2.Barrier()
			if t2.ID() == 0 {
				if t2.IsA() {
					aAt = t2.P.Ctx.Now()
				} else {
					rAt = t2.P.Ctx.Now()
				}
			}
			t2.Compute(10)
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aAt >= rAt {
		t.Fatalf("A passed the barrier at %d, not before its R at %d", aAt, rAt)
	}
}

// TestAbandonedAStreamIsFree: after absorbing a recovery the A-stream
// races through the rest of the region without charging simulated time to
// loads/stores/compute.
func TestAbandonedAStreamIsFree(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	arr := rt.NewF64(100)
	var before, after uint64
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() && t2.ID() == 0 {
				rt.SS.InjectDivergence(t2.P)
			}
			t2.For(0, 100, func(i int) {
				t2.Compute(5)
				t2.StF(arr, i, 1)
			})
			if t2.IsA() && t2.ID() == 0 {
				before = t2.P.Ctx.Now()
				for i := 0; i < 100; i++ {
					t2.Compute(1000)
					_ = t2.LdF(arr, i)
				}
				after = t2.P.Ctx.Now()
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("abandoned A-stream consumed %d cycles", after-before)
	}
}

// TestAStreamSkipsOutput: output operations are irreversible; only the
// R-stream may perform them.
func TestAStreamSkipsOutput(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	var aTime0, aTime1 uint64
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() && t2.ID() == 0 {
				aTime0 = t2.P.Ctx.Now()
			}
			t2.Output(10000)
			if t2.IsA() && t2.ID() == 0 {
				aTime1 = t2.P.Ctx.Now()
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aTime1 != aTime0 {
		t.Fatal("A-stream stalled on an output operation")
	}
}

// TestInputSynchronizesStreams: the A-stream must not pass an input
// operation before its R-stream completes it (it must see the same image).
func TestInputSynchronizesStreams(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	var aPassed, rDone uint64
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.ID() == 0 {
				if !t2.IsA() {
					t2.Compute(5000) // R is slow to reach the input
				}
				t2.Input(2000)
				if t2.IsA() {
					aPassed = t2.P.Ctx.Now()
				} else {
					rDone = t2.P.Ctx.Now()
				}
			}
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aPassed < rDone {
		t.Fatalf("A passed the input at %d before R finished it at %d", aPassed, rDone)
	}
}

// TestMixedSyncRegions: alternating G0/L1/none regions keep the pair
// registers consistent.
func TestMixedSyncRegions(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	dirs := []*core.Directive{
		nil, // global (G0 default)
		{Type: core.LocalSync, Tokens: 1, HasTokens: true},
		{Type: core.NoneSync},
		{Type: core.GlobalSync, Tokens: 2, HasTokens: true},
	}
	if err := rt.Run(func(m *Thread) {
		for _, d := range dirs {
			m.ParallelD(d, func(t2 *Thread) {
				t2.Compute(100)
				t2.Barrier()
				t2.Compute(100)
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range rt.M.Nodes {
		if nd.Regs.ABarriers != nd.Regs.RBarriers {
			t.Fatalf("node %d registers diverged: %+v", nd.ID, nd.Regs)
		}
	}
}

// TestSlipstreamBreakdownHasNoSingleIdleProc: in slipstream mode both
// processors of every node accumulate time.
func TestSlipstreamUsesBothProcessors(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, 200, func(i int) { t2.Compute(3) })
		})
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range rt.M.Procs {
		if p.Bd.Total() == 0 {
			t.Fatalf("proc %d idle in slipstream mode", p.GID)
		}
	}
}

// TestSingleModeLeavesSecondCPUIdle.
func TestSingleModeLeavesSecondCPUIdle(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) { t2.Compute(100) })
	}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range rt.M.Nodes {
		if nd.Procs[1].Bd.Total() != 0 {
			t.Fatalf("node %d second CPU not idle in single mode", nd.ID)
		}
	}
}

// Property: for random region/barrier structures, slipstream results
// equal single-mode results and registers end balanced.
func TestPropertySlipstreamEquivalence(t *testing.T) {
	f := func(structure []uint8) bool {
		if len(structure) > 6 {
			structure = structure[:6]
		}
		if len(structure) == 0 {
			return true
		}
		run := func(mode core.Mode) []float64 {
			c := cfg(mode, 2)
			c.Slipstream = core.L1
			rt, _ := New(c)
			arr := rt.NewF64(64)
			if err := rt.Run(func(m *Thread) {
				for _, s := range structure {
					nb := int(s % 3)
					m.Parallel(func(t2 *Thread) {
						t2.For(0, 64, func(i int) {
							t2.StF(arr, i, t2.LdF(arr, i)+float64(nb+1))
							t2.Compute(2)
						})
						for b := 0; b < nb; b++ {
							t2.Barrier()
						}
					})
				}
			}); err != nil {
				t.Fatal(err)
			}
			return append([]float64(nil), arr.Data()...)
		}
		single := run(core.ModeSingle)
		slip := run(core.ModeSlipstream)
		for i := range single {
			if single[i] != slip[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBreakdownCategoriesSlipstream: A-stream barrier waits are attributed
// to the barrier category; job waits to jobwait.
func TestBreakdownCategoriesSlipstream(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if !t2.IsA() {
				t2.Compute(20000) // R is slow; A waits for tokens
			}
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
	a := rt.M.Procs[1] // node 0 A-stream
	if a.Bd[stats.CatBarrier] < 10000 {
		t.Fatalf("A-stream barrier wait = %d, want large", a.Bd[stats.CatBarrier])
	}
}

// TestRecoveryDuringDynamicLoop: an A-stream recovered mid-region must not
// deadlock its R-stream on the scheduling-decision semaphore; the program
// completes and later regions run slipstream again.
func TestRecoveryDuringDynamicLoop(t *testing.T) {
	for _, sched := range []Schedule{Dynamic, Guided} {
		c := cfg(core.ModeSlipstream, 2)
		c.Sched = sched
		c.Chunk = 8
		rt, _ := New(c)
		const n = 512
		dst := rt.NewF64(n)
		injected := false
		aInLater := false
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.For(0, n, func(i int) {
					if t2.IsA() && !injected && i > 30 {
						injected = true
						rt.SS.InjectDivergence(t2.P)
					}
					t2.Compute(2)
					t2.StF(dst, i, 1)
				})
				// Second loop in the same region: R publishes decisions the
				// abandoned A-stream will never consume.
				t2.For(0, n, func(i int) {
					t2.StF(dst, i, t2.LdF(dst, i)+1)
				})
			})
			m.Parallel(func(t2 *Thread) {
				if t2.IsA() {
					aInLater = true
				}
				t2.For(0, n, func(i int) {
					t2.StF(dst, i, t2.LdF(dst, i)+1)
				})
			})
		}); err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if !injected {
			t.Fatalf("%v: injection never happened", sched)
		}
		if !aInLater {
			t.Fatalf("%v: A-streams did not resume in the next region", sched)
		}
		for i := 0; i < n; i++ {
			if dst.Get(i) != 3 {
				t.Fatalf("%v: dst[%d] = %v, want 3", sched, i, dst.Get(i))
			}
		}
	}
}

// TestRecoveryDuringAffinityLoop: same liveness property for the affinity
// schedule's chunk handoff.
func TestRecoveryDuringAffinityLoop(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	const n = 256
	dst := rt.NewF64(n)
	injected := false
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.ForAffinity(8, 0, n, func(i int) {
				if t2.IsA() && !injected && i > 20 {
					injected = true
					rt.SS.InjectDivergence(t2.P)
				}
				t2.StF(dst, i, 1)
			})
			t2.ForAffinity(8, 0, n, func(i int) {
				t2.StF(dst, i, t2.LdF(dst, i)+1)
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("injection never happened")
	}
	for i := 0; i < n; i++ {
		if dst.Get(i) != 2 {
			t.Fatalf("dst[%d] = %v", i, dst.Get(i))
		}
	}
}

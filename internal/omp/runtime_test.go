package omp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// cfg returns a small test configuration.
func cfg(mode core.Mode, nodes int) Config {
	p := machine.DefaultParams()
	p.Nodes = nodes
	return Config{Machine: p, Mode: mode}
}

// run builds a runtime for c and executes program, failing the test on
// simulator errors. Returns the runtime for inspection.
func run(t *testing.T, c Config, program func(*Thread)) *Runtime {
	t.Helper()
	rt, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(program); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestTeamSizes(t *testing.T) {
	for _, tc := range []struct {
		mode core.Mode
		want int
	}{
		{core.ModeSingle, 4},
		{core.ModeDouble, 8},
		{core.ModeSlipstream, 4},
	} {
		rt, err := New(cfg(tc.mode, 4))
		if err != nil {
			t.Fatal(err)
		}
		if rt.NumThreads() != tc.want {
			t.Errorf("%v team size = %d, want %d", tc.mode, rt.NumThreads(), tc.want)
		}
	}
}

func TestParallelRunsAllThreads(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		c := cfg(mode, 4)
		var rt *Runtime
		rt, _ = New(c)
		n := rt.NumThreads()
		seen := make([]int, n)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				if !t2.IsA() {
					seen[t2.ID()]++
				}
				t2.Compute(10)
			})
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for id, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("%v: thread %d ran %d times", mode, id, cnt)
			}
		}
	}
}

func TestSlipstreamAStreamsRunRegions(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	aRuns := 0
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() {
				aRuns++
			}
			t2.Compute(10)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aRuns != 4 {
		t.Fatalf("A-streams ran region %d times, want 4", aRuns)
	}
}

func TestMultipleRegionsAndSerialCode(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	serial := 0
	regions := 0
	run(t, c, func(m *Thread) {
		serial++
		m.Parallel(func(t2 *Thread) { t2.Compute(5) })
		serial++
		m.Parallel(func(t2 *Thread) {
			if t2.ID() == 0 {
				regions++
			}
			t2.Compute(5)
		})
		serial++
	})
	if serial != 3 || regions != 1 {
		t.Fatalf("serial=%d regions=%d", serial, regions)
	}
}

// parallelSum computes sum(0..n) via For and per-element stores; results
// must be identical in every mode.
func parallelSum(c Config, n int) ([]float64, *Runtime, error) {
	rt, err := New(c)
	if err != nil {
		return nil, nil, err
	}
	src := rt.NewF64(n)
	dst := rt.NewF64(n)
	for i := 0; i < n; i++ {
		src.Set(i, float64(i))
	}
	err = rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, n, func(i int) {
				v := t2.LdF(src, i)
				t2.Compute(4)
				t2.StF(dst, i, 2*v+1)
			})
		})
	})
	return dst.Data(), rt, err
}

func TestForProducesIdenticalResultsAcrossModes(t *testing.T) {
	const n = 500
	var ref []float64
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		got, _, err := parallelSum(cfg(mode, 4), n)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i, v := range got {
			if v != 2*float64(i)+1 {
				t.Fatalf("%v: dst[%d] = %v", mode, i, v)
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%v: result differs from single mode at %d", mode, i)
			}
		}
	}
}

func TestForCoversAllIterationsExactlyOnce(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
			c := cfg(mode, 4)
			c.Sched = sched
			c.Chunk = 7
			rt, _ := New(c)
			const n = 193
			count := rt.NewI64(n)
			if err := rt.Run(func(m *Thread) {
				m.Parallel(func(t2 *Thread) {
					t2.For(0, n, func(i int) {
						if !t2.IsA() {
							t2.StI(count, i, count.Get(i)+1)
						}
						t2.Compute(2)
					})
				})
			}); err != nil {
				t.Fatalf("%v/%v: %v", sched, mode, err)
			}
			for i := 0; i < n; i++ {
				if count.Get(i) != 1 {
					t.Fatalf("%v/%v: iteration %d executed %d times", sched, mode, i, count.Get(i))
				}
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		c := cfg(core.ModeSlipstream, 2)
		c.Sched = sched
		ran := false
		run(t, c, func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.For(5, 5, func(i int) { ran = true })
			})
		})
		if ran {
			t.Fatalf("%v: body ran for empty range", sched)
		}
	}
}

func TestAStreamNeverWritesSharedMemory(t *testing.T) {
	// The core invariant: A-stream stores must not change backing values.
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	arr := rt.NewF64(64)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() {
				for i := 0; i < 64; i++ {
					t2.StF(arr, i, -999) // must vanish
				}
			}
			t2.Compute(100)
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if arr.Get(i) != 0 {
			t.Fatalf("A-stream store leaked into shared memory at %d: %v", i, arr.Get(i))
		}
	}
}

func TestReduction(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		c := cfg(mode, 4)
		rt, _ := New(c)
		const n = 100
		src := rt.NewF64(n)
		for i := 0; i < n; i++ {
			src.Set(i, 1)
		}
		var got float64
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				partial := 0.0
				t2.ForNowait(0, n, func(i int) {
					partial += t2.LdF(src, i)
					t2.Compute(1)
				})
				sum := t2.ReduceSumF(partial)
				if t2.ID() == 0 && !t2.IsA() {
					got = sum
				}
			})
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got != n {
			t.Fatalf("%v: reduction = %v, want %d", mode, got, n)
		}
	}
}

func TestCriticalMutualExclusionAndASkip(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	cell := rt.NewI64(1)
	aEntered := false
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			for k := 0; k < 10; k++ {
				t2.Critical(func() {
					if t2.IsA() {
						aEntered = true
					}
					v := t2.LdI(cell, 0)
					t2.Compute(20)
					t2.StI(cell, 0, v+1)
				})
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aEntered {
		t.Fatal("A-stream entered a critical section")
	}
	if cell.Get(0) != 40 {
		t.Fatalf("critical counter = %d, want 40 (lost updates?)", cell.Get(0))
	}
}

func TestAtomicAdd(t *testing.T) {
	c := cfg(core.ModeDouble, 4)
	rt, _ := New(c)
	cell := rt.NewF64(1)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			for k := 0; k < 5; k++ {
				t2.AtomicAddF(cell, 0, 1)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if cell.Get(0) != 40 { // 8 threads * 5
		t.Fatalf("atomic sum = %v, want 40", cell.Get(0))
	}
}

func TestSingleRunsExactlyOnce(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		c := cfg(mode, 4)
		count := 0
		run(t, c, func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.Single(func() { count++ })
				t2.Barrier()
				t2.Single(func() { count += 10 })
				t2.Barrier()
			})
		})
		if count != 11 {
			t.Fatalf("%v: single executed count=%d, want 11", mode, count)
		}
	}
}

func TestMasterConstruct(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rByID := map[int]int{}
	aCount := 0
	run(t, c, func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.Master(func() {
				if t2.IsA() {
					aCount++
				} else {
					rByID[t2.ID()]++
				}
			})
			t2.Barrier()
		})
	})
	if len(rByID) != 1 || rByID[0] != 1 {
		t.Fatalf("master executed by R threads %v", rByID)
	}
	if aCount != 1 {
		t.Fatalf("master's A-stream executed master %d times, want 1", aCount)
	}
}

func TestSectionsStaticAssignment(t *testing.T) {
	c := cfg(core.ModeDouble, 2) // 4 threads
	owner := make([]int, 6)
	for i := range owner {
		owner[i] = -1
	}
	run(t, c, func(m *Thread) {
		bodies := make([]func(), 6)
		exec := func(t2 *Thread) {
			for s := range bodies {
				s := s
				bodies[s] = func() { owner[s] = t2.ID() }
			}
			t2.Sections(bodies...)
		}
		m.Parallel(func(t2 *Thread) { exec(t2) })
	})
	for s, o := range owner {
		if o != s%4 {
			t.Fatalf("section %d ran on thread %d, want %d", s, o, s%4)
		}
	}
}

func TestFlushSkippedByA(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	run(t, c, func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.Flush()
			t2.Compute(1)
		})
	})
}

func TestInputOutputConstructs(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	run(t, c, func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.Master(func() {
				t2.Input(1000)
				t2.Output(500)
			})
			t2.Barrier()
		})
	})
}

func TestLockedConstruct(t *testing.T) {
	c := cfg(core.ModeDouble, 2)
	rt, _ := New(c)
	l := rt.NewLock()
	n := 0
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.Locked(l, func() { n++ })
		})
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("lock-protected count = %d, want 4", n)
	}
}

func TestPerRegionDirective(t *testing.T) {
	// A region carrying a NONE directive must not run A-streams even in
	// slipstream mode; the next region (no directive) runs them again.
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	aIn1, aIn2 := 0, 0
	none := &core.Directive{Type: core.NoneSync}
	if err := rt.Run(func(m *Thread) {
		m.ParallelD(none, func(t2 *Thread) {
			if t2.IsA() {
				aIn1++
			}
			t2.Compute(10)
		})
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() {
				aIn2++
			}
			t2.Compute(10)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aIn1 != 0 {
		t.Fatalf("A-streams ran a NONE region %d times", aIn1)
	}
	if aIn2 != 2 {
		t.Fatalf("A-streams skipped an enabled region (ran %d, want 2)", aIn2)
	}
}

func TestDirectiveTokensApply(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	dir := &core.Directive{Type: core.LocalSync, Tokens: 2, HasTokens: true}
	if err := rt.Run(func(m *Thread) {
		m.ParallelD(dir, func(t2 *Thread) {
			t2.Compute(10)
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := rt.M.Nodes[0].Regs.Allowance; got != 2 {
		t.Fatalf("allowance = %d, want 2", got)
	}
}

func TestEnvControlsSameBinary(t *testing.T) {
	// Same program, slipstream disabled via OMP_SLIPSTREAM=NONE.
	c := cfg(core.ModeSlipstream, 2)
	c.Env = "NONE"
	rt, _ := New(c)
	aRan := false
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() {
				aRan = true
			}
			t2.Compute(5)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if aRan {
		t.Fatal("OMP_SLIPSTREAM=NONE did not disable A-streams")
	}
}

func TestBadEnvRejected(t *testing.T) {
	c := cfg(core.ModeSlipstream, 2)
	c.Env = "WHAT"
	if _, err := New(c); err == nil {
		t.Fatal("bad OMP_SLIPSTREAM accepted")
	}
}

func TestRecoveryInjection(t *testing.T) {
	// Force a divergence mid-loop; the A-stream must abandon the region and
	// the program must complete with correct results.
	c := cfg(core.ModeSlipstream, 2)
	c.Slipstream = core.L1
	rt, _ := New(c)
	const n = 4000
	dst := rt.NewF64(n)
	injected := false
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, n, func(i int) {
				if t2.IsA() && !injected && i > 100 {
					injected = true
					rt.SS.InjectDivergence(t2.P)
				}
				t2.Compute(2)
				t2.StF(dst, i, float64(i))
			})
			t2.For(0, n, func(i int) { t2.Compute(1) })
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("injection never happened")
	}
	for i := 0; i < n; i++ {
		if dst.Get(i) != float64(i) {
			t.Fatalf("dst[%d] = %v after recovery", i, dst.Get(i))
		}
	}
	// The pair must end resynchronized.
	r := rt.M.Nodes[0].Regs
	if r.ABarriers != r.RBarriers {
		t.Fatalf("pair not resynchronized: A=%d R=%d", r.ABarriers, r.RBarriers)
	}
}

func TestStalledAStreamTriggersRecovery(t *testing.T) {
	// An A-stream that stops making progress must be detected by its
	// R-stream's divergence check, and the program must still finish.
	c := cfg(core.ModeSlipstream, 2)
	rt, _ := New(c)
	stallUntil := uint64(0)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.IsA() && t2.ID() == 0 {
				// Simulate a wedged A-stream: burn time without syncing.
				if stallUntil == 0 {
					stallUntil = 1
					t2.Compute(2_000_000)
				}
			}
			for k := 0; k < 4; k++ {
				t2.Compute(100)
				t2.Barrier()
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if rt.SS.Recoveries() == 0 {
		t.Fatal("stalled A-stream never triggered recovery")
	}
}

func TestBreakdownCoversWallTime(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, 1000, func(i int) { t2.Compute(3) })
			t2.Barrier()
		})
	}); err != nil {
		t.Fatal(err)
	}
	bd := rt.M.TotalBreakdown()
	if bd.Total() == 0 {
		t.Fatal("empty breakdown")
	}
}

func TestDeterministicWallTime(t *testing.T) {
	wall := func() uint64 {
		c := cfg(core.ModeSlipstream, 4)
		c.Sched = Dynamic
		c.Chunk = 16
		rt, _ := New(c)
		arr := rt.NewF64(256)
		if err := rt.Run(func(m *Thread) {
			m.Parallel(func(t2 *Thread) {
				t2.For(0, 256, func(i int) {
					t2.StF(arr, i, t2.LdF(arr, i)+1)
					t2.Compute(5)
				})
			})
		}); err != nil {
			t.Fatal(err)
		}
		return rt.M.WallTime()
	}
	if a, b := wall(), wall(); a != b {
		t.Fatalf("non-deterministic wall time: %d vs %d", a, b)
	}
}

func TestParallelOffMasterPanics(t *testing.T) {
	c := cfg(core.ModeSingle, 2)
	rt, _ := New(c)
	panicked := false
	_ = rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			if t2.ID() == 1 {
				func() {
					defer func() {
						if recover() != nil {
							panicked = true
						}
					}()
					t2.Parallel(func(*Thread) {})
				}()
			}
		})
	})
	if !panicked {
		t.Fatal("Parallel off the master did not panic")
	}
}

func TestSharedRequestClassificationPopulated(t *testing.T) {
	c := cfg(core.ModeSlipstream, 4)
	rt, _ := New(c)
	arr := rt.NewF64(4096)
	if err := rt.Run(func(m *Thread) {
		m.Parallel(func(t2 *Thread) {
			t2.For(0, 4096, func(i int) {
				v := t2.LdF(arr, i)
				t2.Compute(2)
				t2.StF(arr, i, v+1)
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	if rt.M.Class.KindTotal(0) == 0 && rt.M.Class.KindTotal(1) == 0 {
		t.Fatal("no classified shared requests in slipstream mode")
	}
}

func TestScheduleStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule strings")
	}
}

package omp

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Thread is one OpenMP thread of execution bound to a processor. In
// slipstream mode each logical thread exists twice with the same ID: an
// R-stream on CPU 0 and an A-stream shadow on CPU 1 of the same CMP
// (paper §3.1: "the same ID should be returned to processes sharing a
// CMP").
type Thread struct {
	rt  *Runtime
	id  int
	P   *machine.Proc
	isA bool

	// Region-local state.
	inRegion   bool
	regionCfg  core.Config
	ssActive   bool
	abandoned  bool // A-stream absorbed a recovery: fast-skip to region end
	singleIdx  int
	reduceIdx  int
	loopIdx    int
	orderedIdx int
	taskBarIdx int
	curTask    int32 // currently executing task ID (implicit = id+1)
	barSense   int64
	lastSeq    int64
}

// ID returns the OpenMP thread number (shared by an A–R pair).
func (t *Thread) ID() int { return t.id }

// Num returns the team size (omp_get_num_threads).
func (t *Thread) Num() int { return t.rt.teamSize }

// IsA reports whether this is a speculative A-stream.
func (t *Thread) IsA() bool { return t.isA }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Compute charges n cycles of private computation. Abandoned A-streams
// skip work at zero cost (recovery fast-forwards them to the R-stream's
// position).
func (t *Thread) Compute(n sim.Time) {
	if t.abandoned {
		return
	}
	t.P.Compute(n)
}

// ---- Shared-memory accesses ------------------------------------------------

// LdF reads element i of a shared float64 array with full timing.
func (t *Thread) LdF(a *shmem.F64, i int) float64 {
	if t.abandoned {
		return a.Get(i)
	}
	t.P.Load(a.Addr(i))
	return a.Get(i)
}

// StF writes element i of a shared float64 array. For an A-stream the
// store is skipped or converted to an exclusive prefetch (§2, §5.1); the
// backing store is never modified, so A-streams cannot corrupt shared
// state regardless of how far they have speculated.
func (t *Thread) StF(a *shmem.F64, i int, v float64) {
	if t.isA {
		t.aStore(a.Addr(i))
		return
	}
	t.P.Store(a.Addr(i))
	a.Set(i, v)
}

// LdI reads element i of a shared int64 array with full timing.
func (t *Thread) LdI(a *shmem.I64, i int) int64 {
	if t.abandoned {
		return a.Get(i)
	}
	t.P.Load(a.Addr(i))
	return a.Get(i)
}

// StI writes element i of a shared int64 array (A-stream: skip/prefetch).
func (t *Thread) StI(a *shmem.I64, i int, v int64) {
	if t.isA {
		t.aStore(a.Addr(i))
		return
	}
	t.P.Store(a.Addr(i))
	a.Set(i, v)
}

// aStore applies the A-stream store policy to addr.
func (t *Thread) aStore(addr shmem.Addr) {
	if t.abandoned {
		return
	}
	if t.rt.SS.AStoreAction(t.P) == core.StorePrefetch {
		t.P.Prefetch(addr, true)
	}
}

// fetchAdd is a timed atomic fetch-and-add on a shared cell. The
// read-modify-write of the backing store happens at the instant the RMW
// completes, so it is linearizable under the simulator's cooperative
// scheduling.
func (t *Thread) fetchAdd(a *shmem.I64, i int, d int64) int64 {
	t.P.RMW(a.Addr(i))
	old := a.Get(i)
	a.Set(i, old+d)
	return old
}

// ---- Synchronization constructs ---------------------------------------------

// Barrier synchronizes the team. R-streams run the runtime's
// sense-reversing barrier with slipstream token hooks at entry and exit;
// A-streams skip the barrier by consuming a token (Figure 1).
func (t *Thread) Barrier() {
	rt := t.rt
	if t.isA {
		if t.abandoned {
			return
		}
		if rt.SS.ABarrier(t.P) {
			t.abandoned = true
		}
		return
	}
	if t.ssActive {
		rt.SS.RBarrierEnter(t.P, t.regionCfg)
		if t.regionCfg.Type == core.GlobalSync {
			// Global sync: the token is inserted "before exiting the
			// barrier" (§2.2) — at the barrier's completion instant — so
			// register this R-stream with the completion hook instead of
			// inserting after its own wake-up.
			rt.g0Pending = append(rt.g0Pending, t.P)
		}
	}
	t.teamBarrier()
}

// teamBarrier is a centralized sense-reversing barrier on shared memory.
func (t *Thread) teamBarrier() {
	rt := t.rt
	n := int64(rt.teamSize)
	poll := rt.Cfg.Machine.SpinPollCycles
	old := t.P.SetCategory(stats.CatBarrier)
	mySense := 1 - t.barSense
	if t.fetchAdd(rt.barCount, 0, 1)+1 == n {
		// Global completion: pending global-sync tokens materialize in
		// the pair registers now, while the other R-streams are still
		// paying their wake-up misses.
		for _, p := range rt.g0Pending {
			rt.SS.InsertTokenAt(p)
		}
		rt.g0Pending = rt.g0Pending[:0]
		t.P.Store(rt.barCount.Addr(0))
		rt.barCount.Set(0, 0)
		t.P.Store(rt.barSense.Addr(0))
		rt.barSense.Set(0, mySense)
	} else {
		for {
			t.P.Load(rt.barSense.Addr(0))
			if rt.barSense.Get(0) == mySense {
				break
			}
			t.P.Wait(poll)
		}
	}
	t.barSense = mySense
	t.P.SetCategory(old)
}

// Critical executes body in the unnamed critical section. A-streams skip
// critical sections: prefetching lock-protected data would only cause
// unnecessary migration (§3.1 item 5).
func (t *Thread) Critical(body func()) { t.CriticalNamed("", body) }

// CriticalNamed executes body under the named critical section's lock.
func (t *Thread) CriticalNamed(name string, body func()) {
	if t.isA {
		return
	}
	l := t.rt.critLock(name)
	t.lockAcquire(l, stats.CatLock)
	body()
	t.lockRelease(l)
}

// critLock returns (lazily creating) the lock for a named critical section.
func (rt *Runtime) critLock(name string) *Lock {
	l := rt.critLocks[name]
	if l == nil {
		l = rt.NewLock()
		rt.critLocks[name] = l
	}
	return l
}

// AtomicAddF atomically adds v to a shared cell. The A-stream executes the
// construct as an exclusive prefetch of the target (§3.1 item 4: data
// prefetched by the A-stream are highly likely not to be migrated) without
// committing the update.
func (t *Thread) AtomicAddF(a *shmem.F64, i int, v float64) {
	if t.isA {
		if !t.abandoned {
			t.P.Prefetch(a.Addr(i), true)
		}
		return
	}
	t.P.RMW(a.Addr(i))
	a.Set(i, a.Get(i)+v)
}

// Single executes body on the first team thread to arrive (no implied
// barrier here; pair it with Barrier for the default OpenMP semantics).
// A-streams skip single sections: there is no way for an A-stream to know
// whether its own R-stream will win the race (§3.1 item 1).
func (t *Thread) Single(body func()) {
	idx := t.singleIdx
	t.singleIdx++
	if t.isA || t.abandoned {
		return
	}
	cell := t.rt.singleCell(int(t.lastSeq), idx)
	if t.fetchAdd(cell, 0, 1) == 0 {
		body()
	}
}

// singleCell returns the arrival counter for a single construct occurrence.
func (rt *Runtime) singleCell(seq, idx int) *shmem.I64 {
	key := [2]int{seq, idx}
	c := rt.singles[key]
	if c == nil {
		c = rt.NewI64(1)
		rt.singles[key] = c
	}
	return c
}

// Master executes body on thread 0 only. Unlike single, the executor is
// known a priori, so the master's A-stream executes the section too (§3.1
// item 2) — its shared stores are still skipped or converted.
func (t *Thread) Master(body func()) {
	if t.id != 0 || t.abandoned {
		return
	}
	body()
}

// Sections distributes the given section bodies over the team with a
// static assignment policy, under which A-streams can run ahead (§3.1 item
// 6: dynamic assignment would force an A–R synchronization at the start).
// It ends with the construct's implied barrier.
func (t *Thread) Sections(bodies ...func()) {
	for s := range bodies {
		if s%t.rt.teamSize == t.id && !t.abandoned {
			bodies[s]()
		}
	}
	t.Barrier()
}

// SectionsDynamic distributes sections first-come-first-served. Because
// the assignment is timing-dependent, the start of each section implies a
// synchronization between the R-stream and its A-stream (§3.1 item 6): the
// construct reuses the dynamic-scheduling decision handoff.
func (t *Thread) SectionsDynamic(bodies ...func()) {
	t.ForSched(Dynamic, 1, 0, len(bodies), false, func(s int) { bodies[s]() })
}

// ForOrdered is a worksharing loop (static schedule) whose body may call
// its ordered argument to run a function in strict iteration order, like
// OpenMP's ordered clause + construct. The ordered region serializes
// iterations, so A-streams skip it the way they skip critical sections.
func (t *Thread) ForOrdered(lo, hi int, body func(i int, ordered func(func()))) {
	rt := t.rt
	cell := rt.orderedCell(int(t.lastSeq), t.orderedIdx, lo)
	t.orderedIdx++
	poll := rt.Cfg.Machine.SpinPollCycles
	// One ordered closure per loop instance, not per iteration: the current
	// iteration number flows through cur.
	cur := lo
	ordered := func(fn func()) {
		if t.isA || t.abandoned {
			return
		}
		old := t.P.SetCategory(stats.CatLock)
		for {
			t.P.Load(cell.Addr(0))
			if cell.Get(0) == int64(cur) {
				break
			}
			t.P.Wait(poll)
		}
		t.P.SetCategory(old)
		fn()
		t.P.Store(cell.Addr(0))
		cell.Set(0, int64(cur)+1)
	}
	t.ForSched(Static, 0, lo, hi, false, func(i int) {
		cur = i
		body(i, ordered)
	})
}

// orderedCell returns the turn counter for an ordered loop occurrence.
func (rt *Runtime) orderedCell(seq, idx, lo int) *shmem.I64 {
	key := [2]int{seq, ^idx} // distinct key space from loop instances
	c := rt.singles[key]
	if c == nil {
		c = rt.NewI64(1)
		c.Set(0, int64(lo))
		rt.singles[key] = c
	}
	return c
}

// Flush is the OpenMP flush directive. On the hardware cache-coherent
// machine it maps to (nearly) nothing, and A-streams skip it entirely:
// they produce no shared values whose visibility could matter (§3.1 item 7).
func (t *Thread) Flush() {
	if t.isA {
		return
	}
	t.Compute(1)
}

// ReduceSumF performs a sum reduction of each thread's partial value and
// returns the combined result after the construct's barrier. R-streams
// serialize their contributions through a critical section (the Omni
// implementation); the A-stream executes the reduction as user code —
// its store becomes an exclusive prefetch of the accumulator — and reads
// the (possibly still partial, i.e. speculative) result after skipping the
// barrier (§3.1 "Reduction").
func (t *Thread) ReduceSumF(partial float64) float64 {
	rt := t.rt
	idx := t.reduceIdx
	t.reduceIdx++
	cell := rt.reduceCell(int(t.lastSeq), idx)
	if t.isA {
		if !t.abandoned {
			t.P.Prefetch(cell.Addr(0), true)
		}
		t.Barrier()
		if !t.abandoned {
			t.P.Load(cell.Addr(0))
		}
		return cell.Get(0)
	}
	t.CriticalNamed("__reduction", func() {
		t.P.Load(cell.Addr(0))
		t.P.Store(cell.Addr(0))
		cell.Set(0, cell.Get(0)+partial)
	})
	t.Barrier()
	t.P.Load(cell.Addr(0))
	return cell.Get(0)
}

// reduceCell returns the accumulator for a reduction occurrence.
func (rt *Runtime) reduceCell(seq, idx int) *shmem.F64 {
	key := [2]int{seq, idx}
	c := rt.reduces[key]
	if c == nil {
		c = rt.NewF64(1)
		rt.reduces[key] = c
	}
	return c
}

// Input models a system input operation of the given latency, executed
// inside a parallel region. The A-stream must see the same data image as
// its R-stream, so it stalls on the syscall semaphore until the R-stream
// finishes the input (§3.1 "I/O operations"); output operations need no
// such synchronization and are simply skipped by A-streams.
func (t *Thread) Input(latency sim.Time) {
	if t.isA {
		if t.abandoned {
			return
		}
		if _, _, ok := t.rt.SS.ATakeDecision(t.P); !ok {
			t.rt.SS.AAbsorbRecovery(t.P)
			t.abandoned = true
		}
		return
	}
	t.P.Wait(latency)
	if t.ssActive {
		t.rt.SS.RPublishDecision(t.P, 0, 0)
	}
}

// Output models a system output operation: irreversible, so A-streams must
// not execute it (§3.1); the R-stream stalls for the given latency.
func (t *Thread) Output(latency sim.Time) {
	if t.isA {
		return
	}
	t.P.Wait(latency)
}

// Lock is a test-and-test-and-set spinlock whose word lives in shared
// memory, so lock handoff migrates the line between CMPs exactly as it
// would on the real machine.
type Lock struct {
	w *shmem.I64
}

// lockAcquire spins until the lock is taken, charging waits to cat.
func (t *Thread) lockAcquire(l *Lock, cat stats.Category) {
	poll := t.rt.Cfg.Machine.SpinPollCycles
	old := t.P.SetCategory(cat)
	for {
		t.P.Load(l.w.Addr(0))
		if l.w.Get(0) == 0 {
			t.P.RMW(l.w.Addr(0))
			if l.w.Get(0) == 0 {
				l.w.Set(0, 1)
				t.P.SetCategory(old)
				return
			}
		}
		t.P.Wait(poll)
	}
}

// lockRelease frees the lock.
func (t *Thread) lockRelease(l *Lock) {
	t.P.Store(l.w.Addr(0))
	l.w.Set(0, 0)
}

// Locked runs body holding l (exposed for programs that manage explicit
// locks the way omp_set_lock/omp_unset_lock do). A-streams skip it like a
// critical section.
func (t *Thread) Locked(l *Lock, body func()) {
	if t.isA {
		return
	}
	t.lockAcquire(l, stats.CatLock)
	body()
	t.lockRelease(l)
}

// Time returns the simulated wall-clock time in seconds (omp_get_wtime).
func (t *Thread) Time() float64 {
	return float64(t.P.Ctx.Now()) / (t.rt.Cfg.Machine.ClockGHz * 1e9)
}

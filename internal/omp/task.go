package omp

import (
	"repro/internal/shmem"
	"repro/internal/stats"
)

// This file is the tasking tier of the runtime: OpenMP 3.0-style explicit
// tasks (Task/Taskwait/Taskloop and a task-draining barrier) scheduled
// over per-thread fixed-capacity deques — owners push and pop LIFO at the
// tail, thieves steal FIFO at the head of the most-loaded victim, scanned
// in a deterministic order so simulated time stays reproducible. All
// scheduler state that real hardware would contend on (deque ends, the
// pending-task counter, per-task child counts) lives in simulated shared
// memory, so line migration between CMPs is modeled exactly as it is for
// the loop schedulers in sched.go.
//
// Slipstream interplay: work stealing makes task→processor placement
// timing-dependent, so — exactly like dynamic loop scheduling (§3.2.2) —
// the A-stream cannot predict which tasks its R-stream will execute.
// The R-stream therefore publishes every deferred task it runs through
// the pair's one-slot decision buffer, and the A-stream mirrors each
// scheduling construct (taskwait, task barrier) by replaying that stream:
// it executes the skeletonized task bodies (stores become prefetches,
// nested task constructs are no-ops) and stops at the construct's
// terminal decision. Because the R-stream's taskwait inside a task body
// publishes its own sub-stream plus a terminal, the replay nests exactly
// like the real execution did, and only R-stream commits ever touch the
// backing store.
//
// Restrictions (documented, not detected): task constructs must be
// executed by the R- and A-streams alike, so they must not appear inside
// Single (whose winner the A-stream cannot predict; use Master for a
// single-spawner pattern) and a region that spawns tasks must drain them
// with TaskBarrier before the region ends.

// Default task-runtime capacities. The deque capacity bounds how much a
// thread can defer before spawns start executing undeferred (the classic
// bounded-buffer cutoff); the ID budget bounds the per-region record
// table, split evenly across the team so ID allocation is thread-local
// and contention-free.
const (
	defaultTaskDequeCap = 256
	defaultTaskIDTotal  = 16384
	minTaskIDBudget     = 64
)

// taskRec is one explicit task's record: either a plain body (fn1) or a
// chunk body with its bounds (fnN, lo, hi — taskloop chunks all share one
// closure this way, keeping spawns allocation-free), plus the parent task
// for tied-task bookkeeping. Records are indexed by task ID and recycled
// across regions.
type taskRec struct {
	fn1    func(*Thread)
	fnN    func(t *Thread, lo, hi int64)
	lo, hi int64
	parent int32
}

// run executes the record's body on th.
func (r *taskRec) run(th *Thread) {
	if r.fn1 != nil {
		r.fn1(th)
		return
	}
	r.fnN(th, r.lo, r.hi)
}

// taskRT is the per-runtime tasking state, created lazily on the first
// task construct so programs that never use tasks keep a byte-identical
// address layout (and therefore byte-identical timings).
type taskRT struct {
	teamSize  int
	base      int // first explicit ID: implicit tasks own 1..teamSize
	dequeCap  int
	perThread int // explicit-ID budget per thread

	records   []taskRec
	deques    [][]int32 // per-thread rings of task IDs, dequeCap each
	nextLocal []int     // per-thread IDs handed out this region (Go-side)

	// Shared-memory scheduler state: virtual deque ends per thread
	// (steal end and owner end of the ring), the region-wide count of
	// spawned-but-incomplete deferred tasks (the termination detector),
	// and per-task incomplete-children counts (what taskwait polls).
	heads    *shmem.I64
	tails    *shmem.I64
	pending  *shmem.I64
	children *shmem.I64

	// Host-side counters (written only by R-streams, which execute one
	// at a time under the cooperative scheduler).
	steals   uint64
	spawned  uint64
	executed uint64
	inlined  uint64 // ID budget exhausted: ran undeferred and unpublished
}

// tasking returns the runtime's tasking state, creating it on first use.
func (rt *Runtime) tasking() *taskRT {
	if rt.tasks != nil {
		return rt.tasks
	}
	n := rt.teamSize
	per := rt.Cfg.TaskIDBudget
	if per <= 0 {
		per = defaultTaskIDTotal / n
		if per < minTaskIDBudget {
			per = minTaskIDBudget
		}
	}
	dcap := rt.Cfg.TaskDequeCap
	if dcap <= 0 {
		dcap = defaultTaskDequeCap
	}
	ct := &taskRT{
		teamSize:  n,
		base:      n + 1,
		dequeCap:  dcap,
		perThread: per,
		records:   make([]taskRec, n+1+n*per),
		deques:    make([][]int32, n),
		nextLocal: make([]int, n),
		heads:     rt.NewI64(n),
		tails:     rt.NewI64(n),
		pending:   rt.NewI64(1),
		children:  rt.NewI64(n + 1 + n*per),
	}
	for i := range ct.deques {
		ct.deques[i] = make([]int32, dcap)
	}
	rt.tasks = ct
	return ct
}

// regionReset recycles the tasking state for a new region. Called by the
// master before the job is published (untimed: the counters are zeroed,
// not communicated), so every thread enters the region with empty deques
// and a fresh ID space. Lagging A-streams of the previous region only
// ever read record copies, never this state.
func (ct *taskRT) regionReset() {
	for i := 0; i < ct.teamSize; i++ {
		ct.nextLocal[i] = 0
		ct.heads.Set(i, 0)
		ct.tails.Set(i, 0)
		ct.children.Set(i+1, 0)
	}
	ct.pending.Set(0, 0)
}

// allocID hands out the next explicit task ID from tid's block, or
// reports exhaustion (the spawn then executes undeferred).
func (ct *taskRT) allocID(tid int) (int32, bool) {
	if ct.nextLocal[tid] >= ct.perThread {
		return 0, false
	}
	id := int32(ct.base + tid*ct.perThread + ct.nextLocal[tid])
	ct.nextLocal[tid]++
	return id, true
}

// isDescendant walks id's parent chain and reports whether anc is an
// ancestor (or id itself). Implicit tasks are the roots of the tree.
func (ct *taskRT) isDescendant(id, anc int32) bool {
	for id != 0 {
		if id == anc {
			return true
		}
		if int(id) < ct.base {
			return false // implicit task: no parent
		}
		id = ct.records[id].parent
	}
	return false
}

// Task spawns an explicit task executing fn, tied to the spawning thread's
// current task. The task is deferred onto the spawner's deque (LIFO end);
// when the deque is full it executes immediately instead. Outside a
// parallel region the task is undeferred, like OpenMP's. A-streams skip
// spawning entirely: they learn which tasks to mirror from their
// R-stream's published decisions.
func (t *Thread) Task(fn func(*Thread)) { t.spawn(fn, nil, 0, 0) }

// spawn is the common deferral path behind Task and Taskloop.
func (t *Thread) spawn(fn1 func(*Thread), fnN func(*Thread, int64, int64), lo, hi int64) {
	if t.isA || t.abandoned {
		return
	}
	if !t.inRegion {
		if fn1 != nil {
			fn1(t)
		} else {
			fnN(t, lo, hi)
		}
		return
	}
	rt := t.rt
	ct := rt.tasking()
	old := t.P.SetCategory(stats.CatSched)
	id, ok := ct.allocID(t.id)
	if !ok {
		// ID budget exhausted: execute undeferred. No record exists, so
		// the task is not published — the A-stream simply loses prefetch
		// coverage for it, never correctness.
		ct.inlined++
		t.P.SetCategory(old)
		if fn1 != nil {
			fn1(t)
		} else {
			fnN(t, lo, hi)
		}
		return
	}
	rec := &ct.records[id]
	rec.fn1, rec.fnN, rec.lo, rec.hi, rec.parent = fn1, fnN, lo, hi, t.curTask
	ct.children.Set(int(id), 0) // lazy reset of the recycled slot
	ct.spawned++
	t.Compute(4) // descriptor setup
	t.fetchAdd(ct.children, int(t.curTask), 1)
	t.fetchAdd(ct.pending, 0, 1)
	t.P.RMW(ct.tails.Addr(t.id))
	h, tl := ct.heads.Get(t.id), ct.tails.Get(t.id)
	if int(tl-h) >= ct.dequeCap {
		// Deque full: run the task undeferred. It is registered and
		// counted, but executes inside Task() — a point the A-stream does
		// not mirror — so it must not be published.
		t.P.SetCategory(old)
		t.runTask(ct, id, false)
		return
	}
	ct.deques[t.id][int(tl)%ct.dequeCap] = id
	ct.tails.Set(t.id, tl+1)
	t.P.SetCategory(old)
}

// runTask executes one registered task on this R-stream: publish it to
// the A-stream when the construct mirrors (deferred tasks run at
// scheduling points), pay the straggler stall if this thread is faulted,
// run the body as the current task, then retire it against the parent's
// child count and the region's pending count.
func (t *Thread) runTask(ct *taskRT, id int32, publish bool) {
	if t.ssActive && publish {
		t.rt.SS.RPublishDecision(t.P, int64(id), int64(id)+1)
	}
	// A straggler thread pays its stall on every task it executes: its
	// deque backs up and it becomes the steal victim of the whole team.
	if d := t.rt.M.Faults.ThreadStall(t.id, 1); d > 0 {
		t.P.Wait(d)
	}
	rec := &ct.records[id]
	prev := t.curTask
	t.curTask = id
	old := t.P.SetCategory(stats.CatBusy)
	rec.run(t)
	t.P.SetCategory(old)
	t.curTask = prev
	t.fetchAdd(ct.children, int(rec.parent), -1)
	t.fetchAdd(ct.pending, 0, -1)
	ct.executed++
}

// tryRunTask executes one deferred task if any is available: first the
// newest on the own deque (LIFO preserves the depth-first working set),
// then a FIFO steal from the victim with the most queued tasks, scanned
// in thread order with ties to the lowest ID — the same deterministic
// victim policy ForAffinity uses, so simulated time is reproducible.
// anc applies the tied-task scheduling constraint: when non-zero, only
// descendants of anc may run (OpenMP's rule for the innermost suspended
// tied task); zero means unconstrained (at barriers the implicit task is
// complete, so the constraint lifts).
func (t *Thread) tryRunTask(ct *taskRT, anc int32) bool {
	old := t.P.SetCategory(stats.CatSched)
	t.P.RMW(ct.tails.Addr(t.id))
	h, tl := ct.heads.Get(t.id), ct.tails.Get(t.id)
	if tl > h {
		id := ct.deques[t.id][int(tl-1)%ct.dequeCap]
		if anc == 0 || ct.isDescendant(id, anc) {
			ct.tails.Set(t.id, tl-1)
			t.P.SetCategory(old)
			t.runTask(ct, id, true)
			return true
		}
	}
	victim, best := -1, int64(0)
	for v := 0; v < ct.teamSize; v++ {
		if v == t.id {
			continue
		}
		t.P.Load(ct.tails.Addr(v))
		t.P.Load(ct.heads.Addr(v))
		if load := ct.tails.Get(v) - ct.heads.Get(v); load > best {
			victim, best = v, load
		}
	}
	if victim >= 0 {
		t.P.RMW(ct.heads.Addr(victim))
		h, tl = ct.heads.Get(victim), ct.tails.Get(victim)
		if tl > h {
			id := ct.deques[victim][int(h)%ct.dequeCap]
			if anc == 0 || ct.isDescendant(id, anc) {
				ct.heads.Set(victim, h+1)
				ct.steals++
				t.P.SetCategory(old)
				t.runTask(ct, id, true)
				return true
			}
		}
	}
	t.P.SetCategory(old)
	return false
}

// Taskwait waits for the current task's children to complete, executing
// other tasks meanwhile (a task scheduling point, constrained to
// descendants of the current task by the tied-task rule). In slipstream
// mode the R-stream publishes each task it runs here plus a terminal
// decision; the A-stream mirrors the construct by replaying exactly that
// stream, so nested taskwaits inside task bodies pair up recursively.
func (t *Thread) Taskwait() {
	if t.isA {
		if t.ssActive && !t.abandoned {
			t.aReplayTasks()
		}
		return
	}
	if !t.inRegion {
		return
	}
	rt := t.rt
	ct := rt.tasking()
	poll := rt.Cfg.Machine.SpinPollCycles
	cur := int(t.curTask)
	for {
		old := t.P.SetCategory(stats.CatSched)
		t.P.Load(ct.children.Addr(cur))
		done := ct.children.Get(cur) == 0
		t.P.SetCategory(old)
		if done {
			break
		}
		if !t.tryRunTask(ct, t.curTask) {
			old := t.P.SetCategory(stats.CatSched)
			t.P.Wait(poll)
			t.P.SetCategory(old)
		}
	}
	if t.ssActive {
		rt.SS.RPublishDecision(t.P, 0, 0)
	}
}

// TaskBarrier is a team barrier that first drains every task spawned in
// the region so far (OpenMP's barrier implies completion of all pending
// explicit tasks). Quiescence is detected from shared memory — every
// thread arrived at this occurrence and the pending count is zero; both
// are monotone between scheduling points, so the condition is stable —
// after which the R-stream publishes the construct's terminal decision
// and runs the normal barrier. The A-stream replays the drained tasks
// and then consumes the barrier token as usual.
func (t *Thread) TaskBarrier() {
	if t.isA {
		if t.ssActive && !t.abandoned {
			t.aReplayTasks()
		}
		t.Barrier()
		return
	}
	if !t.inRegion {
		return
	}
	rt := t.rt
	ct := rt.tasking()
	cell := rt.taskBarCell(int(t.lastSeq), t.taskBarIdx)
	t.taskBarIdx++
	t.fetchAdd(cell, 0, 1)
	poll := rt.Cfg.Machine.SpinPollCycles
	n := int64(rt.teamSize)
	for {
		if t.tryRunTask(ct, 0) {
			continue
		}
		old := t.P.SetCategory(stats.CatBarrier)
		t.P.Load(cell.Addr(0))
		quiet := cell.Get(0) == n
		if quiet {
			// All threads arrived: only task execution can spawn now, and
			// a running task holds a pending count until it retires, so
			// pending == 0 here means the region is drained for good.
			t.P.Load(ct.pending.Addr(0))
			quiet = ct.pending.Get(0) == 0
		}
		if !quiet {
			t.P.Wait(poll)
		}
		t.P.SetCategory(old)
		if quiet {
			break
		}
	}
	if t.ssActive {
		rt.SS.RPublishDecision(t.P, 0, 0)
	}
	t.Barrier()
}

// taskBarCell returns the arrival counter for a task-barrier occurrence
// (its own key space, like singles and ordered cells).
func (rt *Runtime) taskBarCell(seq, idx int) *shmem.I64 {
	key := [2]int{seq, idx}
	c := rt.taskbars[key]
	if c == nil {
		c = rt.NewI64(1)
		rt.taskbars[key] = c
	}
	return c
}

// aReplayTasks mirrors one scheduling construct on the A-stream: take
// each task ID the R-stream published, execute its skeletonized body
// (stores become prefetches via the usual A-stream access policy, nested
// Task spawns are no-ops, nested Taskwaits recurse into the published
// sub-stream), and stop at the construct's terminal decision. A recovery
// abandons the replay; the controller then drops the R-stream's further
// publishes, so the streams stay matched.
func (t *Thread) aReplayTasks() {
	rt := t.rt
	for !t.abandoned {
		lo, hi, ok := rt.SS.ATakeDecision(t.P)
		if !ok {
			rt.SS.AAbsorbRecovery(t.P)
			t.abandoned = true
			return
		}
		if lo >= hi {
			return
		}
		// Copy the record: the R-side may finish the region and recycle
		// the table while this skeleton is still executing.
		rec := rt.tasks.records[lo]
		prev := t.curTask
		t.curTask = int32(lo)
		rec.run(t)
		t.curTask = prev
	}
}

// Taskloop distributes the iterations of [lo, hi) over explicit tasks of
// grain iterations each and waits for their completion, like OpenMP's
// taskloop construct with its implicit taskgroup. grain <= 0 selects
// (hi-lo)/(8*team), at least 1. Every chunk task shares one closure with
// its bounds in the task record, so spawning is allocation-free per task.
func (t *Thread) Taskloop(grain, lo, hi int, body func(t *Thread, i int)) {
	t.TaskloopChunked(grain, lo, hi, func(th *Thread, clo, chi int) {
		for i := clo; i < chi; i++ {
			body(th, i)
		}
	})
}

// TaskloopChunked is Taskloop handing each task its whole chunk
// [clo, chi) at once, for bodies that carry per-chunk private state.
func (t *Thread) TaskloopChunked(grain, lo, hi int, body func(t *Thread, clo, chi int)) {
	if t.isA {
		t.Taskwait() // mirror the construct's implicit wait
		return
	}
	if !t.inRegion {
		if hi > lo {
			body(t, lo, hi)
		}
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (8 * t.rt.teamSize)
		if grain < 1 {
			grain = 1
		}
	}
	fnN := func(th *Thread, clo, chi int64) { body(th, int(clo), int(chi)) }
	for c := lo; c < hi; c += grain {
		end := c + grain
		if end > hi {
			end = hi
		}
		t.spawn(nil, fnN, int64(c), int64(end))
	}
	t.Taskwait()
}

// TaskSteals reports how many successful task steals R-streams performed.
func (rt *Runtime) TaskSteals() uint64 {
	if rt.tasks == nil {
		return 0
	}
	return rt.tasks.steals
}

// TasksExecuted reports how many task bodies R-streams ran (deferred,
// overflow-undeferred, and budget-exhausted spawns alike).
func (rt *Runtime) TasksExecuted() uint64 {
	if rt.tasks == nil {
		return 0
	}
	return rt.tasks.executed + rt.tasks.inlined
}

// TasksInlined reports how many spawns ran undeferred because the
// explicit-ID budget was exhausted (unregistered, never published).
func (rt *Runtime) TasksInlined() uint64 {
	if rt.tasks == nil {
		return 0
	}
	return rt.tasks.inlined
}

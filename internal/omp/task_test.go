package omp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
)

// taskCfg builds a 4-CMP config for the given mode (G0 for slipstream).
func taskCfg(mode core.Mode) Config {
	p := machine.DefaultParams()
	p.Nodes = 4
	cfg := Config{Machine: p, Mode: mode}
	if mode == core.ModeSlipstream {
		cfg.Slipstream = core.G0
	}
	return cfg
}

// fanOut spawns n independent tasks from the master and drains them at a
// task barrier; every task writes its own slot.
func fanOut(t *testing.T, cfg Config, n int) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := rt.NewF64(n)
	err = rt.Run(func(m *Thread) {
		m.Parallel(func(th *Thread) {
			th.Master(func() {
				for i := 0; i < n; i++ {
					i := i
					th.Task(func(c *Thread) {
						c.Compute(200)
						c.StF(out, i, float64(i)+1)
					})
				}
			})
			th.TaskBarrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out.Get(i) != float64(i)+1 {
			t.Fatalf("task %d never committed: out=%g", i, out.Get(i))
		}
	}
	return rt
}

// Every mode must run the same task program to the same committed result:
// in slipstream mode only R-stream commits count, so the A-streams'
// skeleton replays must never touch the backing store.
func TestTaskFanOutAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		rt := fanOut(t, taskCfg(mode), 64)
		if got := rt.TasksExecuted(); got != 64 {
			t.Errorf("mode %v: executed %d tasks, want 64", mode, got)
		}
		if rt.TaskSteals() == 0 {
			t.Errorf("mode %v: all tasks spawned on thread 0 but no steals happened", mode)
		}
	}
}

// Identical configurations must produce identical simulated time and
// scheduler counters: the steal order is deterministic by construction.
func TestTaskDeterminism(t *testing.T) {
	a := fanOut(t, taskCfg(core.ModeSlipstream), 48)
	b := fanOut(t, taskCfg(core.ModeSlipstream), 48)
	if a.M.WallTime() != b.M.WallTime() {
		t.Fatalf("wall time differs across identical runs: %d vs %d", a.M.WallTime(), b.M.WallTime())
	}
	if a.TaskSteals() != b.TaskSteals() || a.TasksExecuted() != b.TasksExecuted() {
		t.Fatalf("scheduler counters differ: steals %d/%d executed %d/%d",
			a.TaskSteals(), b.TaskSteals(), a.TasksExecuted(), b.TasksExecuted())
	}
}

// treeSum runs a recursive task tree with nested taskwaits: inner nodes
// spawn two children, wait for them, and combine their partial sums.
func treeSum(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	const leaves = 64 // nodes 64..127 are leaves of the heap layout
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.NewF64(2 * leaves)
	var tree func(c *Thread, node int)
	tree = func(c *Thread, node int) {
		if node >= leaves {
			c.Compute(100)
			c.StF(res, node, float64(node))
			return
		}
		l, r := 2*node, 2*node+1
		c.Task(func(x *Thread) { tree(x, l) })
		c.Task(func(x *Thread) { tree(x, r) })
		c.Taskwait()
		c.StF(res, node, c.LdF(res, l)+c.LdF(res, r))
	}
	err = rt.Run(func(m *Thread) {
		m.Parallel(func(th *Thread) {
			th.Master(func() {
				th.Task(func(c *Thread) { tree(c, 1) })
			})
			th.TaskBarrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64((leaves + 2*leaves - 1) * leaves / 2) // sum 64..127
	if got := res.Get(1); got != want {
		t.Fatalf("tree sum = %g, want %g", got, want)
	}
	return rt
}

// The tied-task semantics under taskwait (execute descendants while
// waiting) must produce the correct combined result in every mode —
// including the slipstream replay of nested task sub-streams.
func TestTaskwaitTreeAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		rt := treeSum(t, taskCfg(mode))
		if got := rt.TasksExecuted(); got != 127 {
			t.Errorf("mode %v: executed %d tasks, want 127", mode, got)
		}
	}
}

// Tiny deque and ID budgets force both overflow paths — deque-full
// (registered, undeferred) and budget-exhausted (unregistered, inlined) —
// and the results must still be complete and correct.
func TestTaskOverflowPaths(t *testing.T) {
	cfg := taskCfg(core.ModeSlipstream)
	cfg.TaskDequeCap = 2
	cfg.TaskIDBudget = 8
	rt := fanOut(t, cfg, 64)
	if got := rt.TasksExecuted(); got != 64 {
		t.Fatalf("executed %d tasks, want 64", got)
	}
	if rt.TasksInlined() == 0 {
		t.Fatal("ID budget 8 with 64 spawns never exhausted — inline path untested")
	}
}

// Taskloop distributes iterations over chunk tasks and waits; the serial
// (outside-region) path degrades to a direct call.
func TestTaskloop(t *testing.T) {
	cfg := taskCfg(core.ModeSlipstream)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	out := rt.NewF64(n)
	serial := rt.NewF64(1)
	err = rt.Run(func(m *Thread) {
		m.Taskloop(0, 0, 1, func(c *Thread, i int) { serial.Set(0, 7) })
		m.Parallel(func(th *Thread) {
			th.Master(func() {
				th.Taskloop(8, 0, n, func(c *Thread, i int) {
					c.Compute(30)
					c.StF(out, i, 2*float64(i))
				})
			})
			th.TaskBarrier()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Get(0) != 7 {
		t.Fatal("serial taskloop body never ran")
	}
	for i := 0; i < n; i++ {
		if out.Get(i) != 2*float64(i) {
			t.Fatalf("iteration %d: got %g, want %g", i, out.Get(i), 2*float64(i))
		}
	}
	if got, want := rt.TasksExecuted(), uint64(n/8); got != want {
		t.Fatalf("executed %d chunk tasks, want %d", got, want)
	}
}

// A straggler thread (fault class "thread") pays a stall per task it
// executes, so its deque backs up and the rest of the team steals the
// work away mid-drain; correctness must be untouched.
func TestTaskStragglerStolenFrom(t *testing.T) {
	cfg := taskCfg(core.ModeSlipstream)
	cfg.Faults = &faults.Config{Seed: 7, Rate: 1, Classes: []faults.Class{faults.ThreadStraggler}}
	rt := fanOut(t, cfg, 64)
	if rt.FaultsInjected() == 0 {
		t.Fatal("rate-1 thread plan injected nothing")
	}
	if rt.TaskSteals() == 0 {
		t.Fatal("stragglers held work but nothing was stolen")
	}
}

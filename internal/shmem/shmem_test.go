package shmem

import "testing"

func TestAllocAlignment(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(10, 64)
	if a%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", a)
	}
	b := s.Alloc(4, 64)
	if b%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", b)
	}
	if b < a+10 {
		t.Fatalf("overlapping allocations: a=%#x..+10 b=%#x", a, b)
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with non-power-of-two alignment did not panic")
		}
	}()
	NewSpace().Alloc(8, 3)
}

func TestContains(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(128, 64)
	if !s.Contains(a) || !s.Contains(a+127) {
		t.Fatal("allocated range not contained")
	}
	if s.Contains(Base - 1) {
		t.Fatal("address below base reported contained")
	}
	if s.Contains(a + 128) {
		t.Fatal("address above allocation reported contained")
	}
}

func TestF64AddressesAndValues(t *testing.T) {
	s := NewSpace()
	arr := NewF64(s, 8, 64)
	if arr.Len() != 8 {
		t.Fatalf("len = %d", arr.Len())
	}
	if arr.Addr(0)%64 != 0 {
		t.Fatalf("base %#x not line aligned", arr.Addr(0))
	}
	if arr.Addr(3)-arr.Addr(0) != 24 {
		t.Fatalf("element stride wrong: %d", arr.Addr(3)-arr.Addr(0))
	}
	arr.Set(5, 3.25)
	if arr.Get(5) != 3.25 {
		t.Fatalf("get/set roundtrip = %v", arr.Get(5))
	}
	if arr.Data()[5] != 3.25 {
		t.Fatal("Data() not backed by same storage")
	}
}

func TestI64AddressesAndValues(t *testing.T) {
	s := NewSpace()
	arr := NewI64(s, 4, 64)
	arr.Set(0, -7)
	if arr.Get(0) != -7 {
		t.Fatalf("get = %d", arr.Get(0))
	}
	if arr.Addr(1)-arr.Addr(0) != 8 {
		t.Fatal("int64 stride wrong")
	}
}

func TestDistinctArraysDoNotOverlap(t *testing.T) {
	s := NewSpace()
	a := NewF64(s, 100, 64)
	b := NewF64(s, 100, 64)
	aEnd := a.Addr(99) + 8
	if b.Addr(0) < aEnd {
		t.Fatalf("arrays overlap: a ends %#x, b starts %#x", aEnd, b.Addr(0))
	}
}

func TestUsedGrows(t *testing.T) {
	s := NewSpace()
	before := s.Used()
	NewF64(s, 1000, 64)
	if s.Used() < before+8000 {
		t.Fatalf("used = %d, want >= %d", s.Used(), before+8000)
	}
}

// Package shmem provides the simulated shared virtual address space.
//
// OpenMP exposes shared data explicitly, and the paper's runtime keeps the
// shared virtual space contiguous (UNIX process model) so that shared and
// private data are easy to delineate. We mirror that: shared arrays are
// allocated from a single contiguous simulated address range, while private
// data is ordinary Go state whose cost is charged as compute cycles.
//
// Arrays are backed by real Go slices, so simulated kernels compute real,
// verifiable results; the simulated addresses exist purely to drive the
// cache and coherence timing model.
package shmem

import "fmt"

// Addr is a simulated physical/virtual address (the machine is flat-mapped).
type Addr uint64

// Base is the start of the shared segment. Non-zero so that an accidental
// zero address is detectable as a bug.
const Base Addr = 0x10000000

// Space is a bump allocator for the contiguous shared segment.
type Space struct {
	next Addr
}

// NewSpace returns an empty shared address space.
func NewSpace() *Space { return &Space{next: Base} }

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the starting address.
func (s *Space) Alloc(size, align int) Addr {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("shmem: bad alignment %d", align))
	}
	a := Addr(align)
	s.next = (s.next + a - 1) &^ (a - 1)
	p := s.next
	s.next += Addr(size)
	return p
}

// Used returns the number of bytes allocated so far.
func (s *Space) Used() uint64 { return uint64(s.next - Base) }

// Contains reports whether addr lies inside the allocated shared segment.
func (s *Space) Contains(addr Addr) bool { return addr >= Base && addr < s.next }

// F64 is a shared array of float64 values with a simulated address range.
type F64 struct {
	base Addr
	data []float64
}

// NewF64 allocates a shared float64 array of n elements, line-aligned.
func NewF64(s *Space, n int, lineBytes int) *F64 {
	return &F64{base: s.Alloc(n*8, lineBytes), data: make([]float64, n)}
}

// Len returns the number of elements.
func (a *F64) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) Addr { return a.base + Addr(i)*8 }

// Get reads element i from the backing store (no timing).
func (a *F64) Get(i int) float64 { return a.data[i] }

// Set writes element i in the backing store (no timing).
func (a *F64) Set(i int, v float64) { a.data[i] = v }

// Data exposes the backing slice for verification against references.
func (a *F64) Data() []float64 { return a.data }

// I64 is a shared array of int64 values (used for flags, counters, and
// scheduler state that lives in shared memory).
type I64 struct {
	base Addr
	data []int64
}

// NewI64 allocates a shared int64 array of n elements, line-aligned.
func NewI64(s *Space, n int, lineBytes int) *I64 {
	return &I64{base: s.Alloc(n*8, lineBytes), data: make([]int64, n)}
}

// Len returns the number of elements.
func (a *I64) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *I64) Addr(i int) Addr { return a.base + Addr(i)*8 }

// Get reads element i from the backing store (no timing).
func (a *I64) Get(i int) int64 { return a.data[i] }

// Set writes element i in the backing store (no timing).
func (a *I64) Set(i int, v int64) { a.data[i] = v }

// Data exposes the backing slice for verification.
func (a *I64) Data() []int64 { return a.data }

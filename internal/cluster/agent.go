package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// AgentConfig tunes a worker's membership agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names this worker in the fleet; Advertise is the base URL the
	// coordinator should dispatch to.
	ID        string
	Advertise string
	// Capacity is how many jobs this worker runs concurrently.
	Capacity int
	// Load reports the worker's current queue and running counts; it is
	// sampled at every heartbeat.
	Load func() (queued, running int)
	// Interval is the heartbeat cadence used until the coordinator's
	// register ack overrides it (default 1s).
	Interval time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Agent keeps a worker enrolled in the fleet: it registers with the
// coordinator, heartbeats its load, and re-registers whenever the
// coordinator stops recognizing it (restart, or a dead verdict after a
// long stall). All failures are retried forever — a worker's job is to
// keep knocking until the coordinator answers.
type Agent struct {
	cfg  AgentConfig
	quit chan struct{}
	done chan struct{}
}

// StartAgent validates the config and starts the membership loop.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("agent: coordinator URL required")
	}
	if cfg.Load == nil {
		return nil, fmt.Errorf("agent: Load callback required")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := Register{ID: cfg.ID, Addr: cfg.Advertise, Capacity: cfg.Capacity}
	if err := reg.Validate(); err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	a := &Agent{cfg: cfg, quit: make(chan struct{}), done: make(chan struct{})}
	go a.loop(reg)
	return a, nil
}

// Stop ends the membership loop and waits for it to exit.
func (a *Agent) Stop() {
	close(a.quit)
	<-a.done
}

func (a *Agent) loop(reg Register) {
	defer close(a.done)
	interval := a.cfg.Interval
	registered := false
	for {
		if !registered {
			var ack RegisterAck
			if err := a.post("/cluster/register", reg, &ack); err != nil {
				a.cfg.Logf("agent: register with %s failed: %v", a.cfg.Coordinator, err)
			} else if ack.OK {
				registered = true
				if ack.HeartbeatMillis > 0 {
					interval = time.Duration(ack.HeartbeatMillis) * time.Millisecond
				}
				a.cfg.Logf("agent: registered as %s with %s (heartbeat %s)", a.cfg.ID, a.cfg.Coordinator, interval)
			}
		} else {
			queued, running := a.cfg.Load()
			hb := Heartbeat{ID: a.cfg.ID, Queued: queued, Running: running, Capacity: a.cfg.Capacity}
			var ack HeartbeatAck
			if err := a.post("/cluster/heartbeat", hb, &ack); err != nil {
				a.cfg.Logf("agent: heartbeat failed: %v", err)
			} else if !ack.Registered {
				// Coordinator restarted or declared us dead; re-enroll.
				a.cfg.Logf("agent: coordinator no longer knows us; re-registering")
				registered = false
				continue // register immediately, don't wait a beat
			}
		}
		select {
		case <-a.quit:
			return
		case <-time.After(interval):
		}
	}
}

// post sends one JSON request to the coordinator and decodes the ack.
// Plain one-shot HTTP: the loop itself is the retry mechanism.
func (a *Agent) post(path string, msg, ack any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireLen))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, ack)
}

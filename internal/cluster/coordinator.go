package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// Config tunes a Coordinator. Zero values take the documented defaults.
type Config struct {
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 1s). The sweep and replication loops run at the same
	// cadence.
	HeartbeatInterval time.Duration
	// SuspectAfter marks a silent worker suspect (default 3×interval);
	// DeadAfter declares it dead (default 10×interval). The registry is
	// visibility only — lease expiry, not the failure detector, is what
	// recovers work from a dead worker.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// LeaseDuration is how long a claim grant lives without a renewal
	// (default 10s). Workers renew at a third of this.
	LeaseDuration time.Duration
	// ClaimWait caps how long POST /cluster/claims holds a long-poll open
	// (default 2s). Workers may ask for less, never more.
	ClaimWait time.Duration
	// MaxAttempts bounds how many leases a single job may be granted,
	// counting the first claim, expiry reclaims, and hedges (default 3).
	// Determinism makes every extra copy safe; the budget just bounds
	// the work.
	MaxAttempts int
	// HedgeAfter, when positive, is a fixed straggler threshold: any
	// claim outstanding longer becomes claimable by a second worker. When
	// zero the threshold is data-driven — the HedgePercentile (default
	// 0.95) of recent completion latencies for the same job label, times
	// 1.5 — and no hedging happens until enough completions have been
	// observed.
	HedgeAfter      time.Duration
	HedgePercentile float64
	// Peers are the other coordinators' base URLs. The claim table is
	// replicated to each of them every heartbeat interval (and on every
	// mutation), leader-lessly.
	Peers []string
	// BreakerFailures is how many consecutive replication failures open a
	// peer's circuit breaker (default 5). While open, pushes to that peer
	// are skipped until BreakerCooldown elapses; the first push after the
	// cooldown is a half-open probe whose outcome closes or re-opens it.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker waits before probing
	// (default 10× the heartbeat interval).
	BreakerCooldown time.Duration
	// MaxReplicationLag, when positive, arms backpressure: if every
	// peer's last successful replication push is older than this, the
	// server sheds new submissions with 503 + Retry-After until a push
	// lands again. Zero disables shedding.
	MaxReplicationLag time.Duration
	// DisableMergeTerminalWins turns off the incoming-terminal-settles
	// precedence rule in the claim-table merge. It exists solely so the
	// simulation harness can prove its invariant checker catches a broken
	// merge; never set it in production.
	DisableMergeTerminalWins bool
	// SelfID labels this coordinator in replication batches and logs
	// (default "coordinator").
	SelfID string
	// Journal, when set, persists every claim-table transition so a
	// restarted coordinator resumes its leases; Replay seeds the table
	// from a previous run's journal. The coordinator owns the journal
	// once handed over and closes it in Close.
	Journal *store.Journal
	Replay  []store.Record
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Now is the clock (default time.Now); tests inject a fake to drive
	// lease expiry and the failure detector without waiting.
	Now func() time.Time
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 10 * time.Second
	}
	if c.ClaimWait <= 0 {
		c.ClaimWait = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile >= 1 {
		c.HedgePercentile = 0.95
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * c.HeartbeatInterval
	}
	if c.SelfID == "" {
		c.SelfID = "coordinator"
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator serves the claim table: it keeps the worker registry for
// visibility, answers the /cluster/* API (including the claim
// endpoints workers long-poll), replicates claim state to peer
// coordinators, and implements server.Cluster so a slipd server can
// plug it in as its dispatch backend.
type Coordinator struct {
	cfg   Config
	reg   *Registry
	lat   *latencyTracker
	table *ClaimTable
	peers []*peerLink

	hedgesStarted uint64 // atomic

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a Coordinator, seeds the claim table from
// cfg.Replay, and starts the sweep and replication loops. Close it when
// done.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:   cfg,
		reg:   newRegistry(cfg.SuspectAfter, cfg.DeadAfter, cfg.Now),
		lat:   newLatencyTracker(cfg.HedgePercentile),
		table: newClaimTable(cfg.Now, cfg.LeaseDuration, cfg.MaxAttempts),
		quit:  make(chan struct{}),
	}
	if cfg.Journal != nil {
		co.table.journal = func(rec store.Record, sync bool) {
			if err := cfg.Journal.Append(rec, sync); err != nil {
				cfg.Logf("cluster: claims journal append: %v", err)
			}
		}
	}
	if len(cfg.Replay) > 0 {
		co.table.seed(cfg.Replay)
		cfg.Logf("cluster: restored %d claims from journal", len(co.table.Views()))
	}
	co.table.disableTerminalWins = cfg.DisableMergeTerminalWins
	for _, u := range cfg.Peers {
		co.peers = append(co.peers, &peerLink{url: u, failures: cfg.BreakerFailures, cooldown: cfg.BreakerCooldown})
	}
	if len(co.peers) > 0 {
		kick := make(chan struct{}, 1)
		co.table.onChange = func() {
			select {
			case kick <- struct{}{}:
			default:
			}
		}
		co.wg.Add(1)
		go co.replicateLoop(kick)
	}
	co.wg.Add(1)
	go co.sweepLoop()
	return co
}

// AttachResults plugs the coordinator's settled claims into a result
// sink (the server's content-addressed cache), so any coordinator that
// observes a terminal claim — from a worker's report or from peer
// replication — can serve the bytes itself. A sink that can also load
// results (ResultSource) additionally rehydrates done entries replayed
// from the claims journal, whose payloads live in the store rather than
// the journal.
func (co *Coordinator) AttachResults(sink ResultSink) {
	co.table.sink = sink
	if src, ok := sink.(ResultSource); ok {
		co.table.rehydrate(src)
	}
}

// Close stops the background loops and closes the claims journal.
func (co *Coordinator) Close() {
	close(co.quit)
	co.wg.Wait()
	if co.cfg.Journal != nil {
		if err := co.cfg.Journal.Close(); err != nil {
			co.cfg.Logf("cluster: claims journal close: %v", err)
		}
	}
}

func (co *Coordinator) sweepLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-co.quit:
			return
		case <-t.C:
			for _, id := range co.reg.sweep() {
				co.cfg.Logf("cluster: worker %s declared dead (no heartbeat for %s)", id, co.cfg.DeadAfter)
			}
			if n := co.table.SweepLeases(); n > 0 {
				co.cfg.Logf("cluster: %d lease(s) expired, claims back to pending", n)
			}
		}
	}
}

// Stats implements server.Cluster.
func (co *Coordinator) Stats() server.ClusterStats {
	live, suspect, dead := co.reg.counts()
	ctr := co.table.Counters()
	s := server.ClusterStats{
		Role:             "coordinator",
		Live:             live,
		Suspect:          suspect,
		Dead:             dead,
		ClaimsGranted:    ctr.Granted,
		ClaimsCompleted:  ctr.Done,
		ClaimsFailed:     ctr.Failed,
		ClaimsDuplicate:  ctr.Duplicate,
		ClaimContention:  ctr.Contention,
		LeaseExpirations: ctr.Expirations,
		HedgesStarted:    atomic.LoadUint64(&co.hedgesStarted),
		HedgesWon:        ctr.HedgesWon,
		Degraded:         live+suspect == 0,
	}
	now := co.cfg.Now()
	for _, p := range co.peers {
		ps := p.status(now)
		if !ps.Reachable {
			s.Degraded = true
		}
		s.Peers = append(s.Peers, ps)
	}
	return s
}

// Handler serves the worker-facing cluster API:
//
//	POST /cluster/register          — a worker announces itself
//	POST /cluster/heartbeat         — periodic liveness-and-load report
//	POST /cluster/claims            — long-poll to claim a job under a lease
//	POST /cluster/claims/renew      — extend a held lease
//	POST /cluster/claims/report     — terminal report (result bytes or error)
//	POST /cluster/claims/replicate  — peer coordinator reconciliation
//	GET  /cluster/claims            — claim table view for operators and drills
//	GET  /cluster/workers           — fleet view for operators and drills
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeRegister(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		co.reg.register(m)
		co.cfg.Logf("cluster: worker %s registered at %s (capacity %d)", m.ID, m.Addr, m.Capacity)
		writeClusterJSON(w, http.StatusOK, RegisterAck{OK: true, HeartbeatMillis: co.cfg.HeartbeatInterval.Milliseconds()})
	})
	mux.HandleFunc("POST /cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeHeartbeat(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, HeartbeatAck{Registered: co.reg.heartbeat(m)})
	})
	mux.HandleFunc("POST /cluster/claims", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeClaimRequest(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		wait := time.Duration(m.WaitMs) * time.Millisecond
		if wait > co.cfg.ClaimWait {
			wait = co.cfg.ClaimWait
		}
		// One deadline timer for the whole poll: retry loops under a
		// wake storm used to allocate a fresh timer per iteration, which
		// shows up as timer churn with hundreds of parked claimers.
		timer := time.NewTimer(wait)
		defer timer.Stop()
		for {
			// Fetch the wake channel before trying to claim: any grant-able
			// mutation after the attempt closes this channel, so no wakeup
			// can slip between the miss and the select.
			wake := co.table.wait()
			if g, ok := co.table.Claim(m.Worker); ok {
				writeClusterJSON(w, http.StatusOK, g)
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-timer.C:
				w.WriteHeader(http.StatusNoContent)
				return
			case <-wake:
			}
		}
	})
	mux.HandleFunc("POST /cluster/claims/renew", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeClaimRenew(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, RenewAck{OK: co.table.Renew(m.Worker, m.Key, m.Attempt)})
	})
	mux.HandleFunc("POST /cluster/claims/report", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeClaimReport(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		accepted := co.table.Report(m.Worker, m.Key, m.Attempt, m.State, m.Result, m.Error)
		if accepted {
			co.cfg.Logf("cluster: claim %s settled %s by worker %s (attempt %d)", m.Key[:12], m.State, m.Worker, m.Attempt)
		}
		writeClusterJSON(w, http.StatusOK, ReportAck{Accepted: accepted})
	})
	mux.HandleFunc("POST /cluster/claims/replicate", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeReplicateBatch(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		co.table.Merge(m.Records)
		writeClusterJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /cluster/claims", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, map[string]any{"claims": co.table.Views()})
	})
	mux.HandleFunc("GET /cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, map[string]any{
			"workers":  co.reg.views(),
			"degraded": co.Stats().Degraded,
		})
	})
	return mux
}

// Dispatch implements server.Cluster: enqueue the job in the claim
// table and wait for a worker to claim and settle it. Liveness comes
// from leases — if the claiming worker dies, the lease expires and the
// next claimer re-executes; if this whole coordinator dies, a peer's
// copy of the claim serves the job to completion. A claim outstanding
// past the per-label hedge threshold is opened to a second claimant,
// first terminal result wins. Returns server.ErrNoWorkers when the
// fleet is empty (the server then executes locally in degraded mode).
func (co *Coordinator) Dispatch(ctx context.Context, key, label, tenant string, priority int, spec server.JobSpec, progress io.Writer) ([]byte, error) {
	if live, suspect, _ := co.reg.counts(); live+suspect == 0 {
		return nil, server.ErrNoWorkers
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("marshal spec for claim: %w", err)
	}
	start := co.cfg.Now()
	done := co.table.Enqueue(key, label, tenant, priority, specJSON)
	fmt.Fprintf(progress, "cluster: enqueued for claim (key %s…)\n", key[:12])

	// Arm the hedge timer if we have a straggler threshold for this label.
	var hedgeC <-chan time.Time
	if th, ok := co.hedgeThreshold(label); ok {
		t := time.NewTimer(th)
		defer t.Stop()
		hedgeC = t.C
	}

	// Watchdog: if every worker disappears while the claim is open, fall
	// back to local execution rather than waiting on a lease nobody will
	// ever take. The entry stays in the table; determinism makes a
	// late-returning worker's duplicate execution harmless.
	watch := time.NewTicker(co.cfg.HeartbeatInterval)
	defer watch.Stop()

	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case <-hedgeC:
			hedgeC = nil // at most one hedge per dispatch
			if co.table.MarkHedgeable(key) {
				atomic.AddUint64(&co.hedgesStarted, 1)
				fmt.Fprintf(progress, "cluster: straggler — claim opened to a hedge worker\n")
			}

		case <-watch.C:
			if live, suspect, _ := co.reg.counts(); live+suspect == 0 {
				fmt.Fprintf(progress, "cluster: fleet lost mid-claim, falling back\n")
				return nil, server.ErrNoWorkers
			}

		case <-done:
			result, errMsg, ok := co.table.Result(key)
			if !ok {
				return nil, errors.New("claim settled but entry vanished")
			}
			if errMsg != "" {
				return nil, errors.New(errMsg)
			}
			co.lat.observe(label, co.cfg.Now().Sub(start))
			return result, nil
		}
	}
}

// ClaimViews exports the live claim table, oldest first. The simulation
// harness's invariant monitor polls it; operators get the same data via
// GET /cluster/claims.
func (co *Coordinator) ClaimViews() []ClaimView {
	return co.table.Views()
}

// ClaimCounters exports the table's lifetime counters for harness
// assertions (lease expirations, duplicate reports, hedges).
func (co *Coordinator) ClaimCounters() ClaimCounters {
	return co.table.Counters()
}

// hedgeThreshold picks the straggler threshold for a label: the fixed
// override if configured, else the data-driven percentile.
func (co *Coordinator) hedgeThreshold(label string) (time.Duration, bool) {
	if co.cfg.HedgeAfter > 0 {
		return co.cfg.HedgeAfter, true
	}
	return co.lat.threshold(label)
}

// writeClusterJSON / clusterError are the package's tiny response
// helpers (the server keeps its own unexported ones).
func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	writeClusterJSON(w, status, map[string]string{"error": err.Error()})
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// Config tunes a Coordinator. Zero values take the documented defaults.
type Config struct {
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 1s). The sweep loop runs at the same cadence.
	HeartbeatInterval time.Duration
	// SuspectAfter marks a silent worker suspect (default 3×interval);
	// DeadAfter declares it dead and fails over its in-flight jobs
	// (default 10×interval).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// MaxAttempts bounds how many workers a single job may be launched on,
	// counting the first dispatch, failover re-dispatches, and hedges
	// (default 3). Determinism makes every extra copy safe; the budget
	// just bounds the work.
	MaxAttempts int
	// HedgeAfter, when positive, is a fixed straggler threshold: any
	// dispatch running longer launches a second copy. When zero the
	// threshold is data-driven — the HedgePercentile (default 0.95) of
	// recent completion latencies for the same job label, times 1.5 — and
	// no hedging happens until enough completions have been observed.
	HedgeAfter      time.Duration
	HedgePercentile float64
	// PollInterval spaces job-state polls against a worker (default 200ms).
	PollInterval time.Duration
	// DispatchRetries bounds per-request transport retries against one
	// worker before it is considered lost (default 2; failover is the
	// real retry mechanism, so this stays small).
	DispatchRetries int
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Now is the clock (default time.Now); tests inject a fake to drive
	// the failure detector without waiting.
	Now func() time.Time
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile >= 1 {
		c.HedgePercentile = 0.95
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Millisecond
	}
	if c.DispatchRetries <= 0 {
		c.DispatchRetries = 2
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator is the fleet brain: it keeps the worker registry, answers
// the /cluster/* API, and implements server.Cluster so a slipd server
// can plug it in as its dispatch backend.
type Coordinator struct {
	cfg Config
	reg *Registry
	lat *latencyTracker

	failovers     uint64 // atomics
	hedgesStarted uint64
	hedgesWon     uint64

	clients sync.Map // worker addr → *client.Client

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a Coordinator and starts its failure-detection
// sweep loop. Close it when done.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:  cfg,
		reg:  newRegistry(cfg.SuspectAfter, cfg.DeadAfter, cfg.Now),
		lat:  newLatencyTracker(cfg.HedgePercentile),
		quit: make(chan struct{}),
	}
	co.wg.Add(1)
	go co.sweepLoop()
	return co
}

// Close stops the sweep loop.
func (co *Coordinator) Close() {
	close(co.quit)
	co.wg.Wait()
}

func (co *Coordinator) sweepLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-co.quit:
			return
		case <-t.C:
			for _, id := range co.reg.sweep() {
				co.cfg.Logf("cluster: worker %s declared dead (no heartbeat for %s)", id, co.cfg.DeadAfter)
			}
		}
	}
}

// Stats implements server.Cluster.
func (co *Coordinator) Stats() server.ClusterStats {
	live, suspect, dead := co.reg.counts()
	return server.ClusterStats{
		Live:          live,
		Suspect:       suspect,
		Dead:          dead,
		Failovers:     atomic.LoadUint64(&co.failovers),
		HedgesStarted: atomic.LoadUint64(&co.hedgesStarted),
		HedgesWon:     atomic.LoadUint64(&co.hedgesWon),
		Degraded:      live+suspect == 0,
	}
}

// Handler serves the worker-facing cluster API:
//
//	POST /cluster/register  — a worker announces itself
//	POST /cluster/heartbeat — periodic liveness-and-load report
//	GET  /cluster/workers   — fleet view for operators and smoke tests
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeRegister(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		co.reg.register(m)
		co.cfg.Logf("cluster: worker %s registered at %s (capacity %d)", m.ID, m.Addr, m.Capacity)
		writeClusterJSON(w, http.StatusOK, RegisterAck{OK: true, HeartbeatMillis: co.cfg.HeartbeatInterval.Milliseconds()})
	})
	mux.HandleFunc("POST /cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		m, err := DecodeHeartbeat(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, HeartbeatAck{Registered: co.reg.heartbeat(m)})
	})
	mux.HandleFunc("GET /cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, map[string]any{
			"workers":  co.reg.views(),
			"degraded": co.Stats().Degraded,
		})
	})
	return mux
}

// attemptResult is one worker's answer to one dispatched copy of a job.
type attemptResult struct {
	w       *workerHandle
	hedge   bool
	bytes   []byte
	err     error
	perm    bool // permanent: deterministic failure or version skew — no worker will do better
	elapsed time.Duration
}

// Dispatch implements server.Cluster: run the job on the least-loaded
// worker, fail over to survivors if the worker dies mid-job, hedge a
// straggler with a second copy, first result wins. Returns
// server.ErrNoWorkers when nobody can take the job (the server then
// executes it locally in degraded mode).
func (co *Coordinator) Dispatch(ctx context.Context, key, label string, spec server.JobSpec, progress io.Writer) ([]byte, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("marshal spec for dispatch: %w", err)
	}
	body, err := json.Marshal(Dispatch{Key: key, Label: label, Spec: specJSON})
	if err != nil {
		return nil, fmt.Errorf("marshal dispatch: %w", err)
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel() // stops losing copies once a winner lands

	results := make(chan attemptResult, co.cfg.MaxAttempts) // buffered: losers never block
	tried := map[string]bool{}                              // workers a copy has been launched on
	inflight, launches := 0, 0

	launch := func(hedge bool) *workerHandle {
		if launches >= co.cfg.MaxAttempts {
			return nil
		}
		w := co.reg.pick(tried)
		if w == nil {
			return nil
		}
		tried[w.id] = true
		co.reg.assign(w, key)
		inflight++
		launches++
		start := co.cfg.Now()
		go func() {
			bytes, perm, err := co.runOn(dctx, w, key, body)
			results <- attemptResult{w: w, hedge: hedge, bytes: bytes, err: err, perm: perm, elapsed: co.cfg.Now().Sub(start)}
		}()
		return w
	}

	w := launch(false)
	if w == nil {
		return nil, server.ErrNoWorkers
	}
	fmt.Fprintf(progress, "cluster: dispatched to worker %s\n", w.id)

	// Arm the hedge timer if we have a straggler threshold for this label.
	var hedgeC <-chan time.Time
	if th, ok := co.hedgeThreshold(label); ok {
		t := time.NewTimer(th)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case <-hedgeC:
			hedgeC = nil // at most one hedge per dispatch
			if hw := launch(true); hw != nil {
				atomic.AddUint64(&co.hedgesStarted, 1)
				fmt.Fprintf(progress, "cluster: straggler — hedging on worker %s\n", hw.id)
			}

		case r := <-results:
			inflight--
			co.reg.release(r.w, key)
			if r.err == nil {
				co.lat.observe(label, r.elapsed)
				if r.hedge {
					atomic.AddUint64(&co.hedgesWon, 1)
					fmt.Fprintf(progress, "cluster: hedge on worker %s won\n", r.w.id)
				}
				return r.bytes, nil
			}
			if r.perm {
				// Deterministic failure: the job fails identically on every
				// worker, so retrying elsewhere only burns budget.
				return nil, r.err
			}
			lastErr = r.err
			co.cfg.Logf("cluster: %v", r.err)
			fmt.Fprintf(progress, "cluster: %v\n", r.err)
			if fw := launch(false); fw != nil {
				atomic.AddUint64(&co.failovers, 1)
				fmt.Fprintf(progress, "cluster: failed over to worker %s\n", fw.id)
			} else if inflight == 0 {
				if launches >= co.cfg.MaxAttempts {
					return nil, fmt.Errorf("dispatch budget exhausted after %d workers: %w", launches, lastErr)
				}
				// No survivor left to try; let the server run it locally.
				return nil, server.ErrNoWorkers
			}
		}
	}
}

// runOn executes one copy of a job on one worker: hand the spec over,
// poll until terminal, fetch the bytes. perm=true marks failures no
// other worker can fix (deterministic job failure, version skew);
// perm=false failures mean "this worker is lost, try another".
func (co *Coordinator) runOn(ctx context.Context, w *workerHandle, key string, body []byte) (result []byte, perm bool, err error) {
	cl := co.clientFor(w.addr)
	data, status, err := cl.Do(ctx, http.MethodPost, "/cluster/dispatch", body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, false, fmt.Errorf("worker %s unreachable: %w", w.id, err)
	}
	switch status {
	case http.StatusOK, http.StatusCreated:
	case http.StatusConflict:
		return nil, true, fmt.Errorf("worker %s refused dispatch (version skew): %s", w.id, strings.TrimSpace(string(data)))
	default:
		return nil, true, fmt.Errorf("worker %s rejected dispatch: HTTP %d: %s", w.id, status, strings.TrimSpace(string(data)))
	}
	var env struct {
		Job struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Error string `json:"error"`
		} `json:"job"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, fmt.Errorf("worker %s: malformed dispatch response: %v", w.id, err)
	}

	id := env.Job.ID
	state, errMsg := env.Job.State, env.Job.Error
	for {
		switch state {
		case "done":
			b, rerr := cl.Result(ctx, id)
			if rerr != nil {
				if ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				return nil, false, fmt.Errorf("worker %s lost result for job %s: %v", w.id, id, rerr)
			}
			return b, false, nil
		case "failed":
			return nil, true, fmt.Errorf("job failed on worker %s: %s", w.id, errMsg)
		}

		select {
		case <-ctx.Done():
			co.cancelRemote(w.addr, id) // best-effort: don't burn a worker slot on an abandoned job
			return nil, false, ctx.Err()
		case <-w.dead:
			return nil, false, fmt.Errorf("worker %s declared dead mid-job", w.id)
		case <-time.After(co.cfg.PollInterval):
		}

		j, jerr := cl.Job(ctx, id)
		if jerr != nil {
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			if errors.Is(jerr, client.ErrJobNotFound) {
				return nil, false, fmt.Errorf("worker %s lost job %s (restarted?)", w.id, id)
			}
			return nil, false, fmt.Errorf("worker %s unreachable mid-job: %v", w.id, jerr)
		}
		state, errMsg = j.State, j.Error
	}
}

// cancelRemote DELETEs an abandoned job on a worker, detached from the
// (already cancelled) dispatch context.
func (co *Coordinator) cancelRemote(addr, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	co.clientFor(addr).Do(ctx, http.MethodDelete, "/jobs/"+id, nil)
}

// hedgeThreshold picks the straggler threshold for a label: the fixed
// override if configured, else the data-driven percentile.
func (co *Coordinator) hedgeThreshold(label string) (time.Duration, bool) {
	if co.cfg.HedgeAfter > 0 {
		return co.cfg.HedgeAfter, true
	}
	return co.lat.threshold(label)
}

// clientFor returns the cached retrying client for a worker address.
// Retries stay small — failover, not the transport, is the real retry
// mechanism.
func (co *Coordinator) clientFor(addr string) *client.Client {
	if cl, ok := co.clients.Load(addr); ok {
		return cl.(*client.Client)
	}
	cl := client.New(client.Config{
		BaseURL:      addr,
		HTTPClient:   co.cfg.HTTPClient,
		MaxRetries:   co.cfg.DispatchRetries,
		BaseBackoff:  50 * time.Millisecond,
		MaxBackoff:   500 * time.Millisecond,
		PollInterval: co.cfg.PollInterval,
	})
	actual, _ := co.clients.LoadOrStore(addr, cl)
	return actual.(*client.Client)
}

// writeClusterJSON / clusterError are the package's tiny response
// helpers (the server keeps its own unexported ones).
func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	writeClusterJSON(w, status, map[string]string{"error": err.Error()})
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// peerLink tracks one peer coordinator's reachability. The replication
// loop is the only writer; Stats reads concurrently.
type peerLink struct {
	url string

	mu        sync.Mutex
	attempted bool
	ok        bool
	lastOK    time.Time
}

func (p *peerLink) status(now time.Time) server.PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := server.PeerStatus{URL: p.url, Reachable: p.attempted && p.ok, LagMs: -1}
	if !p.lastOK.IsZero() {
		s.LagMs = now.Sub(p.lastOK).Milliseconds()
	}
	return s
}

func (p *peerLink) observe(now time.Time, err error, logf func(string, ...any)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wasOK, wasAttempted := p.ok, p.attempted
	p.attempted = true
	p.ok = err == nil
	if err == nil {
		p.lastOK = now
		if !wasOK {
			logf("cluster: peer %s reachable", p.url)
		}
		return
	}
	if wasOK || !wasAttempted {
		logf("cluster: peer %s unreachable: %v", p.url, err)
	}
}

// replicateLoop pushes the full claim table to every peer on each
// heartbeat tick and on every table mutation (the kick channel). Full
// snapshots keep the protocol trivially idempotent: Merge's precedence
// rules make reapplying old state a no-op, so there is no delta
// bookkeeping to corrupt.
func (co *Coordinator) replicateLoop(kick <-chan struct{}) {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-co.quit:
			return
		case <-t.C:
		case <-kick:
		}
		co.replicateOnce()
	}
}

func (co *Coordinator) replicateOnce() {
	snap := co.table.Snapshot()
	body, err := json.Marshal(ReplicateBatch{From: co.cfg.SelfID, Records: snap})
	if err != nil {
		co.cfg.Logf("cluster: marshal replication batch: %v", err)
		return
	}
	for _, p := range co.peers {
		p.observe(co.cfg.Now(), co.postReplicate(p.url, body), co.cfg.Logf)
	}
}

func (co *Coordinator) postReplicate(url string, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*co.cfg.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/cluster/claims/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered HTTP %d", resp.StatusCode)
	}
	return nil
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// Circuit breaker states for a peer link. A link starts closed; after
// BreakerFailures consecutive push failures it opens, and pushes are
// skipped until BreakerCooldown elapses. The first push after the
// cooldown is a half-open probe: success closes the breaker, failure
// re-opens it for another cooldown.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

func breakerName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// peerLink tracks one peer coordinator's reachability and breaker. The
// replication loop is the only caller of allow/observe; Stats reads
// concurrently.
type peerLink struct {
	url      string
	failures int           // breaker threshold (consecutive failures)
	cooldown time.Duration // open → half-open probe delay

	mu        sync.Mutex
	attempted bool
	ok        bool
	lastOK    time.Time
	fails     int
	state     int
	openUntil time.Time
}

func (p *peerLink) status(now time.Time) server.PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := server.PeerStatus{
		URL:       p.url,
		Reachable: p.attempted && p.ok,
		LagMs:     -1,
		Breaker:   breakerName(p.state),
	}
	if !p.lastOK.IsZero() {
		s.LagMs = now.Sub(p.lastOK).Milliseconds()
	}
	return s
}

// lag is how far behind this peer's copy of the claim table may be:
// time since the last successful push. Unattempted peers report zero
// (the loop hasn't run yet); attempted-but-never-successful peers
// report the maximum.
func (p *peerLink) lag(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.attempted {
		return 0
	}
	if p.lastOK.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return now.Sub(p.lastOK)
}

// allow reports whether the replication loop should push to this peer
// now. An open breaker swallows pushes until the cooldown elapses, then
// lets exactly one through as the half-open probe.
func (p *peerLink) allow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case breakerOpen:
		if now.Before(p.openUntil) {
			return false
		}
		p.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		// A probe is already in flight (or just failed and observe will
		// re-open); don't stack probes.
		return false
	default:
		return true
	}
}

func (p *peerLink) observe(now time.Time, err error, logf func(string, ...any)) {
	p.mu.Lock()
	wasOK, wasAttempted := p.ok, p.attempted
	p.attempted = true
	p.ok = err == nil
	if err == nil {
		p.lastOK = now
		p.fails = 0
		reclosed := p.state != breakerClosed
		p.state = breakerClosed
		p.mu.Unlock()
		if !wasOK {
			logf("cluster: peer %s reachable", p.url)
		}
		if reclosed {
			logf("cluster: breaker closed for peer %s", p.url)
		}
		return
	}
	p.fails++
	opened := false
	if p.state == breakerHalfOpen || (p.state == breakerClosed && p.fails >= p.failures) {
		p.state = breakerOpen
		p.openUntil = now.Add(p.cooldown)
		opened = true
	}
	p.mu.Unlock()
	if wasOK || !wasAttempted {
		logf("cluster: peer %s unreachable: %v", p.url, err)
	}
	if opened {
		logf("cluster: breaker open for peer %s (cooldown %s)", p.url, p.cooldown)
	}
}

// replicateLoop pushes the full claim table to every peer on each
// heartbeat tick and on every table mutation (the kick channel). Full
// snapshots keep the protocol trivially idempotent: Merge's precedence
// rules make reapplying old state a no-op, so there is no delta
// bookkeeping to corrupt.
func (co *Coordinator) replicateLoop(kick <-chan struct{}) {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-co.quit:
			return
		case <-t.C:
		case <-kick:
		}
		co.replicateOnce()
	}
}

func (co *Coordinator) replicateOnce() {
	snap := co.table.Snapshot()
	body, err := json.Marshal(ReplicateBatch{From: co.cfg.SelfID, Records: snap})
	if err != nil {
		co.cfg.Logf("cluster: marshal replication batch: %v", err)
		return
	}
	for _, p := range co.peers {
		if !p.allow(co.cfg.Now()) {
			continue
		}
		p.observe(co.cfg.Now(), co.postReplicate(p.url, body), co.cfg.Logf)
	}
}

func (co *Coordinator) postReplicate(url string, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*co.cfg.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/cluster/claims/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered HTTP %d", resp.StatusCode)
	}
	return nil
}

// ShedNewJobs implements replication-lag backpressure: it reports true
// (with a suggested retry delay) when every peer's last successful push
// is older than MaxReplicationLag — meaning nothing this coordinator
// accepts right now is durably mirrored anywhere. The server answers
// new submissions with 503 + Retry-After while this holds. Disabled
// when MaxReplicationLag is zero or the coordinator has no peers.
func (co *Coordinator) ShedNewJobs() (time.Duration, bool) {
	if co.cfg.MaxReplicationLag <= 0 || len(co.peers) == 0 {
		return 0, false
	}
	now := co.cfg.Now()
	min := time.Duration(1<<63 - 1)
	for _, p := range co.peers {
		if l := p.lag(now); l < min {
			min = l
		}
	}
	if min <= co.cfg.MaxReplicationLag {
		return 0, false
	}
	retry := co.cfg.HeartbeatInterval
	if retry < time.Second {
		retry = time.Second
	}
	return retry, true
}

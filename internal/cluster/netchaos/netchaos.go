// Package netchaos is a seeded, deterministic network-fault layer for
// the fleet control plane. It sits behind the injectable HTTP transport
// every cluster component already takes (coordinator↔coordinator
// replication, worker↔coordinator claim/renew/report, membership
// heartbeats) and can drop, delay, duplicate, and reorder messages,
// partition node sets, and skew a node's injectable clock — all derived,
// in the same counter-based splitmix64 style as internal/faults, from a
// single seed. The same seed and spec produce the same fault plan, so a
// schedule that breaks an invariant in the cluster simulation harness
// is reproduced by rerunning that one seed.
//
// Faults model real failure modes precisely:
//
//   - drop: the message never arrives (the caller sees a transport
//     error), or — drawn from the same seed — the message arrives but
//     the *reply* is lost, so the side effect happened and the caller
//     doesn't know. The second mode is what makes "exactly-once by
//     retry" impossible in real networks; the claim table must absorb
//     both.
//   - delay/reorder: the message is held before delivery. Held messages
//     pass later traffic on the same link, which is exactly how
//     reordering manifests to an HTTP client pool.
//   - dup: the message is delivered twice (the second response is
//     discarded). A duplicated claim long-poll grants a lease nobody is
//     running — lease expiry must reclaim it.
//   - partition: messages between nodes in different groups fail, both
//     directions, until Heal.
//   - skew: each node's clock runs a fixed, seed-drawn offset from real
//     time, so absolute lease deadlines disagree between nodes.
package netchaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults/splitmix"
)

// Fault classes, each with its own draw sub-streams per directed link.
const (
	classDrop uint64 = iota + 1
	classDropReply
	classDelay
	classDup
	classReorder
	classSkew
)

// Spec is a chaos plan: a seed plus per-class probabilities and
// magnitude bounds. The zero Spec injects nothing.
type Spec struct {
	// Seed drives every decision; equal seeds replay equal plans.
	Seed uint64
	// Drop is the per-message loss probability. Half of the losses
	// (drawn from the seed) lose the request, half lose only the reply
	// after the side effect landed.
	Drop float64
	// Delay is the probability a message is held before delivery, for a
	// duration drawn uniformly from [DelayMin, DelayMax].
	Delay    float64
	DelayMin time.Duration
	DelayMax time.Duration
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Reorder is the probability a message is held long enough (one to
	// three DelayMax) to let later traffic on the link pass it.
	Reorder float64
	// SkewMax bounds per-node clock skew: each node's offset is drawn
	// once from [-SkewMax, +SkewMax].
	SkewMax time.Duration
}

// Validate rejects probabilities outside [0, 1] and inverted delay
// bounds.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"delay", s.Delay}, {"dup", s.Dup}, {"reorder", s.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netchaos: %s rate %g outside [0, 1]", p.name, p.v)
		}
	}
	if s.DelayMin < 0 || s.DelayMax < 0 || s.DelayMin > s.DelayMax {
		return fmt.Errorf("netchaos: delay bounds [%s, %s] invalid", s.DelayMin, s.DelayMax)
	}
	if s.SkewMax < 0 {
		return fmt.Errorf("netchaos: skew %s negative", s.SkewMax)
	}
	return nil
}

// Active reports whether the spec can inject anything at all.
func (s Spec) Active() bool {
	return s.Drop > 0 || s.Delay > 0 || s.Dup > 0 || s.Reorder > 0 || s.SkewMax > 0
}

// String renders the plan in the -chaos-spec grammar.
func (s Spec) String() string {
	var parts []string
	if s.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", s.Drop))
	}
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%s:%s", s.Delay, s.DelayMin, s.DelayMax))
	}
	if s.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", s.Dup))
	}
	if s.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", s.Reorder))
	}
	if s.SkewMax > 0 {
		parts = append(parts, fmt.Sprintf("skew=%s", s.SkewMax))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -chaos-spec grammar: comma-separated key=value
// terms, e.g.
//
//	drop=0.05,delay=0.1:1ms:20ms,dup=0.02,reorder=0.05,skew=50ms
//
// delay takes rate:min:max (min/max optional, default 1ms:25ms); every
// other term takes a bare rate or duration. The seed comes from the
// separate -chaos-seed flag so one spec can sweep many seeds.
func ParseSpec(in string) (Spec, error) {
	s := Spec{DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond}
	in = strings.TrimSpace(in)
	if in == "" || in == "none" {
		return s, nil
	}
	for _, term := range strings.Split(in, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return Spec{}, fmt.Errorf("netchaos: term %q is not key=value", term)
		}
		var err error
		switch key {
		case "drop":
			s.Drop, err = parseRate(val)
		case "dup":
			s.Dup, err = parseRate(val)
		case "reorder":
			s.Reorder, err = parseRate(val)
		case "skew":
			s.SkewMax, err = time.ParseDuration(val)
		case "delay":
			fields := strings.Split(val, ":")
			if len(fields) != 1 && len(fields) != 3 {
				return Spec{}, fmt.Errorf("netchaos: delay %q is not rate[:min:max]", val)
			}
			if s.Delay, err = parseRate(fields[0]); err != nil {
				break
			}
			if len(fields) == 3 {
				if s.DelayMin, err = time.ParseDuration(fields[1]); err != nil {
					break
				}
				s.DelayMax, err = time.ParseDuration(fields[2])
			}
		default:
			return Spec{}, fmt.Errorf("netchaos: unknown term %q (valid: drop, delay, dup, reorder, skew)", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("netchaos: term %q: %v", term, err)
		}
	}
	return s, s.Validate()
}

func parseRate(s string) (float64, error) {
	var r float64
	if _, err := fmt.Sscanf(s, "%g", &r); err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %g outside [0, 1]", r)
	}
	return r, nil
}

// Counters are the lifetime injection counts, one per fault kind plus
// messages refused by an active partition.
type Counters struct {
	Dropped     uint64 // request lost before delivery
	RepliesLost uint64 // delivered, but the response was lost
	Delayed     uint64
	Duplicated  uint64
	Reordered   uint64
	Partitioned uint64
}

// Total sums every injected fault.
func (c Counters) Total() uint64 {
	return c.Dropped + c.RepliesLost + c.Delayed + c.Duplicated + c.Reordered + c.Partitioned
}

// String renders non-zero counts for log lines.
func (c Counters) String() string {
	var parts []string
	for _, p := range []struct {
		name string
		v    uint64
	}{
		{"dropped", c.Dropped}, {"replies_lost", c.RepliesLost}, {"delayed", c.Delayed},
		{"duplicated", c.Duplicated}, {"reordered", c.Reordered}, {"partitioned", c.Partitioned},
	} {
		if p.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", p.name, p.v))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Chaos is the seeded decision core shared by every Transport derived
// from it. It is safe for concurrent use: the draw stream is guarded by
// a mutex, and draws stay deterministic per directed link because each
// (class, link) pair owns its own counter — concurrency changes which
// goroutine consumes a link's next draw, never the draw sequence itself.
type Chaos struct {
	mu     sync.Mutex
	spec   Spec
	str    *splitmix.Stream
	paused bool
	part   map[string]int // node → partition group; empty = fully connected
	ctr    Counters
}

// New builds a chaos core for the spec. Invalid specs are rejected.
func New(spec Spec) (*Chaos, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Chaos{spec: spec, str: splitmix.NewStream(spec.Seed)}, nil
}

// MustNew is New for specs known valid (tests, generated schedules).
func MustNew(spec Spec) *Chaos {
	c, err := New(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Quiesce stops all message-fault injection (clock skew persists: a
// skewed clock does not heal when the network does). Partitions are
// unaffected; Heal them separately.
func (c *Chaos) Quiesce() {
	c.mu.Lock()
	c.paused = true
	c.mu.Unlock()
}

// Resume re-arms message faults after a Quiesce.
func (c *Chaos) Resume() {
	c.mu.Lock()
	c.paused = false
	c.mu.Unlock()
}

// Partition splits the named nodes into isolated groups: a message
// between nodes of different groups fails as a transport error. Nodes
// not named in any group remain reachable from everyone (group 0 —
// pass every node explicitly for a full split). Calling Partition
// replaces any previous partition.
func (c *Chaos) Partition(groups ...[]string) {
	c.mu.Lock()
	c.part = map[string]int{}
	for g, nodes := range groups {
		for _, n := range nodes {
			c.part[n] = g + 1 // 0 is the implicit "everyone" group
		}
	}
	c.mu.Unlock()
}

// Heal removes the active partition.
func (c *Chaos) Heal() {
	c.mu.Lock()
	c.part = nil
	c.mu.Unlock()
}

// Partitioned reports whether from→to is currently blocked.
func (c *Chaos) Partitioned(from, to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitionedLocked(from, to)
}

func (c *Chaos) partitionedLocked(from, to string) bool {
	if len(c.part) == 0 {
		return false
	}
	gf, gt := c.part[from], c.part[to]
	return gf != 0 && gt != 0 && gf != gt
}

// Counters returns a copy of the lifetime injection counts.
func (c *Chaos) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctr
}

// Total returns the lifetime injected-fault count (the
// slipd_chaos_injected_total metric).
func (c *Chaos) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctr.Total()
}

// Skew returns the node's seed-drawn clock offset in [-SkewMax, +SkewMax].
// The draw is positional (no counter), so it is stable for the node's
// lifetime and across restarts.
func (c *Chaos) Skew(node string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spec.SkewMax <= 0 {
		return 0
	}
	h := c.str.DrawAt(classSkew, splitmix.HashString(node), 0)
	span := 2*int64(c.spec.SkewMax) + 1
	return time.Duration(int64(h%uint64(span))) - c.spec.SkewMax
}

// Clock returns the node's skewed wall clock, suitable for a
// coordinator's injectable Now.
func (c *Chaos) Clock(node string) func() time.Time {
	skew := c.Skew(node)
	return func() time.Time { return time.Now().Add(skew) }
}

// verdict is one message's fate, drawn up front so the whole plan for
// the message is fixed before any time passes.
type verdict struct {
	partitioned bool
	drop        bool // lose the request: no side effect
	dropReply   bool // deliver, then lose the response
	delay       time.Duration
	dup         bool
}

// judge consumes the draws for one message on the directed link
// from→to. Counter keys are per (class, link) so every link owns an
// independent, reproducible fault sequence.
func (c *Chaos) judge(from, to string) verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v verdict
	if c.partitionedLocked(from, to) {
		c.ctr.Partitioned++
		v.partitioned = true
		return v
	}
	if c.paused {
		return v
	}
	link := splitmix.HashString(from + "\x00" + to)
	if c.hit(classDrop, link, c.spec.Drop) {
		// The same draw stream decides which side of the exchange is
		// lost: requests and replies fail in the wild about equally.
		if c.str.Next(classDropReply, link)&1 == 0 {
			c.ctr.Dropped++
			v.drop = true
		} else {
			c.ctr.RepliesLost++
			v.dropReply = true
		}
		return v
	}
	if c.hit(classReorder, link, c.spec.Reorder) {
		// Held one to three DelayMax: long enough that later messages on
		// the link overtake this one.
		span := int64(c.spec.DelayMax)
		if span <= 0 {
			span = int64(10 * time.Millisecond)
		}
		v.delay = time.Duration(span + int64(c.str.Next(classReorder, link^1)%uint64(2*span)))
		c.ctr.Reordered++
	} else if c.hit(classDelay, link, c.spec.Delay) {
		lo, hi := int64(c.spec.DelayMin), int64(c.spec.DelayMax)
		v.delay = time.Duration(lo)
		if hi > lo {
			v.delay += time.Duration(int64(c.str.Next(classDelay, link^1) % uint64(hi-lo+1)))
		}
		c.ctr.Delayed++
	}
	if c.hit(classDup, link, c.spec.Dup) {
		v.dup = true
		c.ctr.Duplicated++
	}
	return v
}

// hit consumes one draw of class on the link and compares it to the
// rate. Callers hold c.mu.
func (c *Chaos) hit(class, link uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	th, always := splitmix.Threshold(rate)
	h := c.str.Next(class, link)
	return always || h < th
}

// PartitionView renders the active partition for logs: "a,b|c" or "".
func (c *Chaos) PartitionView() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.part) == 0 {
		return ""
	}
	groups := map[int][]string{}
	for n, g := range c.part {
		groups[g] = append(groups[g], n)
	}
	ids := make([]int, 0, len(groups))
	for g := range groups {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	var parts []string
	for _, g := range ids {
		sort.Strings(groups[g])
		parts = append(parts, strings.Join(groups[g], ","))
	}
	return strings.Join(parts, "|")
}

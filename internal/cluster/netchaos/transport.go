package netchaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// ErrInjected marks a transport failure manufactured by the chaos
// layer (drop, lost reply, partition). Callers that want to tell
// injected faults from real ones can errors.Is against it; the cluster
// components treat both identically, which is the point.
var ErrInjected = errors.New("netchaos: injected network fault")

// maxBodyBuffer caps how much of a request body the transport buffers
// to support duplication. Control-plane messages are bounded far below
// this by the cluster wire caps.
const maxBodyBuffer = 32 << 20

// deliverFunc delivers one buffered request and returns the response.
type deliverFunc func(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error)

// Transport is an http.RoundTripper that subjects every request leaving
// one named node to the chaos plan. Build one with Chaos.Transport
// (wrapping a real network transport) or Network.Transport (in-process
// delivery straight into a registered handler).
type Transport struct {
	chaos   *Chaos
	from    string
	deliver deliverFunc
}

// Transport wraps inner (nil = http.DefaultTransport) so every request
// sent through it is judged by the chaos plan. from names the sending
// node; the target node is the request's URL host, so per-link draw
// streams line up with real topology.
func (c *Chaos) Transport(from string, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		chaos: c,
		from:  from,
		deliver: func(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			copyHeader(req.Header, header)
			return inner.RoundTrip(req)
		},
	}
}

// RoundTrip implements http.RoundTripper: judge the message, then lose,
// hold, duplicate, or deliver it accordingly.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := req.URL.Host
	body, err := bufferBody(req)
	if err != nil {
		return nil, err
	}
	v := t.chaos.judge(t.from, to)

	switch {
	case v.partitioned:
		return nil, fmt.Errorf("%w: %s→%s partitioned", ErrInjected, t.from, to)
	case v.drop:
		return nil, fmt.Errorf("%w: %s→%s request dropped", ErrInjected, t.from, to)
	}

	if v.delay > 0 {
		timer := time.NewTimer(v.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	if v.dup {
		// The duplicate is a retransmit: delivered on its own detached
		// context (the original caller may be long gone), response
		// discarded. The receiver sees the message twice.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if resp, err := t.deliver(ctx, req.Method, req.URL.String(), req.Header, body); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBuffer))
				resp.Body.Close()
			}
		}()
	}

	resp, err := t.deliver(req.Context(), req.Method, req.URL.String(), req.Header, body)
	if err != nil {
		return nil, err
	}
	if v.dropReply {
		// The side effect landed; the answer did not. The caller sees
		// the same face as a dropped request — that ambiguity is the
		// fault being modeled.
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBuffer))
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s→%s reply lost", ErrInjected, t.from, to)
	}
	return resp, nil
}

// bufferBody reads the request body up front so the message can be
// delivered more than once (duplicates, and the reply-lost path which
// must deliver before failing).
func bufferBody(req *http.Request) ([]byte, error) {
	if req.Body == nil {
		return nil, nil
	}
	defer req.Body.Close()
	b, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBuffer+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxBodyBuffer {
		return nil, fmt.Errorf("netchaos: request body exceeds %d bytes", maxBodyBuffer)
	}
	return b, nil
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// Network is an in-process cluster fabric for the simulation harness:
// nodes register their HTTP handlers under plain names ("c0", "w2"),
// and clients built with Client route "http://<name>/..." straight into
// the named handler — no sockets, no ports — with every message judged
// by the shared chaos core. Deregistering a node (a crash) makes
// messages to it fail like a connection refusal.
type Network struct {
	chaos *Chaos

	mu    sync.Mutex
	nodes map[string]http.Handler
}

// NewNetwork builds an in-process fabric over a chaos plan.
func NewNetwork(spec Spec) (*Network, error) {
	c, err := New(spec)
	if err != nil {
		return nil, err
	}
	return &Network{chaos: c, nodes: map[string]http.Handler{}}, nil
}

// Chaos exposes the shared decision core (partitions, quiesce, counters).
func (n *Network) Chaos() *Chaos { return n.chaos }

// Register attaches a node's handler under its name, replacing any
// previous registration (a restart).
func (n *Network) Register(name string, h http.Handler) {
	n.mu.Lock()
	n.nodes[name] = h
	n.mu.Unlock()
}

// Deregister detaches a node (a crash): in-flight and future messages
// to it fail as transport errors.
func (n *Network) Deregister(name string) {
	n.mu.Lock()
	delete(n.nodes, name)
	n.mu.Unlock()
}

// URL returns the base URL other nodes use to reach name.
func (n *Network) URL(name string) string { return "http://" + name }

// Transport builds the chaos round-tripper for messages leaving from.
func (n *Network) Transport(from string) *Transport {
	return &Transport{
		chaos: n.chaos,
		from:  from,
		deliver: func(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
			req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			copyHeader(req.Header, header)
			// Resolve at delivery time, not judge time: a node that
			// crashed while the message was held in the network refuses
			// it, exactly like a real dead peer.
			n.mu.Lock()
			h, ok := n.nodes[req.URL.Host]
			n.mu.Unlock()
			if !ok {
				return nil, fmt.Errorf("netchaos: connect %s: connection refused", req.URL.Host)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			// A node that crashed while serving loses the connection:
			// the side effect may have landed, the reply never does.
			n.mu.Lock()
			_, still := n.nodes[req.URL.Host]
			n.mu.Unlock()
			if !still {
				return nil, fmt.Errorf("netchaos: read %s: connection reset", req.URL.Host)
			}
			resp := rec.Result()
			resp.Request = req
			return resp, nil
		},
	}
}

// Client returns an http.Client whose requests leave from the named
// node through the chaos fabric.
func (n *Network) Client(from string) *http.Client {
	return &http.Client{Transport: n.Transport(from)}
}

package netchaos

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond}},
		{"none", Spec{DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond}},
		{"drop=0.05", Spec{Drop: 0.05, DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond}},
		{"drop=0.1,delay=0.2:2ms:30ms,dup=0.02,reorder=0.05,skew=50ms", Spec{
			Drop: 0.1, Delay: 0.2, DelayMin: 2 * time.Millisecond, DelayMax: 30 * time.Millisecond,
			Dup: 0.02, Reorder: 0.05, SkewMax: 50 * time.Millisecond,
		}},
		{"delay=0.3", Spec{Delay: 0.3, DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"drop=2", "drop=-1", "nope=1", "delay=0.1:5ms", "delay", "skew=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// Same seed, same link, same message sequence → identical verdicts.
// Different seeds diverge.
func TestJudgeDeterministicPerSeed(t *testing.T) {
	spec := Spec{Seed: 42, Drop: 0.3, Delay: 0.3, DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond, Dup: 0.2, Reorder: 0.1}
	run := func(seed uint64) []verdict {
		s := spec
		s.Seed = seed
		c := MustNew(s)
		var out []verdict
		for i := 0; i < 200; i++ {
			out = append(out, c.judge("a", "b"))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

// Concurrent traffic on different links must not perturb a link's draw
// sequence: link draws are keyed per (class, link) counter.
func TestLinkStreamsIndependentUnderConcurrency(t *testing.T) {
	spec := Spec{Seed: 7, Drop: 0.5}
	solo := MustNew(spec)
	var want []verdict
	for i := 0; i < 100; i++ {
		want = append(want, solo.judge("a", "b"))
	}

	mixed := MustNew(spec)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // noise on other links, concurrently
		defer wg.Done()
		for i := 0; i < 300; i++ {
			mixed.judge("x", "y")
			mixed.judge("b", "a")
		}
	}()
	var got []verdict
	for i := 0; i < 100; i++ {
		got = append(got, mixed.judge("a", "b"))
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("a→b verdict %d shifted under concurrent traffic on other links", i)
		}
	}
}

func TestSkewStableAndBounded(t *testing.T) {
	c := MustNew(Spec{Seed: 9, SkewMax: 50 * time.Millisecond})
	seen := map[time.Duration]bool{}
	for _, n := range []string{"c0", "c1", "c2", "w0", "w1", "w2", "w3"} {
		s := c.Skew(n)
		if s < -50*time.Millisecond || s > 50*time.Millisecond {
			t.Fatalf("skew(%s) = %s outside bounds", n, s)
		}
		if s != c.Skew(n) {
			t.Fatalf("skew(%s) unstable", n)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatal("all nodes drew the same skew; draws look broken")
	}
	if MustNew(Spec{Seed: 9}).Skew("c0") != 0 {
		t.Fatal("zero SkewMax must mean zero skew")
	}
}

func TestNetworkDeliversAndCrashRefuses(t *testing.T) {
	n, err := NewNetwork(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	n.Register("srv", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "echo:%s:%s", r.URL.Path, b)
	}))
	cl := n.Client("cli")
	resp, err := cl.Post(n.URL("srv")+"/x", "text/plain", nil)
	if err != nil {
		t.Fatalf("in-process round trip: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "echo:/x:" {
		t.Fatalf("body = %q", b)
	}

	n.Deregister("srv")
	if _, err := cl.Get(n.URL("srv") + "/x"); err == nil {
		t.Fatal("message to a crashed node succeeded")
	}
}

func TestPartitionBlocksBothDirectionsUntilHeal(t *testing.T) {
	n, _ := NewNetwork(Spec{})
	hits := uint64(0)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { atomic.AddUint64(&hits, 1) })
	n.Register("a", h)
	n.Register("b", h)
	n.Chaos().Partition([]string{"a"}, []string{"b"})
	if _, err := n.Client("a").Get(n.URL("b")); err == nil {
		t.Fatal("a→b crossed the partition")
	}
	if _, err := n.Client("b").Get(n.URL("a")); err == nil {
		t.Fatal("b→a crossed the partition")
	}
	// A node outside every group still reaches both sides.
	if _, err := n.Client("outsider").Get(n.URL("a")); err != nil {
		t.Fatalf("outsider→a: %v", err)
	}
	if got := n.Chaos().Counters().Partitioned; got != 2 {
		t.Fatalf("Partitioned = %d, want 2", got)
	}
	if v := n.Chaos().PartitionView(); v != "a|b" {
		t.Fatalf("PartitionView = %q", v)
	}
	n.Chaos().Heal()
	if _, err := n.Client("a").Get(n.URL("b")); err != nil {
		t.Fatalf("a→b after heal: %v", err)
	}
	if atomic.LoadUint64(&hits) != 2 {
		t.Fatalf("handler hits = %d, want 2 (outsider→a, healed a→b)", hits)
	}
}

// A lost reply must still deliver the request (side effect lands), and a
// dropped request must not.
func TestDropModes(t *testing.T) {
	n, _ := NewNetwork(Spec{Seed: 1, Drop: 1})
	var delivered uint64
	n.Register("srv", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { atomic.AddUint64(&delivered, 1) }))
	cl := n.Client("cli")
	for i := 0; i < 40; i++ {
		if _, err := cl.Get(n.URL("srv")); err == nil {
			t.Fatal("drop=1 let a call succeed")
		}
	}
	ctr := n.Chaos().Counters()
	if ctr.Dropped == 0 || ctr.RepliesLost == 0 {
		t.Fatalf("want both drop modes exercised, got %+v", ctr)
	}
	if atomic.LoadUint64(&delivered) != ctr.RepliesLost {
		t.Fatalf("delivered=%d but replies lost=%d: reply-lost must deliver exactly once", delivered, ctr.RepliesLost)
	}
	if ctr.Total() != 40 {
		t.Fatalf("Total = %d, want 40", ctr.Total())
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	n, _ := NewNetwork(Spec{Seed: 3, Dup: 1})
	var delivered uint64
	n.Register("srv", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { atomic.AddUint64(&delivered, 1) }))
	cl := n.Client("cli")
	if _, err := cl.Get(n.URL("srv")); err != nil {
		t.Fatalf("dup'd call failed: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadUint64(&delivered) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("duplicate never delivered (hits=%d)", delivered)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQuiesceStopsInjection(t *testing.T) {
	n, _ := NewNetwork(Spec{Seed: 5, Drop: 1})
	n.Register("srv", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	n.Chaos().Quiesce()
	for i := 0; i < 20; i++ {
		if _, err := n.Client("cli").Get(n.URL("srv")); err != nil {
			t.Fatalf("quiesced drop still fired: %v", err)
		}
	}
	n.Chaos().Resume()
	if _, err := n.Client("cli").Get(n.URL("srv")); err == nil {
		t.Fatal("resume did not re-arm drops")
	}
}

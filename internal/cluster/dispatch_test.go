package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

const runSpecBody = `{"kind":"run","kernel":"CG","nodes":4}`

// fastCfg keeps claim tests snappy and deterministic: the background
// sweep ticker is parked at an hour so tests drive sweeps (and the fake
// clock) by hand.
func fastCfg(clk *fakeClock) Config {
	cfg := Config{
		HeartbeatInterval: time.Hour,
		ClaimWait:         100 * time.Millisecond,
	}
	if clk != nil {
		cfg.Now = clk.now
	}
	return cfg
}

// claimOnce POSTs one claim long-poll as worker and returns the grant,
// or ok=false on 204.
func claimOnce(t *testing.T, coURL, worker string, waitMs int64) (ClaimGrant, bool) {
	t.Helper()
	body := fmt.Sprintf(`{"worker":%q,"wait_ms":%d}`, worker, waitMs)
	resp, err := http.Post(coURL+"/cluster/claims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /cluster/claims: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return ClaimGrant{}, false
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("claim: HTTP %d: %s", resp.StatusCode, b)
	}
	g, err := DecodeClaimGrant(resp.Body)
	if err != nil {
		t.Fatalf("decode grant: %v", err)
	}
	return g, true
}

// reportClaim POSTs a terminal report and returns whether it was
// accepted.
func reportClaim(t *testing.T, coURL string, rep ClaimReport) bool {
	t.Helper()
	b, _ := json.Marshal(rep)
	resp, err := http.Post(coURL+"/cluster/claims/report", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("POST /cluster/claims/report: %v", err)
	}
	defer resp.Body.Close()
	var ack ReportAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode report ack: %v", err)
	}
	return ack.Accepted
}

func TestDispatchNoWorkers(t *testing.T) {
	co := NewCoordinator(fastCfg(newFakeClock()))
	defer co.Close()
	_, err := co.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
	if !errors.Is(err, server.ErrNoWorkers) {
		t.Fatalf("Dispatch with empty registry: %v, want ErrNoWorkers", err)
	}
}

func TestDispatchClaimRoundTrip(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	co.reg.register(Register{ID: "w1", Addr: "http://w1", Capacity: 2})

	type res struct {
		b   []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		b, err := co.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
		done <- res{b, err}
	}()

	// The worker pulls the claim over the real HTTP path and reports.
	var g ClaimGrant
	waitFor(t, 10*time.Second, func() bool {
		var ok bool
		g, ok = claimOnce(t, ts.URL, "w1", 50)
		return ok
	}, "claim never granted")
	if g.Key != testKey || g.Attempt != 1 {
		t.Fatalf("grant = %+v", g)
	}
	if !reportClaim(t, ts.URL, ClaimReport{Worker: "w1", Key: testKey, Attempt: 1, State: ClaimDone, Result: []byte("CLAIMED-BYTES")}) {
		t.Fatal("report rejected")
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("Dispatch: %v", r.err)
	}
	if string(r.b) != "CLAIMED-BYTES" {
		t.Fatalf("Dispatch returned %q", r.b)
	}
	st := co.Stats()
	if st.ClaimsGranted != 1 || st.ClaimsCompleted != 1 || st.LeaseExpirations != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The claim table view shows the settled entry.
	body, _ := getBody(t, ts.URL+"/cluster/claims")
	if !strings.Contains(body, `"state":"done"`) {
		t.Fatalf("claim view missing settled entry: %s", body)
	}
}

func TestDispatchDeterministicFailurePropagates(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	co.reg.register(Register{ID: "w1", Addr: "http://w1", Capacity: 2})

	errc := make(chan error, 1)
	go func() {
		_, err := co.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
		errc <- err
	}()
	waitFor(t, 10*time.Second, func() bool {
		_, ok := claimOnce(t, ts.URL, "w1", 50)
		return ok
	}, "claim never granted")
	reportClaim(t, ts.URL, ClaimReport{Worker: "w1", Key: testKey, Attempt: 1, State: ClaimFailed, Error: "solver diverged"})

	err := <-errc
	if err == nil || !strings.Contains(err.Error(), "solver diverged") {
		t.Fatalf("Dispatch err = %v, want the job's own failure", err)
	}
	if st := co.Stats(); st.ClaimsFailed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDispatchHedgeWins(t *testing.T) {
	cfg := fastCfg(nil) // real clock: the hedge timer and lease run on it
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.LeaseDuration = time.Hour // the straggler's lease never expires
	co := NewCoordinator(cfg)
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	co.reg.register(Register{ID: "a", Addr: "http://a", Capacity: 2})
	co.reg.register(Register{ID: "b", Addr: "http://b", Capacity: 2})

	type res struct {
		b   []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		b, err := co.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
		done <- res{b, err}
	}()

	// Worker a claims first and stalls forever.
	waitFor(t, 10*time.Second, func() bool {
		_, ok := claimOnce(t, ts.URL, "a", 50)
		return ok
	}, "primary claim never granted")

	// Past HedgeAfter the claim opens to worker b.
	var hedge ClaimGrant
	waitFor(t, 10*time.Second, func() bool {
		var ok bool
		hedge, ok = claimOnce(t, ts.URL, "b", 50)
		return ok
	}, "hedge claim never opened")
	if hedge.Attempt != 2 {
		t.Fatalf("hedge grant = %+v", hedge)
	}
	if !reportClaim(t, ts.URL, ClaimReport{Worker: "b", Key: testKey, Attempt: hedge.Attempt, State: ClaimDone, Result: []byte("HEDGE-WON")}) {
		t.Fatal("hedge report rejected")
	}

	r := <-done
	if r.err != nil || string(r.b) != "HEDGE-WON" {
		t.Fatalf("hedged dispatch = %q, %v", r.b, r.err)
	}
	st := co.Stats()
	if st.HedgesStarted != 1 || st.HedgesWon != 1 || st.ClaimContention != 1 {
		t.Fatalf("hedge counters: %+v", st)
	}

	// The straggler's late, byte-identical report is a duplicate.
	if reportClaim(t, ts.URL, ClaimReport{Worker: "a", Key: testKey, Attempt: 1, State: ClaimDone, Result: []byte("HEDGE-WON")}) {
		t.Fatal("straggler's duplicate report accepted")
	}
	if st := co.Stats(); st.ClaimsDuplicate != 1 {
		t.Fatalf("duplicate not counted: %+v", st)
	}
}

// TestClaimLongPollWakes: a parked long-poll is woken by new work
// instead of sleeping out its full window.
func TestClaimLongPollWakes(t *testing.T) {
	cfg := fastCfg(nil)
	cfg.ClaimWait = 30 * time.Second // far past the test timeout
	co := NewCoordinator(cfg)
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	start := time.Now()
	got := make(chan ClaimGrant, 1)
	go func() {
		if g, ok := claimOnce(t, ts.URL, "w1", 30_000); ok {
			got <- g
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	co.table.Enqueue(testKey, "run/CG", "default", 0, nil)

	select {
	case g := <-got:
		if g.Key != testKey {
			t.Fatalf("woken claim grant = %+v", g)
		}
		if since := time.Since(start); since > 5*time.Second {
			t.Fatalf("long-poll woke after %s; enqueue did not wake it", since)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked long-poll never woke on enqueue")
	}
}

// TestClaimerVersionSkew: a claimer whose spec hash disagrees with the
// grant reports a deterministic failure instead of running.
func TestClaimerVersionSkew(t *testing.T) {
	co := NewCoordinator(fastCfg(nil))
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	co.reg.register(Register{ID: "w1", Addr: "http://w1", Capacity: 1})

	c := StartClaimer(ClaimerConfig{
		Coordinators: []string{ts.URL},
		ID:           "w1",
		PollWait:     50 * time.Millisecond,
		KeyFor:       func([]byte) (string, error) { return strings.Repeat("00", 32), nil },
		Run: func(context.Context, []byte) ([]byte, error) {
			t.Error("skewed claim must not run")
			return nil, nil
		},
	})
	defer c.Stop()

	_, err := co.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("Dispatch err = %v, want version-skew failure", err)
	}
}

// coordinatorServer wires a Coordinator into a real slipd server the way
// cmd/slipd does: cluster API and client API on one mux, results
// attached so settled claims land in the coordinator's cache.
func coordinatorServer(t *testing.T, cfg Config) (*Coordinator, *server.Server, *httptest.Server) {
	t.Helper()
	co := NewCoordinator(cfg)
	srv := server.New(server.Config{Cluster: co})
	co.AttachResults(srv)
	mux := http.NewServeMux()
	mux.Handle("/cluster/", co.Handler())
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		co.Close()
	})
	return co, srv, ts
}

// startWorker builds a real slipd worker the way cmd/slipd does: a
// plain server, a membership agent per coordinator, and a claimer that
// executes granted specs through the normal submission machinery.
func startWorker(t *testing.T, id string, coURLs []string) *server.Server {
	t.Helper()
	srv := server.New(server.Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	for _, u := range coURLs {
		a, err := StartAgent(AgentConfig{
			Coordinator: u,
			ID:          id,
			Advertise:   "http://" + id + ".invalid",
			Capacity:    2,
			Load:        srv.Load,
			Interval:    25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartAgent: %v", err)
		}
		t.Cleanup(a.Stop)
	}
	c := StartClaimer(ClaimerConfig{
		Coordinators: coURLs,
		ID:           id,
		Slots:        2,
		PollWait:     100 * time.Millisecond,
		KeyFor:       srv.CacheKeyFor,
		Run: func(ctx context.Context, spec []byte) ([]byte, error) {
			view, _, err := srv.SubmitJSON(spec)
			if err != nil {
				return nil, err
			}
			return srv.Await(ctx, view.ID)
		},
	})
	t.Cleanup(c.Stop)
	return srv
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b), resp.StatusCode
}

// referenceRun executes a spec on a plain in-process server and returns
// the bytes a fleet must reproduce exactly.
func referenceRun(t *testing.T, spec string) string {
	t.Helper()
	srv := server.New(server.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	var env struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var result string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, ts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			result = b
			return true
		}
		return false
	}, "reference job never finished")
	return result
}

func TestFleetEndToEnd(t *testing.T) {
	want := referenceRun(t, runSpecBody)

	cfg := Config{HeartbeatInterval: 25 * time.Millisecond, ClaimWait: 100 * time.Millisecond}
	co, _, cts := coordinatorServer(t, cfg)

	w1 := startWorker(t, "worker-0", []string{cts.URL})
	w2 := startWorker(t, "worker-1", []string{cts.URL})

	// Both workers enroll via the real register/heartbeat HTTP path.
	waitFor(t, 10*time.Second, func() bool {
		return co.Stats().Live == 2
	}, "workers never enrolled")

	// A job submitted to the coordinator is claimed by a worker and
	// returns byte-identical results.
	resp, err := http.Post(cts.URL+"/jobs", "application/json", strings.NewReader(runSpecBody))
	if err != nil {
		t.Fatalf("submit to coordinator: %v", err)
	}
	var env struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var got string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, cts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			got = b
			return true
		}
		return false
	}, "fleet job never finished")
	if got != want {
		t.Fatalf("fleet result differs from local reference:\nfleet: %q\nlocal: %q", got, want)
	}

	// The job actually ran on a worker, not on the coordinator.
	if w1.RunsTotal()+w2.RunsTotal() == 0 {
		t.Fatal("no worker executed anything; the coordinator must have run the job itself")
	}
	// AttachResults landed the settled bytes in the coordinator's own
	// content-addressed cache.
	byKey, status := getBody(t, cts.URL+"/results/"+env.Job.Key)
	if status != http.StatusOK || byKey != want {
		t.Fatalf("coordinator /results/{key}: HTTP %d %q", status, byKey)
	}

	// Fleet observability: metrics gauges and a healthy readyz.
	metrics, _ := getBody(t, cts.URL+"/metrics")
	if !strings.Contains(metrics, `slipd_workers{state="live"} 2`) {
		t.Fatalf("metrics missing live worker gauge:\n%s", metrics)
	}
	if !strings.Contains(metrics, `slipd_claims_total{outcome="done"} 1`) {
		t.Fatalf("metrics missing settled claim counter:\n%s", metrics)
	}
	ready, status := getBody(t, cts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(ready, `"degraded":false`) || !strings.Contains(ready, `"role":"coordinator"`) {
		t.Fatalf("readyz: HTTP %d %s", status, ready)
	}
	workers, _ := getBody(t, cts.URL+"/cluster/workers")
	if !strings.Contains(workers, `"worker-0"`) || !strings.Contains(workers, `"worker-1"`) {
		t.Fatalf("/cluster/workers missing fleet members: %s", workers)
	}
}

func TestCoordinatorDegradedLocalFallback(t *testing.T) {
	want := referenceRun(t, runSpecBody)

	cfg := Config{HeartbeatInterval: 25 * time.Millisecond, ClaimWait: 100 * time.Millisecond}
	_, srv, cts := coordinatorServer(t, cfg)

	// Zero workers: the coordinator must still answer, locally.
	resp, err := http.Post(cts.URL+"/jobs", "application/json", strings.NewReader(runSpecBody))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var env struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var got string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, cts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			got = b
			return true
		}
		return false
	}, "degraded job never finished")
	if got != want {
		t.Fatalf("degraded result differs from reference:\n%q\n%q", got, want)
	}
	if srv.RunsTotal() == 0 {
		t.Fatal("coordinator did not execute locally")
	}

	ready, status := getBody(t, cts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(ready, `"degraded":true`) {
		t.Fatalf("readyz in degraded mode: HTTP %d %s", status, ready)
	}
	metrics, _ := getBody(t, cts.URL+"/metrics")
	if !strings.Contains(metrics, `slipd_workers{state="live"} 0`) {
		t.Fatalf("metrics missing zero live gauge:\n%s", metrics)
	}
	if !strings.Contains(metrics, "slipd_local_fallbacks_total 1") {
		t.Fatalf("metrics missing local fallback counter:\n%s", metrics)
	}
}

// swapHandler lets two peered coordinators learn each other's URL: the
// httptest servers come up first with an empty handler, the real
// handlers are installed once both URLs are known.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// TestTwoCoordinatorFailover is the HA tentpole in miniature: two
// peered coordinators replicate the claim table; when the granting
// coordinator dies mid-claim, the survivor's copy of the lease expires
// and a second worker finishes the job through the survivor alone.
func TestTwoCoordinatorFailover(t *testing.T) {
	hA, hB := &swapHandler{}, &swapHandler{}
	tsA := httptest.NewServer(hA)
	tsB := httptest.NewServer(hB)
	defer tsB.Close()

	mkCfg := func(self, peer string) Config {
		return Config{
			HeartbeatInterval: 25 * time.Millisecond,
			LeaseDuration:     250 * time.Millisecond,
			ClaimWait:         100 * time.Millisecond,
			SelfID:            self,
			Peers:             []string{peer},
		}
	}
	coA := NewCoordinator(mkCfg("co-a", tsB.URL))
	coB := NewCoordinator(mkCfg("co-b", tsA.URL))
	defer coB.Close()
	hA.set(coA.Handler())
	hB.set(coB.Handler())
	coA.reg.register(Register{ID: "w1", Addr: "http://w1", Capacity: 1})
	coB.reg.register(Register{ID: "w2", Addr: "http://w2", Capacity: 1})

	// With both peers up and a live worker each, neither is degraded.
	waitFor(t, 10*time.Second, func() bool {
		return !coA.Stats().Degraded && !coB.Stats().Degraded
	}, "peered coordinators never became healthy")

	// The job enters A's claim table and w1 claims it from A.
	go coA.Dispatch(context.Background(), testKey, "run/CG", "default", 0, server.JobSpec{}, io.Discard)
	waitFor(t, 10*time.Second, func() bool {
		_, ok := claimOnce(t, tsA.URL, "w1", 50)
		return ok
	}, "claim never granted by A")

	// Replication carries the claimed lease to B.
	waitFor(t, 10*time.Second, func() bool {
		for _, v := range coB.table.Views() {
			if v.Key == testKey && v.State == ClaimClaimed && v.Attempt == 1 {
				return true
			}
		}
		return false
	}, "claimed lease never replicated to B")

	// A dies with the lease bookkeeping; w1's report would have gone to
	// A and is lost with it.
	tsA.Close()
	coA.Close()

	// On the survivor, the lease expires and the claim goes back to
	// pending; a second worker claims it from B and settles it there.
	var g ClaimGrant
	waitFor(t, 10*time.Second, func() bool {
		var ok bool
		g, ok = claimOnce(t, tsB.URL, "w2", 50)
		return ok
	}, "survivor never re-granted the orphaned claim")
	if g.Key != testKey || g.Attempt < 2 {
		t.Fatalf("survivor grant = %+v, want attempt ≥ 2", g)
	}
	if !reportClaim(t, tsB.URL, ClaimReport{Worker: "w2", Key: testKey, Attempt: g.Attempt, State: ClaimDone, Result: []byte("SURVIVOR-BYTES")}) {
		t.Fatal("survivor report rejected")
	}

	b, errMsg, ok := coB.table.Result(testKey)
	if !ok || errMsg != "" || string(b) != "SURVIVOR-BYTES" {
		t.Fatalf("survivor result = %q %q %v", b, errMsg, ok)
	}
	st := coB.Stats()
	if st.LeaseExpirations < 1 {
		t.Fatalf("survivor stats: %+v, want at least one lease expiration", st)
	}
	// No claim is left stranded on the survivor.
	for _, v := range coB.table.Views() {
		if v.State != ClaimDone && v.State != ClaimFailed {
			t.Fatalf("stranded claim on survivor: %+v", v)
		}
	}
	// The dead peer shows up as unreachable and degrades the survivor.
	waitFor(t, 10*time.Second, func() bool {
		s := coB.Stats()
		return s.Degraded && len(s.Peers) == 1 && !s.Peers[0].Reachable
	}, "survivor never marked the dead peer unreachable")
}

func TestAgentReRegistersAfterDeadVerdict(t *testing.T) {
	co := NewCoordinator(Config{HeartbeatInterval: 10 * time.Millisecond})
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	a, err := StartAgent(AgentConfig{
		Coordinator: ts.URL,
		ID:          "w1",
		Advertise:   "http://127.0.0.1:1",
		Capacity:    3,
		Load:        func() (int, int) { return 0, 0 },
		Interval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}
	defer a.Stop()

	waitFor(t, 5*time.Second, func() bool { return co.Stats().Live == 1 }, "agent never registered")

	// The coordinator declares the worker dead (as after a long GC pause
	// or partition); the next heartbeat ack sends the agent back to
	// register, and the fleet heals with a fresh live handle.
	co.reg.mu.Lock()
	old := co.reg.workers["w1"]
	old.state = WorkerDead
	co.reg.mu.Unlock()
	waitFor(t, 5*time.Second, func() bool {
		co.reg.mu.Lock()
		w := co.reg.workers["w1"]
		healed := w != old && w.state == WorkerLive
		co.reg.mu.Unlock()
		return healed
	}, "agent never re-registered after dead verdict")
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

const runSpecBody = `{"kind":"run","kernel":"CG","nodes":4}`

// fastCfg keeps dispatch tests snappy and deterministic: the background
// sweep ticker is parked at an hour so tests drive sweeps (and the fake
// clock) by hand.
func fastCfg(clk *fakeClock) Config {
	cfg := Config{
		HeartbeatInterval: time.Hour,
		PollInterval:      5 * time.Millisecond,
		DispatchRetries:   1,
	}
	if clk != nil {
		cfg.Now = clk.now
	}
	return cfg
}

// stubEnvelope is a minimal POST /cluster/dispatch response.
func stubEnvelope(id, state string) string {
	return fmt.Sprintf(`{"job":{"id":%q,"state":%q,"key":%q}}`, id, state, testKey)
}

// stubJob is a minimal GET /jobs/{id} response.
func stubJob(id, state, errMsg string) string {
	return fmt.Sprintf(`{"id":%q,"state":%q,"error":%q}`, id, state, errMsg)
}

// stubWorker builds an httptest worker whose dispatch accepts, whose job
// poll answers state, and whose result serves bytes. dispatched (if
// non-nil) is closed on the first dispatch.
func stubWorker(t *testing.T, state, errMsg, result string, dispatched chan struct{}) *httptest.Server {
	t.Helper()
	var once atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/cluster/dispatch":
			if dispatched != nil && once.CompareAndSwap(false, true) {
				close(dispatched)
			}
			w.WriteHeader(http.StatusCreated)
			io.WriteString(w, stubEnvelope("job-1", "queued"))
		case r.Method == http.MethodGet && r.URL.Path == "/jobs/job-1":
			io.WriteString(w, stubJob("job-1", state, errMsg))
		case r.Method == http.MethodGet && r.URL.Path == "/jobs/job-1/result":
			io.WriteString(w, result)
		case r.Method == http.MethodDelete && r.URL.Path == "/jobs/job-1":
			io.WriteString(w, `{}`)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestDispatchHappyPath(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()

	ts := stubWorker(t, "done", "", "RESULT-BYTES", nil)
	co.reg.register(Register{ID: "w1", Addr: ts.URL, Capacity: 2})

	b, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(b) != "RESULT-BYTES" {
		t.Fatalf("Dispatch returned %q", b)
	}
	st := co.Stats()
	if st.Failovers != 0 || st.HedgesStarted != 0 {
		t.Fatalf("unexpected counters: %+v", st)
	}
	if vs := co.reg.views(); vs[0].Assigned != 0 || len(vs[0].Inflight) != 0 {
		t.Fatalf("dispatch not released: %+v", vs[0])
	}
}

func TestDispatchFailoverOnDeadWorker(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()

	dispatched := make(chan struct{})
	hang := stubWorker(t, "running", "", "", dispatched) // never finishes
	good := stubWorker(t, "done", "", "FROM-SURVIVOR", nil)
	// Ids sort "a" < "b", so the tie-break sends the job to the hanging
	// worker first.
	co.reg.register(Register{ID: "a", Addr: hang.URL, Capacity: 2})
	co.reg.register(Register{ID: "b", Addr: good.URL, Capacity: 2})

	type res struct {
		b   []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		b, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
		done <- res{b, err}
	}()

	<-dispatched // the job is in flight on worker a
	// Worker a goes silent past the dead deadline; b keeps beating.
	clk.advance(co.cfg.DeadAfter + time.Second)
	co.reg.heartbeat(Heartbeat{ID: "b", Capacity: 2})
	if died := co.reg.sweep(); len(died) != 1 || died[0] != "a" {
		t.Fatalf("sweep declared dead: %v, want [a]", died)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("Dispatch after failover: %v", r.err)
	}
	if string(r.b) != "FROM-SURVIVOR" {
		t.Fatalf("failover result = %q", r.b)
	}
	st := co.Stats()
	if st.Failovers != 1 || st.Live != 1 || st.Dead != 1 {
		t.Fatalf("stats after failover: %+v", st)
	}
}

func TestDispatchDeterministicFailureDoesNotFailOver(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()

	failing := stubWorker(t, "failed", "solver diverged", "", nil)
	var spareDispatches atomic.Int64
	spare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spareDispatches.Add(1)
		w.WriteHeader(http.StatusCreated)
		io.WriteString(w, stubEnvelope("job-9", "queued"))
	}))
	defer spare.Close()
	co.reg.register(Register{ID: "a", Addr: failing.URL, Capacity: 2})
	co.reg.register(Register{ID: "b", Addr: spare.URL, Capacity: 2})

	_, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "solver diverged") {
		t.Fatalf("Dispatch err = %v, want the job's own failure", err)
	}
	// Deterministic: the same spec fails the same way everywhere, so no
	// copy may be burned on another worker.
	if n := spareDispatches.Load(); n != 0 {
		t.Fatalf("deterministic failure was retried on another worker %d times", n)
	}
	if st := co.Stats(); st.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0", st.Failovers)
	}
}

func TestDispatchVersionSkewIsPermanent(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()

	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, `{"error":"cache key mismatch"}`)
	}))
	defer skewed.Close()
	co.reg.register(Register{ID: "w1", Addr: skewed.URL, Capacity: 2})

	_, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("Dispatch err = %v, want version-skew refusal", err)
	}
}

func TestDispatchNoWorkers(t *testing.T) {
	clk := newFakeClock()
	co := NewCoordinator(fastCfg(clk))
	defer co.Close()
	_, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
	if !errors.Is(err, server.ErrNoWorkers) {
		t.Fatalf("Dispatch with empty registry: %v, want ErrNoWorkers", err)
	}
}

func TestDispatchHedgeWins(t *testing.T) {
	clk := newFakeClock()
	cfg := fastCfg(clk)
	cfg.HedgeAfter = 20 * time.Millisecond
	co := NewCoordinator(cfg)
	defer co.Close()

	straggler := stubWorker(t, "running", "", "", nil) // never finishes
	fast := stubWorker(t, "done", "", "HEDGE-WON", nil)
	co.reg.register(Register{ID: "a", Addr: straggler.URL, Capacity: 2})
	co.reg.register(Register{ID: "b", Addr: fast.URL, Capacity: 2})

	b, err := co.Dispatch(context.Background(), testKey, "run/CG", server.JobSpec{}, io.Discard)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(b) != "HEDGE-WON" {
		t.Fatalf("hedged dispatch returned %q", b)
	}
	st := co.Stats()
	if st.HedgesStarted != 1 || st.HedgesWon != 1 {
		t.Fatalf("hedge counters: %+v", st)
	}
	if st.Failovers != 0 {
		t.Fatalf("hedge counted as failover: %+v", st)
	}
}

func TestWorkerHandlerDispatch(t *testing.T) {
	srv := server.New(server.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(WorkerHandler(srv))
	defer ts.Close()

	key, err := srv.CacheKeyFor([]byte(runSpecBody))
	if err != nil {
		t.Fatalf("CacheKeyFor: %v", err)
	}
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/cluster/dispatch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /cluster/dispatch: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Happy path: admitted through the normal submission machinery.
	status, body := post(`{"key":"` + key + `","label":"run/CG","spec":` + runSpecBody + `}`)
	if status != http.StatusCreated {
		t.Fatalf("dispatch: HTTP %d: %s", status, body)
	}
	var env struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Job.ID == "" {
		t.Fatalf("dispatch envelope: %s (%v)", body, err)
	}
	if env.Job.Key != key {
		t.Fatalf("worker filed the job under %s, coordinator sent %s", env.Job.Key, key)
	}

	// Re-dispatch coalesces (dedup or cache hit, depending on timing).
	if status, _ := post(`{"key":"` + key + `","label":"run/CG","spec":` + runSpecBody + `}`); status != http.StatusOK {
		t.Fatalf("re-dispatch: HTTP %d, want 200", status)
	}

	// Version skew: a well-formed key that isn't what this worker computes.
	status, body = post(`{"key":"` + strings.Repeat("00", 32) + `","label":"run/CG","spec":` + runSpecBody + `}`)
	if status != http.StatusConflict || !strings.Contains(body, "mismatch") {
		t.Fatalf("skewed dispatch: HTTP %d: %s", status, body)
	}

	// Garbage wire message and unknown spec kind are both 400s.
	if status, _ = post(`{"nope":true}`); status != http.StatusBadRequest {
		t.Fatalf("garbage dispatch: HTTP %d", status)
	}
	if status, _ = post(`{"key":"` + key + `","label":"x","spec":{"kind":"no-such-kind"}}`); status != http.StatusBadRequest {
		t.Fatalf("bad spec dispatch: HTTP %d", status)
	}
}

// coordinatorServer wires a Coordinator into a real slipd server the way
// cmd/slipd does: cluster API and client API on one mux.
func coordinatorServer(t *testing.T, cfg Config) (*Coordinator, *server.Server, *httptest.Server) {
	t.Helper()
	co := NewCoordinator(cfg)
	srv := server.New(server.Config{Cluster: co})
	mux := http.NewServeMux()
	mux.Handle("/cluster/", co.Handler())
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		co.Close()
	})
	return co, srv, ts
}

// workerServer builds a real slipd worker: dispatch endpoint plus the
// full client API.
func workerServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{})
	mux := http.NewServeMux()
	mux.Handle("/cluster/dispatch", WorkerHandler(srv))
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b), resp.StatusCode
}

// referenceRun executes a spec on a plain in-process server and returns
// the bytes a fleet must reproduce exactly.
func referenceRun(t *testing.T, spec string) string {
	t.Helper()
	srv := server.New(server.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	var env struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var result string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, ts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			result = b
			return true
		}
		return false
	}, "reference job never finished")
	return result
}

func TestFleetEndToEnd(t *testing.T) {
	want := referenceRun(t, runSpecBody)

	cfg := Config{HeartbeatInterval: 25 * time.Millisecond, PollInterval: 10 * time.Millisecond}
	co, _, cts := coordinatorServer(t, cfg)

	w1, ts1 := workerServer(t)
	w2, ts2 := workerServer(t)
	for i, w := range []struct {
		srv *server.Server
		url string
	}{{w1, ts1.URL}, {w2, ts2.URL}} {
		a, err := StartAgent(AgentConfig{
			Coordinator: cts.URL,
			ID:          fmt.Sprintf("worker-%d", i),
			Advertise:   w.url,
			Capacity:    2,
			Load:        w.srv.Load,
			Interval:    25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartAgent: %v", err)
		}
		t.Cleanup(a.Stop)
	}

	// Both workers enroll via the real register/heartbeat HTTP path.
	waitFor(t, 10*time.Second, func() bool {
		return co.Stats().Live == 2
	}, "workers never enrolled")

	// A job submitted to the coordinator runs on a worker and returns
	// byte-identical results.
	resp, err := http.Post(cts.URL+"/jobs", "application/json", strings.NewReader(runSpecBody))
	if err != nil {
		t.Fatalf("submit to coordinator: %v", err)
	}
	var env struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var got string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, cts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			got = b
			return true
		}
		return false
	}, "fleet job never finished")
	if got != want {
		t.Fatalf("fleet result differs from local reference:\nfleet: %q\nlocal: %q", got, want)
	}

	// The job actually ran on a worker, not on the coordinator.
	if w1.RunsTotal()+w2.RunsTotal() == 0 {
		t.Fatal("no worker executed anything; the coordinator must have run the job itself")
	}

	// Fleet observability: metrics gauges and a healthy readyz.
	metrics, _ := getBody(t, cts.URL+"/metrics")
	if !strings.Contains(metrics, `slipd_workers{state="live"} 2`) {
		t.Fatalf("metrics missing live worker gauge:\n%s", metrics)
	}
	ready, status := getBody(t, cts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(ready, `"degraded":false`) {
		t.Fatalf("readyz: HTTP %d %s", status, ready)
	}
	workers, _ := getBody(t, cts.URL+"/cluster/workers")
	if !strings.Contains(workers, `"worker-0"`) || !strings.Contains(workers, `"worker-1"`) {
		t.Fatalf("/cluster/workers missing fleet members: %s", workers)
	}
}

func TestCoordinatorDegradedLocalFallback(t *testing.T) {
	want := referenceRun(t, runSpecBody)

	cfg := Config{HeartbeatInterval: 25 * time.Millisecond, PollInterval: 10 * time.Millisecond}
	_, srv, cts := coordinatorServer(t, cfg)

	// Zero workers: the coordinator must still answer, locally.
	resp, err := http.Post(cts.URL+"/jobs", "application/json", strings.NewReader(runSpecBody))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var env struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	var got string
	waitFor(t, 60*time.Second, func() bool {
		b, status := getBody(t, cts.URL+"/jobs/"+env.Job.ID+"/result")
		if status == http.StatusOK {
			got = b
			return true
		}
		return false
	}, "degraded job never finished")
	if got != want {
		t.Fatalf("degraded result differs from reference:\n%q\n%q", got, want)
	}
	if srv.RunsTotal() == 0 {
		t.Fatal("coordinator did not execute locally")
	}

	ready, status := getBody(t, cts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(ready, `"degraded":true`) {
		t.Fatalf("readyz in degraded mode: HTTP %d %s", status, ready)
	}
	metrics, _ := getBody(t, cts.URL+"/metrics")
	if !strings.Contains(metrics, `slipd_workers{state="live"} 0`) {
		t.Fatalf("metrics missing zero live gauge:\n%s", metrics)
	}
	if !strings.Contains(metrics, "slipd_local_fallbacks_total 1") {
		t.Fatalf("metrics missing local fallback counter:\n%s", metrics)
	}
}

func TestAgentReRegistersAfterDeadVerdict(t *testing.T) {
	co := NewCoordinator(Config{HeartbeatInterval: 10 * time.Millisecond})
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()

	queued := atomic.Int64{}
	a, err := StartAgent(AgentConfig{
		Coordinator: ts.URL,
		ID:          "w1",
		Advertise:   "http://127.0.0.1:1",
		Capacity:    3,
		Load:        func() (int, int) { return int(queued.Load()), 0 },
		Interval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}
	defer a.Stop()

	waitFor(t, 5*time.Second, func() bool { return co.Stats().Live == 1 }, "agent never registered")

	// Heartbeats carry the live load report.
	queued.Store(2)
	waitFor(t, 5*time.Second, func() bool {
		vs := co.reg.views()
		return len(vs) == 1 && vs[0].Queued == 2
	}, "heartbeat load report never arrived")

	// The coordinator declares the worker dead (as after a long GC pause
	// or partition); the next heartbeat ack sends the agent back to
	// register, and the fleet heals with a fresh handle.
	co.reg.mu.Lock()
	old := co.reg.workers["w1"]
	old.state = WorkerDead
	closeDead(old)
	co.reg.mu.Unlock()
	waitFor(t, 5*time.Second, func() bool {
		co.reg.mu.Lock()
		w := co.reg.workers["w1"]
		healed := w != old && w.state == WorkerLive
		co.reg.mu.Unlock()
		return healed
	}, "agent never re-registered after dead verdict")
}

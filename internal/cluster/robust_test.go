package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Long polls must leave nothing behind: a poll that times out, is
// cancelled mid-wait (client disconnect), or loses a wake race cleans
// up its goroutine and its one deadline timer. Regression test for the
// per-iteration timer churn the long-poll refactor removed.
func TestLongPollLeaksNoGoroutines(t *testing.T) {
	co := NewCoordinator(Config{
		HeartbeatInterval: 50 * time.Millisecond,
		LeaseDuration:     time.Second,
		ClaimWait:         200 * time.Millisecond,
		Logf:              func(string, ...any) {},
	})
	defer co.Close()
	handler := co.Handler()

	poll := func(ctx context.Context, waitMs int) {
		body := fmt.Sprintf(`{"worker":"w1","wait_ms":%d}`, waitMs)
		req := httptest.NewRequest(http.MethodPost, "/cluster/claims", strings.NewReader(body)).WithContext(ctx)
		handler.ServeHTTP(httptest.NewRecorder(), req)
	}
	poll(context.Background(), 1) // warm up lazy runtime state before the baseline
	runtime.GC()
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		cancelled := i%2 == 0
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if cancelled {
				// Client disconnects mid-wait: the r.Context().Done() arm.
				time.AfterFunc(5*time.Millisecond, cancel)
				poll(ctx, 150)
			} else {
				defer cancel()
				poll(ctx, 20) // times out: the timer.C arm
			}
		}()
	}
	wg.Wait()

	// The scheduler needs a beat to retire finished goroutines; poll
	// instead of asserting instantly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: baseline %d, now %d after 60 long-polls\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// A coordinator whose clock runs ahead of the lease holder's must not
// expire a replicated lease that the true holder is still renewing —
// as long as the skew stays under the renewal margin, the refreshed
// expiry deadline always outruns the skewed sweep. Double-granting here
// is how split-brain duplicate work starts.
func TestSkewedPeerHonorsRenewedLease(t *testing.T) {
	const (
		lease = 10 * time.Second
		skew  = 4 * time.Second // < lease - renew cadence: the safe regime
	)
	holderTbl, holderClk := testTable(lease, 5)
	skewClk := newFakeClock()
	skewClk.advance(skew)
	skewTbl := newClaimTable(skewClk.now, lease, 5)

	key := claimKey(7)
	holderDone := holderTbl.Enqueue(key, "run/CG", "default", 0, []byte(`{"kind":"run"}`))
	g, ok := holderTbl.Claim("w1")
	if !ok || g.Attempt != 1 {
		t.Fatalf("grant = %+v ok=%v", g, ok)
	}

	// Holder renews every lease/3 while both clocks advance in step and
	// the claim replicates to the skewed peer each beat.
	step := lease / 3
	for i := 0; i < 12; i++ {
		skewTbl.Merge(holderTbl.Snapshot())
		skewTbl.SweepLeases()
		if _, ok := skewTbl.Claim("w2"); ok {
			t.Fatalf("beat %d: skewed peer double-granted a lease the holder renews", i)
		}
		holderClk.advance(step)
		skewClk.advance(step)
		if !holderTbl.Renew("w1", key, 1) {
			t.Fatalf("beat %d: holder's renew refused", i)
		}
	}
	if ctr := skewTbl.Counters(); ctr.Expirations != 0 {
		t.Fatalf("skewed peer expired %d renewed leases, want 0", ctr.Expirations)
	}

	// The holder settles; the peer adopts exactly one terminal state.
	if !holderTbl.Report("w1", key, 1, ClaimDone, []byte("BYTES"), "") {
		t.Fatal("holder's report rejected")
	}
	<-holderDone
	skewTbl.Merge(holderTbl.Snapshot())
	b, errMsg, ok := skewTbl.Result(key)
	if !ok || errMsg != "" || string(b) != "BYTES" {
		t.Fatalf("skewed peer result = %q %q %v", b, errMsg, ok)
	}
	if ctr := skewTbl.Counters(); ctr.Expirations != 0 {
		t.Fatalf("expirations after settle = %d, want 0", ctr.Expirations)
	}

	// Control: once the holder stops renewing, the skewed peer MUST
	// eventually reclaim — skew tolerance is not lease immortality.
	key2 := claimKey(8)
	holderTbl.Enqueue(key2, "run/CG", "default", 0, []byte(`{"kind":"run"}`))
	if _, ok := holderTbl.Claim("w1"); !ok {
		t.Fatal("second grant refused")
	}
	skewTbl.Merge(holderTbl.Snapshot())
	skewClk.advance(lease + time.Second)
	skewTbl.SweepLeases()
	if _, ok := skewTbl.Claim("w2"); !ok {
		t.Fatal("skewed peer never reclaimed an abandoned lease")
	}
	if ctr := skewTbl.Counters(); ctr.Expirations != 1 {
		t.Fatalf("expirations after abandonment = %d, want 1", ctr.Expirations)
	}
}

// FuzzClaimMerge drives the replication merge with arbitrary record
// batches applied in opposite orders to two tables, then one exchange
// round. Merge is the fleet's only reconciliation primitive and runs
// leader-less, so it must behave as a join: after exchanging snapshots
// the tables agree on every key's state, attempt, and terminal payload
// regardless of delivery order. (Lease metadata — holder, expiry — may
// differ transiently at equal attempts; terminal facts may not.)
func FuzzClaimMerge(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33})
	f.Add([]byte{0x01, 0x42, 0x02, 0x41, 0x03, 0x40})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode two bytes per record, at most 24 records over 4 keys.
		// Done records always carry key-determined bytes: the simulator
		// is deterministic, so equal keys never have conflicting results
		// — merge only has to converge states, not arbitrate payloads.
		states := []string{ClaimPending, ClaimClaimed, ClaimDone, ClaimFailed}
		var recs []ClaimRecord
		for i := 0; i+1 < len(data) && len(recs) < 24; i += 2 {
			key := claimKey(int(data[i]) % 4)
			state := states[int(data[i]>>4)%len(states)]
			r := ClaimRecord{
				Key:     key,
				Label:   "run/CG",
				Spec:    []byte(`{"kind":"run"}`),
				State:   state,
				Attempt: int(data[i+1]) % 6,
			}
			switch state {
			case ClaimClaimed:
				r.ClaimedBy = fmt.Sprintf("w%d", data[i+1]%3)
				r.ExpiresMs = int64(1700000000000 + int(data[i+1])*1000)
			case ClaimDone:
				r.Result = []byte("res-" + key[:8])
			case ClaimFailed:
				r.Error = "diverged"
			}
			recs = append(recs, r)
		}

		clk := newFakeClock()
		a := newClaimTable(clk.now, time.Second, 10)
		b := newClaimTable(clk.now, time.Second, 10)
		for _, r := range recs {
			a.Merge([]ClaimRecord{r})
		}
		for i := len(recs) - 1; i >= 0; i-- {
			b.Merge([]ClaimRecord{recs[i]})
		}
		a.Merge(b.Snapshot())
		b.Merge(a.Snapshot())

		av, bv := a.Views(), b.Views()
		am := map[string]ClaimView{}
		for _, v := range av {
			am[v.Key] = v
		}
		if len(av) != len(bv) {
			t.Fatalf("key sets diverge: %d vs %d entries", len(av), len(bv))
		}
		for _, v := range bv {
			w, ok := am[v.Key]
			if !ok {
				t.Fatalf("key %s only on one side", v.Key[:8])
			}
			if w.State != v.State || w.Attempt != v.Attempt {
				t.Fatalf("key %s diverged after exchange: %s/%d vs %s/%d",
					v.Key[:8], w.State, w.Attempt, v.State, v.Attempt)
			}
			if v.State == ClaimDone || v.State == ClaimFailed {
				ar, aerr, _ := a.Result(v.Key)
				br, berr, _ := b.Result(v.Key)
				if !bytes.Equal(ar, br) || aerr != berr {
					t.Fatalf("key %s terminal payload diverged: %q/%q vs %q/%q",
						v.Key[:8], ar, aerr, br, berr)
				}
			}
		}
	})
}

package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// terminalRetain is how long a settled claim stays in the table before
// the sweep prunes it. Long enough for late duplicate reports and peer
// reconciliation to find the entry; short enough that the table doesn't
// grow without bound.
const terminalRetain = 10 * time.Minute

// ResultSink receives the bytes of a settled claim so they land in the
// coordinator's content-addressed cache. The server implements it.
type ResultSink interface {
	StoreResult(key string, result []byte) error
}

// ResultSource is the optional read side of a ResultSink. The claims
// journal deliberately records terminal states without their payloads
// (results live in the content-addressed store), so a replayed done
// entry comes back byte-less; a sink that can also load results lets
// the table rehydrate those entries at attach time instead of
// replicating empty terminals or re-executing finished work.
type ResultSource interface {
	LoadResult(key string) ([]byte, bool)
}

// claimEntry is one job's lease state. All fields are guarded by the
// table mutex; done is closed exactly once, when the entry settles.
type claimEntry struct {
	key          string
	label        string
	tenant       string // admitting tenant, carried for observability and journals
	priority     int    // scheduling class; Claim serves higher classes first
	spec         json.RawMessage
	state        string // pending | claimed | done | failed
	claimedBy    string
	expires      time.Time
	attempt      int
	hedged       bool // MarkHedgeable called; a second worker may claim
	hedgeAttempt int  // attempt number handed to the hedge, for HedgesWon
	errMsg       string
	result       []byte
	settledAt    time.Time
	done         chan struct{}
}

func (e *claimEntry) terminal() bool {
	return e.state == ClaimDone || e.state == ClaimFailed
}

// ClaimCounters are the table's lifetime counters, exported as the
// slipd_claims_total{outcome} family plus contention and expirations.
type ClaimCounters struct {
	Granted     uint64 // leases handed out (first claims, reclaims, hedges)
	Done        uint64 // claims settled with result bytes
	Failed      uint64 // claims settled with an error
	Duplicate   uint64 // terminal reports discarded because the claim had settled
	Contention  uint64 // hedge grants: a second worker claimed a live lease
	Expirations uint64 // leases that expired and went back to pending
	HedgesWon   uint64 // settles where the hedge's attempt reported first
}

// ClaimView is one entry of GET /cluster/claims.
type ClaimView struct {
	Key       string `json:"key"`
	Label     string `json:"label"`
	Tenant    string `json:"tenant,omitempty"`
	Priority  string `json:"priority,omitempty"`
	State     string `json:"state"`
	ClaimedBy string `json:"claimed_by,omitempty"`
	Attempt   int    `json:"claim_attempt"`
	ExpiresMs int64  `json:"claim_expires_at,omitempty"`
}

// ClaimTable is the shared dispatch state: jobs enter pending, workers
// claim them under a lease, and terminal reports settle them. It is the
// only coordination primitive on the dispatch path — liveness is
// enforced purely by lease expiry, never by the failure detector.
type ClaimTable struct {
	mu      sync.Mutex
	entries map[string]*claimEntry
	order   []string // FIFO claim order; prune keeps it in step with entries

	now         func() time.Time
	lease       time.Duration
	maxAttempts int

	notify chan struct{} // closed+replaced to wake long-polling claimers

	// journal persists every state change (nil in tests that don't care);
	// sink stores settled bytes; onChange kicks replication. All three
	// are called outside the mutex.
	journal  func(rec store.Record, sync bool)
	sink     ResultSink
	onChange func()

	// disableTerminalWins is the simulation harness's mutation hook: it
	// switches off the incoming-terminal-settles rule in Merge so the
	// invariant checker can be shown to catch a broken merge. Never set
	// outside tests.
	disableTerminalWins bool

	ctr ClaimCounters
}

func newClaimTable(now func() time.Time, lease time.Duration, maxAttempts int) *ClaimTable {
	return &ClaimTable{
		entries:     make(map[string]*claimEntry),
		now:         now,
		lease:       lease,
		maxAttempts: maxAttempts,
		notify:      make(chan struct{}),
	}
}

// wait returns a channel that is closed the next time the table gains
// claimable work. Callers select on it alongside their own deadline.
func (t *ClaimTable) wait() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notify
}

// wakeLocked wakes every parked claimer. Callers hold t.mu.
func (t *ClaimTable) wakeLocked() {
	close(t.notify)
	t.notify = make(chan struct{})
}

// changed runs the post-mutation hooks outside the mutex.
func (t *ClaimTable) changed(recs []store.Record, sync bool) {
	if t.journal != nil {
		for _, r := range recs {
			t.journal(r, sync)
		}
	}
	if t.onChange != nil {
		t.onChange()
	}
}

func (e *claimEntry) record() store.Record {
	r := store.Record{
		Job:          "claim-" + e.key[:16],
		Key:          e.key,
		Label:        e.label,
		Tenant:       e.tenant,
		Priority:     server.PriorityName(e.priority),
		State:        e.state,
		Error:        e.errMsg,
		Spec:         e.spec,
		ClaimedBy:    e.claimedBy,
		ClaimAttempt: e.attempt,
	}
	if !e.expires.IsZero() && e.state == ClaimClaimed {
		r.ClaimExpiresAt = e.expires.UnixMilli()
	}
	return r
}

// Enqueue adds a job to the table (or joins the existing entry) and
// returns a channel closed when the claim settles. Terminal entries:
// done-with-bytes returns an already-closed channel (the caller reads
// the result immediately); done-without-bytes or failed entries are
// resurrected to pending — the bytes are gone or the failure may have
// been transient across a restart, and re-execution is free.
func (t *ClaimTable) Enqueue(key, label, tenant string, priority int, spec json.RawMessage) <-chan struct{} {
	t.mu.Lock()
	e, ok := t.entries[key]
	if ok {
		// Joiners refresh admission identity: a later, higher-priority
		// submission of the same key pulls the claim forward.
		if tenant != "" {
			e.tenant = tenant
		}
		if priority > e.priority {
			e.priority = priority
		}
		if e.state == ClaimDone && len(e.result) > 0 {
			ch := e.done
			t.mu.Unlock()
			return ch
		}
		if e.terminal() {
			e.state = ClaimPending
			e.claimedBy = ""
			e.expires = time.Time{}
			e.attempt = 0
			e.hedged = false
			e.hedgeAttempt = 0
			e.errMsg = ""
			e.result = nil
			e.settledAt = time.Time{}
			e.done = make(chan struct{})
			ch := e.done
			rec := e.record()
			t.wakeLocked()
			t.mu.Unlock()
			t.changed([]store.Record{rec}, false)
			return ch
		}
		// pending or claimed: join the in-flight entry.
		ch := e.done
		t.mu.Unlock()
		return ch
	}
	e = &claimEntry{
		key:      key,
		label:    label,
		tenant:   tenant,
		priority: priority,
		spec:     spec,
		state:    ClaimPending,
		done:     make(chan struct{}),
	}
	t.entries[key] = e
	t.order = append(t.order, key)
	ch := e.done
	rec := e.record()
	t.wakeLocked()
	t.mu.Unlock()
	t.changed([]store.Record{rec}, false)
	return ch
}

// Claim hands worker the best claimable job, if any: a pending entry,
// a claimed entry whose lease expired, or a hedgeable entry held by a
// different worker. Higher priority classes are served first; within a
// class the oldest claimable entry wins, so fleet dispatch preserves
// the coordinator's fair-scheduler ordering. The grant bumps the
// attempt; a lease that would exceed the attempt budget settles the
// entry as failed instead (hedge grants just skip — the primary lease
// is still live).
func (t *ClaimTable) Claim(worker string) (ClaimGrant, bool) {
	now := t.now()
	t.mu.Lock()
	var recs []store.Record
	var failedAny bool
	var best *claimEntry
	bestHedge, bestExpired := false, false
	for _, key := range t.order {
		e := t.entries[key]
		if e == nil || e.terminal() {
			continue
		}
		hedge, expired := false, false
		switch {
		case e.state == ClaimPending:
		case e.state == ClaimClaimed && now.After(e.expires):
			expired = true
		case e.state == ClaimClaimed && e.hedged && e.claimedBy != worker:
			hedge = true
		default:
			continue
		}
		if e.attempt+1 > t.maxAttempts {
			if hedge {
				continue // primary lease still live; just don't hedge
			}
			if expired {
				t.ctr.Expirations++
			}
			e.state = ClaimFailed
			e.errMsg = fmt.Sprintf("claim attempts exhausted (%d)", e.attempt)
			e.claimedBy = ""
			e.expires = time.Time{}
			e.settledAt = now
			t.ctr.Failed++
			close(e.done)
			recs = append(recs, e.record())
			failedAny = true
			continue
		}
		if best == nil || e.priority > best.priority {
			best, bestHedge, bestExpired = e, hedge, expired
		}
	}
	if best == nil {
		t.mu.Unlock()
		if len(recs) > 0 {
			t.changed(recs, failedAny)
		}
		return ClaimGrant{}, false
	}
	e := best
	if bestExpired {
		t.ctr.Expirations++
	}
	e.attempt++
	e.state = ClaimClaimed
	e.claimedBy = worker
	e.expires = now.Add(t.lease)
	if bestHedge {
		e.hedged = false
		e.hedgeAttempt = e.attempt
		t.ctr.Contention++
	}
	t.ctr.Granted++
	grant := ClaimGrant{
		Key:      e.key,
		Label:    e.label,
		Tenant:   e.tenant,
		Priority: e.priority,
		Spec:     e.spec,
		Attempt:  e.attempt,
		LeaseMs:  t.lease.Milliseconds(),
	}
	recs = append(recs, e.record())
	t.mu.Unlock()
	t.changed(recs, failedAny)
	return grant, true
}

// Renew extends worker's lease on key. It succeeds only while the lease
// is still this worker's at this attempt — a superseded claimant learns
// its lease is gone and stops renewing.
func (t *ClaimTable) Renew(worker, key string, attempt int) bool {
	now := t.now()
	t.mu.Lock()
	e := t.entries[key]
	ok := e != nil && e.state == ClaimClaimed && e.claimedBy == worker && e.attempt == attempt
	var rec store.Record
	if ok {
		e.expires = now.Add(t.lease)
		rec = e.record()
	}
	t.mu.Unlock()
	if ok {
		t.changed([]store.Record{rec}, false)
	}
	return ok
}

// Report settles key with a terminal state. First terminal report wins
// regardless of attempt — determinism makes every copy's bytes
// identical, so a "late" report from a superseded lease is as good as
// the current one. Returns false for duplicates (already settled).
func (t *ClaimTable) Report(worker, key string, attempt int, state string, result []byte, errMsg string) bool {
	t.mu.Lock()
	e := t.entries[key]
	if e == nil || e.terminal() {
		t.ctr.Duplicate++
		t.mu.Unlock()
		return false
	}
	t.settleLocked(e, state, result, errMsg, true)
	if e.hedgeAttempt != 0 && attempt == e.hedgeAttempt {
		t.ctr.HedgesWon++
	}
	rec := e.record()
	res := e.result
	t.mu.Unlock()
	if state == ClaimDone && t.sink != nil && len(res) > 0 {
		_ = t.sink.StoreResult(key, res) // sink logs its own failures; bytes also live in the reporter's cache
	}
	t.changed([]store.Record{rec}, true)
	return true
}

// settleLocked moves e to a terminal state and wakes waiters. countLocal
// bumps the Done/Failed counters — true for reports settled here, false
// for states adopted from a peer (the peer already counted them).
// Callers hold t.mu and journal the entry afterwards.
func (t *ClaimTable) settleLocked(e *claimEntry, state string, result []byte, errMsg string, countLocal bool) {
	e.state = state
	e.errMsg = errMsg
	e.result = result
	e.claimedBy = ""
	e.expires = time.Time{}
	e.settledAt = t.now()
	if countLocal {
		if state == ClaimDone {
			t.ctr.Done++
		} else {
			t.ctr.Failed++
		}
	}
	close(e.done)
}

// Result reads the terminal outcome of key. ok is false while the claim
// is still in flight (or after the entry was pruned).
func (t *ClaimTable) Result(key string) (result []byte, errMsg string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil || !e.terminal() {
		return nil, "", false
	}
	return e.result, e.errMsg, true
}

// MarkHedgeable flags key so a second worker may claim it concurrently.
// The coordinator calls this when a claim is outstanding past the
// per-label hedge threshold.
func (t *ClaimTable) MarkHedgeable(key string) bool {
	t.mu.Lock()
	e := t.entries[key]
	ok := e != nil && e.state == ClaimClaimed && !e.hedged
	if ok {
		e.hedged = true
		t.wakeLocked()
	}
	t.mu.Unlock()
	return ok
}

// SweepLeases re-pends every expired lease (so parked claimers wake and
// reclaim it) and prunes terminal entries older than terminalRetain.
// Returns how many leases expired this sweep.
func (t *ClaimTable) SweepLeases() int {
	now := t.now()
	t.mu.Lock()
	var recs []store.Record
	expired := 0
	kept := t.order[:0]
	for _, key := range t.order {
		e := t.entries[key]
		if e == nil {
			continue
		}
		if e.terminal() && now.Sub(e.settledAt) > terminalRetain {
			delete(t.entries, key)
			continue
		}
		kept = append(kept, key)
		if e.state == ClaimClaimed && now.After(e.expires) {
			e.state = ClaimPending
			e.claimedBy = ""
			e.expires = time.Time{}
			e.hedged = false
			t.ctr.Expirations++
			expired++
			recs = append(recs, e.record())
		}
	}
	t.order = kept
	if expired > 0 {
		t.wakeLocked()
	}
	t.mu.Unlock()
	if len(recs) > 0 {
		t.changed(recs, false)
	}
	return expired
}

// Snapshot exports the full table for replication. Result bytes ride
// along on done entries so a surviving peer can serve them.
func (t *ClaimTable) Snapshot() []ClaimRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ClaimRecord, 0, len(t.order))
	for _, key := range t.order {
		e := t.entries[key]
		if e == nil {
			continue
		}
		r := ClaimRecord{
			Key:       e.key,
			Label:     e.label,
			Tenant:    e.tenant,
			Priority:  e.priority,
			Spec:      e.spec,
			State:     e.state,
			ClaimedBy: e.claimedBy,
			Attempt:   e.attempt,
			Error:     e.errMsg,
			Result:    e.result,
		}
		if e.state == ClaimClaimed {
			r.ExpiresMs = e.expires.UnixMilli()
		}
		out = append(out, r)
	}
	return out
}

// Merge reconciles a peer's records into the table. Precedence, per
// entry: a local terminal state wins (except that a local done entry
// missing its bytes adopts the peer's bytes, and a local failed entry
// yields to a peer's done-with-bytes — "failed" means the budget ran
// out here, but some copy of the work completed, so both sides converge
// on the success); an incoming terminal state settles the local entry;
// among non-terminal states the higher attempt wins, and at equal
// attempts claimed beats pending. The rules commute, so two
// coordinators merging each other's snapshots converge without a
// leader.
func (t *ClaimTable) Merge(records []ClaimRecord) {
	type sinkPut struct {
		key string
		val []byte
	}
	t.mu.Lock()
	var recs []store.Record
	var stores []sinkPut // applied outside mu
	terminalAdopted := false
	for _, in := range records {
		e, ok := t.entries[in.Key]
		if !ok {
			e = &claimEntry{
				key:      in.Key,
				label:    in.Label,
				tenant:   in.Tenant,
				priority: in.Priority,
				spec:     in.Spec,
				state:    ClaimPending,
				done:     make(chan struct{}),
			}
			t.entries[in.Key] = e
			t.order = append(t.order, in.Key)
		}
		if len(e.spec) == 0 && len(in.Spec) > 0 {
			e.spec = in.Spec
		}
		if e.tenant == "" {
			e.tenant = in.Tenant
		}
		if in.Priority > e.priority {
			// Priority converges on the max both peers have seen, the same
			// commutative rule joiners apply locally.
			e.priority = in.Priority
		}
		inTerminal := in.State == ClaimDone || in.State == ClaimFailed
		switch {
		case e.terminal():
			if inTerminal && in.Attempt > e.attempt {
				// Converge terminal bookkeeping: both sides settle on the
				// highest attempt that reported, whatever the arrival order.
				e.attempt = in.Attempt
			}
			if e.state == ClaimDone && len(e.result) == 0 && in.State == ClaimDone && len(in.Result) > 0 {
				e.result = in.Result
				stores = append(stores, sinkPut{in.Key, in.Result})
			}
			if e.state == ClaimFailed && in.State == ClaimDone && len(in.Result) > 0 {
				// done-with-bytes beats failed in both merge directions:
				// without this, A=failed/B=done would disagree forever.
				// e.done is already closed; adopt in place, don't re-settle.
				e.state = ClaimDone
				e.errMsg = ""
				e.result = in.Result
				if in.Attempt > e.attempt {
					e.attempt = in.Attempt
				}
				recs = append(recs, e.record())
				stores = append(stores, sinkPut{in.Key, in.Result})
			}
		case inTerminal:
			if t.disableTerminalWins {
				break // mutation hook: pretend the peer's terminal never arrived
			}
			if in.State == ClaimDone && len(in.Result) == 0 {
				// A done record whose bytes didn't survive its origin's
				// restart. Settling on it would hand dispatch waiters an
				// empty result and store nothing; leave the entry live —
				// the bytes arrive on a later snapshot once the origin
				// rehydrates, or a worker re-runs the job (determinism
				// makes the re-execution free).
				break
			}
			t.settleLocked(e, in.State, in.Result, in.Error, false)
			if in.Attempt > e.attempt {
				e.attempt = in.Attempt
			}
			terminalAdopted = true
			recs = append(recs, e.record())
			if in.State == ClaimDone && len(in.Result) > 0 {
				stores = append(stores, sinkPut{in.Key, in.Result})
			}
		case in.Attempt > e.attempt || (in.Attempt == e.attempt && in.State == ClaimClaimed && e.state == ClaimPending):
			e.attempt = in.Attempt
			e.state = in.State
			e.claimedBy = in.ClaimedBy
			e.hedged = false
			if in.State == ClaimClaimed && in.ExpiresMs > 0 {
				e.expires = time.UnixMilli(in.ExpiresMs)
			} else {
				e.expires = time.Time{}
			}
			recs = append(recs, e.record())
		case in.Attempt == e.attempt && in.State == ClaimClaimed && e.state == ClaimClaimed:
			// Same lease seen from both sides: renewals push the holder's
			// expiry forward, and without carrying that refresh across,
			// every peer reclaims any job that outlives one lease — even
			// with perfectly synchronized clocks — and a clock-skewed peer
			// reclaims even sooner. Taking the max keeps the rule
			// commutative and only ever delays reclaim.
			if in.ExpiresMs > 0 {
				if exp := time.UnixMilli(in.ExpiresMs); exp.After(e.expires) {
					e.expires = exp
					recs = append(recs, e.record())
				}
			}
		}
	}
	if terminalAdopted {
		t.wakeLocked()
	}
	t.mu.Unlock()
	for _, p := range stores {
		if t.sink != nil {
			_ = t.sink.StoreResult(p.key, p.val)
		}
	}
	if len(recs) > 0 {
		t.changed(recs, terminalAdopted)
	}
}

// seed restores replayed journal records into the table at startup.
// Claimed entries come back claimed with their persisted lease; if the
// claimant died with the coordinator, the first sweep after the lease
// deadline reclaims them.
func (t *ClaimTable) seed(records []store.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range records {
		if r.Key == "" || !validClaimState(r.State) {
			continue
		}
		if _, ok := t.entries[r.Key]; ok {
			continue
		}
		e := &claimEntry{
			key:       r.Key,
			label:     r.Label,
			tenant:    r.Tenant,
			priority:  server.PriorityValue(r.Priority),
			spec:      r.Spec,
			state:     r.State,
			claimedBy: r.ClaimedBy,
			attempt:   r.ClaimAttempt,
			errMsg:    r.Error,
			done:      make(chan struct{}),
		}
		if r.State == ClaimClaimed && r.ClaimExpiresAt > 0 {
			e.expires = time.UnixMilli(r.ClaimExpiresAt)
		}
		if e.terminal() {
			e.settledAt = t.now()
			close(e.done)
		}
		t.entries[r.Key] = e
		t.order = append(t.order, r.Key)
	}
}

// rehydrate refills byte-less done entries (journal replay restores the
// state but not the payload) from the attached store, so this
// coordinator replicates real terminals instead of empty ones and
// dispatch waiters joining the entry get bytes, not a re-execution.
func (t *ClaimTable) rehydrate(src ResultSource) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.state == ClaimDone && len(e.result) == 0 {
			if b, ok := src.LoadResult(e.key); ok && len(b) > 0 {
				e.result = b
			}
		}
	}
}

// Views lists the table for GET /cluster/claims, oldest first.
func (t *ClaimTable) Views() []ClaimView {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ClaimView, 0, len(t.order))
	for _, key := range t.order {
		e := t.entries[key]
		if e == nil {
			continue
		}
		v := ClaimView{
			Key:       e.key,
			Label:     e.label,
			Tenant:    e.tenant,
			Priority:  server.PriorityName(e.priority),
			State:     e.state,
			ClaimedBy: e.claimedBy,
			Attempt:   e.attempt,
		}
		if e.state == ClaimClaimed {
			v.ExpiresMs = e.expires.UnixMilli()
		}
		out = append(out, v)
	}
	return out
}

// Counters returns a copy of the lifetime counters.
func (t *ClaimTable) Counters() ClaimCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ctr
}

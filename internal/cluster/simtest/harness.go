// Package simtest is a FoundationDB-style in-process cluster simulation
// harness: N coordinators and M workers run the real cluster code —
// real ClaimTables, real replication, real claimers — over the seeded
// netchaos fabric, while a scripted client submits jobs and an
// invariant checker watches the claim tables. Crashes, restarts,
// partitions, message loss, duplication and clock skew all derive from
// one seed, so any failing schedule replays exactly from its seed
// alone.
package simtest

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/netchaos"
	"repro/internal/faults/splitmix"
	"repro/internal/server"
	"repro/internal/store"
)

// Harness timing constants. The cluster's real defaults are seconds;
// the harness compresses them ~100× so a whole schedule — including
// lease expiries and failure-detector verdicts — fits in well under a
// second of wall clock.
const (
	simHeartbeat   = 10 * time.Millisecond
	simSuspect     = 60 * time.Millisecond
	simDead        = 150 * time.Millisecond
	simLease       = 120 * time.Millisecond
	simClaimWait   = 25 * time.Millisecond
	simMaxAttempts = 50 // generous: budget exhaustion must never be a legitimate outcome in a schedule
)

// Options configures one simulated schedule.
type Options struct {
	// Seed drives everything: the chaos plan, the schedule (crash times,
	// partitions, submission order) and per-node clock skew.
	Seed uint64
	// Coordinators and Workers size the cluster (defaults 3 and 3).
	Coordinators int
	Workers      int
	// Jobs is how many distinct jobs the scripted client submits
	// (default 10).
	Jobs int
	// Chaos is the network fault mix. The zero value takes DefaultChaos;
	// its Seed field is always overridden by Seed above. Set NoChaos for
	// a quiet network (the baseline schedules).
	Chaos   netchaos.Spec
	NoChaos bool
	// Horizon is the scripted portion's duration (default 400ms); after
	// it the harness heals, quiesces, restarts everything crashed, and
	// waits up to SettleTimeout (default 15s) for convergence.
	Horizon       time.Duration
	SettleTimeout time.Duration
	// PinToFirst pins workers and the client to coordinator 0, so every
	// other coordinator learns claim state through replication alone.
	// Converging under this topology is the pure-replication test.
	PinToFirst bool
	// MutateMerge runs the deliberately-broken build: PinToFirst plus
	// every other coordinator's merge drops incoming terminal records.
	// The invariant checker must flag the divergence — this is how the
	// checker itself is tested.
	MutateMerge bool
	// Logf receives harness progress lines (default: discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Coordinators <= 0 {
		o.Coordinators = 3
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Jobs <= 0 {
		o.Jobs = 10
	}
	if o.Horizon <= 0 {
		o.Horizon = 400 * time.Millisecond
	}
	if o.SettleTimeout <= 0 {
		o.SettleTimeout = 15 * time.Second
	}
	if !o.NoChaos && !o.Chaos.Active() && o.Chaos.SkewMax == 0 {
		o.Chaos = DefaultChaos()
	}
	if o.NoChaos {
		o.Chaos = netchaos.Spec{}
	}
	o.Chaos.Seed = o.Seed
	if o.MutateMerge {
		o.PinToFirst = true
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// DefaultChaos is the fault mix sim schedules run under unless
// overridden: light loss and duplication, moderate delay, and clock
// skew safely below the lease/renewal margin.
func DefaultChaos() netchaos.Spec {
	return netchaos.Spec{
		Drop:     0.05,
		Delay:    0.15,
		DelayMin: time.Millisecond,
		DelayMax: 8 * time.Millisecond,
		Dup:      0.03,
		Reorder:  0.03,
		SkewMax:  20 * time.Millisecond,
	}
}

// Report is one schedule's outcome.
type Report struct {
	Seed       uint64
	Violations []string
	Submitted  int
	// ChaosInjected counts manufactured network faults; Granted,
	// Expirations, Duplicates and Hedges aggregate the coordinators'
	// claim counters — evidence the schedule actually exercised the
	// recovery machinery.
	ChaosInjected uint64
	Granted       uint64
	Expirations   uint64
	Duplicates    uint64
	Hedges        uint64
}

// OK reports whether every invariant held.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// keyOf is the harness's cache-key function: hex sha256 of the
// normalized spec JSON, matching the coordinator grant's key so the
// claimer's version-skew check passes.
func keyOf(specJSON []byte) (string, error) {
	sum := sha256.Sum256(specJSON)
	return hex.EncodeToString(sum[:]), nil
}

// render is the deterministic "simulation": the result bytes any
// worker, anywhere, must produce for a spec. It doubles as the oracle —
// the chaos-free reference is computable without running anything.
func render(specJSON []byte) []byte {
	sum := sha256.Sum256(append([]byte("simresult|"), specJSON...))
	return []byte("simresult:" + hex.EncodeToString(sum[:]))
}

// memSink collects settled result bytes per coordinator, standing in
// for the server's content-addressed store. Like the real store it
// survives that coordinator's restarts.
type memSink struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemSink() *memSink { return &memSink{m: map[string][]byte{}} }

func (s *memSink) StoreResult(key string, result []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), result...)
	return nil
}

func (s *memSink) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	return b, ok
}

// LoadResult implements cluster.ResultSource, so restarted harness
// coordinators rehydrate replayed done entries exactly like production
// (whose payloads live in the server's content-addressed store).
func (s *memSink) LoadResult(key string) ([]byte, bool) { return s.get(key) }

// coordNode is one coordinator identity across its crashes and
// restarts: the journal dir, result sink and name persist; the
// Coordinator instance and its epoch change on every restart.
type coordNode struct {
	h    *harness
	idx  int
	name string
	dir  string
	sink *memSink

	mu     sync.Mutex
	co     *cluster.Coordinator
	alive  bool
	epoch  int
	ctx    context.Context // cancelled when this epoch crashes
	cancel context.CancelFunc
}

func (n *coordNode) start() error {
	jn, recs, err := store.Open(n.dir, 0)
	if err != nil {
		return fmt.Errorf("coordinator %s journal: %w", n.name, err)
	}
	var peers []string
	for _, p := range n.h.coords {
		if p.name != n.name {
			peers = append(peers, n.h.net.URL(p.name))
		}
	}
	name := n.name
	co := cluster.NewCoordinator(cluster.Config{
		HeartbeatInterval:        simHeartbeat,
		SuspectAfter:             simSuspect,
		DeadAfter:                simDead,
		LeaseDuration:            simLease,
		ClaimWait:                simClaimWait,
		MaxAttempts:              simMaxAttempts,
		Peers:                    peers,
		SelfID:                   name,
		Journal:                  jn,
		Replay:                   recs,
		HTTPClient:               n.h.net.Client(name),
		Now:                      n.h.net.Chaos().Clock(name),
		BreakerFailures:          4,
		BreakerCooldown:          6 * simHeartbeat,
		DisableMergeTerminalWins: n.h.opts.MutateMerge && n.idx > 0,
		Logf: func(format string, args ...any) {
			n.h.opts.Logf("["+name+"] "+format, args...)
		},
	})
	co.AttachResults(n.sink)
	ctx, cancel := context.WithCancel(context.Background())
	n.mu.Lock()
	n.co = co
	n.alive = true
	n.epoch++
	n.ctx = ctx
	n.cancel = cancel
	n.mu.Unlock()
	n.h.net.Register(n.name, co.Handler())
	return nil
}

// crash tears the coordinator down abruptly as seen by the rest of the
// cluster: its node vanishes from the fabric first, then in-flight
// dispatches bound to this epoch are cancelled and the instance closed
// (which also closes the journal so a restart can reopen it).
func (n *coordNode) crash() {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return
	}
	co, cancel := n.co, n.cancel
	n.alive = false
	n.co = nil
	n.mu.Unlock()
	n.h.net.Deregister(n.name)
	cancel()
	co.Close()
}

// snapshot returns the live instance (nil when down) with its epoch.
func (n *coordNode) snapshot() (*cluster.Coordinator, context.Context, int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.co, n.ctx, n.epoch, n.alive
}

// workerNode is one worker: membership agents (one per coordinator it
// joins) plus the claim loop. A crash flips the crashed flag — the Run
// callback then abandons every claim, so leases expire exactly as they
// would for a dead process — and stops the loops in the background.
type workerNode struct {
	h       *harness
	name    string
	crashed atomic.Bool
	claimer *cluster.Claimer
	agents  []*cluster.Agent
	stopWG  sync.WaitGroup
}

func (h *harness) startWorker(name string) (*workerNode, error) {
	w := &workerNode{h: h, name: name}
	client := h.net.Client(name)
	coords := h.joinURLs()
	for _, u := range coords {
		a, err := cluster.StartAgent(cluster.AgentConfig{
			Coordinator: u,
			ID:          name,
			Advertise:   "http://" + name,
			Capacity:    2,
			Load:        func() (int, int) { return 0, 0 },
			Interval:    simHeartbeat,
			HTTPClient:  client,
			Logf: func(format string, args ...any) {
				h.opts.Logf("["+name+"] "+format, args...)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("worker %s agent: %w", name, err)
		}
		w.agents = append(w.agents, a)
	}
	w.claimer = cluster.StartClaimer(cluster.ClaimerConfig{
		Coordinators: coords,
		ID:           name,
		Slots:        2,
		KeyFor:       keyOf,
		Run: func(ctx context.Context, specJSON []byte) ([]byte, error) {
			if w.crashed.Load() {
				return nil, cluster.ErrClaimAbandoned
			}
			// A sliver of real work keeps leases and hedges honest: claims
			// overlap with renewals, crashes land mid-run.
			time.Sleep(2 * time.Millisecond)
			if w.crashed.Load() {
				return nil, cluster.ErrClaimAbandoned
			}
			return render(specJSON), nil
		},
		PollWait:   simClaimWait,
		HTTPClient: client,
		Logf: func(format string, args ...any) {
			h.opts.Logf("["+name+"] "+format, args...)
		},
	})
	return w, nil
}

// crash marks the worker dead. Goroutines can't be killed, so death is
// emulated at the semantics level: every claim it holds or wins from
// here on is abandoned (no report, lease expires) and its loops stop in
// the background.
func (w *workerNode) crash() {
	if w.crashed.Swap(true) {
		return
	}
	w.stopWG.Add(1)
	go func() {
		defer w.stopWG.Done()
		w.claimer.Stop()
		for _, a := range w.agents {
			a.Stop()
		}
	}()
}

// stop shuts the worker down cleanly (teardown, not crash semantics).
func (w *workerNode) stop() {
	if !w.crashed.Swap(true) {
		w.claimer.Stop()
		for _, a := range w.agents {
			a.Stop()
		}
	}
	w.stopWG.Wait()
}

type harness struct {
	opts Options
	net  *netchaos.Network
	dir  string
	str  *splitmix.Stream // schedule stream, decorrelated from the chaos stream

	specs []server.JobSpec
	keys  []string
	ref   map[string][]byte

	coords  []*coordNode
	workers []*workerNode
	retired []*workerNode // crashed workers replaced at settle; drained at teardown

	mu         sync.Mutex
	violations []string
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// joinURLs is the coordinator list workers claim from: everyone, or
// only coordinator 0 under the merge mutation (so the mutated peers can
// learn results through replication alone — the topology that exposes a
// broken merge instead of letting re-claims paper over it).
func (h *harness) joinURLs() []string {
	if h.opts.PinToFirst {
		return []string{h.net.URL(h.coords[0].name)}
	}
	urls := make([]string, len(h.coords))
	for i, n := range h.coords {
		urls[i] = h.net.URL(n.name)
	}
	return urls
}

// Run executes one seeded schedule end to end and reports every
// invariant violation it observed. Setup failures (disk, config) come
// back as the error; violations are data, not errors.
func Run(opts Options) (Report, error) {
	opts = opts.withDefaults()
	h := &harness{
		opts: opts,
		str:  splitmix.NewStream(splitmix.Mix64(opts.Seed ^ 0x5c4ed01e0f5eedf1)),
		ref:  map[string][]byte{},
	}
	rep := Report{Seed: opts.Seed, Submitted: opts.Jobs}

	dir, err := os.MkdirTemp("", "simtest-*")
	if err != nil {
		return rep, err
	}
	h.dir = dir
	defer os.RemoveAll(dir)

	net, err := netchaos.NewNetwork(opts.Chaos)
	if err != nil {
		return rep, err
	}
	h.net = net

	// Job corpus and its oracle. Specs only need distinct, stable JSON;
	// the key and reference bytes derive from the normalized encoding
	// exactly as Dispatch produces it.
	for i := 0; i < opts.Jobs; i++ {
		spec := server.JobSpec{Kind: "run", Kernel: "CG", Tokens: i + 1}
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return rep, fmt.Errorf("marshal sim spec: %w", err)
		}
		key, _ := keyOf(specJSON)
		h.specs = append(h.specs, spec)
		h.keys = append(h.keys, key)
		h.ref[key] = render(specJSON)
	}

	for i := 0; i < opts.Coordinators; i++ {
		n := &coordNode{
			h:    h,
			idx:  i,
			name: fmt.Sprintf("c%d", i),
			sink: newMemSink(),
		}
		n.dir = filepath.Join(dir, n.name)
		h.coords = append(h.coords, n)
	}
	for _, n := range h.coords {
		if err := n.start(); err != nil {
			return rep, err
		}
	}
	for i := 0; i < opts.Workers; i++ {
		w, err := h.startWorker(fmt.Sprintf("w%d", i))
		if err != nil {
			return rep, err
		}
		h.workers = append(h.workers, w)
	}

	// Invariant monitor: watches attempt monotonicity and the budget on
	// every live coordinator throughout the schedule.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go h.monitor(monStop, &monWG)

	// The scripted portion.
	var clientWG sync.WaitGroup
	h.runSchedule(&clientWG)

	// Settle: stop the weather, resurrect everything, wait for the
	// cluster to converge, then check the invariants that only make
	// sense at rest.
	h.settle(&clientWG)
	close(monStop)
	monWG.Wait()
	h.checkConverged()

	// Teardown and aggregate counters.
	for _, w := range h.workers {
		w.stop()
	}
	for _, w := range h.retired {
		w.stopWG.Wait()
	}
	for _, n := range h.coords {
		co, _, _, alive := n.snapshot()
		if alive {
			ctr := co.ClaimCounters()
			rep.Granted += ctr.Granted
			rep.Expirations += ctr.Expirations
			rep.Duplicates += ctr.Duplicate
			rep.Hedges += ctr.Contention
		}
		n.crash()
	}
	rep.ChaosInjected = h.net.Chaos().Counters().Total()

	h.mu.Lock()
	rep.Violations = append(rep.Violations, h.violations...)
	h.mu.Unlock()
	return rep, nil
}

// submit is one scripted client call: dispatch the job on a live
// coordinator, fail over to the next on crash or transport trouble, and
// check the returned bytes against the oracle. ErrNoWorkers mirrors
// production: the server would execute locally in degraded mode, and
// determinism makes that result the oracle's by construction.
func (h *harness) submit(job, firstCo int, deadline time.Time) {
	key, spec := h.keys[job], h.specs[job]
	want := h.ref[key]
	coIdx := firstCo
	for time.Now().Before(deadline) {
		if h.opts.PinToFirst {
			coIdx = 0
		}
		node := h.coords[coIdx%len(h.coords)]
		coIdx++
		co, ctx, _, alive := node.snapshot()
		if !alive {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		result, err := co.Dispatch(ctx, key, "sim", "default", 0, spec, io.Discard)
		switch {
		case err == nil:
			if !bytes.Equal(result, want) {
				h.violate("job %d: dispatched result diverged from the chaos-free reference (%d bytes vs %d)", job, len(result), len(want))
			}
			return
		case errors.Is(err, server.ErrNoWorkers):
			return // degraded-mode local execution; render(spec) == want by construction
		case errors.Is(err, context.Canceled):
			// Coordinator crashed mid-dispatch; fail over.
		default:
			// A terminal failure. With simMaxAttempts headroom and a Run
			// that only succeeds or abandons, no schedule can produce one
			// legitimately.
			h.violate("job %d: settled failed: %v", job, err)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.violate("job %d: no terminal outcome before the settle deadline", job)
}

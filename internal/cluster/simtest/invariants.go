package simtest

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// The harness checks two families of invariants:
//
// Continuous (the monitor goroutine, running throughout the schedule):
//   - a claim's attempt counter never regresses within one coordinator
//     epoch (restarts may legitimately lose un-fsynced grants, so the
//     scope is per epoch, keyed by name#epoch|key);
//   - no attempt ever exceeds the configured budget.
//
// At rest (after heal + quiesce + resurrection, once the cluster has
// had SettleTimeout to converge):
//   - every job that reached any claim table is terminal — and
//     terminal-done — on every coordinator;
//   - every coordinator's stored bytes for a key are byte-identical to
//     the chaos-free reference (computed from the oracle, not from any
//     run);
//   - no lease is still held after settle.
//
// Exactly-one-terminal-state per coordinator is structural (the table
// maps key → one entry), so divergence shows up as byte or state
// mismatches between coordinators, which the at-rest checks catch.

func short(key string) string {
	if len(key) > 10 {
		return key[:10]
	}
	return key
}

// monitor polls every live coordinator's claim views and flags attempt
// regressions and budget overruns the moment they appear.
func (h *harness) monitor(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	last := map[string]int{}
	flagged := map[string]bool{}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		for _, n := range h.coords {
			co, _, epoch, alive := n.snapshot()
			if !alive {
				continue
			}
			for _, v := range co.ClaimViews() {
				id := fmt.Sprintf("%s#%d|%s", n.name, epoch, v.Key)
				if v.Attempt > simMaxAttempts && !flagged["budget|"+id] {
					flagged["budget|"+id] = true
					h.violate("%s epoch %d key %s: attempt %d exceeds the budget of %d", n.name, epoch, short(v.Key), v.Attempt, simMaxAttempts)
				}
				if prev, ok := last[id]; ok && v.Attempt < prev {
					h.violate("%s epoch %d key %s: claim attempt regressed %d -> %d", n.name, epoch, short(v.Key), prev, v.Attempt)
				}
				last[id] = v.Attempt
			}
		}
	}
}

// settle ends the weather and brings every crashed node back, then
// waits for the cluster to converge: the scripted client's calls must
// all have terminated, and the at-rest claim-table condition must hold.
func (h *harness) settle(clientWG *sync.WaitGroup) {
	ch := h.net.Chaos()
	ch.Heal()
	ch.Quiesce()
	for _, n := range h.coords {
		if _, _, _, alive := n.snapshot(); !alive {
			if err := n.start(); err != nil {
				h.violate("settle restart %s: %v", n.name, err)
			}
		}
	}
	for i, w := range h.workers {
		if w.crashed.Load() {
			h.retired = append(h.retired, w)
			nw, err := h.startWorker(w.name)
			if err != nil {
				h.violate("settle restart %s: %v", w.name, err)
				continue
			}
			h.workers[i] = nw
		}
	}
	clientWG.Wait()
	deadline := time.Now().Add(h.opts.SettleTimeout)
	for {
		ok, _ := h.converged()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			_, detail := h.converged()
			h.violate("settle timeout: cluster failed to converge: %s", detail)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// converged reports whether every key known to any coordinator is
// settled done everywhere with reference-identical bytes; detail names
// the first obstacle for the settle-timeout report.
func (h *harness) converged() (bool, string) {
	per := make([]map[string]cluster.ClaimView, len(h.coords))
	union := map[string]bool{}
	for i, n := range h.coords {
		co, _, _, alive := n.snapshot()
		if !alive {
			return false, n.name + " is down"
		}
		vm := map[string]cluster.ClaimView{}
		for _, v := range co.ClaimViews() {
			vm[v.Key] = v
			union[v.Key] = true
		}
		per[i] = vm
	}
	for key := range union {
		for i, n := range h.coords {
			v, ok := per[i][key]
			if !ok {
				return false, fmt.Sprintf("%s has no entry for key %s", n.name, short(key))
			}
			if v.State != cluster.ClaimDone {
				return false, fmt.Sprintf("%s key %s is %s, want done", n.name, short(key), v.State)
			}
			b, ok := n.sink.get(key)
			if !ok {
				return false, fmt.Sprintf("%s settled key %s without storing bytes", n.name, short(key))
			}
			if want := h.ref[key]; want != nil && !bytes.Equal(b, want) {
				return false, fmt.Sprintf("%s stored bytes for key %s diverge from the chaos-free reference", n.name, short(key))
			}
		}
	}
	return true, ""
}

// checkConverged runs the full at-rest sweep after settle, recording
// every violation individually (settle records only the first obstacle
// on timeout; this enumerates the rest).
func (h *harness) checkConverged() {
	union := map[string]bool{}
	type entry struct {
		node string
		view cluster.ClaimView
	}
	byKey := map[string][]entry{}
	for _, n := range h.coords {
		co, _, _, alive := n.snapshot()
		if !alive {
			h.violate("%s is down after settle", n.name)
			continue
		}
		for _, v := range co.ClaimViews() {
			union[v.Key] = true
			byKey[v.Key] = append(byKey[v.Key], entry{n.name, v})
			if v.State == cluster.ClaimClaimed {
				h.violate("%s key %s: lease still held by %q after settle", n.name, short(v.Key), v.ClaimedBy)
			}
			if v.State == cluster.ClaimFailed {
				h.violate("%s key %s: settled failed under a budget no schedule can exhaust", n.name, short(v.Key))
			}
		}
	}
	for key := range union {
		if len(byKey[key]) != len(h.coords) {
			h.violate("key %s replicated to %d of %d coordinators", short(key), len(byKey[key]), len(h.coords))
		}
		want := h.ref[key]
		if want == nil {
			h.violate("claim tables hold unknown key %s", short(key))
			continue
		}
		for _, n := range h.coords {
			if _, _, _, alive := n.snapshot(); !alive {
				continue
			}
			if b, ok := n.sink.get(key); ok && !bytes.Equal(b, want) {
				h.violate("%s key %s: stored %d bytes diverging from the %d-byte reference", n.name, short(key), len(b), len(want))
			}
		}
	}
}

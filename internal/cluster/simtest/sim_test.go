package simtest

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faults/splitmix"
)

// planFor builds just enough harness to generate a schedule plan
// without starting any nodes.
func planFor(opts Options) ([]event, []int, [][]string) {
	opts = opts.withDefaults()
	h := &harness{
		opts: opts,
		str:  splitmix.NewStream(splitmix.Mix64(opts.Seed ^ 0x5c4ed01e0f5eedf1)),
	}
	for i := 0; i < opts.Coordinators; i++ {
		h.coords = append(h.coords, &coordNode{name: fmt.Sprintf("c%d", i)})
	}
	for i := 0; i < opts.Workers; i++ {
		h.workers = append(h.workers, &workerNode{name: fmt.Sprintf("w%d", i)})
	}
	return h.plan()
}

// The schedule plan is a pure function of the seed: same seed, same
// events; different seeds diverge.
func TestPlanIsSeedDeterministic(t *testing.T) {
	opts := Options{Seed: 42}
	evA, coA, grA := planFor(opts)
	evB, coB, grB := planFor(opts)
	if fmt.Sprint(evA, coA, grA) != fmt.Sprint(evB, coB, grB) {
		t.Fatalf("same seed produced different plans:\n%v %v %v\n%v %v %v", evA, coA, grA, evB, coB, grB)
	}
	evC, coC, grC := planFor(Options{Seed: 43})
	if fmt.Sprint(evA, coA, grA) == fmt.Sprint(evC, coC, grC) {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

// Coordinator crash windows must be disjoint so the schedule never
// takes the whole control plane down at once.
func TestPlanCoordinatorCrashWindowsDisjoint(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		evs, _, _ := planFor(Options{Seed: seed})
		down := -1
		for _, ev := range evs {
			switch ev.kind {
			case evCrashCoord:
				if down != -1 {
					t.Fatalf("seed %d: c%d crashes while c%d is still down", seed, ev.idx, down)
				}
				down = ev.idx
			case evRestartCoord:
				if down != ev.idx {
					t.Fatalf("seed %d: restart of c%d while down=%d", seed, ev.idx, down)
				}
				down = -1
			}
		}
		if down != -1 {
			t.Fatalf("seed %d: c%d never restarted inside the horizon", seed, down)
		}
	}
}

// A quiet network must settle with zero violations — the baseline that
// separates harness bugs from chaos-revealed bugs.
func TestChaosFreeBaselineConverges(t *testing.T) {
	rep, err := Run(Options{Seed: 1, NoChaos: true, Jobs: 6, Horizon: 250 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("baseline violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Granted == 0 {
		t.Fatal("baseline granted no claims; the schedule exercised nothing")
	}
	if rep.ChaosInjected != 0 {
		t.Fatalf("NoChaos run injected %d faults", rep.ChaosInjected)
	}
}

// The pure-replication topology: workers and client pinned to c0, the
// other coordinators learn everything via snapshot merge. Must
// converge — this is the control for the mutation test below.
func TestPinnedTopologyConvergesViaReplication(t *testing.T) {
	rep, err := Run(Options{Seed: 5, NoChaos: true, PinToFirst: true, Jobs: 4, Horizon: 200 * time.Millisecond, SettleTimeout: 10 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pinned topology violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
}

// The deliberately-broken build: identical topology, but peers drop
// incoming terminal records on merge. The invariant checker must flag
// it — a checker that can't catch a planted bug proves nothing.
func TestMergeMutationIsCaught(t *testing.T) {
	rep, err := Run(Options{Seed: 5, NoChaos: true, MutateMerge: true, Jobs: 4, Horizon: 200 * time.Millisecond, SettleTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("mutated merge produced zero violations; the checker is blind")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "failed to converge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations flag something, but not the convergence failure:\n%s", strings.Join(rep.Violations, "\n"))
	}
}

// A spread of seeded chaos schedules: every one must hold the
// invariants, and collectively they must actually inject faults. The
// deep sweep (hundreds of seeds) lives in tools/clustersim; this keeps
// a representative slice in plain `go test`.
func TestSeededChaosSchedulesHoldInvariants(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var injected, expired uint64
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("seed %d violations:\n%s", seed, strings.Join(rep.Violations, "\n"))
			}
			injected += rep.ChaosInjected
			expired += rep.Expirations
		})
	}
	if injected == 0 {
		t.Fatal("no faults injected across any seed; the chaos layer is inert")
	}
	t.Logf("across %d seeds: %d faults injected, %d lease expirations", len(seeds), injected, expired)
}

package simtest

import (
	"sync"
	"time"

	"repro/internal/faults/splitmix"
)

// Schedule draw classes. These feed the harness's own stream (seeded
// from the schedule seed, decorrelated from the chaos stream), so the
// event plan is a pure function of the seed and the option counts.
const (
	clsSubmitAt  = 1 // actor=job: submission time
	clsSubmitCo  = 2 // actor=job: first coordinator to try
	clsCoCrash   = 3 // actor=coordinator: crash? and where in its slot
	clsWkCrash   = 4 // actor=worker: crash? and when
	clsPartition = 5 // actor=0: partition? when, how long; actor=node+16: group side
)

type evKind int

const (
	evSubmit evKind = iota
	evCrashCoord
	evRestartCoord
	evCrashWorker
	evPartition
	evHeal
)

type event struct {
	at   time.Duration
	kind evKind
	idx  int
}

// frac turns one draw into a uniform fraction of d.
func frac(draw uint64, d time.Duration) time.Duration {
	return time.Duration(splitmix.Float64(draw) * float64(d))
}

// plan generates the seeded event list. Structural guarantees, so every
// seed is a *valid* schedule rather than a vacuous one:
//
//   - all submissions land in the first half of the horizon;
//   - coordinator crash windows are disjoint per coordinator and each
//     crash restarts inside its own window, so at most one coordinator
//     is ever down and the cluster always has a majority view to settle
//     into;
//   - workers that crash stay down until the settle phase resurrects
//     them — their leases must expire and their claims re-run elsewhere;
//   - at most one partition episode, always healed by the settle phase
//     even if the heal event would fall past the horizon.
func (h *harness) plan() ([]event, []int, [][]string) {
	s, H := h.str, h.opts.Horizon
	var evs []event

	submitCo := make([]int, h.opts.Jobs)
	for i := 0; i < h.opts.Jobs; i++ {
		evs = append(evs, event{at: frac(s.Next(clsSubmitAt, uint64(i)), H/2), kind: evSubmit, idx: i})
		submitCo[i] = int(s.Next(clsSubmitCo, uint64(i)) % uint64(len(h.coords)))
	}

	// NoChaos is the quiet baseline: submissions only — no crashes, no
	// partitions, no network weather. Everything below is scheduled
	// infrastructure failure.
	if h.opts.NoChaos {
		sortEvents(evs)
		return evs, submitCo, nil
	}

	if n := len(h.coords); n > 1 {
		// Crash window [0.2H, 0.85H), one disjoint slot per coordinator.
		base, span := H/5, H*13/20
		slot := span / time.Duration(n)
		for i := range h.coords {
			if splitmix.Float64(s.Next(clsCoCrash, uint64(i))) >= 0.6 {
				continue
			}
			crashAt := base + slot*time.Duration(i) + frac(s.Next(clsCoCrash, uint64(i)), slot/3)
			restartAt := crashAt + slot/4 + frac(s.Next(clsCoCrash, uint64(i)), slot/4)
			evs = append(evs,
				event{at: crashAt, kind: evCrashCoord, idx: i},
				event{at: restartAt, kind: evRestartCoord, idx: i})
		}
	}

	for i := range h.workers {
		if splitmix.Float64(s.Next(clsWkCrash, uint64(i))) < 0.4 {
			at := H/10 + frac(s.Next(clsWkCrash, uint64(i)), H*7/10)
			evs = append(evs, event{at: at, kind: evCrashWorker, idx: i})
		}
	}

	var groups [][]string
	if len(h.coords) > 1 && splitmix.Float64(s.Next(clsPartition, 0)) < 0.6 {
		at := H*3/20 + frac(s.Next(clsPartition, 0), H*2/5)
		dur := H/10 + frac(s.Next(clsPartition, 0), H/4)
		// Random two-coloring of every node. Coordinator 0 anchors side A
		// so neither side is empty.
		var a, b []string
		for i, n := range h.coords {
			if i == 0 || splitmix.Float64(s.Next(clsPartition, uint64(16+i))) < 0.5 {
				a = append(a, n.name)
			} else {
				b = append(b, n.name)
			}
		}
		for i, w := range h.workers {
			if splitmix.Float64(s.Next(clsPartition, uint64(64+i))) < 0.5 {
				a = append(a, w.name)
			} else {
				b = append(b, w.name)
			}
		}
		if len(b) > 0 {
			groups = [][]string{a, b}
			evs = append(evs,
				event{at: at, kind: evPartition},
				event{at: at + dur, kind: evHeal})
		}
	}

	sortEvents(evs)
	return evs, submitCo, groups
}

// sortEvents is a small insertion sort keyed on time; schedules are a
// few dozen events at most.
func sortEvents(evs []event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].at < evs[j-1].at; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// runSchedule plays the event list in real (compressed) time. Client
// submissions run on their own goroutines tracked by wg; crash events
// execute inline so their effects order exactly as planned.
func (h *harness) runSchedule(wg *sync.WaitGroup) {
	evs, submitCo, groups := h.plan()
	deadline := time.Now().Add(h.opts.Horizon + h.opts.SettleTimeout)
	start := time.Now()
	for _, ev := range evs {
		if d := ev.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		switch ev.kind {
		case evSubmit:
			wg.Add(1)
			job, first := ev.idx, submitCo[ev.idx]
			go func() {
				defer wg.Done()
				h.submit(job, first, deadline)
			}()
		case evCrashCoord:
			h.opts.Logf("schedule: crash %s at %v", h.coords[ev.idx].name, ev.at)
			h.coords[ev.idx].crash()
		case evRestartCoord:
			h.opts.Logf("schedule: restart %s at %v", h.coords[ev.idx].name, ev.at)
			if err := h.coords[ev.idx].start(); err != nil {
				h.violate("restart %s: %v", h.coords[ev.idx].name, err)
			}
		case evCrashWorker:
			h.opts.Logf("schedule: crash %s at %v", h.workers[ev.idx].name, ev.at)
			h.workers[ev.idx].crash()
		case evPartition:
			h.opts.Logf("schedule: partition %v at %v", groups, ev.at)
			h.net.Chaos().Partition(groups...)
		case evHeal:
			h.opts.Logf("schedule: heal at %v", ev.at)
			h.net.Chaos().Heal()
		}
	}
	if d := h.opts.Horizon - time.Since(start); d > 0 {
		time.Sleep(d)
	}
}

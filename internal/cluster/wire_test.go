package cluster

import (
	"strings"
	"testing"
)

var testKey = strings.Repeat("ab", 32)

func TestDecodeRegister(t *testing.T) {
	m, err := DecodeRegister(strings.NewReader(`{"id":"w1","addr":"http://10.0.0.7:8080","capacity":4}`))
	if err != nil {
		t.Fatalf("valid register rejected: %v", err)
	}
	if m.ID != "w1" || m.Capacity != 4 {
		t.Fatalf("decoded %+v", m)
	}

	bad := []string{
		`{"id":"","addr":"http://x","capacity":1}`,           // empty id
		`{"id":"w 1","addr":"http://x","capacity":1}`,        // space in id
		`{"id":"w1","addr":"ftp://x","capacity":1}`,          // not http(s)
		`{"id":"w1","addr":"","capacity":1}`,                 // empty addr
		`{"id":"w1","addr":"http://x","capacity":0}`,         // zero capacity
		`{"id":"w1","addr":"http://x","capacity":99999}`,     // over cap
		`{"id":"w1","addr":"http://x","capacity":1,"x":1}`,   // unknown field
		`{"id":"w1","addr":"http://x","capacity":1} trailer`, // trailing data
		`not json`,
	}
	for _, b := range bad {
		if _, err := DecodeRegister(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad register: %s", b)
		}
	}
}

func TestDecodeHeartbeat(t *testing.T) {
	m, err := DecodeHeartbeat(strings.NewReader(`{"id":"w1","queued":3,"running":1,"capacity":2}`))
	if err != nil {
		t.Fatalf("valid heartbeat rejected: %v", err)
	}
	if m.Queued != 3 || m.Running != 1 {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"id":"w1","queued":-1,"capacity":2}`,
		`{"id":"w1","running":-1,"capacity":2}`,
		`{"id":"w1","queued":9999999,"capacity":2}`,
		`{"id":"w1","capacity":0}`,
		`{"id":"w1","capacity":2}{"id":"w2","capacity":2}`, // trailing message
	}
	for _, b := range bad {
		if _, err := DecodeHeartbeat(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad heartbeat: %s", b)
		}
	}
}

func TestDecodeDispatch(t *testing.T) {
	m, err := DecodeDispatch(strings.NewReader(`{"key":"` + testKey + `","label":"run/CG","spec":{"kind":"run"}}`))
	if err != nil {
		t.Fatalf("valid dispatch rejected: %v", err)
	}
	if m.Key != testKey || m.Label != "run/CG" {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"key":"short","label":"x","spec":{}}`,                                      // malformed key
		`{"key":"` + strings.ToUpper(testKey) + `","label":"x","spec":{}}`,           // uppercase hex
		`{"key":"` + testKey + `","label":"","spec":{}}`,                             // empty label
		`{"key":"` + testKey + `","label":"` + strings.Repeat("x", 200) + `","spec":{}}`, // label too long
		`{"key":"` + testKey + `","label":"x"}`,                                      // no spec
	}
	for _, b := range bad {
		if _, err := DecodeDispatch(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad dispatch: %s", b)
		}
	}
}

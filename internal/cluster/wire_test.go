package cluster

import (
	"strings"
	"testing"
)

var testKey = strings.Repeat("ab", 32)

func TestDecodeRegister(t *testing.T) {
	m, err := DecodeRegister(strings.NewReader(`{"id":"w1","addr":"http://10.0.0.7:8080","capacity":4}`))
	if err != nil {
		t.Fatalf("valid register rejected: %v", err)
	}
	if m.ID != "w1" || m.Capacity != 4 {
		t.Fatalf("decoded %+v", m)
	}

	bad := []string{
		`{"id":"","addr":"http://x","capacity":1}`,           // empty id
		`{"id":"w 1","addr":"http://x","capacity":1}`,        // space in id
		`{"id":"w1","addr":"ftp://x","capacity":1}`,          // not http(s)
		`{"id":"w1","addr":"","capacity":1}`,                 // empty addr
		`{"id":"w1","addr":"http://x","capacity":0}`,         // zero capacity
		`{"id":"w1","addr":"http://x","capacity":99999}`,     // over cap
		`{"id":"w1","addr":"http://x","capacity":1,"x":1}`,   // unknown field
		`{"id":"w1","addr":"http://x","capacity":1} trailer`, // trailing data
		`not json`,
	}
	for _, b := range bad {
		if _, err := DecodeRegister(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad register: %s", b)
		}
	}
}

func TestDecodeHeartbeat(t *testing.T) {
	m, err := DecodeHeartbeat(strings.NewReader(`{"id":"w1","queued":3,"running":1,"capacity":2}`))
	if err != nil {
		t.Fatalf("valid heartbeat rejected: %v", err)
	}
	if m.Queued != 3 || m.Running != 1 {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"id":"w1","queued":-1,"capacity":2}`,
		`{"id":"w1","running":-1,"capacity":2}`,
		`{"id":"w1","queued":9999999,"capacity":2}`,
		`{"id":"w1","capacity":0}`,
		`{"id":"w1","capacity":2}{"id":"w2","capacity":2}`, // trailing message
	}
	for _, b := range bad {
		if _, err := DecodeHeartbeat(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad heartbeat: %s", b)
		}
	}
}

func TestDecodeClaimRequest(t *testing.T) {
	m, err := DecodeClaimRequest(strings.NewReader(`{"worker":"w1","wait_ms":1500}`))
	if err != nil {
		t.Fatalf("valid claim request rejected: %v", err)
	}
	if m.Worker != "w1" || m.WaitMs != 1500 {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"worker":"","wait_ms":0}`,        // empty worker
		`{"worker":"w1","wait_ms":-1}`,     // negative wait
		`{"worker":"w1","wait_ms":999999}`, // wait over cap
		`{"worker":"w1","nope":1}`,         // unknown field
		`{"worker":"w1"}{"worker":"w2"}`,   // trailing message
		`not json`,
	}
	for _, b := range bad {
		if _, err := DecodeClaimRequest(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad claim request: %s", b)
		}
	}
}

func TestDecodeClaimGrant(t *testing.T) {
	g, err := DecodeClaimGrant(strings.NewReader(`{"key":"` + testKey + `","label":"run/CG","spec":{"kind":"run"},"claim_attempt":2,"lease_ms":10000}`))
	if err != nil {
		t.Fatalf("valid grant rejected: %v", err)
	}
	if g.Key != testKey || g.Attempt != 2 || g.LeaseMs != 10000 {
		t.Fatalf("decoded %+v", g)
	}
	bad := []string{
		`{"key":"short","label":"x","spec":{},"claim_attempt":1,"lease_ms":1}`,                            // malformed key
		`{"key":"` + strings.ToUpper(testKey) + `","label":"x","spec":{},"claim_attempt":1,"lease_ms":1}`, // uppercase hex
		`{"key":"` + testKey + `","label":"","spec":{},"claim_attempt":1,"lease_ms":1}`,                   // empty label
		`{"key":"` + testKey + `","label":"x","claim_attempt":1,"lease_ms":1}`,                            // no spec
		`{"key":"` + testKey + `","label":"x","spec":{},"claim_attempt":0,"lease_ms":1}`,                  // attempt < 1
		`{"key":"` + testKey + `","label":"x","spec":{},"claim_attempt":1,"lease_ms":0}`,                  // no lease
	}
	for _, b := range bad {
		if _, err := DecodeClaimGrant(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad grant: %s", b)
		}
	}
}

func TestDecodeClaimRenew(t *testing.T) {
	m, err := DecodeClaimRenew(strings.NewReader(`{"worker":"w1","key":"` + testKey + `","claim_attempt":3}`))
	if err != nil {
		t.Fatalf("valid renew rejected: %v", err)
	}
	if m.Worker != "w1" || m.Attempt != 3 {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"worker":"w1","key":"nope","claim_attempt":1}`,            // malformed key
		`{"worker":"w1","key":"` + testKey + `","claim_attempt":0}`, // attempt < 1
		`{"worker":"","key":"` + testKey + `","claim_attempt":1}`,   // empty worker
	}
	for _, b := range bad {
		if _, err := DecodeClaimRenew(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad renew: %s", b)
		}
	}
}

func TestDecodeClaimReport(t *testing.T) {
	m, err := DecodeClaimReport(strings.NewReader(`{"worker":"w1","key":"` + testKey + `","claim_attempt":1,"state":"done","result":"QllURVM="}`))
	if err != nil {
		t.Fatalf("valid done report rejected: %v", err)
	}
	if m.State != ClaimDone || string(m.Result) != "BYTES" {
		t.Fatalf("decoded %+v", m)
	}
	if _, err := DecodeClaimReport(strings.NewReader(`{"worker":"w1","key":"` + testKey + `","claim_attempt":2,"state":"failed","error":"solver diverged"}`)); err != nil {
		t.Fatalf("valid failed report rejected: %v", err)
	}
	bad := []string{
		`{"worker":"w1","key":"` + testKey + `","claim_attempt":1,"state":"failed"}`,  // failed without error
		`{"worker":"w1","key":"` + testKey + `","claim_attempt":1,"state":"pending"}`, // non-terminal state
		`{"worker":"w1","key":"` + testKey + `","claim_attempt":1,"state":"nope"}`,    // unknown state
		`{"worker":"w1","key":"` + testKey + `","claim_attempt":0,"state":"done"}`,    // attempt < 1
	}
	for _, b := range bad {
		if _, err := DecodeClaimReport(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad report: %s", b)
		}
	}
}

func TestDecodeReplicateBatch(t *testing.T) {
	body := `{"from":"co-a","records":[{"key":"` + testKey + `","label":"run/CG","state":"claimed","claimed_by":"w1","claim_expires_at":1700000000000,"claim_attempt":1}]}`
	m, err := DecodeReplicateBatch(strings.NewReader(body))
	if err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if m.From != "co-a" || len(m.Records) != 1 || m.Records[0].State != ClaimClaimed {
		t.Fatalf("decoded %+v", m)
	}
	bad := []string{
		`{"from":"","records":[]}`, // empty from
		`{"from":"co-a","records":[{"key":"nope","label":"x","state":"pending","claim_attempt":0}]}`,           // bad key
		`{"from":"co-a","records":[{"key":"` + testKey + `","label":"x","state":"limbo","claim_attempt":0}]}`,  // bad state
		`{"from":"co-a","records":[{"key":"` + testKey + `","label":"","state":"pending","claim_attempt":0}]}`, // empty label
	}
	for _, b := range bad {
		if _, err := DecodeReplicateBatch(strings.NewReader(b)); err == nil {
			t.Errorf("accepted bad batch: %s", b)
		}
	}
}

package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the failure detector and the claim table's lease
// expiry without real waiting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRegistry() (*Registry, *fakeClock) {
	clk := newFakeClock()
	return newRegistry(3*time.Second, 10*time.Second, clk.now), clk
}

func TestRegistryStateMachine(t *testing.T) {
	r, clk := testRegistry()
	r.register(Register{ID: "w1", Addr: "http://w1", Capacity: 2})

	if live, _, _ := r.counts(); live != 1 {
		t.Fatalf("after register: live = %d, want 1", live)
	}

	// Silent past suspectAfter: suspect, not dead.
	clk.advance(4 * time.Second)
	if died := r.sweep(); len(died) != 0 {
		t.Fatalf("sweep at 4s declared dead: %v", died)
	}
	if _, suspect, _ := r.counts(); suspect != 1 {
		t.Fatalf("after 4s silence: suspect count = %d, want 1", suspect)
	}

	// A heartbeat resurrects a suspect to live.
	if !r.heartbeat(Heartbeat{ID: "w1", Queued: 1, Running: 1, Capacity: 2}) {
		t.Fatal("heartbeat for suspect worker not accepted")
	}
	if live, _, _ := r.counts(); live != 1 {
		t.Fatal("suspect did not recover to live on heartbeat")
	}

	// Silent past deadAfter: dead, id reported.
	clk.advance(11 * time.Second)
	died := r.sweep()
	if len(died) != 1 || died[0] != "w1" {
		t.Fatalf("sweep past deadAfter returned %v, want [w1]", died)
	}
	if w := r.workers["w1"]; w.state != WorkerDead {
		t.Fatalf("dead worker: state=%s", w.state)
	}
	// Dead workers are not revived by heartbeats — they must re-register.
	if r.heartbeat(Heartbeat{ID: "w1", Capacity: 2}) {
		t.Fatal("heartbeat accepted for a dead worker")
	}
	// A second sweep doesn't re-report the death.
	if died := r.sweep(); len(died) != 0 {
		t.Fatalf("second sweep re-reported deaths: %v", died)
	}

	// Re-registration installs a fresh live handle.
	r.register(Register{ID: "w1", Addr: "http://w1", Capacity: 2})
	if w := r.workers["w1"]; w.state != WorkerLive {
		t.Fatal("re-register did not install a fresh live handle")
	}
}

func TestRegistryHeartbeatUnknownWorker(t *testing.T) {
	r, _ := testRegistry()
	if r.heartbeat(Heartbeat{ID: "ghost", Capacity: 1}) {
		t.Fatal("heartbeat accepted for unregistered worker")
	}
}

func TestRegistryReRegisterTakesNewAddress(t *testing.T) {
	r, _ := testRegistry()
	r.register(Register{ID: "w1", Addr: "http://old", Capacity: 1})
	r.register(Register{ID: "w1", Addr: "http://new", Capacity: 1})
	if r.workers["w1"].addr != "http://new" {
		t.Fatal("re-register did not take the new address")
	}
}

func TestRegistryViews(t *testing.T) {
	r, clk := testRegistry()
	r.register(Register{ID: "b", Addr: "http://b", Capacity: 4})
	r.register(Register{ID: "a", Addr: "http://a", Capacity: 2})
	r.heartbeat(Heartbeat{ID: "a", Queued: 1, Running: 1, Capacity: 2})
	clk.advance(500 * time.Millisecond)

	vs := r.views()
	if len(vs) != 2 || vs[0].ID != "a" || vs[1].ID != "b" {
		t.Fatalf("views not sorted by id: %+v", vs)
	}
	if vs[0].Queued != 1 || vs[0].Running != 1 {
		t.Fatalf("view a missing load report: %+v", vs[0])
	}
	if vs[0].BeatAge != 500 {
		t.Fatalf("view a BeatAge = %d ms, want 500", vs[0].BeatAge)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrClaimAbandoned tells the claimer a grant could not even start
// locally (queue full, server draining). The claimer sends no report —
// the lease simply expires and another worker picks the job up — so a
// transient local refusal never burns a claim attempt as a failure.
var ErrClaimAbandoned = errors.New("claim abandoned")

// ClaimerConfig tunes a worker's claim loop.
type ClaimerConfig struct {
	// Coordinators are the base URLs claims are long-polled from, round
	// robin, so one dead coordinator costs a timeout, not the worker.
	Coordinators []string
	// ID is this worker's fleet identity.
	ID string
	// Slots bounds concurrent claims held by this worker (default 1).
	Slots int
	// KeyFor recomputes the cache key from a granted spec. A mismatch
	// with the grant's key means version skew — the claim is reported
	// failed instead of caching bytes under the wrong identity.
	KeyFor func(specJSON []byte) (string, error)
	// Run executes the granted spec locally and returns the result
	// bytes. Wrapping ErrClaimAbandoned abandons the claim silently.
	Run func(ctx context.Context, specJSON []byte) ([]byte, error)
	// PollWait is the long-poll hold requested per claim (default 2s).
	PollWait time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c ClaimerConfig) withDefaults() ClaimerConfig {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.PollWait <= 0 {
		c.PollWait = 2 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Claimer is a worker's pull loop: long-poll coordinators for claims,
// run each granted job while renewing its lease, report the terminal
// state to the coordinator that granted it.
type Claimer struct {
	cfg    ClaimerConfig
	ctx    context.Context // cancelled by Stop; bounds polling and renewals
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup
}

// StartClaimer begins claiming. Stop it when done.
func StartClaimer(cfg ClaimerConfig) *Claimer {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Claimer{cfg: cfg, ctx: ctx, cancel: cancel, sem: make(chan struct{}, cfg.Slots)}
	c.wg.Add(1)
	go c.loop()
	return c
}

// Stop halts claiming and waits for claims already being run to finish
// and report. In-flight work completes — a clean shutdown leaves no
// lease to expire.
func (c *Claimer) Stop() {
	c.cancel()
	c.wg.Wait()
}

func (c *Claimer) loop() {
	defer c.wg.Done()
	next := 0 // round-robin cursor over coordinators
	for {
		select {
		case <-c.ctx.Done():
			return
		case c.sem <- struct{}{}:
		}
		granted := false
		for range c.cfg.Coordinators {
			co := c.cfg.Coordinators[next%len(c.cfg.Coordinators)]
			next++
			g, ok, err := c.claimFrom(co)
			if err != nil {
				if c.ctx.Err() != nil {
					<-c.sem
					return
				}
				continue // coordinator down or talking nonsense; try the next
			}
			if !ok {
				continue // long-poll expired empty
			}
			granted = true
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				defer func() { <-c.sem }()
				c.runClaim(co, g)
			}()
			break
		}
		if !granted {
			<-c.sem
			// Every coordinator came back empty (or unreachable). The
			// long-poll already paced the reachable case; this sleep only
			// stops a dead-fleet worker from spinning.
			select {
			case <-c.ctx.Done():
				return
			case <-time.After(250 * time.Millisecond):
			}
		}
	}
}

// claimFrom long-polls one coordinator. ok=false with nil error means
// the poll expired with nothing claimable.
func (c *Claimer) claimFrom(coURL string) (ClaimGrant, bool, error) {
	body, err := json.Marshal(ClaimRequest{Worker: c.cfg.ID, WaitMs: c.cfg.PollWait.Milliseconds()})
	if err != nil {
		return ClaimGrant{}, false, err
	}
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.PollWait+5*time.Second)
	defer cancel()
	resp, err := c.post(ctx, coURL+"/cluster/claims", body)
	if err != nil {
		return ClaimGrant{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return ClaimGrant{}, false, nil
	case http.StatusOK:
		g, err := DecodeClaimGrant(resp.Body)
		if err != nil {
			return ClaimGrant{}, false, fmt.Errorf("malformed grant from %s: %w", coURL, err)
		}
		return g, true, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return ClaimGrant{}, false, fmt.Errorf("claim against %s: HTTP %d", coURL, resp.StatusCode)
	}
}

// runClaim executes one granted claim end to end: version-skew check,
// lease renewals, local execution, terminal report — all against the
// coordinator that granted the lease. If that coordinator dies, the
// report is dropped on purpose: a surviving coordinator's lease expiry
// re-pends the claim, and the re-execution hits this worker's
// content-addressed cache, so recovery costs one lease timeout.
func (c *Claimer) runClaim(coURL string, g ClaimGrant) {
	key, err := c.cfg.KeyFor(g.Spec)
	if err != nil || key != g.Key {
		if err == nil {
			err = fmt.Errorf("granted key %s but spec hashes to %s", g.Key, key)
		}
		c.cfg.Logf("claimer: cache key mismatch (version skew): %v", err)
		c.report(coURL, g, ClaimFailed, nil, "cache key mismatch (version skew)")
		return
	}

	// Detached from the polling context on purpose: Stop halts new
	// claims but waits for held ones to run to completion and report, so
	// a clean shutdown leaves no lease behind to expire.
	renewCtx, stopRenew := context.WithCancel(context.Background())
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		c.renewLoop(renewCtx, coURL, g)
	}()

	result, runErr := c.cfg.Run(context.Background(), g.Spec)
	stopRenew()
	renewWG.Wait()

	switch {
	case runErr == nil:
		c.report(coURL, g, ClaimDone, result, "")
	case errors.Is(runErr, ErrClaimAbandoned):
		c.cfg.Logf("claimer: abandoned claim %s (%v); lease will expire", g.Key[:12], runErr)
	default:
		c.report(coURL, g, ClaimFailed, nil, runErr.Error())
	}
}

// renewLoop extends the lease at a third of its duration until the
// claim finishes or the coordinator refuses (the lease moved on).
func (c *Claimer) renewLoop(ctx context.Context, coURL string, g ClaimGrant) {
	interval := time.Duration(g.LeaseMs) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	body, err := json.Marshal(ClaimRenew{Worker: c.cfg.ID, Key: g.Key, Attempt: g.Attempt})
	if err != nil {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rctx, cancel := context.WithTimeout(ctx, interval)
		resp, err := c.post(rctx, coURL+"/cluster/claims/renew", body)
		if err != nil {
			cancel()
			continue // granter unreachable; keep running, the lease may expire
		}
		var ack RenewAck
		jerr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack)
		resp.Body.Close()
		cancel()
		if jerr == nil && !ack.OK {
			c.cfg.Logf("claimer: lease on %s lost (superseded); finishing anyway", g.Key[:12])
			return
		}
	}
}

// report delivers the terminal state to the granting coordinator, with
// a few quick retries. Giving up is safe: the lease expires and the
// fleet re-executes, which determinism makes free.
func (c *Claimer) report(coURL string, g ClaimGrant, state string, result []byte, errMsg string) {
	body, err := json.Marshal(ClaimReport{
		Worker:  c.cfg.ID,
		Key:     g.Key,
		Attempt: g.Attempt,
		State:   state,
		Error:   errMsg,
		Result:  result,
	})
	if err != nil {
		c.cfg.Logf("claimer: marshal report: %v", err)
		return
	}
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := c.post(ctx, coURL+"/cluster/claims/report", body)
		if err == nil {
			var ack ReportAck
			jerr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack)
			resp.Body.Close()
			cancel()
			if jerr == nil {
				if !ack.Accepted {
					c.cfg.Logf("claimer: report for %s was a duplicate (another copy won)", g.Key[:12])
				}
				return
			}
		} else {
			cancel()
		}
		time.Sleep(200 * time.Millisecond)
	}
	c.cfg.Logf("claimer: dropping report for %s (granter unreachable); lease expiry will recover it", g.Key[:12])
}

func (c *Claimer) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.cfg.HTTPClient.Do(req)
}

package cluster

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/server"
)

// WorkerHandler serves the coordinator-facing side of a worker:
//
//	POST /cluster/dispatch — accept a job hand-off
//
// The handler recomputes the cache key from the spec before admitting
// the job and refuses with 409 when it disagrees with the coordinator's.
// That guard is what keeps a mixed-version fleet honest: if coordinator
// and worker would file the same spec under different keys, executing
// the dispatch would poison the content-addressed store, so the fleet
// fails loudly instead. Admission itself goes through the server's
// normal path — dedup, cache hits, durability, and queue-full shedding
// all behave exactly as they do for a direct client submission.
func WorkerHandler(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/dispatch", func(w http.ResponseWriter, r *http.Request) {
		d, err := DecodeDispatch(r.Body)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		key, err := srv.CacheKeyFor(d.Spec)
		if err != nil {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("dispatch spec: %w", err))
			return
		}
		if key != d.Key {
			clusterError(w, http.StatusConflict,
				fmt.Errorf("cache key mismatch: coordinator says %s, this worker computes %s (version skew?)", d.Key, key))
			return
		}
		view, outcome, err := srv.SubmitJSON(d.Spec)
		switch {
		case errors.Is(err, server.ErrDraining), errors.Is(err, server.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			clusterError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		status := http.StatusCreated
		if outcome.Dedup || outcome.Cached {
			status = http.StatusOK
		}
		writeClusterJSON(w, status, map[string]any{
			"job":    view,
			"dedup":  outcome.Dedup,
			"cached": outcome.Cached,
		})
	})
	return mux
}

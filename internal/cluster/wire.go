// Package cluster turns a set of slipd processes into a fleet: workers
// register with a coordinator and heartbeat their load; the coordinator
// owns the client-facing API and dispatches each job to the
// least-loaded worker, failing over to survivors when a worker dies and
// hedging stragglers with a second copy. Determinism plus content
// addressing make all of it safe: a job executed twice — on a failover
// survivor, on a hedge, or on a "dead" worker that was merely slow —
// produces exactly the same bytes under exactly the same cache key.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
)

// Wire-format bounds. Every message is validated against these on
// decode so a confused (or malicious) peer fails loudly at the edge
// instead of poisoning the registry.
const (
	maxIDLen    = 128
	maxAddrLen  = 512
	maxLabelLen = 128
	maxCapacity = 4096
	maxGauge    = 1 << 20 // queue/running counts beyond this are nonsense
	maxWireLen  = 2 << 20 // absolute body cap for any cluster message
)

// Register announces a worker to the coordinator: who it is, where its
// HTTP API answers, and how many jobs it runs concurrently.
type Register struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"` // worker base URL, e.g. http://10.0.0.7:8080
	Capacity int    `json:"capacity"`
}

// Validate applies the wire bounds.
func (r Register) Validate() error {
	if err := validID(r.ID); err != nil {
		return err
	}
	if r.Addr == "" || len(r.Addr) > maxAddrLen {
		return fmt.Errorf("register: addr length %d outside [1, %d]", len(r.Addr), maxAddrLen)
	}
	if len(r.Addr) < 8 || (r.Addr[:7] != "http://" && r.Addr[:8] != "https://") {
		return fmt.Errorf("register: addr %q is not an http(s) URL", r.Addr)
	}
	if r.Capacity < 1 || r.Capacity > maxCapacity {
		return fmt.Errorf("register: capacity %d outside [1, %d]", r.Capacity, maxCapacity)
	}
	return nil
}

// RegisterAck is the coordinator's answer: the heartbeat cadence it
// expects, so fleet timing is configured in exactly one place.
type RegisterAck struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// Heartbeat is a worker's periodic liveness-and-load report.
type Heartbeat struct {
	ID       string `json:"id"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Capacity int    `json:"capacity"`
}

// Validate applies the wire bounds.
func (h Heartbeat) Validate() error {
	if err := validID(h.ID); err != nil {
		return err
	}
	if h.Queued < 0 || h.Queued > maxGauge {
		return fmt.Errorf("heartbeat: queued %d outside [0, %d]", h.Queued, maxGauge)
	}
	if h.Running < 0 || h.Running > maxGauge {
		return fmt.Errorf("heartbeat: running %d outside [0, %d]", h.Running, maxGauge)
	}
	if h.Capacity < 1 || h.Capacity > maxCapacity {
		return fmt.Errorf("heartbeat: capacity %d outside [1, %d]", h.Capacity, maxCapacity)
	}
	return nil
}

// HeartbeatAck tells the worker whether the coordinator still knows it.
// Registered=false (a coordinator restart wiped the registry, or the
// worker was declared dead) makes the agent re-register — the fleet
// heals itself in one heartbeat interval.
type HeartbeatAck struct {
	Registered bool `json:"registered"`
}

// Dispatch is the coordinator→worker job hand-off: the job spec in the
// server's normalized JSON encoding, the metrics label, and the cache
// key the coordinator computed. The worker recomputes the key from the
// spec and refuses on mismatch, so a version-skewed fleet fails loudly
// instead of caching bytes under the wrong identity.
type Dispatch struct {
	Key   string          `json:"key"`
	Label string          `json:"label"`
	Spec  json.RawMessage `json:"spec"`
}

// Validate applies the wire bounds (the spec's content is validated by
// the server's own compile step).
func (d Dispatch) Validate() error {
	if !validKey(d.Key) {
		return fmt.Errorf("dispatch: malformed cache key %q", d.Key)
	}
	if d.Label == "" || len(d.Label) > maxLabelLen {
		return fmt.Errorf("dispatch: label length %d outside [1, %d]", len(d.Label), maxLabelLen)
	}
	if len(d.Spec) == 0 {
		return fmt.Errorf("dispatch: missing spec")
	}
	return nil
}

// DecodeRegister strictly decodes and validates a Register body.
func DecodeRegister(r io.Reader) (Register, error) {
	var m Register
	if err := decodeStrict(r, &m); err != nil {
		return Register{}, err
	}
	return m, m.Validate()
}

// DecodeHeartbeat strictly decodes and validates a Heartbeat body.
func DecodeHeartbeat(r io.Reader) (Heartbeat, error) {
	var m Heartbeat
	if err := decodeStrict(r, &m); err != nil {
		return Heartbeat{}, err
	}
	return m, m.Validate()
}

// DecodeDispatch strictly decodes and validates a Dispatch body.
func DecodeDispatch(r io.Reader) (Dispatch, error) {
	var m Dispatch
	if err := decodeStrict(r, &m); err != nil {
		return Dispatch{}, err
	}
	return m, m.Validate()
}

// decodeStrict rejects unknown fields, trailing data, and oversized
// bodies, so typos and confused peers fail loudly at the edge.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxWireLen))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after cluster message")
	}
	return nil
}

// validID bounds a worker id: printable ASCII without spaces keeps ids
// safe in logs, metrics labels, and URLs.
func validID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("worker id length %d outside [1, %d]", len(id), maxIDLen)
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return fmt.Errorf("worker id contains byte 0x%02x", id[i])
		}
	}
	return nil
}

// validKey reports whether k looks like a sha256 cache key (64 lowercase
// hex characters), matching the store's key discipline.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Package cluster turns a set of slipd processes into a fleet: workers
// register with a coordinator, heartbeat their load, and *claim* jobs
// from a shared claim table by long-polling any coordinator. Each grant
// carries a lease the worker renews while running; an expired lease
// makes the claim claimable again (attempt+1) by any survivor, so no
// failure detector sits on the dispatch path. Coordinators replicate
// the claim table to each other leader-lessly (append-and-reconcile on
// cache key + attempt), so any one of N coordinators can die without
// stranding work. Stragglers are hedged: a claim outstanding past the
// per-label p95×1.5 becomes claimable by a second worker, first
// terminal result wins. Determinism plus content addressing make all of
// it safe: a job executed twice — after a lease expiry, on a hedge, or
// on a "dead" worker that was merely slow — produces exactly the same
// bytes under exactly the same cache key.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
)

// Wire-format bounds. Every message is validated against these on
// decode so a confused (or malicious) peer fails loudly at the edge
// instead of poisoning the registry.
const (
	maxIDLen      = 128
	maxAddrLen    = 512
	maxLabelLen   = 128
	maxCapacity   = 4096
	maxGauge      = 1 << 20  // queue/running counts beyond this are nonsense
	maxWireLen    = 2 << 20  // body cap for control-plane cluster messages
	maxResultLen  = 16 << 20 // body cap for messages carrying result bytes
	maxClaimWait  = 60_000   // longest long-poll hold a worker may request, ms
	maxAttemptNum = 1 << 20  // claim attempts beyond this are nonsense
	maxBatchRecs  = 4096     // claim records per replication batch
	maxPriority   = 8        // priority classes beyond this are nonsense
)

// Register announces a worker to the coordinator: who it is, where its
// HTTP API answers, and how many jobs it runs concurrently.
type Register struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"` // worker base URL, e.g. http://10.0.0.7:8080
	Capacity int    `json:"capacity"`
}

// Validate applies the wire bounds.
func (r Register) Validate() error {
	if err := validID(r.ID); err != nil {
		return err
	}
	if r.Addr == "" || len(r.Addr) > maxAddrLen {
		return fmt.Errorf("register: addr length %d outside [1, %d]", len(r.Addr), maxAddrLen)
	}
	if len(r.Addr) < 8 || (r.Addr[:7] != "http://" && r.Addr[:8] != "https://") {
		return fmt.Errorf("register: addr %q is not an http(s) URL", r.Addr)
	}
	if r.Capacity < 1 || r.Capacity > maxCapacity {
		return fmt.Errorf("register: capacity %d outside [1, %d]", r.Capacity, maxCapacity)
	}
	return nil
}

// RegisterAck is the coordinator's answer: the heartbeat cadence it
// expects, so fleet timing is configured in exactly one place.
type RegisterAck struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// Heartbeat is a worker's periodic liveness-and-load report.
type Heartbeat struct {
	ID       string `json:"id"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Capacity int    `json:"capacity"`
}

// Validate applies the wire bounds.
func (h Heartbeat) Validate() error {
	if err := validID(h.ID); err != nil {
		return err
	}
	if h.Queued < 0 || h.Queued > maxGauge {
		return fmt.Errorf("heartbeat: queued %d outside [0, %d]", h.Queued, maxGauge)
	}
	if h.Running < 0 || h.Running > maxGauge {
		return fmt.Errorf("heartbeat: running %d outside [0, %d]", h.Running, maxGauge)
	}
	if h.Capacity < 1 || h.Capacity > maxCapacity {
		return fmt.Errorf("heartbeat: capacity %d outside [1, %d]", h.Capacity, maxCapacity)
	}
	return nil
}

// HeartbeatAck tells the worker whether the coordinator still knows it.
// Registered=false (a coordinator restart wiped the registry, or the
// worker was declared dead) makes the agent re-register — the fleet
// heals itself in one heartbeat interval.
type HeartbeatAck struct {
	Registered bool `json:"registered"`
}

// Claim states as they appear on the wire and in the claim journal.
const (
	ClaimPending = "pending" // enqueued, waiting for a worker to claim it
	ClaimClaimed = "claimed" // leased to a worker
	ClaimDone    = "done"    // terminal: result bytes exist
	ClaimFailed  = "failed"  // terminal: deterministic failure or budget exhausted
)

func validClaimState(s string) bool {
	switch s {
	case ClaimPending, ClaimClaimed, ClaimDone, ClaimFailed:
		return true
	}
	return false
}

// ClaimRequest is a worker's long-poll for work: POST /cluster/claims.
// WaitMs asks the coordinator to hold the poll open until work appears
// (bounded by the coordinator's own cap); 0 means answer immediately.
type ClaimRequest struct {
	Worker string `json:"worker"`
	WaitMs int64  `json:"wait_ms,omitempty"`
}

// Validate applies the wire bounds.
func (c ClaimRequest) Validate() error {
	if err := validID(c.Worker); err != nil {
		return err
	}
	if c.WaitMs < 0 || c.WaitMs > maxClaimWait {
		return fmt.Errorf("claim: wait_ms %d outside [0, %d]", c.WaitMs, maxClaimWait)
	}
	return nil
}

// ClaimGrant is the coordinator's answer to a successful claim: the job
// spec in the server's normalized JSON encoding, the metrics label, the
// cache key the coordinator computed, the monotonic claim attempt, and
// the lease the worker must renew before it expires. The worker
// recomputes the key from the spec and refuses on mismatch, so a
// version-skewed fleet fails loudly instead of caching bytes under the
// wrong identity.
type ClaimGrant struct {
	Key      string          `json:"key"`
	Label    string          `json:"label"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec"`
	Attempt  int             `json:"claim_attempt"`
	LeaseMs  int64           `json:"lease_ms"`
}

// Validate applies the wire bounds (the spec's content is validated by
// the server's own compile step).
func (g ClaimGrant) Validate() error {
	if !validKey(g.Key) {
		return fmt.Errorf("grant: malformed cache key %q", g.Key)
	}
	if g.Label == "" || len(g.Label) > maxLabelLen {
		return fmt.Errorf("grant: label length %d outside [1, %d]", len(g.Label), maxLabelLen)
	}
	if len(g.Spec) == 0 {
		return fmt.Errorf("grant: missing spec")
	}
	if len(g.Tenant) > maxIDLen {
		return fmt.Errorf("grant: tenant length %d exceeds %d", len(g.Tenant), maxIDLen)
	}
	if g.Priority < 0 || g.Priority > maxPriority {
		return fmt.Errorf("grant: priority %d outside [0, %d]", g.Priority, maxPriority)
	}
	if g.Attempt < 1 || g.Attempt > maxAttemptNum {
		return fmt.Errorf("grant: claim_attempt %d outside [1, %d]", g.Attempt, maxAttemptNum)
	}
	if g.LeaseMs < 1 {
		return fmt.Errorf("grant: lease_ms %d must be positive", g.LeaseMs)
	}
	return nil
}

// ClaimRenew extends a lease: POST /cluster/claims/renew. The attempt
// pins the renewal to one grant — a renewal from a superseded claimant
// (its lease expired and the claim moved on) is refused, telling that
// worker it no longer holds the lease.
type ClaimRenew struct {
	Worker  string `json:"worker"`
	Key     string `json:"key"`
	Attempt int    `json:"claim_attempt"`
}

// Validate applies the wire bounds.
func (c ClaimRenew) Validate() error {
	if err := validID(c.Worker); err != nil {
		return err
	}
	if !validKey(c.Key) {
		return fmt.Errorf("renew: malformed cache key %q", c.Key)
	}
	if c.Attempt < 1 || c.Attempt > maxAttemptNum {
		return fmt.Errorf("renew: claim_attempt %d outside [1, %d]", c.Attempt, maxAttemptNum)
	}
	return nil
}

// RenewAck reports whether the lease is still held by this worker.
type RenewAck struct {
	OK bool `json:"ok"`
}

// ClaimReport is a worker's terminal report: POST /cluster/claims/report.
// State is done (with the result bytes) or failed (with the error).
// Reports are first-terminal-wins: a duplicate — the other side of a
// hedge, or a re-execution after a lease expired on a merely-slow worker
// — is acknowledged but discarded, which is safe because determinism
// makes every copy's bytes identical.
type ClaimReport struct {
	Worker  string `json:"worker"`
	Key     string `json:"key"`
	Attempt int    `json:"claim_attempt"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Result  []byte `json:"result,omitempty"`
}

// Validate applies the wire bounds.
func (c ClaimReport) Validate() error {
	if err := validID(c.Worker); err != nil {
		return err
	}
	if !validKey(c.Key) {
		return fmt.Errorf("report: malformed cache key %q", c.Key)
	}
	if c.Attempt < 1 || c.Attempt > maxAttemptNum {
		return fmt.Errorf("report: claim_attempt %d outside [1, %d]", c.Attempt, maxAttemptNum)
	}
	switch c.State {
	case ClaimDone:
	case ClaimFailed:
		if c.Error == "" {
			return fmt.Errorf("report: failed state without an error")
		}
	default:
		return fmt.Errorf("report: state %q is not terminal", c.State)
	}
	return nil
}

// ReportAck tells the worker whether its terminal report settled the
// claim (false: someone else's result already won).
type ReportAck struct {
	Accepted bool `json:"accepted"`
}

// ClaimRecord is one claim-table entry on the replication wire: the full
// lease state plus, for done entries, the result bytes so a surviving
// coordinator can serve them. Reconciliation is keyed on cache key +
// claim attempt; last-terminal-wins is safe because results are
// content-addressed and byte-identical.
type ClaimRecord struct {
	Key       string          `json:"key"`
	Label     string          `json:"label"`
	Tenant    string          `json:"tenant,omitempty"`
	Priority  int             `json:"priority,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	State     string          `json:"state"`
	ClaimedBy string          `json:"claimed_by,omitempty"`
	ExpiresMs int64           `json:"claim_expires_at,omitempty"` // unix ms
	Attempt   int             `json:"claim_attempt"`
	Error     string          `json:"error,omitempty"`
	Result    []byte          `json:"result,omitempty"`
}

// Validate applies the wire bounds.
func (c ClaimRecord) Validate() error {
	if !validKey(c.Key) {
		return fmt.Errorf("claim record: malformed cache key %q", c.Key)
	}
	if c.Label == "" || len(c.Label) > maxLabelLen {
		return fmt.Errorf("claim record: label length %d outside [1, %d]", len(c.Label), maxLabelLen)
	}
	if !validClaimState(c.State) {
		return fmt.Errorf("claim record: unknown state %q", c.State)
	}
	if len(c.Tenant) > maxIDLen {
		return fmt.Errorf("claim record: tenant length %d exceeds %d", len(c.Tenant), maxIDLen)
	}
	if c.Priority < 0 || c.Priority > maxPriority {
		return fmt.Errorf("claim record: priority %d outside [0, %d]", c.Priority, maxPriority)
	}
	if c.Attempt < 0 || c.Attempt > maxAttemptNum {
		return fmt.Errorf("claim record: claim_attempt %d outside [0, %d]", c.Attempt, maxAttemptNum)
	}
	if c.ClaimedBy != "" {
		if err := validID(c.ClaimedBy); err != nil {
			return fmt.Errorf("claim record: %w", err)
		}
	}
	return nil
}

// ReplicateBatch carries claim records between coordinators:
// POST /cluster/claims/replicate.
type ReplicateBatch struct {
	From    string        `json:"from"`
	Records []ClaimRecord `json:"records"`
}

// Validate applies the wire bounds.
func (b ReplicateBatch) Validate() error {
	if b.From == "" || len(b.From) > maxAddrLen {
		return fmt.Errorf("replicate: from length %d outside [1, %d]", len(b.From), maxAddrLen)
	}
	if len(b.Records) > maxBatchRecs {
		return fmt.Errorf("replicate: %d records exceeds %d", len(b.Records), maxBatchRecs)
	}
	for i, r := range b.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("replicate: record %d: %w", i, err)
		}
	}
	return nil
}

// DecodeRegister strictly decodes and validates a Register body.
func DecodeRegister(r io.Reader) (Register, error) {
	var m Register
	if err := decodeStrict(r, &m); err != nil {
		return Register{}, err
	}
	return m, m.Validate()
}

// DecodeHeartbeat strictly decodes and validates a Heartbeat body.
func DecodeHeartbeat(r io.Reader) (Heartbeat, error) {
	var m Heartbeat
	if err := decodeStrict(r, &m); err != nil {
		return Heartbeat{}, err
	}
	return m, m.Validate()
}

// DecodeClaimRequest strictly decodes and validates a ClaimRequest body.
func DecodeClaimRequest(r io.Reader) (ClaimRequest, error) {
	var m ClaimRequest
	if err := decodeStrict(r, &m); err != nil {
		return ClaimRequest{}, err
	}
	return m, m.Validate()
}

// DecodeClaimGrant strictly decodes and validates a ClaimGrant body.
func DecodeClaimGrant(r io.Reader) (ClaimGrant, error) {
	var m ClaimGrant
	if err := decodeStrict(r, &m); err != nil {
		return ClaimGrant{}, err
	}
	return m, m.Validate()
}

// DecodeClaimRenew strictly decodes and validates a ClaimRenew body.
func DecodeClaimRenew(r io.Reader) (ClaimRenew, error) {
	var m ClaimRenew
	if err := decodeStrict(r, &m); err != nil {
		return ClaimRenew{}, err
	}
	return m, m.Validate()
}

// DecodeClaimReport strictly decodes and validates a ClaimReport body.
// It uses the large body cap: reports carry result bytes.
func DecodeClaimReport(r io.Reader) (ClaimReport, error) {
	var m ClaimReport
	if err := decodeStrictLimit(r, &m, maxResultLen); err != nil {
		return ClaimReport{}, err
	}
	return m, m.Validate()
}

// DecodeReplicateBatch strictly decodes and validates a ReplicateBatch
// body. It uses the large body cap: done records carry result bytes.
func DecodeReplicateBatch(r io.Reader) (ReplicateBatch, error) {
	var m ReplicateBatch
	if err := decodeStrictLimit(r, &m, maxResultLen); err != nil {
		return ReplicateBatch{}, err
	}
	return m, m.Validate()
}

// decodeStrict rejects unknown fields, trailing data, and oversized
// bodies, so typos and confused peers fail loudly at the edge.
func decodeStrict(r io.Reader, v any) error {
	return decodeStrictLimit(r, v, maxWireLen)
}

func decodeStrictLimit(r io.Reader, v any, limit int64) error {
	dec := json.NewDecoder(io.LimitReader(r, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after cluster message")
	}
	return nil
}

// validID bounds a worker id: printable ASCII without spaces keeps ids
// safe in logs, metrics labels, and URLs.
func validID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("worker id length %d outside [1, %d]", len(id), maxIDLen)
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return fmt.Errorf("worker id contains byte 0x%02x", id[i])
		}
	}
	return nil
}

// validKey reports whether k looks like a sha256 cache key (64 lowercase
// hex characters), matching the store's key discipline.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

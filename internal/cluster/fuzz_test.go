package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzClusterWire throws arbitrary bytes at every cluster wire decoder.
// The decoders sit on the fleet's trust boundary — a worker can be
// version-skewed, misconfigured, or malicious — so they must never
// panic, and anything they accept must survive re-encode → re-decode
// with the same validated meaning.
func FuzzClusterWire(f *testing.F) {
	f.Add([]byte(`{"id":"w1","addr":"http://10.0.0.7:8080","capacity":4}`))
	f.Add([]byte(`{"id":"w1","queued":3,"running":1,"capacity":2}`))
	f.Add([]byte(`{"key":"` + strings.Repeat("ab", 32) + `","label":"run/CG","spec":{"kind":"run","kernel":"CG","nodes":4}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"id":"w1","capacity":1}{"id":"w2"}`))
	f.Add([]byte(strings.Repeat("[", 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRegister(bytes.NewReader(data)); err == nil {
			if r.Validate() != nil {
				t.Fatalf("DecodeRegister returned an invalid message: %+v", r)
			}
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("re-encode register: %v", err)
			}
			r2, err := DecodeRegister(bytes.NewReader(b))
			if err != nil || r2 != r {
				t.Fatalf("register round-trip: %+v → %+v (%v)", r, r2, err)
			}
		}
		if h, err := DecodeHeartbeat(bytes.NewReader(data)); err == nil {
			if h.Validate() != nil {
				t.Fatalf("DecodeHeartbeat returned an invalid message: %+v", h)
			}
			b, err := json.Marshal(h)
			if err != nil {
				t.Fatalf("re-encode heartbeat: %v", err)
			}
			h2, err := DecodeHeartbeat(bytes.NewReader(b))
			if err != nil || h2 != h {
				t.Fatalf("heartbeat round-trip: %+v → %+v (%v)", h, h2, err)
			}
		}
		if d, err := DecodeDispatch(bytes.NewReader(data)); err == nil {
			if d.Validate() != nil {
				t.Fatalf("DecodeDispatch returned an invalid message: %+v", d)
			}
			b, err := json.Marshal(d)
			if err != nil {
				t.Fatalf("re-encode dispatch: %v", err)
			}
			d2, err := DecodeDispatch(bytes.NewReader(b))
			if err != nil || d2.Key != d.Key || d2.Label != d.Label {
				t.Fatalf("dispatch round-trip: %+v → %+v (%v)", d, d2, err)
			}
		}
	})
}

package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzClusterWire throws arbitrary bytes at the membership decoders.
// The decoders sit on the fleet's trust boundary — a worker can be
// version-skewed, misconfigured, or malicious — so they must never
// panic, and anything they accept must survive re-encode → re-decode
// with the same validated meaning.
func FuzzClusterWire(f *testing.F) {
	f.Add([]byte(`{"id":"w1","addr":"http://10.0.0.7:8080","capacity":4}`))
	f.Add([]byte(`{"id":"w1","queued":3,"running":1,"capacity":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"id":"w1","capacity":1}{"id":"w2"}`))
	f.Add([]byte(strings.Repeat("[", 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRegister(bytes.NewReader(data)); err == nil {
			if r.Validate() != nil {
				t.Fatalf("DecodeRegister returned an invalid message: %+v", r)
			}
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("re-encode register: %v", err)
			}
			r2, err := DecodeRegister(bytes.NewReader(b))
			if err != nil || r2 != r {
				t.Fatalf("register round-trip: %+v → %+v (%v)", r, r2, err)
			}
		}
		if h, err := DecodeHeartbeat(bytes.NewReader(data)); err == nil {
			if h.Validate() != nil {
				t.Fatalf("DecodeHeartbeat returned an invalid message: %+v", h)
			}
			b, err := json.Marshal(h)
			if err != nil {
				t.Fatalf("re-encode heartbeat: %v", err)
			}
			h2, err := DecodeHeartbeat(bytes.NewReader(b))
			if err != nil || h2 != h {
				t.Fatalf("heartbeat round-trip: %+v → %+v (%v)", h, h2, err)
			}
		}
	})
}

// FuzzClaimWire does the same for the claim-path decoders: claim
// long-polls, grants, renewals, terminal reports, and peer replication
// batches. Grants and replication batches come from coordinators, but a
// worker in a multi-coordinator fleet can't tell a healthy coordinator
// from a compromised or skewed one, so every message is held to the
// same standard.
func FuzzClaimWire(f *testing.F) {
	key := strings.Repeat("ab", 32)
	f.Add([]byte(`{"worker":"w1","wait_ms":1500}`))
	f.Add([]byte(`{"key":"` + key + `","label":"run/CG","spec":{"kind":"run"},"claim_attempt":1,"lease_ms":10000}`))
	f.Add([]byte(`{"worker":"w1","key":"` + key + `","claim_attempt":2}`))
	f.Add([]byte(`{"worker":"w1","key":"` + key + `","claim_attempt":1,"state":"done","result":"QllURVM="}`))
	f.Add([]byte(`{"worker":"w1","key":"` + key + `","claim_attempt":1,"state":"failed","error":"diverged"}`))
	f.Add([]byte(`{"from":"co-a","records":[{"key":"` + key + `","label":"l","state":"claimed","claimed_by":"w1","claim_expires_at":1700000000000,"claim_attempt":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(strings.Repeat("{", 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeClaimRequest(bytes.NewReader(data)); err == nil {
			if m.Validate() != nil {
				t.Fatalf("DecodeClaimRequest returned an invalid message: %+v", m)
			}
			b, _ := json.Marshal(m)
			m2, err := DecodeClaimRequest(bytes.NewReader(b))
			if err != nil || m2 != m {
				t.Fatalf("claim request round-trip: %+v → %+v (%v)", m, m2, err)
			}
		}
		if g, err := DecodeClaimGrant(bytes.NewReader(data)); err == nil {
			if g.Validate() != nil {
				t.Fatalf("DecodeClaimGrant returned an invalid message: %+v", g)
			}
			b, _ := json.Marshal(g)
			g2, err := DecodeClaimGrant(bytes.NewReader(b))
			if err != nil || g2.Key != g.Key || g2.Attempt != g.Attempt || g2.LeaseMs != g.LeaseMs {
				t.Fatalf("grant round-trip: %+v → %+v (%v)", g, g2, err)
			}
		}
		if m, err := DecodeClaimRenew(bytes.NewReader(data)); err == nil {
			if m.Validate() != nil {
				t.Fatalf("DecodeClaimRenew returned an invalid message: %+v", m)
			}
			b, _ := json.Marshal(m)
			m2, err := DecodeClaimRenew(bytes.NewReader(b))
			if err != nil || m2 != m {
				t.Fatalf("renew round-trip: %+v → %+v (%v)", m, m2, err)
			}
		}
		if m, err := DecodeClaimReport(bytes.NewReader(data)); err == nil {
			if m.Validate() != nil {
				t.Fatalf("DecodeClaimReport returned an invalid message: %+v", m)
			}
			b, _ := json.Marshal(m)
			m2, err := DecodeClaimReport(bytes.NewReader(b))
			if err != nil || m2.Key != m.Key || m2.State != m.State || !bytes.Equal(m2.Result, m.Result) {
				t.Fatalf("report round-trip: %+v → %+v (%v)", m, m2, err)
			}
		}
		if m, err := DecodeReplicateBatch(bytes.NewReader(data)); err == nil {
			if m.Validate() != nil {
				t.Fatalf("DecodeReplicateBatch returned an invalid message: %+v", m)
			}
			b, _ := json.Marshal(m)
			m2, err := DecodeReplicateBatch(bytes.NewReader(b))
			if err != nil || m2.From != m.From || len(m2.Records) != len(m.Records) {
				t.Fatalf("batch round-trip: %+v → %+v (%v)", m, m2, err)
			}
		}
	})
}

package cluster

import (
	"testing"
	"time"
)

func TestLatencyTrackerNeedsSamples(t *testing.T) {
	tr := newLatencyTracker(0.95)
	if _, ok := tr.threshold("CG"); ok {
		t.Fatal("threshold available with zero samples")
	}
	for i := 0; i < hedgeMinSample-1; i++ {
		tr.observe("CG", time.Second)
	}
	if _, ok := tr.threshold("CG"); ok {
		t.Fatalf("threshold available with %d samples (min %d)", hedgeMinSample-1, hedgeMinSample)
	}
	tr.observe("CG", time.Second)
	if _, ok := tr.threshold("CG"); !ok {
		t.Fatal("threshold unavailable at the sample minimum")
	}
	// Labels are independent.
	if _, ok := tr.threshold("MG"); ok {
		t.Fatal("threshold leaked across labels")
	}
}

func TestLatencyTrackerPercentile(t *testing.T) {
	tr := newLatencyTracker(0.95)
	// 1ms..10ms: p95 index = int(9 * 0.95) = 8 → 9ms; threshold 13.5ms.
	for i := 1; i <= 10; i++ {
		tr.observe("CG", time.Duration(i)*time.Millisecond)
	}
	th, ok := tr.threshold("CG")
	if !ok {
		t.Fatal("no threshold after 10 samples")
	}
	if want := time.Duration(13.5 * float64(time.Millisecond)); th != want {
		t.Fatalf("threshold = %s, want %s", th, want)
	}
}

func TestLatencyTrackerWindowWraps(t *testing.T) {
	tr := newLatencyTracker(0.5)
	// Fill the window with slow samples, then overwrite it entirely with
	// fast ones: the threshold must forget the slow era.
	for i := 0; i < latencyWindow; i++ {
		tr.observe("CG", time.Minute)
	}
	for i := 0; i < latencyWindow; i++ {
		tr.observe("CG", time.Millisecond)
	}
	th, ok := tr.threshold("CG")
	if !ok {
		t.Fatal("no threshold")
	}
	if th > 10*time.Millisecond {
		t.Fatalf("threshold %s still remembers evicted slow samples", th)
	}
}

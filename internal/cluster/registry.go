package cluster

import (
	"sort"
	"sync"
	"time"
)

// Worker health states. A worker is live while heartbeats arrive on
// time, suspect once it has missed enough of them, and dead past the
// hard deadline. Since dispatch went pull-based the registry is
// visibility and hedging input only — nothing on the claim path reads
// it; lease expiry alone recovers work from a dead worker.
const (
	WorkerLive    = "live"
	WorkerSuspect = "suspect"
	WorkerDead    = "dead"
)

// workerHandle is the registry's record of one worker. All fields are
// guarded by the registry mutex.
type workerHandle struct {
	id       string
	addr     string
	capacity int

	state    string
	lastBeat time.Time
	queued   int // last heartbeat's report
	running  int
}

// Registry tracks the fleet: registration, heartbeats, and the
// live→suspect→dead state machine. The clock is injectable so the
// failure detector is testable without real waiting.
type Registry struct {
	mu           sync.Mutex
	workers      map[string]*workerHandle
	now          func() time.Time
	suspectAfter time.Duration
	deadAfter    time.Duration
}

func newRegistry(suspectAfter, deadAfter time.Duration, now func() time.Time) *Registry {
	return &Registry{
		workers:      map[string]*workerHandle{},
		now:          now,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
}

// register installs (or replaces) a worker.
func (r *Registry) register(m Register) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[m.ID] = &workerHandle{
		id:       m.ID,
		addr:     m.Addr,
		capacity: m.Capacity,
		state:    WorkerLive,
		lastBeat: r.now(),
	}
}

// heartbeat refreshes a worker's deadline and load report. It returns
// false for unknown or already-dead workers — the ack tells the agent
// to re-register, which is the only way back from the dead.
func (r *Registry) heartbeat(m Heartbeat) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[m.ID]
	if !ok || w.state == WorkerDead {
		return false
	}
	w.state = WorkerLive // a suspect that beats again recovers
	w.lastBeat = r.now()
	w.queued = m.Queued
	w.running = m.Running
	w.capacity = m.Capacity
	return true
}

// sweep advances the failure detector: workers past suspectAfter turn
// suspect, workers past deadAfter turn dead. It returns the ids newly
// declared dead.
func (r *Registry) sweep() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var died []string
	now := r.now()
	for _, w := range r.workers {
		if w.state == WorkerDead {
			continue
		}
		silent := now.Sub(w.lastBeat)
		switch {
		case silent > r.deadAfter:
			w.state = WorkerDead
			died = append(died, w.id)
		case silent > r.suspectAfter:
			w.state = WorkerSuspect
		}
	}
	sort.Strings(died)
	return died
}

// counts reports how many workers sit in each state.
func (r *Registry) counts() (live, suspect, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		switch w.state {
		case WorkerLive:
			live++
		case WorkerSuspect:
			suspect++
		default:
			dead++
		}
	}
	return live, suspect, dead
}

// WorkerView is the JSON shape of a worker in GET /cluster/workers.
type WorkerView struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Capacity int    `json:"capacity"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	BeatAge  int64  `json:"last_heartbeat_ms"` // ms since the last heartbeat
}

// views snapshots every worker, sorted by id.
func (r *Registry) views() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerView, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerView{
			ID:       w.id,
			Addr:     w.addr,
			State:    w.state,
			Capacity: w.capacity,
			Queued:   w.queued,
			Running:  w.running,
			BeatAge:  now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

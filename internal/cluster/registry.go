package cluster

import (
	"sort"
	"sync"
	"time"
)

// Worker health states. A worker is live while heartbeats arrive on
// time, suspect once it has missed enough of them, and dead past the
// hard deadline — at which point its dead channel closes and every
// in-flight dispatch on it fails over to a survivor.
const (
	WorkerLive    = "live"
	WorkerSuspect = "suspect"
	WorkerDead    = "dead"
)

// workerHandle is the registry's record of one worker. All fields are
// guarded by the registry mutex; the dead channel is closed exactly once
// (by sweep, or by a re-registration replacing the handle).
type workerHandle struct {
	id       string
	addr     string
	capacity int

	state    string
	lastBeat time.Time
	queued   int // last heartbeat's report
	running  int
	assigned int             // coordinator-known in-flight dispatches
	inflight map[string]int  // cache key → dispatch count on this worker
	dead     chan struct{}   // closed when the worker is declared dead
}

// load is the dispatch-ordering score: work per unit of capacity. The
// assigned term covers dispatches the worker's own gauges have not
// reflected yet (its heartbeat lags the hand-off), at the cost of
// briefly double-counting once they do — a bias toward spreading load,
// which is the bias we want.
func (w *workerHandle) load() float64 {
	return float64(w.queued+w.running+w.assigned) / float64(w.capacity)
}

// Registry tracks the fleet: registration, heartbeats, and the
// live→suspect→dead state machine. The clock is injectable so the
// failure detector is testable without real waiting.
type Registry struct {
	mu           sync.Mutex
	workers      map[string]*workerHandle
	now          func() time.Time
	suspectAfter time.Duration
	deadAfter    time.Duration
}

func newRegistry(suspectAfter, deadAfter time.Duration, now func() time.Time) *Registry {
	return &Registry{
		workers:      map[string]*workerHandle{},
		now:          now,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
}

// register installs (or replaces) a worker. Replacing an existing handle
// closes its dead channel first, so dispatches still waiting on the old
// incarnation fail over instead of polling a process that no longer
// owns their jobs.
func (r *Registry) register(m Register) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.workers[m.ID]; ok {
		closeDead(old)
	}
	r.workers[m.ID] = &workerHandle{
		id:       m.ID,
		addr:     m.Addr,
		capacity: m.Capacity,
		state:    WorkerLive,
		lastBeat: r.now(),
		inflight: map[string]int{},
		dead:     make(chan struct{}),
	}
}

// heartbeat refreshes a worker's deadline and load report. It returns
// false for unknown or already-dead workers — the ack tells the agent
// to re-register, which is the only way back from the dead (a fresh
// handle with a fresh dead channel).
func (r *Registry) heartbeat(m Heartbeat) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[m.ID]
	if !ok || w.state == WorkerDead {
		return false
	}
	w.state = WorkerLive // a suspect that beats again recovers
	w.lastBeat = r.now()
	w.queued = m.Queued
	w.running = m.Running
	w.capacity = m.Capacity
	return true
}

// sweep advances the failure detector: workers past suspectAfter turn
// suspect, workers past deadAfter turn dead (closing their dead
// channel). It returns the ids newly declared dead.
func (r *Registry) sweep() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var died []string
	now := r.now()
	for _, w := range r.workers {
		if w.state == WorkerDead {
			continue
		}
		silent := now.Sub(w.lastBeat)
		switch {
		case silent > r.deadAfter:
			w.state = WorkerDead
			closeDead(w)
			died = append(died, w.id)
		case silent > r.suspectAfter:
			w.state = WorkerSuspect
		}
	}
	sort.Strings(died)
	return died
}

// pick returns the least-loaded dispatchable worker not in exclude, or
// nil when none exists. Live workers are preferred; suspects are a
// last resort (they may only be slow, and a wrong guess costs latency,
// not correctness). Ties break on id so scheduling is deterministic.
func (r *Registry) pick(exclude map[string]bool) *workerHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerHandle
	better := func(w, b *workerHandle) bool {
		if b == nil {
			return true
		}
		if w.state != b.state {
			return w.state == WorkerLive
		}
		if w.load() != b.load() {
			return w.load() < b.load()
		}
		return w.id < b.id
	}
	for _, w := range r.workers {
		if w.state == WorkerDead || exclude[w.id] {
			continue
		}
		if better(w, best) {
			best = w
		}
	}
	return best
}

// assign records an in-flight dispatch on a worker (for load scoring and
// the /cluster/workers view).
func (r *Registry) assign(w *workerHandle, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.assigned++
	w.inflight[key]++
}

// release undoes assign once the dispatch settles.
func (r *Registry) release(w *workerHandle, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.assigned--
	if w.inflight[key]--; w.inflight[key] <= 0 {
		delete(w.inflight, key)
	}
}

// counts reports how many workers sit in each state.
func (r *Registry) counts() (live, suspect, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		switch w.state {
		case WorkerLive:
			live++
		case WorkerSuspect:
			suspect++
		default:
			dead++
		}
	}
	return live, suspect, dead
}

// WorkerView is the JSON shape of a worker in GET /cluster/workers.
type WorkerView struct {
	ID       string   `json:"id"`
	Addr     string   `json:"addr"`
	State    string   `json:"state"`
	Capacity int      `json:"capacity"`
	Queued   int      `json:"queued"`
	Running  int      `json:"running"`
	Assigned int      `json:"assigned"`
	Inflight []string `json:"inflight"`          // cache keys dispatched here
	BeatAge  int64    `json:"last_heartbeat_ms"` // ms since the last heartbeat
}

// views snapshots every worker, sorted by id.
func (r *Registry) views() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerView, 0, len(r.workers))
	for _, w := range r.workers {
		keys := make([]string, 0, len(w.inflight))
		for k := range w.inflight {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, WorkerView{
			ID:       w.id,
			Addr:     w.addr,
			State:    w.state,
			Capacity: w.capacity,
			Queued:   w.queued,
			Running:  w.running,
			Assigned: w.assigned,
			Inflight: keys,
			BeatAge:  now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// closeDead closes a handle's dead channel if it still is open. Caller
// holds the registry mutex.
func closeDead(w *workerHandle) {
	select {
	case <-w.dead:
	default:
		close(w.dead)
	}
}

package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// claimKey makes a distinct well-formed cache key per test fixture.
func claimKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func testTable(lease time.Duration, maxAttempts int) (*ClaimTable, *fakeClock) {
	clk := newFakeClock()
	return newClaimTable(clk.now, lease, maxAttempts), clk
}

func TestClaimLifecycle(t *testing.T) {
	tb, _ := testTable(10*time.Second, 3)
	key := claimKey(1)
	done := tb.Enqueue(key, "run/CG", "default", 0, json.RawMessage(`{"kind":"run"}`))

	g, ok := tb.Claim("w1")
	if !ok {
		t.Fatal("pending claim not granted")
	}
	if g.Key != key || g.Attempt != 1 || g.LeaseMs != 10_000 {
		t.Fatalf("grant = %+v", g)
	}
	if _, ok := tb.Claim("w2"); ok {
		t.Fatal("second worker claimed a live lease without a hedge")
	}
	if !tb.Renew("w1", key, 1) {
		t.Fatal("holder's renew refused")
	}
	if tb.Renew("w2", key, 1) || tb.Renew("w1", key, 2) {
		t.Fatal("renew accepted for wrong worker or wrong attempt")
	}

	if !tb.Report("w1", key, 1, ClaimDone, []byte("BYTES"), "") {
		t.Fatal("terminal report rejected")
	}
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed after settle")
	}
	b, errMsg, ok := tb.Result(key)
	if !ok || errMsg != "" || string(b) != "BYTES" {
		t.Fatalf("Result = %q %q %v", b, errMsg, ok)
	}
	ctr := tb.Counters()
	if ctr.Granted != 1 || ctr.Done != 1 || ctr.Failed != 0 || ctr.Expirations != 0 {
		t.Fatalf("counters = %+v", ctr)
	}

	// Re-enqueueing a done entry with bytes returns a closed channel.
	again := tb.Enqueue(key, "run/CG", "default", 0, nil)
	select {
	case <-again:
	default:
		t.Fatal("re-enqueue of a done claim did not return a settled channel")
	}
}

// TestExpiredLeaseReclaimedExactlyOnce is the HA invariant: when a lease
// expires, any number of concurrent claimers may race for it, but
// exactly one wins and the attempt is bumped exactly once.
func TestExpiredLeaseReclaimedExactlyOnce(t *testing.T) {
	tb, clk := testTable(time.Second, 10)
	key := claimKey(2)
	tb.Enqueue(key, "run/CG", "default", 0, nil)
	if g, ok := tb.Claim("w0"); !ok || g.Attempt != 1 {
		t.Fatalf("first claim: ok=%v grant=%+v", ok, g)
	}

	clk.advance(2 * time.Second) // the lease is now expired

	const racers = 16
	var wg sync.WaitGroup
	grants := make(chan ClaimGrant, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if g, ok := tb.Claim(fmt.Sprintf("racer-%d", i)); ok {
				grants <- g
			}
		}(i)
	}
	wg.Wait()
	close(grants)

	var won []ClaimGrant
	for g := range grants {
		won = append(won, g)
	}
	if len(won) != 1 {
		t.Fatalf("%d racers reclaimed the expired lease, want exactly 1", len(won))
	}
	if won[0].Attempt != 2 {
		t.Fatalf("reclaim attempt = %d, want 2", won[0].Attempt)
	}
	if ctr := tb.Counters(); ctr.Expirations != 1 || ctr.Granted != 2 {
		t.Fatalf("counters after racing reclaim: %+v", ctr)
	}
}

func TestClaimAttemptMonotonicAndBudget(t *testing.T) {
	tb, clk := testTable(time.Second, 3)
	key := claimKey(3)
	done := tb.Enqueue(key, "run/CG", "default", 0, nil)

	// Burn the whole budget through expiry reclaims; the attempt must
	// climb strictly, never repeat or regress.
	for want := 1; want <= 3; want++ {
		g, ok := tb.Claim("w1")
		if !ok || g.Attempt != want {
			t.Fatalf("claim %d: ok=%v attempt=%d", want, ok, g.Attempt)
		}
		clk.advance(2 * time.Second)
	}

	// The fourth lease would exceed the budget: the entry fails instead.
	if _, ok := tb.Claim("w1"); ok {
		t.Fatal("claim granted past the attempt budget")
	}
	select {
	case <-done:
	default:
		t.Fatal("budget exhaustion did not settle the claim")
	}
	_, errMsg, ok := tb.Result(key)
	if !ok || errMsg == "" {
		t.Fatalf("exhausted claim: ok=%v err=%q, want a terminal failure", ok, errMsg)
	}
	if ctr := tb.Counters(); ctr.Failed != 1 {
		t.Fatalf("counters = %+v, want Failed=1", ctr)
	}
}

// TestDoubleTerminalCollapse: when an expired lease is reclaimed and the
// original holder later reports anyway, the two terminal reports
// collapse to one settled result and one duplicate.
func TestDoubleTerminalCollapse(t *testing.T) {
	tb, clk := testTable(time.Second, 5)
	key := claimKey(4)
	tb.Enqueue(key, "run/CG", "default", 0, nil)
	tb.Claim("slow") // attempt 1
	clk.advance(2 * time.Second)
	tb.Claim("fast") // attempt 2 reclaims

	if !tb.Report("fast", key, 2, ClaimDone, []byte("SAME-BYTES"), "") {
		t.Fatal("winning report rejected")
	}
	// The superseded worker's report — byte-identical by determinism —
	// must be discarded as a duplicate, not double-settle.
	if tb.Report("slow", key, 1, ClaimDone, []byte("SAME-BYTES"), "") {
		t.Fatal("duplicate terminal report accepted")
	}
	b, _, _ := tb.Result(key)
	if string(b) != "SAME-BYTES" {
		t.Fatalf("result = %q", b)
	}
	if ctr := tb.Counters(); ctr.Done != 1 || ctr.Duplicate != 1 {
		t.Fatalf("counters = %+v, want Done=1 Duplicate=1", ctr)
	}
}

// A late report from a superseded lease still settles the claim when it
// arrives first — first terminal wins regardless of attempt.
func TestSupersededReportStillWins(t *testing.T) {
	tb, clk := testTable(time.Second, 5)
	key := claimKey(5)
	tb.Enqueue(key, "run/CG", "default", 0, nil)
	tb.Claim("slow")
	clk.advance(2 * time.Second)
	tb.Claim("fast")

	if !tb.Report("slow", key, 1, ClaimDone, []byte("OLD-ATTEMPT"), "") {
		t.Fatal("first terminal report (old attempt) rejected")
	}
	b, _, ok := tb.Result(key)
	if !ok || string(b) != "OLD-ATTEMPT" {
		t.Fatalf("result = %q ok=%v", b, ok)
	}
}

func TestHedgeOpensSecondClaim(t *testing.T) {
	tb, _ := testTable(10*time.Second, 5)
	key := claimKey(6)
	tb.Enqueue(key, "run/CG", "default", 0, nil)
	tb.Claim("primary")

	if !tb.MarkHedgeable(key) {
		t.Fatal("MarkHedgeable refused a live claim")
	}
	// The primary itself can't hedge its own lease.
	if _, ok := tb.Claim("primary"); ok {
		t.Fatal("holder claimed its own hedge")
	}
	g, ok := tb.Claim("hedger")
	if !ok || g.Attempt != 2 {
		t.Fatalf("hedge claim: ok=%v grant=%+v", ok, g)
	}
	// One hedge only: a third worker gets nothing.
	if _, ok := tb.Claim("third"); ok {
		t.Fatal("second hedge granted")
	}

	tb.Report("hedger", key, 2, ClaimDone, []byte("HEDGE"), "")
	ctr := tb.Counters()
	if ctr.Contention != 1 || ctr.HedgesWon != 1 || ctr.Done != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestSweepLeasesRePendsAndPrunes(t *testing.T) {
	tb, clk := testTable(time.Second, 5)
	expiredKey, doneKey := claimKey(7), claimKey(8)
	tb.Enqueue(expiredKey, "run/CG", "default", 0, nil)
	tb.Claim("w1")
	tb.Enqueue(doneKey, "run/CG", "default", 0, nil)
	tb.Claim("w2")
	tb.Report("w2", doneKey, 1, ClaimDone, []byte("B"), "")

	clk.advance(2 * time.Second)
	if n := tb.SweepLeases(); n != 1 {
		t.Fatalf("sweep expired %d leases, want 1", n)
	}
	// The expired claim is pending again and immediately claimable.
	if g, ok := tb.Claim("w3"); !ok || g.Key != expiredKey || g.Attempt != 2 {
		t.Fatalf("post-sweep claim: ok=%v grant=%+v", ok, g)
	}

	// Terminal entries outlive the sweep until the retain window passes.
	if _, _, ok := tb.Result(doneKey); !ok {
		t.Fatal("settled entry pruned too early")
	}
	clk.advance(terminalRetain + time.Minute)
	tb.SweepLeases()
	if _, _, ok := tb.Result(doneKey); ok {
		t.Fatal("settled entry survived past the retain window")
	}
}

func TestMergePrecedence(t *testing.T) {
	tb, _ := testTable(10*time.Second, 5)

	// An unknown incoming claim is inserted.
	k1 := claimKey(10)
	tb.Merge([]ClaimRecord{{Key: k1, Label: "run/CG", State: ClaimClaimed, ClaimedBy: "peer-w", Attempt: 2, ExpiresMs: 99}})
	vs := tb.Views()
	if len(vs) != 1 || vs[0].State != ClaimClaimed || vs[0].Attempt != 2 {
		t.Fatalf("merge insert: %+v", vs)
	}

	// A lower-attempt incoming state never regresses the local entry.
	tb.Merge([]ClaimRecord{{Key: k1, Label: "run/CG", State: ClaimPending, Attempt: 1}})
	if vs := tb.Views(); vs[0].Attempt != 2 || vs[0].State != ClaimClaimed {
		t.Fatalf("merge regressed entry: %+v", vs[0])
	}

	// An incoming terminal state settles the local entry (without
	// recounting: the peer already counted the settle).
	done := tb.Enqueue(k1, "run/CG", "default", 0, nil)
	tb.Merge([]ClaimRecord{{Key: k1, Label: "run/CG", State: ClaimDone, Attempt: 3, Result: []byte("PEER-BYTES")}})
	select {
	case <-done:
	default:
		t.Fatal("incoming terminal state did not settle the local claim")
	}
	if b, _, ok := tb.Result(k1); !ok || string(b) != "PEER-BYTES" {
		t.Fatalf("merged result = %q ok=%v", b, ok)
	}
	if ctr := tb.Counters(); ctr.Done != 0 {
		t.Fatalf("peer-settled claim counted locally: %+v", ctr)
	}

	// A local terminal state beats any incoming non-terminal churn.
	tb.Merge([]ClaimRecord{{Key: k1, Label: "run/CG", State: ClaimClaimed, ClaimedBy: "x", Attempt: 9, ExpiresMs: 1}})
	if b, _, ok := tb.Result(k1); !ok || string(b) != "PEER-BYTES" {
		t.Fatalf("incoming churn un-settled a terminal claim: %q %v", b, ok)
	}

	// Merge commutes: A→B and B→A converge to the same table.
	mkRecords := func() ([]ClaimRecord, []ClaimRecord) {
		a := []ClaimRecord{
			{Key: claimKey(11), Label: "l", State: ClaimClaimed, ClaimedBy: "w1", Attempt: 1, ExpiresMs: 50},
			{Key: claimKey(12), Label: "l", State: ClaimDone, Attempt: 1, Result: []byte("R")},
		}
		b := []ClaimRecord{
			{Key: claimKey(11), Label: "l", State: ClaimClaimed, ClaimedBy: "w2", Attempt: 2, ExpiresMs: 60},
			{Key: claimKey(12), Label: "l", State: ClaimPending, Attempt: 1},
		}
		return a, b
	}
	ta, _ := testTable(10*time.Second, 5)
	tbb, _ := testTable(10*time.Second, 5)
	a, b := mkRecords()
	ta.Merge(a)
	ta.Merge(b)
	tbb.Merge(b)
	tbb.Merge(a)
	va, vb := ta.Views(), tbb.Views()
	if len(va) != len(vb) {
		t.Fatalf("merge order changed table size: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("merge does not commute: %+v vs %+v", va[i], vb[i])
		}
	}
}

func TestEnqueueResurrectsFailedClaim(t *testing.T) {
	tb, _ := testTable(10*time.Second, 1)
	key := claimKey(13)
	tb.Enqueue(key, "run/CG", "default", 0, nil)
	tb.Claim("w1")
	tb.Report("w1", key, 1, ClaimFailed, nil, "transient crash")

	// A fresh submission gets a fresh claim with a reset budget.
	done := tb.Enqueue(key, "run/CG", "default", 0, nil)
	select {
	case <-done:
		t.Fatal("resurrected claim came back already settled")
	default:
	}
	if g, ok := tb.Claim("w2"); !ok || g.Attempt != 1 {
		t.Fatalf("resurrected claim: ok=%v grant=%+v", ok, g)
	}
}

// TestSeedRestoresLeases: a restarted coordinator replays its journal
// and the interrupted lease expires on schedule, not immediately.
func TestSeedRestoresLeases(t *testing.T) {
	tb, clk := testTable(time.Second, 5)
	key := claimKey(14)
	tb.seed([]store.Record{
		{Key: key, State: ClaimClaimed, Label: "run/CG", ClaimedBy: "w1", ClaimAttempt: 2, ClaimExpiresAt: clk.now().Add(500 * time.Millisecond).UnixMilli()},
	})

	// Lease still live: nobody can steal it.
	if _, ok := tb.Claim("w2"); ok {
		t.Fatal("restored live lease was stolen")
	}
	clk.advance(time.Second)
	g, ok := tb.Claim("w2")
	if !ok || g.Attempt != 3 {
		t.Fatalf("restored lease not reclaimed after expiry: ok=%v grant=%+v", ok, g)
	}
}

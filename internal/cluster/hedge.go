package cluster

import (
	"sort"
	"sync"
	"time"
)

// Hedging policy: once a dispatch has run longer than a per-kernel
// latency percentile (times a slack factor), the coordinator launches a
// second copy on another worker and takes whichever result lands first.
// Determinism makes the race safe — both copies produce the same bytes
// — so hedging buys tail latency without risking correctness.
const (
	latencyWindow  = 64   // completions remembered per label
	hedgeMinSample = 8    // below this, no data-driven hedging
	hedgeSlack     = 1.5  // threshold = percentile × slack
)

// latencyTracker keeps a ring buffer of recent completion latencies per
// job label and answers "how long is suspiciously long for this kind of
// job?".
type latencyTracker struct {
	mu         sync.Mutex
	percentile float64 // e.g. 0.95
	byLabel    map[string]*ring
}

type ring struct {
	buf  [latencyWindow]time.Duration
	n    int // total observations ever
	next int // write cursor
}

func newLatencyTracker(percentile float64) *latencyTracker {
	return &latencyTracker{percentile: percentile, byLabel: map[string]*ring{}}
}

// observe records one successful completion latency for a label.
func (t *latencyTracker) observe(label string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.byLabel[label]
	if r == nil {
		r = &ring{}
		t.byLabel[label] = r
	}
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	r.n++
}

// threshold returns the hedge trigger for a label: the configured
// percentile of recent latencies times the slack factor. ok is false
// until enough samples have accumulated — hedging on guesswork would
// double the fleet's work for nothing.
func (t *latencyTracker) threshold(label string) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.byLabel[label]
	if r == nil || r.n < hedgeMinSample {
		return 0, false
	}
	n := r.n
	if n > latencyWindow {
		n = latencyWindow
	}
	sorted := make([]time.Duration, n)
	copy(sorted, r.buf[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(n-1) * t.percentile)
	return time.Duration(float64(sorted[idx]) * hedgeSlack), true
}

package cache

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T) *Cache {
	t.Helper()
	return New("t", 16*1024, 2, 64) // 128 sets
}

func TestGeometry(t *testing.T) {
	c := mk(t)
	if c.Sets() != 128 || c.Assoc() != 2 {
		t.Fatalf("sets=%d assoc=%d", c.Sets(), c.Assoc())
	}
	if c.LineOf(0) != 0 || c.LineOf(63) != 0 || c.LineOf(64) != 1 {
		t.Fatal("LineOf wrong for 64B lines")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, assoc, line int }{
		{16 * 1024, 2, 48}, // non-power-of-two line
		{3 * 1000, 2, 64},  // non-power-of-two sets
		{64, 2, 64},        // zero sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", tc.size, tc.assoc, tc.line)
				}
			}()
			New("bad", tc.size, tc.assoc, tc.line)
		}()
	}
}

func TestInsertLookup(t *testing.T) {
	c := mk(t)
	l, _, ev := c.Insert(5, Shared)
	if ev {
		t.Fatal("eviction from empty cache")
	}
	if l.Tag != 5 || l.State != Shared {
		t.Fatalf("inserted line = %+v", *l)
	}
	got := c.Lookup(5)
	if got == nil || got.Tag != 5 {
		t.Fatal("lookup after insert missed")
	}
	if c.Lookup(6) != nil {
		t.Fatal("lookup of absent line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", 2*2*64, 2, 64) // 2 sets, 2 ways
	// Lines 0, 2, 4 all map to set 0.
	c.Insert(0, Shared)
	c.Insert(2, Shared)
	c.Lookup(0) // make line 2 the LRU
	_, victim, ev := c.Insert(4, Shared)
	if !ev || victim.Tag != 2 {
		t.Fatalf("evicted %+v (ev=%v), want tag 2", victim, ev)
	}
	if c.Peek(0) == nil || c.Peek(4) == nil || c.Peek(2) != nil {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestEvictionPrefersInvalidWay(t *testing.T) {
	c := New("t", 2*2*64, 2, 64)
	c.Insert(0, Shared)
	c.Insert(2, Modified)
	c.Invalidate(0)
	_, _, ev := c.Insert(4, Shared)
	if ev {
		t.Fatal("evicted a line while an invalid way was available")
	}
	if c.Peek(2) == nil {
		t.Fatal("valid line lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := mk(t)
	c.Insert(9, Modified)
	old, was := c.Invalidate(9)
	if !was || old.State != Modified || old.Tag != 9 {
		t.Fatalf("invalidate returned %+v, %v", old, was)
	}
	if c.Peek(9) != nil {
		t.Fatal("line still resident after invalidate")
	}
	if _, was := c.Invalidate(9); was {
		t.Fatal("double invalidate reported residency")
	}
}

func TestPeekDoesNotBumpLRU(t *testing.T) {
	c := New("t", 2*2*64, 2, 64)
	c.Insert(0, Shared)
	c.Insert(2, Shared)
	c.Peek(0) // must NOT protect line 0
	_, victim, ev := c.Insert(4, Shared)
	if !ev || victim.Tag != 0 {
		t.Fatalf("evicted tag %d, want 0 (Peek must not bump LRU)", victim.Tag)
	}
}

func TestLineMetadataResetOnInsert(t *testing.T) {
	c := mk(t)
	l, _, _ := c.Insert(1, Shared)
	l.UsedByPair = true
	l.FilledBy = 3
	l.L1Mask = 3
	c.Invalidate(1)
	l2, _, _ := c.Insert(1, Modified)
	if l2.UsedByPair || l2.FilledBy != -1 || l2.L1Mask != 0 || l2.L1Dirty != -1 {
		t.Fatalf("metadata not reset: %+v", *l2)
	}
}

func TestForEachResident(t *testing.T) {
	c := mk(t)
	c.Insert(1, Shared)
	c.Insert(200, Modified)
	c.Insert(300, Shared)
	c.Invalidate(200)
	n := 0
	c.ForEachResident(func(l *Line) { n++ })
	if n != 2 {
		t.Fatalf("resident count = %d, want 2", n)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state mnemonics wrong")
	}
}

// Property: a cache never holds two copies of the same tag, and never holds
// more than assoc lines per set, under arbitrary insert/invalidate traffic.
func TestPropertyNoDuplicatesNoOverflow(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New("q", 8*2*64, 2, 64) // 8 sets, 2 ways
		for _, op := range ops {
			line := uint64(op % 64)
			if op%3 == 0 {
				c.Invalidate(line)
			} else if c.Peek(line) == nil {
				c.Insert(line, Shared)
			}
		}
		seen := map[uint64]int{}
		c.ForEachResident(func(l *Line) { seen[l.Tag]++ })
		for tag, n := range seen {
			if n > 1 {
				t.Logf("tag %d resident %d times", tag, n)
				return false
			}
			if c.Peek(tag) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting a line it is always resident until invalidated
// or evicted, and eviction only happens when the set is full.
func TestPropertyInsertThenFound(t *testing.T) {
	f := func(lines []uint8) bool {
		c := New("q", 4*4*64, 4, 64) // 4 sets, 4 ways
		for _, ln := range lines {
			line := uint64(ln)
			if c.Peek(line) != nil {
				continue
			}
			l, _, _ := c.Insert(line, Modified)
			if l.Tag != line || c.Peek(line) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

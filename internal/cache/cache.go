// Package cache implements the set-associative write-back caches of the
// simulated machine: per-processor split L1s and the per-CMP unified L2
// shared by the two processors of a node (paper Table 1).
//
// Caches store timing state only — data values live in the shmem backing
// store. Each L2 line carries the metadata needed to classify shared-memory
// requests the way the paper's Figures 3 and 5 do (A-Timely / A-Late /
// A-Only and the R-stream equivalents), plus L1 presence bits so the L2 can
// maintain inclusion over its two L1s.
package cache

import "fmt"

// State is a cache line coherence state (MSI).
type State uint8

// Line states. Shared lines are clean and possibly replicated; Modified
// lines are dirty and exclusive system-wide.
const (
	Invalid State = iota
	Shared
	Modified
)

// String returns the state mnemonic.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// FillKind records what transaction filled an L2 line (for classification).
type FillKind uint8

// Fill kinds: no record, a read (shared) fill, or a read-exclusive fill.
const (
	FillNone FillKind = iota
	FillRead
	FillReadEx
)

// Line is one cache line's tag and metadata.
type Line struct {
	Tag     uint64 // line number (address >> lineShift); valid iff State != Invalid
	State   State
	lastUse uint64

	// L2-only: classification of the fill that brought the line in.
	FilledBy   int    // global proc index of the requester, -1 if untracked
	FillDone   uint64 // simulation time at which the fill completes
	FillKindV  FillKind
	UsedByPair bool // the requester's slipstream partner touched the line
	Prefetch   bool // fill was an A-stream prefetch (store conversion)

	// L2-only: inclusion tracking over the node's two L1s.
	L1Mask  uint8 // bit c set => local cpu c's L1 holds the line
	L1Dirty int8  // local cpu holding the line dirty in L1, -1 if none
}

// reset clears a line for reuse by a new tag.
func (l *Line) reset(tag uint64, st State, use uint64) {
	*l = Line{Tag: tag, State: st, lastUse: use, FilledBy: -1, L1Dirty: -1}
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	name      string
	lineShift uint
	setMask   uint64
	assoc     int
	nsets     int
	lines     []Line // nsets * assoc, set-major
	useClock  uint64

	// Counters.
	Hits   uint64
	Misses uint64
	Evicts uint64
}

// New builds a cache of sizeBytes with the given associativity and line
// size. sizeBytes must be assoc*lineBytes*2^k for integer k.
func New(name string, sizeBytes, assoc, lineBytes int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", name, lineBytes))
	}
	nsets := sizeBytes / (assoc * lineBytes)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %dB/%d-way/%dB-line gives %d sets (must be power of two)",
			name, sizeBytes, assoc, lineBytes, nsets))
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
	}
	c := &Cache{
		name:      name,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
		assoc:     assoc,
		nsets:     nsets,
		lines:     make([]Line, nsets*assoc),
	}
	for i := range c.lines {
		c.lines[i].FilledBy = -1
		c.lines[i].L1Dirty = -1
	}
	return c
}

// Name returns the cache's debug name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// LineOf maps an address to its line number.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// set returns the slice of ways for a line number.
func (c *Cache) set(line uint64) []Line {
	s := int(line & c.setMask)
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup finds a resident line and bumps its LRU position. Returns nil on
// miss. Lookup does not update hit/miss counters; the caller decides what
// counts as a demand access.
func (c *Cache) Lookup(line uint64) *Line {
	ways := c.set(line)
	for i := range ways {
		if ways[i].State != Invalid && ways[i].Tag == line {
			c.useClock++
			ways[i].lastUse = c.useClock
			return &ways[i]
		}
	}
	return nil
}

// Peek finds a resident line without disturbing LRU state.
func (c *Cache) Peek(line uint64) *Line {
	ways := c.set(line)
	for i := range ways {
		if ways[i].State != Invalid && ways[i].Tag == line {
			return &ways[i]
		}
	}
	return nil
}

// Insert allocates a way for line (which must not be resident), evicting
// the LRU way if needed. It returns the new line (already reset, in state
// st) and, when an eviction occurred, a copy of the victim's metadata.
func (c *Cache) Insert(line uint64, st State) (l *Line, victim Line, evicted bool) {
	ways := c.set(line)
	var slot *Line
	for i := range ways {
		if ways[i].State == Invalid {
			slot = &ways[i]
			break
		}
	}
	if slot == nil {
		slot = &ways[0]
		for i := 1; i < len(ways); i++ {
			if ways[i].lastUse < slot.lastUse {
				slot = &ways[i]
			}
		}
		victim = *slot
		evicted = true
		c.Evicts++
	}
	c.useClock++
	slot.reset(line, st, c.useClock)
	return slot, victim, evicted
}

// Invalidate removes line if resident, returning a copy of its prior
// metadata and whether it was resident.
func (c *Cache) Invalidate(line uint64) (old Line, was bool) {
	if l := c.Peek(line); l != nil {
		old = *l
		l.State = Invalid
		return old, true
	}
	return Line{}, false
}

// ForEachResident calls fn for every valid line (used for end-of-run
// classification of prefetched-but-never-used lines).
func (c *Cache) ForEachResident(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

package npb

import (
	"fmt"
	"sort"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// IS is the NPB integer-sort kernel (an extension: not part of the paper's
// Table 2, included to complete the NPB 2.3 kernel set). Each iteration
// histograms a key array into buckets — per-thread local counts merged
// through critical sections — a single thread prefix-sums the histogram,
// and a ranking pass computes each key's position. The histogram merge and
// the rank scatter are the communication.
//
// Substitution vs NPB 2.3: keys come from this package's LCG rather than
// NPB's generator, and the partial-verification step checks the full rank
// permutation against a serial sort instead of NPB's five probe keys.
type isSize struct {
	keys    int
	buckets int
	iters   int
}

func isSizeFor(s Scale) isSize {
	switch s {
	case ScaleTest:
		return isSize{keys: 4096, buckets: 64, iters: 1}
	case ScaleSmall:
		return isSize{keys: 16 * 1024, buckets: 128, iters: 2}
	default:
		return isSize{keys: 32 * 1024, buckets: 256, iters: 3}
	}
}

// BuildIS constructs the IS extension instance.
func BuildIS(rt *omp.Runtime, s Scale) *Instance {
	sz := isSizeFor(s)
	keys := rt.NewI64(sz.keys)
	hist := rt.NewI64(sz.buckets)
	ranks := rt.NewI64(sz.keys)
	g := newLCG(61)
	for i := 0; i < sz.keys; i++ {
		keys.Set(i, int64(g.intn(sz.buckets)))
	}

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				isRank(t, sz, keys, hist, ranks)
			})
		}
	}

	verify := func() error {
		want := isSerial(keys.Data(), sz.buckets)
		for i := range want {
			if ranks.Get(i) != want[i] {
				return fmt.Errorf("is.rank[%d] = %d, want %d", i, ranks.Get(i), want[i])
			}
		}
		return nil
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm: func() float64 {
			s := 0.0
			for _, v := range ranks.Data() {
				s += float64(v) * float64(v)
			}
			return s
		},
		Size: fmt.Sprintf("keys=%d buckets=%d iters=%d", sz.keys, sz.buckets, sz.iters),
	}
}

// isRank performs one ranking iteration.
func isRank(t *omp.Thread, sz isSize, keys, hist, ranks *shmem.I64) {
	// Clear the shared histogram.
	t.For(0, sz.buckets, func(b int) {
		t.StI(hist, b, 0)
	})
	// Local histogram per thread, merged under the critical section (the
	// NPB IS key_buff merge).
	local := make([]int64, sz.buckets)
	t.ForNowait(0, sz.keys, func(i int) {
		local[t.LdI(keys, i)]++
		t.Compute(2)
	})
	t.Critical(func() {
		for b := 0; b < sz.buckets; b++ {
			t.StI(hist, b, t.LdI(hist, b)+local[b])
			t.Compute(1)
		}
	})
	t.Barrier()
	// Exclusive prefix sum by one thread (NPB does this serially too).
	t.Single(func() {
		sum := int64(0)
		for b := 0; b < sz.buckets; b++ {
			c := t.LdI(hist, b)
			t.StI(hist, b, sum)
			sum += c
			t.Compute(2)
		}
	})
	t.Barrier()
	// Ranking: each key's rank is its bucket's base plus its index among
	// same-bucket keys that precede it. The within-bucket offset scan is
	// private per thread block boundary; for simplicity and determinism we
	// recompute offsets from the key array directly (O(keys) per thread
	// block, all reads).
	nth := t.Num()
	id := t.ID()
	lo := id * sz.keys / nth
	hi := (id + 1) * sz.keys / nth
	// Count, for each bucket, same-bucket keys before this block.
	before := make([]int64, sz.buckets)
	for i := 0; i < lo; i++ {
		before[t.LdI(keys, i)]++
		t.Compute(1)
	}
	for i := lo; i < hi; i++ {
		k := t.LdI(keys, i)
		base := t.LdI(hist, int(k))
		t.StI(ranks, i, base+before[k])
		before[k]++
		t.Compute(3)
	}
	t.Barrier()
}

// isSerial computes the reference ranks via a stable sort.
func isSerial(keys []int64, buckets int) []int64 {
	n := len(keys)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	ranks := make([]int64, n)
	for pos, i := range idx {
		ranks[i] = int64(pos)
	}
	return ranks
}

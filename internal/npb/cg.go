package npb

import (
	"fmt"
	"math"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// CG is the NPB conjugate-gradient kernel: repeated CG solves against an
// unstructured sparse symmetric matrix, dominated by the sparse
// matrix-vector product's irregular gathers and by dot-product reductions.
//
// Substitution vs NPB 2.3: the matrix comes from a deterministic
// diagonally-dominant sparse generator rather than NPB's makea (same CSR
// storage, same irregular column pattern driving remote traffic); sizes
// are reduced (paper class would be na=1400).
type cgSize struct {
	na     int // rows
	nzRow  int // off-diagonal nonzeros per row
	cgIts  int // inner CG iterations
	outers int // outer (power-method) iterations
}

func cgSizeFor(s Scale) cgSize {
	switch s {
	case ScaleTest:
		return cgSize{na: 192, nzRow: 6, cgIts: 3, outers: 1}
	case ScaleSmall:
		return cgSize{na: 512, nzRow: 8, cgIts: 6, outers: 1}
	default:
		return cgSize{na: 1400, nzRow: 8, cgIts: 15, outers: 2}
	}
}

// cgMatrix is a CSR sparse matrix in simulated shared memory.
type cgMatrix struct {
	n        int
	rowStart *shmem.I64 // n+1
	colIdx   *shmem.I64 // nnz
	val      *shmem.F64 // nnz
}

// buildCGMatrix generates the deterministic sparse matrix: each row has a
// dominant diagonal plus nzRow pseudo-random off-diagonals.
func buildCGMatrix(rt *omp.Runtime, n, nzRow int) *cgMatrix {
	g := newLCG(42)
	type entry struct {
		col int
		v   float64
	}
	rows := make([][]entry, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		var offSum float64
		for len(rows[i]) < nzRow {
			c := g.intn(n)
			if seen[c] {
				continue
			}
			seen[c] = true
			v := g.f64() - 0.5
			offSum += absf(v)
			rows[i] = append(rows[i], entry{c, v})
		}
		rows[i] = append(rows[i], entry{i, offSum + 1.5}) // diagonal dominance
	}
	nnz := 0
	for _, r := range rows {
		nnz += len(r)
	}
	m := &cgMatrix{
		n:        n,
		rowStart: rt.NewI64(n + 1),
		colIdx:   rt.NewI64(nnz),
		val:      rt.NewF64(nnz),
	}
	pos := 0
	for i, r := range rows {
		m.rowStart.Set(i, int64(pos))
		for _, e := range r {
			m.colIdx.Set(pos, int64(e.col))
			m.val.Set(pos, e.v)
			pos++
		}
	}
	m.rowStart.Set(n, int64(pos))
	return m
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BuildCG constructs the CG benchmark instance on rt.
func BuildCG(rt *omp.Runtime, s Scale) *Instance {
	sz := cgSizeFor(s)
	n := sz.na
	m := buildCGMatrix(rt, n, sz.nzRow)
	x := rt.NewF64(n)
	z := rt.NewF64(n)
	p := rt.NewF64(n)
	q := rt.NewF64(n)
	r := rt.NewF64(n)
	zeta := rt.NewF64(1)
	for i := 0; i < n; i++ {
		x.Set(i, 1)
	}

	program := func(mt *omp.Thread) {
		for outer := 0; outer < sz.outers; outer++ {
			mt.Parallel(func(t *omp.Thread) {
				cgSolve(t, m, x, z, p, q, r, sz.cgIts)
			})
			// Serial part: the master normalizes x = z/||z|| and records
			// zeta, as NPB's outer loop does.
			mt.Parallel(func(t *omp.Thread) {
				partial := 0.0
				t.ForNowait(0, n, func(i int) {
					zi := t.LdF(z, i)
					partial += zi * zi
					t.Compute(2)
				})
				norm := t.ReduceSumF(partial)
				inv := 1.0 / sqrt(norm)
				t.For(0, n, func(i int) {
					t.StF(x, i, t.LdF(z, i)*inv)
					t.Compute(2)
				})
				t.Master(func() { t.StF(zeta, 0, norm) })
				t.Barrier()
			})
		}
	}

	verify := func() error {
		want := cgSerial(m, sz)
		if err := compareArrays("cg.z", z.Data(), want, 1e-9); err != nil {
			return err
		}
		return nil
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(z.Data()) },
		Size:    fmt.Sprintf("na=%d nz/row=%d cgits=%d outer=%d", n, sz.nzRow+1, sz.cgIts, sz.outers),
	}
}

// cgSolve is the parallel CG inner solve: z ≈ A⁻¹x.
func cgSolve(t *omp.Thread, m *cgMatrix, x, z, p, q, r *shmem.F64, cgIts int) {
	n := m.n
	// Initialization: q=z=0, r=p=x.
	t.For(0, n, func(i int) {
		xi := t.LdF(x, i)
		t.StF(q, i, 0)
		t.StF(z, i, 0)
		t.StF(r, i, xi)
		t.StF(p, i, xi)
		t.Compute(2)
	})
	partial := 0.0
	t.ForNowait(0, n, func(i int) {
		ri := t.LdF(r, i)
		partial += ri * ri
		t.Compute(2)
	})
	rho := t.ReduceSumF(partial)

	for it := 0; it < cgIts; it++ {
		// q = A p — the irregular gather that generates remote traffic.
		t.For(0, n, func(i int) {
			lo := int(t.LdI(m.rowStart, i))
			hi := int(t.LdI(m.rowStart, i+1))
			sum := 0.0
			for k := lo; k < hi; k++ {
				c := int(t.LdI(m.colIdx, k))
				sum += t.LdF(m.val, k) * t.LdF(p, c)
				t.Compute(2)
			}
			t.StF(q, i, sum)
		})
		// d = p·q
		partial = 0.0
		t.ForNowait(0, n, func(i int) {
			partial += t.LdF(p, i) * t.LdF(q, i)
			t.Compute(2)
		})
		d := t.ReduceSumF(partial)
		alpha := rho / d
		// z += alpha p, r -= alpha q; rho' = r·r.
		partial = 0.0
		t.ForNowait(0, n, func(i int) {
			t.StF(z, i, t.LdF(z, i)+alpha*t.LdF(p, i))
			ri := t.LdF(r, i) - alpha*t.LdF(q, i)
			t.StF(r, i, ri)
			partial += ri * ri
			t.Compute(6)
		})
		rho0 := rho
		rho = t.ReduceSumF(partial)
		beta := rho / rho0
		// p = r + beta p.
		t.For(0, n, func(i int) {
			t.StF(p, i, t.LdF(r, i)+beta*t.LdF(p, i))
			t.Compute(3)
		})
	}
}

// cgSerial is the sequential reference: identical arithmetic, natural
// iteration order (reduction order differs, hence the verify tolerance).
func cgSerial(m *cgMatrix, sz cgSize) []float64 {
	n := m.n
	x := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	r := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	rs := m.rowStart.Data()
	ci := m.colIdx.Data()
	av := m.val.Data()
	for outer := 0; outer < sz.outers; outer++ {
		// CG solve.
		rho := 0.0
		for i := 0; i < n; i++ {
			q[i], z[i] = 0, 0
			r[i], p[i] = x[i], x[i]
			rho += x[i] * x[i]
		}
		for it := 0; it < sz.cgIts; it++ {
			d := 0.0
			for i := 0; i < n; i++ {
				sum := 0.0
				for k := rs[i]; k < rs[i+1]; k++ {
					sum += av[k] * p[ci[k]]
				}
				q[i] = sum
				d += p[i] * q[i]
			}
			alpha := rho / d
			rhoNew := 0.0
			for i := 0; i < n; i++ {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
				rhoNew += r[i] * r[i]
			}
			beta := rhoNew / rho
			rho = rhoNew
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += z[i] * z[i]
		}
		inv := 1.0 / sqrt(norm)
		for i := 0; i < n; i++ {
			x[i] = z[i] * inv
		}
	}
	return z
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

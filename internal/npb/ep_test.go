package npb

import (
	"testing"

	"repro/internal/core"
	"repro/internal/omp"
)

func runEP(t *testing.T, cfg omp.Config, imbalanced bool) uint64 {
	t.Helper()
	rt, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	build := BuildEP
	if imbalanced {
		build = BuildEPImbalanced
	}
	inst := build(rt, ScaleTest)
	if err := rt.Run(inst.Program); err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
	return rt.M.WallTime()
}

func TestEPVerifiesAcrossModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		runEP(t, runCfg(mode), false)
		runEP(t, runCfg(mode), true)
	}
}

func TestEPVerifiesUnderDynamic(t *testing.T) {
	for _, sched := range []omp.Schedule{omp.Dynamic, omp.Guided} {
		cfg := runCfg(core.ModeSlipstream)
		cfg.Sched = sched
		cfg.Chunk = 2
		runEP(t, cfg, true)
	}
}

// TestEPDynamicBeatsStaticWhenImbalanced demonstrates the §3.2.2 claim:
// for embarrassingly parallel work with significantly varying per-unit
// cost, dynamic scheduling wins; for uniform work, static wins.
func TestEPDynamicBeatsStaticWhenImbalanced(t *testing.T) {
	mk := func(sched omp.Schedule, imbalanced bool) uint64 {
		cfg := runCfg(core.ModeSingle)
		cfg.Sched = sched
		cfg.Chunk = 2
		return runEP(t, cfg, imbalanced)
	}
	statImb := mk(omp.Static, true)
	dynImb := mk(omp.Dynamic, true)
	if dynImb >= statImb {
		t.Fatalf("imbalanced EP: dynamic (%d) not faster than static (%d)", dynImb, statImb)
	}
	statUni := mk(omp.Static, false)
	dynUni := mk(omp.Dynamic, false)
	if dynUni <= statUni {
		t.Fatalf("uniform EP: dynamic (%d) not slower than static (%d)", dynUni, statUni)
	}
}

func TestEPSizeString(t *testing.T) {
	rt, _ := omp.New(runCfg(core.ModeSingle))
	if got := BuildEPImbalanced(rt, ScaleTest).Size; got == "" {
		t.Fatal("empty size")
	}
}

// Extension kernels (EP, FT, IS) verify across modes and schedules.
func TestExtensionsVerify(t *testing.T) {
	for _, k := range Extensions() {
		for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
			k, mode := k, mode
			t.Run(k.Name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				rt, err := omp.New(runCfg(mode))
				if err != nil {
					t.Fatal(err)
				}
				inst := k.Build(rt, ScaleTest)
				if err := rt.Run(inst.Program); err != nil {
					t.Fatal(err)
				}
				if err := inst.Verify(); err != nil {
					t.Fatal(err)
				}
				if inst.Norm == nil || inst.Norm() == 0 {
					t.Fatal("missing or zero norm")
				}
			})
		}
	}
}

func TestExtensionsVerifyDynamic(t *testing.T) {
	for _, k := range Extensions() {
		if !k.Dynamic {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			cfg := runCfg(core.ModeSlipstream)
			cfg.Sched = omp.Dynamic
			cfg.Chunk = 2
			cfg.Slipstream = core.G0
			rt, err := omp.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inst := k.Build(rt, ScaleTest)
			if err := rt.Run(inst.Program); err != nil {
				t.Fatal(err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestByNameIncludesExtensions(t *testing.T) {
	for _, name := range []string{"EP", "FT", "IS", "LUHP"} {
		if _, err := ByName(name); err != nil {
			t.Fatal(err)
		}
	}
}

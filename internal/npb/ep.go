package npb

import (
	"fmt"
	"math"

	"repro/internal/omp"
)

// EP is the NPB embarrassingly-parallel kernel: generate pairs of uniform
// pseudo-random numbers, keep those inside the unit circle, transform them
// into Gaussian deviates (Box–Muller acceptance), and tally counts per
// annulus. There is no communication except the final reductions.
//
// EP is not part of the paper's Table 2; it is included as an extension to
// demonstrate the §3.2.2 claim that "for this class of application
// [embarrassingly parallel], dynamic scheduling is apparently
// advantageous, especially if the same amount of data requires a
// significantly varying execution time": BuildEPImbalanced skews the work
// per block so static scheduling suffers and dynamic recovers.
//
// Substitution vs NPB 2.3: the generator is this package's LCG rather than
// NPB's 48-bit linear congruence, and batch counts are reduced.
const epBins = 10

type epSize struct {
	blocks   int // work units
	perBlock int // random pairs per block
}

func epSizeFor(s Scale) epSize {
	switch s {
	case ScaleTest:
		return epSize{blocks: 64, perBlock: 128}
	case ScaleSmall:
		return epSize{blocks: 128, perBlock: 256}
	default:
		return epSize{blocks: 256, perBlock: 512}
	}
}

// BuildEP constructs the uniform-work EP instance.
func BuildEP(rt *omp.Runtime, s Scale) *Instance { return buildEP(rt, s, false) }

// BuildEPImbalanced constructs a variant whose blocks vary 1×–8× in cost.
func BuildEPImbalanced(rt *omp.Runtime, s Scale) *Instance { return buildEP(rt, s, true) }

func buildEP(rt *omp.Runtime, s Scale, imbalanced bool) *Instance {
	sz := epSizeFor(s)
	counts := rt.NewF64(epBins)
	sums := rt.NewF64(2)

	reps := func(block int) int {
		if !imbalanced {
			return 1
		}
		// Cost ramps 1x..8x across the iteration space, so a static block
		// partition concentrates the heavy tail on the last threads.
		return 1 + 8*block/sz.blocks
	}

	program := func(mt *omp.Thread) {
		mt.Parallel(func(t *omp.Thread) {
			var local [epBins]float64
			sx, sy := 0.0, 0.0
			t.ForNowait(0, sz.blocks, func(b int) {
				for r := 0; r < reps(b); r++ {
					g := newLCG(uint64(b)*1000 + uint64(r))
					for i := 0; i < sz.perBlock; i++ {
						x := 2*g.f64() - 1
						y := 2*g.f64() - 1
						t.Compute(12) // generation + acceptance test
						s2 := x*x + y*y
						if s2 > 1 || s2 == 0 {
							continue
						}
						f := math.Sqrt(-2 * math.Log(s2) / s2)
						gx, gy := x*f, y*f
						t.Compute(20) // transform
						m := math.Max(math.Abs(gx), math.Abs(gy))
						bin := int(m)
						if bin >= epBins {
							bin = epBins - 1
						}
						local[bin]++
						sx += gx
						sy += gy
					}
				}
			})
			// Tally: one atomic add per bin plus two sum reductions.
			for bin := 0; bin < epBins; bin++ {
				t.AtomicAddF(counts, bin, local[bin])
			}
			t.Barrier()
			t.ReduceSumF(sx)
			t.ReduceSumF(sy)
			t.Master(func() {
				if !t.IsA() {
					t.StF(sums, 0, sx) // master's own partials, as a probe
				}
			})
			t.Barrier()
		})
	}

	verify := func() error {
		want := epSerial(sz, reps)
		return compareArrays("ep.counts", counts.Data(), want, 1e-9)
	}

	kind := "uniform"
	if imbalanced {
		kind = "imbalanced-8x"
	}
	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(counts.Data()) },
		Size:    fmt.Sprintf("blocks=%d pairs/block=%d %s", sz.blocks, sz.perBlock, kind),
	}
}

// epSerial replays the tally sequentially.
func epSerial(sz epSize, reps func(int) int) []float64 {
	counts := make([]float64, epBins)
	for b := 0; b < sz.blocks; b++ {
		for r := 0; r < reps(b); r++ {
			g := newLCG(uint64(b)*1000 + uint64(r))
			for i := 0; i < sz.perBlock; i++ {
				x := 2*g.f64() - 1
				y := 2*g.f64() - 1
				s2 := x*x + y*y
				if s2 > 1 || s2 == 0 {
					continue
				}
				f := math.Sqrt(-2 * math.Log(s2) / s2)
				gx, gy := x*f, y*f
				m := math.Max(math.Abs(gx), math.Abs(gy))
				bin := int(m)
				if bin >= epBins {
					bin = epBins - 1
				}
				counts[bin]++
			}
		}
	}
	return counts
}

package npb

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

// TestModeEquivalenceBitExact: kernels without reductions in their state
// updates (MG, LU, BT, SP) must produce bit-identical arrays in single and
// slipstream mode.
func TestModeEquivalenceBitExact(t *testing.T) {
	for _, name := range []string{"MG", "LU", "BT", "SP"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, _ := ByName(name)
			data := func(mode core.Mode) []float64 {
				cfg := runCfg(mode)
				cfg.Slipstream = core.L1
				rt, err := omp.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				inst := k.Build(rt, ScaleTest)
				if err := rt.Run(inst.Program); err != nil {
					t.Fatal(err)
				}
				if err := inst.Verify(); err != nil {
					t.Fatal(err)
				}
				return nil // Verify already compares bit-exact to serial
			}
			data(core.ModeSingle)
			data(core.ModeSlipstream)
		})
	}
}

// TestInstanceSizeStrings: Table 2 metadata is present and descriptive.
func TestInstanceSizeStrings(t *testing.T) {
	for _, k := range Kernels() {
		rt, _ := omp.New(runCfg(core.ModeSingle))
		inst := k.Build(rt, ScalePaper)
		if inst.Size == "" || !strings.Contains(inst.Size, "=") {
			t.Fatalf("%s: size string %q", k.Name, inst.Size)
		}
	}
}

// TestChunkFor: CG uses half the static block; others default to 1.
func TestChunkFor(t *testing.T) {
	cg, _ := ByName("CG")
	if got := cg.ChunkFor(ScalePaper, 16); got != 1400/(2*16) {
		t.Fatalf("CG chunk = %d", got)
	}
	mg, _ := ByName("MG")
	if got := mg.ChunkFor(ScalePaper, 16); got != 1 {
		t.Fatalf("MG chunk = %d", got)
	}
	// Degenerate team: never below 1.
	if got := cg.ChunkFor(ScaleTest, 10000); got != 1 {
		t.Fatalf("clamped chunk = %d", got)
	}
}

// TestKernelsUnderAffinitySchedule: run each dynamic-capable kernel's
// verification with loops forced... affinity is a loop-level API, so here
// we spot-check a representative workload built on it.
func TestAffinityWorkloadVerifies(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeSlipstream} {
		cfg := runCfg(mode)
		rt, err := omp.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 300
		src := rt.NewF64(n)
		dst := rt.NewF64(n)
		for i := 0; i < n; i++ {
			src.Set(i, float64(i))
		}
		if err := rt.Run(func(m *omp.Thread) {
			m.Parallel(func(t2 *omp.Thread) {
				t2.ForAffinity(8, 0, n, func(i int) {
					t2.Compute(uint64(1 + i%17))
					t2.StF(dst, i, 3*t2.LdF(src, i))
				})
			})
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if dst.Get(i) != 3*float64(i) {
				t.Fatalf("%v: dst[%d] = %v", mode, i, dst.Get(i))
			}
		}
	}
}

// TestScalesAreOrdered: paper >= small >= test problem volumes.
func TestScalesAreOrdered(t *testing.T) {
	if cgSizeFor(ScaleTest).na >= cgSizeFor(ScaleSmall).na || cgSizeFor(ScaleSmall).na >= cgSizeFor(ScalePaper).na {
		t.Fatal("CG scales not increasing")
	}
	if mgSizeFor(ScaleTest).n >= mgSizeFor(ScalePaper).n {
		t.Fatal("MG scales not increasing")
	}
	if btSizeFor(ScaleTest).n > btSizeFor(ScalePaper).n {
		t.Fatal("BT scales not increasing")
	}
	if spSizeFor(ScaleTest).n > spSizeFor(ScalePaper).n {
		t.Fatal("SP scales not increasing")
	}
	if luSizeFor(ScaleTest).iters >= luSizeFor(ScalePaper).iters {
		t.Fatal("LU scales not increasing")
	}
}

// TestCGMatrixProperties: diagonal dominance and CSR consistency.
func TestCGMatrixProperties(t *testing.T) {
	rt, _ := omp.New(runCfg(core.ModeSingle))
	m := buildCGMatrix(rt, 100, 6)
	rs := m.rowStart.Data()
	for i := 0; i < 100; i++ {
		lo, hi := rs[i], rs[i+1]
		if hi-lo != 7 { // 6 off-diagonals + diagonal
			t.Fatalf("row %d has %d entries", i, hi-lo)
		}
		var diag, off float64
		for k := lo; k < hi; k++ {
			c := m.colIdx.Get(int(k))
			v := m.val.Get(int(k))
			if c < 0 || c >= 100 {
				t.Fatalf("row %d: column %d out of range", i, c)
			}
			if int(c) == i {
				diag = v
			} else {
				off += absf(v)
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v <= %v", i, diag, off)
		}
	}
}

// TestMGSourceDeterministic: the charge placement is identical across
// builds (LCG determinism).
func TestMGSourceDeterministic(t *testing.T) {
	build := func() []float64 {
		rt, _ := omp.New(runCfg(core.ModeSingle))
		inst := BuildMG(rt, ScaleTest)
		_ = inst
		return nil
	}
	build()
	build() // would panic/fail verification later if nondeterministic
	g1, g2 := newLCG(7), newLCG(7)
	for i := 0; i < 100; i++ {
		if g1.next() != g2.next() {
			t.Fatal("LCG not deterministic")
		}
	}
}

// TestLCGDistribution: crude sanity on the generator (mean near 0.5).
func TestLCGDistribution(t *testing.T) {
	g := newLCG(99)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := g.f64()
		if v < 0 || v >= 1 {
			t.Fatalf("f64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %v", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[g.intn(10)]++
	}
	for b, c := range counts {
		if c < n/20 {
			t.Fatalf("bucket %d starved: %d", b, c)
		}
	}
}

// TestCloseEnough covers the comparison helper's regimes.
func TestCloseEnough(t *testing.T) {
	if !closeEnough(1.0, 1.0, 0) {
		t.Fatal("identity")
	}
	if !closeEnough(1e12, 1e12*(1+1e-12), 1e-9) {
		t.Fatal("relative tolerance on large values")
	}
	if closeEnough(1e12, 1e12*1.01, 1e-9) {
		t.Fatal("accepted 1% error")
	}
	// Small-magnitude values use the absolute-tolerance branch.
	if !closeEnough(1e-15, 2e-15, 1e-9) {
		t.Fatal("rejected sub-tolerance absolute difference")
	}
	if closeEnough(0.5, 0.6, 1e-3) {
		t.Fatal("accepted absolute error 0.1")
	}
}

// TestCompareArrays reports index and mismatched lengths.
func TestCompareArrays(t *testing.T) {
	if err := compareArrays("x", []float64{1, 2}, []float64{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := compareArrays("x", []float64{1, 2}, []float64{1, 3}, 0); err == nil || !strings.Contains(err.Error(), "x[1]") {
		t.Fatalf("mismatch error = %v", err)
	}
	if err := compareArrays("x", []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestNormsConsistentAcrossModes: the NPB-style verification norm is
// identical in single and slipstream mode (bit-exact kernels) or within
// reduction tolerance (CG).
func TestNormsConsistentAcrossModes(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			norm := func(mode core.Mode) float64 {
				rt, _ := omp.New(runCfg(mode))
				inst := k.Build(rt, ScaleTest)
				if err := rt.Run(inst.Program); err != nil {
					t.Fatal(err)
				}
				if inst.Norm == nil {
					t.Fatal("no norm")
				}
				return inst.Norm()
			}
			a, b := norm(core.ModeSingle), norm(core.ModeSlipstream)
			if !closeEnough(a, b, 1e-9) {
				t.Fatalf("norms differ: %v vs %v", a, b)
			}
			if a == 0 {
				t.Fatal("zero norm (kernel produced nothing)")
			}
		})
	}
}

// TestKernelsVerifyUnderMesh: the 2-D mesh topology changes timing only,
// never results.
func TestKernelsVerifyUnderMesh(t *testing.T) {
	for _, name := range []string{"CG", "MG"} {
		k, _ := ByName(name)
		cfg := runCfg(core.ModeSlipstream)
		cfg.Machine.Topology = machine.TopoMesh2D
		rt, err := omp.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst := k.Build(rt, ScaleTest)
		if err := rt.Run(inst.Program); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

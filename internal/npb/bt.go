package npb

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// BT is the NPB block-tridiagonal kernel: an ADI scheme where each time
// step computes a right-hand side from a 3-D stencil and then solves
// independent block-tridiagonal systems (5×5 blocks) along every x, y, and
// z line of the grid, finishing with a solution update.
//
// Substitution vs NPB 2.3: the Navier–Stokes Jacobian blocks are replaced
// by synthetic diagonally-dominant blocks that still depend on the local
// solution value (so the load stream matches), and the forcing is a fixed
// deterministic field. Line structure, solver (block Thomas with 5×5
// inverses), sweep order, and barrier cadence are those of BT.
const (
	btDt    = 0.1
	btScale = 0.99 // post-solve normalization factor (xinvr-style sweep)
)

type btSize struct {
	n     int
	iters int
}

func btSizeFor(s Scale) btSize {
	switch s {
	case ScaleTest:
		return btSize{n: 8, iters: 1}
	case ScaleSmall:
		return btSize{n: 10, iters: 2}
	default:
		return btSize{n: 12, iters: 3} // class-S edge: 100 interior lines resist even 32-way partition
	}
}

// btCoupling are the constant off-diagonal coupling patterns of the
// synthetic Jacobian blocks.
var btKb, btKa, btKc = btPatterns()

func btPatterns() (kb, ka, kc mat5) {
	g := newLCG(23)
	for i := range kb {
		kb[i] = 0.05 * (g.f64() - 0.5)
		ka[i] = 0.05 * (g.f64() - 0.5)
		kc[i] = 0.05 * (g.f64() - 0.5)
	}
	return kb, ka, kc
}

// btBlocks builds the (A, B, C) blocks for a cell from its first solution
// component (bounded, preserving diagonal dominance).
func btBlocks(u0 float64) (a, b, c mat5) {
	s := u0 / (1 + absf(u0))
	b = addM(ident5(4+0.5*s), btKb)
	a = subM(scaleM(ident5(1), -1), btKa)
	c = subM(scaleM(ident5(1), -1), btKc)
	return a, b, c
}

// btState bundles the shared arrays.
type btState struct {
	n       int
	u, rhs  *shmem.F64 // 5 components per cell, cell-major
	forcing *shmem.F64
}

// uix returns the shared-array index for component c of cell id.
func uix(id, c int) int { return id*5 + c }

// BuildBT constructs the BT benchmark instance on rt.
func BuildBT(rt *omp.Runtime, s Scale) *Instance {
	sz := btSizeFor(s)
	n := sz.n
	st := &btState{
		n:       n,
		u:       rt.NewF64(5 * n * n * n),
		rhs:     rt.NewF64(5 * n * n * n),
		forcing: rt.NewF64(5 * n * n * n),
	}
	g := newLCG(31)
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < 5; c++ {
					st.forcing.Set(uix(idx3(i, j, k, n), c), g.f64()-0.5)
				}
			}
		}
	}

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				btComputeRHS(t, st)
				btSolveDir(t, st, 0)
				btScaleRHS(t, st, btScale)
				btSolveDir(t, st, 1)
				btScaleRHS(t, st, btScale)
				btSolveDir(t, st, 2)
				btScaleRHS(t, st, btScale)
				btAdd(t, st)
			})
		}
	}

	verify := func() error {
		want := btSerial(st.forcing.Data(), sz)
		return compareArrays("bt.u", st.u.Data(), want, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(st.u.Data()) },
		Size:    fmt.Sprintf("grid=%d^3x5 adi-steps=%d", n, sz.iters),
	}
}

// btComputeRHS evaluates rhs = dt·(Σ6 u − 6u) + forcing on the interior.
// As in NPB, the right-hand side is assembled by separate worksharing
// loops — a base (forcing) term and one loop per direction — each with its
// own implied barrier.
func btComputeRHS(t *omp.Thread, st *btState) {
	n := st.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				for c := 0; c < 5; c++ {
					v := t.LdF(st.forcing, uix(id, c)) - 6*btDt*t.LdF(st.u, uix(id, c))
					t.StF(st.rhs, uix(id, c), v)
					t.Compute(3)
				}
			}
		}
	})
	for dir := 0; dir < 3; dir++ {
		dir := dir
		t.For(1, n-1, func(k int) {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					id := idx3(i, j, k, n)
					var lo, hi int
					switch dir {
					case 0:
						lo, hi = idx3(i-1, j, k, n), idx3(i+1, j, k, n)
					case 1:
						lo, hi = idx3(i, j-1, k, n), idx3(i, j+1, k, n)
					default:
						lo, hi = idx3(i, j, k-1, n), idx3(i, j, k+1, n)
					}
					for c := 0; c < 5; c++ {
						v := t.LdF(st.rhs, uix(id, c)) + btDt*(t.LdF(st.u, uix(lo, c))+t.LdF(st.u, uix(hi, c)))
						t.StF(st.rhs, uix(id, c), v)
						t.Compute(4)
					}
				}
			}
		})
	}
}

// btScaleRHS is the post-solve normalization sweep (NPB's xinvr/ninvr/
// pinvr family): a light pass over rhs between directional solves.
func btScaleRHS(t *omp.Thread, st *btState, f float64) {
	n := st.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				for c := 0; c < 5; c++ {
					t.StF(st.rhs, uix(id, c), f*t.LdF(st.rhs, uix(id, c)))
					t.Compute(2)
				}
			}
		}
	})
}

// btSolveDir runs the block-tridiagonal line solves along direction dir
// (0 = x lines, 1 = y lines, 2 = z lines), leaving the line solutions in
// rhs. Lines are independent; as in the NPB 2.3 OpenMP port, worksharing
// is over the single outermost dimension, so at class-S sizes the degree
// of parallelism saturates well below 2 threads/CMP — the regime the
// paper studies.
func btSolveDir(t *omp.Thread, st *btState, dir int) {
	n := st.n
	m := n - 2
	t.For(1, n-1, func(o1 int) {
		for o2 := 1; o2 < n-1; o2++ {
			btSolveLine(t, st, dir, o1, o2, m)
		}
	})
}

// btSolveLine assembles and solves one block-tridiagonal line.
func btSolveLine(t *omp.Thread, st *btState, dir, o1, o2, m int) {
	n := st.n
	// Thread-private working arrays (NPB's lhs is private per line).
	av := make([]mat5, m)
	bv := make([]mat5, m)
	cv := make([]mat5, m)
	rv := make([]vec5, m)
	for s := 0; s < m; s++ {
		id := btLineCell(dir, s+1, o1, o2, n)
		u0 := t.LdF(st.u, uix(id, 0))
		av[s], bv[s], cv[s] = btBlocks(u0)
		for c := 0; c < 5; c++ {
			rv[s][c] = t.LdF(st.rhs, uix(id, c))
		}
		t.Compute(10) // block assembly
	}
	blockTriSolve(av, bv, cv, rv)
	t.Compute(uint64(m) * 130) // 5×5 eliminations per cell (superscalar MACs)
	for s := 0; s < m; s++ {
		id := btLineCell(dir, s+1, o1, o2, n)
		for c := 0; c < 5; c++ {
			t.StF(st.rhs, uix(id, c), rv[s][c])
		}
	}
}

// btLineCell maps (direction, position-along-line, outer1, outer2) to a
// cell index. x lines vary i with (j,k)=(o2,o1); y lines vary j with
// (i,k)=(o2,o1); z lines vary k with (i,j)=(o2,o1).
func btLineCell(dir, s, o1, o2, n int) int {
	switch dir {
	case 0:
		return idx3(s, o2, o1, n)
	case 1:
		return idx3(o2, s, o1, n)
	default:
		return idx3(o2, o1, s, n)
	}
}

// btAdd applies the computed update: u += rhs.
func btAdd(t *omp.Thread, st *btState) {
	n := st.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				for c := 0; c < 5; c++ {
					t.StF(st.u, uix(id, c), t.LdF(st.u, uix(id, c))+t.LdF(st.rhs, uix(id, c)))
					t.Compute(2)
				}
			}
		}
	})
}

// btSerialRHS mirrors btComputeRHS's multi-loop assembly (the floating-
// point accumulation order must match exactly for bit-level verification).
func btSerialRHS(u, rhs, forcing []float64, n int) {
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				for c := 0; c < 5; c++ {
					rhs[uix(id, c)] = forcing[uix(id, c)] - 6*btDt*u[uix(id, c)]
				}
			}
		}
	}
	for dir := 0; dir < 3; dir++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					id := idx3(i, j, k, n)
					var lo, hi int
					switch dir {
					case 0:
						lo, hi = idx3(i-1, j, k, n), idx3(i+1, j, k, n)
					case 1:
						lo, hi = idx3(i, j-1, k, n), idx3(i, j+1, k, n)
					default:
						lo, hi = idx3(i, j, k-1, n), idx3(i, j, k+1, n)
					}
					for c := 0; c < 5; c++ {
						rhs[uix(id, c)] += btDt * (u[uix(lo, c)] + u[uix(hi, c)])
					}
				}
			}
		}
	}
}

// btSerial is the sequential reference.
func btSerial(forcing []float64, sz btSize) []float64 {
	n := sz.n
	u := make([]float64, 5*n*n*n)
	rhs := make([]float64, 5*n*n*n)
	m := n - 2
	for it := 0; it < sz.iters; it++ {
		btSerialRHS(u, rhs, forcing, n)
		for dir := 0; dir < 3; dir++ {
			for o1 := 1; o1 < n-1; o1++ {
				for o2 := 1; o2 < n-1; o2++ {
					av := make([]mat5, m)
					bv := make([]mat5, m)
					cv := make([]mat5, m)
					rv := make([]vec5, m)
					for s := 0; s < m; s++ {
						id := btLineCell(dir, s+1, o1, o2, n)
						av[s], bv[s], cv[s] = btBlocks(u[uix(id, 0)])
						for c := 0; c < 5; c++ {
							rv[s][c] = rhs[uix(id, c)]
						}
					}
					blockTriSolve(av, bv, cv, rv)
					for s := 0; s < m; s++ {
						id := btLineCell(dir, s+1, o1, o2, n)
						for c := 0; c < 5; c++ {
							rhs[uix(id, c)] = rv[s][c]
						}
					}
				}
			}
			for id := 0; id < n*n*n*5; id++ {
				rhs[id] *= btScale
			}
		}
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					id := idx3(i, j, k, n)
					for c := 0; c < 5; c++ {
						u[uix(id, c)] += rhs[uix(id, c)]
					}
				}
			}
		}
	}
	return u
}

package npb

import (
	"fmt"
	"math"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// FT is the NPB 3-D FFT kernel (an extension: not part of the paper's
// Table 2, included to complete the NPB 2.3 kernel set). Each time step
// evolves a complex field by per-mode phase factors and applies 1-D FFTs
// along all three dimensions; the z-dimension pass is the strided,
// all-to-all-shaped access pattern FT is famous for. A per-step checksum
// over scattered modes adds the reduction.
//
// Substitution vs NPB 2.3: the evolution factor is a synthetic per-mode
// rotation rather than the heat-equation exponential, the initial field
// comes from this package's LCG, and sizes are reduced. FFTs are real
// radix-2 Cooley–Tukey transforms into thread-private work arrays (NPB's
// cffts* use private work arrays the same way), verified bit-exactly
// against a serial replay.
type ftSize struct {
	n     int // grid edge (power of two)
	iters int
}

func ftSizeFor(s Scale) ftSize {
	switch s {
	case ScaleTest:
		return ftSize{n: 8, iters: 1}
	case ScaleSmall:
		return ftSize{n: 16, iters: 1}
	default:
		return ftSize{n: 16, iters: 3}
	}
}

// ftState bundles the shared field (separate re/im planes).
type ftState struct {
	n      int
	re, im *shmem.F64
}

// BuildFT constructs the FT extension instance.
func BuildFT(rt *omp.Runtime, s Scale) *Instance {
	sz := ftSizeFor(s)
	n := sz.n
	st := &ftState{n: n, re: rt.NewF64(n * n * n), im: rt.NewF64(n * n * n)}
	g := newLCG(53)
	for i := 0; i < n*n*n; i++ {
		st.re.Set(i, g.f64()-0.5)
		st.im.Set(i, g.f64()-0.5)
	}
	initRe := append([]float64(nil), st.re.Data()...)
	initIm := append([]float64(nil), st.im.Data()...)

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				ftEvolve(t, st, it)
				ftPass(t, st, 0)
				ftPass(t, st, 1)
				ftPass(t, st, 2)
				// Checksum over scattered modes (reduction).
				partial := 0.0
				t.ForNowait(0, 64, func(m int) {
					id := (m * 1031) % (n * n * n)
					partial += t.LdF(st.re, id) + t.LdF(st.im, id)
					t.Compute(3)
				})
				t.ReduceSumF(partial)
			})
		}
	}

	verify := func() error {
		wr, wi := ftSerial(initRe, initIm, sz)
		if err := compareArrays("ft.re", st.re.Data(), wr, 0); err != nil {
			return err
		}
		return compareArrays("ft.im", st.im.Data(), wi, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(st.re.Data()) },
		Size:    fmt.Sprintf("grid=%d^3 complex, steps=%d", n, sz.iters),
	}
}

// ftEvolve multiplies every mode by a deterministic unit rotation.
func ftEvolve(t *omp.Thread, st *ftState, step int) {
	n := st.n
	t.For(0, n, func(k int) {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				id := idx3(i, j, k, n)
				c, s := ftFactor(i, j, k, step)
				re := t.LdF(st.re, id)
				im := t.LdF(st.im, id)
				t.StF(st.re, id, re*c-im*s)
				t.StF(st.im, id, re*s+im*c)
				t.Compute(8)
			}
		}
	})
}

// ftFactor returns the unit rotation for a mode (private computation).
func ftFactor(i, j, k, step int) (c, s float64) {
	theta := 1e-3 * float64((i*i+j*j+k*k)*(step+1))
	return math.Cos(theta), math.Sin(theta)
}

// ftPass applies length-n FFTs along one dimension to every line of the
// grid. Worksharing is over the outermost orthogonal dimension; each line
// is gathered into thread-private buffers (timed loads), transformed
// privately, and scattered back (timed stores).
func ftPass(t *omp.Thread, st *ftState, dir int) {
	n := st.n
	re := make([]float64, n)
	im := make([]float64, n)
	t.For(0, n, func(o1 int) {
		for o2 := 0; o2 < n; o2++ {
			for s := 0; s < n; s++ {
				id := ftLineCell(dir, s, o1, o2, n)
				re[s] = t.LdF(st.re, id)
				im[s] = t.LdF(st.im, id)
			}
			fft(re, im)
			t.Compute(uint64(5 * n * log2(n)))
			for s := 0; s < n; s++ {
				id := ftLineCell(dir, s, o1, o2, n)
				t.StF(st.re, id, re[s])
				t.StF(st.im, id, im[s])
			}
		}
	})
}

// ftLineCell maps (direction, position, outer1, outer2) to a cell index:
// x lines vary i, y lines vary j, z lines vary k (the strided pass).
func ftLineCell(dir, s, o1, o2, n int) int {
	switch dir {
	case 0:
		return idx3(s, o2, o1, n)
	case 1:
		return idx3(o2, s, o1, n)
	default:
		return idx3(o2, o1, s, n)
	}
}

// log2 returns log₂(n) for a power of two.
func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// fft is an in-place iterative radix-2 Cooley–Tukey transform.
func fft(re, im []float64) {
	n := len(re)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			for k := 0; k < length/2; k++ {
				a, b := start+k, start+k+length/2
				xr := re[b]*cr - im[b]*ci
				xi := re[b]*ci + im[b]*cr
				re[b], im[b] = re[a]-xr, im[a]-xi
				re[a], im[a] = re[a]+xr, im[a]+xi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// ftSerial replays the program sequentially.
func ftSerial(re0, im0 []float64, sz ftSize) (re, im []float64) {
	n := sz.n
	re = append([]float64(nil), re0...)
	im = append([]float64(nil), im0...)
	lr := make([]float64, n)
	li := make([]float64, n)
	for it := 0; it < sz.iters; it++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					id := idx3(i, j, k, n)
					c, s := ftFactor(i, j, k, it)
					r, m := re[id], im[id]
					re[id] = r*c - m*s
					im[id] = r*s + m*c
				}
			}
		}
		for dir := 0; dir < 3; dir++ {
			for o1 := 0; o1 < n; o1++ {
				for o2 := 0; o2 < n; o2++ {
					for s := 0; s < n; s++ {
						id := ftLineCell(dir, s, o1, o2, n)
						lr[s], li[s] = re[id], im[id]
					}
					fft(lr, li)
					for s := 0; s < n; s++ {
						id := ftLineCell(dir, s, o1, o2, n)
						re[id], im[id] = lr[s], li[s]
					}
				}
			}
		}
	}
	return re, im
}

// Package npb contains scaled-down, structurally faithful Go ports of the
// five NAS Parallel Benchmark kernels the paper evaluates (Table 2: BT, CG,
// LU, MG, SP — the Omni project's OpenMP port of NPB 2.3), written against
// the omp runtime so they run unmodified in single, double, and slipstream
// modes.
//
// Substitutions relative to NPB 2.3 are documented per kernel and in
// DESIGN.md. The ports keep the memory-reference and synchronization
// structure of the originals (sweeps, line solves, reductions, barrier
// cadence), use reduced problem sizes ("the problem sizes serve the purpose
// of studying the performance when the communication starts to dominate",
// §5), and every kernel verifies its final state against a plain serial Go
// reference.
package npb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/omp"
)

// Scale selects a problem size.
type Scale int

// Problem scales: Test is for unit tests (seconds of simulated work),
// Small for benchmarks, Paper for the experiment harness (the reduced
// classes used to regenerate the figures).
const (
	ScaleTest Scale = iota
	ScaleSmall
	ScalePaper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale resolves a scale name (case-insensitive). It is the single
// parser shared by the CLI tools and the slipd API, so the two front ends
// cannot drift on what "paper" means.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "test":
		return ScaleTest, nil
	case "small":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("npb: unknown scale %q (valid: test, small, paper)", s)
}

// Instance is a constructed benchmark ready to run on a runtime: the
// program to execute and a verifier that checks the shared state against
// the kernel's serial reference.
type Instance struct {
	Program func(*omp.Thread)
	Verify  func() error
	// Norm returns the L2 norm of the kernel's principal result array —
	// the NPB-style verification value reported alongside timings. May be
	// nil for instances without a natural norm.
	Norm func() float64
	// Size describes the problem instance for Table 2.
	Size string
}

// l2norm computes the Euclidean norm of a slice.
func l2norm(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v * v
	}
	return math.Sqrt(s)
}

// Kernel is one benchmark in the suite.
type Kernel struct {
	Name string
	// Dynamic reports whether the kernel participates in the dynamic-
	// scheduling experiments (LU hard-codes static scheduling for a
	// significant portion of its code, §5.2, and is excluded).
	Dynamic bool
	Build   func(rt *omp.Runtime, s Scale) *Instance
	// DynChunk returns the dynamic/guided chunk size for a team size. The
	// paper used the compiler defaults for all applications except CG,
	// whose chunk is half the static block assignment (§5.2).
	DynChunk func(s Scale, team int) int
}

// Kernels returns the paper's benchmark suite in its reporting order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "BT", Dynamic: true, Build: BuildBT},
		{Name: "CG", Dynamic: true, Build: BuildCG,
			DynChunk: func(s Scale, team int) int { return cgSizeFor(s).na / (2 * team) }},
		{Name: "LU", Dynamic: false, Build: BuildLU},
		{Name: "MG", Dynamic: true, Build: BuildMG},
		{Name: "SP", Dynamic: true, Build: BuildSP},
	}
}

// ChunkFor resolves a kernel's dynamic chunk size (1 = Omni default).
func (k Kernel) ChunkFor(s Scale, team int) int {
	if k.DynChunk == nil {
		return 1
	}
	c := k.DynChunk(s, team)
	if c < 1 {
		return 1
	}
	return c
}

// Extensions returns the kernels implemented beyond the paper's Table 2:
// the remaining NPB 2.3 kernels (EP, FT, IS), usable with the CLI tools
// and the extension experiments but excluded from the paper's figures.
// TREE, TREEL, and EPT are the task-parallel tier (see tasks.go).
func Extensions() []Kernel {
	return []Kernel{
		{Name: "EP", Dynamic: true, Build: BuildEP},
		{Name: "FT", Dynamic: true, Build: BuildFT},
		{Name: "IS", Dynamic: true, Build: BuildIS},
		{Name: "LUHP", Dynamic: false, Build: BuildLUHP},
		TreeKernel(treeDefaultCutoff),
		TreeLoopKernel(),
		{Name: "EPT", Dynamic: false, Build: BuildEPTaskloop},
	}
}

// ByName returns the kernel (paper suite or extension) with the given name.
func ByName(name string) (Kernel, error) {
	for _, k := range append(Kernels(), Extensions()...) {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("npb: unknown kernel %q", name)
}

// lcg is a small deterministic pseudo-random generator (the ports must not
// depend on math/rand ordering across Go versions).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s
}

// f64 returns a value in [0, 1).
func (g *lcg) f64() float64 { return float64(g.next()>>11) / (1 << 53) }

// intn returns a value in [0, n).
func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

// closeEnough compares two values with a relative tolerance (needed where
// reduction order differs between parallel and serial execution).
func closeEnough(got, want, tol float64) bool {
	if got == want {
		return true
	}
	d := math.Abs(got - want)
	m := math.Max(math.Abs(got), math.Abs(want))
	if m < 1 {
		return d <= tol
	}
	return d/m <= tol
}

// compareArrays checks got against want with the given tolerance,
// reporting the first mismatch.
func compareArrays(name string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if !closeEnough(got[i], want[i], tol) {
			return fmt.Errorf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
	return nil
}

// idx3 flattens a 3-D index for an n×n×n grid.
func idx3(i, j, k, n int) int { return (k*n+j)*n + i }

package npb

import (
	"fmt"

	"repro/internal/omp"
)

// SP is the NPB scalar-pentadiagonal kernel: the same ADI structure as BT,
// but each line solve factors into five independent scalar pentadiagonal
// systems (one per solution component) instead of one block-tridiagonal
// system.
//
// Substitution vs NPB 2.3: constant diagonally-dominant pentadiagonal
// coefficients replace the flow-dependent ones (the solves in NPB are
// preceded by the same kind of coefficient assembly from u; here one u
// load per cell keeps that reference in the stream); forcing is a fixed
// deterministic field. Sweep order, line independence, and barrier cadence
// match SP.
const (
	spDt = 0.1
	spD  = 4.0  // main diagonal
	spE1 = -1.0 // first sub/super diagonal
	spE2 = 0.2  // second sub/super diagonal
)

type spSize struct {
	n     int
	iters int
}

func spSizeFor(s Scale) spSize {
	switch s {
	case ScaleTest:
		return spSize{n: 8, iters: 1}
	case ScaleSmall:
		return spSize{n: 10, iters: 2}
	default:
		return spSize{n: 12, iters: 3} // class-S edge: 100 interior lines resist even 32-way partition
	}
}

// BuildSP constructs the SP benchmark instance on rt.
func BuildSP(rt *omp.Runtime, s Scale) *Instance {
	sz := spSizeFor(s)
	n := sz.n
	st := &btState{
		n:       n,
		u:       rt.NewF64(5 * n * n * n),
		rhs:     rt.NewF64(5 * n * n * n),
		forcing: rt.NewF64(5 * n * n * n),
	}
	g := newLCG(37)
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				for c := 0; c < 5; c++ {
					st.forcing.Set(uix(idx3(i, j, k, n), c), g.f64()-0.5)
				}
			}
		}
	}

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				btComputeRHS(t, st) // identical RHS structure (shared helper)
				spSolveDir(t, st, 0)
				btScaleRHS(t, st, btScale)
				spSolveDir(t, st, 1)
				btScaleRHS(t, st, btScale)
				spSolveDir(t, st, 2)
				btScaleRHS(t, st, btScale)
				btAdd(t, st)
			})
		}
	}

	verify := func() error {
		want := spSerial(st.forcing.Data(), sz)
		return compareArrays("sp.u", st.u.Data(), want, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(st.u.Data()) },
		Size:    fmt.Sprintf("grid=%d^3x5 adi-steps=%d", n, sz.iters),
	}
}

// spSolveDir runs the five scalar pentadiagonal solves along every line in
// direction dir, leaving solutions in rhs. As in the NPB 2.3 OpenMP port,
// worksharing is over the single outermost dimension, so at class-S sizes
// the degree of parallelism saturates well below 2 threads/CMP.
func spSolveDir(t *omp.Thread, st *btState, dir int) {
	n := st.n
	m := n - 2
	t.For(1, n-1, func(o1 int) {
		line := make([]float64, m)
		for o2 := 1; o2 < n-1; o2++ {
			for c := 0; c < 5; c++ {
				for s := 0; s < m; s++ {
					id := btLineCell(dir, s+1, o1, o2, n)
					// One u reference per cell: the coefficient-assembly load.
					_ = t.LdF(st.u, uix(id, 0))
					line[s] = t.LdF(st.rhs, uix(id, c))
				}
				pentaSolve(spE2, spE1, spD, spE1, spE2, line)
				t.Compute(uint64(m) * 14)
				for s := 0; s < m; s++ {
					id := btLineCell(dir, s+1, o1, o2, n)
					t.StF(st.rhs, uix(id, c), line[s])
				}
			}
		}
	})
}

// spSerial is the sequential reference.
func spSerial(forcing []float64, sz spSize) []float64 {
	n := sz.n
	u := make([]float64, 5*n*n*n)
	rhs := make([]float64, 5*n*n*n)
	m := n - 2
	for it := 0; it < sz.iters; it++ {
		// The parallel program shares BT's RHS helper, so the serial
		// reference shares BT's serial RHS (same accumulation order).
		btSerialRHS(u, rhs, forcing, n)
		for dir := 0; dir < 3; dir++ {
			for o1 := 1; o1 < n-1; o1++ {
				for o2 := 1; o2 < n-1; o2++ {
					line := make([]float64, m)
					for c := 0; c < 5; c++ {
						for s := 0; s < m; s++ {
							line[s] = rhs[uix(btLineCell(dir, s+1, o1, o2, n), c)]
						}
						pentaSolve(spE2, spE1, spD, spE1, spE2, line)
						for s := 0; s < m; s++ {
							rhs[uix(btLineCell(dir, s+1, o1, o2, n), c)] = line[s]
						}
					}
				}
			}
			for id := 0; id < n*n*n*5; id++ {
				rhs[id] *= btScale
			}
		}
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					id := idx3(i, j, k, n)
					for c := 0; c < 5; c++ {
						u[uix(id, c)] += rhs[uix(id, c)]
					}
				}
			}
		}
	}
	return u
}

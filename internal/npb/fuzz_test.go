package npb

import (
	"math"
	"testing"
)

// FuzzPentaSolve: for arbitrary finite right-hand sides the solver must
// return finite solutions that satisfy the system.
func FuzzPentaSolve(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1e6, 1e-6, 3.5, -2.25, 100.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e float64) {
		x := []float64{a, b, c, d, e}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				x[i] = 1
			}
		}
		rhs := multiplyPenta(spE2, spE1, spD, spE1, spE2, x)
		pentaSolve(spE2, spE1, spD, spE1, spE2, rhs)
		for i := range x {
			if math.IsNaN(rhs[i]) || math.IsInf(rhs[i], 0) {
				t.Fatalf("non-finite solution at %d", i)
			}
			if math.Abs(rhs[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("x[%d] = %v, want %v", i, rhs[i], x[i])
			}
		}
	})
}

package npb

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/omp"
)

// Task-parallel kernels for the tasking tier (extensions beyond the
// paper's Table 2, which predates OpenMP 3.0 tasking):
//
//   - TREE: a recursive binary tree-sum over a shared array. Inner nodes
//     down to the cut-off depth spawn two child tasks, taskwait, and
//     combine the partial sums through shared heap slots; nodes at the
//     cut-off sum their array segment directly. The cut-off controls task
//     granularity — deeper cut-offs mean more, smaller tasks and more
//     per-task runtime overhead, the pattern the tasking study sweeps.
//   - TREEL: the same computation as a worksharing loop over the leaf
//     segments plus a serial combine — the non-tasking baseline the study
//     compares against.
//   - EPT: the EP kernel's block loop ported to taskloop. All chunk tasks
//     start on the master's deque, so the rest of the team acquires its
//     work entirely by stealing.
//
// All three verify against serial references and run unmodified in
// single, double, and slipstream modes.

// MaxTreeCutoff bounds the cut-off depth the study surfaces accept: the
// result heap has 2^(cutoff+1) slots and the test-scale tree is saturated
// well below this.
const MaxTreeCutoff = 12

// treeDefaultCutoff is the cut-off used when TREE runs outside the
// tasking study (slipsim -kernel TREE, extension tests).
const treeDefaultCutoff = 4

// treeLeafMin is the smallest leaf segment; the effective cut-off is
// clamped so every leaf keeps at least this many elements.
const treeLeafMin = 8

func treeSizeFor(s Scale) int {
	switch s {
	case ScaleTest:
		return 512
	case ScaleSmall:
		return 2048
	default:
		return 8192
	}
}

// treeDepth clamps the requested cut-off to the tree the problem size
// supports (n is a power of two).
func treeDepth(n, cutoff int) int {
	max := bits.Len(uint(n/treeLeafMin)) - 1
	if cutoff > max {
		return max
	}
	if cutoff < 0 {
		return 0
	}
	return cutoff
}

// treeSegment resolves heap node k at depth d to its array segment
// [lo, hi): each bit of k below the leading 1 picks a half.
func treeSegment(k, d, n int) (int, int) {
	lo, hi := 0, n
	for b := d - 1; b >= 0; b-- {
		mid := (lo + hi) / 2
		if k>>b&1 == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// treeLeaf charges the leaf work for segment [lo, hi): a timed load and
// a few cycles of private computation per element.
func treeLeaf(t *omp.Thread, ld func(int) float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		v := ld(i)
		t.Compute(8)
		s += v*v + 0.5*v
	}
	return s
}

// treeInit fills the input array deterministically (untimed setup).
func treeInit(set func(int, float64), n int) {
	g := newLCG(20031)
	for i := 0; i < n; i++ {
		set(i, 2*g.f64()-1)
	}
}

// treeSerial replays the whole tree on the host and returns the expected
// result heap (identical addition order to both parallel versions, so
// comparisons are exact).
func treeSerial(x []float64, n, eff int) []float64 {
	res := make([]float64, 2<<eff)
	var node func(k, d int) float64
	node = func(k, d int) float64 {
		if d >= eff {
			lo, hi := treeSegment(k, d, n)
			s := 0.0
			for i := lo; i < hi; i++ {
				v := x[i]
				s += v*v + 0.5*v
			}
			res[k] = s
			return s
		}
		s := node(2*k, d+1) + node(2*k+1, d+1)
		res[k] = s
		return s
	}
	node(1, 0)
	return res
}

// BuildTreeTasks constructs the recursive task-tree instance at the given
// cut-off depth.
func BuildTreeTasks(rt *omp.Runtime, s Scale, cutoff int) *Instance {
	n := treeSizeFor(s)
	eff := treeDepth(n, cutoff)
	x := rt.NewF64(n)
	res := rt.NewF64(2 << eff)
	treeInit(x.Set, n)

	var node func(c *omp.Thread, k, d int)
	node = func(c *omp.Thread, k, d int) {
		if d >= eff {
			lo, hi := treeSegment(k, d, n)
			sum := treeLeaf(c, func(i int) float64 { return c.LdF(x, i) }, lo, hi)
			c.StF(res, k, sum)
			return
		}
		l, r := 2*k, 2*k+1
		c.Task(func(ch *omp.Thread) { node(ch, l, d+1) })
		c.Task(func(ch *omp.Thread) { node(ch, r, d+1) })
		c.Taskwait()
		c.Compute(4)
		c.StF(res, k, c.LdF(res, l)+c.LdF(res, r))
	}
	program := func(mt *omp.Thread) {
		mt.Parallel(func(t *omp.Thread) {
			t.Master(func() {
				t.Task(func(c *omp.Thread) { node(c, 1, 0) })
			})
			t.TaskBarrier()
		})
	}
	verify := func() error {
		want := treeSerial(x.Data(), n, eff)
		return compareArrays("tree.res", res.Data()[1:], want[1:], 1e-12)
	}
	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(res.Data()) },
		Size:    fmt.Sprintf("n=%d leaves=%d cutoff=%d tasks", n, 1<<eff, eff),
	}
}

// BuildTreeLoop constructs the loop baseline: the leaf segments as a
// static worksharing loop, the inner combine serial on the master.
func BuildTreeLoop(rt *omp.Runtime, s Scale) *Instance {
	n := treeSizeFor(s)
	eff := treeDepth(n, MaxTreeCutoff) // saturated tree: same leaves at every cutoff
	leaves := 1 << eff
	x := rt.NewF64(n)
	res := rt.NewF64(2 << eff)
	treeInit(x.Set, n)

	program := func(mt *omp.Thread) {
		mt.Parallel(func(t *omp.Thread) {
			t.For(0, leaves, func(kk int) {
				k := leaves + kk
				lo, hi := treeSegment(k, eff, n)
				sum := treeLeaf(t, func(i int) float64 { return t.LdF(x, i) }, lo, hi)
				t.StF(res, k, sum)
			})
			t.Master(func() {
				for k := leaves - 1; k >= 1; k-- {
					t.Compute(4)
					t.StF(res, k, t.LdF(res, 2*k)+t.LdF(res, 2*k+1))
				}
			})
			t.Barrier()
		})
	}
	verify := func() error {
		want := treeSerial(x.Data(), n, eff)
		return compareArrays("treel.res", res.Data()[1:], want[1:], 1e-12)
	}
	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(res.Data()) },
		Size:    fmt.Sprintf("n=%d leaves=%d loop baseline", n, leaves),
	}
}

// BuildEPTaskloop constructs EP with its block loop as a taskloop: the
// master spawns every chunk task, so all other threads steal their work.
func BuildEPTaskloop(rt *omp.Runtime, s Scale) *Instance {
	sz := epSizeFor(s)
	counts := rt.NewF64(epBins)

	program := func(mt *omp.Thread) {
		mt.Parallel(func(t *omp.Thread) {
			t.Master(func() {
				t.TaskloopChunked(0, 0, sz.blocks, func(c *omp.Thread, clo, chi int) {
					var local [epBins]float64
					for b := clo; b < chi; b++ {
						g := newLCG(uint64(b) * 1000)
						for i := 0; i < sz.perBlock; i++ {
							x := 2*g.f64() - 1
							y := 2*g.f64() - 1
							c.Compute(12)
							s2 := x*x + y*y
							if s2 > 1 || s2 == 0 {
								continue
							}
							f := math.Sqrt(-2 * math.Log(s2) / s2)
							gx, gy := x*f, y*f
							c.Compute(20)
							m := math.Max(math.Abs(gx), math.Abs(gy))
							bin := int(m)
							if bin >= epBins {
								bin = epBins - 1
							}
							local[bin]++
						}
					}
					for bin := 0; bin < epBins; bin++ {
						c.AtomicAddF(counts, bin, local[bin])
					}
				})
			})
			t.TaskBarrier()
		})
	}
	verify := func() error {
		want := epSerial(sz, func(int) int { return 1 })
		return compareArrays("ept.counts", counts.Data(), want, 1e-9)
	}
	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(counts.Data()) },
		Size:    fmt.Sprintf("blocks=%d pairs/block=%d taskloop", sz.blocks, sz.perBlock),
	}
}

// TreeKernel returns the TREE kernel bound to a cut-off depth (the
// tasking study sweeps this; elsewhere the default cut-off is used).
func TreeKernel(cutoff int) Kernel {
	return Kernel{
		Name: "TREE",
		Build: func(rt *omp.Runtime, s Scale) *Instance {
			return BuildTreeTasks(rt, s, cutoff)
		},
	}
}

// TreeLoopKernel returns the TREEL loop baseline.
func TreeLoopKernel() Kernel {
	return Kernel{Name: "TREEL", Build: BuildTreeLoop}
}

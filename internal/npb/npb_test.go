package npb

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

// runCfg returns a 4-node test configuration.
func runCfg(mode core.Mode) omp.Config {
	p := machine.DefaultParams()
	p.Nodes = 4
	return omp.Config{Machine: p, Mode: mode}
}

// buildAndRun constructs kernel k at ScaleTest under cfg, runs it, and
// verifies against the serial reference.
func buildAndRun(t *testing.T, k Kernel, cfg omp.Config) *omp.Runtime {
	t.Helper()
	rt, err := omp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst := k.Build(rt, ScaleTest)
	if err := rt.Run(inst.Program); err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatalf("%s: verification failed: %v", k.Name, err)
	}
	return rt
}

func TestKernelRegistry(t *testing.T) {
	ks := Kernels()
	if len(ks) != 5 {
		t.Fatalf("%d kernels, want 5", len(ks))
	}
	names := []string{"BT", "CG", "LU", "MG", "SP"}
	for i, k := range ks {
		if k.Name != names[i] {
			t.Fatalf("kernel %d = %s, want %s", i, k.Name, names[i])
		}
		if _, err := ByName(k.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByName("XX"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	lu, _ := ByName("LU")
	if lu.Dynamic {
		t.Fatal("LU must be excluded from dynamic-scheduling runs")
	}
}

func TestScaleStrings(t *testing.T) {
	if ScaleTest.String() != "test" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Fatal("scale strings")
	}
}

// All kernels, all modes, static schedule: results must verify against the
// serial references.
func TestKernelsVerifyAcrossModes(t *testing.T) {
	for _, k := range Kernels() {
		for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
			k, mode := k, mode
			t.Run(k.Name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				buildAndRun(t, k, runCfg(mode))
			})
		}
	}
}

// Slipstream with local-sync tokens and with self-invalidation: still
// correct.
func TestKernelsVerifySlipstreamVariants(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name+"/L1", func(t *testing.T) {
			t.Parallel()
			cfg := runCfg(core.ModeSlipstream)
			cfg.Slipstream = core.L1
			buildAndRun(t, k, cfg)
		})
		t.Run(k.Name+"/G0-selfinv", func(t *testing.T) {
			t.Parallel()
			cfg := runCfg(core.ModeSlipstream)
			cfg.SelfInvalidate = true
			buildAndRun(t, k, cfg)
		})
	}
}

// Dynamic and guided scheduling: the dynamic-capable kernels must verify
// in slipstream mode (the A-stream replays its R-stream's chunks).
func TestKernelsVerifyDynamicSchedules(t *testing.T) {
	for _, k := range Kernels() {
		if !k.Dynamic {
			continue
		}
		for _, sched := range []omp.Schedule{omp.Dynamic, omp.Guided} {
			k, sched := k, sched
			t.Run(k.Name+"/"+sched.String(), func(t *testing.T) {
				t.Parallel()
				cfg := runCfg(core.ModeSlipstream)
				cfg.Sched = sched
				cfg.Chunk = 2
				buildAndRun(t, k, cfg)
			})
		}
	}
}

// Determinism: identical wall times across repeated runs.
func TestKernelDeterminism(t *testing.T) {
	wall := func() uint64 {
		cfg := runCfg(core.ModeSlipstream)
		rt, err := omp.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst := BuildCG(rt, ScaleTest)
		if err := rt.Run(inst.Program); err != nil {
			t.Fatal(err)
		}
		return rt.M.WallTime()
	}
	if a, b := wall(), wall(); a != b {
		t.Fatalf("CG slipstream wall time not deterministic: %d vs %d", a, b)
	}
}

// The A-stream must generate useful prefetches on a real kernel: timely
// plus late shared-read coverage by the A-stream should be well above zero.
func TestSlipstreamCoverageOnCG(t *testing.T) {
	rt, err := omp.New(runCfg(core.ModeSlipstream))
	if err != nil {
		t.Fatal(err)
	}
	inst := BuildCG(rt, ScaleTest)
	if err := rt.Run(inst.Program); err != nil {
		t.Fatal(err)
	}
	cls := &rt.M.Class
	if cls.KindTotal(0) == 0 {
		t.Fatal("no shared read fills recorded")
	}
	aCover := cls.Share(1, 0, 0) + cls.Share(1, 0, 1) // A timely + late reads
	if aCover < 0.05 {
		t.Fatalf("A-stream read coverage = %.1f%%, implausibly low", aCover*100)
	}
}

package npb

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// LUHP is the hyperplane ("hp") variant of the LU solver (an extension).
// Where the red-black port (BuildLU) reorders the Gauss–Seidel updates for
// parallelism, the hyperplane variant keeps the true lower/upper triangular
// dependence order of NPB's SSOR: points on the wavefront i+j+k = d depend
// only on points of earlier hyperplanes, so each hyperplane is a parallel
// loop followed by a barrier. The result is many small worksharing
// constructs per sweep — the barrier-dominated regime that stresses
// slipstream's token synchronization hardest.
type luhpSize struct {
	n     int
	iters int
}

func luhpSizeFor(s Scale) luhpSize {
	switch s {
	case ScaleTest:
		return luhpSize{n: 8, iters: 1}
	case ScaleSmall:
		return luhpSize{n: 10, iters: 2}
	default:
		return luhpSize{n: 12, iters: 4}
	}
}

// BuildLUHP constructs the hyperplane-LU extension instance.
func BuildLUHP(rt *omp.Runtime, s Scale) *Instance {
	sz := luhpSizeFor(s)
	n := sz.n
	u := rt.NewF64(n * n * n)
	f := rt.NewF64(n * n * n)
	g := newLCG(71)
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				f.Set(idx3(i, j, k, n), g.f64()-0.5)
			}
		}
	}

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				// Lower sweep: hyperplanes in increasing i+j+k order.
				for d := 3; d <= 3*(n-2); d++ {
					luhpPlane(t, u, f, n, d, false)
				}
				// Upper sweep: decreasing order.
				for d := 3 * (n - 2); d >= 3; d-- {
					luhpPlane(t, u, f, n, d, true)
				}
			})
		}
	}

	verify := func() error {
		want := luhpSerial(f.Data(), sz)
		return compareArrays("luhp.u", u.Data(), want, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(u.Data()) },
		Size:    fmt.Sprintf("grid=%d^3 wavefront ssor-iters=%d", n, sz.iters),
	}
}

// luhpPlane updates every interior point with i+j+k == d (a parallel loop
// over the hyperplane, ending in the construct's barrier). The update uses
// only neighbours on adjacent hyperplanes, already final for this sweep.
func luhpPlane(t *omp.Thread, u, f *shmem.F64, n, d int, upper bool) {
	pts := hyperplane(n, d)
	t.For(0, len(pts), func(p int) {
		i, j, k := pts[p][0], pts[p][1], pts[p][2]
		id := idx3(i, j, k, n)
		gs := (t.LdF(f, id) + mgSum6(t, u, i, j, k, n)) / luDiag
		w := luOmega
		if upper {
			w = luOmega / 2 // lighter relaxation on the upper sweep
		}
		t.StF(u, id, (1-w)*t.LdF(u, id)+w*gs)
		t.Compute(11)
	})
}

// hyperplane enumerates interior points with i+j+k == d in a fixed order.
func hyperplane(n, d int) [][3]int {
	var pts [][3]int
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			i := d - j - k
			if i >= 1 && i < n-1 {
				pts = append(pts, [3]int{i, j, k})
			}
		}
	}
	return pts
}

// luhpSerial replays the wavefront sweeps sequentially in the same
// hyperplane order (the parallel version is order-independent within a
// plane, so results match bit-exactly).
func luhpSerial(f []float64, sz luhpSize) []float64 {
	n := sz.n
	u := make([]float64, n*n*n)
	for it := 0; it < sz.iters; it++ {
		for d := 3; d <= 3*(n-2); d++ {
			for _, pt := range hyperplane(n, d) {
				i, j, k := pt[0], pt[1], pt[2]
				id := idx3(i, j, k, n)
				gs := (f[id] + sSum6f(u, i, j, k, n)) / luDiag
				u[id] = (1-luOmega)*u[id] + luOmega*gs
			}
		}
		for d := 3 * (n - 2); d >= 3; d-- {
			for _, pt := range hyperplane(n, d) {
				i, j, k := pt[0], pt[1], pt[2]
				id := idx3(i, j, k, n)
				gs := (f[id] + sSum6f(u, i, j, k, n)) / luDiag
				w := luOmega / 2
				u[id] = (1-w)*u[id] + w*gs
			}
		}
	}
	return u
}

package npb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentAndMul(t *testing.T) {
	a := ident5(2)
	b := ident5(3)
	c := mulMM(a, b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 6
			}
			if c[i*5+j] != want {
				t.Fatalf("c[%d,%d] = %v", i, j, c[i*5+j])
			}
		}
	}
}

func TestInv5(t *testing.T) {
	g := newLCG(1)
	for trial := 0; trial < 20; trial++ {
		var a mat5
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				a[i*5+j] = 0.2 * (g.f64() - 0.5)
			}
			a[i*5+i] = 3 + g.f64()
		}
		inv := inv5(a)
		prod := mulMM(a, inv)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod[i*5+j]-want) > 1e-10 {
					t.Fatalf("trial %d: (A·A⁻¹)[%d,%d] = %v", trial, i, j, prod[i*5+j])
				}
			}
		}
	}
}

func TestMulMVAndSub(t *testing.T) {
	m := ident5(2)
	v := vec5{1, 2, 3, 4, 5}
	got := mulMV(m, v)
	for i := range got {
		if got[i] != 2*v[i] {
			t.Fatalf("mulMV = %v", got)
		}
	}
	d := subV(got, v)
	for i := range d {
		if d[i] != v[i] {
			t.Fatalf("subV = %v", d)
		}
	}
}

// multiplyTri computes y = T x for the block tridiagonal T.
func multiplyTri(a, b, c []mat5, x []vec5) []vec5 {
	m := len(x)
	y := make([]vec5, m)
	for i := 0; i < m; i++ {
		y[i] = mulMV(b[i], x[i])
		if i > 0 {
			yi := mulMV(a[i], x[i-1])
			for k := range y[i] {
				y[i][k] += yi[k]
			}
		}
		if i < m-1 {
			yi := mulMV(c[i], x[i+1])
			for k := range y[i] {
				y[i][k] += yi[k]
			}
		}
	}
	return y
}

func TestBlockTriSolve(t *testing.T) {
	g := newLCG(5)
	for _, m := range []int{1, 2, 3, 7, 12} {
		a := make([]mat5, m)
		b := make([]mat5, m)
		c := make([]mat5, m)
		xTrue := make([]vec5, m)
		for i := 0; i < m; i++ {
			a[i], b[i], c[i] = btBlocks(g.f64() * 3)
			for k := 0; k < 5; k++ {
				xTrue[i][k] = g.f64() - 0.5
			}
		}
		rhs := multiplyTri(a, b, c, xTrue)
		blockTriSolve(a, b, c, rhs)
		for i := 0; i < m; i++ {
			for k := 0; k < 5; k++ {
				if math.Abs(rhs[i][k]-xTrue[i][k]) > 1e-9 {
					t.Fatalf("m=%d: x[%d][%d] = %v, want %v", m, i, k, rhs[i][k], xTrue[i][k])
				}
			}
		}
	}
}

// multiplyPenta computes y = P x for the constant-coefficient banded P.
func multiplyPenta(e2, e1, d, f1, f2 float64, x []float64) []float64 {
	m := len(x)
	y := make([]float64, m)
	for i := range x {
		y[i] = d * x[i]
		if i >= 1 {
			y[i] += e1 * x[i-1]
		}
		if i >= 2 {
			y[i] += e2 * x[i-2]
		}
		if i+1 < m {
			y[i] += f1 * x[i+1]
		}
		if i+2 < m {
			y[i] += f2 * x[i+2]
		}
	}
	return y
}

func TestPentaSolve(t *testing.T) {
	g := newLCG(9)
	for _, m := range []int{1, 2, 3, 4, 10, 25} {
		xTrue := make([]float64, m)
		for i := range xTrue {
			xTrue[i] = g.f64() - 0.5
		}
		rhs := multiplyPenta(spE2, spE1, spD, spE1, spE2, xTrue)
		pentaSolve(spE2, spE1, spD, spE1, spE2, rhs)
		for i := range xTrue {
			if math.Abs(rhs[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("m=%d: x[%d] = %v, want %v", m, i, rhs[i], xTrue[i])
			}
		}
	}
}

// Property: pentaSolve is an exact inverse of multiplyPenta for random
// right-hand sides and diagonally dominant coefficients.
func TestPropertyPentaRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 40 {
			vals = vals[:40]
		}
		x := make([]float64, len(vals))
		for i, v := range vals {
			// Clamp to a sane range; NaN/Inf inputs are not grid states.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			x[i] = math.Mod(v, 100)
		}
		rhs := multiplyPenta(spE2, spE1, spD, spE1, spE2, x)
		pentaSolve(spE2, spE1, spD, spE1, spE2, rhs)
		for i := range x {
			if math.Abs(rhs[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTBlocksDominant(t *testing.T) {
	for _, u0 := range []float64{-1e9, -3, -0.5, 0, 0.5, 3, 1e9} {
		a, b, c := btBlocks(u0)
		for i := 0; i < 5; i++ {
			diag := math.Abs(b[i*5+i])
			var off float64
			for j := 0; j < 5; j++ {
				if j != i {
					off += math.Abs(b[i*5+j])
				}
				off += math.Abs(a[i*5+j]) + math.Abs(c[i*5+j])
			}
			// Generalized row dominance of the block system.
			if diag <= off {
				t.Fatalf("u0=%v row %d: diag %v <= off %v", u0, i, diag, off)
			}
		}
	}
}

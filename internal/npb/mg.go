package npb

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// MG is the NPB multigrid kernel: V-cycles of a 3-D 7-point Poisson-like
// operator with restriction and prolongation across a grid hierarchy.
// Sweeps are parallelized over the outermost (k) dimension, giving the
// plane-partitioned neighbour communication the original has.
//
// Substitution vs NPB 2.3: zero boundaries instead of periodic ones and a
// simplified (but stable, diagonally dominated) smoother; the V-cycle
// structure, operator stencils, and barrier cadence per operator are kept.
const (
	mgC0 = 6.0  // stencil diagonal
	mgD0 = 0.14 // smoother: weight of the local residual
	mgD1 = 0.02 // smoother: weight of the residual's 6 neighbours
)

type mgSize struct {
	n     int // finest grid edge (power of two)
	iters int // V-cycles
}

func mgSizeFor(s Scale) mgSize {
	switch s {
	case ScaleTest:
		return mgSize{n: 8, iters: 1}
	case ScaleSmall:
		return mgSize{n: 16, iters: 2}
	default:
		return mgSize{n: 32, iters: 4} // class S edge length
	}
}

// mgLevel is one grid of the hierarchy.
type mgLevel struct {
	n    int
	u, r *shmem.F64
}

// BuildMG constructs the MG benchmark instance on rt.
func BuildMG(rt *omp.Runtime, s Scale) *Instance {
	sz := mgSizeFor(s)
	var levels []*mgLevel
	for n := sz.n; n >= 4; n /= 2 {
		levels = append(levels, &mgLevel{n: n, u: rt.NewF64(n * n * n), r: rt.NewF64(n * n * n)})
	}
	v := rt.NewF64(sz.n * sz.n * sz.n)
	// Source term: a few unit charges at deterministic interior points
	// (NPB places +1/-1 charges at random points).
	g := newLCG(7)
	for c := 0; c < 10; c++ {
		i := 1 + g.intn(sz.n-2)
		j := 1 + g.intn(sz.n-2)
		k := 1 + g.intn(sz.n-2)
		sign := 1.0
		if c%2 == 1 {
			sign = -1
		}
		v.Set(idx3(i, j, k, sz.n), sign)
	}

	program := func(mt *omp.Thread) {
		// r = v - A u with u = 0, i.e. r = v.
		mt.Parallel(func(t *omp.Thread) {
			mgResid(t, levels[0], v)
		})
		for it := 0; it < sz.iters; it++ {
			mt.Parallel(func(t *omp.Thread) {
				mgVCycle(t, levels, v)
			})
		}
		mt.Parallel(func(t *omp.Thread) {
			mgResid(t, levels[0], v)
			// rnorm, as NPB reports.
			n := levels[0].n
			partial := 0.0
			t.ForNowait(0, n, func(k int) {
				if k == 0 || k == n-1 {
					return
				}
				for j := 1; j < n-1; j++ {
					for i := 1; i < n-1; i++ {
						ri := t.LdF(levels[0].r, idx3(i, j, k, n))
						partial += ri * ri
						t.Compute(2)
					}
				}
			})
			t.ReduceSumF(partial)
		})
	}

	verify := func() error {
		wantU, wantR := mgSerial(levels, v.Data(), sz)
		if err := compareArrays("mg.u", levels[0].u.Data(), wantU, 0); err != nil {
			return err
		}
		return compareArrays("mg.r", levels[0].r.Data(), wantR, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(levels[0].u.Data()) },
		Size:    fmt.Sprintf("grid=%d^3 levels=%d vcycles=%d", sz.n, len(levels), sz.iters),
	}
}

// mgVCycle runs one V-cycle over the hierarchy.
func mgVCycle(t *omp.Thread, levels []*mgLevel, v *shmem.F64) {
	last := len(levels) - 1
	// Down: restrict residuals.
	for l := 0; l < last; l++ {
		mgRprj3(t, levels[l], levels[l+1])
	}
	// Coarsest: u = 0, one smoothing pass.
	mgZero(t, levels[last])
	mgPsinv(t, levels[last])
	// Up: prolongate, correct residual, smooth.
	for l := last - 1; l >= 1; l-- {
		mgInterpSet(t, levels[l+1], levels[l])
		mgResidInPlace(t, levels[l])
		mgPsinv(t, levels[l])
	}
	mgInterpAdd(t, levels[1], levels[0])
	mgResid(t, levels[0], v)
	mgPsinv(t, levels[0])
}

// mgResid computes r = v - A u on the finest level.
func mgResid(t *omp.Thread, lv *mgLevel, v *shmem.F64) {
	n := lv.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				au := mgC0*t.LdF(lv.u, id) - mgSum6(t, lv.u, i, j, k, n)
				t.StF(lv.r, id, t.LdF(v, id)-au)
				t.Compute(9)
			}
		}
	})
}

// mgResidInPlace computes r = r - A u (intermediate levels: the restricted
// residual is the right-hand side).
func mgResidInPlace(t *omp.Thread, lv *mgLevel) {
	n := lv.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				au := mgC0*t.LdF(lv.u, id) - mgSum6(t, lv.u, i, j, k, n)
				t.StF(lv.r, id, t.LdF(lv.r, id)-au)
				t.Compute(9)
			}
		}
	})
}

// mgPsinv applies the smoother u += d0*r + d1*Σ6 r.
func mgPsinv(t *omp.Thread, lv *mgLevel) {
	n := lv.n
	t.For(1, n-1, func(k int) {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				corr := mgD0*t.LdF(lv.r, id) + mgD1*mgSum6(t, lv.r, i, j, k, n)
				t.StF(lv.u, id, t.LdF(lv.u, id)+corr)
				t.Compute(10)
			}
		}
	})
}

// mgRprj3 restricts the fine residual to the coarse grid.
func mgRprj3(t *omp.Thread, fine, coarse *mgLevel) {
	nc := coarse.n
	nf := fine.n
	t.For(1, nc-1, func(kc int) {
		kf := 2 * kc
		for jc := 1; jc < nc-1; jc++ {
			jf := 2 * jc
			for ic := 1; ic < nc-1; ic++ {
				fi := 2 * ic
				c := 0.5*t.LdF(fine.r, idx3(fi, jf, kf, nf)) +
					mgSum6(t, fine.r, fi, jf, kf, nf)/12.0
				t.StF(coarse.r, idx3(ic, jc, kc, nc), c)
				t.Compute(10)
			}
		}
	})
}

// mgInterpSet sets the fine grid's u from the coarse correction (u_f = P u_c).
func mgInterpSet(t *omp.Thread, coarse, fine *mgLevel) {
	mgInterp(t, coarse, fine, false)
}

// mgInterpAdd adds the prolongated correction on the finest level.
func mgInterpAdd(t *omp.Thread, coarse, fine *mgLevel) {
	mgInterp(t, coarse, fine, true)
}

func mgInterp(t *omp.Thread, coarse, fine *mgLevel, add bool) {
	nf := fine.n
	nc := coarse.n
	t.For(1, nf-1, func(k int) {
		for j := 1; j < nf-1; j++ {
			for i := 1; i < nf-1; i++ {
				val := mgTrilinear(t, coarse.u, i, j, k, nc)
				id := idx3(i, j, k, nf)
				if add {
					val += t.LdF(fine.u, id)
				}
				t.StF(fine.u, id, val)
				t.Compute(12)
			}
		}
	})
}

// mgTrilinear evaluates the coarse field at a fine point by averaging the
// 1, 2, 4, or 8 enclosing coarse points (zero outside the interior).
func mgTrilinear(t *omp.Thread, u *shmem.F64, i, j, k, nc int) float64 {
	sum := 0.0
	cnt := 0
	for _, ci := range corner(i) {
		for _, cj := range corner(j) {
			for _, ck := range corner(k) {
				sum += t.LdF(u, idx3(ci, cj, ck, nc))
				cnt++
			}
		}
	}
	return sum / float64(cnt)
}

// corner returns the coarse indices bracketing fine index f.
func corner(f int) []int {
	if f%2 == 0 {
		return []int{f / 2}
	}
	return []int{f / 2, f/2 + 1}
}

// mgSum6 loads and sums a point's six neighbours.
func mgSum6(t *omp.Thread, a *shmem.F64, i, j, k, n int) float64 {
	return t.LdF(a, idx3(i-1, j, k, n)) + t.LdF(a, idx3(i+1, j, k, n)) +
		t.LdF(a, idx3(i, j-1, k, n)) + t.LdF(a, idx3(i, j+1, k, n)) +
		t.LdF(a, idx3(i, j, k-1, n)) + t.LdF(a, idx3(i, j, k+1, n))
}

// mgZero clears a level's u.
func mgZero(t *omp.Thread, lv *mgLevel) {
	n := lv.n
	t.For(0, n, func(k int) {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				t.StF(lv.u, idx3(i, j, k, n), 0)
			}
		}
	})
}

// ---- Serial reference -------------------------------------------------------

type mgSerialLevel struct {
	n    int
	u, r []float64
}

// mgSerial replays the program sequentially with identical arithmetic.
func mgSerial(levels []*mgLevel, v []float64, sz mgSize) (u0, r0 []float64) {
	ls := make([]*mgSerialLevel, len(levels))
	for i, lv := range levels {
		ls[i] = &mgSerialLevel{n: lv.n, u: make([]float64, lv.n*lv.n*lv.n), r: make([]float64, lv.n*lv.n*lv.n)}
	}
	sResid(ls[0], v)
	for it := 0; it < sz.iters; it++ {
		last := len(ls) - 1
		for l := 0; l < last; l++ {
			sRprj3(ls[l], ls[l+1])
		}
		for i := range ls[last].u {
			ls[last].u[i] = 0
		}
		sPsinv(ls[last])
		for l := last - 1; l >= 1; l-- {
			sInterp(ls[l+1], ls[l], false)
			sResidRHS(ls[l])
			sPsinv(ls[l])
		}
		sInterp(ls[1], ls[0], true)
		sResid(ls[0], v)
		sPsinv(ls[0])
	}
	sResid(ls[0], v)
	return ls[0].u, ls[0].r
}

func sSum6(a []float64, i, j, k, n int) float64 {
	return a[idx3(i-1, j, k, n)] + a[idx3(i+1, j, k, n)] +
		a[idx3(i, j-1, k, n)] + a[idx3(i, j+1, k, n)] +
		a[idx3(i, j, k-1, n)] + a[idx3(i, j, k+1, n)]
}

func sResid(lv *mgSerialLevel, v []float64) {
	n := lv.n
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				lv.r[id] = v[id] - (mgC0*lv.u[id] - sSum6(lv.u, i, j, k, n))
			}
		}
	}
}

func sResidRHS(lv *mgSerialLevel) {
	n := lv.n
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				lv.r[id] -= mgC0*lv.u[id] - sSum6(lv.u, i, j, k, n)
			}
		}
	}
}

func sPsinv(lv *mgSerialLevel) {
	n := lv.n
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				id := idx3(i, j, k, n)
				lv.u[id] += mgD0*lv.r[id] + mgD1*sSum6(lv.r, i, j, k, n)
			}
		}
	}
}

func sRprj3(fine, coarse *mgSerialLevel) {
	nc, nf := coarse.n, fine.n
	for kc := 1; kc < nc-1; kc++ {
		for jc := 1; jc < nc-1; jc++ {
			for ic := 1; ic < nc-1; ic++ {
				fi, jf, kf := 2*ic, 2*jc, 2*kc
				coarse.r[idx3(ic, jc, kc, nc)] = 0.5*fine.r[idx3(fi, jf, kf, nf)] +
					sSum6(fine.r, fi, jf, kf, nf)/12.0
			}
		}
	}
}

func sInterp(coarse, fine *mgSerialLevel, add bool) {
	nf, nc := fine.n, coarse.n
	for k := 1; k < nf-1; k++ {
		for j := 1; j < nf-1; j++ {
			for i := 1; i < nf-1; i++ {
				sum := 0.0
				cnt := 0
				for _, ci := range corner(i) {
					for _, cj := range corner(j) {
						for _, ck := range corner(k) {
							sum += coarse.u[idx3(ci, cj, ck, nc)]
							cnt++
						}
					}
				}
				val := sum / float64(cnt)
				id := idx3(i, j, k, nf)
				if add {
					val += fine.u[id]
				}
				fine.u[id] = val
			}
		}
	}
}

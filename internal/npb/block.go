package npb

// Small dense kernels used by the BT (5×5 block tridiagonal) and SP
// (scalar pentadiagonal) line solvers. Blocks are thread-private working
// state (NPB keeps the lhs arrays private per line), so operations here
// are pure Go; callers charge the corresponding compute cycles.

// vec5 is one grid cell's five solution components.
type vec5 [5]float64

// mat5 is a 5×5 block, row-major.
type mat5 [25]float64

// ident5 returns the identity scaled by d.
func ident5(d float64) mat5 {
	var m mat5
	for i := 0; i < 5; i++ {
		m[i*5+i] = d
	}
	return m
}

// addM returns a + b.
func addM(a, b mat5) mat5 {
	var out mat5
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

// scaleM returns s*a.
func scaleM(a mat5, s float64) mat5 {
	var out mat5
	for i := range out {
		out[i] = a[i] * s
	}
	return out
}

// mulMM returns a*b (25 dot products).
func mulMM(a, b mat5) mat5 {
	var out mat5
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			s := 0.0
			for k := 0; k < 5; k++ {
				s += a[i*5+k] * b[k*5+j]
			}
			out[i*5+j] = s
		}
	}
	return out
}

// mulMV returns a*v.
func mulMV(a mat5, v vec5) vec5 {
	var out vec5
	for i := 0; i < 5; i++ {
		s := 0.0
		for k := 0; k < 5; k++ {
			s += a[i*5+k] * v[k]
		}
		out[i] = s
	}
	return out
}

// subV returns a - b.
func subV(a, b vec5) vec5 {
	var out vec5
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return out
}

// subM returns a - b.
func subM(a, b mat5) mat5 {
	var out mat5
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return out
}

// inv5 inverts a (diagonally dominant) 5×5 block by Gauss-Jordan
// elimination without pivoting — the BT blocks are constructed dominant,
// exactly as NPB's binvcrhs assumes invertibility.
func inv5(a mat5) mat5 {
	inv := ident5(1)
	for col := 0; col < 5; col++ {
		piv := 1.0 / a[col*5+col]
		for j := 0; j < 5; j++ {
			a[col*5+j] *= piv
			inv[col*5+j] *= piv
		}
		for row := 0; row < 5; row++ {
			if row == col {
				continue
			}
			f := a[row*5+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 5; j++ {
				a[row*5+j] -= f * a[col*5+j]
				inv[row*5+j] -= f * inv[col*5+j]
			}
		}
	}
	return inv
}

// blockTriSolve solves a block-tridiagonal system in place:
// a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = rhs[i], i = 0..m-1
// (a[0] and c[m-1] unused), returning x in rhs. This is the block Thomas
// algorithm NPB's x/y/z_solve implement with binvcrhs/matmul_sub.
func blockTriSolve(a, b, c []mat5, rhs []vec5) {
	m := len(rhs)
	// Forward elimination.
	binv := inv5(b[0])
	cp := make([]mat5, m) // c' carried terms
	cp[0] = mulMM(binv, c[0])
	rhs[0] = mulMV(binv, rhs[0])
	for i := 1; i < m; i++ {
		bm := subM(b[i], mulMM(a[i], cp[i-1]))
		binv = inv5(bm)
		if i < m-1 {
			cp[i] = mulMM(binv, c[i])
		}
		rhs[i] = mulMV(binv, subV(rhs[i], mulMV(a[i], rhs[i-1])))
	}
	// Back substitution.
	for i := m - 2; i >= 0; i-- {
		rhs[i] = subV(rhs[i], mulMV(cp[i], rhs[i+1]))
	}
}

// pentaSolve solves a scalar pentadiagonal system with constant stencil
// coefficients (e2, e1, d, f1, f2) in place: the two-pass elimination SP's
// x/y/z_solve perform. rhs has length m; off-diagonals beyond the ends are
// absent.
func pentaSolve(e2, e1, d, f1, f2 float64, rhs []float64) {
	m := len(rhs)
	if m == 0 {
		return
	}
	// Working copies of the (row-varying after elimination) bands.
	diag := make([]float64, m)
	up1 := make([]float64, m)
	up2 := make([]float64, m)
	lo1 := make([]float64, m)
	lo2 := make([]float64, m)
	for i := 0; i < m; i++ {
		diag[i], up1[i], up2[i], lo1[i], lo2[i] = d, f1, f2, e1, e2
	}
	// Forward elimination of the two sub-diagonals: row i-1 clears the
	// first sub-diagonal of row i and the second sub-diagonal of row i+1.
	for i := 1; i < m; i++ {
		f := lo1[i] / diag[i-1]
		diag[i] -= f * up1[i-1]
		up1[i] -= f * up2[i-1]
		rhs[i] -= f * rhs[i-1]
		if i+1 < m {
			g := lo2[i+1] / diag[i-1]
			lo1[i+1] -= g * up1[i-1]
			diag[i+1] -= g * up2[i-1]
			rhs[i+1] -= g * rhs[i-1]
		}
	}
	// Back substitution.
	rhs[m-1] /= diag[m-1]
	if m >= 2 {
		rhs[m-2] = (rhs[m-2] - up1[m-2]*rhs[m-1]) / diag[m-2]
	}
	for i := m - 3; i >= 0; i-- {
		rhs[i] = (rhs[i] - up1[i]*rhs[i+1] - up2[i]*rhs[i+2]) / diag[i]
	}
}

package npb

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/shmem"
)

// LU is the NPB SSOR solver. The original performs pipelined lower/upper
// triangular sweeps over a 3-D grid; a significant part of its code
// hard-codes static scheduling, which is why the paper excludes LU from
// the dynamic-scheduling experiments (§5.2).
//
// Substitution vs NPB 2.3: the wavefront-pipelined triangular sweeps are
// replaced by red-black SOR sweeps, which preserve the per-iteration sweep
// and barrier structure (two half-sweeps plus a residual evaluation and a
// norm reduction) without the software pipeline, and make results
// order-independent and hence bit-verifiable. Worksharing is over
// flattened (k,j) plane-pairs, as the grid is small relative to the team.
const (
	luOmega = 1.2 // SOR relaxation factor
	luDiag  = 6.0
)

type luSize struct {
	n     int
	iters int
}

func luSizeFor(s Scale) luSize {
	switch s {
	case ScaleTest:
		return luSize{n: 8, iters: 2}
	case ScaleSmall:
		return luSize{n: 12, iters: 3}
	default:
		return luSize{n: 12, iters: 8} // class-S edge (12^3), reduced steps
	}
}

// BuildLU constructs the LU benchmark instance on rt.
func BuildLU(rt *omp.Runtime, s Scale) *Instance {
	sz := luSizeFor(s)
	n := sz.n
	u := rt.NewF64(n * n * n)
	f := rt.NewF64(n * n * n)
	r := rt.NewF64(n * n * n)
	g := newLCG(17)
	for k := 1; k < n-1; k++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				f.Set(idx3(i, j, k, n), g.f64()-0.5)
			}
		}
	}

	program := func(mt *omp.Thread) {
		for it := 0; it < sz.iters; it++ {
			// LU specifies static scheduling programmatically for its main
			// sweeps (§5.2), so the sweeps use ForStatic regardless of the
			// run's default schedule.
			mt.Parallel(func(t *omp.Thread) {
				luColorSweep(t, u, f, n, 0)
				luColorSweep(t, u, f, n, 1)
				luResid(t, u, f, r, n)
				partial := 0.0
				t.ForNowait(0, (n-2)*(n-2), func(p int) {
					k, j := p/(n-2)+1, p%(n-2)+1
					for i := 1; i < n-1; i++ {
						ri := t.LdF(r, idx3(i, j, k, n))
						partial += ri * ri
						t.Compute(2)
					}
				})
				t.ReduceSumF(partial)
			})
		}
	}

	verify := func() error {
		wantU, wantR := luSerial(f.Data(), sz)
		if err := compareArrays("lu.u", u.Data(), wantU, 0); err != nil {
			return err
		}
		return compareArrays("lu.r", r.Data(), wantR, 0)
	}

	return &Instance{
		Program: program,
		Verify:  verify,
		Norm:    func() float64 { return l2norm(u.Data()) },
		Size:    fmt.Sprintf("grid=%d^3 ssor-iters=%d omega=%.1f", n, sz.iters, luOmega),
	}
}

// luColorSweep updates all points of one red-black color.
func luColorSweep(t *omp.Thread, u, f *shmem.F64, n, color int) {
	t.ForStatic(0, (n-2)*(n-2), func(p int) {
		k, j := p/(n-2)+1, p%(n-2)+1
		start := 1 + (1+j+k+color)%2
		for i := start; i < n-1; i += 2 {
			id := idx3(i, j, k, n)
			gs := (t.LdF(f, id) + mgSum6(t, u, i, j, k, n)) / luDiag
			t.StF(u, id, (1-luOmega)*t.LdF(u, id)+luOmega*gs)
			t.Compute(11)
		}
	})
}

// luResid computes r = f - A u.
func luResid(t *omp.Thread, u, f, r *shmem.F64, n int) {
	t.ForStatic(0, (n-2)*(n-2), func(p int) {
		k, j := p/(n-2)+1, p%(n-2)+1
		for i := 1; i < n-1; i++ {
			id := idx3(i, j, k, n)
			au := luDiag*t.LdF(u, id) - mgSum6(t, u, i, j, k, n)
			t.StF(r, id, t.LdF(f, id)-au)
			t.Compute(9)
		}
	})
}

// luSerial is the sequential reference.
func luSerial(f []float64, sz luSize) (u, r []float64) {
	n := sz.n
	u = make([]float64, n*n*n)
	r = make([]float64, n*n*n)
	for it := 0; it < sz.iters; it++ {
		for color := 0; color < 2; color++ {
			for k := 1; k < n-1; k++ {
				for j := 1; j < n-1; j++ {
					start := 1 + (1+j+k+color)%2
					for i := start; i < n-1; i += 2 {
						id := idx3(i, j, k, n)
						gs := (f[id] + sSum6f(u, i, j, k, n)) / luDiag
						u[id] = (1-luOmega)*u[id] + luOmega*gs
					}
				}
			}
		}
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					id := idx3(i, j, k, n)
					r[id] = f[id] - (luDiag*u[id] - sSum6f(u, i, j, k, n))
				}
			}
		}
	}
	return u, r
}

func sSum6f(a []float64, i, j, k, n int) float64 {
	return a[idx3(i-1, j, k, n)] + a[idx3(i+1, j, k, n)] +
		a[idx3(i, j-1, k, n)] + a[idx3(i, j+1, k, n)] +
		a[idx3(i, j, k-1, n)] + a[idx3(i, j, k+1, n)]
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// ResultStore is a disk-backed content-addressed result store: one file
// per cache key under a sha256 fan-out directory (results/ab/abcd…).
// Writes are atomic (temp file + fsync + rename), so a crash mid-write
// leaves either the complete result or nothing — never torn bytes. The
// in-memory LRU in front of it may evict freely: eviction drops bytes
// from RAM, not from disk.
type ResultStore struct {
	dir          string
	hits, misses atomic.Uint64
}

// OpenResults opens (or creates) the result store rooted at dir.
func OpenResults(dir string) (*ResultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ResultStore{dir: dir}, nil
}

// ValidKey reports whether key is usable as a store filename: lowercase
// hex, bounded length. Server cache keys are sha256 hex and always pass;
// the check keeps path metacharacters from crafted keys out of the
// filesystem.
func ValidKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *ResultStore) path(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("invalid result key %q", key)
	}
	return filepath.Join(s.dir, key[:2], key), nil
}

// Put stores the bytes for key atomically. Idempotent: content
// addressing means a second Put for the same key writes the same bytes.
func (s *ResultStore) Put(key string, val []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return err
	}
	return syncDir(filepath.Dir(p))
}

// Get loads the bytes for key. The bool reports presence; an error means
// the store itself misbehaved (an absent key is not an error).
func (s *ResultStore) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		s.misses.Add(1)
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.hits.Add(1)
	return b, true, nil
}

// Stats reports lookup counters since open.
func (s *ResultStore) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

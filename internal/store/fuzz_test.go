package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// validJournalBytes frames a small set of records the way the journal
// writes them — the known-good prefix every fuzz case builds on.
func validJournalBytes() []byte {
	var buf bytes.Buffer
	spec := json.RawMessage(`{"kind":"run","kernel":"CG","nodes":4}`)
	for _, r := range []Record{
		{Job: "job-1", Key: "aa11bb22", State: "queued", Attempts: 1, Spec: spec},
		{Job: "job-1", State: "running", Attempts: 1},
		{Job: "job-2", Key: "cc33dd44", State: "queued", Attempts: 1, Spec: spec},
		{Job: "job-1", State: "done", Attempts: 1},
	} {
		buf.Write(encodeFrame(r))
	}
	return buf.Bytes()
}

// FuzzJournalReplay appends arbitrary bytes — truncated frames,
// bit-flipped checksums, interleaved garbage — after a valid journal
// prefix. The contract: replay never panics, always recovers at least
// the jobs framed in the valid prefix, and leaves the journal usable
// for further appends.
func FuzzJournalReplay(f *testing.F) {
	valid := validJournalBytes()
	f.Add([]byte{})
	f.Add(valid[:len(valid)-7])                     // truncated tail
	f.Add([]byte("00000000 2 {}\n"))                // checksum mismatch
	f.Add([]byte("garbage\nmore garbage"))          // no framing at all
	f.Add([]byte{0x00, 0xff, 0x0a, 0x41, 0x0a})     // binary noise with newlines
	f.Add(encodeFrame(Record{Job: "job-9", State: "failed", Error: "x"}))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "journal-000001.wal")
		if err := os.WriteFile(seg, append(append([]byte(nil), valid...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("Open errored on corrupt (not broken) input: %v", err)
		}
		// The valid prefix is framed and newline-terminated, so its jobs
		// must survive whatever follows.
		seen := map[string]bool{}
		for _, r := range recs {
			seen[r.Job] = true
		}
		for _, want := range []string{"job-1", "job-2"} {
			if !seen[want] {
				t.Fatalf("replay lost %s from the valid prefix (tail %q)", want, tail)
			}
		}
		// Post-recovery appends must replay on the next open.
		if err := j.Append(Record{Job: "job-after", State: "queued", Attempts: 1}, true); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		j.Close()
		j2, recs2, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer j2.Close()
		found := false
		for _, r := range recs2 {
			if r.Job == "job-after" {
				found = true
			}
		}
		if !found {
			t.Fatalf("append after corrupt replay did not survive (tail %q)", tail)
		}
	})
}

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testKey = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestResultStoreRoundTrip(t *testing.T) {
	s, err := OpenResults(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(testKey); ok || err != nil {
		t.Fatalf("Get on empty store = %v, %v", ok, err)
	}
	want := []byte("speedup table\n")
	if err := s.Put(testKey, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get(testKey)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses, want 1/1", hits, misses)
	}
}

func TestResultStoreFanOutLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, testKey[:2], testKey)); err != nil {
		t.Fatalf("fan-out file missing: %v", err)
	}
	// Atomic write: no leftover temp files.
	entries, _ := os.ReadDir(filepath.Join(dir, testKey[:2]))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestResultStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenResults(dir)
	if err := s.Put(testKey, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(testKey)
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("Get after reopen = %q, %v, %v", got, ok, err)
	}
}

func TestResultStoreRejectsBadKeys(t *testing.T) {
	s, _ := OpenResults(t.TempDir())
	for _, key := range []string{
		"", "short", "../../etc/passwd", "ABCDEF0123456789", // uppercase
		"zzzzzzzzzzzzzzzz", strings.Repeat("a", 200),
		"0123456/89abcdef",
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok, _ := s.Get(key); ok {
			t.Errorf("Get(%q) reported a hit for an invalid key", key)
		}
	}
}

// Package store is slipd's durability layer: an append-only write-ahead
// journal of job state transitions and a disk-backed content-addressed
// result store. Both exist because every simulation in this repository is
// deterministic and side-effect-free — re-executing a lost job is always
// safe (at-least-once execution) and equal cache keys always name equal
// bytes (exactly-once results) — so a crash costs at most some repeated
// work, never a wrong answer.
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Record is one journal entry: a job entering a state. The first record
// for a job carries its spec; later transitions only need the id. Replay
// folds all records for a job into one (latest state, spec preserved).
//
// The claim fields serve the fleet's claim journal, where the same frame
// format records lease state: which worker holds the claim, when its
// lease expires (unix milliseconds), and the monotonic claim attempt.
// Claim transitions always write the full current lease state, so on
// fold the latest record's claim fields win verbatim — except the
// attempt counter, which never goes backwards.
type Record struct {
	Job      string          `json:"job"`
	Key      string          `json:"key,omitempty"`
	Label    string          `json:"label,omitempty"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`

	// Admission identity: which tenant submitted the work and at which
	// priority class it queues. Set on the first record for a job (or
	// claim) and sticky across transitions, like the spec.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Campaign/Cell tie a job record to the campaign DAG cell it runs,
	// and mark a campaign's own records (Job == Campaign). Sticky.
	Campaign string `json:"campaign,omitempty"`
	Cell     string `json:"cell,omitempty"`

	ClaimedBy      string `json:"claimed_by,omitempty"`
	ClaimExpiresAt int64  `json:"claim_expires_at,omitempty"` // unix ms
	ClaimAttempt   int    `json:"claim_attempt,omitempty"`
}

// merge folds a later record over an earlier one for the same job: the
// newest state/error/attempts win, while the spec, key, and label stick
// from whichever record carried them (transition records omit the spec).
// ClaimedBy and ClaimExpiresAt are taken from the newest record verbatim
// (a re-pended claim legitimately clears them); ClaimAttempt only ever
// grows.
func merge(old, next Record) Record {
	if next.Spec == nil {
		next.Spec = old.Spec
	}
	if next.Key == "" {
		next.Key = old.Key
	}
	if next.Label == "" {
		next.Label = old.Label
	}
	if next.Tenant == "" {
		next.Tenant = old.Tenant
	}
	if next.Priority == "" {
		next.Priority = old.Priority
	}
	if next.Campaign == "" {
		next.Campaign = old.Campaign
	}
	if next.Cell == "" {
		next.Cell = old.Cell
	}
	if next.Attempts < old.Attempts {
		next.Attempts = old.Attempts
	}
	if next.ClaimAttempt < old.ClaimAttempt {
		next.ClaimAttempt = old.ClaimAttempt
	}
	return next
}

// DefaultSegmentBytes is the rotation threshold for journal segments.
const DefaultSegmentBytes = 4 << 20

// Journal is an append-only write-ahead log of Records, stored as
// length+checksum framed JSONL segments under one directory. Appends for
// terminal transitions are fsync'd; rotation compacts the full transition
// history down to one folded record per job and installs the compacted
// segment with an atomic rename.
type Journal struct {
	mu     sync.Mutex
	dir    string
	maxSeg int64

	f        *os.File // active segment, opened O_APPEND
	segSeq   int
	segBytes int64
	total    int64 // bytes across all live segments

	folded map[string]Record
	order  []string // job ids in first-seen order

	logf          func(format string, args ...any)
	dirSyncLogged bool // directory-fsync failures are logged once, not per compaction
}

// Open opens (or creates) the journal in dir, replays every segment, and
// returns the folded per-job records in first-seen order. A corrupt tail
// — truncated frame, bit-flipped checksum, interleaved garbage — is cut
// off at the last good record: the bad bytes are truncated away so later
// appends land on a clean replayable log. maxSegmentBytes <= 0 takes
// DefaultSegmentBytes.
func Open(dir string, maxSegmentBytes int64) (*Journal, []Record, error) {
	if maxSegmentBytes <= 0 {
		maxSegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, maxSeg: maxSegmentBytes, folded: map[string]Record{}, logf: func(string, ...any) {}}

	segs, err := j.segments()
	if err != nil {
		return nil, nil, err
	}
	replayEnded := false
	kept := 0
	for _, seg := range segs {
		if replayEnded {
			// Records beyond a corruption are unreachable on replay, so
			// keeping later segments would only hide future appends.
			os.Remove(seg.path)
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, nil, err
		}
		recs, good := decodeFrames(data)
		for _, r := range recs {
			j.fold(r)
		}
		size := int64(len(data))
		if good < size {
			// Corrupt tail: cut it off at the last good record so later
			// appends land on a clean replayable log.
			if err := os.Truncate(seg.path, good); err != nil {
				return nil, nil, err
			}
			size = good
			replayEnded = true
		}
		j.total += size
		j.segSeq = seg.seq
		j.segBytes = size
		kept++
	}
	if kept == 0 {
		j.segSeq = 1
	}
	f, err := os.OpenFile(j.segPath(j.segSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j.f = f

	out := make([]Record, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.folded[id])
	}
	return j, out, nil
}

type segment struct {
	path string
	seq  int
	size int64
}

// segments lists the live segment files in sequence order.
func (j *Journal) segments() ([]segment, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		var seq int
		if _, err := fmt.Sscanf(name, "journal-%06d.wal", &seq); err != nil || name != fmt.Sprintf("journal-%06d.wal", seq) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{path: filepath.Join(j.dir, name), seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	return segs, nil
}

func (j *Journal) segPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("journal-%06d.wal", seq))
}

func (j *Journal) fold(r Record) {
	if old, ok := j.folded[r.Job]; ok {
		j.folded[r.Job] = merge(old, r)
		return
	}
	j.folded[r.Job] = r
	j.order = append(j.order, r.Job)
}

// Append writes one record. sync forces the segment to disk — callers
// pass true on terminal-state transitions, where losing the record would
// trigger a (harmless but wasteful) re-execution on the next start.
func (j *Journal) Append(r Record, sync bool) error {
	frame := encodeFrame(r)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal is closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	j.segBytes += int64(len(frame))
	j.total += int64(len(frame))
	j.fold(r)
	if sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if j.segBytes > j.maxSeg {
		return j.compactLocked()
	}
	return nil
}

// Compact rewrites the journal as one folded record per job — the whole
// transition history of a terminal job collapses to its final state —
// and atomically replaces the old segments.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal is closed")
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	next := j.segSeq + 1
	tmp := j.segPath(next) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var written int64
	for _, id := range j.order {
		frame := encodeFrame(j.folded[id])
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		written += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.segPath(next)); err != nil {
		os.Remove(tmp)
		return err
	}
	// A failed directory fsync leaves the rename at the filesystem's
	// mercy across power loss. The compaction itself is fine — the data
	// is in the new segment and the in-memory state must reflect that —
	// so finish the swap and surface the error to the caller, where it
	// lands in slipd_journal_errors_total.
	dirErr := syncDir(j.dir)
	if dirErr != nil && !j.dirSyncLogged {
		j.dirSyncLogged = true
		j.logf("journal: directory fsync failed (compacted segments may not survive power loss): %v", dirErr)
	}

	old := j.f
	oldSeq := j.segSeq
	nf, err := os.OpenFile(j.segPath(next), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	// Every record up to oldSeq is folded into the new segment; the old
	// files are dead weight.
	for seq := oldSeq; seq > 0; seq-- {
		p := j.segPath(seq)
		if _, err := os.Stat(p); err != nil {
			break
		}
		os.Remove(p)
	}
	j.f = nf
	j.segSeq = next
	j.segBytes = written
	j.total = written
	return dirErr
}

// SetLogf installs the journal's operational logger (default: discard).
func (j *Journal) SetLogf(logf func(format string, args ...any)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if logf != nil {
		j.logf = logf
	}
}

// Size reports the journal's on-disk byte count (all live segments).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Sync flushes the active segment to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Framing: one record per line, "<crc32-hex8> <len> <json>\n". The
// checksum covers the JSON payload; the length lets a bit flip inside
// the payload be distinguished from a flip in the header. Anything that
// fails to parse ends the replay — the rest of the log is unreachable.

func encodeFrame(r Record) []byte {
	payload, err := json.Marshal(r)
	if err != nil {
		// Record is a plain struct of encodable fields; Marshal cannot
		// fail on it. Keep the journal append-only even if it somehow
		// does: frame an empty object rather than corrupting the log.
		payload = []byte("{}")
	}
	return []byte(fmt.Sprintf("%08x %d %s\n", crc32.ChecksumIEEE(payload), len(payload), payload))
}

// decodeFrames parses framed records from data, returning the records up
// to the first corruption and the byte offset of the end of the last good
// frame. It never panics, whatever the input.
func decodeFrames(data []byte) ([]Record, int64) {
	var recs []Record
	var good int64
	off := 0
	for off < len(data) {
		nl := indexByteFrom(data, off, '\n')
		if nl < 0 {
			break // truncated tail: no terminated frame
		}
		line := data[off:nl]
		r, ok := decodeFrame(line)
		if !ok {
			break
		}
		recs = append(recs, r)
		off = nl + 1
		good = int64(off)
	}
	return recs, good
}

func decodeFrame(line []byte) (Record, bool) {
	// "<8 hex> <decimal> <payload>"
	if len(line) < 11 || line[8] != ' ' {
		return Record{}, false
	}
	crcWant, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	rest := line[9:]
	sp := indexByteFrom(rest, 0, ' ')
	if sp <= 0 {
		return Record{}, false
	}
	n, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || n < 0 {
		return Record{}, false
	}
	payload := rest[sp+1:]
	if len(payload) != n {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(payload) != uint32(crcWant) {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, false
	}
	if r.Job == "" {
		return Record{}, false
	}
	return r, true
}

func indexByteFrom(b []byte, from int, c byte) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// The error is returned, not swallowed: some filesystems reject directory
// fsync, and the caller decides whether that degrades durability loudly
// (counted in slipd_journal_errors_total) or is tolerable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

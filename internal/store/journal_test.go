package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, maxSeg int64) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, maxSeg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func mustAppend(t *testing.T, j *Journal, r Record, sync bool) {
	t.Helper()
	if err := j.Append(r, sync); err != nil {
		t.Fatalf("Append(%+v): %v", r, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := json.RawMessage(`{"kind":"run","kernel":"CG"}`)
	mustAppend(t, j, Record{Job: "job-1", Key: "aa11", State: "queued", Attempts: 1, Spec: spec}, false)
	mustAppend(t, j, Record{Job: "job-2", Key: "bb22", State: "queued", Attempts: 1, Spec: spec}, false)
	mustAppend(t, j, Record{Job: "job-1", State: "running", Attempts: 1}, false)
	mustAppend(t, j, Record{Job: "job-1", State: "done", Attempts: 1}, true)
	mustAppend(t, j, Record{Job: "job-2", State: "failed", Error: "boom", Attempts: 1}, true)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recs = openT(t, dir, 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d folded records, want 2: %+v", len(recs), recs)
	}
	// First-seen order, latest state, spec and key preserved through
	// transition records that omitted them.
	if recs[0].Job != "job-1" || recs[0].State != "done" || recs[0].Key != "aa11" || string(recs[0].Spec) != string(spec) {
		t.Fatalf("job-1 folded wrong: %+v", recs[0])
	}
	if recs[1].Job != "job-2" || recs[1].State != "failed" || recs[1].Error != "boom" {
		t.Fatalf("job-2 folded wrong: %+v", recs[1])
	}
}

func TestJournalTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 0)
	mustAppend(t, j, Record{Job: "job-1", State: "queued", Attempts: 1}, false)
	mustAppend(t, j, Record{Job: "job-2", State: "queued", Attempts: 1}, true)
	j.Close()

	seg := filepath.Join(dir, "journal-000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-frame: the second record loses its tail.
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := openT(t, dir, 0)
	if len(recs) != 1 || recs[0].Job != "job-1" {
		t.Fatalf("replay after truncation = %+v, want just job-1", recs)
	}
	// The corrupt tail was cut off, so a new append replays cleanly.
	mustAppend(t, j2, Record{Job: "job-3", State: "queued", Attempts: 1}, true)
	j2.Close()
	_, recs = openT(t, dir, 0)
	if len(recs) != 2 || recs[1].Job != "job-3" {
		t.Fatalf("replay after post-truncation append = %+v, want job-1 and job-3", recs)
	}
}

func TestJournalChecksumFlipStopsAtLastGood(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 0)
	mustAppend(t, j, Record{Job: "job-1", State: "queued", Attempts: 1}, false)
	mustAppend(t, j, Record{Job: "job-2", State: "queued", Attempts: 1}, false)
	mustAppend(t, j, Record{Job: "job-3", State: "queued", Attempts: 1}, true)
	j.Close()

	seg := filepath.Join(dir, "journal-000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, dir, 0)
	if len(recs) == 0 || len(recs) >= 3 {
		t.Fatalf("replay after bit flip = %d records, want 1 or 2 (stop at corruption)", len(recs))
	}
	for _, r := range recs {
		if r.Job == "job-3" {
			t.Fatalf("record past the corruption replayed: %+v", recs)
		}
	}
}

func TestJournalInterleavedGarbage(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 0)
	mustAppend(t, j, Record{Job: "job-1", State: "done", Attempts: 1}, true)
	j.Close()

	seg := filepath.Join(dir, "journal-000001.wal")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not a frame at all\n\x00\x01\x02garbage")
	f.Close()

	_, recs := openT(t, dir, 0)
	if len(recs) != 1 || recs[0].Job != "job-1" {
		t.Fatalf("replay with trailing garbage = %+v, want just job-1", recs)
	}
}

func TestJournalRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 512) // tiny segments force rotation
	spec := json.RawMessage(`{"kind":"run","kernel":"CG","nodes":4}`)
	mustAppend(t, j, Record{Job: "job-1", Key: "cc33", State: "queued", Attempts: 1, Spec: spec}, false)
	for i := 0; i < 50; i++ {
		st := "running"
		if i%2 == 1 {
			st = "queued"
		}
		mustAppend(t, j, Record{Job: "job-1", State: st, Attempts: 1}, false)
	}
	mustAppend(t, j, Record{Job: "job-1", State: "done", Attempts: 1}, true)

	// Rotation compacted 50+ transitions to one folded record; the
	// on-disk size must be far below the raw transition volume.
	if sz := j.Size(); sz > 1024 {
		t.Fatalf("journal size %d after compaction, want <= 1024", sz)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries after rotation, want exactly 1 live segment: %v", len(entries), entries)
	}
	j.Close()

	_, recs := openT(t, dir, 0)
	if len(recs) != 1 || recs[0].State != "done" || string(recs[0].Spec) != string(spec) || recs[0].Key != "cc33" {
		t.Fatalf("replay after rotation = %+v, want folded done record with spec and key", recs)
	}
}

func TestJournalExplicitCompact(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 0)
	for i := 0; i < 10; i++ {
		mustAppend(t, j, Record{Job: "job-1", State: "running", Attempts: 1}, false)
	}
	before := j.Size()
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if after := j.Size(); after >= before {
		t.Fatalf("Compact did not shrink the journal: %d -> %d", before, after)
	}
	_, recs := openT(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("replay after compact = %+v", recs)
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	j, _ := openT(t, t.TempDir(), 0)
	j.Close()
	if err := j.Append(Record{Job: "job-1", State: "queued"}, false); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestMergeKeepsSpecAndMaxAttempts(t *testing.T) {
	spec := json.RawMessage(`{"kind":"run"}`)
	got := merge(
		Record{Job: "j", Key: "k", State: "queued", Attempts: 3, Spec: spec},
		Record{Job: "j", State: "running", Attempts: 1},
	)
	if got.State != "running" || got.Attempts != 3 || got.Key != "k" || string(got.Spec) != string(spec) {
		t.Fatalf("merge = %+v", got)
	}
}

func TestMergeClaimFields(t *testing.T) {
	// Claim transitions write the full lease state each time: the newest
	// record's holder and expiry win verbatim — a re-pended claim
	// legitimately clears them — while the attempt counter never goes
	// backwards.
	got := merge(
		Record{Job: "claim-1", Key: "k", Label: "run/CG", State: "claimed", ClaimedBy: "w1", ClaimExpiresAt: 1700, ClaimAttempt: 2},
		Record{Job: "claim-1", State: "pending"},
	)
	if got.ClaimedBy != "" || got.ClaimExpiresAt != 0 {
		t.Fatalf("re-pend did not clear the lease: %+v", got)
	}
	if got.ClaimAttempt != 2 || got.Label != "run/CG" || got.Key != "k" {
		t.Fatalf("merge dropped sticky claim fields: %+v", got)
	}
}

func TestJournalClaimLifecycleFolds(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, 0)
	spec := json.RawMessage(`{"kind":"run"}`)
	// One claim's full life: pending → claimed → lease expired (back to
	// pending) → reclaimed at a higher attempt → done.
	mustAppend(t, j, Record{Job: "claim-1", Key: "k1", Label: "run/CG", State: "pending", Spec: spec}, false)
	mustAppend(t, j, Record{Job: "claim-1", Key: "k1", State: "claimed", ClaimedBy: "w1", ClaimExpiresAt: 1700, ClaimAttempt: 1}, false)
	mustAppend(t, j, Record{Job: "claim-1", Key: "k1", State: "pending", ClaimAttempt: 1}, false)
	mustAppend(t, j, Record{Job: "claim-1", Key: "k1", State: "claimed", ClaimedBy: "w2", ClaimExpiresAt: 3400, ClaimAttempt: 2}, false)
	mustAppend(t, j, Record{Job: "claim-1", Key: "k1", State: "done", ClaimAttempt: 2}, true)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recs := openT(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("replayed %d folded records, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.State != "done" || r.ClaimAttempt != 2 || r.ClaimedBy != "" || r.ClaimExpiresAt != 0 {
		t.Fatalf("claim lifecycle folded wrong: %+v", r)
	}
	if r.Label != "run/CG" || string(r.Spec) != string(spec) {
		t.Fatalf("fold dropped label or spec: %+v", r)
	}
}

// Package synth provides parameterized synthetic workloads that isolate
// the memory-system behaviours the NPB kernels mix together: streaming
// sweeps, neighbour exchange, irregular gathers, producer–consumer
// migration, lock-centric updates, and imbalanced task farms. They are
// used to characterize where slipstream execution pays off (and where it
// does not), to stress-test the runtime, and as building blocks for
// examples.
package synth

import (
	"fmt"

	"repro/internal/omp"
)

// Workload is a constructed synthetic program with a verifier.
type Workload struct {
	Name    string
	Desc    string
	Program func(*omp.Thread)
	Verify  func() error
}

// Params size a synthetic workload.
type Params struct {
	Elems int // shared elements touched per iteration
	Iters int // outer iterations (parallel regions)
	Work  int // compute cycles charged per element
}

// DefaultParams returns a size suitable for quick studies.
func DefaultParams() Params { return Params{Elems: 16 * 1024, Iters: 4, Work: 4} }

// lcg is a tiny deterministic generator for gather patterns.
type lcg struct{ s uint64 }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s
}

// Builders returns all synthetic workload constructors by name.
func Builders() map[string]func(*omp.Runtime, Params) *Workload {
	return map[string]func(*omp.Runtime, Params) *Workload{
		"stream":   Stream,
		"exchange": Exchange,
		"gather":   Gather,
		"migrate":  Migrate,
		"lockstep": LockStep,
		"taskfarm": TaskFarm,
	}
}

// Names lists the workloads in presentation order.
func Names() []string {
	return []string{"stream", "exchange", "gather", "migrate", "lockstep", "taskfarm"}
}

// Build constructs the named workload.
func Build(name string, rt *omp.Runtime, p Params) (*Workload, error) {
	b, ok := Builders()[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown workload %q", name)
	}
	return b(rt, p), nil
}

// Stream is a pure streaming sweep: each thread reads and writes only its
// own block. Communication is limited to cold fills, so added parallelism
// (double mode) should beat slipstream here.
func Stream(rt *omp.Runtime, p Params) *Workload {
	a := rt.NewF64(p.Elems)
	iters := p.Iters
	return &Workload{
		Name: "stream",
		Desc: "private-block streaming sweep (no steady-state communication)",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				m.Parallel(func(t *omp.Thread) {
					t.For(0, p.Elems, func(i int) {
						t.StF(a, i, t.LdF(a, i)+1)
						t.Compute(uint64(p.Work))
					})
				})
			}
		},
		Verify: func() error {
			for i := 0; i < p.Elems; i++ {
				if a.Get(i) != float64(iters) {
					return fmt.Errorf("stream: a[%d] = %v, want %d", i, a.Get(i), iters)
				}
			}
			return nil
		},
	}
}

// Exchange is a 1-D neighbour exchange (ghost-cell pattern): block
// boundaries migrate between CMPs every iteration.
func Exchange(rt *omp.Runtime, p Params) *Workload {
	a := rt.NewF64(p.Elems)
	b := rt.NewF64(p.Elems)
	for i := 0; i < p.Elems; i++ {
		a.Set(i, float64(i%7))
	}
	iters := p.Iters
	return &Workload{
		Name: "exchange",
		Desc: "1-D neighbour exchange (boundary migration each sweep)",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				src, dst := a, b
				if it%2 == 1 {
					src, dst = b, a
				}
				m.Parallel(func(t *omp.Thread) {
					t.For(1, p.Elems-1, func(i int) {
						v := (t.LdF(src, i-1) + t.LdF(src, i) + t.LdF(src, i+1)) / 3
						t.StF(dst, i, v)
						t.Compute(uint64(p.Work))
					})
				})
			}
		},
		Verify: func() error {
			// Replay serially.
			sa := make([]float64, p.Elems)
			sb := make([]float64, p.Elems)
			for i := range sa {
				sa[i] = float64(i % 7)
			}
			for it := 0; it < iters; it++ {
				src, dst := sa, sb
				if it%2 == 1 {
					src, dst = sb, sa
				}
				for i := 1; i < p.Elems-1; i++ {
					dst[i] = (src[i-1] + src[i] + src[i+1]) / 3
				}
			}
			got := a.Data()
			want := sa
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("exchange: a[%d] = %v, want %v", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

// Gather is an irregular read pattern: every thread reads pseudo-random
// locations across the whole array (CG's sparse matrix-vector shape).
func Gather(rt *omp.Runtime, p Params) *Workload {
	a := rt.NewF64(p.Elems)
	out := rt.NewF64(p.Elems)
	idx := rt.NewI64(p.Elems * 4)
	g := lcg{s: 11}
	for i := 0; i < p.Elems*4; i++ {
		idx.Set(i, int64(g.next()%uint64(p.Elems)))
	}
	for i := 0; i < p.Elems; i++ {
		a.Set(i, float64(i))
	}
	iters := p.Iters
	return &Workload{
		Name: "gather",
		Desc: "irregular whole-array gather (sparse matvec shape)",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				m.Parallel(func(t *omp.Thread) {
					t.For(0, p.Elems, func(i int) {
						s := 0.0
						for k := 0; k < 4; k++ {
							c := int(t.LdI(idx, i*4+k))
							s += t.LdF(a, c)
							t.Compute(uint64(p.Work))
						}
						t.StF(out, i, s)
					})
				})
			}
		},
		Verify: func() error {
			for i := 0; i < p.Elems; i++ {
				s := 0.0
				for k := 0; k < 4; k++ {
					s += a.Get(int(idx.Get(i*4 + k)))
				}
				if out.Get(i) != s {
					return fmt.Errorf("gather: out[%d] = %v, want %v", i, out.Get(i), s)
				}
			}
			return nil
		},
	}
}

// Migrate is a producer–consumer pattern: every iteration each thread
// writes a block and then reads the block the previous thread wrote, so
// every line takes a dirty 3-hop trip per iteration.
func Migrate(rt *omp.Runtime, p Params) *Workload {
	a := rt.NewF64(p.Elems)
	iters := p.Iters
	return &Workload{
		Name: "migrate",
		Desc: "producer-consumer block rotation (3-hop migration per sweep)",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				m.Parallel(func(t *omp.Thread) {
					nth := t.Num()
					blk := p.Elems / nth
					// Produce own block.
					t.For(0, p.Elems, func(i int) {
						t.StF(a, i, t.LdF(a, i)+1)
						t.Compute(uint64(p.Work))
					})
					// Consume the next thread's block.
					me := t.ID()
					lo := ((me + 1) % nth) * blk
					s := 0.0
					for i := lo; i < lo+blk; i++ {
						s += t.LdF(a, i)
						t.Compute(1)
					}
					_ = s
					t.Barrier()
				})
			}
		},
		Verify: func() error {
			for i := 0; i < p.Elems; i++ {
				if a.Get(i) != float64(iters) {
					return fmt.Errorf("migrate: a[%d] = %v, want %d", i, a.Get(i), iters)
				}
			}
			return nil
		},
	}
}

// LockStep hammers a handful of lock-protected counters (reduction/
// critical-section shape).
func LockStep(rt *omp.Runtime, p Params) *Workload {
	const cells = 4
	acc := rt.NewF64(cells)
	iters := p.Iters
	updates := p.Elems / 256
	if updates < 8 {
		updates = 8
	}
	return &Workload{
		Name: "lockstep",
		Desc: "critical-section-dominated shared counters",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				m.Parallel(func(t *omp.Thread) {
					for u := 0; u < updates; u++ {
						cell := u % cells
						t.Critical(func() {
							t.StF(acc, cell, t.LdF(acc, cell)+1)
						})
						t.Compute(uint64(p.Work))
					}
					t.Barrier()
				})
			}
		},
		Verify: func() error {
			want := float64(iters * updates * rt.NumThreads() / cells)
			for c := 0; c < cells; c++ {
				if acc.Get(c) != want {
					return fmt.Errorf("lockstep: acc[%d] = %v, want %v", c, acc.Get(c), want)
				}
			}
			return nil
		},
	}
}

// TaskFarm is an imbalanced task loop (cost ramps 1x..6x) suited to
// dynamic scheduling.
func TaskFarm(rt *omp.Runtime, p Params) *Workload {
	tasks := p.Elems / 64
	if tasks < 16 {
		tasks = 16
	}
	out := rt.NewF64(tasks)
	iters := p.Iters
	return &Workload{
		Name: "taskfarm",
		Desc: "imbalanced task farm (1x-6x cost ramp)",
		Program: func(m *omp.Thread) {
			for it := 0; it < iters; it++ {
				m.Parallel(func(t *omp.Thread) {
					t.For(0, tasks, func(task int) {
						reps := 1 + 6*task/tasks
						for r := 0; r < reps; r++ {
							t.Compute(uint64(20 * p.Work))
						}
						t.StF(out, task, float64(reps))
					})
				})
			}
		},
		Verify: func() error {
			for task := 0; task < tasks; task++ {
				if out.Get(task) != float64(1+6*task/tasks) {
					return fmt.Errorf("taskfarm: out[%d] = %v", task, out.Get(task))
				}
			}
			return nil
		},
	}
}

package synth

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

func rtFor(t *testing.T, mode core.Mode) *omp.Runtime {
	t.Helper()
	p := machine.DefaultParams()
	p.Nodes = 4
	rt, err := omp.New(omp.Config{Machine: p, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNamesMatchBuilders(t *testing.T) {
	bs := Builders()
	if len(Names()) != len(bs) {
		t.Fatalf("names %d vs builders %d", len(Names()), len(bs))
	}
	for _, n := range Names() {
		if bs[n] == nil {
			t.Fatalf("missing builder %q", n)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	rt := rtFor(t, core.ModeSingle)
	if _, err := Build("nope", rt, DefaultParams()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsVerifyAcrossModes(t *testing.T) {
	p := Params{Elems: 2048, Iters: 2, Work: 3}
	for _, name := range Names() {
		for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				rt := rtFor(t, mode)
				w, err := Build(name, rt, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.Run(w.Program); err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestWorkloadsVerifyUnderL1AndDynamic(t *testing.T) {
	p := Params{Elems: 2048, Iters: 2, Work: 3}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pm := machine.DefaultParams()
			pm.Nodes = 4
			rt, err := omp.New(omp.Config{Machine: pm, Mode: core.ModeSlipstream,
				Slipstream: core.L1, Sched: omp.Dynamic, Chunk: 64})
			if err != nil {
				t.Fatal(err)
			}
			w, err := Build(name, rt, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Run(w.Program); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDescriptionsPresent(t *testing.T) {
	rt := rtFor(t, core.ModeSingle)
	for _, name := range Names() {
		w, _ := Build(name, rt, Params{Elems: 256, Iters: 1, Work: 1})
		if w.Desc == "" || w.Name != name {
			t.Fatalf("workload %q metadata incomplete", name)
		}
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
)

func tasksOpts(jobs int) Options {
	return Options{Scale: npb.ScaleTest, Jobs: jobs}
}

// The acceptance bar for the tasking study: the same grid renders
// byte-identical reports at any -jobs value — work stealing inside each
// cell and cell-level parallelism across the suite must both be
// deterministic.
func TestTasksDeterministicAtAnyJobs(t *testing.T) {
	render := func(jobs int) string {
		s, err := RunTasks(tasksOpts(jobs), []int{2, 4}, []int{2, 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Err(); err != nil {
			t.Fatalf("tasks cells failed: %v", err)
		}
		var buf bytes.Buffer
		s.Table(&buf)
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("tasks report differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", seq, par)
	}
	if !strings.Contains(seq, "verification: PASSED") {
		t.Fatalf("report missing verification line:\n%s", seq)
	}
}

// The grid must include the loop baseline and every cut-off at every team
// size, report steals in the task cells (master-spawned roots force the
// team to steal), and keep the loop baseline steal-free.
func TestTasksGridShape(t *testing.T) {
	s, err := RunTasks(tasksOpts(0), []int{4}, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	rows := s.Rows[4]
	if len(rows) != 2 || rows[0].Cutoff != -1 || rows[1].Cutoff != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, mode := range tasksModeOrder {
		loop, ok := rows[0].Results[mode]
		if !ok {
			t.Fatalf("missing loop/%s cell", mode)
		}
		if loop.TasksRun != 0 || loop.Steals != 0 {
			t.Fatalf("loop baseline ran tasks: tasks=%d steals=%d", loop.TasksRun, loop.Steals)
		}
		tree, ok := rows[1].Results[mode]
		if !ok {
			t.Fatalf("missing cut=3/%s cell", mode)
		}
		// A saturated depth-3 tree has 2^4-1 = 15 nodes, each one task.
		if tree.TasksRun != 15 {
			t.Fatalf("cut=3/%s: ran %d tasks, want 15", mode, tree.TasksRun)
		}
		if tree.Steals == 0 {
			t.Fatalf("cut=3/%s: root spawned on master but nothing was stolen", mode)
		}
	}
}

func TestTasksRejectsBadGrid(t *testing.T) {
	if _, err := RunTasks(tasksOpts(1), []int{0}, []int{2}, nil); err == nil {
		t.Fatal("team 0 accepted")
	}
	if _, err := RunTasks(tasksOpts(1), []int{2}, []int{npb.MaxTreeCutoff + 1}, nil); err == nil {
		t.Fatal("cutoff beyond MaxTreeCutoff accepted")
	}
	if _, err := RunTasks(tasksOpts(1), nil, []int{2}, nil); err == nil {
		t.Fatal("empty team list accepted")
	}
}

// Chaos × tasking: straggler faults slow individual threads mid-drain, so
// the rest of the team steals the backed-up work away — and the committed
// result must still verify. Several injected cells run concurrently so
// `make race` exercises concurrent steals under stalls.
func TestTasksUnderStragglersStillVerify(t *testing.T) {
	p := machine.DefaultParams()
	p.Nodes = 4
	plan := &faults.Config{Seed: 11, Rate: 0.5, Classes: []faults.Class{faults.ThreadStraggler}}
	cfgs := []omp.Config{
		{Machine: p, Mode: core.ModeSingle, Faults: plan},
		{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Faults: plan},
		{Machine: p, Mode: core.ModeSingle, Faults: plan},
		{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Faults: plan},
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	done := make(chan int)
	for i := range cfgs {
		go func(i int) {
			defer func() { done <- i }()
			results[i], errs[i] = RunOne(npb.TreeKernel(4), "chaos-tasks", cfgs[i], npb.ScaleTest, true)
		}(i)
	}
	for range cfgs {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d failed under straggler injection: %v", i, err)
		}
		if results[i].Faults == 0 {
			t.Fatalf("cell %d: rate-0.5 straggler plan injected nothing", i)
		}
		if results[i].Steals == 0 {
			t.Fatalf("cell %d: stragglers held work but nothing was stolen", i)
		}
	}
	// Identical configurations under injection must still be deterministic.
	if results[0].Wall != results[2].Wall || results[1].Wall != results[3].Wall {
		t.Fatalf("straggler runs nondeterministic: single %d/%d, slip %d/%d",
			results[0].Wall, results[2].Wall, results[1].Wall, results[3].Wall)
	}
}

package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
	"repro/internal/synth"
)

// TestParallelStaticDeterminism is the worker pool's core guarantee: the
// suite results and every rendered artifact are byte-identical whether the
// matrix ran sequentially or on eight workers.
func TestParallelStaticDeterminism(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"CG", "MG"}
	o.Jobs = 1
	s1, err := RunStatic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Jobs = 8
	s8, err := RunStatic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Errors) != 0 || len(s8.Errors) != 0 {
		t.Fatalf("unexpected cell errors: %v / %v", s1.Errors, s8.Errors)
	}
	if !reflect.DeepEqual(s1.Static, s8.Static) {
		t.Fatal("Jobs=1 and Jobs=8 produced different results")
	}
	var f1, f8, c1, c8 strings.Builder
	s1.Fig2(&f1)
	s8.Fig2(&f8)
	if f1.String() != f8.String() {
		t.Fatalf("Fig2 output differs:\n%s\n---\n%s", f1.String(), f8.String())
	}
	if err := s1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := s8.WriteCSV(&c8); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c8.String() {
		t.Fatal("CSV output differs between Jobs=1 and Jobs=8")
	}
}

func TestParallelDynamicDeterminism(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"CG", "MG"}
	o.Jobs = 1
	s1, err := RunDynamic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.Jobs = 8
	s8, err := RunDynamic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Dynamic, s8.Dynamic) {
		t.Fatal("Jobs=1 and Jobs=8 produced different dynamic results")
	}
	var f1, f8 strings.Builder
	s1.Fig4(&f1)
	s8.Fig4(&f8)
	if f1.String() != f8.String() {
		t.Fatalf("Fig4 output differs:\n%s\n---\n%s", f1.String(), f8.String())
	}
}

func TestParallelScalingDeterminism(t *testing.T) {
	r1, err := RunScaling("CG", []int{2, 4}, npb.ScaleTest, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunScaling("CG", []int{2, 4}, npb.ScaleTest, 8, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("scaling rows differ: %v vs %v", r1, r8)
	}
	var p1, p8 strings.Builder
	PrintScaling("CG", r1, &p1)
	PrintScaling("CG", r8, &p8)
	if p1.String() != p8.String() {
		t.Fatal("scaling output differs between Jobs=1 and Jobs=8")
	}
}

func TestParallelCharacterizeDeterminism(t *testing.T) {
	p := synth.Params{Elems: 512, Iters: 2, Work: 3}
	r1, err := Characterize(2, p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Characterize(2, p, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("characterization rows differ: %v vs %v", r1, r8)
	}
}

// TestFailingCellDoesNotAbort injects a cell that cannot even construct a
// runtime (unknown execution mode) between two good cells and checks that
// the good cells still produce results while the bad one is reported with
// its identity.
func TestFailingCellDoesNotAbort(t *testing.T) {
	o := quickOpts()
	k, err := npb.ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	p := machine.DefaultParams()
	p.Nodes = o.Nodes
	cells := []matrixCell{
		{kernel: k, rc: runConfig{"single", omp.Config{Machine: p, Mode: core.ModeSingle}}},
		{kernel: k, rc: runConfig{"broken", omp.Config{Machine: p, Mode: core.Mode(99)}}},
		{kernel: k, rc: runConfig{"double", omp.Config{Machine: p, Mode: core.ModeDouble}}},
	}
	for _, jobs := range []int{1, 4} {
		results, errs := runCells(context.Background(), cells, jobs, o, "static", nil)
		if errs[0] != nil || errs[2] != nil {
			t.Fatalf("jobs=%d: good cells failed: %v, %v", jobs, errs[0], errs[2])
		}
		if errs[1] == nil {
			t.Fatalf("jobs=%d: broken cell did not fail", jobs)
		}
		if results[0].Wall == 0 || results[2].Wall == 0 {
			t.Fatalf("jobs=%d: good cells missing results", jobs)
		}
		ce := CellError{Kernel: k.Name, Config: "broken", Err: errs[1]}
		if !strings.Contains(ce.Error(), "CG/broken") {
			t.Fatalf("cell error lacks identity: %q", ce.Error())
		}
	}
}

// cancelAfterFirstWrite is a progress writer that cancels a context the
// first time a progress line is emitted — i.e. as the first cell starts.
type cancelAfterFirstWrite struct {
	cancel context.CancelFunc
	wrote  bool
}

func (c *cancelAfterFirstWrite) Write(p []byte) (int, error) {
	if !c.wrote {
		c.wrote = true
		c.cancel()
	}
	return len(p), nil
}

// TestCancelledSuiteReturnsPartialErrors cancels the context as the first
// static cell starts and checks the contract the slipd job queue depends
// on: the call returns (no hang), every cell resolves to either a result
// or a Suite.Errors entry, and the aborted cells carry context.Canceled.
func TestCancelledSuiteReturnsPartialErrors(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		o := quickOpts()
		o.Kernels = []string{"CG", "MG"}
		o.Jobs = jobs
		ctx, cancel := context.WithCancel(context.Background())
		s, err := RunStaticCtx(ctx, o, &cancelAfterFirstWrite{cancel: cancel})
		cancel()
		if err != nil {
			t.Fatalf("jobs=%d: configuration error: %v", jobs, err)
		}
		if len(s.Errors) == 0 {
			t.Fatalf("jobs=%d: cancelled suite reported no cell errors", jobs)
		}
		got := 0
		for _, rs := range s.Static {
			got += len(rs)
		}
		if total := 2 * 4; got+len(s.Errors) != total { // 2 kernels × 4 configs
			t.Fatalf("jobs=%d: %d results + %d errors != %d cells", jobs, got, len(s.Errors), total)
		}
		for _, ce := range s.Errors {
			if !errors.Is(ce.Err, context.Canceled) {
				t.Fatalf("jobs=%d: cell error is not context.Canceled: %v", jobs, ce)
			}
			if ce.Kernel == "" || ce.Config == "" {
				t.Fatalf("jobs=%d: cell error lacks identity: %+v", jobs, ce)
			}
		}
		if err := s.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: Suite.Err() = %v", jobs, err)
		}
	}
}

// TestCancelledScalingReturnsPartialErrors covers the same contract for
// the scaling study, which slipd exposes as a job kind.
func TestCancelledScalingReturnsPartialErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := RunScalingCtx(ctx, "CG", []int{2, 4}, npb.ScaleTest, 1,
		true, &cancelAfterFirstWrite{cancel: cancel})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cells := 0
	for _, r := range rows {
		cells += len(r.Walls)
	}
	if cells >= 2*3 {
		t.Fatalf("cancellation aborted nothing: %d of 6 cells ran", cells)
	}
}

// TestProgressSerialized drives an 8-worker suite with progress enabled
// into one shared buffer: the mutex-guarded writer must keep every line
// intact (under -race this also proves the writer is synchronized).
func TestProgressSerialized(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"CG", "MG"}
	o.Jobs = 8
	var buf bytes.Buffer
	s, err := RunStatic(o, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Errors) != 0 {
		t.Fatalf("cell errors: %v", s.Errors)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if want := 2 * 4; len(lines) != want { // 2 kernels × 4 static configs
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), want, buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "running ") || !strings.HasSuffix(l, "(static)...") {
			t.Fatalf("torn progress line %q", l)
		}
	}
}

func TestFig2MissingBaseline(t *testing.T) {
	s := &Suite{Static: map[string]map[string]Result{
		"CG": {"double": {Kernel: "CG", Config: "double", Wall: 100}},
	}}
	var sb strings.Builder
	s.Fig2(&sb)
	out := sb.String()
	if !strings.Contains(out, "n/a") || !strings.Contains(out, "baseline missing") {
		t.Fatalf("missing-baseline guard absent:\n%s", out)
	}
	if strings.Contains(out, "+Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("garbage speedup rendered:\n%s", out)
	}
}

func TestFig4MissingBaseline(t *testing.T) {
	s := &Suite{Dynamic: map[string]map[string]Result{
		"CG": {"slip-G0-dyn": {Kernel: "CG", Config: "slip-G0-dyn", Wall: 100}},
	}}
	var sb strings.Builder
	s.Fig4(&sb)
	out := sb.String()
	if !strings.Contains(out, "n/a") || !strings.Contains(out, "baseline missing") {
		t.Fatalf("missing-baseline guard absent:\n%s", out)
	}
	if strings.Contains(out, "+Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("garbage speedup rendered:\n%s", out)
	}
}

func TestPrintScalingMissingCell(t *testing.T) {
	rows := []ScalingRow{
		{Nodes: 2, Walls: map[string]uint64{"single": 100, "double": 50}}, // slip-G0 failed
	}
	var sb strings.Builder
	PrintScaling("CG", rows, &sb)
	if !strings.Contains(sb.String(), "n/a") {
		t.Fatalf("missing cell not rendered as n/a:\n%s", sb.String())
	}
}

func TestProgressWriterNilSafe(t *testing.T) {
	var pw *progressWriter // nil = -q
	pw.printf("must not panic %d\n", 1)
	if newProgress(nil) != nil {
		t.Fatal("newProgress(nil) != nil")
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/npb"
	"repro/internal/omp"
)

// The tasking study measures task-runtime overhead under slipstream
// execution — the question the paper could not ask (it predates OpenMP
// 3.0 tasking): does the A-stream's skeletonized execution still buy a
// speedup when work arrives through work-stealing deques instead of
// static loop partitions? The study runs the recursive TREE kernel over
// a team-size × cut-off grid, in plain single mode and in slipstream
// G0, against the TREEL worksharing-loop baseline of the identical
// computation. Deeper cut-offs mean exponentially more, smaller tasks,
// so the grid sweeps the granularity axis where per-task scheduling and
// decision-handoff overhead must eventually eat the parallelism.

// tasksModeOrder is the report order of the per-cell execution modes.
var tasksModeOrder = []string{"single", "slip-G0"}

// TasksRow is one configuration's results at one team size: the loop
// baseline (Cutoff -1) or the task tree at a cut-off depth.
type TasksRow struct {
	Cutoff  int               // -1 = TREEL loop baseline
	Results map[string]Result // mode name → result
}

// TasksSuite holds a tasking-study sweep's results.
type TasksSuite struct {
	Scale   npb.Scale
	Teams   []int // ascending, deduped
	Cutoffs []int // ascending, deduped
	Rows    map[int][]TasksRow // team → baseline row then cut-off rows
	Errors  []CellError
}

// Err returns the per-cell failures joined into one error, nil if none.
func (s *TasksSuite) Err() error {
	if s == nil {
		return nil
	}
	return joinCellErrors(s.Errors)
}

// normalizeGrid validates, sorts, and dedupes one axis of the grid.
func normalizeGrid(what string, xs []int, min, max int) ([]int, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("tasks: no %s given", what)
	}
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if x < min || x > max {
			return nil, fmt.Errorf("tasks: %s %d outside [%d, %d]", what, x, min, max)
		}
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out, nil
}

// RunTasks sweeps the tasking grid: for every team size, the TREEL loop
// baseline plus the TREE task tree at every cut-off, each in single and
// slipstream-G0 mode. Verification is forced on regardless of o.Verify —
// in slipstream mode only R-stream commits count, and a cell whose
// skeleton replay corrupted the result must fail loudly, not render.
func RunTasks(o Options, teams, cutoffs []int, progress io.Writer) (*TasksSuite, error) {
	return RunTasksCtx(context.Background(), o, teams, cutoffs, progress)
}

// RunTasksCtx is RunTasks with cancellation, with the same partial-result
// semantics as the other suite runners: cells run on up to o.Jobs workers
// and are collected in matrix order, so reports are byte-identical at any
// concurrency.
func RunTasksCtx(ctx context.Context, o Options, teams, cutoffs []int, progress io.Writer) (*TasksSuite, error) {
	teams, err := normalizeGrid("team size", teams, 1, 64)
	if err != nil {
		return nil, err
	}
	cutoffs, err = normalizeGrid("cutoff", cutoffs, 0, npb.MaxTreeCutoff)
	if err != nil {
		return nil, err
	}
	s := &TasksSuite{Scale: o.Scale, Teams: teams, Cutoffs: cutoffs, Rows: map[int][]TasksRow{}}

	type cell struct {
		team   int
		cutoff int // -1 = loop baseline
		mode   string
		kernel npb.Kernel
		cfg    omp.Config
	}
	var cells []cell
	for _, team := range teams {
		p := o.params()
		p.Nodes = team
		modeCfg := func(mode string) omp.Config {
			if mode == "slip-G0" {
				return omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0,
					SelfInvalidate: o.SelfInvalidate}
			}
			return omp.Config{Machine: p, Mode: core.ModeSingle}
		}
		s.Rows[team] = append(s.Rows[team], TasksRow{Cutoff: -1, Results: map[string]Result{}})
		for _, mode := range tasksModeOrder {
			cells = append(cells, cell{team, -1, mode, npb.TreeLoopKernel(), modeCfg(mode)})
		}
		for _, c := range cutoffs {
			s.Rows[team] = append(s.Rows[team], TasksRow{Cutoff: c, Results: map[string]Result{}})
			for _, mode := range tasksModeOrder {
				cells = append(cells, cell{team, c, mode, npb.TreeKernel(c), modeCfg(mode)})
			}
		}
	}

	pw := newProgress(progress)
	results, errs := collect(ctx, o.Jobs, len(cells), func(i int) (Result, error) {
		c := cells[i]
		pw.printf("tasks %s/%s @ team %d...\n", cellLabel(c.cutoff), c.mode, c.team)
		return RunOne(c.kernel, c.mode, c.cfg, o.Scale, true)
	})
	for i, c := range cells {
		if errs[i] != nil {
			s.Errors = append(s.Errors, CellError{Kernel: c.kernel.Name,
				Config: fmt.Sprintf("team=%d/%s/%s", c.team, cellLabel(c.cutoff), c.mode), Err: errs[i]})
			continue
		}
		rows := s.Rows[c.team]
		for ri := range rows {
			if rows[ri].Cutoff == c.cutoff {
				rows[ri].Results[c.mode] = results[i]
				break
			}
		}
	}
	return s, nil
}

// cellLabel names a row: the loop baseline or a cut-off depth.
func cellLabel(cutoff int) string {
	if cutoff < 0 {
		return "loop"
	}
	return fmt.Sprintf("cut=%d", cutoff)
}

// TotalSteals sums the deque steals across all cells.
func (s *TasksSuite) TotalSteals() uint64 {
	var t uint64
	for _, rows := range s.Rows {
		for _, row := range rows {
			for _, r := range row.Results {
				t += r.Steals
			}
		}
	}
	return t
}

// Table renders the grid in the Fig2–Fig5 deterministic style. Per cell:
// cycles, tasks executed, steals, speedup versus the loop/single baseline
// at the same team size ("vs-loop" > 1 means the tasking version wins),
// and for slipstream cells the slipstream speedup over the same
// configuration's single-mode run ("slip" > 1 means slipstream wins).
// Cells without results (failed or cancelled) render "n/a".
func (s *TasksSuite) Table(w io.Writer) {
	fmt.Fprintf(w, "Tasking study (scale %s): TREE task tree vs TREEL loop baseline, work-stealing deques\n", s.Scale)
	fmt.Fprintln(w, "vs-loop: speedup over loop/single at the same team size; slip: same config, single over slip-G0")
	fmt.Fprintf(w, "%4s %-7s %-8s %12s %8s %8s %8s %7s\n",
		"team", "config", "mode", "cycles", "tasks", "steals", "vs-loop", "slip")
	cellCount := 0
	for _, team := range s.Teams {
		rows := s.Rows[team]
		var baseWall uint64
		for _, row := range rows {
			if row.Cutoff == -1 {
				if r, ok := row.Results["single"]; ok {
					baseWall = r.Wall
				}
			}
		}
		for _, row := range rows {
			single, haveSingle := row.Results["single"]
			for _, mode := range tasksModeOrder {
				r, ok := row.Results[mode]
				if !ok {
					continue
				}
				cellCount++
				vsLoop := "n/a"
				if baseWall > 0 && r.Wall > 0 {
					vsLoop = fmt.Sprintf("%.3f", float64(baseWall)/float64(r.Wall))
				}
				slip := "-"
				if mode == "slip-G0" {
					slip = "n/a"
					if haveSingle && r.Wall > 0 {
						slip = fmt.Sprintf("%.3f", float64(single.Wall)/float64(r.Wall))
					}
				}
				fmt.Fprintf(w, "%4d %-7s %-8s %12d %8d %8d %8s %7s\n",
					team, cellLabel(row.Cutoff), mode, r.Wall, r.TasksRun, r.Steals, vsLoop, slip)
			}
		}
		fmt.Fprintln(w)
	}
	if len(s.Errors) > 0 {
		fmt.Fprintf(w, "%d cell(s) FAILED:\n", len(s.Errors))
		for _, e := range s.Errors {
			fmt.Fprintf(w, "  %s\n", e.Error())
		}
		return
	}
	fmt.Fprintf(w, "verification: PASSED for all %d cells (skeleton replays never touched committed results)\n", cellCount)
}

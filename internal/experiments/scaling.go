package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
)

// ScalingRow is one machine size of a fixed-problem-size scaling study.
type ScalingRow struct {
	Nodes int
	Walls map[string]uint64 // config name → simulated cycles
}

// scalingConfigs are the modes compared in the scaling study.
var scalingConfigs = []string{"single", "double", "slip-G0"}

// scalingConfig resolves a scaling-study config name for a machine size.
func scalingConfig(name string, p machine.Params) omp.Config {
	switch name {
	case "double":
		return omp.Config{Machine: p, Mode: core.ModeDouble}
	case "slip-G0":
		return omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0}
	default: // "single"
		return omp.Config{Machine: p, Mode: core.ModeSingle}
	}
}

// RunScaling runs kernel at a fixed problem size across machine sizes —
// the paper's motivating scenario (§1–2): as CMPs are added, single/double
// speedup saturates once communication dominates, and slipstream extends
// the scaling by spending the second processor on latency instead of
// parallelism. The (machine size × mode) cells are independent and run on
// up to jobs workers (0 = one per host CPU); rows come back in nodeCounts
// order regardless of completion order. Failed cells are skipped in their
// row and aggregated into the returned error alongside the surviving rows.
func RunScaling(kernelName string, nodeCounts []int, scale npb.Scale, jobs int, verify bool, progress io.Writer) ([]ScalingRow, error) {
	return RunScalingCtx(context.Background(), kernelName, nodeCounts, scale, jobs, verify, progress)
}

// RunScalingCtx is RunScaling with cancellation: cells not yet started
// when ctx is done are aborted and reported in the joined error.
func RunScalingCtx(ctx context.Context, kernelName string, nodeCounts []int, scale npb.Scale, jobs int, verify bool, progress io.Writer) ([]ScalingRow, error) {
	k, err := npb.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	type cell struct {
		nodes int
		name  string
		cfg   omp.Config
	}
	var cells []cell
	for _, n := range nodeCounts {
		p := machine.DefaultParams()
		p.Nodes = n
		for _, name := range scalingConfigs {
			cells = append(cells, cell{nodes: n, name: name, cfg: scalingConfig(name, p)})
		}
	}
	pw := newProgress(progress)
	walls, errs := collect(ctx, jobs, len(cells), func(i int) (uint64, error) {
		c := cells[i]
		pw.printf("scaling %s: %d nodes, %s...\n", k.Name, c.nodes, c.name)
		r, err := RunOne(k, c.name, c.cfg, scale, verify)
		if err != nil {
			return 0, err
		}
		return r.Wall, nil
	})
	var rows []ScalingRow
	var cellErrs []CellError
	for i, c := range cells {
		if i%len(scalingConfigs) == 0 {
			rows = append(rows, ScalingRow{Nodes: c.nodes, Walls: map[string]uint64{}})
		}
		if errs[i] != nil {
			cellErrs = append(cellErrs, CellError{Kernel: k.Name,
				Config: fmt.Sprintf("%s@%d-nodes", c.name, c.nodes), Err: errs[i]})
			continue
		}
		rows[len(rows)-1].Walls[c.name] = walls[i]
	}
	return rows, joinCellErrors(cellErrs)
}

// PrintScaling renders the study as speedup over the smallest machine's
// single-mode run. Cells without a result (failed runs) render as "n/a".
func PrintScaling(kernel string, rows []ScalingRow, w io.Writer) {
	if len(rows) == 0 {
		return
	}
	base, haveBase := rows[0].Walls["single"]
	fmt.Fprintf(w, "Fixed-size scaling, %s (speedup vs single mode on %d CMP(s))\n", kernel, rows[0].Nodes)
	fmt.Fprintf(w, "%-6s", "CMPs")
	for _, c := range scalingConfigs {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-6d", row.Nodes)
		for _, c := range scalingConfigs {
			wall, ok := row.Walls[c]
			if haveBase && base > 0 && ok && wall > 0 {
				fmt.Fprintf(w, " %10.3f", float64(base)/float64(wall))
			} else {
				fmt.Fprintf(w, " %10s", "n/a")
			}
		}
		fmt.Fprintln(w)
	}
	if !haveBase {
		fmt.Fprintln(w, "note: single-mode baseline missing (failed run); speedups n/a")
	}
}

// TokenSweepRow is one token-count setting of a token-policy sweep.
type TokenSweepRow struct {
	Cfg  core.Config
	Wall uint64
}

// RunTokenSweep measures a kernel under a range of A–R synchronization
// policies (both insertion points, several initial token counts). The
// policy cells run on up to jobs workers (0 = one per host CPU) and rows
// come back in policy order. Failed cells are dropped from the rows and
// aggregated into the returned error.
func RunTokenSweep(kernelName string, nodes int, scale npb.Scale, tokenCounts []int, jobs int, verify bool, progress io.Writer) ([]TokenSweepRow, error) {
	return RunTokenSweepCtx(context.Background(), kernelName, nodes, scale, tokenCounts, jobs, verify, progress)
}

// RunTokenSweepCtx is RunTokenSweep with cancellation, with the same
// partial-result semantics as RunScalingCtx.
func RunTokenSweepCtx(ctx context.Context, kernelName string, nodes int, scale npb.Scale, tokenCounts []int, jobs int, verify bool, progress io.Writer) ([]TokenSweepRow, error) {
	k, err := npb.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	p := machine.DefaultParams()
	p.Nodes = nodes
	var scs []core.Config
	for _, typ := range []core.SyncType{core.GlobalSync, core.LocalSync} {
		for _, tok := range tokenCounts {
			scs = append(scs, core.Config{Type: typ, Tokens: tok})
		}
	}
	pw := newProgress(progress)
	walls, errs := collect(ctx, jobs, len(scs), func(i int) (uint64, error) {
		sc := scs[i]
		pw.printf("token sweep %s: %s...\n", k.Name, sc)
		cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: sc}
		r, err := RunOne(k, sc.String(), cfg, scale, verify)
		if err != nil {
			return 0, err
		}
		return r.Wall, nil
	})
	var rows []TokenSweepRow
	var cellErrs []CellError
	for i, sc := range scs {
		if errs[i] != nil {
			cellErrs = append(cellErrs, CellError{Kernel: k.Name, Config: sc.String(), Err: errs[i]})
			continue
		}
		rows = append(rows, TokenSweepRow{Cfg: sc, Wall: walls[i]})
	}
	return rows, joinCellErrors(cellErrs)
}

// PrintTokenSweep renders the sweep with speedups versus the first row.
func PrintTokenSweep(kernel string, rows []TokenSweepRow, w io.Writer) {
	if len(rows) == 0 {
		return
	}
	base := rows[0].Wall
	fmt.Fprintf(w, "A-R synchronization sweep, %s\n", kernel)
	for _, row := range rows {
		fmt.Fprintf(w, "  %-16s %12d cycles   %+6.1f%%\n", row.Cfg, row.Wall,
			100*(float64(base)/float64(row.Wall)-1))
	}
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
)

// ScalingRow is one machine size of a fixed-problem-size scaling study.
type ScalingRow struct {
	Nodes int
	Walls map[string]uint64 // config name → simulated cycles
}

// scalingConfigs are the modes compared in the scaling study.
var scalingConfigs = []string{"single", "double", "slip-G0"}

// RunScaling runs kernel at a fixed problem size across machine sizes —
// the paper's motivating scenario (§1–2): as CMPs are added, single/double
// speedup saturates once communication dominates, and slipstream extends
// the scaling by spending the second processor on latency instead of
// parallelism.
func RunScaling(kernelName string, nodeCounts []int, scale npb.Scale, verify bool, progress io.Writer) ([]ScalingRow, error) {
	k, err := npb.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, n := range nodeCounts {
		p := machine.DefaultParams()
		p.Nodes = n
		row := ScalingRow{Nodes: n, Walls: map[string]uint64{}}
		for _, name := range scalingConfigs {
			var cfg omp.Config
			switch name {
			case "single":
				cfg = omp.Config{Machine: p, Mode: core.ModeSingle}
			case "double":
				cfg = omp.Config{Machine: p, Mode: core.ModeDouble}
			case "slip-G0":
				cfg = omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0}
			}
			if progress != nil {
				fmt.Fprintf(progress, "scaling %s: %d nodes, %s...\n", k.Name, n, name)
			}
			r, err := RunOne(k, name, cfg, scale, verify)
			if err != nil {
				return nil, err
			}
			row.Walls[name] = r.Wall
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintScaling renders the study as speedup over the smallest machine's
// single-mode run.
func PrintScaling(kernel string, rows []ScalingRow, w io.Writer) {
	if len(rows) == 0 {
		return
	}
	base := rows[0].Walls["single"]
	fmt.Fprintf(w, "Fixed-size scaling, %s (speedup vs single mode on %d CMP(s))\n", kernel, rows[0].Nodes)
	fmt.Fprintf(w, "%-6s", "CMPs")
	for _, c := range scalingConfigs {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-6d", row.Nodes)
		for _, c := range scalingConfigs {
			fmt.Fprintf(w, " %10.3f", float64(base)/float64(row.Walls[c]))
		}
		fmt.Fprintln(w)
	}
}

// TokenSweepRow is one token-count setting of a token-policy sweep.
type TokenSweepRow struct {
	Cfg  core.Config
	Wall uint64
}

// RunTokenSweep measures a kernel under a range of A–R synchronization
// policies (both insertion points, several initial token counts).
func RunTokenSweep(kernelName string, nodes int, scale npb.Scale, tokenCounts []int, verify bool, progress io.Writer) ([]TokenSweepRow, error) {
	k, err := npb.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	p := machine.DefaultParams()
	p.Nodes = nodes
	var rows []TokenSweepRow
	for _, typ := range []core.SyncType{core.GlobalSync, core.LocalSync} {
		for _, tok := range tokenCounts {
			sc := core.Config{Type: typ, Tokens: tok}
			if progress != nil {
				fmt.Fprintf(progress, "token sweep %s: %s...\n", k.Name, sc)
			}
			cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: sc}
			r, err := RunOne(k, sc.String(), cfg, scale, verify)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TokenSweepRow{Cfg: sc, Wall: r.Wall})
		}
	}
	return rows, nil
}

// PrintTokenSweep renders the sweep with speedups versus the first row.
func PrintTokenSweep(kernel string, rows []TokenSweepRow, w io.Writer) {
	if len(rows) == 0 {
		return
	}
	base := rows[0].Wall
	fmt.Fprintf(w, "A-R synchronization sweep, %s\n", kernel)
	for _, row := range rows {
		fmt.Fprintf(w, "  %-16s %12d cycles   %+6.1f%%\n", row.Cfg, row.Wall,
			100*(float64(base)/float64(row.Wall)-1))
	}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/npb"
	"repro/internal/synth"
)

func TestRunScalingSmoke(t *testing.T) {
	rows, err := RunScaling("CG", []int{2, 4}, npb.ScaleTest, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, cfg := range []string{"single", "double", "slip-G0"} {
			if row.Walls[cfg] == 0 {
				t.Fatalf("%d nodes %s: zero wall", row.Nodes, cfg)
			}
		}
	}
	var sb strings.Builder
	PrintScaling("CG", rows, &sb)
	for _, want := range []string{"CMPs", "single", "slip-G0", "1.000"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("scaling output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunScalingUnknownKernel(t *testing.T) {
	if _, err := RunScaling("NOPE", []int{2}, npb.ScaleTest, 1, false, nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestScalingSingleModeMonotoneWork(t *testing.T) {
	// Adding nodes must never change results, only timing: verify stays on.
	rows, err := RunScaling("LU", []int{2, 4}, npb.ScaleTest, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
}

func TestTokenSweepSmoke(t *testing.T) {
	rows, err := RunTokenSweep("MG", 4, npb.ScaleTest, []int{0, 1}, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 sync types x 2 token counts
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	PrintTokenSweep("MG", rows, &sb)
	if !strings.Contains(sb.String(), "GLOBAL_SYNC,0") || !strings.Contains(sb.String(), "LOCAL_SYNC,1") {
		t.Fatalf("token sweep output:\n%s", sb.String())
	}
}

func TestPrintScalingEmpty(t *testing.T) {
	var sb strings.Builder
	PrintScaling("CG", nil, &sb)
	PrintTokenSweep("CG", nil, &sb)
	if sb.Len() != 0 {
		t.Fatalf("empty studies printed %q", sb.String())
	}
}

// TestPaperShapeScaling checks the paper's motivating claim at small scale:
// by 16 CMPs, slipstream mode beats double mode for a fixed-size problem
// whose parallelism has saturated.
func TestPaperShapeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine scaling study")
	}
	rows, err := RunScaling("MG", []int{4, 16}, npb.ScaleSmall, 0, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Walls["slip-G0"] >= last.Walls["double"] {
		t.Errorf("at 16 CMPs slipstream (%d) did not beat double (%d)",
			last.Walls["slip-G0"], last.Walls["double"])
	}
}

func TestCharacterizeSmoke(t *testing.T) {
	rows, err := Characterize(4, synth.Params{Elems: 1024, Iters: 2, Work: 3}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(synth.Names()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Winner == "" || len(r.Walls) != 4 {
			t.Fatalf("row %+v incomplete", r)
		}
	}
	var sb strings.Builder
	PrintCharacterization(rows, &sb)
	for _, want := range []string{"workload", "winner", "stream", "taskfarm"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, sb.String())
		}
	}
	_ = winnersByKind(rows)
}

// TestPaperShapeCharacterization: at 16 CMPs, the communication-bound
// patterns (neighbour exchange with per-sweep boundary migration, and
// lock-dominated updates) favor slipstream, while the private streaming
// sweep — with nothing to hide — favors double mode's extra parallelism.
func TestPaperShapeCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("16-CMP characterization")
	}
	rows, err := Characterize(16, synth.DefaultParams(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	win := winnersByKind(rows)
	if w := win["stream"]; w != "double" {
		t.Errorf("stream winner = %s, want double (no communication to hide)", w)
	}
	if w := win["exchange"]; w != "slip-G0" && w != "slip-L1" {
		t.Errorf("exchange winner = %s, want a slipstream config", w)
	}
	if w := win["lockstep"]; w != "slip-G0" && w != "slip-L1" {
		t.Errorf("lockstep winner = %s, want a slipstream config", w)
	}
}

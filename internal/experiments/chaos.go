package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/npb"
	"repro/internal/omp"
)

// The chaos suite sweeps a deterministic fault plan across injection
// rates and measures how gracefully slipstream execution degrades. The
// load-bearing invariant it exercises: A-streams never write the backing
// store and divergence recovery (§2.2) resynchronizes them from their
// R-streams, so no injected fault may ever corrupt an R-stream result —
// faults cost time, never correctness. Every cell therefore runs with
// verification forced on, and a cell that fails to verify fails the
// suite loudly instead of rendering.

// chaosConfigOrder is the report order of the per-kernel configurations:
// static slipstream for every kernel, dynamic for kernels that allow it
// (the straggler classes hit the two schedules very differently).
var chaosConfigOrder = []string{"slip-G0", "slip-G0-dyn"}

// ChaosRow is one fault rate's results for one kernel.
type ChaosRow struct {
	Rate    float64
	Results map[string]Result // config name → result
}

// ChaosSuite holds a chaos sweep's results.
type ChaosSuite struct {
	Plan    faults.Config // seed and class subset (Rate varies per row)
	Rates   []float64     // normalized: ascending, deduped, 0 included
	Kernels []string      // report order
	Rows    map[string][]ChaosRow
	Errors  []CellError
}

// Err returns the per-cell failures joined into one error, nil if none.
func (s *ChaosSuite) Err() error {
	if s == nil {
		return nil
	}
	return joinCellErrors(s.Errors)
}

// normalizeRates sorts, dedupes, and guarantees the fault-free baseline
// rate 0 every slowdown is computed against.
func normalizeRates(rates []float64) []float64 {
	seen := map[float64]bool{0: true}
	out := []float64{0}
	for _, r := range rates {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Float64s(out)
	return out
}

// RunChaos sweeps the fault plan across rates for every kernel in o's
// filter. plan.Rate is ignored; each rate in rates (plus the implicit
// fault-free 0) runs the full plan at that rate. Verification is forced
// on regardless of o.Verify.
func RunChaos(o Options, plan faults.Config, rates []float64, progress io.Writer) (*ChaosSuite, error) {
	return RunChaosCtx(context.Background(), o, plan, rates, progress)
}

// RunChaosCtx is RunChaos with cancellation, with the same partial-result
// semantics as the other suite runners: cells run on up to o.Jobs workers
// and are collected in matrix order, so reports are byte-identical at any
// concurrency.
func RunChaosCtx(ctx context.Context, o Options, plan faults.Config, rates []float64, progress io.Writer) (*ChaosSuite, error) {
	plan.Rate = 0
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	for _, r := range rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("chaos: rate %g outside [0, 1]", r)
		}
	}
	ks, err := o.kernels()
	if err != nil {
		return nil, err
	}
	s := &ChaosSuite{Plan: plan, Rates: normalizeRates(rates), Rows: map[string][]ChaosRow{}}
	p := o.params()

	type cell struct {
		kernel npb.Kernel
		rate   float64
		name   string
		cfg    omp.Config
	}
	var cells []cell
	for _, k := range ks {
		s.Kernels = append(s.Kernels, k.Name)
		for _, rate := range s.Rates {
			s.Rows[k.Name] = append(s.Rows[k.Name], ChaosRow{Rate: rate, Results: map[string]Result{}})
			var fc *faults.Config
			if rate > 0 {
				c := plan
				c.Rate = rate
				fc = &c
			}
			cells = append(cells, cell{k, rate, "slip-G0", omp.Config{
				Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0,
				SelfInvalidate: o.SelfInvalidate, Faults: fc,
			}})
			if k.Dynamic {
				cells = append(cells, cell{k, rate, "slip-G0-dyn", omp.Config{
					Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0,
					Sched: omp.Dynamic, Chunk: k.ChunkFor(o.Scale, p.Nodes), Faults: fc,
				}})
			}
		}
	}

	pw := newProgress(progress)
	results, errs := collect(ctx, o.Jobs, len(cells), func(i int) (Result, error) {
		c := cells[i]
		pw.printf("chaos %s/%s @ rate %g...\n", c.kernel.Name, c.name, c.rate)
		return RunOne(c.kernel, c.name, c.cfg, o.Scale, true)
	})
	for i, c := range cells {
		if errs[i] != nil {
			s.Errors = append(s.Errors, CellError{Kernel: c.kernel.Name,
				Config: fmt.Sprintf("%s@rate=%g", c.name, c.rate), Err: errs[i]})
			continue
		}
		rows := s.Rows[c.kernel.Name]
		for ri := range rows {
			if rows[ri].Rate == c.rate {
				rows[ri].Results[c.name] = results[i]
				break
			}
		}
	}
	return s, nil
}

// TotalFaults sums the injected-fault counts across all cells.
func (s *ChaosSuite) TotalFaults() uint64 {
	var t uint64
	for _, rows := range s.Rows {
		for _, row := range rows {
			for _, r := range row.Results {
				t += r.Faults
			}
		}
	}
	return t
}

// TotalRecoveries sums the divergence recoveries across all cells.
func (s *ChaosSuite) TotalRecoveries() uint64 {
	var t uint64
	for _, rows := range s.Rows {
		for _, row := range rows {
			for _, r := range row.Results {
				t += r.Recoveries
			}
		}
	}
	return t
}

// classList names the plan's armed classes ("all" when unrestricted).
func classList(cs []faults.Class) string {
	if len(cs) == 0 {
		return "all"
	}
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.String()
	}
	return strings.Join(names, ",")
}

// Curves renders the degradation curves in the Fig2–Fig5 deterministic
// table style: per kernel and configuration, cycles, slowdown versus the
// same configuration's fault-free run, recoveries, and injected faults at
// each rate. Cells without results (failed or filtered) render "n/a".
func (s *ChaosSuite) Curves(w io.Writer) {
	fmt.Fprintf(w, "Chaos degradation curves (seed %d, classes %s; slowdown vs same config at rate 0)\n",
		s.Plan.Seed, classList(s.Plan.Classes))
	fmt.Fprintf(w, "%-4s %-12s %8s %12s %9s %11s %9s\n",
		"app", "config", "rate", "cycles", "slowdown", "recoveries", "injected")
	cellCount := 0
	for _, name := range s.Kernels {
		rows := s.Rows[name]
		for _, cfg := range chaosConfigOrder {
			var base uint64
			for _, row := range rows {
				if row.Rate == 0 {
					if r, ok := row.Results[cfg]; ok {
						base = r.Wall
					}
				}
			}
			printed := false
			for _, row := range rows {
				r, ok := row.Results[cfg]
				if !ok {
					continue
				}
				printed = true
				cellCount++
				if base > 0 && r.Wall > 0 {
					fmt.Fprintf(w, "%-4s %-12s %8g %12d %9.3f %11d %9d\n",
						name, cfg, row.Rate, r.Wall, float64(r.Wall)/float64(base), r.Recoveries, r.Faults)
				} else {
					fmt.Fprintf(w, "%-4s %-12s %8g %12d %9s %11d %9d\n",
						name, cfg, row.Rate, r.Wall, "n/a", r.Recoveries, r.Faults)
				}
			}
			if printed {
				fmt.Fprintln(w)
			}
		}
	}
	if len(s.Errors) > 0 {
		fmt.Fprintf(w, "%d cell(s) FAILED under fault injection:\n", len(s.Errors))
		for _, e := range s.Errors {
			fmt.Fprintf(w, "  %s\n", e.Error())
		}
		return
	}
	fmt.Fprintf(w, "verification: PASSED for all %d cells (faults cost time, never correctness)\n", cellCount)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/synth"
)

// CharRow is one synthetic workload's mode comparison.
type CharRow struct {
	Workload string
	Desc     string
	Walls    map[string]uint64
	Winner   string
}

// Characterize runs every synthetic workload under the four static-
// scheduling configurations and reports which execution mode wins — the
// workload-type → best-mode map that frames where slipstream pays off
// (communication-bound patterns) and where it does not (embarrassingly
// parallel streaming, where double mode's extra parallelism wins).
func Characterize(nodes int, p synth.Params, progress io.Writer) ([]CharRow, error) {
	mp := machine.DefaultParams()
	mp.Nodes = nodes
	var rows []CharRow
	for _, name := range synth.Names() {
		row := CharRow{Workload: name, Walls: map[string]uint64{}}
		for _, rc := range staticConfigs(mp, false) {
			if progress != nil {
				fmt.Fprintf(progress, "characterize %s/%s...\n", name, rc.name)
			}
			rt, err := omp.New(rc.cfg)
			if err != nil {
				return nil, err
			}
			w, err := synth.Build(name, rt, p)
			if err != nil {
				return nil, err
			}
			if err := rt.Run(w.Program); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, rc.name, err)
			}
			if err := w.Verify(); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, rc.name, err)
			}
			row.Desc = w.Desc
			row.Walls[rc.name] = rt.M.WallTime()
		}
		best := ""
		for cfgName, wall := range row.Walls {
			if best == "" || wall < row.Walls[best] {
				best = cfgName
			}
		}
		row.Winner = best
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintCharacterization renders the workload → mode map.
func PrintCharacterization(rows []CharRow, w io.Writer) {
	fmt.Fprintln(w, "Synthetic workload characterization (cycles; lower is better)")
	fmt.Fprintf(w, "%-9s %10s %10s %10s %10s  %s\n", "workload", "single", "double", "slip-G0", "slip-L1", "winner")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %10d %10d %10d %10d  %s\n", r.Workload,
			r.Walls["single"], r.Walls["double"], r.Walls["slip-G0"], r.Walls["slip-L1"], r.Winner)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %s\n", r.Workload, r.Desc)
	}
}

// winnersByKind is used by tests to assert the expected characterization
// shape without duplicating the harness.
func winnersByKind(rows []CharRow) map[string]string {
	out := map[string]string{}
	for _, r := range rows {
		out[r.Workload] = r.Winner
	}
	return out
}

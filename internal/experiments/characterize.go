package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/synth"
)

// CharRow is one synthetic workload's mode comparison.
type CharRow struct {
	Workload string
	Desc     string
	Walls    map[string]uint64
	Winner   string
}

// Characterize runs every synthetic workload under the four static-
// scheduling configurations and reports which execution mode wins — the
// workload-type → best-mode map that frames where slipstream pays off
// (communication-bound patterns) and where it does not (embarrassingly
// parallel streaming, where double mode's extra parallelism wins). The
// (workload × config) cells run on up to jobs workers (0 = one per host
// CPU); rows come back in synth.Names order with the winner resolved by
// the fixed config order, so output is identical at any concurrency.
// Failed cells are dropped from their row and aggregated into the
// returned error.
func Characterize(nodes int, p synth.Params, jobs int, progress io.Writer) ([]CharRow, error) {
	return CharacterizeCtx(context.Background(), nodes, p, jobs, progress)
}

// CharacterizeCtx is Characterize with cancellation, with the same
// partial-result semantics as the other Ctx runners.
func CharacterizeCtx(ctx context.Context, nodes int, p synth.Params, jobs int, progress io.Writer) ([]CharRow, error) {
	mp := machine.DefaultParams()
	mp.Nodes = nodes
	names := synth.Names()
	cfgs := staticConfigs(mp, false)
	type cell struct {
		workload string
		rc       runConfig
	}
	var cells []cell
	for _, name := range names {
		for _, rc := range cfgs {
			cells = append(cells, cell{workload: name, rc: rc})
		}
	}
	type outcome struct {
		wall uint64
		desc string
	}
	pw := newProgress(progress)
	outs, errs := collect(ctx, jobs, len(cells), func(i int) (outcome, error) {
		c := cells[i]
		pw.printf("characterize %s/%s...\n", c.workload, c.rc.name)
		rt, err := omp.New(c.rc.cfg)
		if err != nil {
			return outcome{}, err
		}
		w, err := synth.Build(c.workload, rt, p)
		if err != nil {
			return outcome{}, err
		}
		if err := rt.Run(w.Program); err != nil {
			return outcome{}, fmt.Errorf("%s/%s: %w", c.workload, c.rc.name, err)
		}
		if err := w.Verify(); err != nil {
			return outcome{}, fmt.Errorf("%s/%s: %w", c.workload, c.rc.name, err)
		}
		return outcome{wall: rt.M.WallTime(), desc: w.Desc}, nil
	})
	var rows []CharRow
	var cellErrs []CellError
	i := 0
	for _, name := range names {
		row := CharRow{Workload: name, Walls: map[string]uint64{}}
		for _, rc := range cfgs {
			if errs[i] != nil {
				cellErrs = append(cellErrs, CellError{Kernel: name, Config: rc.name, Err: errs[i]})
			} else {
				row.Desc = outs[i].desc
				row.Walls[rc.name] = outs[i].wall
			}
			i++
		}
		// Resolve the winner in config order (not map order) so ties
		// break the same way on every run.
		for _, rc := range cfgs {
			wall, ok := row.Walls[rc.name]
			if !ok {
				continue
			}
			if row.Winner == "" || wall < row.Walls[row.Winner] {
				row.Winner = rc.name
			}
		}
		rows = append(rows, row)
	}
	return rows, joinCellErrors(cellErrs)
}

// PrintCharacterization renders the workload → mode map.
func PrintCharacterization(rows []CharRow, w io.Writer) {
	fmt.Fprintln(w, "Synthetic workload characterization (cycles; lower is better)")
	fmt.Fprintf(w, "%-9s %10s %10s %10s %10s  %s\n", "workload", "single", "double", "slip-G0", "slip-L1", "winner")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %10d %10d %10d %10d  %s\n", r.Workload,
			r.Walls["single"], r.Walls["double"], r.Walls["slip-G0"], r.Walls["slip-L1"], r.Winner)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %s\n", r.Workload, r.Desc)
	}
}

// winnersByKind is used by tests to assert the expected characterization
// shape without duplicating the harness.
func winnersByKind(rows []CharRow) map[string]string {
	out := map[string]string{}
	for _, r := range rows {
		out[r.Workload] = r.Winner
	}
	return out
}

package experiments

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/stats"
)

// csvSuite builds a hand-crafted suite with out-of-order map insertion so
// the tests exercise WriteCSV's ordering logic, not map iteration luck.
func csvSuite() *Suite {
	return &Suite{
		Static: map[string]map[string]Result{
			"MG": {
				"slip-G0": {Kernel: "MG", Config: "slip-G0", Size: "64^3", Wall: 90},
				"single":  {Kernel: "MG", Config: "single", Size: "64^3", Wall: 120},
			},
			"CG": {
				"double": {Kernel: "CG", Config: "double", Size: "n=1400", Wall: 80},
				"single": {Kernel: "CG", Config: "single", Size: "n=1400", Wall: 100},
			},
		},
		Dynamic: map[string]map[string]Result{
			"CG": {
				"slip-G0-dyn": {Kernel: "CG", Config: "slip-G0-dyn", Size: "n=1400", Wall: 70},
				"single-dyn":  {Kernel: "CG", Config: "single-dyn", Size: "n=1400", Wall: 95},
			},
		},
	}
}

// TestWriteCSVHeaderShape pins the header: identification columns, one
// column per time-breakdown category, the A/R × read/readex × outcome
// classification shares, and the trailing recovery count.
func TestWriteCSVHeaderShape(t *testing.T) {
	var sb strings.Builder
	if err := csvSuite().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	for i, want := range []string{"kernel", "config", "size", "cycles"} {
		if header[i] != want {
			t.Fatalf("header[%d] = %q, want %q", i, header[i], want)
		}
	}
	if header[len(header)-1] != "recoveries" {
		t.Fatalf("last header column = %q, want recoveries", header[len(header)-1])
	}
	wantCols := 4 + int(stats.NumCats-stats.CatBusy) + 2*2*int(stats.NumOutcomes-stats.OutTimely) + 1
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	// Every data row must match the header width (encoding/csv enforces
	// this on read, so reaching here with >1 row proves the shape).
	if len(rows) != 1+6 {
		t.Fatalf("rows = %d, want header + 6 results", len(rows))
	}
}

// TestWriteCSVDeterministicRowOrder: kernels alphabetical, configs in the
// fixed report order, static block before dynamic — independent of map
// insertion order, byte-identical across calls.
func TestWriteCSVDeterministicRowOrder(t *testing.T) {
	var a, b strings.Builder
	if err := csvSuite().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := csvSuite().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two encodings differ:\n%s\n---\n%s", a.String(), b.String())
	}
	rows, err := csv.NewReader(strings.NewReader(a.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, r := range rows[1:] {
		order = append(order, r[0]+"/"+r[1])
	}
	want := []string{
		"CG/single", "CG/double",
		"MG/single", "MG/slip-G0",
		"CG/single-dyn", "CG/slip-G0-dyn",
	}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("row order = %v, want %v", order, want)
	}
}

// TestWriteCSVMissingBaseline: a suite whose single-mode baseline cell
// failed (absent from the result map) still emits the surviving rows —
// the CSV layer must not invent or require a baseline.
func TestWriteCSVMissingBaseline(t *testing.T) {
	s := &Suite{Static: map[string]map[string]Result{
		"CG": {"slip-G0": {Kernel: "CG", Config: "slip-G0", Size: "n=1400", Wall: 90}},
	}}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1 surviving cell", len(rows))
	}
	if rows[1][0] != "CG" || rows[1][1] != "slip-G0" {
		t.Fatalf("surviving row = %v", rows[1])
	}
}

// TestWriteCSVUnknownConfigAppended: configs outside the fixed report
// order (e.g. a token-sweep name) still land in the output, after the
// known ones, in a stable position.
func TestWriteCSVUnknownConfigAppended(t *testing.T) {
	s := &Suite{Static: map[string]map[string]Result{
		"CG": {
			"zz-custom": {Kernel: "CG", Config: "zz-custom", Wall: 50},
			"single":    {Kernel: "CG", Config: "single", Wall: 100},
		},
	}}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1][1] != "single" || rows[2][1] != "zz-custom" {
		t.Fatalf("unexpected rows: %v", rows)
	}
}

// TestWriteCSVEmptySuite: header only, no error.
func TestWriteCSVEmptySuite(t *testing.T) {
	var sb strings.Builder
	if err := (&Suite{}).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want header only", len(rows))
	}
}

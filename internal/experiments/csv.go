package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/stats"
)

// WriteCSV emits every result in the suite as CSV rows for downstream
// plotting: identification, wall cycles, time-breakdown shares, and the
// shared-request classification shares.
func (s *Suite) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"kernel", "config", "size", "cycles"}
	for c := stats.CatBusy; c < stats.NumCats; c++ {
		header = append(header, c.String())
	}
	for _, kind := range []stats.ReqKind{stats.ReqRead, stats.ReqReadEx} {
		for _, role := range []stats.Role{stats.RoleA, stats.RoleR} {
			for o := stats.OutTimely; o < stats.NumOutcomes; o++ {
				header = append(header, fmt.Sprintf("%s_%s_%s", kind, role, o))
			}
		}
	}
	header = append(header, "recoveries")
	if err := cw.Write(header); err != nil {
		return err
	}
	emit := func(m map[string]map[string]Result) error {
		for _, kernel := range sortedKernels(m) {
			rs := m[kernel]
			for _, cfgName := range sortedConfigs(rs) {
				r := rs[cfgName]
				row := []string{r.Kernel, r.Config, r.Size, fmt.Sprint(r.Wall)}
				sh := r.Breakdown.Shares()
				for c := stats.CatBusy; c < stats.NumCats; c++ {
					row = append(row, fmt.Sprintf("%.4f", sh[c]))
				}
				for _, kind := range []stats.ReqKind{stats.ReqRead, stats.ReqReadEx} {
					for _, role := range []stats.Role{stats.RoleA, stats.RoleR} {
						for o := stats.OutTimely; o < stats.NumOutcomes; o++ {
							row = append(row, fmt.Sprintf("%.4f", r.Class.Share(role, kind, o)))
						}
					}
				}
				row = append(row, fmt.Sprint(r.Recoveries))
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if s.Static != nil {
		if err := emit(s.Static); err != nil {
			return err
		}
	}
	if s.Dynamic != nil {
		if err := emit(s.Dynamic); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sortedConfigs returns a result map's config names in a stable order.
func sortedConfigs(rs map[string]Result) []string {
	order := []string{"single", "double", "slip-G0", "slip-L1", "single-dyn", "slip-G0-dyn"}
	var out []string
	for _, n := range order {
		if _, ok := rs[n]; ok {
			out = append(out, n)
		}
	}
	for n := range rs {
		found := false
		for _, o := range out {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			out = append(out, n)
		}
	}
	return out
}

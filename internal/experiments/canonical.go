package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/npb"
)

// Canonical encoding of Options. This is the single source of truth for
// the slipd result-cache key: two Options that describe the same suite
// must encode to the same bytes, whatever path produced them (CLI flags,
// an HTTP job spec, Go code). Canonicalization therefore applies defaults
// (zero Nodes → the paper's 16, nil Params → DefaultParams with the node
// override applied), normalizes the kernel filter (trimmed, uppercased,
// sorted, deduplicated), and drops Jobs entirely — concurrency changes
// wall-clock time, never results, so it must not fragment the cache.

// canonOptions is the frozen wire shape (alphabetical field order).
type canonOptions struct {
	Kernels        []string        `json:"kernels"`
	Nodes          int             `json:"nodes"`
	Params         json.RawMessage `json:"params"`
	Scale          string          `json:"scale"`
	SelfInvalidate bool            `json:"self_invalidate"`
	Verify         bool            `json:"verify"`
}

// Canonical returns a normalized copy of o with defaults applied: the
// resolved machine.Params is pinned into Params, Nodes mirrors the
// resolved node count, the kernel filter is normalized, and Jobs is
// cleared. Canonical is idempotent: o.Canonical().Canonical() == o.Canonical().
func (o Options) Canonical() Options {
	p := o.params()
	o.Params = &p
	o.Nodes = p.Nodes
	o.Jobs = 0
	o.Kernels = normalizeKernels(o.Kernels)
	return o
}

// normalizeKernels trims, uppercases, sorts and deduplicates a kernel
// filter. An empty filter stays nil ("all kernels").
func normalizeKernels(ks []string) []string {
	if len(ks) == 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, k := range ks {
		name := strings.ToUpper(strings.TrimSpace(k))
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CanonicalJSON renders o.Canonical() in the canonical encoding.
func (o Options) CanonicalJSON() ([]byte, error) {
	c := o.Canonical()
	pj, err := c.Params.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	kernels := c.Kernels
	if kernels == nil {
		kernels = []string{} // encode as [], not null
	}
	return json.Marshal(canonOptions{
		Kernels:        kernels,
		Nodes:          c.Nodes,
		Params:         pj,
		Scale:          c.Scale.String(),
		SelfInvalidate: c.SelfInvalidate,
		Verify:         c.Verify,
	})
}

// OptionsFromCanonicalJSON decodes a canonical encoding. The result is
// already canonical: decode(encode(o)) == o.Canonical().
func OptionsFromCanonicalJSON(data []byte) (Options, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c canonOptions
	if err := dec.Decode(&c); err != nil {
		return Options{}, fmt.Errorf("experiments: canonical options: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return Options{}, fmt.Errorf("experiments: canonical options: trailing data")
	}
	scale, err := npb.ParseScale(c.Scale)
	if err != nil {
		return Options{}, err
	}
	p, err := machine.ParamsFromCanonicalJSON(c.Params)
	if err != nil {
		return Options{}, err
	}
	o := Options{
		Nodes:          c.Nodes,
		Scale:          scale,
		Kernels:        normalizeKernels(c.Kernels),
		SelfInvalidate: c.SelfInvalidate,
		Verify:         c.Verify,
		Params:         &p,
	}
	return o, nil
}

// Package experiments regenerates the paper's evaluation: Figures 2–5 and
// Tables 1–2 (§5). Each figure is derived from a suite of simulator runs —
// the cross product of benchmark × execution mode × A–R synchronization —
// and rendered as aligned text tables with the same series the paper
// plots.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
	"repro/internal/stats"
)

// Options configure an experiment suite.
type Options struct {
	Nodes          int       // CMP count (paper: 16)
	Scale          npb.Scale // problem scale (paper figures: ScalePaper)
	Kernels        []string  // subset filter; empty = all
	SelfInvalidate bool      // enable the self-invalidation optimization
	Verify         bool      // check results against serial references
	Jobs           int       // max concurrent runs: 0 = one per host CPU, 1 = sequential
	Params         *machine.Params
}

// DefaultOptions returns the paper's 16-CMP configuration.
func DefaultOptions() Options {
	return Options{Nodes: 16, Scale: npb.ScalePaper, Verify: true}
}

func (o Options) params() machine.Params {
	p := machine.DefaultParams()
	if o.Params != nil {
		p = *o.Params
	}
	if o.Nodes > 0 {
		p.Nodes = o.Nodes
	}
	return p
}

func (o Options) kernels() ([]npb.Kernel, error) {
	all := npb.Kernels()
	if len(o.Kernels) == 0 {
		return all, nil
	}
	valid := map[string]bool{}
	var names []string
	for _, k := range all {
		valid[k.Name] = true
		names = append(names, k.Name)
	}
	want := map[string]bool{}
	for _, n := range o.Kernels {
		name := strings.ToUpper(strings.TrimSpace(n))
		if !valid[name] {
			return nil, fmt.Errorf("unknown kernel %q (valid: %s)", n, strings.Join(names, ", "))
		}
		want[name] = true
	}
	var out []npb.Kernel
	for _, k := range all {
		if want[k.Name] {
			out = append(out, k)
		}
	}
	return out, nil
}

// Result is one simulator run's measurements.
type Result struct {
	Kernel     string
	Config     string
	Size       string
	Wall       uint64
	Breakdown  stats.Breakdown
	Class      stats.Class
	Recoveries uint64
	Faults     uint64 // faults injected by the run's plan (0 when unarmed)
	TasksRun   uint64 // explicit tasks executed (0 for non-tasking kernels)
	Steals     uint64 // task deque steals (0 for non-tasking kernels)
}

// runConfig names one execution configuration of the suite.
type runConfig struct {
	name string
	cfg  omp.Config
}

// staticConfigs are the Figure 2/3 configurations.
func staticConfigs(p machine.Params, selfInv bool) []runConfig {
	return []runConfig{
		{"single", omp.Config{Machine: p, Mode: core.ModeSingle}},
		{"double", omp.Config{Machine: p, Mode: core.ModeDouble}},
		{"slip-G0", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, SelfInvalidate: selfInv}},
		{"slip-L1", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.L1}},
	}
}

// dynamicConfigs are the Figure 4/5 configurations: one task per CMP only,
// zero-token global for slipstream (the scheduling handoff makes other
// synchronizations converge to it, §5.2).
func dynamicConfigs(p machine.Params, chunk int) []runConfig {
	return []runConfig{
		{"single-dyn", omp.Config{Machine: p, Mode: core.ModeSingle, Sched: omp.Dynamic, Chunk: chunk}},
		{"slip-G0-dyn", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Sched: omp.Dynamic, Chunk: chunk}},
	}
}

// RunOne executes kernel k under cfg at the given scale.
func RunOne(k npb.Kernel, name string, cfg omp.Config, scale npb.Scale, verify bool) (Result, error) {
	rt, err := omp.New(cfg)
	if err != nil {
		return Result{}, err
	}
	inst := k.Build(rt, scale)
	if err := rt.Run(inst.Program); err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", k.Name, name, err)
	}
	if verify {
		if err := inst.Verify(); err != nil {
			return Result{}, fmt.Errorf("%s/%s: verification: %w", k.Name, name, err)
		}
	}
	return Result{
		Kernel:     k.Name,
		Config:     name,
		Size:       inst.Size,
		Wall:       rt.M.WallTime(),
		Breakdown:  rt.M.TotalBreakdown(),
		Class:      rt.M.Class,
		Recoveries: rt.SS.Recoveries(),
		Faults:     rt.FaultsInjected(),
		TasksRun:   rt.TasksExecuted(),
		Steals:     rt.TaskSteals(),
	}, nil
}

// Suite holds the results of the static and dynamic run matrices. Cells
// that failed to run or verify are absent from the result maps and
// recorded in Errors with their kernel/config identity.
type Suite struct {
	Opts    Options
	Static  map[string]map[string]Result // kernel → config → result
	Dynamic map[string]map[string]Result
	Errors  []CellError // failed cells, in matrix order
}

// Err returns the suite's per-cell failures joined into one error, or nil
// if every run succeeded.
func (s *Suite) Err() error {
	if s == nil {
		return nil
	}
	return joinCellErrors(s.Errors)
}

// RunStatic executes the static-scheduling matrix (Figures 2 and 3) on up
// to o.Jobs concurrent workers. A failing cell does not abort the matrix:
// it is recorded in Suite.Errors and the other cells complete. The
// returned error is non-nil only for configuration problems (e.g. an
// unknown kernel name).
func RunStatic(o Options, progress io.Writer) (*Suite, error) {
	return RunStaticCtx(context.Background(), o, progress)
}

// RunStaticCtx is RunStatic with cancellation: once ctx is done the
// remaining cells are aborted promptly and recorded in Suite.Errors with
// the context's error, so callers get the partial matrix that did run.
func RunStaticCtx(ctx context.Context, o Options, progress io.Writer) (*Suite, error) {
	ks, err := o.kernels()
	if err != nil {
		return nil, err
	}
	s := &Suite{Opts: o, Static: map[string]map[string]Result{}}
	p := o.params()
	var cells []matrixCell
	for _, k := range ks {
		s.Static[k.Name] = map[string]Result{}
		for _, rc := range staticConfigs(p, o.SelfInvalidate) {
			cells = append(cells, matrixCell{kernel: k, rc: rc})
		}
	}
	results, errs := runCells(ctx, cells, o.Jobs, o, "static", progress)
	for i, c := range cells {
		if errs[i] != nil {
			s.Errors = append(s.Errors, CellError{Kernel: c.kernel.Name, Config: c.rc.name, Err: errs[i]})
			continue
		}
		s.Static[c.kernel.Name][c.rc.name] = results[i]
	}
	return s, nil
}

// RunDynamic executes the dynamic-scheduling matrix (Figures 4 and 5) on
// up to o.Jobs concurrent workers, with the same per-cell error handling
// as RunStatic. LU is excluded: it specifies static scheduling
// programmatically (§5.2).
func RunDynamic(o Options, progress io.Writer) (*Suite, error) {
	return RunDynamicCtx(context.Background(), o, progress)
}

// RunDynamicCtx is RunDynamic with cancellation, with the same partial-
// result semantics as RunStaticCtx.
func RunDynamicCtx(ctx context.Context, o Options, progress io.Writer) (*Suite, error) {
	ks, err := o.kernels()
	if err != nil {
		return nil, err
	}
	s := &Suite{Opts: o, Dynamic: map[string]map[string]Result{}}
	p := o.params()
	var cells []matrixCell
	for _, k := range ks {
		if !k.Dynamic {
			continue
		}
		chunk := k.ChunkFor(o.Scale, p.Nodes)
		s.Dynamic[k.Name] = map[string]Result{}
		for _, rc := range dynamicConfigs(p, chunk) {
			cells = append(cells, matrixCell{kernel: k, rc: rc})
		}
	}
	results, errs := runCells(ctx, cells, o.Jobs, o, "dynamic", progress)
	for i, c := range cells {
		if errs[i] != nil {
			s.Errors = append(s.Errors, CellError{Kernel: c.kernel.Name, Config: c.rc.name, Err: errs[i]})
			continue
		}
		s.Dynamic[c.kernel.Name][c.rc.name] = results[i]
	}
	return s, nil
}

// sortedKernels returns the kernel names of a result map in report order.
func sortedKernels(m map[string]map[string]Result) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fig2 renders the static-scheduling speedups (normalized to single mode)
// and execution-time breakdowns — the paper's Figure 2. Kernels whose
// single-mode baseline is missing (filtered out or failed) render their
// cycle counts with "n/a" speedups and an explanatory note instead of
// dividing by a zero-value cell.
func (s *Suite) Fig2(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: slipstream and double-mode performance over single mode (static scheduling)")
	fmt.Fprintf(w, "%-4s %-9s %10s %8s  %s\n", "app", "config", "cycles", "speedup", "time breakdown")
	for _, name := range sortedKernels(s.Static) {
		rs := s.Static[name]
		base, haveBase := rs["single"]
		for _, cfg := range []string{"single", "double", "slip-G0", "slip-L1"} {
			r, ok := rs[cfg]
			if !ok {
				continue
			}
			if haveBase && base.Wall > 0 && r.Wall > 0 {
				fmt.Fprintf(w, "%-4s %-9s %10d %8.3f  %s\n",
					name, cfg, r.Wall, float64(base.Wall)/float64(r.Wall), r.Breakdown.String())
			} else {
				fmt.Fprintf(w, "%-4s %-9s %10d %8s  %s\n",
					name, cfg, r.Wall, "n/a", r.Breakdown.String())
			}
		}
		best := minWall(rs, "slip-G0", "slip-L1")
		bestBase := minWall(rs, "single", "double")
		if !haveBase || best == noWall || bestBase == noWall {
			fmt.Fprintf(w, "%-4s note: baseline missing (filtered or failed run); speedups n/a\n\n", name)
			continue
		}
		fmt.Fprintf(w, "%-4s best slipstream vs best(single,double): %+.1f%%\n\n",
			name, 100*(float64(bestBase)/float64(best)-1))
	}
}

// Fig3 renders the shared-data memory request classification under static
// scheduling for the two A–R synchronizations — the paper's Figure 3.
func (s *Suite) Fig3(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: breakdown of shared-data memory requests (static scheduling)")
	for _, name := range sortedKernels(s.Static) {
		for _, cfg := range []string{"slip-L1", "slip-G0"} {
			r, ok := s.Static[name][cfg]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-4s %-8s\n%s\n", name, cfg, classTable(&r.Class))
		}
	}
	fmt.Fprintln(w)
}

// Fig4 renders the dynamic-scheduling execution-time breakdowns — the
// paper's Figure 4 (base = one task/CMP with dynamic scheduling).
func (s *Suite) Fig4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: execution time breakdown with dynamic scheduling (vs one task/CMP)")
	fmt.Fprintf(w, "%-4s %-12s %10s %8s  %s\n", "app", "config", "cycles", "speedup", "time breakdown")
	for _, name := range sortedKernels(s.Dynamic) {
		rs := s.Dynamic[name]
		base, haveBase := rs["single-dyn"]
		for _, cfg := range []string{"single-dyn", "slip-G0-dyn"} {
			r, ok := rs[cfg]
			if !ok {
				continue
			}
			if haveBase && base.Wall > 0 && r.Wall > 0 {
				fmt.Fprintf(w, "%-4s %-12s %10d %8.3f  %s\n",
					name, cfg, r.Wall, float64(base.Wall)/float64(r.Wall), r.Breakdown.String())
			} else {
				fmt.Fprintf(w, "%-4s %-12s %10d %8s  %s\n",
					name, cfg, r.Wall, "n/a", r.Breakdown.String())
			}
		}
		if !haveBase {
			fmt.Fprintf(w, "%-4s note: single-dyn baseline missing (filtered or failed run); speedups n/a\n", name)
		}
	}
	fmt.Fprintln(w)
}

// Fig5 renders the request classification under dynamic scheduling — the
// paper's Figure 5.
func (s *Suite) Fig5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: breakdown of shared-data memory requests (dynamic scheduling, slipstream G0)")
	for _, name := range sortedKernels(s.Dynamic) {
		r, ok := s.Dynamic[name]["slip-G0-dyn"]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-4s\n%s\n", name, classTable(&r.Class))
	}
	fmt.Fprintln(w)
}

// classTable renders one classification as two rows of percentage shares.
func classTable(c *stats.Class) string {
	var sb strings.Builder
	for k := stats.ReqRead; k < stats.NumKinds; k++ {
		fmt.Fprintf(&sb, "  %-7s (n=%7d)", k, c.KindTotal(k))
		for _, r := range []stats.Role{stats.RoleA, stats.RoleR} {
			for o := stats.OutTimely; o < stats.NumOutcomes; o++ {
				fmt.Fprintf(&sb, "  %s-%s %5.1f%%", r, o, 100*c.Share(r, k, o))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table1 renders the simulated system parameters.
func Table1(o Options, w io.Writer) {
	fmt.Fprint(w, o.params().Table1())
}

// Table2 renders the benchmark list with the instantiated problem sizes.
func Table2(o Options, w io.Writer) error {
	fmt.Fprintln(w, "Table 2: benchmarks (OpenMP-style ports of NPB 2.3 kernels, reduced sizes)")
	ks, err := o.kernels()
	if err != nil {
		return err
	}
	p := o.params()
	p.Nodes = 2 // tiny machine: only the instance metadata is needed
	for _, k := range ks {
		rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSingle})
		if err != nil {
			return err
		}
		inst := k.Build(rt, o.Scale)
		dyn := "static+dynamic"
		if !k.Dynamic {
			dyn = "static only (hard-coded static scheduling)"
		}
		fmt.Fprintf(w, "  %-3s %-38s %s\n", k.Name, inst.Size, dyn)
	}
	return nil
}

// noWall is minWall's sentinel for "no named config present".
const noWall = ^uint64(0)

// minWall returns the smallest wall time among the named configs, or
// noWall if none of them is present.
func minWall(rs map[string]Result, names ...string) uint64 {
	best := noWall
	for _, n := range names {
		if r, ok := rs[n]; ok && r.Wall < best {
			best = r.Wall
		}
	}
	return best
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/npb"
)

// quickOpts returns a fast configuration for functional tests.
func quickOpts() Options {
	o := DefaultOptions()
	o.Nodes = 4
	o.Scale = npb.ScaleTest
	o.Kernels = []string{"CG"}
	return o
}

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	Table1(DefaultOptions(), &sb)
	for _, want := range []string{"1.2 GHz", "16 nodes", "170 ns"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table1 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTable2Renders(t *testing.T) {
	var sb strings.Builder
	if err := Table2(DefaultOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BT", "CG", "LU", "MG", "SP", "static only"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table2 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestStaticSuiteAndRendering(t *testing.T) {
	s, err := RunStatic(quickOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := s.Static["CG"]
	if len(rs) != 4 {
		t.Fatalf("static configs = %d, want 4", len(rs))
	}
	for name, r := range rs {
		if r.Wall == 0 {
			t.Fatalf("%s: zero wall time", name)
		}
		if r.Breakdown.Total() == 0 {
			t.Fatalf("%s: empty breakdown", name)
		}
	}
	var f2, f3 strings.Builder
	s.Fig2(&f2)
	if !strings.Contains(f2.String(), "speedup") || !strings.Contains(f2.String(), "slip-G0") {
		t.Fatalf("Fig2 output malformed:\n%s", f2.String())
	}
	s.Fig3(&f3)
	if !strings.Contains(f3.String(), "A-timely") {
		t.Fatalf("Fig3 output malformed:\n%s", f3.String())
	}
}

func TestDynamicSuiteAndRendering(t *testing.T) {
	s, err := RunDynamic(quickOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := s.Dynamic["CG"]
	if len(rs) != 2 {
		t.Fatalf("dynamic configs = %d, want 2", len(rs))
	}
	var f4, f5 strings.Builder
	s.Fig4(&f4)
	if !strings.Contains(f4.String(), "single-dyn") {
		t.Fatalf("Fig4 output malformed:\n%s", f4.String())
	}
	s.Fig5(&f5)
	if !strings.Contains(f5.String(), "readex") {
		t.Fatalf("Fig5 output malformed:\n%s", f5.String())
	}
}

func TestDynamicExcludesLU(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"LU"}
	s, err := RunDynamic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dynamic) != 0 {
		t.Fatal("LU ran under dynamic scheduling")
	}
}

func TestKernelFilter(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"mg", " cg "} // case-insensitive, whitespace-tolerant
	ks, err := o.kernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0].Name != "CG" || ks[1].Name != "MG" {
		t.Fatalf("filter resolved %v", ks)
	}
}

func TestKernelFilterUnknown(t *testing.T) {
	o := quickOpts()
	o.Kernels = []string{"GM"}
	if _, err := o.kernels(); err == nil {
		t.Fatal("unknown kernel accepted")
	} else if !strings.Contains(err.Error(), `"GM"`) || !strings.Contains(err.Error(), "BT, CG, LU, MG, SP") {
		t.Fatalf("error does not name the kernel and the valid set: %v", err)
	}
	if _, err := RunStatic(o, nil); err == nil {
		t.Fatal("RunStatic accepted unknown kernel")
	}
	if _, err := RunDynamic(o, nil); err == nil {
		t.Fatal("RunDynamic accepted unknown kernel")
	}
	var sb strings.Builder
	if err := Table2(o, &sb); err == nil {
		t.Fatal("Table2 accepted unknown kernel")
	}
}

func TestSelfInvalidationOption(t *testing.T) {
	o := quickOpts()
	o.SelfInvalidate = true
	s, err := RunStatic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Static["CG"]["slip-G0"].Wall == 0 {
		t.Fatal("self-invalidation run missing")
	}
}

// TestPaperShapeStatic checks the headline Figure 2 property at paper
// scale: on every kernel the best slipstream configuration beats the best
// of single and double mode. Slow (full 16-CMP matrix); skipped in -short.
func TestPaperShapeStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale shape test")
	}
	o := DefaultOptions()
	s, err := RunStatic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sortedKernels(s.Static) {
		rs := s.Static[k]
		best := minWall(rs, "slip-G0", "slip-L1")
		bestBase := minWall(rs, "single", "double")
		if best >= bestBase {
			t.Errorf("%s: best slipstream (%d) not better than best base (%d)", k, best, bestBase)
		}
	}
}

// TestPaperShapeDynamic checks the Figure 4 property: slipstream improves
// the dynamic-scheduling base on every dynamic-capable kernel.
func TestPaperShapeDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale shape test")
	}
	o := DefaultOptions()
	s, err := RunDynamic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sortedKernels(s.Dynamic) {
		rs := s.Dynamic[k]
		if rs["slip-G0-dyn"].Wall >= rs["single-dyn"].Wall {
			t.Errorf("%s: slipstream (%d) did not improve dynamic base (%d)",
				k, rs["slip-G0-dyn"].Wall, rs["single-dyn"].Wall)
		}
	}
}

// TestPaperShapeSyncContrast checks the Figure 3 property: one-token-local
// lets the A-stream convert more of its read coverage into timely fills
// than zero-token-global, and produces more premature (A-only) fills.
func TestPaperShapeSyncContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale shape test")
	}
	o := DefaultOptions()
	o.Kernels = []string{"CG", "MG"}
	s, err := RunStatic(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sortedKernels(s.Static) {
		g0 := s.Static[k]["slip-G0"].Class
		l1 := s.Static[k]["slip-L1"].Class
		if l1.Share(1, 0, 0) <= g0.Share(1, 0, 0) {
			t.Errorf("%s: L1 A-timely reads (%.1f%%) not above G0 (%.1f%%)",
				k, 100*l1.Share(1, 0, 0), 100*g0.Share(1, 0, 0))
		}
		if l1.Share(1, 0, 2) < g0.Share(1, 0, 2) {
			t.Errorf("%s: L1 premature fills (%.1f%%) below G0 (%.1f%%)",
				k, 100*l1.Share(1, 0, 2), 100*g0.Share(1, 0, 2))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s, err := RunStatic(quickOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // header + 4 configs
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "kernel,config,size,cycles,busy,") {
		t.Fatalf("csv header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "CG,") {
			t.Fatalf("row = %q", l)
		}
	}
}

func TestSortedConfigsStable(t *testing.T) {
	rs := map[string]Result{"slip-L1": {}, "single": {}, "weird": {}, "double": {}}
	got := sortedConfigs(rs)
	if got[0] != "single" || got[1] != "double" || got[2] != "slip-L1" || got[3] != "weird" {
		t.Fatalf("order = %v", got)
	}
}

func TestWriteCSVIncludesDynamic(t *testing.T) {
	s, err := RunDynamic(quickOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "single-dyn") || !strings.Contains(sb.String(), "slip-G0-dyn") {
		t.Fatalf("dynamic rows missing:\n%s", sb.String())
	}
}

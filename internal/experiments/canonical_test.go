package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/machine"
	"repro/internal/npb"
)

// TestOptionsCanonicalRoundTrip: decode(encode(o)) must equal o.Canonical()
// (Jobs excepted — it is dropped by design).
func TestOptionsCanonicalRoundTrip(t *testing.T) {
	o := Options{
		Nodes:          8,
		Scale:          npb.ScaleSmall,
		Kernels:        []string{" cg", "bt", "CG"},
		SelfInvalidate: true,
		Verify:         true,
		Jobs:           7,
	}
	data, err := o.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptionsFromCanonicalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Canonical()
	if *got.Params != *want.Params {
		t.Fatalf("params mismatch:\n got %+v\nwant %+v", *got.Params, *want.Params)
	}
	got.Params, want.Params = nil, nil
	if got.Nodes != want.Nodes || got.Scale != want.Scale ||
		got.SelfInvalidate != want.SelfInvalidate || got.Verify != want.Verify {
		t.Fatalf("scalar mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Kernels) != 2 || got.Kernels[0] != "BT" || got.Kernels[1] != "CG" {
		t.Fatalf("kernels = %v, want [BT CG]", got.Kernels)
	}
}

// TestOptionsCanonicalEquivalence: different spellings of the same suite
// must hash identically, and settings that change results must not.
func TestOptionsCanonicalEquivalence(t *testing.T) {
	hash := func(o Options) string {
		t.Helper()
		data, err := o.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		return hex.EncodeToString(sum[:])
	}
	base := DefaultOptions()

	spelled := DefaultOptions()
	spelled.Kernels = nil
	spelled.Jobs = 13 // concurrency must not fragment the cache
	if hash(base) != hash(spelled) {
		t.Fatal("Jobs changed the canonical hash")
	}

	reordered := DefaultOptions()
	reordered.Kernels = []string{"mg", " CG "}
	ordered := DefaultOptions()
	ordered.Kernels = []string{"CG", "MG"}
	if hash(reordered) != hash(ordered) {
		t.Fatal("kernel filter spelling changed the canonical hash")
	}

	explicit := DefaultOptions()
	p := machine.DefaultParams()
	explicit.Params = &p
	if hash(base) != hash(explicit) {
		t.Fatal("explicit default Params hashed differently from nil Params")
	}

	other := DefaultOptions()
	other.Nodes = 8
	if hash(base) == hash(other) {
		t.Fatal("node count did not change the canonical hash")
	}
	noVerify := DefaultOptions()
	noVerify.Verify = false
	if hash(base) == hash(noVerify) {
		t.Fatal("Verify did not change the canonical hash")
	}
}

// TestOptionsCanonicalStable pins the encoding of the default options so
// accidental reordering or renaming shows up as a test failure with the
// same bump-the-cache-key instruction as the machine.Params golden.
func TestOptionsCanonicalStable(t *testing.T) {
	a, err := DefaultOptions().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultOptions().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", a, b)
	}
	sum := sha256.Sum256(a)
	const golden = "5d0ed8b46968a7abbd83b837645cf12b8147a7dbc73a51a9b161690d52837bd9"
	if got := hex.EncodeToString(sum[:]); got != golden {
		t.Fatalf("canonical hash changed: %s (encoding: %s)\nupdate the golden and bump the slipd cache-key version", got, a)
	}
}

// TestOptionsCanonicalIdempotent: canonicalizing twice is a no-op.
func TestOptionsCanonicalIdempotent(t *testing.T) {
	o := Options{Kernels: []string{"sp", "bt"}, Scale: npb.ScalePaper, Verify: true}
	once := o.Canonical()
	twice := once.Canonical()
	aj, err := once.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := twice.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("Canonical not idempotent:\n%s\n%s", aj, bj)
	}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/npb"
	"repro/internal/pool"
)

// This file is the suite runner: every experiment entry point fans its
// independent RunOne calls out over a bounded worker pool and collects the
// results back in matrix order, so figure and table output is byte-for-byte
// identical to a sequential run no matter which worker finishes first.
// Failures are aggregated per cell instead of aborting the whole matrix:
// a cell that fails to build, run, or verify leaves a CellError carrying
// its kernel/config identity, and the surviving cells still render.

// CellError records one failed cell of a run matrix with enough identity
// to re-run it in isolation.
type CellError struct {
	Kernel string // kernel or workload name
	Config string // configuration name, possibly annotated with the node count
	Err    error
}

func (e CellError) Error() string { return fmt.Sprintf("%s/%s: %v", e.Kernel, e.Config, e.Err) }

func (e CellError) Unwrap() error { return e.Err }

// joinCellErrors flattens per-cell failures into one error, nil if none.
func joinCellErrors(errs []CellError) error {
	if len(errs) == 0 {
		return nil
	}
	joined := make([]error, len(errs))
	for i, e := range errs {
		joined[i] = e
	}
	return errors.Join(joined...)
}

// progressWriter serializes progress lines from concurrent workers so
// interleaved runs never tear each other's lines. A nil *progressWriter
// (from a nil underlying writer, i.e. -q) discards everything.
type progressWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newProgress(w io.Writer) *progressWriter {
	if w == nil {
		return nil
	}
	return &progressWriter{w: w}
}

func (p *progressWriter) printf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}

// collect runs run(i) for every i in [0, n) on up to jobs workers and
// returns values and errors slot-per-index: callers reassemble results in
// matrix order regardless of completion order. Cancelling ctx aborts the
// remaining cells promptly: a cell the pool never dispatched, or that was
// dispatched after cancellation, carries ctx's error in its slot, so every
// index still resolves to either a value or an error and suites degrade to
// partial results instead of hanging. An individual run is not interrupted
// mid-simulation — cancellation is observed between cells.
func collect[T any](ctx context.Context, jobs, n int, run func(int) (T, error)) ([]T, []error) {
	vals := make([]T, n)
	errs := make([]error, n)
	dispatched := make([]bool, n)
	poolErr := pool.ForEachCtx(ctx, jobs, n, func(i int) {
		dispatched[i] = true
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		vals[i], errs[i] = run(i)
	})
	if poolErr != nil {
		for i := range errs {
			if !dispatched[i] {
				errs[i] = poolErr
			}
		}
	}
	return vals, errs
}

// matrixCell is one (kernel, config) coordinate of a run matrix.
type matrixCell struct {
	kernel npb.Kernel
	rc     runConfig
}

// runCells executes the cells on the pool and returns results and errors
// aligned to the cell index: results[i] is valid iff errs[i] is nil. label
// annotates progress lines ("static"/"dynamic").
func runCells(ctx context.Context, cells []matrixCell, jobs int, o Options, label string, progress io.Writer) ([]Result, []error) {
	pw := newProgress(progress)
	return collect(ctx, jobs, len(cells), func(i int) (Result, error) {
		c := cells[i]
		pw.printf("running %s/%s (%s)...\n", c.kernel.Name, c.rc.name, label)
		return RunOne(c.kernel, c.rc.name, c.rc.cfg, o.Scale, o.Verify)
	})
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/npb"
)

func chaosOpts(jobs int) Options {
	return Options{Nodes: 4, Scale: npb.ScaleTest, Kernels: []string{"CG"}, Jobs: jobs}
}

// The acceptance bar for the chaos suite: the same seed and rates render
// byte-identical reports at any -jobs value.
func TestChaosDeterministicAtAnyJobs(t *testing.T) {
	plan := faults.Config{Seed: 42}
	rates := []float64{0.5}
	render := func(jobs int) string {
		s, err := RunChaos(chaosOpts(jobs), plan, rates, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Err(); err != nil {
			t.Fatalf("chaos cells failed: %v", err)
		}
		var buf bytes.Buffer
		s.Curves(&buf)
		return buf.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("chaos report differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", seq, par)
	}
	if !strings.Contains(seq, "faults cost time, never correctness") {
		t.Fatalf("report missing verification line:\n%s", seq)
	}
}

// Every injected-fault run must still pass result verification, and at an
// aggressive rate the recovery path must actually fire.
func TestChaosInjectsAndStillVerifies(t *testing.T) {
	s, err := RunChaos(chaosOpts(0), faults.Config{Seed: 7}, []float64{0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("verification failed under injection: %v", err)
	}
	if s.TotalFaults() == 0 {
		t.Fatal("rate 0.5 injected no faults")
	}
	if s.TotalRecoveries() == 0 {
		t.Fatal("rate 0.5 triggered no divergence recoveries")
	}
	// The fault-free baseline row must be clean even though only rate 0.5
	// was requested (rate 0 is implicit).
	rows := s.Rows["CG"]
	if len(rows) != 2 || rows[0].Rate != 0 || rows[1].Rate != 0.5 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, cfg := range []string{"slip-G0", "slip-G0-dyn"} {
		if r, ok := rows[0].Results[cfg]; !ok || r.Faults != 0 {
			t.Fatalf("baseline %s: ok=%v faults=%d", cfg, ok, r.Faults)
		}
		if _, ok := rows[1].Results[cfg]; !ok {
			t.Fatalf("missing injected cell %s", cfg)
		}
	}
}

func TestChaosRejectsBadPlan(t *testing.T) {
	if _, err := RunChaos(chaosOpts(1), faults.Config{Seed: 1}, []float64{2}, nil); err == nil {
		t.Fatal("rate 2 accepted")
	}
	if _, err := RunChaos(chaosOpts(1), faults.Config{Seed: 1, Classes: []faults.Class{faults.Class(99)}}, nil, nil); err == nil {
		t.Fatal("class 99 accepted")
	}
	bad := chaosOpts(1)
	bad.Kernels = []string{"nope"}
	if _, err := RunChaos(bad, faults.Config{Seed: 1}, nil, nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

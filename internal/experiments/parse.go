package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/omp"
)

// Shared parsers for the execution-configuration vocabulary. The slipsim
// CLI and the slipd HTTP API both accept the same strings, and both must
// keep accepting the same strings, so the switch statements live here
// once instead of once per front end.

// ParseMode resolves an execution-mode name (case-insensitive).
func ParseMode(s string) (core.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "single":
		return core.ModeSingle, nil
	case "double":
		return core.ModeDouble, nil
	case "slipstream":
		return core.ModeSlipstream, nil
	}
	return 0, fmt.Errorf("unknown mode %q (valid: single, double, slipstream)", s)
}

// ParseSync resolves an A–R synchronization name plus initial token count
// into a slipstream configuration (case-insensitive; tokens are ignored
// for NONE).
func ParseSync(s string, tokens int) (core.Config, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "GLOBAL_SYNC":
		return core.Config{Type: core.GlobalSync, Tokens: tokens}, nil
	case "LOCAL_SYNC":
		return core.Config{Type: core.LocalSync, Tokens: tokens}, nil
	case "NONE":
		return core.Config{Type: core.NoneSync}, nil
	}
	return core.Config{}, fmt.Errorf("unknown sync %q (valid: GLOBAL_SYNC, LOCAL_SYNC, NONE)", s)
}

// ParseSched resolves a loop-schedule name (case-insensitive).
func ParseSched(s string) (omp.Schedule, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "static":
		return omp.Static, nil
	case "dynamic":
		return omp.Dynamic, nil
	case "guided":
		return omp.Guided, nil
	}
	return 0, fmt.Errorf("unknown schedule %q (valid: static, dynamic, guided)", s)
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// recordedSleeps stubs the client's sleep so tests assert the backoff
// policy without real waiting.
func recordedSleeps(c *Client) *[]time.Duration {
	var mu sync.Mutex
	sleeps := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*sleeps = append(*sleeps, d)
		mu.Unlock()
		return ctx.Err()
	}
	return sleeps
}

func jobJSON(id, state string) string {
	return fmt.Sprintf(`{"id":%q,"state":%q,"key":"aabbccdd00112233","attempts":1}`, id, state)
}

func TestSubmitHonorsRetryAfterOn503(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"job queue is full"}`)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"job":%s}`, jobJSON("job-1", "queued"))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	sleeps := recordedSleeps(c)
	sr, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sr.Job.ID != "job-1" || calls != 3 {
		t.Fatalf("job %q after %d calls", sr.Job.ID, calls)
	}
	if len(*sleeps) != 2 || (*sleeps)[0] != 7*time.Second || (*sleeps)[1] != 7*time.Second {
		t.Fatalf("sleeps = %v, want two 7s waits from Retry-After", *sleeps)
	}
}

func TestSubmitBacksOffExponentiallyOn500(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 3, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second})
	sleeps := recordedSleeps(c)
	_, err := c.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 retries") {
		t.Fatalf("err = %v, want exhaustion", err)
	}
	if len(*sleeps) != 3 {
		t.Fatalf("%d sleeps, want 3", len(*sleeps))
	}
	// Jitter is ±50%, so each delay sits in [base<<i / 2, base<<i * 1.5]
	// and the envelope grows monotonically.
	for i, d := range *sleeps {
		lo := (100 * time.Millisecond << i) / 2
		hi := 100 * time.Millisecond << i * 3 / 2
		if d < lo || d > hi {
			t.Fatalf("sleep[%d] = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestSubmit400IsPermanent(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown kind \"nope\""}`)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	recordedSleeps(c)
	_, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"nope"}`))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want the server's message", err)
	}
	if calls != 1 {
		t.Fatalf("400 was retried (%d calls)", calls)
	}
}

func TestSubmitRetriesTransportErrors(t *testing.T) {
	// A listener that was closed: every dial fails, every failure retries.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c := New(Config{BaseURL: url, MaxRetries: 2})
	sleeps := recordedSleeps(c)
	_, err := c.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 retries") {
		t.Fatalf("err = %v", err)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("%d sleeps, want 2", len(*sleeps))
	}
}

func TestRunResumesByKeyAfterRestart(t *testing.T) {
	// Script a restart: the submitted job id 404s ever after (the old
	// process died with the submission record), but the result bytes
	// are on disk under the cache key.
	var submits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/jobs":
			submits++
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"job":%s}`, jobJSON("job-1", "queued"))
		case r.URL.Path == "/jobs/job-1":
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		case r.URL.Path == "/results/aabbccdd00112233":
			fmt.Fprint(w, "the table\n")
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	recordedSleeps(c)
	b, err := c.Run(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(b) != "the table\n" {
		t.Fatalf("Run = %q", b)
	}
	if submits != 1 {
		t.Fatalf("%d submissions, want 1 — the key resume must not resubmit", submits)
	}
}

func TestRunResubmitsWhenKeyHasNoBytes(t *testing.T) {
	// Restart lost both the job and (no result yet) the bytes: Run must
	// resubmit the spec and follow the new job to completion.
	var submits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/jobs":
			submits++
			id := fmt.Sprintf("job-%d", submits)
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"job":%s}`, jobJSON(id, "queued"))
		case r.URL.Path == "/jobs/job-1":
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		case r.URL.Path == "/jobs/job-2":
			fmt.Fprint(w, jobJSON("job-2", "done"))
		case r.URL.Path == "/jobs/job-2/result":
			fmt.Fprint(w, "rerun table\n")
		case strings.HasPrefix(r.URL.Path, "/results/"):
			http.Error(w, `{"error":"no result"}`, http.StatusNotFound)
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	recordedSleeps(c)
	b, err := c.Run(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(b) != "rerun table\n" || submits != 2 {
		t.Fatalf("Run = %q after %d submissions, want rerun after resubmit", b, submits)
	}
}

func TestRunReportsFailedJobs(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"job":%s}`, jobJSON("job-1", "queued"))
			return
		}
		fmt.Fprint(w, `{"id":"job-1","state":"failed","key":"aabbccdd00112233","error":"panic: kaboom"}`)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	recordedSleeps(c)
	_, err := c.Run(context.Background(), json.RawMessage(`{}`))
	if !errors.Is(err, ErrJobFailed) || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want ErrJobFailed with the server message", err)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, jobJSON("job-1", "running")) // never terminal
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, PollInterval: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Wait(ctx, "job-1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

// TestRunAgainstRealServer drives the full client stack against the real
// slipd core: submit, poll, fetch, and the by-key endpoint.
func TestRunAgainstRealServer(t *testing.T) {
	s := server.New(server.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, PollInterval: 10 * time.Millisecond})
	b, err := c.Run(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG","nodes":4}`))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(string(b), "CG") || !strings.Contains(string(b), "cycles:") {
		t.Fatalf("unexpected result:\n%s", b)
	}

	// Same spec again: cached, and the key is directly fetchable.
	sr, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG","nodes":4}`))
	if err != nil || !sr.Cached {
		t.Fatalf("resubmit = %+v, %v, want cached", sr, err)
	}
	byKey, ok, err := c.ResultByKey(context.Background(), sr.Job.Key)
	if err != nil || !ok || string(byKey) != string(b) {
		t.Fatalf("ResultByKey = ok=%v err=%v", ok, err)
	}
}

package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBackoffDeterministicWithInjectedJitter pins the exact retry
// schedule: with Jitter returning 0.5 the ±50% jitter factor is exactly
// 1.0, so the delays are the pure exponential series.
func TestBackoffDeterministicWithInjectedJitter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var mu sync.Mutex
	var sleeps []time.Duration
	c := New(Config{
		BaseURL:     ts.URL,
		MaxRetries:  3,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
		Jitter:      func() float64 { return 0.5 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			return ctx.Err()
		},
	})
	if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err == nil {
		t.Fatal("Submit against a 500 server succeeded")
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep[%d] = %s, want %s (schedule must be deterministic under injected jitter)", i, sleeps[i], want[i])
		}
	}
}

// TestDefaultSleepHonorsCancelledContext is the regression guard for the
// backoff bugfix: once the caller has cancelled, the default sleep must
// return immediately — never serve even one jittered tick.
func TestDefaultSleepHonorsCancelledContext(t *testing.T) {
	c := New(Config{BaseURL: "http://127.0.0.1:1"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	err := c.sleep(ctx, time.Hour)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled sleep took %s, want immediate return", elapsed)
	}
	if err != context.Canceled {
		t.Fatalf("cancelled sleep returned %v, want context.Canceled", err)
	}
}

// TestRetryStopsImmediatelyOnCancel cancels mid-retry-loop and asserts
// the client neither sleeps again nor issues another request.
func TestRetryStopsImmediatelyOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		cancel() // the caller gives up while the server is failing
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var mu sync.Mutex
	var slept []time.Duration
	c := New(Config{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		},
	})
	if _, err := c.Submit(ctx, json.RawMessage(`{}`)); err == nil {
		t.Fatal("Submit succeeded after cancellation")
	}
	if calls != 1 {
		t.Fatalf("%d requests after cancellation, want exactly 1", calls)
	}
	if len(slept) != 0 {
		t.Fatalf("client slept %v after cancellation, want none", slept)
	}
}

// TestEndpointFailover points the client at a dead coordinator first: a
// transport failure rotates to the live replica and the request lands.
func TestEndpointFailover(t *testing.T) {
	// A listener we open and immediately close: a guaranteed-dead address.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + l.Addr().String()
	l.Close()

	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, jobJSON("job-1", "done"))
	}))
	defer live.Close()

	c := New(Config{
		Endpoints: []string{deadAddr, live.URL},
		Sleep:     func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	j, err := c.Job(context.Background(), "job-1")
	if err != nil {
		t.Fatalf("Job with one dead endpoint: %v", err)
	}
	if j.ID != "job-1" || j.State != "done" {
		t.Fatalf("job = %+v", j)
	}
	// The rotation sticks: the next request goes straight to the live
	// replica with no failed attempt first.
	if c.endpoint() != strings.TrimRight(live.URL, "/") {
		t.Fatalf("current endpoint = %s, want the live replica", c.endpoint())
	}
}

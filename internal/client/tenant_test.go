package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitRetries429WithRetryAfter: a tenant-limit 429 is a transient
// refusal — the client waits out the server's Retry-After and resubmits
// instead of failing or rotating away from a healthy endpoint.
func TestSubmitRetries429WithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-API-Key"); got != "sk-test" {
			t.Errorf("X-API-Key = %q, want sk-test", got)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"tenant over rate limit"}`)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"job":%s}`, jobJSON("job-9", "queued"))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, APIKey: "sk-test"})
	sleeps := recordedSleeps(c)
	sr, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sr.Job.ID != "job-9" || calls.Load() != 3 {
		t.Fatalf("job %q after %d calls", sr.Job.ID, calls.Load())
	}
	if len(*sleeps) != 2 || (*sleeps)[0] != 3*time.Second || (*sleeps)[1] != 3*time.Second {
		t.Fatalf("sleeps = %v, want two 3s waits from Retry-After", *sleeps)
	}
}

// TestSubmit429DoesNotRotateEndpoints: admission refusals are the
// caller's problem, not the endpoint's — the client must keep talking
// to the same replica rather than spreading the flood fleet-wide or
// tripping its breaker.
func TestSubmit429DoesNotRotateEndpoints(t *testing.T) {
	var aCalls, bCalls atomic.Int64
	handler := func(calls *atomic.Int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 3 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"tenant backlog full"}`)
				return
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"job":%s}`, jobJSON("job-1", "queued"))
		}
	}
	a := httptest.NewServer(handler(&aCalls))
	defer a.Close()
	b := httptest.NewServer(handler(&bCalls))
	defer b.Close()

	// BreakerFailures 2 would open the endpoint if 429s counted as
	// endpoint failures.
	c := New(Config{Endpoints: []string{a.URL, b.URL}, BreakerFailures: 2})
	recordedSleeps(c)
	if _, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if aCalls.Load() != 4 || bCalls.Load() != 0 {
		t.Fatalf("calls a=%d b=%d; 429s must not rotate away from the first endpoint", aCalls.Load(), bCalls.Load())
	}
}

// TestSubmit429GivesUpAfterMaxRetries: a tenant limited past the retry
// horizon surfaces the 429 error instead of looping forever.
func TestSubmit429GivesUpAfterMaxRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"tenant over rate limit"}`)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 2})
	recordedSleeps(c)
	_, err := c.Submit(context.Background(), json.RawMessage(`{"kind":"run","kernel":"CG"}`))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want surfaced 429", err)
	}
}

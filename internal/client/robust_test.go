package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Two clients with the same Seed must produce the same jittered backoff
// schedule; a different seed must diverge somewhere.
func TestSeededJitterDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	schedule := func(seed uint64) []time.Duration {
		c := New(Config{BaseURL: ts.URL, Seed: seed, MaxRetries: 5, BaseBackoff: 10 * time.Millisecond})
		sleeps := recordedSleeps(c)
		if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err == nil {
			t.Fatal("always-500 server produced a success")
		}
		return *sleeps
	}
	a, b := schedule(11), schedule(11)
	if len(a) != 5 {
		t.Fatalf("%d sleeps, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep[%d] differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical schedules")
	}
}

// A dry retry budget turns calls against a dead server into fail-fast:
// one round trip, no backoff walk.
func TestRetryBudgetFailsFast(t *testing.T) {
	var calls uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddUint64(&calls, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, RetryBudget: 2, MaxRetries: 5, Jitter: func() float64 { return 0.5 }})
	sleeps := recordedSleeps(c)

	_, err := c.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("first call err = %v, want budget exhaustion", err)
	}
	if got := atomic.LoadUint64(&calls); got != 3 { // initial try + 2 budgeted retries
		t.Fatalf("first call made %d round trips, want 3", got)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("first call slept %d times, want 2", len(*sleeps))
	}

	_, err = c.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("second call err = %v, want budget exhaustion", err)
	}
	if got := atomic.LoadUint64(&calls); got != 4 { // exactly one more round trip, zero retries
		t.Fatalf("second call made %d extra round trips, want 1", got-3)
	}
	if len(*sleeps) != 2 {
		t.Fatal("second call slept; an empty budget must fail fast")
	}
}

// Successful calls refund half a token each, re-earning retry headroom.
func TestRetryBudgetRefundsOnSuccess(t *testing.T) {
	var fail atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"job":` + jobJSON("job-1", "queued") + `}`))
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, RetryBudget: 1, MaxRetries: 5, Jitter: func() float64 { return 0.5 }})
	recordedSleeps(c)

	fail.Store(true)
	if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err == nil {
		t.Fatal("want failure with budget 1")
	}
	fail.Store(false)
	for i := 0; i < 2; i++ { // two successes refund a whole token
		if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err != nil {
			t.Fatalf("success %d: %v", i, err)
		}
	}
	fail.Store(true)
	_, err := c.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want exhaustion after spending the refunded token", err)
	}
	c.mu.Lock()
	tokens := c.tokens
	c.mu.Unlock()
	if tokens != 0 {
		t.Fatalf("tokens = %v, want the refunded token spent back to 0", tokens)
	}
}

// A backoff that cannot finish before the context deadline fails fast
// with the underlying error instead of sleeping into a timeout.
func TestBackoffStopsAtDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxRetries: 5, BaseBackoff: 10 * time.Second, Jitter: func() float64 { return 0.5 }})
	sleeps := recordedSleeps(c)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := c.Submit(ctx, json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "would outlive the deadline") {
		t.Fatalf("err = %v, want deadline fail-fast", err)
	}
	if !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("err = %v, want the real server error preserved", err)
	}
	if len(*sleeps) != 0 {
		t.Fatalf("slept %v before failing; must not sleep at all", *sleeps)
	}
}

// After an endpoint's breaker opens, rotation routes around it until the
// cooldown passes.
func TestRotationSkipsOpenEndpoint(t *testing.T) {
	var deadHits uint64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddUint64(&deadHits, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var liveFails atomic.Bool
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if liveFails.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"job":` + jobJSON("job-1", "queued") + `}`))
	}))
	defer live.Close()

	now := time.Now()
	c := New(Config{
		Endpoints:       []string{dead.URL, live.URL},
		MaxRetries:      3,
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
		Jitter:          func() float64 { return 0.5 },
		Now:             func() time.Time { return now },
	})
	recordedSleeps(c)

	for i := 0; i < 5; i++ {
		if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := atomic.LoadUint64(&deadHits); got != 1 {
		t.Fatalf("dead endpoint hit %d times, want 1 (breaker must hold rotation off it)", got)
	}

	// Cooldown elapsed and the live endpoint starts failing: rotation is
	// allowed back onto the cooled endpoint instead of pinning to the
	// newly-broken one.
	now = now.Add(2 * time.Minute)
	liveFails.Store(true)
	if _, err := c.Submit(context.Background(), json.RawMessage(`{}`)); err == nil {
		t.Fatal("both endpoints failing should fail the call")
	}
	if got := atomic.LoadUint64(&deadHits); got < 2 {
		t.Fatalf("dead endpoint hit %d times after cooldown, want ≥2 (must be probed again)", got)
	}
}

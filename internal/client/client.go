// Package client is a Go client for the slipd HTTP API with the retry
// discipline a durable server deserves: exponential backoff with jitter
// on transport errors and 5xx responses, Retry-After honored on 503
// shed/drain responses and on tenant-limit 429 refusals (which retry
// without penalizing the endpoint — the refusal is the caller's, not
// the server's), context-aware polling, endpoint failover across
// a list of coordinator replicas, and resume-by-cache-key — a client
// that reconnects after a server (or coordinator) restart picks its
// result up from the content-addressed store instead of re-running the
// job.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults/splitmix"
)

// ErrJobNotFound marks a 404 for a job id — after a server restart, ids
// of jobs whose submission record was lost are gone while their results
// (if any) survive under the cache key.
var ErrJobNotFound = errors.New("job not found")

// ErrJobFailed wraps a terminal failure reported by the server.
var ErrJobFailed = errors.New("job failed")

// Config tunes a Client. Zero values take the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Endpoints lists coordinator base URLs for client-side failover; it
	// supersedes BaseURL when non-empty (BaseURL is shorthand for a
	// single-entry list). After a transport error or 5xx the client
	// rotates to the next endpoint before retrying, so a fleet fronted
	// by more than one coordinator keeps answering while one is down.
	Endpoints []string
	// APIKey identifies the caller's tenant to the server's admission
	// layer; it is sent as X-API-Key on every request. Empty means the
	// shared default tenant.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds transient-failure retries per request (default 6).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 100ms); it doubles
	// per retry up to MaxBackoff (default 5s), jittered ±50%.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PollInterval spaces job-state polls (default 200ms).
	PollInterval time.Duration
	// Jitter returns the backoff jitter factor's random component in
	// [0, 1); the default draws from a splitmix64 stream seeded by Seed.
	// Tests inject a constant to make retry schedules deterministic.
	Jitter func() float64
	// Seed seeds the default jitter stream. Zero derives a seed from the
	// clock (the historical behavior); any other value makes the client's
	// whole retry schedule reproducible.
	Seed uint64
	// RetryBudget is a token pool shared by every call through this
	// client (default 10, rounded down to whole tokens when spending):
	// each retry spends one token and each eventual success refunds half
	// a token, up to the starting pool. When the pool is empty the client
	// fails fast instead of walking the full backoff schedule — a
	// persistently dead server costs one round trip per call, not
	// MaxRetries of them. Negative disables the budget.
	RetryBudget float64
	// BreakerFailures consecutive failures against one endpoint open its
	// breaker (default 3): rotation skips it for BreakerCooldown
	// (default 5s) so retries concentrate on replicas that answer. With
	// every endpoint open, rotation falls back to plain round-robin.
	BreakerFailures int
	BreakerCooldown time.Duration
	// Now is the endpoint breaker's clock (default time.Now).
	Now func() time.Time
	// Sleep is the delay primitive (default: a timer that aborts the
	// moment ctx is cancelled). Tests inject a recorder to assert the
	// backoff policy without real waiting.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if len(c.Endpoints) == 0 {
		c.Endpoints = []string{c.BaseURL}
	}
	for i, ep := range c.Endpoints {
		c.Endpoints[i] = strings.TrimRight(ep, "/")
	}
	if len(c.Endpoints) > 0 {
		c.BaseURL = c.Endpoints[0]
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 10
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// endpointBreaker is one endpoint's failure tracking: after
// BreakerFailures consecutive failures rotation skips the endpoint
// until openUntil passes.
type endpointBreaker struct {
	fails     int
	openUntil time.Time
}

// Client talks to a slipd server (or a list of coordinator replicas).
// Safe for concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	str    *splitmix.Stream
	cur    int // index into cfg.Endpoints currently in use
	eps    []endpointBreaker
	tokens float64 // remaining retry budget

	// sleep is the delay primitive; tests stub it to record and skip
	// real waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client for the server at cfg.BaseURL (or the coordinator
// list in cfg.Endpoints).
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	c := &Client{
		cfg:    cfg,
		str:    splitmix.NewStream(seed),
		eps:    make([]endpointBreaker, len(cfg.Endpoints)),
		tokens: cfg.RetryBudget,
	}
	c.sleep = c.cfg.Sleep
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			// Checked first so a backoff never sleeps — not even one
			// jittered tick — once the caller has cancelled.
			if err := ctx.Err(); err != nil {
				return err
			}
			if d <= 0 {
				return nil
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// endpoint returns the base URL currently in use.
func (c *Client) endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Endpoints[c.cur]
}

// pick selects the endpoint for the next attempt: the current one if
// its breaker isn't open, else the nearest endpoint in rotation order
// whose breaker has cooled off. With every breaker open it returns the
// current endpoint anyway — a doomed attempt beats no attempt, and its
// outcome is what eventually closes a breaker again.
func (c *Client) pick() (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	n := len(c.cfg.Endpoints)
	for off := 0; off < n; off++ {
		i := (c.cur + off) % n
		if now.Before(c.eps[i].openUntil) {
			continue
		}
		c.cur = i
		return c.cfg.Endpoints[i], i
	}
	return c.cfg.Endpoints[c.cur], c.cur
}

// observe feeds one attempt's outcome into the endpoint's breaker.
func (c *Client) observe(idx int, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &c.eps[idx]
	if !failed {
		e.fails = 0
		e.openUntil = time.Time{}
		return
	}
	e.fails++
	if e.fails >= c.cfg.BreakerFailures {
		e.openUntil = c.cfg.Now().Add(c.cfg.BreakerCooldown)
		e.fails = 0
	}
}

// rotate advances to the next endpoint after a failure (no-op with a
// single endpoint), preferring endpoints whose breaker isn't open.
func (c *Client) rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.cfg.Endpoints)
	if n <= 1 {
		return
	}
	c.cur = (c.cur + 1) % n
	now := c.cfg.Now()
	for off := 0; off < n; off++ {
		i := (c.cur + off) % n
		if now.Before(c.eps[i].openUntil) {
			continue
		}
		c.cur = i
		return
	}
	// Every breaker open: keep the plain round-robin advance.
}

// spendToken takes one retry token; false means the budget is dry and
// the caller should fail fast.
func (c *Client) spendToken() bool {
	if c.cfg.RetryBudget < 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// refundToken returns half a token on a successful call, capped at the
// starting pool, so a healthy server steadily re-earns retry headroom.
func (c *Client) refundToken() {
	if c.cfg.RetryBudget < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tokens += 0.5
	if c.tokens > c.cfg.RetryBudget {
		c.tokens = c.cfg.RetryBudget
	}
}

// Job is the client-side view of a job (the subset of the server's
// JobView the retry logic needs; unknown fields are ignored).
type Job struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Key      string          `json:"key"`
	Cached   bool            `json:"cached"`
	Attempts int             `json:"attempts"`
	Restored bool            `json:"restored"`
	Error    string          `json:"error"`
	Spec     json.RawMessage `json:"spec"`
}

// Terminal reports whether the job has settled.
func (j *Job) Terminal() bool { return j.State == "done" || j.State == "failed" }

// SubmitResult is the POST /jobs envelope.
type SubmitResult struct {
	Job    Job  `json:"job"`
	Dedup  bool `json:"dedup"`
	Cached bool `json:"cached"`
}

// Submit posts a job spec (anything JSON-marshalable; json.RawMessage
// and []byte pass through verbatim) and returns the server's envelope.
// Transient failures — connection errors, 5xx, queue-full 503 and
// tenant-limit 429 with Retry-After — are retried; other 4xx
// validation errors are permanent.
func (c *Client) Submit(ctx context.Context, spec any) (*SubmitResult, error) {
	body, err := specBody(spec)
	if err != nil {
		return nil, err
	}
	data, status, err := c.doRetry(ctx, http.MethodPost, "/jobs", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK && status != http.StatusCreated {
		return nil, apiError("submit", status, data)
	}
	var sr SubmitResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("decode submit response: %w", err)
	}
	return &sr, nil
}

// Job fetches one job's current view. Returns ErrJobNotFound on 404.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	data, status, err := c.doRetry(ctx, http.MethodGet, "/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	if status != http.StatusOK {
		return nil, apiError("get job", status, data)
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("decode job: %w", err)
	}
	return &j, nil
}

// Result fetches a done job's rendered bytes. ErrJobNotFound on 404;
// a 409 (job pending or failed) is a plain error.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	data, status, err := c.doRetry(ctx, http.MethodGet, "/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	if status != http.StatusOK {
		return nil, apiError("get result", status, data)
	}
	return data, nil
}

// ResultByKey fetches a result straight from the server's
// content-addressed store. The bool reports presence (404 is not an
// error — the key simply has no bytes yet). With multiple endpoints a
// 404 fans out across the rest of the list before giving up: after a
// coordinator failover the bytes may live only on the replica that
// observed the claim settle, and content addressing makes any replica's
// copy equally authoritative.
func (c *Client) ResultByKey(ctx context.Context, key string) ([]byte, bool, error) {
	for i := 0; i < len(c.cfg.Endpoints); i++ {
		data, status, err := c.doRetry(ctx, http.MethodGet, "/results/"+key, nil)
		if err != nil {
			return nil, false, err
		}
		switch status {
		case http.StatusOK:
			return data, true, nil
		case http.StatusNotFound:
			c.rotate() // try the next replica; no-op with one endpoint
		default:
			return nil, false, apiError("get result by key", status, data)
		}
	}
	return nil, false, nil
}

// Cancel DELETEs a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	data, status, err := c.doRetry(ctx, http.MethodDelete, "/jobs/"+id, nil)
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	if status != http.StatusOK {
		return apiError("cancel", status, data)
	}
	return nil
}

// Wait polls until the job settles, honoring ctx. ErrJobNotFound
// surfaces immediately so callers can resume by key.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
			return nil, err
		}
	}
}

// Run submits a spec and returns its result bytes, surviving server
// restarts along the way: if the job id vanishes (the submission record
// died with the old process), the result is first sought under the
// content-addressed cache key — same spec, same key, same bytes — and
// only if the store has nothing is the spec resubmitted.
func (c *Client) Run(ctx context.Context, spec any) ([]byte, error) {
	sr, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	id, key := sr.Job.ID, sr.Job.Key
	for {
		j, err := c.Wait(ctx, id)
		if errors.Is(err, ErrJobNotFound) {
			id, err = c.resume(ctx, spec, key)
			if err != nil {
				return nil, err
			}
			if id == "" { // resumed straight to bytes
				b, _, err := c.ResultByKey(ctx, key)
				return b, err
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if j.State == "failed" {
			return nil, fmt.Errorf("%w: %s", ErrJobFailed, j.Error)
		}
		b, err := c.Result(ctx, id)
		if errors.Is(err, ErrJobNotFound) {
			// Restarted between the poll and the fetch; same resume path.
			if rb, ok, kerr := c.ResultByKey(ctx, key); kerr == nil && ok {
				return rb, nil
			}
			id, err = c.resume(ctx, spec, key)
			if err != nil {
				return nil, err
			}
			continue
		}
		return b, err
	}
}

// resume recovers after a lost job id: prefer the by-key result (empty
// id return means the bytes are already there), else resubmit.
func (c *Client) resume(ctx context.Context, spec any, key string) (id string, err error) {
	if _, ok, err := c.ResultByKey(ctx, key); err == nil && ok {
		return "", nil
	}
	sr, err := c.Submit(ctx, spec)
	if err != nil {
		return "", fmt.Errorf("resubmit after server restart: %w", err)
	}
	return sr.Job.ID, nil
}

// Do performs one API request under the client's full retry and
// failover policy and returns the response body and status. It is the
// building block the typed methods share, exported for callers (the
// cluster dispatcher) that speak endpoints this package has no verb for.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	return c.doRetry(ctx, method, path, body)
}

// doRetry performs one API request with the transient-failure policy:
// transport errors, 5xx, 503-with-Retry-After, and tenant-limit 429s
// are retried under exponential backoff with jitter; everything else
// returns as-is. Each failed attempt feeds the endpoint's breaker and
// rotates to the next configured endpoint — except 429, which says the
// *caller* is over its admission limits while the endpoint is
// perfectly healthy, so the client honors Retry-After (or backs off)
// without penalizing or abandoning the endpoint. Retries draw on the
// client-wide token budget — when it is dry the call fails fast — and
// a backoff that cannot finish before the context deadline fails fast
// too, surfacing the real error instead of a context timeout from
// inside a pointless sleep.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		ep, idx := c.pick()
		data, status, ra, err := c.do(ctx, ep, method, path, body)
		delay := time.Duration(-1)
		limited := false
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusTooManyRequests:
			lastErr = apiError(method+" "+path, status, data)
			limited = true
			if ra >= 0 {
				// The server said when this tenant's bucket refills.
				delay = ra
			}
		case status >= 500:
			lastErr = apiError(method+" "+path, status, data)
			if status == http.StatusServiceUnavailable && ra >= 0 {
				// The server said when to come back; believe it.
				delay = ra
			}
		default:
			c.observe(idx, false)
			c.refundToken()
			return data, status, nil
		}
		if limited {
			c.observe(idx, false) // the endpoint answered; the refusal is ours
		} else {
			c.observe(idx, true)
			c.rotate()
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, 0, fmt.Errorf("giving up after %d retries: %w", c.cfg.MaxRetries, lastErr)
		}
		if !c.spendToken() {
			return nil, 0, fmt.Errorf("retry budget exhausted: %w", lastErr)
		}
		if delay < 0 {
			delay = c.backoff(attempt)
		}
		if deadline, ok := ctx.Deadline(); ok && delay >= deadline.Sub(c.cfg.Now()) {
			return nil, 0, fmt.Errorf("next retry (%s backoff) would outlive the deadline: %w", delay, lastErr)
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, 0, err
		}
	}
}

// do performs one HTTP round trip, draining the body so connections
// reuse cleanly. ra is the parsed Retry-After header in seconds (-1 when
// absent or unparsable).
func (c *Client) do(ctx context.Context, ep, method, path string, body []byte) (data []byte, status int, ra time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ep+path, rd)
	if err != nil {
		return nil, 0, -1, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.cfg.APIKey != "" {
		req.Header.Set("X-API-Key", c.cfg.APIKey)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, 0, -1, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, -1, err
	}
	ra = time.Duration(-1)
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, perr := strconv.Atoi(strings.TrimSpace(h)); perr == nil && secs >= 0 {
			ra = time.Duration(secs) * time.Second
		}
	}
	return data, resp.StatusCode, ra, nil
}

// backoff computes the jittered exponential delay for a retry attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	var r float64
	if c.cfg.Jitter != nil {
		r = c.cfg.Jitter()
	} else {
		c.mu.Lock()
		r = splitmix.Float64(c.str.Next(0, 0))
		c.mu.Unlock()
	}
	return time.Duration(float64(d) * (0.5 + r)) // ±50% jitter
}

func specBody(spec any) ([]byte, error) {
	switch v := spec.(type) {
	case json.RawMessage:
		return v, nil
	case []byte:
		return v, nil
	case string:
		return []byte(v), nil
	default:
		return json.Marshal(v)
	}
}

func apiError(op string, status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := string(data)
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return fmt.Errorf("%s: HTTP %d: %s", op, status, strings.TrimSpace(msg))
}

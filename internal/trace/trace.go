// Package trace provides a bounded ring buffer of simulation events for
// debugging and analysis. Tracing is off by default; when enabled the
// machine records memory-system events (accesses, fills, invalidations,
// writebacks) that can be dumped as text after a run.
package trace

import (
	"fmt"
	"io"
)

// Kind labels a traced event.
type Kind uint8

// Event kinds.
const (
	Load Kind = iota
	Store
	Prefetch
	Fill
	Inval
	Writeback
	numKinds
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case Fill:
		return "fill"
	case Inval:
		return "inval"
	case Writeback:
		return "wb"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   uint64 // simulation time (cycles)
	Proc int    // acting processor (or node for node-level events)
	Kind Kind
	Line uint64 // cache line number
	Arg  int64  // kind-specific: latency for accesses, home for fills
}

// Buffer is a fixed-capacity event ring. The zero value is a disabled
// buffer that drops all events.
type Buffer struct {
	ring  []Event
	next  int
	total uint64
}

// New returns a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		return &Buffer{}
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being retained.
func (b *Buffer) Enabled() bool { return b != nil && cap(b.ring) > 0 }

// Add records an event (dropping the oldest if full).
func (b *Buffer) Add(e Event) {
	if !b.Enabled() {
		return
	}
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % cap(b.ring)
}

// Total returns the number of events ever recorded (including dropped).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if !b.Enabled() {
		return nil
	}
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) == cap(b.ring) {
		out = append(out, b.ring[b.next:]...)
		out = append(out, b.ring[:b.next]...)
	} else {
		out = append(out, b.ring...)
	}
	return out
}

// Dump writes the retained events as text, one per line.
func (b *Buffer) Dump(w io.Writer) error {
	evs := b.Events()
	if _, err := fmt.Fprintf(w, "trace: %d events retained of %d recorded\n", len(evs), b.Total()); err != nil {
		return err
	}
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%12d p%-3d %-8s line=%#08x arg=%d\n", e.At, e.Proc, e.Kind, e.Line, e.Arg); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the retained events of the given kind, oldest first.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

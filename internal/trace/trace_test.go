package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueDisabled(t *testing.T) {
	var b Buffer
	if b.Enabled() {
		t.Fatal("zero buffer enabled")
	}
	b.Add(Event{At: 1})
	if b.Total() != 0 || len(b.Events()) != 0 {
		t.Fatal("disabled buffer retained events")
	}
}

func TestNilSafe(t *testing.T) {
	var b *Buffer
	if b.Enabled() || b.Total() != 0 {
		t.Fatal("nil buffer not safe")
	}
}

func TestNewZeroCapacityDisabled(t *testing.T) {
	if New(0).Enabled() || New(-5).Enabled() {
		t.Fatal("non-positive capacity enabled tracing")
	}
}

func TestAddAndOrder(t *testing.T) {
	b := New(10)
	for i := 0; i < 5; i++ {
		b.Add(Event{At: uint64(i), Kind: Load})
	}
	evs := b.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.At != uint64(i) {
			t.Fatalf("order broken: %v", evs)
		}
	}
}

func TestRingWrap(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{At: uint64(i)})
	}
	evs := b.Events()
	if len(evs) != 4 || b.Total() != 10 {
		t.Fatalf("retained %d, total %d", len(evs), b.Total())
	}
	for i, e := range evs {
		if e.At != uint64(6+i) {
			t.Fatalf("wrap kept wrong events: %v", evs)
		}
	}
}

func TestFilter(t *testing.T) {
	b := New(8)
	b.Add(Event{Kind: Load})
	b.Add(Event{Kind: Fill})
	b.Add(Event{Kind: Load})
	if got := len(b.Filter(Load)); got != 2 {
		t.Fatalf("filter loads = %d", got)
	}
	if got := len(b.Filter(Writeback)); got != 0 {
		t.Fatalf("filter wb = %d", got)
	}
}

func TestDump(t *testing.T) {
	b := New(4)
	b.Add(Event{At: 42, Proc: 3, Kind: Inval, Line: 0x10})
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"42", "p3", "inval", "1 events retained"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	names := []string{"load", "store", "prefetch", "fill", "inval", "wb"}
	for i, want := range names {
		if Kind(i).String() != want {
			t.Fatalf("kind %d = %q", i, Kind(i))
		}
	}
}

// Property: for any capacity and event count, Events() returns
// min(count, capacity) events and they are the most recent ones in order.
func TestPropertyRingRetention(t *testing.T) {
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		n := int(nRaw % 200)
		b := New(capacity)
		for i := 0; i < n; i++ {
			b.Add(Event{At: uint64(i)})
		}
		evs := b.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.At != uint64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

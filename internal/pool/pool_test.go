package pool

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsNormalization(t *testing.T) {
	if got := Jobs(0); got != runtime.NumCPU() {
		t.Fatalf("Jobs(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(-3); got != runtime.NumCPU() {
		t.Fatalf("Jobs(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(5); got != 5 {
		t.Fatalf("Jobs(5) = %d", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		const n = 37
		counts := make([]int64, n)
		ForEach(jobs, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestForEachZeroN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n = 0")
	}
}

// TestForEachCtxCancelStopsDispatch cancels mid-loop and checks the three
// contract points: the call returns the context error, no new indices are
// dispatched after cancellation, and in-flight calls are awaited (no fn
// call is running once ForEachCtx returns).
func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 100
		var ran, active int64
		err := ForEachCtx(ctx, jobs, n, func(i int) {
			atomic.AddInt64(&active, 1)
			if atomic.AddInt64(&ran, 1) == 3 {
				cancel()
			}
			atomic.AddInt64(&active, -1)
		})
		if err != context.Canceled {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if got := atomic.LoadInt64(&active); got != 0 {
			t.Fatalf("jobs=%d: %d fn calls still active after return", jobs, got)
		}
		// Cancellation raced with at most `jobs` already-dispatched
		// indices, so everything after that window must be skipped.
		if got := atomic.LoadInt64(&ran); got >= n {
			t.Fatalf("jobs=%d: ran %d of %d indices despite cancellation", jobs, got, n)
		}
		cancel()
	}
}

// TestForEachCtxPreCancelled runs nothing when the context is already done.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForEachCtx(ctx, 4, 10, func(int) { ran = true }); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("fn ran under a pre-cancelled context")
	}
}

// TestForEachCtxCompletedIgnoresLateCancel: a loop that dispatched every
// index reports success even if the context dies afterwards.
func TestForEachCtxCompletedIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEachCtx(ctx, 2, 8, func(int) { atomic.AddInt64(&ran, 1) })
	cancel()
	if err != nil || ran != 8 {
		t.Fatalf("err = %v, ran = %d", err, ran)
	}
}

// TestForEachSlotIsolation is the contract the experiment runner relies
// on: concurrent workers writing only their own slots need no further
// synchronization. Run under -race this fails if ForEach ever lets two
// workers share a slot or returns before all workers finish.
func TestForEachSlotIsolation(t *testing.T) {
	const n = 64
	vals := make([]int, n)
	ForEach(8, n, func(i int) { vals[i] = i * i })
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsNormalization(t *testing.T) {
	if got := Jobs(0); got != runtime.NumCPU() {
		t.Fatalf("Jobs(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(-3); got != runtime.NumCPU() {
		t.Fatalf("Jobs(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(5); got != 5 {
		t.Fatalf("Jobs(5) = %d", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		const n = 37
		counts := make([]int64, n)
		ForEach(jobs, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestForEachZeroN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n = 0")
	}
}

// TestForEachSlotIsolation is the contract the experiment runner relies
// on: concurrent workers writing only their own slots need no further
// synchronization. Run under -race this fails if ForEach ever lets two
// workers share a slot or returns before all workers finish.
func TestForEachSlotIsolation(t *testing.T) {
	const n = 64
	vals := make([]int, n)
	ForEach(8, n, func(i int) { vals[i] = i * i })
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// Package pool provides the bounded worker pool that fans independent
// simulation runs out across host CPUs. Every experiment cell builds its
// own runtime and machine, so the only coordination a suite needs is
// "run these N independent functions on up to J workers and put each
// result back in its own slot" — which is exactly what ForEach does.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Jobs normalizes a job-count setting: zero or negative means one worker
// per host CPU, anything else is used as given.
func Jobs(jobs int) int {
	if jobs <= 0 {
		return runtime.NumCPU()
	}
	return jobs
}

// ForEach runs fn(i) for every index in [0, n) on up to jobs workers
// (after Jobs normalization) and returns once every call has finished.
// With one worker the calls run on the calling goroutine in index order,
// preserving strictly sequential behavior. fn must confine its writes to
// state owned by index i; completion order is unspecified with more than
// one worker, so callers that need deterministic output must collect into
// index-addressed slots rather than append in completion order.
func ForEach(jobs, n int, fn func(int)) {
	ForEachCtx(context.Background(), jobs, n, fn)
}

// ForEachCtx is ForEach with cancellable submission: once ctx is done, no
// new index is dispatched to a worker, in-flight fn calls are awaited, and
// the context's error is returned. fn calls that were never dispatched
// simply do not happen, so a caller that needs a value or error in every
// slot must treat "slot untouched and ForEachCtx returned non-nil" as
// cancelled (the experiments runner records ctx.Err() in those slots).
// A finished loop that dispatched every index returns nil even if ctx was
// cancelled after the last dispatch.
func ForEachCtx(ctx context.Context, jobs, n int, fn func(int)) error {
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	var err error
	for i := 0; i < n && err == nil; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return err
}

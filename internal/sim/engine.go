// Package sim provides a deterministic discrete-event simulation engine
// with coroutine-style execution contexts.
//
// The engine drives a set of contexts (simulated processors). Exactly one
// context runs at any instant: the engine pops the earliest event from its
// heap, transfers control to the owning context, and the context runs real
// Go code until it needs simulated time to pass, at which point it parks
// itself and control returns to the engine. Ties in event time are broken
// by event sequence number, so a given program produces an identical event
// order on every run. Because only one context executes at a time, code
// running inside contexts may freely share simulator data structures
// without locks.
//
// The event heap and context plumbing are allocation-free on the hot path:
// events are plain values in a concrete 4-ary heap (no container/heap
// interface boxing), and the goroutine + channel pair backing each context
// is pooled across engines, so repeated simulation runs reuse the same
// parked workers instead of spawning fresh ones.
package sim

import (
	"fmt"
	"sync"
)

// Time is a simulation timestamp, measured in processor clock cycles.
type Time = uint64

// event is a scheduled occurrence: either waking a parked context or
// running a callback at a given time.
type event struct {
	at  Time
	seq uint64
	ctx *Context
	fn  func()
}

// eventHeap is a 4-ary min-heap of events ordered by (at, seq). A concrete
// element type keeps Push/Pop free of interface{} boxing — with
// container/heap every scheduled event cost two heap allocations, which
// dominated the simulator's allocation profile. The wider fan-out also
// halves the tree depth versus a binary heap, trading cheap sibling
// comparisons for pointer-chasing sift steps.
type eventHeap struct {
	ev []event
}

// less orders events by time, breaking ties by insertion sequence so event
// order is identical on every run.
func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.less(i, p) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	root := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // drop fn/ctx references for the GC
	h.ev = h.ev[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			break
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
	return root
}

// initialHeapCap sizes the event slice so steady-state simulations (a few
// pending events per context) never grow it.
const initialHeapCap = 256

// Engine is a discrete-event simulator.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	contexts []*Context
	yield    chan struct{} // contexts signal the engine here when parking
	running  bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		events: eventHeap{ev: make([]event, 0, initialHeapCap)},
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues an event at absolute time at.
func (e *Engine) schedule(at Time, ctx *Context, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, ctx: ctx, fn: fn})
}

// At schedules fn to run at absolute simulation time at. fn runs in engine
// context and must not park.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, nil, fn) }

// Spawn creates a context that will begin executing fn at time start.
// Contexts must be spawned before Run (or from a running context or
// callback); fn receives the context for parking operations.
func (e *Engine) Spawn(name string, start Time, fn func(*Context)) *Context {
	w := getWorker()
	c := &Context{eng: e, name: name, run: w.run, fn: fn}
	w.c = c
	e.contexts = append(e.contexts, c)
	e.schedule(start, c, nil)
	return c
}

// Run executes events until the heap is empty. It returns an error if
// unfinished contexts remain when the heap drains (a deadlock: some context
// parked without a scheduled wake-up, which indicates a bug in the caller's
// synchronization code). On the deadlock path the engine tears the parked
// contexts down before returning, so their goroutines are reclaimed instead
// of leaking blocked on a dispatch that will never come.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events.ev) > 0 {
		ev := e.events.pop()
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		c := ev.ctx
		if c.finished {
			continue
		}
		c.run <- struct{}{}
		<-e.yield
	}
	for _, c := range e.contexts {
		if !c.finished {
			err := fmt.Errorf("sim: deadlock: context %q parked with no pending event at t=%d", c.name, e.now)
			e.teardown()
			return err
		}
	}
	return nil
}

// Close tears down any unfinished contexts, releasing their goroutines back
// to the worker pool. It is a no-op on an engine whose contexts all ran to
// completion; Run invokes it automatically when it detects a deadlock, so
// explicit calls are only needed when an engine is abandoned without being
// run (or after Run returned an unrelated error). Close must not be called
// while Run is executing.
func (e *Engine) Close() {
	if e.running {
		panic("sim: Close called on a running engine")
	}
	e.teardown()
}

// teardown aborts every unfinished context: each is dispatched one last
// time with the abort flag set, unwinds out of its call stack (via the
// abortPark panic recovered by its worker), and yields back finished.
func (e *Engine) teardown() {
	for _, c := range e.contexts {
		if c.finished {
			continue
		}
		c.aborted = true
		c.run <- struct{}{}
		<-e.yield
	}
}

// Finished reports whether every spawned context has completed.
func (e *Engine) Finished() bool {
	for _, c := range e.contexts {
		if !c.finished {
			return false
		}
	}
	return true
}

// ---- Context worker pool ----------------------------------------------------

// worker owns the goroutine and run channel a context executes on. Workers
// are pooled across engines: when a context finishes, its worker parks on
// the free list and the next Spawn (from any engine) reuses it, so the
// per-run cost of standing up a machine does not include goroutine and
// channel churn — and, because aborted contexts unwind back to their
// worker, even deadlocked runs return their goroutines to the pool.
type worker struct {
	run chan struct{}
	c   *Context // context currently bound to this worker
}

// workerPool is a bounded free list rather than a sync.Pool: a sync.Pool
// may drop entries at GC, which would strand each dropped worker's
// goroutine blocked on a run channel nobody holds. Overflow workers simply
// exit their goroutine.
var workerPool struct {
	sync.Mutex
	free []*worker
}

// maxPooledWorkers bounds the free list. Sized for the largest concurrent
// simulation fan-out (64 nodes × 2 procs × a worker-pool of runs).
const maxPooledWorkers = 1024

func getWorker() *worker {
	workerPool.Lock()
	if n := len(workerPool.free); n > 0 {
		w := workerPool.free[n-1]
		workerPool.free[n-1] = nil
		workerPool.free = workerPool.free[:n-1]
		workerPool.Unlock()
		return w
	}
	workerPool.Unlock()
	w := &worker{run: make(chan struct{})}
	go w.loop()
	return w
}

// abortPark is the panic value used to unwind an aborted context out of a
// park point; it never escapes the worker's recover.
type abortPark struct{}

// loop is the worker goroutine: receive a dispatch, run the bound context's
// body to completion (or unwind it on abort), yield, then return to the
// pool for the next Spawn.
func (w *worker) loop() {
	for {
		<-w.run
		c := w.c
		if !c.aborted {
			c.runBody()
		}
		c.finished = true
		c.eng.yield <- struct{}{}
		w.c = nil
		workerPool.Lock()
		if len(workerPool.free) >= maxPooledWorkers {
			workerPool.Unlock()
			return
		}
		workerPool.free = append(workerPool.free, w)
		workerPool.Unlock()
	}
}

// runBody executes the context function, absorbing the abort unwind.
func (c *Context) runBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortPark); !ok {
				panic(r)
			}
		}
	}()
	c.fn(c)
}

// Context is a simulated thread of execution managed by an Engine.
type Context struct {
	eng      *Engine
	name     string
	run      chan struct{} // the bound worker's dispatch channel
	fn       func(*Context)
	finished bool
	aborted  bool
}

// Name returns the context's debug name.
func (c *Context) Name() string { return c.name }

// Engine returns the owning engine.
func (c *Context) Engine() *Engine { return c.eng }

// Now returns the current simulation time.
func (c *Context) Now() Time { return c.eng.now }

// park suspends the context until the engine dispatches it again. If the
// engine is tearing down, the context unwinds instead of resuming.
func (c *Context) park() {
	c.eng.yield <- struct{}{}
	<-c.run
	if c.aborted {
		panic(abortPark{})
	}
}

// WaitUntil parks the context until absolute time at (no-op if at <= now).
func (c *Context) WaitUntil(at Time) {
	if at <= c.eng.now {
		return
	}
	c.eng.schedule(at, c, nil)
	c.park()
}

// Advance parks the context for d cycles of simulated time.
func (c *Context) Advance(d Time) {
	if d == 0 {
		return
	}
	c.eng.schedule(c.eng.now+d, c, nil)
	c.park()
}

// SpinUntil repeatedly evaluates cond, advancing poll cycles between
// evaluations (and charging perPoll, e.g. a flag load latency, via the
// charge callback if non-nil). It returns the total cycles spent waiting.
// cond is evaluated once immediately; if already true the wait is free.
func (c *Context) SpinUntil(cond func() bool, poll Time, charge func() Time) Time {
	if poll == 0 {
		poll = 1
	}
	start := c.eng.now
	for !cond() {
		if charge != nil {
			c.Advance(charge())
		}
		if cond() {
			break
		}
		c.Advance(poll)
	}
	return c.eng.now - start
}

// Resource models a unit that can serve one transaction at a time, with
// queueing delay when busy (contention at network ports, buses, and memory
// controllers is modelled this way).
type Resource struct {
	name      string
	busyUntil Time
	busyTotal Time
	waitTotal Time
	uses      uint64
}

// NewResource returns a named idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Acquire reserves the resource for occ cycles starting no earlier than
// now, and returns the total delay from now until the reservation ends
// (queueing wait plus occupancy).
func (r *Resource) Acquire(now, occ Time) Time {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + occ
	r.busyTotal += occ
	r.waitTotal += start - now
	r.uses++
	return r.busyUntil - now
}

// Uses returns how many times the resource was acquired.
func (r *Resource) Uses() uint64 { return r.uses }

// BusyUntil returns the time at which the last reservation ends.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyTotal returns total cycles the resource was occupied.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// WaitTotal returns total queueing cycles callers spent waiting.
func (r *Resource) WaitTotal() Time { return r.waitTotal }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Package sim provides a deterministic discrete-event simulation engine
// with coroutine-style execution contexts.
//
// The engine drives a set of contexts (simulated processors). Exactly one
// context runs at any instant: the engine pops the earliest event from its
// heap, transfers control to the owning context, and the context runs real
// Go code until it needs simulated time to pass, at which point it parks
// itself and control returns to the engine. Ties in event time are broken
// by event sequence number, so a given program produces an identical event
// order on every run. Because only one context executes at a time, code
// running inside contexts may freely share simulator data structures
// without locks.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp, measured in processor clock cycles.
type Time = uint64

// event is a scheduled occurrence: either waking a parked context or
// running a callback at a given time.
type event struct {
	at  Time
	seq uint64
	ctx *Context
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	contexts []*Context
	yield    chan struct{} // contexts signal the engine here when parking
	running  bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues an event at absolute time at.
func (e *Engine) schedule(at Time, ctx *Context, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, ctx: ctx, fn: fn})
}

// At schedules fn to run at absolute simulation time at. fn runs in engine
// context and must not park.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, nil, fn) }

// Spawn creates a context that will begin executing fn at time start.
// Contexts must be spawned before Run (or from a running context or
// callback); fn receives the context for parking operations.
func (e *Engine) Spawn(name string, start Time, fn func(*Context)) *Context {
	c := &Context{
		eng:  e,
		name: name,
		run:  make(chan struct{}),
	}
	e.contexts = append(e.contexts, c)
	go func() {
		<-c.run // wait for first dispatch
		fn(c)
		c.finished = true
		e.yield <- struct{}{}
	}()
	e.schedule(start, c, nil)
	return c
}

// Run executes events until the heap is empty. It returns an error if
// unfinished contexts remain when the heap drains (a deadlock: some context
// parked without a scheduled wake-up, which indicates a bug in the caller's
// synchronization code).
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		c := ev.ctx
		if c.finished {
			continue
		}
		c.run <- struct{}{}
		<-e.yield
	}
	for _, c := range e.contexts {
		if !c.finished {
			return fmt.Errorf("sim: deadlock: context %q parked with no pending event at t=%d", c.name, e.now)
		}
	}
	return nil
}

// Finished reports whether every spawned context has completed.
func (e *Engine) Finished() bool {
	for _, c := range e.contexts {
		if !c.finished {
			return false
		}
	}
	return true
}

// Context is a simulated thread of execution managed by an Engine.
type Context struct {
	eng      *Engine
	name     string
	run      chan struct{}
	finished bool
}

// Name returns the context's debug name.
func (c *Context) Name() string { return c.name }

// Engine returns the owning engine.
func (c *Context) Engine() *Engine { return c.eng }

// Now returns the current simulation time.
func (c *Context) Now() Time { return c.eng.now }

// park suspends the context until the engine dispatches it again.
func (c *Context) park() {
	c.eng.yield <- struct{}{}
	<-c.run
}

// WaitUntil parks the context until absolute time at (no-op if at <= now).
func (c *Context) WaitUntil(at Time) {
	if at <= c.eng.now {
		return
	}
	c.eng.schedule(at, c, nil)
	c.park()
}

// Advance parks the context for d cycles of simulated time.
func (c *Context) Advance(d Time) {
	if d == 0 {
		return
	}
	c.eng.schedule(c.eng.now+d, c, nil)
	c.park()
}

// SpinUntil repeatedly evaluates cond, advancing poll cycles between
// evaluations (and charging perPoll, e.g. a flag load latency, via the
// charge callback if non-nil). It returns the total cycles spent waiting.
// cond is evaluated once immediately; if already true the wait is free.
func (c *Context) SpinUntil(cond func() bool, poll Time, charge func() Time) Time {
	if poll == 0 {
		poll = 1
	}
	start := c.eng.now
	for !cond() {
		if charge != nil {
			c.Advance(charge())
		}
		if cond() {
			break
		}
		c.Advance(poll)
	}
	return c.eng.now - start
}

// Resource models a unit that can serve one transaction at a time, with
// queueing delay when busy (contention at network ports, buses, and memory
// controllers is modelled this way).
type Resource struct {
	name      string
	busyUntil Time
	busyTotal Time
	waitTotal Time
	uses      uint64
}

// NewResource returns a named idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Acquire reserves the resource for occ cycles starting no earlier than
// now, and returns the total delay from now until the reservation ends
// (queueing wait plus occupancy).
func (r *Resource) Acquire(now, occ Time) Time {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + occ
	r.busyTotal += occ
	r.waitTotal += start - now
	r.uses++
	return r.busyUntil - now
}

// Uses returns how many times the resource was acquired.
func (r *Resource) Uses() uint64 { return r.uses }

// BusyUntil returns the time at which the last reservation ends.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyTotal returns total cycles the resource was occupied.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// WaitTotal returns total queueing cycles callers spent waiting.
func (r *Resource) WaitTotal() Time { return r.waitTotal }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

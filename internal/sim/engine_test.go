package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// quickCheck applies the package's default property-test budget.
func quickCheck(f interface{}) error {
	return quick.Check(f, &quick.Config{MaxCount: 100})
}

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced with no events: %d", e.Now())
	}
}

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 1) })
	e.At(30, func() { order = append(order, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie-broken order = %v, want insertion order", order)
		}
	}
}

func TestContextAdvance(t *testing.T) {
	e := NewEngine()
	var at1, at2 Time
	e.Spawn("p", 0, func(c *Context) {
		c.Advance(100)
		at1 = c.Now()
		c.Advance(50)
		at2 = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 100 || at2 != 150 {
		t.Fatalf("advance times = %d, %d; want 100, 150", at1, at2)
	}
}

func TestContextStartOffset(t *testing.T) {
	e := NewEngine()
	var started Time
	e.Spawn("late", 42, func(c *Context) { started = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 42 {
		t.Fatalf("start time = %d, want 42", started)
	}
}

func TestWaitUntilPast(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 10, func(c *Context) {
		c.WaitUntil(5) // already past: must not rewind or park forever
		if c.Now() != 10 {
			t.Errorf("WaitUntil(past) moved time to %d", c.Now())
		}
		c.WaitUntil(20)
		if c.Now() != 20 {
			t.Errorf("WaitUntil(20) got %d", c.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoContextsInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", 0, func(c *Context) {
		trace = append(trace, "a0")
		c.Advance(10)
		trace = append(trace, "a10")
		c.Advance(20)
		trace = append(trace, "a30")
	})
	e.Spawn("b", 0, func(c *Context) {
		trace = append(trace, "b0")
		c.Advance(15)
		trace = append(trace, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSpinUntil(t *testing.T) {
	e := NewEngine()
	flag := false
	e.At(100, func() { flag = true })
	var waited Time
	e.Spawn("spinner", 0, func(c *Context) {
		waited = c.SpinUntil(func() bool { return flag }, 10, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited < 100 || waited > 110 {
		t.Fatalf("spin waited %d cycles, want ~100-110", waited)
	}
}

func TestSpinUntilImmediate(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(c *Context) {
		w := c.SpinUntil(func() bool { return true }, 10, nil)
		if w != 0 {
			t.Errorf("immediate spin cost %d cycles, want 0", w)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpinUntilChargesPollCost(t *testing.T) {
	e := NewEngine()
	flag := false
	e.At(50, func() { flag = true })
	e.Spawn("p", 0, func(c *Context) {
		c.SpinUntil(func() bool { return flag }, 5, func() Time { return 5 })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() < 50 {
		t.Fatalf("engine ended at %d, before flag set", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Spawn("waiter", 0, func(c *Context) {
		// Park with a wake event, then the cond never becomes true but
		// SpinUntil always reschedules, so craft a direct deadlock instead:
		// schedule nothing and park via WaitUntil on an event the engine
		// already consumed. We simulate by never finishing: spin on a
		// condition with zero reschedule is impossible through the public
		// API, so this test instead checks normal completion reporting.
		c.Advance(1)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("unexpected deadlock report: %v", err)
	}
	if !e.Finished() {
		t.Fatal("context did not finish")
	}
}

func TestManyContextsDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 32; i++ {
			i := i
			e.Spawn("p", Time(i%4), func(c *Context) {
				c.Advance(Time(100 - i))
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic ordering: %v vs %v", a, b)
		}
	}
}

// deadlockRun drives an engine into the deadlock path: the context parks
// without a scheduled wake-up (the synchronization bug Run must report).
func deadlockRun(t *testing.T) {
	t.Helper()
	e := NewEngine()
	e.Spawn("stuck", 0, func(c *Context) {
		c.Advance(1)
		c.park()
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	if !e.Finished() {
		t.Fatal("teardown left unfinished contexts")
	}
}

func TestDeadlockReported(t *testing.T) { deadlockRun(t) }

// Repeated deadlock-path runs must not accumulate goroutines: the engine
// teardown unwinds parked contexts and their workers return to the pool.
func TestDeadlockTeardownDoesNotLeakGoroutines(t *testing.T) {
	deadlockRun(t) // warm the worker pool
	runtime.GC()
	before := runtime.NumGoroutine()
	const runs = 50
	for i := 0; i < runs; i++ {
		deadlockRun(t)
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	// Pooled workers persist by design (bounded), so allow a little slack —
	// but nothing close to one leaked goroutine per deadlocked run.
	if after > before+10 {
		t.Fatalf("goroutines grew %d -> %d over %d deadlock runs", before, after, runs)
	}
}

// Teardown unwinds the context stack, so deferred cleanups inside the
// context body still execute.
func TestTeardownRunsDeferredCleanups(t *testing.T) {
	e := NewEngine()
	cleaned := false
	e.Spawn("p", 0, func(c *Context) {
		defer func() { cleaned = true }()
		c.Advance(1)
		c.park()
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run during teardown")
	}
}

// Close on an engine that never ran must release contexts whose bodies
// never started, without executing them.
func TestCloseReleasesUnstartedContexts(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("idle", 0, func(c *Context) { ran = true })
	e.Close()
	if ran {
		t.Fatal("aborted context body ran")
	}
	if !e.Finished() {
		t.Fatal("context not finished after Close")
	}
}

func TestCloseAfterCleanRunIsNoop(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", 0, func(c *Context) { c.Advance(5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if e.Now() != 5 {
		t.Fatalf("Close disturbed engine state: now=%d", e.Now())
	}
}

// The event dispatch hot path must not allocate: scheduling, popping, and
// the park/resume handshake are all reuse of preallocated state. The
// per-run budget covers engine construction only and must not scale with
// the event count.
func TestEventDispatchAllocFree(t *testing.T) {
	// Warm the worker pool so the first-ever goroutine spawn is excluded.
	warm := NewEngine()
	warm.Spawn("warm", 0, func(c *Context) { c.Advance(1) })
	if err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	const events = 2000
	avg := testing.AllocsPerRun(10, func() {
		e := NewEngine()
		e.Spawn("p", 0, func(c *Context) {
			for i := 0; i < events; i++ {
				c.Advance(1)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 16 {
		t.Fatalf("engine run with %d events cost %.0f allocs; want setup-only (<= 16)", events, avg)
	}
}

func TestResourceUncontended(t *testing.T) {
	r := NewResource("bus")
	d := r.Acquire(100, 30)
	if d != 30 {
		t.Fatalf("uncontended acquire delay = %d, want 30", d)
	}
	if r.WaitTotal() != 0 {
		t.Fatalf("wait total = %d, want 0", r.WaitTotal())
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("mem")
	if d := r.Acquire(0, 50); d != 50 {
		t.Fatalf("first acquire = %d", d)
	}
	// Second request arrives at t=10 while busy until 50: waits 40, then 50.
	if d := r.Acquire(10, 50); d != 90 {
		t.Fatalf("queued acquire = %d, want 90", d)
	}
	if r.WaitTotal() != 40 {
		t.Fatalf("wait total = %d, want 40", r.WaitTotal())
	}
	if r.Uses() != 2 {
		t.Fatalf("uses = %d, want 2", r.Uses())
	}
	if r.BusyTotal() != 100 {
		t.Fatalf("busy total = %d, want 100", r.BusyTotal())
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("ni")
	r.Acquire(0, 10)
	// Arrives long after the resource went idle: no queueing.
	if d := r.Acquire(1000, 10); d != 10 {
		t.Fatalf("post-idle acquire = %d, want 10", d)
	}
}

func TestCallbackDuringContextRun(t *testing.T) {
	e := NewEngine()
	var cbAt Time
	var ctxAt Time
	e.At(50, func() { cbAt = e.Now() })
	e.Spawn("p", 0, func(c *Context) {
		c.Advance(100)
		ctxAt = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if cbAt != 50 || ctxAt != 100 {
		t.Fatalf("cbAt=%d ctxAt=%d", cbAt, ctxAt)
	}
}

func TestNoConcurrentContextExecution(t *testing.T) {
	// With N contexts advancing in lockstep, an atomic counter incremented
	// and decremented around each "critical" window must never exceed 1.
	e := NewEngine()
	var inside int32
	var maxSeen int32
	for i := 0; i < 16; i++ {
		e.Spawn("p", 0, func(c *Context) {
			for j := 0; j < 100; j++ {
				n := atomic.AddInt32(&inside, 1)
				if n > maxSeen {
					maxSeen = n
				}
				atomic.AddInt32(&inside, -1)
				c.Advance(1)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSeen != 1 {
		t.Fatalf("observed %d contexts executing concurrently", maxSeen)
	}
}

// Property: callbacks scheduled at arbitrary times run in nondecreasing
// time order, and the engine's clock never goes backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, at := range times {
			at := Time(at)
			e.At(at, func() { seen = append(seen, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

// Property: contexts advancing by arbitrary step sequences finish at the
// sum of their steps.
func TestPropertyAdvanceSums(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) > 64 {
			steps = steps[:64]
		}
		e := NewEngine()
		var want, got Time
		for _, s := range steps {
			want += Time(s)
		}
		e.Spawn("p", 0, func(c *Context) {
			for _, s := range steps {
				c.Advance(Time(s))
			}
			got = c.Now()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return got == want
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

// Package splitmix is the repository's shared deterministic PRNG: the
// splitmix64 finalizer plus a counter-based draw stream keyed on
// (class, actor) pairs. It was extracted from internal/faults so every
// seeded fault layer — the simulator's fault plans, the control-plane
// network chaos in internal/cluster/netchaos, the client's retry jitter
// — derives its decisions the same way: from nothing but a seed and
// per-key draw counters, never from shared mutable global state. Two
// runs with the same seed make identical decisions; two streams with
// different seeds are independent.
package splitmix

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed hash.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds a string into a 64-bit value via Mix64, for deriving
// stable per-name actors (node names, link names) without allocation.
func HashString(s string) uint64 {
	h := uint64(len(s))
	for i := 0; i < len(s); i++ {
		h = Mix64(h ^ uint64(s[i]))
	}
	return h
}

// Threshold maps a probability in [0, 1] onto the uint64 draw range: a
// draw strictly below the threshold "fires". always reports a rate so
// close to 1 that the scaled product would overflow the conversion — in
// which case every draw fires.
func Threshold(rate float64) (threshold uint64, always bool) {
	if rate >= 1 {
		return 0, true
	}
	if rate <= 0 {
		return 0, false
	}
	// Float64 precision loss here is a deterministic constant of the
	// plan, not a correctness issue.
	f := rate * float64(^uint64(0))
	if f >= float64(^uint64(0)) {
		return 0, true
	}
	return uint64(f), false
}

// Stream is one seed's draw space. Draws are keyed by (class, actor):
// each pair advances its own counter, so concurrent actors consume
// independent sub-streams and adding a new hook point never shifts the
// draws of existing ones. A Stream is not safe for concurrent use;
// callers that share one across goroutines must lock around it.
type Stream struct {
	seed uint64
	seq  map[Key]uint64
}

// Key identifies one (class, actor) draw sub-stream.
type Key struct {
	Class uint64
	Actor uint64
}

// NewStream builds a draw stream for the seed.
func NewStream(seed uint64) *Stream {
	return &Stream{seed: seed, seq: map[Key]uint64{}}
}

// Seed returns the stream's seed.
func (s *Stream) Seed() uint64 { return s.seed }

// DrawAt derives the value of draw n in the (class, actor) sub-stream
// without touching any counter. The formula is the historical
// internal/faults one, kept verbatim so fault plans recorded before the
// extraction replay byte-identically.
func (s *Stream) DrawAt(class, actor, n uint64) uint64 {
	return Mix64(Mix64(Mix64(s.seed^(class+1)*0xa24baed4963ee407)^actor*0x9fb21c651e98df25) ^ n)
}

// Next consumes one draw from the (class, actor) sub-stream.
func (s *Stream) Next(class, actor uint64) uint64 {
	k := Key{class, actor}
	n := s.seq[k]
	s.seq[k] = n + 1
	return s.DrawAt(class, actor, n)
}

// Float64 maps a draw onto [0, 1).
func Float64(draw uint64) float64 {
	return float64(draw>>11) / float64(uint64(1)<<53)
}

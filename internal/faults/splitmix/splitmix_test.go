package splitmix

import "testing"

// The extraction must not shift any historical fault plan: DrawAt's
// formula is pinned against hand-computed values of the pre-extraction
// internal/faults hash.
func TestDrawAtMatchesHistoricalFormula(t *testing.T) {
	hist := func(seed uint64, class, actor int, n uint64) uint64 {
		return Mix64(Mix64(Mix64(seed^(uint64(class)+1)*0xa24baed4963ee407)^uint64(actor)*0x9fb21c651e98df25) ^ n)
	}
	s := NewStream(42)
	for class := 0; class < 6; class++ {
		for actor := 0; actor < 4; actor++ {
			for n := uint64(0); n < 8; n++ {
				if got, want := s.DrawAt(uint64(class), uint64(actor), n), hist(42, class, actor, n); got != want {
					t.Fatalf("DrawAt(%d,%d,%d) = %#x, want %#x", class, actor, n, got, want)
				}
			}
		}
	}
}

func TestNextAdvancesPerKeyCounters(t *testing.T) {
	s := NewStream(7)
	a0 := s.Next(1, 0)
	b0 := s.Next(2, 0) // different class: independent sub-stream
	a1 := s.Next(1, 0)
	if a0 != s.DrawAt(1, 0, 0) || a1 != s.DrawAt(1, 0, 1) {
		t.Fatal("Next does not walk the (class, actor) counter")
	}
	if b0 != s.DrawAt(2, 0, 0) {
		t.Fatal("class 2 counter was advanced by class 1 draws")
	}
	if a0 == a1 || a0 == b0 {
		t.Fatal("draws collide suspiciously")
	}
}

func TestThreshold(t *testing.T) {
	if th, always := Threshold(0); th != 0 || always {
		t.Fatalf("Threshold(0) = %d, %v", th, always)
	}
	if _, always := Threshold(1); !always {
		t.Fatal("Threshold(1) must be always")
	}
	thHalf, always := Threshold(0.5)
	if always || thHalf < (1<<63)-(1<<53) || thHalf > (1<<63)+(1<<53) {
		t.Fatalf("Threshold(0.5) = %#x (always=%v), want about 1<<63", thHalf, always)
	}
}

func TestHashStringStableAndDistinct(t *testing.T) {
	if HashString("c0→c1") != HashString("c0→c1") {
		t.Fatal("HashString not stable")
	}
	if HashString("c0→c1") == HashString("c1→c0") {
		t.Fatal("directed links must hash differently")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 1000; i++ {
		f := Float64(s.Next(0, 0))
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

// Package faults is a seeded, fully deterministic fault-plan engine for
// the slipstream simulator. An Injector decides, from nothing but its
// seed and per-(class, actor) draw counters, whether a fault fires at a
// given hook point — so the same seed and rate produce a byte-identical
// run, and two runs of the same plan can execute concurrently without
// sharing any state.
//
// The injector exercises the paper's correctness story from the outside:
// A-streams never write the backing store (their shared stores are
// skipped or converted to exclusive prefetches), and divergence recovery
// (§2.2) resynchronizes a wayward A-stream from its R-stream. Every
// fault class here therefore costs time, never correctness — injected
// runs must still pass result verification.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faults/splitmix"
	"repro/internal/sim"
)

// Class identifies one fault class the injector can arm.
type Class int

// Fault classes. The first three perturb the machine model, the next two
// the slipstream token protocol, the last the OpenMP thread schedule.
const (
	// MemSpike adds a latency spike to an L2-miss fill (a DRAM or deep
	// queue hiccup on the directory path).
	MemSpike Class = iota
	// BusBurst occupies a node's bus for a burst, queueing everything
	// behind it (DMA or IO traffic on the CMP bus).
	BusBurst
	// CMPStraggler slows every computation on a straggler node (thermal
	// throttling of one CMP). Membership is decided by seed and node ID.
	CMPStraggler
	// Divergence forces an A-stream recovery request at a barrier entry,
	// exercising the §2.2 recovery path and Recoveries accounting.
	Divergence
	// TokenLoss drops an R-inserted run-ahead token. A dropped token
	// always arms the recovery flag so the A-stream resynchronizes
	// instead of spinning forever on a semaphore nobody will post.
	TokenLoss
	// ThreadStraggler slows a straggler OpenMP thread per iteration
	// (OS interference), which static and dynamic scheduling absorb very
	// differently. Membership is decided by seed and thread ID.
	ThreadStraggler

	NumClasses
)

var classNames = [NumClasses]string{
	"mem", "bus", "cmp", "divergence", "token", "thread",
}

// String returns the spec spelling of the class.
func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass resolves a spec/CLI class name.
func ParseClass(s string) (Class, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for c, n := range classNames {
		if n == name {
			return Class(c), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown class %q (valid: %s)", s, strings.Join(classNames[:], ", "))
}

// ClassNames returns the valid class names in declaration order.
func ClassNames() []string { return append([]string(nil), classNames[:]...) }

// Config is a fault plan: a seed, a rate in [0, 1], and an optional class
// subset (empty = all classes armed).
type Config struct {
	Seed    uint64
	Rate    float64
	Classes []Class
}

// Validate rejects rates outside [0, 1] and unknown classes.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("faults: rate %g outside [0, 1]", c.Rate)
	}
	for _, cl := range c.Classes {
		if cl < 0 || cl >= NumClasses {
			return fmt.Errorf("faults: unknown class %d", int(cl))
		}
	}
	return nil
}

// String renders the plan in the -faults flag syntax.
func (c Config) String() string {
	s := fmt.Sprintf("%d:%g", c.Seed, c.Rate)
	if len(c.Classes) > 0 {
		names := make([]string, len(c.Classes))
		for i, cl := range c.Classes {
			names[i] = cl.String()
		}
		s += ":" + strings.Join(names, ",")
	}
	return s
}

// ParseSpec parses the -faults flag syntax "seed:rate[:class,class,...]",
// e.g. "42:0.05" or "7:0.2:token,divergence".
func ParseSpec(s string) (Config, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Config{}, fmt.Errorf("faults: spec %q is not seed:rate[:classes]", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("faults: bad seed %q: %v", parts[0], err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return Config{}, fmt.Errorf("faults: bad rate %q: %v", parts[1], err)
	}
	cfg := Config{Seed: seed, Rate: rate}
	if len(parts) == 3 {
		if cfg.Classes, err = parseClasses(parts[2]); err != nil {
			return Config{}, err
		}
	}
	return cfg, cfg.Validate()
}

// ParseSweep parses the chaos-study flag syntax
// "seed:rate,rate,...[:classes]" into a base plan (Rate unset) and the
// rate list, e.g. "42:0,0.05,0.2".
func ParseSweep(s string) (Config, []float64, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Config{}, nil, fmt.Errorf("faults: sweep spec %q is not seed:rate,...[:classes]", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return Config{}, nil, fmt.Errorf("faults: bad seed %q: %v", parts[0], err)
	}
	var rates []float64
	for _, rs := range strings.Split(parts[1], ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(rs), 64)
		if err != nil {
			return Config{}, nil, fmt.Errorf("faults: bad rate %q: %v", rs, err)
		}
		if r < 0 || r > 1 {
			return Config{}, nil, fmt.Errorf("faults: rate %g outside [0, 1]", r)
		}
		rates = append(rates, r)
	}
	cfg := Config{Seed: seed}
	if len(parts) == 3 {
		if cfg.Classes, err = parseClasses(parts[2]); err != nil {
			return Config{}, nil, err
		}
	}
	return cfg, rates, nil
}

func parseClasses(s string) ([]Class, error) {
	var out []Class
	for _, name := range strings.Split(s, ",") {
		c, err := ParseClass(name)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Injector is one run's fault plan instance. It is not safe for use from
// multiple goroutines, which matches the simulator: exactly one simulated
// processor executes at a time, and each run builds its own injector, so
// concurrent runs of the same plan stay independent and deterministic.
//
// A nil *Injector is a valid, permanently-quiet injector: every hook
// method returns zero, so the hot paths need no explicit guards.
type Injector struct {
	str       *splitmix.Stream
	threshold uint64 // rate mapped onto the hash range
	always    bool   // rate == 1
	enabled   [NumClasses]bool
	counts    [NumClasses]uint64
	noted     map[seqKey]bool // straggler membership, counted once
}

type seqKey struct {
	class Class
	actor int
}

// New builds an injector for cfg. A nil cfg, a zero rate, or an invalid
// plan yields a nil (quiet) injector; validate plans before running if
// errors must surface.
func New(cfg *Config) *Injector {
	if cfg == nil || cfg.Rate <= 0 || cfg.Validate() != nil {
		return nil
	}
	in := &Injector{
		str:   splitmix.NewStream(cfg.Seed),
		noted: map[seqKey]bool{},
	}
	// Rates that round up to 2^64 when scaled onto the draw range would
	// overflow the conversion, so they degrade to "always".
	in.threshold, in.always = splitmix.Threshold(cfg.Rate)
	if len(cfg.Classes) == 0 {
		for c := range in.enabled {
			in.enabled[c] = true
		}
	} else {
		for _, c := range cfg.Classes {
			in.enabled[c] = true
		}
	}
	return in
}

// mix64 keeps the package's historical shorthand for the shared
// splitmix64 finalizer (magnitude derivation below reuses it).
func mix64(x uint64) uint64 { return splitmix.Mix64(x) }

// roll consumes one draw from the (class, actor) stream. It returns
// whether the fault fires and the raw draw (reused for magnitudes so a
// fired fault's size is as deterministic as its occurrence).
func (in *Injector) roll(c Class, actor int) (bool, uint64) {
	if in == nil || !in.enabled[c] {
		return false, 0
	}
	h := in.str.Next(uint64(c), uint64(actor))
	if !in.always && h >= in.threshold {
		return false, 0
	}
	in.counts[c]++
	return true, h
}

// member reports straggler membership: a stable per-actor decision drawn
// once from the seed (no counter), so a straggler stays a straggler for
// the whole run. The first firing per actor counts as one injected fault.
func (in *Injector) member(c Class, actor int) bool {
	if in == nil || !in.enabled[c] {
		return false
	}
	h := in.str.DrawAt(uint64(c), uint64(actor), ^uint64(0)) // reserved draw index for membership
	if !in.always && h >= in.threshold {
		return false
	}
	k := seqKey{c, actor}
	if !in.noted[k] {
		in.noted[k] = true
		in.counts[c]++
	}
	return true
}

// MemSpikeLat returns the extra fill latency (cycles) for an L2 miss by
// the given processor, zero if no spike fires.
func (in *Injector) MemSpikeLat(gid int) sim.Time {
	fired, h := in.roll(MemSpike, gid)
	if !fired {
		return 0
	}
	return sim.Time(500 + mix64(h)%2000)
}

// BusBurstOcc returns the bus occupancy (cycles) of a contention burst on
// the given node, zero if no burst fires.
func (in *Injector) BusBurstOcc(node int) sim.Time {
	fired, h := in.roll(BusBurst, node)
	if !fired {
		return 0
	}
	return sim.Time(200 + mix64(h)%800)
}

// NodeSlowdown returns the extra compute cycles a straggler node pays on
// top of n (about a third more), zero for non-stragglers.
func (in *Injector) NodeSlowdown(node int, n sim.Time) sim.Time {
	if !in.member(CMPStraggler, node) {
		return 0
	}
	return n / 3
}

// ThreadStall returns the extra cycles a straggler thread pays for a
// chunk of the given iteration count, zero for non-stragglers.
func (in *Injector) ThreadStall(tid, iters int) sim.Time {
	if iters <= 0 || !in.member(ThreadStraggler, tid) {
		return 0
	}
	return sim.Time(iters) * 50
}

// ForceDivergence reports whether a forced A-stream divergence fires for
// the given processor's pair at this barrier entry.
func (in *Injector) ForceDivergence(gid int) bool {
	fired, _ := in.roll(Divergence, gid)
	return fired
}

// DropToken reports whether the token the given processor is about to
// insert is lost. Callers must pair a drop with a recovery request: a
// lost token with no recovery would leave the A-stream spinning forever.
func (in *Injector) DropToken(gid int) bool {
	fired, _ := in.roll(TokenLoss, gid)
	return fired
}

// Count returns how many faults of one class were injected.
func (in *Injector) Count(c Class) uint64 {
	if in == nil {
		return 0
	}
	return in.counts[c]
}

// Total returns how many faults were injected across all classes.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, n := range in.counts {
		t += n
	}
	return t
}

// Summary renders the per-class injection counts for report lines, e.g.
// "mem=3 token=1" ("none" when nothing fired).
func (in *Injector) Summary() string {
	if in == nil {
		return "none"
	}
	var parts []string
	for c := Class(0); c < NumClasses; c++ {
		if in.counts[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, in.counts[c]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

package faults

import (
	"testing"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("42:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Rate != 0.05 || len(cfg.Classes) != 0 {
		t.Fatalf("got %+v", cfg)
	}

	cfg, err = ParseSpec("7:0.2:token,divergence")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 2 || cfg.Classes[0] != TokenLoss || cfg.Classes[1] != Divergence {
		t.Fatalf("classes = %v", cfg.Classes)
	}

	for _, bad := range []string{"", "42", "x:0.1", "42:nope", "42:1.5", "42:-0.1", "42:0.1:bogus", "1:2:3:4"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSweep(t *testing.T) {
	cfg, rates, err := ParseSweep("42:0,0.05,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 {
		t.Fatalf("seed = %d", cfg.Seed)
	}
	if len(rates) != 3 || rates[0] != 0 || rates[1] != 0.05 || rates[2] != 0.2 {
		t.Fatalf("rates = %v", rates)
	}
	for _, bad := range []string{"42", "42:0.1,bad", "42:0.1,2.0", "x:0.1"} {
		if _, _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}

func TestClassRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
}

// Same plan, same call sequence, same decisions — the determinism the
// byte-identical chaos reports rest on.
func TestDeterministicReplay(t *testing.T) {
	plan := &Config{Seed: 42, Rate: 0.3}
	run := func() []uint64 {
		in := New(plan)
		var trace []uint64
		for actor := 0; actor < 4; actor++ {
			for i := 0; i < 100; i++ {
				trace = append(trace, uint64(in.MemSpikeLat(actor)))
				if in.DropToken(actor) {
					trace = append(trace, 1)
				}
				if in.ForceDivergence(actor) {
					trace = append(trace, 2)
				}
				trace = append(trace, uint64(in.BusBurstOcc(actor)))
				trace = append(trace, uint64(in.NodeSlowdown(actor, 100)))
				trace = append(trace, uint64(in.ThreadStall(actor, 64)))
			}
		}
		trace = append(trace, in.Total())
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-1] == 0 {
		t.Fatal("rate 0.3 over 400 opportunities injected nothing")
	}
}

func TestSeedChangesPlan(t *testing.T) {
	sample := func(seed uint64) (fires int) {
		in := New(&Config{Seed: seed, Rate: 0.5})
		for i := 0; i < 200; i++ {
			if in.DropToken(0) {
				fires++
			}
		}
		return fires
	}
	if sample(1) == sample(2) && func() bool {
		// Counts colliding is possible; require the actual decision
		// sequences to differ.
		a, b := New(&Config{Seed: 1, Rate: 0.5}), New(&Config{Seed: 2, Rate: 0.5})
		for i := 0; i < 200; i++ {
			if a.DropToken(0) != b.DropToken(0) {
				return false
			}
		}
		return true
	}() {
		t.Fatal("seeds 1 and 2 produced identical plans")
	}
}

func TestRateZeroAndNilAreQuiet(t *testing.T) {
	for _, in := range []*Injector{nil, New(nil), New(&Config{Seed: 1, Rate: 0})} {
		for i := 0; i < 50; i++ {
			if in.MemSpikeLat(i) != 0 || in.BusBurstOcc(i) != 0 ||
				in.NodeSlowdown(i, 100) != 0 || in.ThreadStall(i, 10) != 0 ||
				in.DropToken(i) || in.ForceDivergence(i) {
				t.Fatal("quiet injector fired")
			}
		}
		if in.Total() != 0 {
			t.Fatalf("quiet injector counted %d", in.Total())
		}
		if in.Summary() != "none" {
			t.Fatalf("quiet summary = %q", in.Summary())
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(&Config{Seed: 9, Rate: 1})
	for i := 0; i < 10; i++ {
		if in.MemSpikeLat(0) == 0 || !in.DropToken(0) {
			t.Fatal("rate 1 did not fire")
		}
	}
	if !in.member(CMPStraggler, 3) {
		t.Fatal("rate 1 node is not a straggler")
	}
}

func TestClassGating(t *testing.T) {
	in := New(&Config{Seed: 42, Rate: 1, Classes: []Class{TokenLoss}})
	if in.MemSpikeLat(0) != 0 || in.ForceDivergence(0) {
		t.Fatal("disabled class fired")
	}
	if !in.DropToken(0) {
		t.Fatal("enabled class did not fire")
	}
	if in.Count(TokenLoss) != 1 || in.Total() != 1 {
		t.Fatalf("counts: token=%d total=%d", in.Count(TokenLoss), in.Total())
	}
}

// Straggler membership is stable per actor and counted once.
func TestMembershipStableAndCountedOnce(t *testing.T) {
	in := New(&Config{Seed: 42, Rate: 0.5})
	first := make(map[int]bool)
	for tid := 0; tid < 16; tid++ {
		first[tid] = in.ThreadStall(tid, 10) > 0
	}
	for round := 0; round < 3; round++ {
		for tid := 0; tid < 16; tid++ {
			if (in.ThreadStall(tid, 10) > 0) != first[tid] {
				t.Fatalf("thread %d changed straggler status", tid)
			}
		}
	}
	var stragglers uint64
	for tid := 0; tid < 16; tid++ {
		if first[tid] {
			stragglers++
		}
	}
	if stragglers == 0 {
		t.Fatal("rate 0.5 over 16 threads produced no stragglers")
	}
	if got := in.Count(ThreadStraggler); got != stragglers {
		t.Fatalf("membership counted %d times for %d stragglers", got, stragglers)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Seed: 1, Rate: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Rate: 2}).Validate(); err == nil {
		t.Fatal("rate 2 accepted")
	}
	if err := (Config{Rate: 0.1, Classes: []Class{Class(99)}}).Validate(); err == nil {
		t.Fatal("class 99 accepted")
	}
}

// Package directory implements the invalidate-based, fully-mapped directory
// that keeps the per-CMP L2 caches coherent (paper §5: "System-wide
// coherence of the L2 caches is maintained by an invalidate-based
// fully-mapped directory protocol").
//
// The directory tracks one entry per cache line, at the line's home node
// (lines are interleaved across nodes). Entries record whether the line is
// uncached, shared by a set of nodes, or modified (dirty) at a single owner
// node. The timing of directory transactions is charged by the machine
// package; this package owns the protocol state.
package directory

import (
	"fmt"
	"math/bits"
)

// State is a directory entry state.
type State uint8

// Directory states.
const (
	Uncached   State = iota // memory has the only copy
	SharedSt                // one or more node L2s hold clean copies
	ModifiedSt              // exactly one node L2 holds a dirty copy
)

// String returns the state mnemonic.
func (s State) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedSt:
		return "S"
	case ModifiedSt:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is the coherence record for a single line.
type Entry struct {
	State   State
	Sharers uint64 // bitmask of nodes with clean copies (SharedSt)
	Owner   int    // owning node (ModifiedSt)
}

// Directory maps lines to entries. Entries are created on demand in state
// Uncached; a full map (rather than a fixed-size table) stands in for the
// paper's fully-mapped directory.
type Directory struct {
	nodes   int
	entries map[uint64]*Entry
}

// New returns a directory for a machine with the given node count
// (at most 64, the sharer bitmask width).
func New(nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic(fmt.Sprintf("directory: unsupported node count %d", nodes))
	}
	return &Directory{nodes: nodes, entries: make(map[uint64]*Entry)}
}

// Nodes returns the node count.
func (d *Directory) Nodes() int { return d.nodes }

// Home returns the home node of a line (line-interleaved placement).
func (d *Directory) Home(line uint64) int { return int(line % uint64(d.nodes)) }

// Entry returns the entry for line, creating it Uncached if absent.
func (d *Directory) Entry(line uint64) *Entry {
	e := d.entries[line]
	if e == nil {
		e = &Entry{State: Uncached, Owner: -1}
		d.entries[line] = e
	}
	return e
}

// Peek returns the entry for line or nil without creating one.
func (d *Directory) Peek(line uint64) *Entry { return d.entries[line] }

// AddSharer records that node holds a clean copy.
func (e *Entry) AddSharer(node int) {
	e.State = SharedSt
	e.Sharers |= 1 << uint(node)
	e.Owner = -1
}

// RemoveSharer clears node's copy; the entry returns to Uncached when the
// last sharer leaves.
func (e *Entry) RemoveSharer(node int) {
	e.Sharers &^= 1 << uint(node)
	if e.State == SharedSt && e.Sharers == 0 {
		e.State = Uncached
	}
}

// SetOwner records that node holds the line dirty and exclusive.
func (e *Entry) SetOwner(node int) {
	e.State = ModifiedSt
	e.Owner = node
	e.Sharers = 1 << uint(node)
}

// ClearOwner writes the line back: the entry becomes Uncached.
func (e *Entry) ClearOwner() {
	e.State = Uncached
	e.Owner = -1
	e.Sharers = 0
}

// HasSharer reports whether node holds a copy per the directory.
func (e *Entry) HasSharer(node int) bool { return e.Sharers&(1<<uint(node)) != 0 }

// SharerCount returns the number of nodes holding copies.
func (e *Entry) SharerCount() int {
	n := 0
	for m := e.Sharers; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// OtherSharers returns the nodes (excluding exclude) holding copies.
func (e *Entry) OtherSharers(exclude int) []int {
	return e.AppendOtherSharers(nil, exclude)
}

// AppendOtherSharers appends the nodes (excluding exclude) holding copies
// to dst and returns the extended slice. Callers on the coherence hot path
// pass a reusable scratch buffer so the invalidation fan-out allocates
// nothing.
func (e *Entry) AppendOtherSharers(dst []int, exclude int) []int {
	for m := e.Sharers &^ (1 << uint(exclude)); m != 0; m &= m - 1 {
		dst = append(dst, bits.TrailingZeros64(m))
	}
	return dst
}

// Check validates entry invariants, returning an error describing the first
// violation (used by tests and the machine's self-check mode).
func (e *Entry) Check() error {
	switch e.State {
	case Uncached:
		if e.Sharers != 0 || e.Owner != -1 {
			return fmt.Errorf("uncached entry has sharers=%#x owner=%d", e.Sharers, e.Owner)
		}
	case SharedSt:
		if e.Sharers == 0 {
			return fmt.Errorf("shared entry with no sharers")
		}
		if e.Owner != -1 {
			return fmt.Errorf("shared entry with owner %d", e.Owner)
		}
	case ModifiedSt:
		if e.Owner < 0 {
			return fmt.Errorf("modified entry with no owner")
		}
		if e.Sharers != 1<<uint(e.Owner) {
			return fmt.Errorf("modified entry sharers=%#x owner=%d", e.Sharers, e.Owner)
		}
	}
	return nil
}

// ForEach iterates over all existing entries.
func (d *Directory) ForEach(fn func(line uint64, e *Entry)) {
	for line, e := range d.entries {
		fn(line, e)
	}
}

package directory

import (
	"testing"
	"testing/quick"
)

func TestHomeInterleaving(t *testing.T) {
	d := New(16)
	if d.Home(0) != 0 || d.Home(15) != 15 || d.Home(16) != 0 || d.Home(33) != 1 {
		t.Fatal("home mapping not line-interleaved")
	}
}

func TestEntryCreatedUncached(t *testing.T) {
	d := New(4)
	e := d.Entry(7)
	if e.State != Uncached || e.Sharers != 0 || e.Owner != -1 {
		t.Fatalf("fresh entry = %+v", *e)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Peek(7) != e {
		t.Fatal("Peek did not return existing entry")
	}
	if d.Peek(8) != nil {
		t.Fatal("Peek created an entry")
	}
}

func TestSharerLifecycle(t *testing.T) {
	d := New(8)
	e := d.Entry(1)
	e.AddSharer(2)
	e.AddSharer(5)
	if e.State != SharedSt || e.SharerCount() != 2 {
		t.Fatalf("after adds: %+v", *e)
	}
	if !e.HasSharer(2) || !e.HasSharer(5) || e.HasSharer(3) {
		t.Fatal("HasSharer wrong")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	e.RemoveSharer(2)
	if e.State != SharedSt || e.SharerCount() != 1 {
		t.Fatalf("after one remove: %+v", *e)
	}
	e.RemoveSharer(5)
	if e.State != Uncached {
		t.Fatalf("after last remove: %+v", *e)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerLifecycle(t *testing.T) {
	d := New(8)
	e := d.Entry(1)
	e.AddSharer(1)
	e.AddSharer(2)
	e.Sharers = 0
	e.State = Uncached // simulate invalidation completion
	e.SetOwner(3)
	if e.State != ModifiedSt || e.Owner != 3 || !e.HasSharer(3) {
		t.Fatalf("after SetOwner: %+v", *e)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	e.ClearOwner()
	if e.State != Uncached || e.Owner != -1 || e.Sharers != 0 {
		t.Fatalf("after ClearOwner: %+v", *e)
	}
}

func TestOtherSharers(t *testing.T) {
	d := New(16)
	e := d.Entry(0)
	e.AddSharer(0)
	e.AddSharer(3)
	e.AddSharer(9)
	got := e.OtherSharers(3)
	if len(got) != 2 || got[0] != 0 || got[1] != 9 {
		t.Fatalf("OtherSharers = %v, want [0 9]", got)
	}
	if got := e.OtherSharers(7); len(got) != 3 {
		t.Fatalf("OtherSharers excluding non-sharer = %v", got)
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	e := &Entry{State: SharedSt, Sharers: 0, Owner: -1}
	if e.Check() == nil {
		t.Fatal("shared-with-no-sharers not detected")
	}
	e = &Entry{State: ModifiedSt, Sharers: 0b11, Owner: 0}
	if e.Check() == nil {
		t.Fatal("modified-with-extra-sharers not detected")
	}
	e = &Entry{State: Uncached, Sharers: 1, Owner: -1}
	if e.Check() == nil {
		t.Fatal("uncached-with-sharers not detected")
	}
}

func TestBadNodeCountPanics(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestForEach(t *testing.T) {
	d := New(4)
	d.Entry(1).AddSharer(0)
	d.Entry(2).SetOwner(3)
	n := 0
	d.ForEach(func(line uint64, e *Entry) {
		n++
		if err := e.Check(); err != nil {
			t.Errorf("line %d: %v", line, err)
		}
	})
	if n != 2 {
		t.Fatalf("iterated %d entries, want 2", n)
	}
}

// Property: any sequence of AddSharer/RemoveSharer/SetOwner/ClearOwner
// operations leaves the entry in a state that passes Check, and
// SharerCount always equals the popcount of the mask.
func TestPropertyEntryInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New(8)
		e := d.Entry(0)
		for _, op := range ops {
			node := int(op % 8)
			switch (op / 8) % 4 {
			case 0:
				if e.State != ModifiedSt {
					e.AddSharer(node)
				}
			case 1:
				if e.State == SharedSt {
					e.RemoveSharer(node)
				}
			case 2:
				// A legal SetOwner only happens when no other copies exist.
				if e.State == Uncached {
					e.SetOwner(node)
				}
			case 3:
				if e.State == ModifiedSt {
					e.ClearOwner()
				}
			}
			if err := e.Check(); err != nil {
				t.Log(err)
				return false
			}
			n := 0
			for m := e.Sharers; m != 0; m &= m - 1 {
				n++
			}
			if n != e.SharerCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"strings"
	"testing"
)

func TestAutoTunerPicksFastest(t *testing.T) {
	tu := NewAutoTuner(G0, L1, Config{Type: LocalSync, Tokens: 2})
	// Feed synthetic timings: L1 is fastest for region "r".
	timings := map[Config]uint64{
		G0:                           1000,
		L1:                           600,
		{Type: LocalSync, Tokens: 2}: 800,
	}
	for i := 0; i < 6; i++ { // 3 candidates x (1 warmup + 1 trial)
		d := tu.Directive("r")
		cfg := Config{Type: d.Type, Tokens: d.Tokens}
		tu.Report("r", timings[cfg])
	}
	best, ok := tu.Best("r")
	if !ok {
		t.Fatal("tuner did not settle")
	}
	if best != L1 {
		t.Fatalf("best = %v, want %v", best, L1)
	}
	// Settled: keeps returning the winner, ignores further reports.
	d := tu.Directive("r")
	if d.Type != LocalSync || d.Tokens != 1 {
		t.Fatalf("settled directive = %+v", d)
	}
	tu.Report("r", 1)
	if best2, _ := tu.Best("r"); best2 != L1 {
		t.Fatal("settled choice changed")
	}
}

func TestAutoTunerWarmupsDiscarded(t *testing.T) {
	tu := NewAutoTuner(G0, L1)
	tu.SetTrials(1, 2)
	// G0: warmup 1 (ignored), then 100, 100. L1: warmup 1, then 500, 500.
	seq := []uint64{9999, 100, 100, 9999, 500, 500}
	for _, c := range seq {
		tu.Directive("x")
		tu.Report("x", c)
	}
	best, ok := tu.Best("x")
	if !ok || best != G0 {
		t.Fatalf("best = %v ok=%v, want G0 (warmups must not count)", best, ok)
	}
}

func TestAutoTunerIndependentRegions(t *testing.T) {
	tu := NewAutoTuner(G0, L1)
	feed := func(key string, g0, l1 uint64) {
		vals := []uint64{g0, g0, l1, l1}
		for _, v := range vals {
			tu.Directive(key)
			tu.Report(key, v)
		}
	}
	feed("a", 100, 900)
	feed("b", 900, 100)
	if best, _ := tu.Best("a"); best != G0 {
		t.Fatalf("region a best = %v", best)
	}
	if best, _ := tu.Best("b"); best != L1 {
		t.Fatalf("region b best = %v", best)
	}
	if !tu.Settled() {
		t.Fatal("not settled")
	}
	s := tu.Summary()
	if !strings.Contains(s, "a: GLOBAL_SYNC,0") || !strings.Contains(s, "b: LOCAL_SYNC,1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestAutoTunerUnsettledStates(t *testing.T) {
	tu := NewAutoTuner()
	if tu.Settled() {
		t.Fatal("empty tuner settled")
	}
	if _, ok := tu.Best("nope"); ok {
		t.Fatal("unknown region has a best")
	}
	tu.Directive("r")
	if tu.Settled() {
		t.Fatal("mid-trial tuner settled")
	}
	if !strings.Contains(tu.Summary(), "tuning") {
		t.Fatalf("summary = %q", tu.Summary())
	}
}

func TestAutoTunerDefaultCandidates(t *testing.T) {
	tu := NewAutoTuner()
	d := tu.Directive("r")
	if d.Type != GlobalSync {
		t.Fatalf("first default candidate = %v", d.Type)
	}
}

func TestAutoTunerBadTrialsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetTrials(0,0) did not panic")
		}
	}()
	NewAutoTuner().SetTrials(0, 0)
}

// Package core implements slipstream execution mode, the paper's primary
// contribution: running each parallel task redundantly on the two
// processors of a CMP, with the speculative A-stream skipping shared-memory
// stores and synchronization so that it runs ahead and prefetches into the
// shared L2 for the true R-stream.
//
// The package provides:
//
//   - the SLIPSTREAM directive and OMP_SLIPSTREAM environment-variable
//     semantics (§3.3): synchronization type (GLOBAL_SYNC, LOCAL_SYNC,
//     RUNTIME_SYNC, NONE) and initial token count, with region settings
//     taking precedence over the global setting without overriding it;
//   - the token-semaphore protocol of Figure 1 that bounds how far the
//     A-stream runs ahead and detects divergence;
//   - the A-stream store policy (skip, or convert to an exclusive prefetch
//     when the streams are in the same session and the bus is idle, §5.1);
//   - the scheduling-decision handoff used with dynamic and guided
//     scheduling (§3.2.2); and
//   - divergence recovery (§2.2).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/stats"
)

// Mode selects how the machine's processors are used for a run (paper §5.1
// compares single, double, and slipstream execution).
type Mode int

// Execution modes.
const (
	ModeSingle     Mode = iota // one task per CMP, second processor idle
	ModeDouble                 // two independent tasks per CMP
	ModeSlipstream             // one task per CMP, run redundantly as A+R
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeDouble:
		return "double"
	case ModeSlipstream:
		return "slipstream"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SyncType selects the A–R synchronization method (§2.2, §3.3): where the
// R-stream inserts tokens (barrier entry = local, barrier exit = global),
// or NONE to disable slipstream, or RUNTIME to defer to OMP_SLIPSTREAM.
type SyncType int

// Synchronization types accepted by the SLIPSTREAM directive.
const (
	GlobalSync  SyncType = iota // token inserted when R exits the barrier
	LocalSync                   // token inserted when R enters the barrier
	RuntimeSync                 // take type and tokens from OMP_SLIPSTREAM
	NoneSync                    // slipstream disabled
)

// String returns the directive spelling of the sync type.
func (s SyncType) String() string {
	switch s {
	case GlobalSync:
		return "GLOBAL_SYNC"
	case LocalSync:
		return "LOCAL_SYNC"
	case RuntimeSync:
		return "RUNTIME_SYNC"
	case NoneSync:
		return "NONE"
	}
	return fmt.Sprintf("sync(%d)", int(s))
}

// Config is a resolved slipstream setting: sync type plus initial tokens.
// The paper's shorthand "G0" is {GlobalSync, 0}; "L1" is {LocalSync, 1}.
type Config struct {
	Type   SyncType
	Tokens int
}

// G0 and L1 are the two configurations evaluated in the paper.
var (
	G0 = Config{Type: GlobalSync, Tokens: 0}
	L1 = Config{Type: LocalSync, Tokens: 1}
)

// String renders the config like the directive argument list.
func (c Config) String() string { return fmt.Sprintf("%s,%d", c.Type, c.Tokens) }

// Directive is the !$OMP SLIPSTREAM([type][,tokens]) annotation attached to
// a parallel region or set globally in the serial part (§3.3).
type Directive struct {
	Type      SyncType
	Tokens    int
	HasTokens bool
}

// If gates a directive on a runtime condition (§3.3: "This directive can
// be used in conjunction with conditional IF statements, to limit the use
// of slipstream when the number of CMPs involved in solving the problem
// exceeds a certain limit"). When cond is false the region runs with
// slipstream disabled.
func If(cond bool, d *Directive) *Directive {
	if cond {
		return d
	}
	return &Directive{Type: NoneSync}
}

// ParseEnv parses an OMP_SLIPSTREAM value such as "GLOBAL_SYNC,2",
// "LOCAL_SYNC", "NONE". The empty string means "not set" and yields the
// implementation default (global synchronization, zero tokens).
func ParseEnv(s string) (Config, error) {
	cfg := Config{Type: GlobalSync}
	s = strings.TrimSpace(s)
	if s == "" {
		return cfg, nil
	}
	parts := strings.Split(s, ",")
	switch strings.ToUpper(strings.TrimSpace(parts[0])) {
	case "GLOBAL_SYNC":
		cfg.Type = GlobalSync
	case "LOCAL_SYNC":
		cfg.Type = LocalSync
	case "NONE":
		cfg.Type = NoneSync
	default:
		return cfg, fmt.Errorf("core: OMP_SLIPSTREAM: unknown sync type %q", parts[0])
	}
	if len(parts) > 1 {
		n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("core: OMP_SLIPSTREAM: bad token count %q", parts[1])
		}
		cfg.Tokens = n
	}
	if len(parts) > 2 {
		return cfg, fmt.Errorf("core: OMP_SLIPSTREAM: trailing arguments in %q", s)
	}
	return cfg, nil
}

// StoreAction is what an A-stream shared store becomes.
type StoreAction int

// A-stream store dispositions.
const (
	StoreSkip     StoreAction = iota // drop the store entirely
	StorePrefetch                    // issue a non-blocking exclusive prefetch
)

// Controller coordinates slipstream execution for one program run. It owns
// the global/region directive resolution and drives the per-CMP pair
// registers. All methods take the acting processor so that register access
// cost and wait time are charged to it.
type Controller struct {
	M       *machine.Machine
	Enabled bool   // slipstream mode active for this run
	Env     Config // resolved OMP_SLIPSTREAM value
	Global  Config // current global setting (serial-part directive)

	// recoveries counts divergence recoveries taken by A-streams.
	recoveries uint64
}

// NewController builds a controller. env is the OMP_SLIPSTREAM value
// ("" = unset). When enabled is false every region resolves to NoneSync.
func NewController(m *machine.Machine, enabled bool, env string) (*Controller, error) {
	cfg, err := ParseEnv(env)
	if err != nil {
		return nil, err
	}
	if cfg.Type == NoneSync {
		enabled = false
	}
	return &Controller{M: m, Enabled: enabled, Env: cfg, Global: cfg}, nil
}

// SetGlobal applies a serial-part SLIPSTREAM directive: it becomes the
// global setting until overridden by a later serial-part directive (§3.3).
func (c *Controller) SetGlobal(d Directive) {
	c.Global = c.resolve(&d)
}

// Effective resolves the configuration for a parallel region carrying
// directive d (nil = none). A region directive takes precedence but does
// not override the global setting (§3.3).
func (c *Controller) Effective(d *Directive) Config {
	if !c.Enabled {
		return Config{Type: NoneSync}
	}
	if d == nil {
		return c.Global
	}
	return c.resolve(d)
}

// resolve expands RUNTIME_SYNC and defaulted token counts.
func (c *Controller) resolve(d *Directive) Config {
	if d.Type == RuntimeSync {
		return c.Env
	}
	cfg := Config{Type: d.Type, Tokens: c.Global.Tokens}
	if d.HasTokens {
		cfg.Tokens = d.Tokens
	}
	return cfg
}

// Active reports whether cfg enables slipstream for a region.
func (c *Controller) Active(cfg Config) bool {
	return c.Enabled && cfg.Type != NoneSync
}

// Recoveries returns the number of divergence recoveries taken.
func (c *Controller) Recoveries() uint64 { return c.recoveries }

// reg returns the acting processor's pair registers, charging access cost.
func (c *Controller) reg(p *machine.Proc) *machine.PairRegs {
	p.Wait(c.M.P.RegAccessCycles)
	return &p.Node.Regs
}

// BeginRegion is called by the R-stream when it starts a slipstream region:
// it publishes the region's token allowance to the pair register.
func (c *Controller) BeginRegion(p *machine.Proc, cfg Config) {
	c.reg(p).Allowance = int64(cfg.Tokens)
}

// RPickupRegion records that the R-stream has entered parallel region seq
// and publishes the region's token allowance. The paired A-stream gates on
// this before using tokens, so a stale allowance from the previous region
// can never be consumed. Any residual scheduling decisions of the previous
// region are discarded along with the A-idle mark, so a recovered pair
// starts the region with a clean handshake.
func (c *Controller) RPickupRegion(p *machine.Proc, seq int64, cfg Config) {
	r := c.reg(p)
	r.Allowance = int64(cfg.Tokens)
	r.AIdle = 0
	r.RRegion = seq
}

// AAwaitRegion blocks the A-stream until its R-stream has picked up region
// seq. The wait (normally negligible) is charged as job-wait time.
func (c *Controller) AAwaitRegion(p *machine.Proc, seq int64) {
	poll := c.M.P.SpinPollCycles
	old := p.SetCategory(stats.CatJobWait)
	for c.reg(p).RRegion < seq {
		p.Wait(poll)
	}
	p.SetCategory(old)
}

// AStartRegion is the A-stream's region-entry hook: a pending recovery
// request (from a divergence detected in the previous region) is absorbed
// by resynchronizing the counters, and the idle mark is cleared — this
// A-stream participates again.
func (c *Controller) AStartRegion(p *machine.Proc) {
	r := c.reg(p)
	if r.Recover != 0 {
		r.ABarriers = r.RBarriers
		r.Recover = 0
		r.SysTaken = r.SysPosted
	}
	r.AIdle = 0
}

// SameSession reports whether the pair's A-stream has passed exactly as
// many barriers as its R-stream — the condition under which skipped shared
// stores may be converted to exclusive prefetches (§5.1).
func (c *Controller) SameSession(p *machine.Proc) bool {
	r := c.reg(p)
	return r.ABarriers == r.RBarriers
}

// AStoreAction decides what to do with an A-stream shared store: convert it
// to a non-blocking read-exclusive prefetch when the streams share a
// session and the node bus is idle, otherwise skip it.
func (c *Controller) AStoreAction(p *machine.Proc) StoreAction {
	r := c.reg(p)
	if r.ABarriers == r.RBarriers && p.Node.BusIdle() {
		return StorePrefetch
	}
	return StoreSkip
}

// RBarrierEnter is the R-stream hook at barrier entry. With local
// synchronization the token is inserted here, making the A-stream locally
// synchronized. It also performs the divergence check of Figure 1: if the
// A-stream has fallen more than allowance+1 sessions behind, the R-stream
// requests recovery.
func (c *Controller) RBarrierEnter(p *machine.Proc, cfg Config) {
	r := c.reg(p)
	// An A-stream that already took recovery sits out the region; flagging
	// it again would only poison its next region entry.
	if r.AIdle == 0 && r.ABarriers+r.Allowance+1 < r.RBarriers {
		r.Recover = 1
		c.recoveries++
	}
	// Injected divergence: request recovery exactly as a real divergence
	// detection would (skipped while one is already pending or the
	// A-stream sits the region out).
	if r.AIdle == 0 && r.Recover == 0 && c.M.Faults.ForceDivergence(p.GID) {
		r.Recover = 1
		c.recoveries++
	}
	if cfg.Type == LocalSync {
		c.insertToken(r, p.GID)
	}
}

// insertToken advances the R-side token count unless the fault plan drops
// the token. A drop must arm recovery: the A-stream waiting on that token
// would otherwise spin forever on a semaphore nobody will post. Recovery
// resynchronizes the pair's counters, so a lost token costs time only.
func (c *Controller) insertToken(r *machine.PairRegs, gid int) {
	if r.AIdle == 0 && c.M.Faults.DropToken(gid) {
		if r.Recover == 0 {
			r.Recover = 1
			c.recoveries++
		}
		return
	}
	r.RBarriers++
}

// RBarrierExit is the R-stream hook at barrier exit. With global
// synchronization the token is inserted here, so the A-stream may proceed
// only once its R-stream has left the barrier. The omp runtime instead
// uses InsertTokenAt at the barrier's global completion instant (the paper
// inserts the global token "before exiting the barrier", §2.2), which
// spares the A-stream the R-stream's wake-up miss latency; this method
// remains for runtimes without a completion hook.
func (c *Controller) RBarrierExit(p *machine.Proc, cfg Config) {
	if cfg.Type == GlobalSync {
		c.insertToken(c.reg(p), p.GID)
	}
}

// InsertTokenAt inserts one token into p's pair register without charging
// anyone: it models the barrier-completion propagation writing the
// hardware semaphore, used for global synchronization so the token appears
// when the barrier completes rather than when the R-stream wakes.
func (c *Controller) InsertTokenAt(p *machine.Proc) {
	c.insertToken(&p.Node.Regs, p.GID)
}

// ABarrier is the A-stream's barrier: instead of joining the team barrier
// it consumes one token, waiting if none is available. Wait time is charged
// as barrier synchronization. It returns true if a recovery request was
// observed and absorbed (the caller should abandon the current region).
func (c *Controller) ABarrier(p *machine.Proc) (recovered bool) {
	poll := c.M.P.SpinPollCycles
	old := p.SetCategory(stats.CatBarrier)
	defer p.SetCategory(old)
	for {
		r := c.reg(p)
		if r.Recover != 0 {
			r.ABarriers = r.RBarriers
			r.Recover = 0
			r.AIdle = 1
			r.SysTaken = r.SysPosted
			return true
		}
		if r.ABarriers < r.Allowance+r.RBarriers {
			r.ABarriers++
			return false
		}
		p.Wait(poll)
	}
}

// ARecoveryPending lets the A-stream poll for a recovery request at chunk
// boundaries without consuming a token.
func (c *Controller) ARecoveryPending(p *machine.Proc) bool {
	return c.reg(p).Recover != 0
}

// AAbsorbRecovery resynchronizes a recovering A-stream with its R-stream
// and marks it idle for the remainder of the region, so the R-stream stops
// waiting on the decision semaphore (the A-stream no longer consumes).
func (c *Controller) AAbsorbRecovery(p *machine.Proc) {
	r := c.reg(p)
	r.ABarriers = r.RBarriers
	r.Recover = 0
	r.AIdle = 1
	// Drain any undelivered scheduling decision: this A-stream will not
	// consume again until the next region.
	r.SysTaken = r.SysPosted
}

// RPublishDecision publishes a scheduling decision (or any syscall-class
// result) to the A-stream (§3.2.2). The R-stream first waits for the
// previous decision to be consumed — the pair register holds one decision —
// then writes it and posts the semaphore. Wait time is scheduling overhead.
func (c *Controller) RPublishDecision(p *machine.Proc, lo, hi int64) {
	poll := c.M.P.SpinPollCycles
	old := p.SetCategory(stats.CatSched)
	defer p.SetCategory(old)
	for {
		r := c.reg(p)
		if r.Recover != 0 || r.AIdle != 0 {
			// The A-stream is being recovered or has abandoned the
			// region; drop the handshake so the R-stream cannot deadlock
			// against an absent consumer.
			return
		}
		if r.SysPosted == r.SysTaken {
			r.SchedLo, r.SchedHi = lo, hi
			r.SysPosted++
			return
		}
		p.Wait(poll)
	}
}

// ATakeDecision blocks the A-stream until its R-stream publishes the next
// scheduling decision, then consumes and returns it. The bool result is
// false if a recovery request interrupted the wait.
func (c *Controller) ATakeDecision(p *machine.Proc) (lo, hi int64, ok bool) {
	poll := c.M.P.SpinPollCycles
	old := p.SetCategory(stats.CatSched)
	defer p.SetCategory(old)
	for {
		r := c.reg(p)
		if r.Recover != 0 {
			return 0, 0, false
		}
		if r.SysPosted > r.SysTaken {
			lo, hi = r.SchedLo, r.SchedHi
			r.SysTaken++
			return lo, hi, true
		}
		p.Wait(poll)
	}
}

// InjectDivergence forces a recovery request on p's pair (test/failure
// injection support).
func (c *Controller) InjectDivergence(p *machine.Proc) {
	p.Node.Regs.Recover = 1
}

// WirePairs marks every node's processors as a slipstream pair: cpu 0 is
// the R-stream, cpu 1 the A-stream, and enables self-invalidation hints on
// A-streams when requested. Self-invalidation is tied to global
// synchronization (§3.2.1: "slipstream self-invalidation is enabled when
// synchronization model is ... global").
func (c *Controller) WirePairs(selfInvalidate bool) {
	for _, nd := range c.M.Nodes {
		r, a := nd.Procs[0], nd.Procs[1]
		r.Role, a.Role = stats.RoleR, stats.RoleA
		r.Pair, a.Pair = a, r
		a.SelfInval = selfInvalidate && c.Global.Type == GlobalSync
	}
}

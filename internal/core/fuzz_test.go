package core

import (
	"strings"
	"testing"
)

// FuzzParseEnv: the parser must never panic and must round-trip values it
// accepts.
func FuzzParseEnv(f *testing.F) {
	for _, seed := range []string{"", "GLOBAL_SYNC", "LOCAL_SYNC,3", "NONE", "bogus", "LOCAL_SYNC,-1", "GLOBAL_SYNC,1,2", " local_sync , 7 "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseEnv(s)
		if err != nil {
			return
		}
		if cfg.Tokens < 0 {
			t.Fatalf("accepted negative tokens from %q", s)
		}
		// Accepted configs must render to something the parser accepts again
		// with the same meaning.
		cfg2, err := ParseEnv(cfg.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", s, cfg.String(), err)
		}
		if cfg2 != cfg {
			t.Fatalf("round trip changed %v -> %v", cfg, cfg2)
		}
		_ = strings.ToUpper(s)
	})
}

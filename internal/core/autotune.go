package core

import (
	"fmt"
	"sort"
)

// AutoTuner selects a slipstream configuration per parallel region by
// measurement. The paper observes that "each application has a tendency to
// favor one synchronization scheme over the other" and that its results
// "encourage further exploration to select different A-R synchronization
// for different parallel regions" (§5.1); the tuner does that exploration
// at runtime: for each region key it cycles through candidate
// configurations (with a warm-up pass each), then locks in the fastest.
type AutoTuner struct {
	candidates []Config
	warmups    int
	trials     int
	regions    map[string]*regionTuner
}

// regionTuner is the per-region trial state.
type regionTuner struct {
	next    int      // candidate currently being evaluated
	phase   int      // executions of the current candidate so far
	sums    []uint64 // measured cycles per candidate
	counts  []int
	settled bool
	best    Config
}

// NewAutoTuner builds a tuner over the candidate configurations (order
// defines trial order). Defaults: 1 warm-up then 1 measured execution per
// candidate.
func NewAutoTuner(candidates ...Config) *AutoTuner {
	if len(candidates) == 0 {
		candidates = []Config{G0, L1}
	}
	return &AutoTuner{
		candidates: candidates,
		warmups:    1,
		trials:     1,
		regions:    make(map[string]*regionTuner),
	}
}

// SetTrials configures warm-up and measured executions per candidate.
func (a *AutoTuner) SetTrials(warmups, trials int) {
	if warmups < 0 || trials < 1 {
		panic(fmt.Sprintf("core: bad tuner trials %d/%d", warmups, trials))
	}
	a.warmups = warmups
	a.trials = trials
}

// state returns the trial state for a region key.
func (a *AutoTuner) state(key string) *regionTuner {
	r := a.regions[key]
	if r == nil {
		r = &regionTuner{
			sums:   make([]uint64, len(a.candidates)),
			counts: make([]int, len(a.candidates)),
		}
		a.regions[key] = r
	}
	return r
}

// Directive returns the configuration to use for the next execution of the
// region, as a directive to attach to it.
func (a *AutoTuner) Directive(key string) *Directive {
	r := a.state(key)
	cfg := r.best
	if !r.settled {
		cfg = a.candidates[r.next]
	}
	return &Directive{Type: cfg.Type, Tokens: cfg.Tokens, HasTokens: true}
}

// Report feeds back the measured cycles of the region execution that used
// the configuration handed out by the preceding Directive call.
func (a *AutoTuner) Report(key string, cycles uint64) {
	r := a.state(key)
	if r.settled {
		return
	}
	r.phase++
	if r.phase > a.warmups {
		r.sums[r.next] += cycles
		r.counts[r.next]++
	}
	if r.phase >= a.warmups+a.trials {
		r.phase = 0
		r.next++
		if r.next >= len(a.candidates) {
			r.settle(a)
		}
	}
}

// settle picks the fastest candidate.
func (r *regionTuner) settle(a *AutoTuner) {
	best := 0
	for i := range a.candidates {
		mi := r.sums[i] / uint64(r.counts[i])
		mb := r.sums[best] / uint64(r.counts[best])
		if mi < mb {
			best = i
		}
	}
	r.best = a.candidates[best]
	r.settled = true
}

// Best returns the settled configuration for a region, if any.
func (a *AutoTuner) Best(key string) (Config, bool) {
	r := a.regions[key]
	if r == nil || !r.settled {
		return Config{}, false
	}
	return r.best, true
}

// Settled reports whether every observed region has locked a config.
func (a *AutoTuner) Settled() bool {
	if len(a.regions) == 0 {
		return false
	}
	for _, r := range a.regions {
		if !r.settled {
			return false
		}
	}
	return true
}

// Summary lists each region's settled choice (sorted by key).
func (a *AutoTuner) Summary() string {
	keys := make([]string, 0, len(a.regions))
	for k := range a.regions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		r := a.regions[k]
		if r.settled {
			out += fmt.Sprintf("%s: %s\n", k, r.best)
		} else {
			out += fmt.Sprintf("%s: (tuning, candidate %d/%d)\n", k, r.next+1, len(a.candidates))
		}
	}
	return out
}

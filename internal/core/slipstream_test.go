package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

func newM() *machine.Machine {
	p := machine.DefaultParams()
	p.Nodes = 2
	return machine.New(p)
}

func TestParseEnv(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Config
		ok   bool
	}{
		{"", Config{Type: GlobalSync}, true},
		{"GLOBAL_SYNC", Config{Type: GlobalSync}, true},
		{"LOCAL_SYNC,1", Config{Type: LocalSync, Tokens: 1}, true},
		{"global_sync,3", Config{Type: GlobalSync, Tokens: 3}, true},
		{" LOCAL_SYNC , 2 ", Config{Type: LocalSync, Tokens: 2}, true},
		{"NONE", Config{Type: NoneSync}, true},
		{"BOGUS", Config{}, false},
		{"GLOBAL_SYNC,x", Config{}, false},
		{"GLOBAL_SYNC,-1", Config{}, false},
		{"GLOBAL_SYNC,1,2", Config{}, false},
	} {
		got, err := ParseEnv(tc.in)
		if tc.ok && err != nil {
			t.Errorf("ParseEnv(%q): %v", tc.in, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseEnv(%q): no error", tc.in)
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseEnv(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestStrings(t *testing.T) {
	if ModeSlipstream.String() != "slipstream" || ModeSingle.String() != "single" || ModeDouble.String() != "double" {
		t.Fatal("mode strings")
	}
	if G0.String() != "GLOBAL_SYNC,0" || L1.String() != "LOCAL_SYNC,1" {
		t.Fatal("config strings")
	}
	if RuntimeSync.String() != "RUNTIME_SYNC" || NoneSync.String() != "NONE" {
		t.Fatal("sync strings")
	}
}

func TestEffectiveResolution(t *testing.T) {
	c, err := NewController(newM(), true, "LOCAL_SYNC,2")
	if err != nil {
		t.Fatal(err)
	}
	// No directive: global setting (initialized from env).
	if got := c.Effective(nil); got != (Config{LocalSync, 2}) {
		t.Fatalf("default effective = %v", got)
	}
	// Region directive takes precedence.
	if got := c.Effective(&Directive{Type: GlobalSync, Tokens: 0, HasTokens: true}); got != (Config{GlobalSync, 0}) {
		t.Fatalf("region directive = %v", got)
	}
	// Region directive without token count inherits global tokens.
	if got := c.Effective(&Directive{Type: GlobalSync}); got != (Config{GlobalSync, 2}) {
		t.Fatalf("region directive w/o tokens = %v", got)
	}
	// RUNTIME_SYNC defers to env.
	if got := c.Effective(&Directive{Type: RuntimeSync}); got != (Config{LocalSync, 2}) {
		t.Fatalf("runtime sync = %v", got)
	}
	// Serial-part directive changes the global setting.
	c.SetGlobal(Directive{Type: GlobalSync, Tokens: 1, HasTokens: true})
	if got := c.Effective(nil); got != (Config{GlobalSync, 1}) {
		t.Fatalf("after SetGlobal = %v", got)
	}
	// ...but a region directive still wins without overriding it.
	if got := c.Effective(&Directive{Type: LocalSync, Tokens: 3, HasTokens: true}); got != (Config{LocalSync, 3}) {
		t.Fatalf("region over global = %v", got)
	}
	if got := c.Effective(nil); got != (Config{GlobalSync, 1}) {
		t.Fatalf("global overridden by region directive: %v", got)
	}
}

func TestNoneDisables(t *testing.T) {
	c, err := NewController(newM(), true, "NONE")
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled {
		t.Fatal("OMP_SLIPSTREAM=NONE did not disable slipstream")
	}
	if got := c.Effective(nil); got.Type != NoneSync {
		t.Fatalf("effective = %v", got)
	}
	if c.Active(got0(c)) {
		t.Fatal("Active true when disabled")
	}
}

func got0(c *Controller) Config { return c.Effective(nil) }

func TestDisabledController(t *testing.T) {
	c, _ := NewController(newM(), false, "")
	if got := c.Effective(&Directive{Type: LocalSync}); got.Type != NoneSync {
		t.Fatalf("disabled controller resolved %v", got)
	}
}

// runPair executes rBody and aBody on node 0's two processors.
func runPair(t *testing.T, m *machine.Machine, rBody, aBody func(*machine.Proc)) {
	t.Helper()
	m.Start(0, rBody)
	m.Start(1, aBody)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestG0TokenProtocol(t *testing.T) {
	// Zero-token global: A may pass barrier k only after R exited barrier k.
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	cfg := G0
	var rExit, aPass [3]uint64
	runPair(t, m,
		func(p *machine.Proc) {
			c.BeginRegion(p, cfg)
			for i := 0; i < 3; i++ {
				p.Compute(1000)
				c.RBarrierEnter(p, cfg)
				// (team barrier would run here)
				c.RBarrierExit(p, cfg)
				rExit[i] = p.Ctx.Now()
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 3; i++ {
				p.Compute(10) // A runs ahead of R's computation
				c.ABarrier(p)
				aPass[i] = p.Ctx.Now()
			}
		})
	for i := 0; i < 3; i++ {
		if aPass[i] < rExit[i] {
			t.Fatalf("barrier %d: A passed at %d before R exited at %d (G0 violated)", i, aPass[i], rExit[i])
		}
	}
}

func TestL1TokenProtocol(t *testing.T) {
	// One-token local: A may be one session ahead: it passes barrier k once
	// R has entered barrier k-1 (the initial token covers the first skip).
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	cfg := L1
	var rEnter [3]uint64
	var aPass [3]uint64
	runPair(t, m,
		func(p *machine.Proc) {
			c.BeginRegion(p, cfg)
			for i := 0; i < 3; i++ {
				p.Compute(1000)
				rEnter[i] = p.Ctx.Now()
				c.RBarrierEnter(p, cfg)
				c.RBarrierExit(p, cfg)
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 3; i++ {
				p.Compute(10)
				c.ABarrier(p)
				aPass[i] = p.Ctx.Now()
			}
		})
	// First barrier skip is free (initial token): A passes long before R.
	if aPass[0] >= rEnter[0] {
		t.Fatalf("L1: A did not use its initial token (aPass=%d, rEnter=%d)", aPass[0], rEnter[0])
	}
	// Second skip requires R to have entered barrier 0.
	if aPass[1] < rEnter[0] {
		t.Fatalf("L1: A passed barrier 1 at %d before R entered barrier 0 at %d", aPass[1], rEnter[0])
	}
}

func TestTokenWaitChargedAsBarrier(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	cfg := G0
	var aProc *machine.Proc
	runPair(t, m,
		func(p *machine.Proc) {
			c.BeginRegion(p, cfg)
			p.Compute(5000)
			c.RBarrierEnter(p, cfg)
			c.RBarrierExit(p, cfg)
		},
		func(p *machine.Proc) {
			aProc = p
			c.ABarrier(p)
		})
	if aProc.Bd[stats.CatBarrier] < 4000 {
		t.Fatalf("A-stream barrier wait = %d cycles, want ~5000", aProc.Bd[stats.CatBarrier])
	}
}

func TestDivergenceDetectionAndRecovery(t *testing.T) {
	// A never consumes tokens; after allowance+1 barriers R must request
	// recovery, and A must absorb it and resynchronize.
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	cfg := G0
	stuck := true
	var recovered bool
	runPair(t, m,
		func(p *machine.Proc) {
			c.BeginRegion(p, cfg)
			for i := 0; i < 4; i++ {
				p.Compute(100)
				c.RBarrierEnter(p, cfg)
				c.RBarrierExit(p, cfg)
			}
			stuck = false
		},
		func(p *machine.Proc) {
			p.Ctx.SpinUntil(func() bool { return !stuck }, 20, nil)
			recovered = c.ABarrier(p)
		})
	if c.Recoveries() == 0 {
		t.Fatal("R never requested recovery for its stalled A-stream")
	}
	if !recovered {
		t.Fatal("A-stream did not observe the recovery request")
	}
	if m.Nodes[0].Regs.ABarriers != m.Nodes[0].Regs.RBarriers {
		t.Fatal("recovery did not resynchronize the streams")
	}
	if m.Nodes[0].Regs.Recover != 0 {
		t.Fatal("recovery flag not cleared")
	}
}

func TestNoFalseDivergenceWhenAKeepsUp(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	cfg := G0
	runPair(t, m,
		func(p *machine.Proc) {
			c.BeginRegion(p, cfg)
			for i := 0; i < 10; i++ {
				p.Compute(500)
				c.RBarrierEnter(p, cfg)
				c.RBarrierExit(p, cfg)
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 10; i++ {
				p.Compute(10)
				if c.ABarrier(p) {
					t.Error("spurious recovery")
				}
			}
		})
	if c.Recoveries() != 0 {
		t.Fatalf("recoveries = %d for a healthy pair", c.Recoveries())
	}
}

func TestDecisionHandoff(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	chunks := [][2]int64{{0, 10}, {10, 20}, {20, 20}}
	var got [][2]int64
	runPair(t, m,
		func(p *machine.Proc) {
			for _, ch := range chunks {
				p.Compute(200)
				c.RPublishDecision(p, ch[0], ch[1])
			}
		},
		func(p *machine.Proc) {
			for range chunks {
				lo, hi, ok := c.ATakeDecision(p)
				if !ok {
					t.Error("handoff interrupted")
					return
				}
				got = append(got, [2]int64{lo, hi})
			}
		})
	if len(got) != len(chunks) {
		t.Fatalf("received %d chunks, want %d", len(got), len(chunks))
	}
	for i := range chunks {
		if got[i] != chunks[i] {
			t.Fatalf("chunk %d = %v, want %v", i, got[i], chunks[i])
		}
	}
}

func TestDecisionHandoffNeverOverwrites(t *testing.T) {
	// R produces decisions much faster than A consumes them; the single
	// register must make R wait so nothing is lost.
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	const n = 20
	var got []int64
	runPair(t, m,
		func(p *machine.Proc) {
			for i := int64(0); i < n; i++ {
				c.RPublishDecision(p, i, i+1)
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < n; i++ {
				p.Compute(700) // slow consumer
				lo, _, ok := c.ATakeDecision(p)
				if !ok {
					t.Error("handoff interrupted")
					return
				}
				got = append(got, lo)
			}
		})
	for i := int64(0); i < n; i++ {
		if got[i] != i {
			t.Fatalf("decision %d = %d (lost/overwritten)", i, got[i])
		}
	}
}

func TestAStoreAction(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	runPair(t, m,
		func(p *machine.Proc) { p.Compute(1) },
		func(p *machine.Proc) {
			// Same session (both counters zero), idle bus: convert.
			if a := c.AStoreAction(p); a != StorePrefetch {
				t.Errorf("same-session idle-bus action = %v, want prefetch", a)
			}
			// A ahead of R: skip.
			p.Node.Regs.ABarriers = 1
			if a := c.AStoreAction(p); a != StoreSkip {
				t.Errorf("ahead-session action = %v, want skip", a)
			}
		})
}

func TestSameSession(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	runPair(t, m,
		func(p *machine.Proc) {
			if !c.SameSession(p) {
				t.Error("fresh pair not in same session")
			}
			p.Node.Regs.RBarriers = 2
			if c.SameSession(p) {
				t.Error("same session despite lag")
			}
		},
		func(p *machine.Proc) { p.Compute(1) })
}

func TestWirePairs(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(true) // global sync default → self-invalidation allowed
	for _, nd := range m.Nodes {
		r, a := nd.Procs[0], nd.Procs[1]
		if r.Role != stats.RoleR || a.Role != stats.RoleA {
			t.Fatal("roles not assigned")
		}
		if r.Pair != a || a.Pair != r {
			t.Fatal("pairing not symmetric")
		}
		if !a.SelfInval || r.SelfInval {
			t.Fatal("self-invalidation wiring wrong")
		}
	}
	// Self-invalidation must be dropped under local sync.
	c2, _ := NewController(newM(), true, "LOCAL_SYNC,1")
	c2.WirePairs(true)
	if c2.M.Nodes[0].Procs[1].SelfInval {
		t.Fatal("self-invalidation enabled under local sync")
	}
}

func TestInjectDivergence(t *testing.T) {
	m := newM()
	c, _ := NewController(m, true, "")
	c.WirePairs(false)
	runPair(t, m,
		func(p *machine.Proc) { p.Compute(1) },
		func(p *machine.Proc) {
			c.InjectDivergence(p)
			if !c.ARecoveryPending(p) {
				t.Error("injected divergence not visible")
			}
			c.AAbsorbRecovery(p)
			if c.ARecoveryPending(p) {
				t.Error("recovery not absorbed")
			}
		})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// CacheBytes is the result cache budget (default 64 MiB; negative
	// disables caching).
	CacheBytes int64
	// Workers is the number of concurrent jobs (default 2). Each job may
	// itself fan its matrix out over SuiteJobs simulator goroutines.
	Workers int
	// SuiteJobs is the per-job matrix concurrency handed to the
	// experiments runner (0 = runner default of GOMAXPROCS).
	SuiteJobs int
	// QueueDepth bounds jobs waiting for a worker (default 256); beyond
	// it POST /jobs returns 503 with a Retry-After header.
	QueueDepth int
	// JobTimeout bounds one job's execution wall clock (0 = no limit). A
	// job that blows the limit settles as failed; the worker moves on.
	JobTimeout time.Duration
	// Version is the code-version component of cache keys (default
	// CacheKeyVersion). Tests override it to partition cache spaces.
	Version string
	// DataDir roots the durability layer (write-ahead job journal plus
	// disk-backed result store). Empty = memory-only: a restart loses
	// queued jobs and cached results.
	DataDir string
	// MaxAttempts bounds the crash-recovery retry budget: a job found
	// queued/running in the journal at startup is requeued until its
	// attempt count would exceed this, then permanently failed
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the base delay before re-running a crash-recovered
	// job; it doubles per attempt (default 250ms, capped at 30s).
	RetryBackoff time.Duration
	// Cluster, when non-nil, turns this server into a fleet coordinator:
	// job execution is dispatched through the backend (which owns worker
	// selection, failover, and hedging) and only falls back to local
	// in-process execution when the backend reports ErrNoWorkers.
	Cluster Cluster
	// ChaosInjected, when set, is sampled by /metrics into the
	// slipd_chaos_injected_total counter — the number of control-plane
	// network faults the netchaos layer has manufactured in this process.
	ChaosInjected func() uint64
	// Tenants configures named tenants with API keys and per-tenant
	// admission limits. Requests without a recognized key run as the
	// shared default tenant under TenantDefaults.
	Tenants []TenantConfig
	// TenantDefaults applies to the default tenant and to unrecognized
	// API keys (each of which becomes its own tenant). The zero value —
	// unlimited rate and backlog, weight 1 — reproduces the pre-tenant
	// behavior exactly.
	TenantDefaults TenantLimits
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Version == "" {
		c.Version = CacheKeyVersion
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	return c
}

// Server is the slipd core: a job queue over the simulation runners, a
// single-flight layer that coalesces identical submissions, a
// content-addressed result cache, and the metrics that make all of it
// observable. It is torn down with Shutdown.
type Server struct {
	cfg     Config
	cache   *lruCache
	metrics *metrics

	// Durability layer, both nil when Config.DataDir is empty.
	journal *store.Journal
	store   *store.ResultStore
	ready   atomic.Bool // journal replay finished; /readyz gates on it

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // insertion order for GET /jobs
	inflight map[string]*Job // cache key → queued/running job
	nextID   int
	draining bool

	// Campaign registry, guarded by campMu (never taken while holding
	// s.mu — campaign code locks camp.mu/campMu first, then s.mu).
	campMu    sync.Mutex
	campaigns map[string]*campaign
	campOrder []string
	nextCamp  int

	sched *scheduler    // tenant-aware admission + weighted-fair dispatch
	quit  chan struct{} // closed by Shutdown: drain queue, then exit
	wg    sync.WaitGroup

	runCtx    context.Context // parent of every job context
	runCancel context.CancelFunc

	// testBeforeRun, when set by a test before the first submission, is
	// invoked by the worker as it picks a job up — the only way to hold a
	// worker busy deterministically without a sleep.
	testBeforeRun func(*Job)
	// testDuringRun runs inside the worker's panic guard, after the job
	// transitions to running — a hook that panics exercises recovery.
	testDuringRun func(*Job)
}

// New builds a Server and starts its workers. It is the memory-only
// convenience constructor: with Config.DataDir set, use Open, which can
// fail on disk errors (New panics on them instead).
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v (use server.Open for durable configs)", err))
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /campaigns", s.handleCampaignList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignGet)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleCampaignEvents)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCampaignCancel)
	mux.HandleFunc("GET /results/{key}", s.handleResultByKey)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /version", s.handleVersion)
	return mux
}

// submitResponse is the POST /jobs body.
type submitResponse struct {
	Job    JobView `json:"job"`
	Dedup  bool    `json:"dedup"`  // coalesced onto an existing in-flight job
	Cached bool    `json:"cached"` // answered from the result cache
}

// Submission sentinels, shared by POST /jobs and the programmatic
// SubmitJSON path (the cluster dispatch endpoint maps them to 503s).
var (
	ErrDraining  = errors.New("server is draining")
	ErrQueueFull = errors.New("job queue is full")
	// ErrBackpressure marks a submission shed because replication to
	// every peer coordinator is lagging past the configured bound —
	// accepting new work would mean work only this node knows about.
	ErrBackpressure = errors.New("replication lagging; new submissions shed")
)

// backpressureError carries the suggested retry delay alongside the
// ErrBackpressure identity (errors.Is matches the sentinel).
type backpressureError struct{ retryAfter time.Duration }

func (e *backpressureError) Error() string {
	return fmt.Sprintf("%v (retry in %s)", ErrBackpressure, e.retryAfter)
}
func (e *backpressureError) Unwrap() error { return ErrBackpressure }

// SubmitOutcome reports how a submission was answered.
type SubmitOutcome struct {
	Dedup  bool // coalesced onto an existing in-flight job
	Cached bool // answered from the result cache
}

// apiKeyFrom extracts the tenant API key from a request: X-API-Key,
// or an Authorization: Bearer token. Absent means the default tenant.
func apiKeyFrom(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	c, err := compile(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := c.cacheKey(s.cfg.Version)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	sub := submission{
		tenant:   s.sched.resolve(apiKeyFrom(r)),
		priority: c.priority,
		charge:   true,
	}
	j, out, err := s.register(c, key, sub)
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrTenantLimited):
		// The submitting tenant's own limit: 429, not 503 — the daemon
		// has capacity, this caller is over its share.
		secs := 1
		var tl *tenantLimitedError
		if errors.As(err, &tl) {
			secs = retryAfterSeconds(tl.retryAfter)
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrQueueFull):
		// Retry-After tells well-behaved clients to back off instead of
		// hammering.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrBackpressure):
		secs := 1
		var bp *backpressureError
		if errors.As(err, &bp) && bp.retryAfter > time.Second {
			secs = int((bp.retryAfter + time.Second - 1) / time.Second)
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		httpError(w, http.StatusServiceUnavailable, err)
	case out.Dedup:
		writeJSON(w, http.StatusOK, submitResponse{Job: j.snapshot(), Dedup: true})
	default:
		writeJSON(w, http.StatusCreated, submitResponse{Job: j.snapshot(), Cached: out.Cached})
	}
}

// SubmitJSON registers a spec exactly as POST /jobs does — single-flight
// dedup, tiered cache lookup, queue-full shedding — and returns the
// job's view. It is the programmatic seam the cluster worker endpoint
// submits dispatched jobs through. Spec errors come back as-is;
// ErrDraining and ErrQueueFull mark transient refusals.
func (s *Server) SubmitJSON(specJSON []byte) (JobView, SubmitOutcome, error) {
	spec, err := decodeSpec(bytes.NewReader(specJSON))
	if err != nil {
		return JobView{}, SubmitOutcome{}, err
	}
	c, err := compile(spec)
	if err != nil {
		return JobView{}, SubmitOutcome{}, err
	}
	key, err := c.cacheKey(s.cfg.Version)
	if err != nil {
		return JobView{}, SubmitOutcome{}, err
	}
	// Fleet-claim executions queue under the spec's own priority but are
	// not charged admission: the originating coordinator already charged
	// the submitting tenant when it accepted the work.
	j, out, err := s.register(c, key, submission{priority: c.priority})
	if err != nil {
		return JobView{}, out, err
	}
	return j.snapshot(), out, nil
}

// CacheKeyFor compiles a spec and returns the content-addressed cache
// key it would run under on this server, without registering anything.
// The cluster worker endpoint uses it to reject dispatches from a
// coordinator running a different code version before any work starts.
func (s *Server) CacheKeyFor(specJSON []byte) (string, error) {
	spec, err := decodeSpec(bytes.NewReader(specJSON))
	if err != nil {
		return "", err
	}
	c, err := compile(spec)
	if err != nil {
		return "", err
	}
	return c.cacheKey(s.cfg.Version)
}

// submission is the admission identity of one register call: which
// tenant the work queues under, at what priority, whether the tenant's
// rate/backlog limits apply (client submissions yes; campaign cells
// paid at campaign admission, fleet claims at their origin), and — for
// campaign cells — which DAG cell this job executes.
type submission struct {
	tenant   string
	priority int
	campaign string
	cell     string
	charge   bool
}

// register is the admission path shared by every submission surface:
// dedup against in-flight work, answer from the cache, or queue.
func (s *Server) register(c *compiledSpec, key string, sub submission) (*Job, SubmitOutcome, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, SubmitOutcome{}, ErrDraining
	}

	// Single-flight: an identical job already queued or running answers
	// this submission too. Checked before the cache so a burst of
	// identical submissions costs one run, not one run plus misses.
	if j, ok := s.inflight[key]; ok {
		s.metrics.dedupHit()
		s.mu.Unlock()
		// A higher-priority identical submission lifts the queued job
		// out of the bulk class instead of waiting behind it.
		s.sched.promote(j, sub.priority)
		return j, SubmitOutcome{Dedup: true}, nil
	}

	// Content-addressed cache: determinism means an equal key is an equal
	// result, so a hit materializes a done job without running anything.
	// The lookup is tiered — memory LRU, then the disk result store.
	if result, ok := s.cacheGet(key); ok {
		j := s.newJobLocked(key, c.spec, StateDone, sub)
		j.cached = true
		j.attempts = 0 // never handed to the queue
		j.result = result
		close(j.done)
		// The job never runs, so nothing else will close its broker; do it
		// here or GET /jobs/{id}/events would stream forever without a
		// terminal event.
		j.broker.close()
		s.metrics.jobCreated(StateDone)
		// No fsync: losing this record costs a job-listing entry, not a
		// result — the bytes are already durable under the key.
		s.journalAppend(store.Record{Job: j.ID, Key: key, State: string(StateDone), Cached: true, Spec: specJSON(c.spec), Tenant: sub.tenant, Priority: PriorityName(sub.priority), Campaign: sub.campaign, Cell: sub.cell}, false)
		s.mu.Unlock()
		return j, SubmitOutcome{Cached: true}, nil
	}

	// Replication-lag backpressure: a coordinator whose peers are all
	// stale refuses brand-new work. Dedup and cache answers above stay
	// free — they add no state that could be lost with this node.
	if sh, ok := s.cfg.Cluster.(Shedder); ok {
		if retry, shed := sh.ShedNewJobs(); shed {
			s.mu.Unlock()
			s.metrics.replicationShed()
			return nil, SubmitOutcome{}, &backpressureError{retryAfter: retry}
		}
	}

	j := s.newJobLocked(key, c.spec, StateQueued, sub)
	if err := s.sched.submit(j, sub.charge); err != nil {
		// Refused admission: roll the registration back and shed load.
		delete(s.jobs, j.ID)
		delete(s.inflight, key)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.requestShed()
		}
		return nil, SubmitOutcome{}, err
	}
	s.metrics.jobCreated(StateQueued)
	s.journalAppend(store.Record{Job: j.ID, Key: key, State: string(StateQueued), Attempts: 1, Spec: specJSON(c.spec), Tenant: sub.tenant, Priority: PriorityName(sub.priority), Campaign: sub.campaign, Cell: sub.cell}, false)
	s.mu.Unlock()
	return j, SubmitOutcome{}, nil
}

// newJobLocked registers a job under the next ID. Caller holds s.mu.
// Queued jobs also enter the in-flight index so identical submissions
// coalesce onto them.
func (s *Server) newJobLocked(key string, spec JobSpec, st State, sub submission) *Job {
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), key, spec, st)
	j.tenant = sub.tenant
	j.priority = sub.priority
	j.campaign = sub.campaign
	j.cell = sub.cell
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if st == StateQueued {
		s.inflight[key] = j
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].snapshot())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return nil
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	switch j.stateNow() {
	case StateDone:
		result, _ := j.resultBytes()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StateFailed:
		v := j.snapshot()
		httpError(w, http.StatusConflict, fmt.Errorf("job failed: %s", v.Error))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s; poll until done", j.stateNow()))
	}
}

// handleEvents streams progress lines as server-sent events: full replay
// for late subscribers, then live lines, then a terminal "state" event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live := j.broker.subscribe()
	defer j.broker.unsubscribe(live)
	for _, line := range replay {
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", line)
	}
	flusher.Flush()
	for {
		select {
		case line, ok := <-live:
			if !ok {
				fmt.Fprintf(w, "event: state\ndata: %s\n\n", j.stateNow())
				flusher.Flush()
				return
			}
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", line)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j, "cancelled by client")
	writeJSON(w, http.StatusOK, j.snapshot())
}

// cancelJob aborts a job (shared by DELETE /jobs/{id} and campaign
// cancellation). A job cancelled while still queued settles
// immediately: gauges, single-flight, its scheduler slot, and the
// journal don't wait for a worker to skip it.
func (s *Server) cancelJob(j *Job, reason string) {
	was, ok := j.abort(reason)
	if was == StateQueued && ok {
		s.sched.remove(j) // free the tenant's backlog slot now
		s.metrics.jobTransition(StateQueued, StateFailed)
		s.clearInflight(j)
		j.broker.close()
		s.journalAppend(store.Record{Job: j.ID, Key: j.Key, State: journalStateCancelled, Error: reason}, true)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.sched.depth(), s.cache.Stats(), s.durabilityStats(), s.clusterStats(), s.cfg.ChaosInjected, s.sched.stats(), s.campaignStats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"cache_key_version": s.cfg.Version})
}

// worker runs jobs until the scheduler is empty after Shutdown closes
// quit (pop keeps draining queued work past the close).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.pop(s.quit)
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one queued job end to end.
func (s *Server) runJob(j *Job) {
	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	if !j.tryStart(cancel) {
		return // cancelled while queued; handleCancel settled it
	}
	s.metrics.jobTransition(StateQueued, StateRunning)
	s.metrics.runStarted()

	j.mu.Lock()
	spec := j.spec
	attempts := j.attempts
	j.mu.Unlock()
	if attempts > 1 {
		s.metrics.retried()
	}
	s.journalAppend(store.Record{Job: j.ID, Key: j.Key, State: string(StateRunning), Attempts: attempts}, false)
	c, err := compile(spec)

	var result []byte
	start := time.Now()
	if err == nil {
		execCtx := ctx
		if s.cfg.JobTimeout > 0 {
			var tcancel context.CancelFunc
			execCtx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer tcancel()
		}
		result, err = s.executeOrDispatch(execCtx, c, j)
		// A blown per-job deadline — not a shutdown or client cancel on
		// the parent context — settles the job as a timeout.
		if err != nil && execCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			s.metrics.timedOut()
			err = fmt.Errorf("job exceeded timeout %s: %v", s.cfg.JobTimeout, err)
		}
	}
	elapsed := time.Since(start)

	if err == nil {
		// Order matters across a crash: persist the bytes, then journal
		// the terminal state (fsync'd). A done record therefore always
		// has its result on disk; the reverse gap only costs a re-run.
		s.cachePut(j.Key, result)
		j.finish(result, "")
		s.metrics.jobTransition(StateRunning, StateDone)
		s.journalAppend(store.Record{Job: j.ID, Key: j.Key, State: string(StateDone), Attempts: attempts}, true)
	} else {
		j.finish(nil, err.Error())
		s.metrics.jobTransition(StateRunning, StateFailed)
		s.journalAppend(store.Record{Job: j.ID, Key: j.Key, State: string(StateFailed), Error: err.Error(), Attempts: attempts}, true)
	}
	if c != nil {
		s.metrics.observeLatency(c.label(), elapsed)
	}
	s.clearInflight(j)
	j.broker.close()
}

// executeGuarded runs a compiled spec under the worker's panic guard: a
// panicking kernel fails its own job instead of killing the worker (and
// with it a share of the daemon's capacity).
func (s *Server) executeGuarded(ctx context.Context, c *compiledSpec, j *Job) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panicked()
			result, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	if s.testDuringRun != nil {
		s.testDuringRun(j)
	}
	return s.execute(ctx, c, j.broker)
}

// clearInflight removes a settled job from the single-flight index (only
// if it still owns its key — a later identical submission may have
// re-registered it).
func (s *Server) clearInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting jobs, let workers finish
// everything queued and running, and if the context expires first cancel
// the remaining work so jobs fail fast instead of hanging. Returns nil on
// a clean drain, the context error otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	close(s.quit)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closePersistence()
		return nil
	case <-ctx.Done():
		s.runCancel() // abort in-flight cells; workers then settle quickly
		<-done
		s.closePersistence()
		return ctx.Err()
	}
}

// Load reports how many jobs are currently queued and running (exported
// for the worker agent's heartbeats; the same gauges are in /metrics).
func (s *Server) Load() (queued, running int) {
	return s.metrics.stateCounts()
}

// RunsTotal reports how many underlying simulation executions have
// started (exported for the single-flight acceptance test and smoke
// tool assertions; the same number is in /metrics as slipd_runs_total).
func (s *Server) RunsTotal() uint64 { return s.metrics.runsTotal() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

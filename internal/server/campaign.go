package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
)

// Campaigns make the unit of submission a DAG of job specs: cells with
// dependency edges, validated (cycles rejected) at admission, launched
// as ordinary jobs when their dependencies complete. A failing cell
// triggers the campaign's failure policy — "continue" skips only the
// transitive dependents of the failure, "halt" additionally skips
// every cell not yet launched (caesium's Phase 1.3 semantics). Cells
// run through the same single-flight and content-addressed cache as
// direct submissions, so popular sweeps collapse to near-zero marginal
// work; the per-campaign cache-collapse ratio measures exactly that.
// Campaign admission charges the submitting tenant's token bucket for
// the whole cell count up front; the cells themselves launch uncharged.

// Campaign failure policies.
const (
	PolicyContinue = "continue"
	PolicyHalt     = "halt"
)

// Campaign states.
const (
	campaignRunning   = "running"
	campaignDone      = "done"
	campaignFailed    = "failed"
	campaignCancelled = "cancelled"
)

// Cell states. A queued cell's view upgrades to "running" while its
// job runs; the cell itself tracks only launch/terminal transitions.
const (
	cellPending = "pending"
	cellQueued  = "queued"
	cellDone    = "done"
	cellFailed  = "failed"
	cellSkipped = "skipped"
)

// Validation bounds: a campaign is a bounded DAG, not a bulk import
// channel — anything bigger should be several campaigns.
const (
	maxCampaignCells = 128
	maxCellIDLen     = 64
	maxCampaignName  = 128
)

// campaignRetryDelay paces cell launches that hit the global queue
// bound: the cells are already admitted, they just wait for room.
const campaignRetryDelay = 100 * time.Millisecond

// CampaignSpec is the POST /campaigns request body.
type CampaignSpec struct {
	// Name is an optional operator label.
	Name string `json:"name,omitempty"`
	// Policy is the failure policy: "continue" (default) skips only
	// dependents of a failed cell; "halt" also skips everything not yet
	// launched.
	Policy string `json:"policy,omitempty"`
	// Priority, when set, overrides every cell's scheduling class.
	Priority string `json:"priority,omitempty"`
	// Cells is the DAG: each cell is a job spec plus the ids it runs
	// after. Order is the deterministic tie-break everywhere.
	Cells []CampaignCellSpec `json:"cells"`
}

// CampaignCellSpec is one DAG node.
type CampaignCellSpec struct {
	ID    string   `json:"id"`
	After []string `json:"after,omitempty"`
	Spec  JobSpec  `json:"spec"`
}

// decodeCampaignSpec parses a campaign strictly, like decodeSpec:
// unknown fields and trailing data are rejected.
func decodeCampaignSpec(r io.Reader) (CampaignSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cs CampaignSpec
	if err := dec.Decode(&cs); err != nil {
		return CampaignSpec{}, err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return CampaignSpec{}, fmt.Errorf("trailing data after campaign spec")
	}
	return cs, nil
}

// compiledCampaign is a validated campaign: normalized spec, compiled
// cells, and a proven-acyclic dependency graph.
type compiledCampaign struct {
	spec  CampaignSpec // normalized (canonical policy/priority, normalized cell specs)
	cells []compiledCell
}

type compiledCell struct {
	id    string
	after []string
	c     *compiledSpec
}

// validCellID enforces the cell id charset ([A-Za-z0-9._-], 1..64).
// "/" is deliberately excluded: cell journal records live under
// "<campaign>/<cell>" ids.
func validCellID(id string) bool {
	if id == "" || len(id) > maxCellIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// compileCampaign validates a campaign spec: bounds, id uniqueness,
// well-formed dependency edges, cycle rejection (Kahn), and a compile
// of every cell spec. All user errors surface as 400s.
func compileCampaign(cs CampaignSpec) (*compiledCampaign, error) {
	if len(cs.Cells) == 0 {
		return nil, fmt.Errorf("campaign requires at least one cell")
	}
	if len(cs.Cells) > maxCampaignCells {
		return nil, fmt.Errorf("campaign has %d cells, maximum %d", len(cs.Cells), maxCampaignCells)
	}
	if len(cs.Name) > maxCampaignName {
		return nil, fmt.Errorf("campaign name longer than %d bytes", maxCampaignName)
	}
	cc := &compiledCampaign{spec: cs}

	switch strings.ToLower(cs.Policy) {
	case "":
		cc.spec.Policy = PolicyContinue
	case PolicyContinue, PolicyHalt:
		cc.spec.Policy = strings.ToLower(cs.Policy)
	default:
		return nil, fmt.Errorf("unknown policy %q (valid: continue, halt)", cs.Policy)
	}
	switch strings.ToLower(cs.Priority) {
	case "":
		cc.spec.Priority = ""
	case PriorityNameInteractive, PriorityNameBatch:
		cc.spec.Priority = strings.ToLower(cs.Priority)
	default:
		return nil, fmt.Errorf("unknown priority %q (valid: interactive, batch)", cs.Priority)
	}

	index := map[string]int{}
	for i, cell := range cs.Cells {
		if !validCellID(cell.ID) {
			return nil, fmt.Errorf("cell %d: invalid id %q (1-%d chars of [A-Za-z0-9._-])", i, cell.ID, maxCellIDLen)
		}
		if _, dup := index[cell.ID]; dup {
			return nil, fmt.Errorf("duplicate cell id %q", cell.ID)
		}
		index[cell.ID] = i
	}

	// Dependency edges: every referenced id exists, no self-edges, no
	// duplicate edges.
	indegree := make([]int, len(cs.Cells))
	dependents := make([][]int, len(cs.Cells))
	for i, cell := range cs.Cells {
		seen := map[string]bool{}
		for _, dep := range cell.After {
			di, ok := index[dep]
			if !ok {
				return nil, fmt.Errorf("cell %q depends on unknown cell %q", cell.ID, dep)
			}
			if di == i {
				return nil, fmt.Errorf("cell %q depends on itself", cell.ID)
			}
			if seen[dep] {
				return nil, fmt.Errorf("cell %q lists dependency %q twice", cell.ID, dep)
			}
			seen[dep] = true
			indegree[i]++
			dependents[di] = append(dependents[di], i)
		}
	}

	// Kahn's algorithm: if the topological order doesn't reach every
	// cell, the rest sit on a cycle.
	var ready []int
	for i, d := range indegree {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	processed := 0
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		processed++
		for _, d := range dependents[i] {
			indegree[d]--
			if indegree[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if processed < len(cs.Cells) {
		for i, d := range indegree {
			if d > 0 {
				return nil, fmt.Errorf("dependency cycle involving cell %q", cs.Cells[i].ID)
			}
		}
	}

	cc.cells = make([]compiledCell, len(cs.Cells))
	for i, cell := range cs.Cells {
		spec := cell.Spec
		if cc.spec.Priority != "" {
			spec.Priority = cc.spec.Priority
		}
		c, err := compile(spec)
		if err != nil {
			return nil, fmt.Errorf("cell %q: %v", cell.ID, err)
		}
		cc.cells[i] = compiledCell{id: cell.ID, after: cell.After, c: c}
		cc.spec.Cells[i].Spec = c.spec // journal the normalized form
	}
	return cc, nil
}

// campaign is one live (or restored) campaign. All mutable state is
// guarded by mu. Lock order: camp.mu may be held while taking s.mu or
// the scheduler's mutex, never the reverse.
type campaign struct {
	ID     string
	broker *broker // progress rollups for GET /campaigns/{id}/events

	mu        sync.Mutex
	name      string
	tenant    string
	policy    string
	priority  string
	state     string
	halted    bool // no further pending cells launch
	cancelled bool
	created   time.Time
	finished  time.Time
	order     []string
	cells     map[string]*campCell

	done, failed, skipped, collapsed int
}

type campCell struct {
	id         string
	after      []string
	spec       JobSpec // normalized
	key        string  // cache key, filled at launch
	state      string
	jobID      string
	errMsg     string
	collapsed  bool // answered by cache or single-flight dedup, not a fresh run
	remaining  int  // unmet dependencies
	dependents []string
}

// buildCampaign materializes a compiled campaign under an id (shared
// by fresh admission and journal rebuild). Not yet registered: nothing
// else can see it, so no locking here.
func buildCampaign(id string, cc *compiledCampaign, tenant string) *campaign {
	camp := &campaign{
		ID:       id,
		broker:   newBroker(),
		name:     cc.spec.Name,
		tenant:   tenant,
		policy:   cc.spec.Policy,
		priority: cc.spec.Priority,
		state:    campaignRunning,
		created:  time.Now(),
		cells:    map[string]*campCell{},
	}
	for _, cell := range cc.cells {
		camp.order = append(camp.order, cell.id)
		camp.cells[cell.id] = &campCell{
			id:        cell.id,
			after:     append([]string(nil), cell.after...),
			spec:      cell.c.spec,
			state:     cellPending,
			remaining: len(cell.after),
		}
	}
	for _, cell := range cc.cells {
		for _, dep := range cell.after {
			camp.cells[dep].dependents = append(camp.cells[dep].dependents, cell.id)
		}
	}
	fmt.Fprintf(camp.broker, "campaign created: %d cells, policy %s\n", len(camp.order), camp.policy)
	return camp
}

// registerCampaign installs a campaign in the registry under the next
// id and returns it.
func (s *Server) registerCampaign(cc *compiledCampaign, tenant string) *campaign {
	s.campMu.Lock()
	s.nextCamp++
	id := fmt.Sprintf("campaign-%d", s.nextCamp)
	camp := buildCampaign(id, cc, tenant)
	s.campaigns[id] = camp
	s.campOrder = append(s.campOrder, id)
	s.campMu.Unlock()
	return camp
}

// campaignJSON renders the normalized campaign spec for its journal
// record.
func campaignJSON(cs CampaignSpec) json.RawMessage {
	b, err := json.Marshal(cs)
	if err != nil {
		return nil
	}
	return b
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	cs, err := decodeCampaignSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cc, err := compileCampaign(cs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	tenant := s.sched.resolve(apiKeyFrom(r))
	if err := s.sched.admitCampaign(tenant, len(cc.cells)); err != nil {
		secs := 1
		var tl *tenantLimitedError
		if errors.As(err, &tl) {
			secs = retryAfterSeconds(tl.retryAfter)
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	camp := s.registerCampaign(cc, tenant)
	// Sync: losing this record would orphan the DAG — cell jobs would
	// requeue as plain jobs with nothing tracking their dependents.
	s.journalAppend(store.Record{Job: camp.ID, Campaign: camp.ID, State: campaignRunning, Spec: campaignJSON(cc.spec), Tenant: tenant, Priority: cc.spec.Priority}, true)
	s.launchReady(camp)
	writeJSON(w, http.StatusCreated, map[string]any{"campaign": s.campaignView(camp)})
}

// launchReady submits every launchable cell: pending, dependencies
// met, campaign not halted. Safe to call from any goroutine; the
// pending→queued transition under camp.mu makes launches single-shot.
func (s *Server) launchReady(camp *campaign) {
	for {
		camp.mu.Lock()
		if camp.state != campaignRunning {
			camp.mu.Unlock()
			return
		}
		var cell *campCell
		for _, id := range camp.order {
			cl := camp.cells[id]
			if cl.state == cellPending && cl.remaining == 0 && !camp.halted {
				cell = cl
				break
			}
		}
		if cell == nil {
			camp.mu.Unlock()
			return
		}
		cell.state = cellQueued // claimed; reverted on transient refusal
		spec := cell.spec
		tenant := camp.tenant
		cellID := cell.id
		camp.mu.Unlock()

		c, err := compile(spec)
		var key string
		if err == nil {
			key, err = c.cacheKey(s.cfg.Version)
		}
		if err != nil {
			// Unreachable for specs that compiled at admission; settle
			// rather than wedge the DAG if a future version disagrees.
			s.cellSettled(camp, cellID, false, fmt.Sprintf("unlaunchable cell spec: %v", err))
			continue
		}
		j, out, rerr := s.register(c, key, submission{tenant: tenant, priority: c.priority, campaign: camp.ID, cell: cellID})
		if rerr != nil {
			camp.mu.Lock()
			if cell.state == cellQueued {
				cell.state = cellPending
			}
			camp.mu.Unlock()
			if errors.Is(rerr, ErrQueueFull) || errors.Is(rerr, ErrBackpressure) {
				// Global pressure: the cells are already admitted, they
				// just wait for room.
				time.AfterFunc(campaignRetryDelay, func() { s.launchReady(camp) })
			}
			// Draining: the journaled campaign resumes on the next start.
			return
		}
		camp.mu.Lock()
		cell.key = key
		cell.jobID = j.ID
		cell.collapsed = out.Cached || out.Dedup
		camp.mu.Unlock()
		go s.watchCell(camp, cellID, j)
	}
}

// watchCell settles a cell when its job reaches a terminal state.
func (s *Server) watchCell(camp *campaign, cellID string, j *Job) {
	<-j.done
	v := j.snapshot()
	s.cellSettled(camp, cellID, v.State == StateDone, v.Error)
}

// cellSettled folds one cell's outcome into the campaign: done cells
// release their dependents, failed cells trigger the failure policy,
// and the last settled cell finalizes the campaign.
func (s *Server) cellSettled(camp *campaign, cellID string, ok bool, errMsg string) {
	camp.mu.Lock()
	cell := camp.cells[cellID]
	if cell == nil || cell.state == cellDone || cell.state == cellFailed || cell.state == cellSkipped {
		camp.mu.Unlock()
		return
	}
	newlyReady := false
	if ok {
		cell.state = cellDone
		camp.done++
		if cell.collapsed {
			camp.collapsed++
		}
		for _, d := range cell.dependents {
			dep := camp.cells[d]
			dep.remaining--
			if dep.remaining == 0 && dep.state == cellPending {
				newlyReady = true
			}
		}
	} else {
		cell.state = cellFailed
		cell.errMsg = errMsg
		camp.failed++
		s.skipUnreachableLocked(camp)
		if camp.policy == PolicyHalt {
			camp.halted = true
			s.skipPendingLocked(camp, fmt.Sprintf("halted: cell %q failed", cell.id))
		}
	}
	s.journalCellLocked(camp, cell)
	camp.rollupLocked(cell)
	terminal := camp.checkTerminalLocked()
	camp.mu.Unlock()
	if terminal {
		s.finalizeCampaign(camp)
		return
	}
	if newlyReady {
		s.launchReady(camp)
	}
}

// skipUnreachableLocked deterministically skips every pending cell
// with a failed or skipped dependency, to a fixpoint (transitive
// dependents of a failure can never launch). Spec order makes the skip
// sequence — and therefore the journal and the SSE rollup — identical
// on every run and every replay.
func (s *Server) skipUnreachableLocked(camp *campaign) {
	for changed := true; changed; {
		changed = false
		for _, id := range camp.order {
			cl := camp.cells[id]
			if cl.state != cellPending {
				continue
			}
			for _, dep := range cl.after {
				dst := camp.cells[dep].state
				if dst == cellFailed || dst == cellSkipped {
					cl.state = cellSkipped
					cl.errMsg = fmt.Sprintf("skipped: dependency %q did not complete", dep)
					camp.skipped++
					s.journalCellLocked(camp, cl)
					camp.rollupLocked(cl)
					changed = true
					break
				}
			}
		}
	}
}

// skipPendingLocked skips every still-pending cell (halt policy or
// cancellation). Already-launched cells are left to finish.
func (s *Server) skipPendingLocked(camp *campaign, reason string) {
	for _, id := range camp.order {
		cl := camp.cells[id]
		if cl.state != cellPending {
			continue
		}
		cl.state = cellSkipped
		cl.errMsg = reason
		camp.skipped++
		s.journalCellLocked(camp, cl)
		camp.rollupLocked(cl)
	}
}

// journalCellLocked records a cell's terminal state under the
// "<campaign>/<cell>" id namespace, so replay can rebuild DAG progress
// without re-deriving it from job records.
func (s *Server) journalCellLocked(camp *campaign, cell *campCell) {
	s.journalAppend(store.Record{
		Job:      camp.ID + "/" + cell.id,
		Campaign: camp.ID,
		Cell:     cell.id,
		Key:      cell.key,
		State:    cell.state,
		Error:    cell.errMsg,
		Cached:   cell.collapsed,
	}, false)
}

// rollupLocked emits one SSE progress line summarizing the campaign
// after a cell transition.
func (camp *campaign) rollupLocked(cell *campCell) {
	fmt.Fprintf(camp.broker, "cell %s %s (%d/%d done, %d failed, %d skipped, %d collapsed)\n",
		cell.id, cell.state, camp.done, len(camp.order), camp.failed, camp.skipped, camp.collapsed)
}

// checkTerminalLocked settles the campaign state once every cell is
// terminal. Reports whether the campaign just finished.
func (camp *campaign) checkTerminalLocked() bool {
	if camp.state != campaignRunning {
		return false
	}
	if camp.done+camp.failed+camp.skipped < len(camp.order) {
		return false
	}
	switch {
	case camp.cancelled:
		camp.state = campaignCancelled
	case camp.failed > 0 || camp.skipped > 0:
		camp.state = campaignFailed
	default:
		camp.state = campaignDone
	}
	camp.finished = time.Now()
	return true
}

// finalizeCampaign journals the terminal state (fsync'd — it ends the
// DAG's replay) and closes the rollup stream.
func (s *Server) finalizeCampaign(camp *campaign) {
	camp.mu.Lock()
	state := camp.state
	tenant := camp.tenant
	camp.mu.Unlock()
	s.journalAppend(store.Record{Job: camp.ID, Campaign: camp.ID, State: state, Tenant: tenant}, true)
	fmt.Fprintf(camp.broker, "campaign %s\n", state)
	camp.broker.close()
}

// CampaignView is the JSON shape of a campaign in API responses.
type CampaignView struct {
	ID       string     `json:"id"`
	Name     string     `json:"name,omitempty"`
	State    string     `json:"state"`
	Policy   string     `json:"policy"`
	Priority string     `json:"priority,omitempty"`
	Tenant   string     `json:"tenant,omitempty"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`

	Cells []CampaignCellView `json:"cells"`

	TotalCells     int `json:"total_cells"`
	DoneCells      int `json:"done_cells"`
	FailedCells    int `json:"failed_cells"`
	SkippedCells   int `json:"skipped_cells"`
	CollapsedCells int `json:"collapsed_cells"`
	// CacheCollapseRatio is collapsed over total: the fraction of the
	// DAG served without a fresh simulation run.
	CacheCollapseRatio float64 `json:"cache_collapse_ratio"`
}

// CampaignCellView is one cell in a campaign view.
type CampaignCellView struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	After     []string `json:"after,omitempty"`
	Job       string   `json:"job,omitempty"`
	Key       string   `json:"key,omitempty"`
	Error     string   `json:"error,omitempty"`
	Collapsed bool     `json:"collapsed,omitempty"`
}

// campaignView snapshots a campaign, upgrading queued cells whose job
// is already running.
func (s *Server) campaignView(camp *campaign) CampaignView {
	camp.mu.Lock()
	defer camp.mu.Unlock()
	v := CampaignView{
		ID:             camp.ID,
		Name:           camp.name,
		State:          camp.state,
		Policy:         camp.policy,
		Priority:       camp.priority,
		Tenant:         camp.tenant,
		Created:        camp.created,
		TotalCells:     len(camp.order),
		DoneCells:      camp.done,
		FailedCells:    camp.failed,
		SkippedCells:   camp.skipped,
		CollapsedCells: camp.collapsed,
	}
	if !camp.finished.IsZero() {
		t := camp.finished
		v.Finished = &t
	}
	if v.TotalCells > 0 {
		v.CacheCollapseRatio = float64(camp.collapsed) / float64(v.TotalCells)
	}
	for _, id := range camp.order {
		cl := camp.cells[id]
		cv := CampaignCellView{
			ID:        cl.id,
			State:     cl.state,
			After:     cl.after,
			Job:       cl.jobID,
			Key:       cl.key,
			Error:     cl.errMsg,
			Collapsed: cl.collapsed,
		}
		if cl.state == cellQueued && cl.jobID != "" {
			s.mu.Lock()
			j := s.jobs[cl.jobID]
			s.mu.Unlock()
			if j != nil && j.stateNow() == StateRunning {
				cv.State = string(StateRunning)
			}
		}
		v.Cells = append(v.Cells, cv)
	}
	return v
}

func (s *Server) lookupCampaign(w http.ResponseWriter, r *http.Request) *campaign {
	s.campMu.Lock()
	camp, ok := s.campaigns[r.PathValue("id")]
	s.campMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such campaign %q", r.PathValue("id")))
		return nil
	}
	return camp
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	s.campMu.Lock()
	ids := append([]string(nil), s.campOrder...)
	s.campMu.Unlock()
	views := make([]CampaignView, 0, len(ids))
	for _, id := range ids {
		s.campMu.Lock()
		camp := s.campaigns[id]
		s.campMu.Unlock()
		views = append(views, s.campaignView(camp))
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": views})
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	if camp := s.lookupCampaign(w, r); camp != nil {
		writeJSON(w, http.StatusOK, s.campaignView(camp))
	}
}

// handleCampaignEvents streams the campaign's rollup lines as SSE:
// full replay, then live rollups, then a terminal "state" event.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	camp := s.lookupCampaign(w, r)
	if camp == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live := camp.broker.subscribe()
	defer camp.broker.unsubscribe(live)
	for _, line := range replay {
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", line)
	}
	flusher.Flush()
	for {
		select {
		case line, ok := <-live:
			if !ok {
				camp.mu.Lock()
				state := camp.state
				camp.mu.Unlock()
				fmt.Fprintf(w, "event: state\ndata: %s\n\n", state)
				flusher.Flush()
				return
			}
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", line)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleCampaignCancel stops a campaign: pending cells skip, launched
// cells' jobs are aborted (their watchers settle them), and the
// campaign finalizes as cancelled once everything lands.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	camp := s.lookupCampaign(w, r)
	if camp == nil {
		return
	}
	camp.mu.Lock()
	if camp.state != campaignRunning {
		camp.mu.Unlock()
		writeJSON(w, http.StatusOK, s.campaignView(camp))
		return
	}
	camp.cancelled = true
	camp.halted = true
	s.skipPendingLocked(camp, "cancelled by client")
	var jobs []*Job
	for _, id := range camp.order {
		cl := camp.cells[id]
		if cl.state == cellQueued && cl.jobID != "" {
			s.mu.Lock()
			j := s.jobs[cl.jobID]
			s.mu.Unlock()
			if j != nil {
				jobs = append(jobs, j)
			}
		}
	}
	terminal := camp.checkTerminalLocked()
	camp.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j, "campaign cancelled")
	}
	if terminal {
		s.finalizeCampaign(camp)
	}
	writeJSON(w, http.StatusOK, s.campaignView(camp))
}

// campaignStat feeds the /metrics exposition.
type campaignStat struct {
	ID        string
	State     string
	Total     int
	Done      int
	Failed    int
	Skipped   int
	Collapsed int
}

// campaignStats snapshots every campaign in creation order.
func (s *Server) campaignStats() []campaignStat {
	s.campMu.Lock()
	ids := append([]string(nil), s.campOrder...)
	camps := make([]*campaign, 0, len(ids))
	for _, id := range ids {
		camps = append(camps, s.campaigns[id])
	}
	s.campMu.Unlock()
	out := make([]campaignStat, 0, len(camps))
	for _, camp := range camps {
		camp.mu.Lock()
		out = append(out, campaignStat{
			ID:        camp.ID,
			State:     camp.state,
			Total:     len(camp.order),
			Done:      camp.done,
			Failed:    camp.failed,
			Skipped:   camp.skipped,
			Collapsed: camp.collapsed,
		})
		camp.mu.Unlock()
	}
	return out
}

// --- journal rebuild -------------------------------------------------

// noteCampaignID keeps nextCamp ahead of every journaled campaign id.
func (s *Server) noteCampaignID(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "campaign-%d", &n); err == nil && n > s.nextCamp {
		s.nextCamp = n
	}
}

// rebuildCampaigns restores campaigns from their folded journal
// records. Runs inside Open, after the job pass (so requeued cell jobs
// are in the in-flight index) and before workers start.
func (s *Server) rebuildCampaigns(campRecs, cellRecs []store.Record) {
	cellsByCamp := map[string][]store.Record{}
	for _, r := range cellRecs {
		cellsByCamp[r.Campaign] = append(cellsByCamp[r.Campaign], r)
	}
	for _, r := range campRecs {
		s.noteCampaignID(r.Job)
		s.rebuildCampaign(r, cellsByCamp[r.Job])
	}
}

// rebuildCampaign restores one campaign: recompile the journaled spec,
// apply recorded cell outcomes, reattach live cells to requeued jobs
// or the result cache, re-derive skips, and resume launching. The
// campaign is registered only once fully built, so no locking is
// needed while assembling it.
func (s *Server) rebuildCampaign(r store.Record, cellRecs []store.Record) {
	install := func(camp *campaign) {
		s.campMu.Lock()
		s.campaigns[camp.ID] = camp
		s.campOrder = append(s.campOrder, camp.ID)
		s.campMu.Unlock()
	}

	var cs CampaignSpec
	var cc *compiledCampaign
	err := json.Unmarshal(r.Spec, &cs)
	if err == nil {
		cc, err = compileCampaign(cs)
	}
	if err != nil {
		// Unreplayable DAG: restore a terminal stub so the id and the
		// failure stay visible instead of silently vanishing.
		camp := &campaign{ID: r.Job, broker: newBroker(), tenant: r.Tenant, policy: PolicyContinue,
			state: campaignFailed, created: time.Now(), cells: map[string]*campCell{}}
		fmt.Fprintf(camp.broker, "unreplayable campaign spec: %v\n", err)
		camp.broker.close()
		install(camp)
		return
	}

	camp := buildCampaign(r.Job, cc, r.Tenant)

	// Recorded cell outcomes first.
	for _, cr := range cellRecs {
		cell := camp.cells[cr.Cell]
		if cell == nil || cell.state != cellPending {
			continue
		}
		switch cr.State {
		case cellDone:
			cell.state = cellDone
			cell.key = cr.Key
			cell.collapsed = cr.Cached
			camp.done++
			if cr.Cached {
				camp.collapsed++
			}
			for _, d := range cell.dependents {
				camp.cells[d].remaining--
			}
		case cellFailed:
			cell.state = cellFailed
			cell.errMsg = cr.Error
			camp.failed++
		case cellSkipped:
			cell.state = cellSkipped
			cell.errMsg = cr.Error
			camp.skipped++
		}
	}

	if r.State != campaignRunning {
		// Terminal campaign: view-only restore.
		camp.state = r.State
		camp.cancelled = r.State == campaignCancelled
		camp.finished = camp.created
		camp.broker.close()
		install(camp)
		return
	}

	// Re-derive policy consequences (skip records may predate a crash).
	if camp.policy == PolicyHalt && camp.failed > 0 {
		camp.halted = true
	}
	s.skipUnreachableLocked(camp)
	if camp.halted {
		s.skipPendingLocked(camp, "halted: a cell failed before restart")
	}

	// Reattach in-flight cells: a requeued job (by cache key) keeps the
	// cell queued; a cached result settles it as collapsed; otherwise
	// the cell waits for launchReady.
	type watch struct {
		cellID string
		j      *Job
	}
	var watches []watch
	for _, id := range camp.order {
		cell := camp.cells[id]
		if cell.state != cellPending {
			continue
		}
		c, err := compile(cell.spec)
		if err != nil {
			continue // launchReady settles it as unlaunchable
		}
		key, err := c.cacheKey(s.cfg.Version)
		if err != nil {
			continue
		}
		if j, ok := s.inflight[key]; ok {
			cell.state = cellQueued
			cell.key = key
			cell.jobID = j.ID
			watches = append(watches, watch{cellID: id, j: j})
			continue
		}
		if cell.remaining == 0 && !camp.halted {
			if _, ok := s.cacheGet(key); ok {
				cell.state = cellDone
				cell.key = key
				cell.collapsed = true
				camp.done++
				camp.collapsed++
				for _, d := range cell.dependents {
					camp.cells[d].remaining--
				}
				s.journalCellLocked(camp, cell)
				camp.rollupLocked(cell)
			}
		}
	}
	terminal := camp.checkTerminalLocked()
	install(camp)
	for _, wt := range watches {
		go s.watchCell(camp, wt.cellID, wt.j)
	}
	if terminal {
		s.finalizeCampaign(camp)
		return
	}
	s.launchReady(camp)
}

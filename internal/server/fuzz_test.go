package server

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the full submit-side parse/validate/hash pipeline
// with arbitrary bodies. The contract under fuzz: malformed JSON and
// absurd specs (huge node or token counts, wild rates) must return an
// error — never panic, and never produce a spec that compile accepts but
// cacheKey cannot hash.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		runSpecBody,
		`{"kind":"static","kernels":["CG","MG"],"nodes":4}`,
		`{"kind":"scaling","kernel":"CG","node_counts":[2,4,8]}`,
		`{"kind":"scaling","kernel":"CG","node_counts":[100]}`,
		`{"kind":"tokens","kernel":"CG","token_counts":[0,1,2]}`,
		`{"kind":"tokens","kernel":"CG","token_counts":[9999999]}`,
		`{"kind":"chaos","kernels":["CG"],"faults":{"seed":7,"rates":[0.5]}}`,
		`{"kind":"tasks"}`,
		`{"kind":"tasks","node_counts":[2,4],"cutoffs":[2,4]}`,
		`{"kind":"tasks","cutoffs":[99]}`,
		`{"kind":"tasks","node_counts":[0]}`,
		`{"kind":"tasks","kernel":"CG"}`,
		`{"kind":"tasks","faults":{"seed":1,"rate":0.5}}`,
		`{"kind":"run","kernel":"CG","faults":{"seed":1,"rate":0.3,"classes":["token"]}}`,
		`{"kind":"run","kernel":"CG","tokens":-5}`,
		`{"kind":"run","kernel":"CG","nodes":1000000000}`,
		`{"kind":"run","kernel":"CG","params":{"nodes":64}}`,
		`{"kind":"run","kernel":"CG"} trailing`,
		`{"faults":{"rate":1e308}}`,
		`not json`,
		`{}`,
		`[]`,
		`{"kind":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := decodeSpec(strings.NewReader(body))
		if err != nil {
			return // rejected cleanly
		}
		c, err := compile(spec)
		if err != nil {
			return // rejected cleanly
		}
		if _, err := c.cacheKey("fuzz"); err != nil {
			t.Fatalf("compiled spec failed to hash: %v (body %q)", err, body)
		}
	})
}

// FuzzCampaignSpec drives the campaign decode/compile pipeline with
// arbitrary bodies. The contract: malformed edges, cycles, bad ids and
// absurd cell specs must return an error — never panic — and a spec
// that compiles must recompile from its own normalized form (the shape
// the journal replays after a crash).
func FuzzCampaignSpec(f *testing.F) {
	seeds := []string{
		`{"cells":[{"id":"a","spec":{"kind":"run","kernel":"CG","nodes":4}}]}`,
		`{"name":"sweep","policy":"halt","priority":"batch","cells":[{"id":"a","spec":{"kind":"run","kernel":"CG"}},{"id":"b","after":["a"],"spec":{"kind":"run","kernel":"MG"}}]}`,
		`{"policy":"continue","cells":[{"id":"a","after":["b"],"spec":{"kind":"run","kernel":"CG"}},{"id":"b","after":["a"],"spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a","after":["a"],"spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a","after":["ghost"],"spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a/b","spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a","spec":{"kind":"run","kernel":"CG"}},{"id":"a","spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a","after":["b","b"],"spec":{"kind":"run","kernel":"CG"}},{"id":"b","spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"policy":"explode","cells":[{"id":"a","spec":{"kind":"run","kernel":"CG"}}]}`,
		`{"cells":[{"id":"a","spec":{"kind":"run","kernel":"CG","nodes":1000000}}]}`,
		`{"cells":[]}`,
		`{"cells":[{"id":"a","spec":{"kind":"run","kernel":"CG"}}]} trailing`,
		`{"cellz":[]}`,
		`not json`,
		`{}`,
		`[]`,
		`{"cells":`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		cs, err := decodeCampaignSpec(strings.NewReader(body))
		if err != nil {
			return // rejected cleanly
		}
		cc, err := compileCampaign(cs)
		if err != nil {
			return // rejected cleanly
		}
		// The normalized spec is what the journal stores; replay must be
		// able to recompile it verbatim.
		norm := campaignJSON(cc.spec)
		if norm == nil {
			t.Fatalf("compiled campaign failed to marshal (body %q)", body)
		}
		cs2, err := decodeCampaignSpec(strings.NewReader(string(norm)))
		if err != nil {
			t.Fatalf("normalized campaign failed to decode: %v (body %q)", err, body)
		}
		if _, err := compileCampaign(cs2); err != nil {
			t.Fatalf("normalized campaign failed to recompile: %v (body %q)", err, body)
		}
	})
}

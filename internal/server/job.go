package server

import (
	"context"
	"sync"
	"time"
)

// State is a job's lifecycle position. queued → running → done|failed;
// a queued job cancelled before a worker picks it up goes straight to
// failed.
type State string

// Job states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one submitted simulation job. All mutable fields are guarded by
// mu; the done channel closes exactly once when the job reaches a
// terminal state, which is what waiters (HTTP result polls, Shutdown,
// tests) select on.
type Job struct {
	ID  string
	Key string // cache key (sha256 hex)

	// Admission identity, immutable after registration: the tenant the
	// job queues under, its priority class, and — for campaign cells —
	// the campaign and cell it executes.
	tenant   string
	priority int
	campaign string
	cell     string

	mu       sync.Mutex
	spec     JobSpec // normalized
	state    State
	errMsg   string
	cached   bool // result served from cache without a run
	attempts int  // times handed to the queue (1 on first submission)
	restored bool // rehydrated from the journal at startup
	created  time.Time
	started  time.Time
	finished time.Time
	result   []byte
	cancel   context.CancelFunc // non-nil while running

	broker *broker
	done   chan struct{}
}

func newJob(id, key string, spec JobSpec, state State) *Job {
	return &Job{
		ID:       id,
		Key:      key,
		spec:     spec,
		state:    state,
		attempts: 1,
		created:  time.Now(),
		broker:   newBroker(),
		done:     make(chan struct{}),
	}
}

// snapshot returns a consistent copy of the mutable state.
func (j *Job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Key:      j.Key,
		State:    j.state,
		Error:    j.errMsg,
		Cached:   j.cached,
		Attempts: j.attempts,
		Restored: j.restored,
		Created:  j.created,
		Spec:     j.spec,
		Tenant:   j.tenant,
		Campaign: j.campaign,
		Cell:     j.cell,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// tryStart moves queued → running and installs the cancel hook; it
// refuses if the job left the queued state (e.g. cancelled while
// waiting).
func (j *Job) tryStart(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state. It is a no-op if the job
// already terminated (a cancelled queued job may race its worker).
func (j *Job) finish(result []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return false
	}
	if errMsg == "" {
		j.state = StateDone
		j.result = result
	} else {
		j.state = StateFailed
		j.errMsg = errMsg
	}
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	return true
}

// abort cancels the job: queued jobs fail immediately, running jobs get
// their context cancelled (the runner aborts remaining cells and the
// worker then fails the job). Terminal jobs are left alone.
func (j *Job) abort(reason string) (State, bool) {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateFailed
		j.errMsg = reason
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		return StateFailed, true
	}
	if j.state == StateRunning && j.cancel != nil {
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return StateRunning, true
	}
	st := j.state
	j.mu.Unlock()
	return st, false
}

// stateNow reads the current state.
func (j *Job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// resultBytes returns the result if the job is done.
func (j *Job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// JobView is the JSON shape of a job in API responses.
type JobView struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Key      string     `json:"key"`
	Cached   bool       `json:"cached"`
	Attempts int        `json:"attempts"`
	Restored bool       `json:"restored,omitempty"`
	Tenant   string     `json:"tenant,omitempty"`
	Campaign string     `json:"campaign,omitempty"`
	Cell     string     `json:"cell,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Spec     JobSpec    `json:"spec"`
}

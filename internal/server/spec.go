package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
)

// CacheKeyVersion is the code-version component of every cache key. Bump
// it whenever a change alters simulation results or rendered output for
// an unchanged spec (new machine parameter, timing-model fix, table
// format change) — stale cached bytes must stop matching.
// slipd-2: fault injection hooks in the machine/core/omp layers.
// slipd-3: task-based scheduling study (kind "tasks", work-stealing deques).
const CacheKeyVersion = "slipd-3"

// Job kinds, mirroring the CLI surface: a single kernel run, the paper's
// static/dynamic suites, the fixed-size scaling study, the A–R token
// sweep, the synthetic-workload characterization, the chaos suite
// (fault-rate sweep with verification forced on), and the tasking study
// (task tree vs loop baseline over a team × cut-off grid).
const (
	KindRun          = "run"
	KindStatic       = "static"
	KindDynamic      = "dynamic"
	KindScaling      = "scaling"
	KindTokens       = "tokens"
	KindCharacterize = "characterize"
	KindChaos        = "chaos"
	KindTasks        = "tasks"
)

// Validation bounds that keep absurd specs from reaching the simulator:
// machine.New accepts 1..64 nodes, and token/rate sweeps beyond these
// sizes would only ever be a typo or a fuzzer.
const (
	maxNodeCount     = 64
	maxTokenCount    = 1024
	maxChaosRates    = 32
	defaultChaosSeed = 42
)

// defaultChaosRates is the sweep used when a chaos spec omits rates.
var defaultChaosRates = []float64{0, 0.01, 0.05, 0.2}

// Default grid for the tasking study when the spec omits the axes (fresh
// slices per call: compile mutates the spec's copies).
func defaultTaskTeams() []int   { return []int{2, 4, 8} }
func defaultTaskCutoffs() []int { return []int{2, 4, 6, 8} }

// JobSpec is the POST /jobs request body. String fields use the same
// vocabulary as the slipsim/sweep CLI flags, parsed by the same shared
// parsers, so anything expressible on the command line is expressible as
// a job. Omitted fields take documented defaults; unknown fields are
// rejected.
type JobSpec struct {
	Kind string `json:"kind"`

	// Priority selects the scheduling class: "interactive" (single
	// probes that preempt queued bulk work) or "batch". Empty defaults
	// by kind — "run" is interactive, every suite kind is batch.
	// Deliberately NOT part of the cache key: priority changes when a
	// job runs, never what it produces.
	Priority string `json:"priority,omitempty"`

	// Single-run fields (kind "run"; Kernel also selects the scaling and
	// token-sweep subject).
	Kernel string `json:"kernel,omitempty"`
	Mode   string `json:"mode,omitempty"`   // single|double|slipstream (default slipstream)
	Sync   string `json:"sync,omitempty"`   // GLOBAL_SYNC|LOCAL_SYNC|NONE (default GLOBAL_SYNC)
	Tokens int    `json:"tokens,omitempty"` // initial token count
	Sched  string `json:"sched,omitempty"`  // static|dynamic|guided (default static)
	Chunk  int    `json:"chunk,omitempty"`  // 0 = kernel default for dynamic/guided

	// Shared fields.
	Scale          string   `json:"scale,omitempty"`   // test|small|paper (default test)
	Nodes          int      `json:"nodes,omitempty"`   // default 16
	Kernels        []string `json:"kernels,omitempty"` // suite filter; empty = all
	SelfInvalidate bool     `json:"self_invalidate,omitempty"`
	Verify         *bool    `json:"verify,omitempty"` // default true

	// Study fields.
	NodeCounts  []int `json:"node_counts,omitempty"`  // kinds "scaling", "tasks" (team sizes)
	TokenCounts []int `json:"token_counts,omitempty"` // kind "tokens"
	Cutoffs     []int `json:"cutoffs,omitempty"`      // kind "tasks" (tree cut-off depths)

	// Faults arms a deterministic fault plan. Kind "run" takes seed, rate,
	// and classes; kind "chaos" takes seed, rates (the sweep), and classes.
	// Other kinds reject the block.
	Faults *FaultSpec `json:"faults,omitempty"`

	// Params optionally overrides the simulated machine, in the canonical
	// machine.Params encoding (all fields present). Absent = Table 1
	// defaults.
	Params json.RawMessage `json:"params,omitempty"`
}

// FaultSpec is the faults block of a job spec. Seed 0 means the default
// seed; an empty class list arms every class.
type FaultSpec struct {
	Seed    uint64    `json:"seed,omitempty"`
	Rate    float64   `json:"rate,omitempty"`    // kind "run" only
	Rates   []float64 `json:"rates,omitempty"`   // kind "chaos" only
	Classes []string  `json:"classes,omitempty"` // subset of faults.ClassNames()
}

// compiledSpec is a validated, normalized spec with every string resolved
// to its typed value, ready to execute and to hash.
type compiledSpec struct {
	spec     JobSpec // normalized copy (canonical casing, defaults applied)
	priority int     // resolved scheduling class
	scale    npb.Scale
	opts  experiments.Options // canonical options for the suite kinds
	mode  core.Mode
	sync  core.Config
	sched omp.Schedule

	faults     *faults.Config // armed plan (nil = no faults); Rate 0 for chaos
	chaosRates []float64      // kind "chaos": normalized sweep (sorted, 0 included)
}

// label names the metrics series for this spec: the kernel for
// single-subject kinds, the kind for suites.
func (c *compiledSpec) label() string {
	switch c.spec.Kind {
	case KindRun, KindScaling, KindTokens:
		return c.spec.Kernel
	}
	return c.spec.Kind
}

// compile validates a spec, applies defaults, and normalizes casing. All
// user errors surface here as 400s; execution only sees valid specs.
func compile(s JobSpec) (*compiledSpec, error) {
	c := &compiledSpec{spec: s}

	if s.Scale == "" {
		c.spec.Scale = "test"
	}
	scale, err := npb.ParseScale(c.spec.Scale)
	if err != nil {
		return nil, err
	}
	c.scale = scale
	c.spec.Scale = scale.String()

	if s.Nodes == 0 {
		c.spec.Nodes = 16
	} else if s.Nodes < 0 {
		return nil, fmt.Errorf("nodes %d invalid", s.Nodes)
	}

	verify := true
	if s.Verify != nil {
		verify = *s.Verify
	}
	c.spec.Verify = &verify

	opts := experiments.Options{
		Nodes:          c.spec.Nodes,
		Scale:          scale,
		Kernels:        s.Kernels,
		SelfInvalidate: s.SelfInvalidate,
		Verify:         verify,
	}
	if len(s.Params) > 0 {
		p, err := machine.ParamsFromCanonicalJSON(s.Params)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		opts.Params = &p
	}
	c.opts = opts.Canonical()
	if err := c.opts.Params.Validate(); err != nil {
		return nil, err
	}
	c.spec.Kernels = c.opts.Kernels
	// Re-encode the resolved machine into the normalized spec so two
	// specs describing the same machine (explicit defaults vs. omitted)
	// normalize identically.
	pj, err := c.opts.Params.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	c.spec.Params = pj

	needKernel := func() error {
		if c.spec.Kernel == "" {
			return fmt.Errorf("kind %q requires a kernel", c.spec.Kind)
		}
		k, err := npb.ByName(strings.ToUpper(c.spec.Kernel))
		if err != nil {
			return err
		}
		c.spec.Kernel = k.Name
		return nil
	}

	switch s.Kind {
	case KindRun:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if c.spec.Mode == "" {
			c.spec.Mode = "slipstream"
		}
		if c.mode, err = experiments.ParseMode(c.spec.Mode); err != nil {
			return nil, err
		}
		c.spec.Mode = modeName(c.mode)
		if c.spec.Sync == "" {
			c.spec.Sync = "GLOBAL_SYNC"
		}
		if c.spec.Tokens < 0 || c.spec.Tokens > maxTokenCount {
			return nil, fmt.Errorf("tokens %d outside [0, %d]", c.spec.Tokens, maxTokenCount)
		}
		if c.sync, err = experiments.ParseSync(c.spec.Sync, c.spec.Tokens); err != nil {
			return nil, err
		}
		c.spec.Sync = strings.ToUpper(c.spec.Sync)
		c.spec.Tokens = c.sync.Tokens // NONE zeroes the count
		if c.spec.Sched == "" {
			c.spec.Sched = "static"
		}
		if c.sched, err = experiments.ParseSched(c.spec.Sched); err != nil {
			return nil, err
		}
		c.spec.Sched = c.sched.String()
		if c.spec.Chunk < 0 {
			return nil, fmt.Errorf("chunk %d invalid", c.spec.Chunk)
		}
		if err := c.compileRunFaults(s.Faults); err != nil {
			return nil, err
		}
	case KindStatic, KindDynamic, KindCharacterize:
		if c.spec.Kernel != "" {
			return nil, fmt.Errorf("kind %q takes a kernels filter, not kernel", s.Kind)
		}
	case KindScaling:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if err := validateCounts(s.NodeCounts, 1, maxNodeCount, "node_counts"); err != nil {
			return nil, err
		}
	case KindTokens:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if err := validateCounts(s.TokenCounts, 0, maxTokenCount, "token_counts"); err != nil {
			return nil, err
		}
	case KindChaos:
		if c.spec.Kernel != "" {
			return nil, fmt.Errorf("kind %q takes a kernels filter, not kernel", s.Kind)
		}
		if err := c.compileChaosFaults(s.Faults); err != nil {
			return nil, err
		}
	case KindTasks:
		if c.spec.Kernel != "" || len(c.spec.Kernels) > 0 {
			return nil, fmt.Errorf("kind %q runs the fixed TREE/TREEL pair; it takes no kernel", s.Kind)
		}
		if len(c.spec.NodeCounts) == 0 {
			c.spec.NodeCounts = defaultTaskTeams()
		}
		if err := validateCounts(c.spec.NodeCounts, 1, maxNodeCount, "node_counts"); err != nil {
			return nil, err
		}
		if len(c.spec.Cutoffs) == 0 {
			c.spec.Cutoffs = defaultTaskCutoffs()
		}
		if err := validateCounts(c.spec.Cutoffs, 0, npb.MaxTreeCutoff, "cutoffs"); err != nil {
			return nil, err
		}
	case "":
		return nil, fmt.Errorf("missing kind (valid: run, static, dynamic, scaling, tokens, characterize, chaos, tasks)")
	default:
		return nil, fmt.Errorf("unknown kind %q (valid: run, static, dynamic, scaling, tokens, characterize, chaos, tasks)", s.Kind)
	}
	if s.Faults != nil && s.Kind != KindRun && s.Kind != KindChaos {
		return nil, fmt.Errorf("kind %q does not take a faults block", s.Kind)
	}

	// Scheduling class: explicit, or defaulted by kind (a single run is
	// an interactive probe; every suite is bulk work).
	switch strings.ToLower(s.Priority) {
	case "":
		if s.Kind == KindRun {
			c.spec.Priority = PriorityNameInteractive
		} else {
			c.spec.Priority = PriorityNameBatch
		}
	case PriorityNameInteractive, PriorityNameBatch:
		c.spec.Priority = strings.ToLower(s.Priority)
	default:
		return nil, fmt.Errorf("unknown priority %q (valid: interactive, batch)", s.Priority)
	}
	c.priority = PriorityValue(c.spec.Priority)

	// Validate the suite filter eagerly so a bad name 400s at submit.
	if len(c.spec.Kernels) > 0 {
		for _, name := range c.spec.Kernels {
			if _, err := npb.ByName(name); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// validateCounts applies the same rules as the sweep CLI: at least one
// value, each inside [min, max], no duplicates. The upper bound keeps
// absurd counts from reaching machine.New, which enforces its limits by
// panicking.
func validateCounts(counts []int, min, max int, field string) error {
	if len(counts) == 0 {
		return fmt.Errorf("kind requires non-empty %s", field)
	}
	seen := map[int]bool{}
	for _, n := range counts {
		if n < min {
			return fmt.Errorf("%s value %d is below the minimum %d", field, n, min)
		}
		if n > max {
			return fmt.Errorf("%s value %d is above the maximum %d", field, n, max)
		}
		if seen[n] {
			return fmt.Errorf("duplicate %s value %d", field, n)
		}
		seen[n] = true
	}
	return nil
}

// compileFaultClasses parses and canonicalizes a class-name list: sorted
// by class, deduplicated, canonical spellings.
func compileFaultClasses(names []string) ([]faults.Class, []string, error) {
	if len(names) == 0 {
		return nil, nil, nil
	}
	seen := map[faults.Class]bool{}
	var classes []faults.Class
	for _, name := range names {
		cl, err := faults.ParseClass(name)
		if err != nil {
			return nil, nil, err
		}
		if !seen[cl] {
			seen[cl] = true
			classes = append(classes, cl)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	canon := make([]string, len(classes))
	for i, cl := range classes {
		canon[i] = cl.String()
	}
	return classes, canon, nil
}

// compileRunFaults validates and normalizes the faults block of a "run"
// spec. A rate-zero block normalizes to no block at all, so the two
// spellings share a cache key.
func (c *compiledSpec) compileRunFaults(fs *FaultSpec) error {
	if fs == nil {
		return nil
	}
	if len(fs.Rates) > 0 {
		return fmt.Errorf("kind %q takes faults.rate, not faults.rates", KindRun)
	}
	classes, canon, err := compileFaultClasses(fs.Classes)
	if err != nil {
		return err
	}
	cfg := faults.Config{Seed: fs.Seed, Rate: fs.Rate, Classes: classes}
	if cfg.Seed == 0 {
		cfg.Seed = defaultChaosSeed
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Rate == 0 {
		c.spec.Faults = nil
		return nil
	}
	c.faults = &cfg
	c.spec.Faults = &FaultSpec{Seed: cfg.Seed, Rate: cfg.Rate, Classes: canon}
	return nil
}

// compileChaosFaults validates and normalizes the faults block of a
// "chaos" spec: defaults applied, rates sorted, deduplicated, and the
// fault-free baseline rate 0 included — the same normalization the chaos
// runner performs, so the canonical spec matches the rendered sweep.
func (c *compiledSpec) compileChaosFaults(fs *FaultSpec) error {
	if fs == nil {
		fs = &FaultSpec{}
	}
	if fs.Rate != 0 {
		return fmt.Errorf("kind %q sweeps faults.rates, not faults.rate", KindChaos)
	}
	if len(fs.Rates) > maxChaosRates {
		return fmt.Errorf("faults.rates has %d entries, maximum %d", len(fs.Rates), maxChaosRates)
	}
	classes, canon, err := compileFaultClasses(fs.Classes)
	if err != nil {
		return err
	}
	cfg := faults.Config{Seed: fs.Seed, Classes: classes}
	if cfg.Seed == 0 {
		cfg.Seed = defaultChaosSeed
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	rates := fs.Rates
	if len(rates) == 0 {
		rates = defaultChaosRates
	}
	seen := map[float64]bool{0: true}
	norm := []float64{0}
	for _, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults.rates value %g outside [0, 1]", r)
		}
		if !seen[r] {
			seen[r] = true
			norm = append(norm, r)
		}
	}
	sort.Float64s(norm)
	c.faults = &cfg
	c.chaosRates = norm
	c.spec.Faults = &FaultSpec{Seed: cfg.Seed, Rates: norm, Classes: canon}
	return nil
}

// canonKey is the frozen hashing shape (alphabetical field order, no
// omitempty: absent and zero must hash identically forever).
type canonKey struct {
	Chunk       int             `json:"chunk"`
	Cutoffs     []int           `json:"cutoffs"`
	Faults      faultsKey       `json:"faults"`
	Kernel      string          `json:"kernel"`
	Kind        string          `json:"kind"`
	Mode        string          `json:"mode"`
	NodeCounts  []int           `json:"node_counts"`
	Options     json.RawMessage `json:"options"`
	Sched       string          `json:"sched"`
	Sync        string          `json:"sync"`
	TokenCounts []int           `json:"token_counts"`
	Tokens      int             `json:"tokens"`
	Version     string          `json:"version"`
}

// faultsKey is the canonical hashed form of a fault plan. The zero value
// (no faults) hashes identically whether the block was absent or spelled
// out with rate 0.
type faultsKey struct {
	Classes []string  `json:"classes"`
	Rate    float64   `json:"rate"`
	Rates   []float64 `json:"rates"`
	Seed    uint64    `json:"seed"`
}

// faultsKeyOf builds the canonical fault member from the compiled plan.
func (c *compiledSpec) faultsKeyOf() faultsKey {
	k := faultsKey{Classes: []string{}, Rates: []float64{}}
	if c.faults == nil {
		return k
	}
	k.Seed = c.faults.Seed
	k.Rate = c.faults.Rate
	for _, cl := range c.faults.Classes {
		k.Classes = append(k.Classes, cl.String())
	}
	k.Rates = append(k.Rates, c.chaosRates...)
	return k
}

// cacheKey hashes the canonical form of the spec plus the code version.
// Determinism makes this sound: two specs with equal keys run the same
// simulation on the same code and therefore produce identical bytes.
func (c *compiledSpec) cacheKey(version string) (string, error) {
	oj, err := c.opts.CanonicalJSON()
	if err != nil {
		return "", err
	}
	nodeCounts := append([]int(nil), c.spec.NodeCounts...)
	sort.Ints(nodeCounts)
	tokenCounts := append([]int(nil), c.spec.TokenCounts...)
	sort.Ints(tokenCounts)
	cutoffs := append([]int(nil), c.spec.Cutoffs...)
	sort.Ints(cutoffs)
	data, err := json.Marshal(canonKey{
		Chunk:       c.spec.Chunk,
		Cutoffs:     emptyNotNil(cutoffs),
		Faults:      c.faultsKeyOf(),
		Kernel:      c.spec.Kernel,
		Kind:        c.spec.Kind,
		Mode:        c.spec.Mode,
		NodeCounts:  emptyNotNil(nodeCounts),
		Options:     oj,
		Sched:       c.spec.Sched,
		Sync:        c.spec.Sync,
		TokenCounts: emptyNotNil(tokenCounts),
		Tokens:      c.spec.Tokens,
		Version:     version,
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// emptyNotNil keeps nil and empty slices hashing identically ([]).
func emptyNotNil(xs []int) []int {
	if xs == nil {
		return []int{}
	}
	return xs
}

// decodeSpec parses a request body strictly: unknown fields and trailing
// data are rejected so typos fail loudly instead of running a default.
func decodeSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return JobSpec{}, fmt.Errorf("trailing data after job spec")
	}
	return s, nil
}

// modeName renders a mode the way ParseMode accepts it.
func modeName(m core.Mode) string {
	switch m {
	case core.ModeSingle:
		return "single"
	case core.ModeDouble:
		return "double"
	default:
		return "slipstream"
	}
}

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
)

// CacheKeyVersion is the code-version component of every cache key. Bump
// it whenever a change alters simulation results or rendered output for
// an unchanged spec (new machine parameter, timing-model fix, table
// format change) — stale cached bytes must stop matching.
const CacheKeyVersion = "slipd-1"

// Job kinds, mirroring the CLI surface: a single kernel run, the paper's
// static/dynamic suites, the fixed-size scaling study, the A–R token
// sweep, and the synthetic-workload characterization.
const (
	KindRun          = "run"
	KindStatic       = "static"
	KindDynamic      = "dynamic"
	KindScaling      = "scaling"
	KindTokens       = "tokens"
	KindCharacterize = "characterize"
)

// JobSpec is the POST /jobs request body. String fields use the same
// vocabulary as the slipsim/sweep CLI flags, parsed by the same shared
// parsers, so anything expressible on the command line is expressible as
// a job. Omitted fields take documented defaults; unknown fields are
// rejected.
type JobSpec struct {
	Kind string `json:"kind"`

	// Single-run fields (kind "run"; Kernel also selects the scaling and
	// token-sweep subject).
	Kernel string `json:"kernel,omitempty"`
	Mode   string `json:"mode,omitempty"`   // single|double|slipstream (default slipstream)
	Sync   string `json:"sync,omitempty"`   // GLOBAL_SYNC|LOCAL_SYNC|NONE (default GLOBAL_SYNC)
	Tokens int    `json:"tokens,omitempty"` // initial token count
	Sched  string `json:"sched,omitempty"`  // static|dynamic|guided (default static)
	Chunk  int    `json:"chunk,omitempty"`  // 0 = kernel default for dynamic/guided

	// Shared fields.
	Scale          string   `json:"scale,omitempty"`   // test|small|paper (default test)
	Nodes          int      `json:"nodes,omitempty"`   // default 16
	Kernels        []string `json:"kernels,omitempty"` // suite filter; empty = all
	SelfInvalidate bool     `json:"self_invalidate,omitempty"`
	Verify         *bool    `json:"verify,omitempty"` // default true

	// Study fields.
	NodeCounts  []int `json:"node_counts,omitempty"`  // kind "scaling"
	TokenCounts []int `json:"token_counts,omitempty"` // kind "tokens"

	// Params optionally overrides the simulated machine, in the canonical
	// machine.Params encoding (all fields present). Absent = Table 1
	// defaults.
	Params json.RawMessage `json:"params,omitempty"`
}

// compiledSpec is a validated, normalized spec with every string resolved
// to its typed value, ready to execute and to hash.
type compiledSpec struct {
	spec  JobSpec // normalized copy (canonical casing, defaults applied)
	scale npb.Scale
	opts  experiments.Options // canonical options for the suite kinds
	mode  core.Mode
	sync  core.Config
	sched omp.Schedule
}

// label names the metrics series for this spec: the kernel for
// single-subject kinds, the kind for suites.
func (c *compiledSpec) label() string {
	switch c.spec.Kind {
	case KindRun, KindScaling, KindTokens:
		return c.spec.Kernel
	}
	return c.spec.Kind
}

// compile validates a spec, applies defaults, and normalizes casing. All
// user errors surface here as 400s; execution only sees valid specs.
func compile(s JobSpec) (*compiledSpec, error) {
	c := &compiledSpec{spec: s}

	if s.Scale == "" {
		c.spec.Scale = "test"
	}
	scale, err := npb.ParseScale(c.spec.Scale)
	if err != nil {
		return nil, err
	}
	c.scale = scale
	c.spec.Scale = scale.String()

	if s.Nodes == 0 {
		c.spec.Nodes = 16
	} else if s.Nodes < 0 {
		return nil, fmt.Errorf("nodes %d invalid", s.Nodes)
	}

	verify := true
	if s.Verify != nil {
		verify = *s.Verify
	}
	c.spec.Verify = &verify

	opts := experiments.Options{
		Nodes:          c.spec.Nodes,
		Scale:          scale,
		Kernels:        s.Kernels,
		SelfInvalidate: s.SelfInvalidate,
		Verify:         verify,
	}
	if len(s.Params) > 0 {
		p, err := machine.ParamsFromCanonicalJSON(s.Params)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		opts.Params = &p
	}
	c.opts = opts.Canonical()
	if err := c.opts.Params.Validate(); err != nil {
		return nil, err
	}
	c.spec.Kernels = c.opts.Kernels
	// Re-encode the resolved machine into the normalized spec so two
	// specs describing the same machine (explicit defaults vs. omitted)
	// normalize identically.
	pj, err := c.opts.Params.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	c.spec.Params = pj

	needKernel := func() error {
		if c.spec.Kernel == "" {
			return fmt.Errorf("kind %q requires a kernel", c.spec.Kind)
		}
		k, err := npb.ByName(strings.ToUpper(c.spec.Kernel))
		if err != nil {
			return err
		}
		c.spec.Kernel = k.Name
		return nil
	}

	switch s.Kind {
	case KindRun:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if c.spec.Mode == "" {
			c.spec.Mode = "slipstream"
		}
		if c.mode, err = experiments.ParseMode(c.spec.Mode); err != nil {
			return nil, err
		}
		c.spec.Mode = modeName(c.mode)
		if c.spec.Sync == "" {
			c.spec.Sync = "GLOBAL_SYNC"
		}
		if c.sync, err = experiments.ParseSync(c.spec.Sync, c.spec.Tokens); err != nil {
			return nil, err
		}
		c.spec.Sync = strings.ToUpper(c.spec.Sync)
		c.spec.Tokens = c.sync.Tokens // NONE zeroes the count
		if c.spec.Sched == "" {
			c.spec.Sched = "static"
		}
		if c.sched, err = experiments.ParseSched(c.spec.Sched); err != nil {
			return nil, err
		}
		c.spec.Sched = c.sched.String()
		if c.spec.Chunk < 0 {
			return nil, fmt.Errorf("chunk %d invalid", c.spec.Chunk)
		}
	case KindStatic, KindDynamic, KindCharacterize:
		if c.spec.Kernel != "" {
			return nil, fmt.Errorf("kind %q takes a kernels filter, not kernel", s.Kind)
		}
	case KindScaling:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if err := validateCounts(s.NodeCounts, 1, "node_counts"); err != nil {
			return nil, err
		}
	case KindTokens:
		if err := needKernel(); err != nil {
			return nil, err
		}
		if err := validateCounts(s.TokenCounts, 0, "token_counts"); err != nil {
			return nil, err
		}
	case "":
		return nil, fmt.Errorf("missing kind (valid: run, static, dynamic, scaling, tokens, characterize)")
	default:
		return nil, fmt.Errorf("unknown kind %q (valid: run, static, dynamic, scaling, tokens, characterize)", s.Kind)
	}

	// Validate the suite filter eagerly so a bad name 400s at submit.
	if len(c.spec.Kernels) > 0 {
		for _, name := range c.spec.Kernels {
			if _, err := npb.ByName(name); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// validateCounts applies the same rules as the sweep CLI: at least one
// value, each at or above min, no duplicates.
func validateCounts(counts []int, min int, field string) error {
	if len(counts) == 0 {
		return fmt.Errorf("kind requires non-empty %s", field)
	}
	seen := map[int]bool{}
	for _, n := range counts {
		if n < min {
			return fmt.Errorf("%s value %d is below the minimum %d", field, n, min)
		}
		if seen[n] {
			return fmt.Errorf("duplicate %s value %d", field, n)
		}
		seen[n] = true
	}
	return nil
}

// canonKey is the frozen hashing shape (alphabetical field order, no
// omitempty: absent and zero must hash identically forever).
type canonKey struct {
	Chunk       int             `json:"chunk"`
	Kernel      string          `json:"kernel"`
	Kind        string          `json:"kind"`
	Mode        string          `json:"mode"`
	NodeCounts  []int           `json:"node_counts"`
	Options     json.RawMessage `json:"options"`
	Sched       string          `json:"sched"`
	Sync        string          `json:"sync"`
	TokenCounts []int           `json:"token_counts"`
	Tokens      int             `json:"tokens"`
	Version     string          `json:"version"`
}

// cacheKey hashes the canonical form of the spec plus the code version.
// Determinism makes this sound: two specs with equal keys run the same
// simulation on the same code and therefore produce identical bytes.
func (c *compiledSpec) cacheKey(version string) (string, error) {
	oj, err := c.opts.CanonicalJSON()
	if err != nil {
		return "", err
	}
	nodeCounts := append([]int(nil), c.spec.NodeCounts...)
	sort.Ints(nodeCounts)
	tokenCounts := append([]int(nil), c.spec.TokenCounts...)
	sort.Ints(tokenCounts)
	data, err := json.Marshal(canonKey{
		Chunk:       c.spec.Chunk,
		Kernel:      c.spec.Kernel,
		Kind:        c.spec.Kind,
		Mode:        c.spec.Mode,
		NodeCounts:  emptyNotNil(nodeCounts),
		Options:     oj,
		Sched:       c.spec.Sched,
		Sync:        c.spec.Sync,
		TokenCounts: emptyNotNil(tokenCounts),
		Tokens:      c.spec.Tokens,
		Version:     version,
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// emptyNotNil keeps nil and empty slices hashing identically ([]).
func emptyNotNil(xs []int) []int {
	if xs == nil {
		return []int{}
	}
	return xs
}

// decodeSpec parses a request body strictly: unknown fields and trailing
// data are rejected so typos fail loudly instead of running a default.
func decodeSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return JobSpec{}, fmt.Errorf("trailing data after job spec")
	}
	return s, nil
}

// modeName renders a mode the way ParseMode accepts it.
func modeName(m core.Mode) string {
	switch m {
	case core.ModeSingle:
		return "single"
	case core.ModeDouble:
		return "double"
	default:
		return "slipstream"
	}
}

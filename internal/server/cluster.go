package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"
)

// Fleet seam: a Server configured with a Cluster backend routes job
// execution through it instead of running simulations in-process. The
// backend (internal/cluster's coordinator) owns worker selection,
// failover, and hedging; the server keeps owning admission, dedup, the
// cache, durability, and the client-facing API. The seam is sound for
// the same reason the cache is: simulations are deterministic and
// content-addressed, so a job executed remotely — even twice, on two
// workers — yields exactly the bytes a local run would have produced.

// ErrNoWorkers is returned by a Cluster backend when no worker can take
// the job. The server then degrades gracefully: it executes the job
// locally in-process and reports degraded=true on /readyz.
var ErrNoWorkers = errors.New("cluster: no live workers")

// PeerStatus is one peer coordinator's replication health, surfaced on
// /readyz.
type PeerStatus struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
	// LagMs is the age of the last successful replication to this peer
	// in milliseconds, or -1 before the first success.
	LagMs int64 `json:"replication_lag_ms"`
	// Breaker is the replication circuit breaker's state for this peer:
	// "closed", "half-open", or "open".
	Breaker string `json:"breaker,omitempty"`
}

// ClusterStats is a point-in-time snapshot of the fleet, surfaced in
// /metrics and on /readyz.
type ClusterStats struct {
	// Role identifies this node's part in the fleet ("coordinator").
	Role string
	// Worker counts by health state.
	Live    int
	Suspect int
	Dead    int
	// Peers lists the other coordinators and their replication lag.
	Peers []PeerStatus
	// Claim lifecycle counters: leases granted (first claims, expiry
	// reclaims, and hedges), claims settled done/failed, duplicate
	// terminal reports discarded, hedge grants against a live lease,
	// and leases that expired back to pending.
	ClaimsGranted    uint64
	ClaimsCompleted  uint64
	ClaimsFailed     uint64
	ClaimsDuplicate  uint64
	ClaimContention  uint64
	LeaseExpirations uint64
	// HedgesStarted / HedgesWon count claims opened to a second worker
	// for straggling, and how many settles came from the hedge's lease.
	HedgesStarted uint64
	HedgesWon     uint64
	// Degraded is true while no worker (live or suspect) can take jobs
	// or a peer coordinator is unreachable.
	Degraded bool
}

// Cluster is the dispatch backend a coordinator plugs into Config. The
// server calls Dispatch from its worker goroutines with the job's cache
// key, metrics label, admission identity (tenant and priority class, so
// claims preserve fair-scheduling order fleet-wide), and normalized
// spec; progress lines written to progress reach the job's SSE
// subscribers.
type Cluster interface {
	Dispatch(ctx context.Context, key, label, tenant string, priority int, spec JobSpec, progress io.Writer) ([]byte, error)
	Stats() ClusterStats
}

// Shedder is the optional backpressure seam a Cluster backend may
// implement: when it reports shed=true, the admission path refuses
// brand-new submissions with ErrBackpressure (503 + Retry-After over
// HTTP) until replication catches back up.
type Shedder interface {
	ShedNewJobs() (retryAfter time.Duration, shed bool)
}

// executeOrDispatch is the seam runJob calls: without a cluster backend
// it executes in-process; with one it dispatches, falling back to local
// execution when no worker is available.
func (s *Server) executeOrDispatch(ctx context.Context, c *compiledSpec, j *Job) ([]byte, error) {
	if s.cfg.Cluster == nil {
		return s.executeGuarded(ctx, c, j)
	}
	result, err := s.cfg.Cluster.Dispatch(ctx, j.Key, c.label(), j.tenant, j.priority, c.spec, j.broker)
	if errors.Is(err, ErrNoWorkers) {
		s.metrics.localFallback()
		fmt.Fprintf(j.broker, "cluster: no live workers; executing locally in degraded mode\n")
		return s.executeGuarded(ctx, c, j)
	}
	return result, err
}

// Await blocks until the identified job reaches a terminal state and
// returns its result bytes (or its failure as an error). It is the seam
// a worker's claim loop uses after SubmitJSON: submit the granted spec,
// await the outcome, report it back to the coordinator.
func (s *Server) Await(ctx context.Context, id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no such job %q", id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	if b, ok := j.resultBytes(); ok {
		return b, nil
	}
	return nil, errors.New(j.snapshot().Error)
}

// clusterStats snapshots the backend for /metrics (nil when the server
// is not a coordinator).
func (s *Server) clusterStats() *ClusterStats {
	if s.cfg.Cluster == nil {
		return nil
	}
	st := s.cfg.Cluster.Stats()
	return &st
}

package server

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// Fleet seam: a Server configured with a Cluster backend routes job
// execution through it instead of running simulations in-process. The
// backend (internal/cluster's coordinator) owns worker selection,
// failover, and hedging; the server keeps owning admission, dedup, the
// cache, durability, and the client-facing API. The seam is sound for
// the same reason the cache is: simulations are deterministic and
// content-addressed, so a job executed remotely — even twice, on two
// workers — yields exactly the bytes a local run would have produced.

// ErrNoWorkers is returned by a Cluster backend when no worker can take
// the job. The server then degrades gracefully: it executes the job
// locally in-process and reports degraded=true on /readyz.
var ErrNoWorkers = errors.New("cluster: no live workers")

// ClusterStats is a point-in-time snapshot of the fleet, surfaced in
// /metrics and on /readyz.
type ClusterStats struct {
	// Worker counts by health state.
	Live    int
	Suspect int
	Dead    int
	// Failovers counts in-flight dispatches re-run on a survivor after
	// their worker was lost.
	Failovers uint64
	// HedgesStarted / HedgesWon count second copies launched for
	// straggling dispatches, and how many of those finished first.
	HedgesStarted uint64
	HedgesWon     uint64
	// Degraded is true while no worker (live or suspect) can take jobs;
	// the coordinator is executing everything locally.
	Degraded bool
}

// Cluster is the dispatch backend a coordinator plugs into Config. The
// server calls Dispatch from its worker goroutines with the job's cache
// key, metrics label, and normalized spec; progress lines written to
// progress reach the job's SSE subscribers.
type Cluster interface {
	Dispatch(ctx context.Context, key, label string, spec JobSpec, progress io.Writer) ([]byte, error)
	Stats() ClusterStats
}

// executeOrDispatch is the seam runJob calls: without a cluster backend
// it executes in-process; with one it dispatches, falling back to local
// execution when no worker is available.
func (s *Server) executeOrDispatch(ctx context.Context, c *compiledSpec, j *Job) ([]byte, error) {
	if s.cfg.Cluster == nil {
		return s.executeGuarded(ctx, c, j)
	}
	result, err := s.cfg.Cluster.Dispatch(ctx, j.Key, c.label(), c.spec, j.broker)
	if errors.Is(err, ErrNoWorkers) {
		s.metrics.localFallback()
		fmt.Fprintf(j.broker, "cluster: no live workers; executing locally in degraded mode\n")
		return s.executeGuarded(ctx, c, j)
	}
	return result, err
}

// clusterStats snapshots the backend for /metrics (nil when the server
// is not a coordinator).
func (s *Server) clusterStats() *ClusterStats {
	if s.cfg.Cluster == nil {
		return nil
	}
	st := s.cfg.Cluster.Stats()
	return &st
}

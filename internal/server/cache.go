package server

import (
	"container/list"
	"sync"
)

// The result cache. Every simulation in this repository is fully
// deterministic — same spec, same code, same bytes out — so a cache hit
// is indistinguishable from a fresh run and results can be cached forever
// within one code version (the cache key embeds the version, see spec.go).
// The only policy question left is byte budget, which this LRU answers.

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int
	Budget    int64
}

// HitRatio returns hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// lruCache is a byte-budgeted LRU map from cache key to result bytes.
// Values are treated as immutable by both sides: Put keeps the caller's
// slice and Get returns it unwrapped.
type lruCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions uint64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRUCache returns a cache with the given byte budget. A non-positive
// budget disables storage: every Get misses and every Put is dropped.
func newLRUCache(budget int64) *lruCache {
	return &lruCache{budget: budget, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// Put inserts or refreshes a value and evicts least-recently-used entries
// until the budget holds. A value larger than the whole budget is not
// stored at all rather than evicting everything for nothing.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(val)) > c.budget {
		return
	}
	if e, ok := c.items[key]; ok {
		c.bytes += int64(len(val)) - int64(len(e.Value.(*lruEntry).val))
		e.Value.(*lruEntry).val = val
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*lruEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.val))
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   len(c.items),
		Budget:    c.budget,
	}
}

package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWorkerPanicRecovery is the hardening acceptance criterion: a
// panicking job settles as failed, the daemon keeps serving (metrics
// respond, a follow-up job completes), and the panic is counted.
func TestWorkerPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var once sync.Once
	s.testDuringRun = func(*Job) {
		fired := false
		once.Do(func() { fired = true })
		if fired {
			panic("kernel exploded")
		}
	}

	sr, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("POST = %d", code)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateFailed {
		t.Fatalf("panicking job = %s, want failed", st)
	}
	if msg := j.snapshot().Error; !strings.Contains(msg, "panic: kernel exploded") {
		t.Fatalf("panicking job error = %q", msg)
	}
	if _, ok := s.cache.Get(j.Key); ok {
		t.Fatal("panicked job result was cached")
	}

	// The worker survived: the next job must run to completion.
	sr2, _ := submit(t, ts, `{"kind":"run","kernel":"MG","nodes":4}`)
	j2 := await(t, s, sr2.Job.ID)
	if st := j2.stateNow(); st != StateDone {
		t.Fatalf("follow-up job = %s, want done (err %q)", st, j2.snapshot().Error)
	}

	metrics, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d after panic", code)
	}
	if !strings.Contains(metrics, "slipd_panics_total 1\n") {
		t.Fatalf("metrics missing slipd_panics_total 1:\n%s", metrics)
	}
}

// TestJobTimeout: a job that blows the per-job deadline settles as failed
// with a timeout error, is counted, and the daemon keeps serving.
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
	sr, _ := submit(t, ts, runSpecBody)
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateFailed {
		t.Fatalf("timed-out job = %s, want failed", st)
	}
	if msg := j.snapshot().Error; !strings.Contains(msg, "exceeded timeout") {
		t.Fatalf("timed-out job error = %q", msg)
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "slipd_timeouts_total 1\n") {
		t.Fatalf("metrics missing slipd_timeouts_total 1:\n%s", metrics)
	}
}

// TestQueueFullRetryAfter: the 503 shed path sets Retry-After and counts
// the shed request.
func TestQueueFullRetryAfter(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.testBeforeRun = func(*Job) { <-release }

	submit(t, ts, runSpecBody)                              // occupies the worker
	submit(t, ts, `{"kind":"run","kernel":"MG","nodes":4}`) // fills the queue
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"run","kernel":"LU","nodes":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST to full queue = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 missing Retry-After header")
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "slipd_requests_shed_total 1\n") {
		t.Fatalf("metrics missing slipd_requests_shed_total 1:\n%s", metrics)
	}
	close(release)
}

// TestRunJobWithFaults: a single run with an armed plan completes, still
// verifies, reports its injections, and feeds the fault metrics.
func TestRunJobWithFaults(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr, code := submit(t, ts, `{"kind":"run","kernel":"CG","nodes":4,"faults":{"seed":3,"rate":0.5}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST = %d", code)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("faulted run = %s (err %q)", st, j.snapshot().Error)
	}
	body, _ := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result")
	for _, want := range []string{"faults:", "injected (plan 3:0.5)", "verification: PASSED"} {
		if !strings.Contains(body, want) {
			t.Fatalf("result missing %q:\n%s", want, body)
		}
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if strings.Contains(metrics, "slipd_faults_injected_total 0\n") {
		t.Fatalf("fault metrics not recorded:\n%s", metrics)
	}
}

// TestChaosJobEndToEnd: the chaos kind renders degradation curves with
// every cell verified.
func TestChaosJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos job at test scale is slow for -short")
	}
	s, ts := newTestServer(t, Config{Workers: 1, SuiteJobs: 4})
	sr, code := submit(t, ts, `{"kind":"chaos","kernels":["CG"],"nodes":4,"faults":{"seed":7,"rates":[0.5]}}`)
	if code != http.StatusCreated {
		t.Fatalf("POST = %d", code)
	}
	// Normalization must surface in the spec: rate 0 baseline included.
	if f := sr.Job.Spec.Faults; f == nil || len(f.Rates) != 2 || f.Rates[0] != 0 || f.Rates[1] != 0.5 {
		t.Fatalf("normalized chaos faults = %+v", sr.Job.Spec.Faults)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("chaos job = %s (err %q)", st, j.snapshot().Error)
	}
	body, _ := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result")
	for _, want := range []string{
		"Chaos degradation curves (seed 7, classes all",
		"slip-G0-dyn",
		"faults cost time, never correctness",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("chaos result missing %q:\n%s", want, body)
		}
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if strings.Contains(metrics, "slipd_faults_injected_total 0\n") ||
		strings.Contains(metrics, "slipd_recoveries_total 0\n") {
		t.Fatalf("chaos metrics not recorded:\n%s", metrics)
	}
}

// TestTasksJobEndToEnd: the tasks kind renders the team × cut-off grid
// with steal counts and every cell verified.
func TestTasksJobEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SuiteJobs: 4})
	sr, code := submit(t, ts, `{"kind":"tasks","node_counts":[2],"cutoffs":[3]}`)
	if code != http.StatusCreated {
		t.Fatalf("POST = %d", code)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("tasks job = %s (err %q)", st, j.snapshot().Error)
	}
	body, _ := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result")
	for _, want := range []string{
		"Tasking study (scale test)",
		"steals",
		"cut=3",
		"verification: PASSED",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("tasks result missing %q:\n%s", want, body)
		}
	}

	// An omitted grid takes the documented defaults in the normalized spec.
	c, err := compile(JobSpec{Kind: KindTasks})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.spec.NodeCounts) != 3 || len(c.spec.Cutoffs) != 4 {
		t.Fatalf("defaults not applied: teams %v cutoffs %v", c.spec.NodeCounts, c.spec.Cutoffs)
	}
	if _, err := c.cacheKey("t"); err != nil {
		t.Fatal(err)
	}
	// The cut-off grid is part of the identity: different grids, different keys.
	a, _ := compile(JobSpec{Kind: KindTasks, NodeCounts: []int{2}, Cutoffs: []int{2}})
	b, _ := compile(JobSpec{Kind: KindTasks, NodeCounts: []int{2}, Cutoffs: []int{3}})
	ka, _ := a.cacheKey("t")
	kb, _ := b.cacheKey("t")
	if ka == kb {
		t.Fatal("cutoff grids share a cache key")
	}
}

// TestFaultSpecValidation covers the new 400 paths, including the
// formerly-panicking oversized node_counts.
func TestFaultSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"kind":"run","kernel":"CG","faults":{"rate":2}}`,
		`{"kind":"run","kernel":"CG","faults":{"rates":[0.1]}}`,
		`{"kind":"run","kernel":"CG","faults":{"rate":0.1,"classes":["nope"]}}`,
		`{"kind":"run","kernel":"CG","tokens":2000}`,
		`{"kind":"chaos","faults":{"rate":0.5}}`,
		`{"kind":"chaos","faults":{"rates":[1.5]}}`,
		`{"kind":"chaos","kernel":"CG"}`,
		`{"kind":"static","faults":{"rate":0.5}}`,
		`{"kind":"scaling","kernel":"CG","node_counts":[100]}`,
		`{"kind":"tokens","kernel":"CG","token_counts":[2000]}`,
		`{"kind":"tasks","kernel":"CG"}`,
		`{"kind":"tasks","cutoffs":[99]}`,
		`{"kind":"tasks","node_counts":[0]}`,
		`{"kind":"tasks","faults":{"seed":1,"rate":0.5}}`,
	}
	for _, body := range bad {
		if _, code := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s → %d, want 400", body, code)
		}
	}

	// A rate-zero plan is no plan: both spellings must share a cache key.
	plain, _ := compile(JobSpec{Kind: KindRun, Kernel: "CG", Nodes: 4})
	zeroed, _ := compile(JobSpec{Kind: KindRun, Kernel: "CG", Nodes: 4,
		Faults: &FaultSpec{Seed: 9, Rate: 0}})
	k1, err1 := plain.cacheKey("t")
	k2, err2 := zeroed.cacheKey("t")
	if err1 != nil || err2 != nil || k1 != k2 {
		t.Fatalf("rate-zero plan changed the cache key: %q vs %q (%v, %v)", k1, k2, err1, err2)
	}
	// An armed plan must not share a key with the unarmed spec.
	armed, err := compile(JobSpec{Kind: KindRun, Kernel: "CG", Nodes: 4,
		Faults: &FaultSpec{Seed: 9, Rate: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	k3, _ := armed.cacheKey("t")
	if k3 == k1 {
		t.Fatal("armed plan shares the unarmed cache key")
	}
}

package server

import (
	"errors"
	"testing"
	"time"
)

// schedFor builds a scheduler with a controllable clock.
func schedFor(t *testing.T, cfg Config) (*scheduler, *time.Time) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	sc := newScheduler(cfg, func() time.Time { return now })
	return sc, &now
}

func schedJob(id, tenant string, priority int) *Job {
	j := newJob(id, "key-"+id, JobSpec{Kind: KindRun}, StateQueued)
	j.tenant = tenant
	j.priority = priority
	return j
}

// mustPop pops without blocking (the tests enqueue before popping).
func mustPop(t *testing.T, sc *scheduler) *Job {
	t.Helper()
	sc.mu.Lock()
	j := sc.popLocked()
	sc.mu.Unlock()
	if j == nil {
		t.Fatalf("popLocked returned nil with %d queued", sc.depth())
	}
	return j
}

// TestSchedWeightedFairInterleave pins the WFQ dispatch pattern: with
// weights 1 and 3 under continuous backlog, every 4 dispatches serve
// the light tenant once and the heavy tenant three times, and the
// sequence is fully deterministic (ties break by tenant name).
func TestSchedWeightedFairInterleave(t *testing.T) {
	sc, _ := schedFor(t, Config{Tenants: []TenantConfig{
		{Name: "alice", Key: "ka", TenantLimits: TenantLimits{Weight: 1}},
		{Name: "bob", Key: "kb", TenantLimits: TenantLimits{Weight: 3}},
	}})
	for i := 0; i < 20; i++ {
		if err := sc.submit(schedJob(sprintfJob("a", i), "alice", PriorityBatch), true); err != nil {
			t.Fatal(err)
		}
		if err := sc.submit(schedJob(sprintfJob("b", i), "bob", PriorityBatch), true); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	var order []string
	for i := 0; i < 20; i++ {
		j := mustPop(t, sc)
		counts[j.tenant]++
		order = append(order, j.tenant[:1])
	}
	if counts["bob"] != 15 || counts["alice"] != 5 {
		t.Fatalf("first 20 dispatches: alice=%d bob=%d (order %v), want 5/15", counts["alice"], counts["bob"], order)
	}
	// Re-running the same schedule must yield the same interleave.
	sc2, _ := schedFor(t, Config{Tenants: []TenantConfig{
		{Name: "alice", Key: "ka", TenantLimits: TenantLimits{Weight: 1}},
		{Name: "bob", Key: "kb", TenantLimits: TenantLimits{Weight: 3}},
	}})
	for i := 0; i < 20; i++ {
		sc2.submit(schedJob(sprintfJob("a", i), "alice", PriorityBatch), true)
		sc2.submit(schedJob(sprintfJob("b", i), "bob", PriorityBatch), true)
	}
	for i := 0; i < 20; i++ {
		if got := mustPop(t, sc2).tenant[:1]; got != order[i] {
			t.Fatalf("dispatch %d: %s, want %s (schedule not deterministic)", i, got, order[i])
		}
	}
}

func sprintfJob(prefix string, i int) string {
	return prefix + "-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestSchedStrictPriorityPreemptsQueuedBatch pins the class ordering:
// an interactive job submitted after a pile of batch work is dispatched
// next, ahead of every queued batch job.
func TestSchedStrictPriorityPreemptsQueuedBatch(t *testing.T) {
	sc, _ := schedFor(t, Config{})
	for i := 0; i < 10; i++ {
		sc.submit(schedJob(sprintfJob("bulk", i), DefaultTenant, PriorityBatch), true)
	}
	probe := schedJob("probe", DefaultTenant, PriorityInteractive)
	sc.submit(probe, true)
	if j := mustPop(t, sc); j != probe {
		t.Fatalf("first dispatch = %s, want the interactive probe", j.ID)
	}
}

// TestSchedTokenBucketRate exercises the admission rate limit: burst
// drains, the next submission refuses with ErrTenantLimited/"rate" and
// a positive Retry-After, and refilled tokens re-admit.
func TestSchedTokenBucketRate(t *testing.T) {
	sc, now := schedFor(t, Config{Tenants: []TenantConfig{
		{Name: "metered", Key: "km", TenantLimits: TenantLimits{Rate: 1, Burst: 2}},
	}})
	if got := sc.resolve("km"); got != "metered" {
		t.Fatalf("resolve = %q", got)
	}
	for i := 0; i < 2; i++ {
		if err := sc.submit(schedJob(sprintfJob("m", i), "metered", PriorityBatch), true); err != nil {
			t.Fatalf("submission %d inside burst refused: %v", i, err)
		}
	}
	err := sc.submit(schedJob("m-over", "metered", PriorityBatch), true)
	if !errors.Is(err, ErrTenantLimited) {
		t.Fatalf("over-rate submission error = %v, want ErrTenantLimited", err)
	}
	var tl *tenantLimitedError
	if !errors.As(err, &tl) || tl.reason != "rate" || retryAfterSeconds(tl.retryAfter) < 1 {
		t.Fatalf("limit detail = %+v", tl)
	}
	*now = now.Add(1500 * time.Millisecond) // refill > 1 token
	if err := sc.submit(schedJob("m-later", "metered", PriorityBatch), true); err != nil {
		t.Fatalf("post-refill submission refused: %v", err)
	}
	st := sc.stats()
	if len(st) != 1 || st[0].Admitted != 3 || st[0].LimitedRate != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSchedBacklogBound exercises the per-tenant queue bound and that
// it is checked before the token bucket (a backlog refusal must not
// burn a token).
func TestSchedBacklogBound(t *testing.T) {
	sc, _ := schedFor(t, Config{Tenants: []TenantConfig{
		{Name: "bounded", Key: "kb", TenantLimits: TenantLimits{Rate: 100, Burst: 100, Backlog: 2}},
	}})
	for i := 0; i < 2; i++ {
		if err := sc.submit(schedJob(sprintfJob("q", i), "bounded", PriorityBatch), true); err != nil {
			t.Fatal(err)
		}
	}
	err := sc.submit(schedJob("q-over", "bounded", PriorityBatch), true)
	var tl *tenantLimitedError
	if !errors.As(err, &tl) || tl.reason != "backlog" {
		t.Fatalf("overflow error = %v, want backlog limit", err)
	}
	// Dispatching one frees a slot immediately.
	mustPop(t, sc)
	if err := sc.submit(schedJob("q-after", "bounded", PriorityBatch), true); err != nil {
		t.Fatalf("submission after dispatch refused: %v", err)
	}
	st := sc.stats()
	if st[0].LimitedBacklog != 1 || st[0].LimitedRate != 0 {
		t.Fatalf("stats = %+v (backlog refusal must not touch the bucket)", st[0])
	}
}

// TestSchedIsolation pins the headline property: a tenant flooding its
// own queue does not change when another tenant's job is served.
func TestSchedIsolation(t *testing.T) {
	sc, _ := schedFor(t, Config{})
	sc.resolve("flood-key")
	sc.resolve("probe-key")
	for i := 0; i < 50; i++ {
		sc.submit(schedJob(sprintfJob("f", i), "flood-key", PriorityBatch), true)
	}
	sc.submit(schedJob("p-0", "probe-key", PriorityBatch), true)
	// Equal weights: the probe tenant's single job must surface within
	// two dispatches (WFQ alternates), not after the 50-deep flood.
	first, second := mustPop(t, sc), mustPop(t, sc)
	if first.tenant != "probe-key" && second.tenant != "probe-key" {
		t.Fatalf("probe served after %q,%q — starved by the flood", first.tenant, second.tenant)
	}
}

// TestSchedUnknownKeyIsOwnTenant: unknown API keys get their own
// admission domain rather than sharing the default tenant's.
func TestSchedUnknownKeyIsOwnTenant(t *testing.T) {
	sc, _ := schedFor(t, Config{TenantDefaults: TenantLimits{Backlog: 1}})
	a, b := sc.resolve("key-a"), sc.resolve("key-b")
	if a == b || a == DefaultTenant {
		t.Fatalf("resolve: %q vs %q", a, b)
	}
	if err := sc.submit(schedJob("a-0", a, PriorityBatch), true); err != nil {
		t.Fatal(err)
	}
	// a's backlog is full; b must be unaffected.
	if err := sc.submit(schedJob("a-1", a, PriorityBatch), true); !errors.Is(err, ErrTenantLimited) {
		t.Fatalf("tenant a over backlog: %v", err)
	}
	if err := sc.submit(schedJob("b-0", b, PriorityBatch), true); err != nil {
		t.Fatalf("tenant b refused by a's backlog: %v", err)
	}
}

// TestSchedPromoteAndRemove covers dedup promotion (a queued batch job
// lifted to interactive dispatches next) and cancel removal freeing the
// backlog slot.
func TestSchedPromoteAndRemove(t *testing.T) {
	sc, _ := schedFor(t, Config{})
	jobs := make([]*Job, 5)
	for i := range jobs {
		jobs[i] = schedJob(sprintfJob("j", i), DefaultTenant, PriorityBatch)
		sc.submit(jobs[i], true)
	}
	if !sc.promote(jobs[3], PriorityInteractive) {
		t.Fatal("promote refused")
	}
	if j := mustPop(t, sc); j != jobs[3] {
		t.Fatalf("first dispatch = %s, want promoted job", j.ID)
	}
	if !sc.remove(jobs[1]) {
		t.Fatal("remove refused")
	}
	if sc.remove(jobs[1]) {
		t.Fatal("double remove succeeded")
	}
	if d := sc.depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Multi-tenant admission and dispatch. The old single FIFO channel let
// one greedy client starve everyone; this scheduler gives each tenant —
// identified by API key — a token-bucket admission rate, a bounded
// backlog, and a weighted-fair share of the workers. Overflowing a
// per-tenant limit answers 429 + Retry-After (the tenant's own
// problem); the global QueueDepth bound keeps the existing 503 shed
// path (the daemon's problem). Dispatch is strict-priority across two
// classes — interactive probes always preempt queued bulk work — and
// weighted-fair (virtual-time WFQ) across tenants within a class, so a
// flooding tenant degrades only itself.

// Priority classes. Interactive single-cell probes outrank bulk
// sweeps; within a class tenants share by WFQ weight.
const (
	PriorityBatch       = 0
	PriorityInteractive = 1
	numPriorities       = 2
)

// Priority class names as they appear in specs, journals, and wire
// messages.
const (
	PriorityNameBatch       = "batch"
	PriorityNameInteractive = "interactive"
)

// PriorityName renders a priority class for journals and wire messages.
func PriorityName(p int) string {
	if p >= PriorityInteractive {
		return PriorityNameInteractive
	}
	return PriorityNameBatch
}

// PriorityValue parses a priority class name leniently (unknown names
// queue as batch — the safe class for anything a newer peer invents).
func PriorityValue(name string) int {
	if name == PriorityNameInteractive {
		return PriorityInteractive
	}
	return PriorityBatch
}

// TenantLimits bounds one tenant's admission. Zero values mean
// unlimited rate, unlimited backlog, weight 1 — the pre-tenant
// behavior, so a daemon with no tenant flags schedules exactly as
// before (single default tenant, global bounds only).
type TenantLimits struct {
	// Weight is the tenant's WFQ share within a priority class
	// (default 1). A weight-2 tenant drains twice as fast as a
	// weight-1 tenant under contention.
	Weight int
	// Rate is the token-bucket refill in submissions per second
	// (0 = unlimited). Each accepted job costs one token; an empty
	// bucket answers 429 with the refill time as Retry-After.
	Rate float64
	// Burst caps the bucket (default max(Rate, 1)).
	Burst float64
	// Backlog bounds this tenant's queued-but-not-running jobs
	// (0 = unlimited up to the global QueueDepth). Overflow answers
	// 429 + Retry-After.
	Backlog int
}

// TenantConfig names a tenant and binds its API key.
type TenantConfig struct {
	Name string
	Key  string
	TenantLimits
}

// DefaultTenant is the tenant requests without a recognized API key
// run under.
const DefaultTenant = "default"

// ErrTenantLimited marks a submission refused by the submitting
// tenant's own admission limits (rate or backlog). HTTP maps it to
// 429 + Retry-After — deliberately distinct from the global 503 shed
// path: a 429 means "you, specifically, slow down".
var ErrTenantLimited = errors.New("tenant admission limit reached")

// tenantLimitedError carries which limit tripped and the suggested
// retry delay alongside the ErrTenantLimited identity.
type tenantLimitedError struct {
	tenant     string
	reason     string // "rate" | "backlog"
	retryAfter time.Duration
}

func (e *tenantLimitedError) Error() string {
	return fmt.Sprintf("tenant %q %s limit reached (retry in %s)", e.tenant, e.reason, e.retryAfter)
}
func (e *tenantLimitedError) Unwrap() error { return ErrTenantLimited }

// retryAfterSeconds renders a delay as a Retry-After header value
// (whole seconds, minimum 1).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// tenant is one admission domain: per-class FIFO queues, a token
// bucket, and a WFQ virtual finish time. All fields are guarded by the
// scheduler's mutex.
type tenant struct {
	name   string
	limits TenantLimits

	queues [numPriorities][]*Job
	queued int

	vtime  float64 // WFQ virtual finish time of the last dispatch
	tokens float64
	last   time.Time // last bucket refill

	admitted       uint64
	limitedRate    uint64
	limitedBacklog uint64
	dispatched     uint64
}

// weight reads the effective WFQ weight.
func (tn *tenant) weight() int {
	if tn.limits.Weight <= 0 {
		return 1
	}
	return tn.limits.Weight
}

// burst reads the effective bucket capacity.
func (tn *tenant) burst() float64 {
	b := tn.limits.Burst
	if b <= 0 {
		b = tn.limits.Rate
	}
	if b < 1 {
		b = 1
	}
	return b
}

// refill advances the token bucket to now.
func (tn *tenant) refill(now time.Time) {
	if tn.limits.Rate <= 0 {
		return
	}
	if tn.last.IsZero() {
		tn.tokens = tn.burst()
	} else if now.After(tn.last) {
		tn.tokens += now.Sub(tn.last).Seconds() * tn.limits.Rate
		if b := tn.burst(); tn.tokens > b {
			tn.tokens = b
		}
	}
	tn.last = now
}

// chargeTokens refills, requires at least one token, and drains up to
// n (floor zero). Campaigns charge their whole cell count this way: a
// campaign needs one token to be admitted at all, and a big one leaves
// the bucket empty so follow-up submissions pay for it — without
// making any campaign larger than the burst permanently inadmissible.
// On refusal it returns the delay until one token exists.
func (tn *tenant) chargeTokens(now time.Time, n int) (time.Duration, bool) {
	if tn.limits.Rate <= 0 {
		return 0, true
	}
	tn.refill(now)
	if tn.tokens < 1 {
		need := (1 - tn.tokens) / tn.limits.Rate
		return time.Duration(need * float64(time.Second)), false
	}
	tn.tokens -= float64(n)
	if tn.tokens < 0 {
		tn.tokens = 0
	}
	return 0, true
}

// scheduler replaces the FIFO job channel: admission (token bucket +
// backlog + global depth) on the way in, strict-priority weighted-fair
// dispatch on the way out. It has its own mutex and never calls back
// into the Server, so it can be used under s.mu.
type scheduler struct {
	mu       sync.Mutex
	now      func() time.Time
	depthCap int // global queued bound (Config.QueueDepth)
	defaults TenantLimits

	byKey   map[string]*tenant // API key → tenant
	byName  map[string]*tenant
	tenants []*tenant // sorted by name: deterministic WFQ tie-break

	queued int
	vnow   float64 // global virtual time

	wake chan struct{} // cap 1: kicks one blocked worker per push
}

func newScheduler(cfg Config, now func() time.Time) *scheduler {
	sc := &scheduler{
		now:      now,
		depthCap: cfg.QueueDepth,
		defaults: cfg.TenantDefaults,
		byKey:    map[string]*tenant{},
		byName:   map[string]*tenant{},
		wake:     make(chan struct{}, 1),
	}
	for _, tc := range cfg.Tenants {
		tn := sc.addTenantLocked(tc.Name, tc.TenantLimits)
		if tc.Key != "" {
			sc.byKey[tc.Key] = tn
		}
	}
	return sc
}

// addTenantLocked registers a tenant, keeping the iteration order
// sorted by name. Re-registering a name returns the existing tenant.
func (sc *scheduler) addTenantLocked(name string, limits TenantLimits) *tenant {
	if tn, ok := sc.byName[name]; ok {
		return tn
	}
	tn := &tenant{name: name, limits: limits, vtime: sc.vnow}
	sc.byName[name] = tn
	sc.tenants = append(sc.tenants, tn)
	sort.Slice(sc.tenants, func(a, b int) bool { return sc.tenants[a].name < sc.tenants[b].name })
	return tn
}

// resolve maps an API key to a tenant name, registering unknown keys
// as their own tenant under the default limits (every key is its own
// admission domain; nobody shares a bucket by accident). An empty key
// is the shared default tenant.
func (sc *scheduler) resolve(apiKey string) string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if apiKey == "" {
		return sc.addTenantLocked(DefaultTenant, sc.defaults).name
	}
	if tn, ok := sc.byKey[apiKey]; ok {
		return tn.name
	}
	tn := sc.addTenantLocked(apiKey, sc.defaults)
	sc.byKey[apiKey] = tn
	return tn.name
}

// tenantLocked fetches (or lazily registers) a tenant by name.
func (sc *scheduler) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	if tn, ok := sc.byName[name]; ok {
		return tn
	}
	return sc.addTenantLocked(name, sc.defaults)
}

// submit queues a job for dispatch. With charge set (the client-facing
// admission path) the tenant's backlog bound and token bucket apply
// and refusals come back as ErrTenantLimited; uncharged submissions
// (campaign cell launches, which paid at campaign admission, and
// fleet-claim executions) only respect the global depth cap.
func (sc *scheduler) submit(j *Job, charge bool) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tn := sc.tenantLocked(j.tenant)
	if charge {
		if tn.limits.Backlog > 0 && tn.queued >= tn.limits.Backlog {
			tn.limitedBacklog++
			return &tenantLimitedError{tenant: tn.name, reason: "backlog", retryAfter: time.Second}
		}
		if ra, ok := tn.chargeTokens(sc.now(), 1); !ok {
			tn.limitedRate++
			return &tenantLimitedError{tenant: tn.name, reason: "rate", retryAfter: ra}
		}
	}
	if sc.depthCap > 0 && sc.queued >= sc.depthCap {
		return ErrQueueFull
	}
	if charge {
		tn.admitted++
	}
	sc.pushLocked(tn, j)
	return nil
}

// admitCampaign charges a whole campaign's cell count against the
// tenant's bucket at submission time (cells launch uncharged later).
func (sc *scheduler) admitCampaign(tenantName string, cells int) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tn := sc.tenantLocked(tenantName)
	if ra, ok := tn.chargeTokens(sc.now(), cells); !ok {
		tn.limitedRate++
		return &tenantLimitedError{tenant: tn.name, reason: "rate", retryAfter: ra}
	}
	tn.admitted++
	return nil
}

// room reports whether a campaign cell for the tenant would fit right
// now (tenant backlog and global depth both have space). The campaign
// launcher paces on it instead of failing cells.
func (sc *scheduler) room(tenantName string) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tn := sc.tenantLocked(tenantName)
	if tn.limits.Backlog > 0 && tn.queued >= tn.limits.Backlog {
		return false
	}
	return sc.depthCap <= 0 || sc.queued < sc.depthCap
}

// force queues a job unconditionally — the crash-recovery requeue
// path, which must never drop journaled work.
func (sc *scheduler) force(j *Job) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.pushLocked(sc.tenantLocked(j.tenant), j)
}

func (sc *scheduler) pushLocked(tn *tenant, j *Job) {
	p := j.priority
	if p < 0 {
		p = 0
	}
	if p >= numPriorities {
		p = numPriorities - 1
	}
	// A tenant going from idle to busy starts at the current virtual
	// time: it gets its fair share from now on, no credit for idling.
	if tn.queued == 0 && tn.vtime < sc.vnow {
		tn.vtime = sc.vnow
	}
	tn.queues[p] = append(tn.queues[p], j)
	tn.queued++
	sc.queued++
	sc.signal()
}

func (sc *scheduler) signal() {
	select {
	case sc.wake <- struct{}{}:
	default:
	}
}

// pop blocks until a job is available (returning it) or quit closes
// with nothing left to drain (returning false). After quit closes it
// keeps handing out whatever is still queued — the graceful-drain
// contract the old channel gave Shutdown.
func (sc *scheduler) pop(quit <-chan struct{}) (*Job, bool) {
	for {
		sc.mu.Lock()
		j := sc.popLocked()
		more := sc.queued > 0
		sc.mu.Unlock()
		if j != nil {
			if more {
				sc.signal() // other workers may be parked; pass the baton
			}
			return j, true
		}
		select {
		case <-sc.wake:
		case <-quit:
			sc.mu.Lock()
			j := sc.popLocked()
			more := sc.queued > 0
			sc.mu.Unlock()
			if j == nil {
				return nil, false
			}
			if more {
				sc.signal()
			}
			return j, true
		}
	}
}

// popLocked picks the next job: highest non-empty priority class
// first (strict preemption of queued work), then the tenant with the
// smallest WFQ virtual time within that class, ties broken by tenant
// name so dispatch order is deterministic.
func (sc *scheduler) popLocked() *Job {
	for p := numPriorities - 1; p >= 0; p-- {
		var best *tenant
		for _, tn := range sc.tenants {
			if len(tn.queues[p]) == 0 {
				continue
			}
			if best == nil || tn.vtime < best.vtime {
				best = tn
			}
		}
		if best == nil {
			continue
		}
		q := best.queues[p]
		j := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		best.queues[p] = q[:len(q)-1]
		best.queued--
		sc.queued--
		best.dispatched++
		// Virtual-time bookkeeping: service starts at max(global vnow,
		// tenant vtime) and costs 1/weight, so heavier tenants advance
		// slower and drain proportionally more often.
		start := best.vtime
		if sc.vnow > start {
			start = sc.vnow
		}
		sc.vnow = start
		best.vtime = start + 1/float64(best.weight())
		return j
	}
	return nil
}

// remove drops a still-queued job (client cancel) so its backlog slot
// frees immediately instead of at dispatch. Reports whether the job
// was found.
func (sc *scheduler) remove(j *Job) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tn, ok := sc.byName[j.tenant]
	if !ok {
		return false
	}
	for p := range tn.queues {
		for i, q := range tn.queues[p] {
			if q == j {
				tn.queues[p] = append(tn.queues[p][:i], tn.queues[p][i+1:]...)
				tn.queued--
				sc.queued--
				return true
			}
		}
	}
	return false
}

// promote moves a queued job into a higher priority class (a
// deduplicated identical submission at higher priority lifts the
// in-flight job rather than waiting behind bulk work). Placement only;
// the job's recorded spec keeps the original submitter's class.
func (sc *scheduler) promote(j *Job, priority int) bool {
	if priority <= j.priority || priority >= numPriorities {
		return false
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tn, ok := sc.byName[j.tenant]
	if !ok {
		return false
	}
	for p := 0; p < priority; p++ {
		for i, q := range tn.queues[p] {
			if q == j {
				tn.queues[p] = append(tn.queues[p][:i], tn.queues[p][i+1:]...)
				tn.queues[priority] = append(tn.queues[priority], j)
				return true
			}
		}
	}
	return false
}

// depth reports the total queued count (the /metrics queue gauge).
func (sc *scheduler) depth() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.queued
}

// tenantStat is one tenant's point-in-time admission counters for the
// metrics exposition.
type tenantStat struct {
	Name           string
	Weight         int
	Queued         int
	Admitted       uint64
	LimitedRate    uint64
	LimitedBacklog uint64
	Dispatched     uint64
}

// stats snapshots every tenant in name order.
func (sc *scheduler) stats() []tenantStat {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]tenantStat, 0, len(sc.tenants))
	for _, tn := range sc.tenants {
		out = append(out, tenantStat{
			Name:           tn.name,
			Weight:         tn.weight(),
			Queued:         tn.queued,
			Admitted:       tn.admitted,
			LimitedRate:    tn.limitedRate,
			LimitedBacklog: tn.limitedBacklog,
			Dispatched:     tn.dispatched,
		})
	}
	return out
}

package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeCluster scripts the dispatch backend: it either answers with fixed
// bytes or reports no workers, and counts how often it was asked.
type fakeCluster struct {
	bytes      []byte
	noWorkers  bool
	degraded   bool
	calls      atomic.Int64
	lastTenant atomic.Value // string: tenant of the last dispatch
}

func (f *fakeCluster) Dispatch(ctx context.Context, key, label, tenant string, priority int, spec JobSpec, progress io.Writer) ([]byte, error) {
	f.calls.Add(1)
	f.lastTenant.Store(tenant)
	if f.noWorkers {
		return nil, ErrNoWorkers
	}
	io.WriteString(progress, "remote worker says hello\n")
	return f.bytes, nil
}

func (f *fakeCluster) Stats() ClusterStats {
	return ClusterStats{
		Role:             "coordinator",
		Live:             2,
		Suspect:          1,
		Peers:            []PeerStatus{{URL: "http://peer-b", Reachable: true, LagMs: 12}},
		ClaimsGranted:    9,
		ClaimsCompleted:  5,
		ClaimsFailed:     1,
		ClaimsDuplicate:  2,
		ClaimContention:  1,
		LeaseExpirations: 4,
		HedgesStarted:    3,
		HedgesWon:        2,
		Degraded:         f.degraded,
	}
}

func TestClusterDispatchSeam(t *testing.T) {
	fc := &fakeCluster{bytes: []byte("REMOTE-RESULT")}
	s, ts := newTestServer(t, Config{Workers: 1, Cluster: fc})

	sr, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("job state = %s", st)
	}
	got, _ := j.resultBytes()
	if string(got) != "REMOTE-RESULT" {
		t.Fatalf("job result = %q, want the cluster backend's bytes", got)
	}
	if fc.calls.Load() != 1 {
		t.Fatalf("backend dispatched %d times, want 1", fc.calls.Load())
	}

	// Coordinator metrics expose the fleet and the claim table.
	body, _ := getBody(t, ts.URL+"/metrics")
	for _, line := range []string{
		`slipd_workers{state="live"} 2`,
		`slipd_workers{state="suspect"} 1`,
		`slipd_workers{state="dead"} 0`,
		`slipd_claims_total{outcome="granted"} 9`,
		`slipd_claims_total{outcome="done"} 5`,
		`slipd_claims_total{outcome="failed"} 1`,
		`slipd_claims_total{outcome="duplicate"} 2`,
		`slipd_claim_contention_total 1`,
		`slipd_lease_expirations_total 4`,
		`slipd_hedges_started_total 3`,
		`slipd_hedges_won_total 2`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q", line)
		}
	}

	// /readyz reports the coordinator role and peer replication health.
	ready, status := getBody(t, ts.URL+"/readyz")
	if status != http.StatusOK {
		t.Fatalf("readyz = %d", status)
	}
	for _, want := range []string{`"role":"coordinator"`, `"url":"http://peer-b"`, `"reachable":true`, `"replication_lag_ms":12`} {
		if !strings.Contains(ready, want) {
			t.Errorf("readyz missing %s: %s", want, ready)
		}
	}
}

func TestClusterNoWorkersFallsBackLocally(t *testing.T) {
	fc := &fakeCluster{noWorkers: true, degraded: true}
	s, ts := newTestServer(t, Config{Workers: 1, Cluster: fc})

	sr, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("job state = %s, want done via local fallback (%s)", st, j.snapshot().Error)
	}
	got, _ := j.resultBytes()
	if len(got) == 0 {
		t.Fatal("local fallback produced no result")
	}
	if s.RunsTotal() == 0 {
		t.Fatal("local fallback did not actually execute the simulation")
	}

	body, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "slipd_local_fallbacks_total 1") {
		t.Fatalf("metrics missing local fallback counter:\n%s", body)
	}

	// /readyz stays 200 but carries the degraded flag.
	ready, status := getBody(t, ts.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(ready, `"degraded":true`) {
		t.Fatalf("readyz = %d %s", status, ready)
	}
}

func TestMetricsOmitClusterBlockWithoutBackend(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body, _ := getBody(t, ts.URL+"/metrics")
	if strings.Contains(body, "slipd_workers") || strings.Contains(body, "slipd_claims_total") {
		t.Fatalf("non-coordinator metrics leak cluster gauges:\n%s", body)
	}
	ready, _ := getBody(t, ts.URL+"/readyz")
	if strings.Contains(ready, "degraded") {
		t.Fatalf("non-coordinator readyz carries degraded flag: %s", ready)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// durableCfg returns a config rooted at dir with a tiny retry backoff so
// recovery tests finish fast.
func durableCfg(dir string) Config {
	return Config{Workers: 1, DataDir: dir, RetryBackoff: time.Millisecond}
}

func openDurable(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close() })
	return s, ts
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDurableDoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	a, ats := openDurable(t, durableCfg(dir))
	sr, code := submit(t, ats, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := await(t, a, sr.Job.ID)
	want, _ := j.resultBytes()
	if len(want) == 0 {
		t.Fatalf("job produced no result: %+v", j.snapshot())
	}
	key := j.Key
	shutdown(t, a)

	b, bts := openDurable(t, durableCfg(dir))
	defer shutdown(t, b)

	// Clean restart: the done job is rehydrated — same id, same state,
	// same bytes — and nothing was requeued or re-executed.
	body, code := getBody(t, bts.URL+"/jobs/"+sr.Job.ID)
	if code != http.StatusOK {
		t.Fatalf("GET rehydrated job = %d: %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || !v.Restored {
		t.Fatalf("rehydrated job = %+v, want restored done", v)
	}
	result, code := getBody(t, bts.URL+"/jobs/"+sr.Job.ID+"/result")
	if code != http.StatusOK || !bytes.Equal([]byte(result), want) {
		t.Fatalf("rehydrated result = %d, equal=%v", code, bytes.Equal([]byte(result), want))
	}
	if got := b.RunsTotal(); got != 0 {
		t.Fatalf("restart re-executed %d jobs, want 0", got)
	}
	recovered, requeued := b.RecoveryStats()
	if recovered != 1 || requeued != 0 {
		t.Fatalf("recovery stats = %d recovered, %d requeued, want 1/0 (clean shutdown)", recovered, requeued)
	}

	// An identical submission is answered from the (disk-backed) cache.
	sr2, code := submit(t, bts, runSpecBody)
	if code != http.StatusCreated || !sr2.Cached {
		t.Fatalf("resubmit after restart = %d cached=%v, want cached hit", code, sr2.Cached)
	}

	// And the resume-by-key endpoint serves the same bytes.
	byKey, code := getBody(t, bts.URL+"/results/"+key)
	if code != http.StatusOK || !bytes.Equal([]byte(byKey), want) {
		t.Fatalf("GET /results/{key} = %d", code)
	}
}

// fabricateJournal writes records as a crashed slipd would have left
// them — the only way to simulate a SIGKILL inside a unit test.
func fabricateJournal(t *testing.T, dir string, recs ...store.Record) {
	t.Helper()
	jn, _, err := store.Open(dir+"/journal", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := jn.Append(r, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(runSpecBody)
	fabricateJournal(t, dir,
		store.Record{Job: "job-7", State: string(StateQueued), Attempts: 1, Spec: spec},
		store.Record{Job: "job-7", State: string(StateRunning), Attempts: 1},
	)

	s, ts := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	_, requeued := s.RecoveryStats()
	if requeued != 1 {
		t.Fatalf("requeued = %d, want 1", requeued)
	}
	j := await(t, s, "job-7")
	v := j.snapshot()
	if v.State != StateDone || v.Attempts != 2 || !v.Restored {
		t.Fatalf("requeued job settled as %+v, want restored done with attempts 2", v)
	}
	if s.RunsTotal() != 1 {
		t.Fatalf("runs = %d, want exactly 1 (the retry)", s.RunsTotal())
	}

	// The re-run's bytes match a fresh, uninterrupted run of the same
	// spec — determinism is what makes at-least-once safe.
	fresh := New(Config{Workers: 1})
	defer func() { shutdown(t, fresh) }()
	fts := httptest.NewServer(fresh.Handler())
	defer fts.Close()
	fsr, _ := submit(t, fts, runSpecBody)
	fj := await(t, fresh, fsr.Job.ID)
	wantBytes, _ := fj.resultBytes()
	gotBytes, _ := j.resultBytes()
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("recovered result differs from uninterrupted run:\n%s\nvs\n%s", gotBytes, wantBytes)
	}

	// Metrics surface the recovery counters.
	metricsBody, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"slipd_jobs_requeued_total 1",
		"slipd_retries_total 1",
		"slipd_journal_bytes",
		"slipd_store_hits_total",
		"slipd_store_misses_total",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDurableRetryBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	fabricateJournal(t, dir,
		store.Record{Job: "job-3", State: string(StateRunning), Attempts: 3, Spec: json.RawMessage(runSpecBody)},
	)
	s, _ := openDurable(t, durableCfg(dir)) // MaxAttempts defaults to 3
	j := await(t, s, "job-3")
	v := j.snapshot()
	if v.State != StateFailed || !strings.Contains(v.Error, "retry budget exhausted") {
		t.Fatalf("budget-exhausted job = %+v, want permanent failure", v)
	}
	if s.RunsTotal() != 0 {
		t.Fatalf("budget-exhausted job still ran (%d runs)", s.RunsTotal())
	}
	shutdown(t, s)

	// The permanent failure was journaled: the next start must not
	// resurrect the job.
	s2, _ := openDurable(t, durableCfg(dir))
	defer shutdown(t, s2)
	if _, requeued := s2.RecoveryStats(); requeued != 0 {
		t.Fatalf("permanently failed job was requeued again")
	}
	if st := s2.jobs["job-3"].stateNow(); st != StateFailed {
		t.Fatalf("job-3 after second restart = %s", st)
	}
}

func TestDurableMissingResultFileRequeues(t *testing.T) {
	dir := t.TempDir()
	// A done record whose bytes never made it to the result store (or
	// were wiped): replay degrades it to a requeue instead of serving a
	// result it does not have.
	fabricateJournal(t, dir,
		store.Record{Job: "job-2", Key: strings.Repeat("ab", 32), State: string(StateDone), Attempts: 1, Spec: json.RawMessage(runSpecBody)},
	)
	s, _ := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	j := await(t, s, "job-2")
	if v := j.snapshot(); v.State != StateDone || v.Attempts != 2 {
		t.Fatalf("job with lost result = %+v, want re-run done with attempts 2", v)
	}
	if s.RunsTotal() != 1 {
		t.Fatalf("runs = %d, want 1", s.RunsTotal())
	}
}

func TestDurableUnreplayableSpecFailsPermanently(t *testing.T) {
	dir := t.TempDir()
	fabricateJournal(t, dir,
		store.Record{Job: "job-4", State: string(StateQueued), Attempts: 1, Spec: json.RawMessage(`{"kind":"no-such-kind"}`)},
		store.Record{Job: "job-5", State: string(StateQueued), Attempts: 1}, // no spec at all
	)
	s, _ := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	for _, id := range []string{"job-4", "job-5"} {
		j := await(t, s, id)
		if v := j.snapshot(); v.State != StateFailed || !strings.Contains(v.Error, "unreplayable spec") {
			t.Fatalf("%s = %+v, want unreplayable-spec failure", id, v)
		}
	}
	if s.RunsTotal() != 0 {
		t.Fatalf("unreplayable specs ran anyway")
	}
}

func TestDurableCancelledJobStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	fabricateJournal(t, dir,
		store.Record{Job: "job-6", State: "cancelled", Error: "cancelled by client", Attempts: 1, Spec: json.RawMessage(runSpecBody)},
	)
	s, _ := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	j := await(t, s, "job-6")
	if v := j.snapshot(); v.State != StateFailed || v.Error != "cancelled by client" {
		t.Fatalf("cancelled job rehydrated as %+v", v)
	}
	if _, requeued := s.RecoveryStats(); requeued != 0 {
		t.Fatalf("cancelled job was requeued")
	}
}

func TestDurableNextIDSkipsRehydratedJobs(t *testing.T) {
	dir := t.TempDir()
	fabricateJournal(t, dir,
		store.Record{Job: "job-41", State: "cancelled", Error: "x", Spec: json.RawMessage(runSpecBody)},
	)
	s, ts := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	sr, _ := submit(t, ts, runSpecBody)
	if sr.Job.ID != "job-42" {
		t.Fatalf("new job id = %s, want job-42 (past the journaled ids)", sr.Job.ID)
	}
}

func TestReadyzAndHealthz(t *testing.T) {
	s, ts := openDurable(t, durableCfg(t.TempDir()))
	for _, ep := range []string{"/healthz", "/readyz"} {
		if body, code := getBody(t, ts.URL+ep); code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", ep, code, body)
		}
	}
	shutdown(t, s)
	for _, ep := range []string{"/healthz", "/readyz"} {
		if _, code := getBody(t, ts.URL+ep); code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s after shutdown = %d, want 503", ep, code)
		}
	}
}

func TestReadyzFalseBeforeReplayFinishes(t *testing.T) {
	// White-box: a server whose ready flag is unset (mid-replay) must
	// refuse readiness even though it answers liveness.
	s, ts := openDurable(t, durableCfg(t.TempDir()))
	defer shutdown(t, s)
	s.ready.Store(false)
	if _, code := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz mid-replay = %d, want 503", code)
	}
	if _, code := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("GET /healthz mid-replay = %d, want 200 (liveness)", code)
	}
	s.ready.Store(true)
}

func TestResultByKeyEndpoint(t *testing.T) {
	s, ts := openDurable(t, durableCfg(t.TempDir()))
	defer shutdown(t, s)
	sr, _ := submit(t, ts, runSpecBody)
	j := await(t, s, sr.Job.ID)
	want, _ := j.resultBytes()

	body, code := getBody(t, ts.URL+"/results/"+j.Key)
	if code != http.StatusOK || !bytes.Equal([]byte(body), want) {
		t.Fatalf("GET /results/{key} = %d", code)
	}
	if _, code := getBody(t, ts.URL+"/results/"+strings.Repeat("00", 32)); code != http.StatusNotFound {
		t.Fatalf("GET /results/{unknown} = %d, want 404", code)
	}
	if _, code := getBody(t, ts.URL+"/results/..%2Fetc"); code == http.StatusOK {
		t.Fatalf("GET /results with a malformed key succeeded")
	}
}

func TestAttemptsInJobViewJSON(t *testing.T) {
	s, ts := openDurable(t, durableCfg(t.TempDir()))
	defer shutdown(t, s)
	sr, _ := submit(t, ts, runSpecBody)
	await(t, s, sr.Job.ID)
	body, _ := getBody(t, ts.URL+"/jobs/"+sr.Job.ID)
	if !strings.Contains(body, `"attempts":1`) {
		t.Fatalf("job view missing attempts: %s", body)
	}
}

func TestMemoryOnlyServerStillServes(t *testing.T) {
	// Without a data dir the durability endpoints still behave: ready,
	// and /results misses cleanly.
	s, ts := newTestServer(t, Config{Workers: 1})
	if _, code := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("memory-only /readyz != 200")
	}
	sr, _ := submit(t, ts, runSpecBody)
	j := await(t, s, sr.Job.ID)
	if _, code := getBody(t, ts.URL+"/results/"+j.Key); code != http.StatusOK {
		t.Fatalf("memory-only /results/{key} after done != 200 (LRU should answer)")
	}
}

// eventsBody reads an entire SSE stream. The stream terminating at all
// is part of what these tests assert: a job whose broker is never closed
// would stream forever, and the client timeout turns that hang into a
// loud failure.
func eventsBody(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("events stream never terminated: %v", err)
	}
	return string(b)
}

// Regression: a journal-rehydrated terminal job must serve a terminal
// SSE event, not a stream that never closes.
func TestRestoredJobEventsTerminate(t *testing.T) {
	dir := t.TempDir()
	fabricateJournal(t, dir,
		store.Record{Job: "job-1", Key: strings.Repeat("ab", 32), State: string(StateFailed), Error: "boom", Attempts: 3, Spec: json.RawMessage(runSpecBody)})
	s, ts := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)

	body := eventsBody(t, ts, "job-1")
	if !strings.Contains(body, "event: state") || !strings.Contains(body, "data: failed") {
		t.Fatalf("restored job events missing terminal state:\n%s", body)
	}
}

// Regression: a submission answered from the result cache materializes a
// done job that never runs — its event stream must still terminate.
func TestCachedSubmissionEventsTerminate(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr, _ := submit(t, ts, runSpecBody)
	await(t, s, sr.Job.ID)

	sr2, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated || !sr2.Cached {
		t.Fatalf("second submit: code=%d cached=%v", code, sr2.Cached)
	}
	body := eventsBody(t, ts, sr2.Job.ID)
	if !strings.Contains(body, "event: state") || !strings.Contains(body, "data: done") {
		t.Fatalf("cached job events missing terminal state:\n%s", body)
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// submitAs posts a job with an API key and returns the raw response
// plus the decoded body (when 2xx).
func submitAs(t *testing.T, ts *httptest.Server, key, body string) (*http.Response, submitResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, sr
}

func specWithNodes(nodes int, priority string) string {
	if priority == "" {
		return fmt.Sprintf(`{"kind":"run","kernel":"CG","nodes":%d}`, nodes)
	}
	return fmt.Sprintf(`{"kind":"run","kernel":"CG","nodes":%d,"priority":%q}`, nodes, priority)
}

// TestTenantRateLimit429: a tenant past its token bucket gets 429 with
// a Retry-After header, while another tenant keeps submitting — and the
// response is distinct from the global 503 shed path.
func TestTenantRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{
			{Name: "metered", Key: "sk-metered", TenantLimits: TenantLimits{Rate: 0.001, Burst: 2}},
		},
	})
	for i := 0; i < 2; i++ {
		resp, _ := submitAs(t, ts, "sk-metered", specWithNodes(2+i, ""))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("burst submission %d = %d", i, resp.StatusCode)
		}
	}
	resp, _ := submitAs(t, ts, "sk-metered", specWithNodes(9, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	// Another tenant is unaffected by metered's exhaustion.
	resp, _ = submitAs(t, ts, "sk-other", specWithNodes(10, ""))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant = %d, want 201", resp.StatusCode)
	}
	// The refusal shows up on /metrics as a per-tenant counter.
	body, _ := getBody(t, ts.URL+"/metrics")
	for _, line := range []string{
		`slipd_tenant_limited_total{tenant="metered",reason="rate"} 1`,
		`slipd_tenant_admitted_total{tenant="metered"} 2`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestTenantBacklog429 pins the bounded-backlog refusal: overflow is a
// 429 with Retry-After, not a global 503.
func TestTenantBacklog429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{
			{Name: "bounded", Key: "sk-bounded", TenantLimits: TenantLimits{Backlog: 2}},
		},
	})
	gate := make(chan struct{})
	s.testBeforeRun = func(*Job) { <-gate }
	defer close(gate)

	// One job occupies the worker; two more fill the backlog.
	for i := 0; i < 3; i++ {
		resp, _ := submitAs(t, ts, "sk-bounded", specWithNodes(2+i, ""))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submission %d = %d", i, resp.StatusCode)
		}
	}
	resp, _ := submitAs(t, ts, "sk-bounded", specWithNodes(20, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlog overflow = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("backlog 429 missing Retry-After")
	}
	body, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, `slipd_tenant_limited_total{tenant="bounded",reason="backlog"} 1`) {
		t.Fatalf("metrics missing backlog refusal:\n%s", body)
	}
}

// TestTenantStarvationRegression is the deterministic starvation drill:
// with one worker pinned and a 12-deep batch flood from one tenant, an
// interactive probe from another tenant is the very next dispatch.
func TestTenantStarvationRegression(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	first := true
	s.testBeforeRun = func(j *Job) {
		mu.Lock()
		order = append(order, j.tenant+"/"+PriorityName(j.priority))
		hold := first
		first = false
		mu.Unlock()
		if hold {
			<-gate // pin the worker so the queue builds up deterministically
		}
	}

	// Plug job, then the flood — all batch, all from the flood tenant.
	plug, _ := submitAs(t, ts, "sk-flood", specWithNodes(2, "batch"))
	if plug.StatusCode != http.StatusCreated {
		t.Fatalf("plug = %d", plug.StatusCode)
	}
	for i := 0; i < 12; i++ {
		resp, _ := submitAs(t, ts, "sk-flood", specWithNodes(3+i, "batch"))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("flood %d = %d", i, resp.StatusCode)
		}
	}
	resp, probe := submitAs(t, ts, "sk-probe", specWithNodes(16, ""))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("probe = %d", resp.StatusCode)
	}
	release()
	j := await(t, s, probe.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("probe state = %s", st)
	}
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	if len(got) < 2 || got[1] != "sk-probe/interactive" {
		t.Fatalf("dispatch order = %v; probe must run immediately after the plug", got)
	}
}

// TestPriorityPreemptionOrdering: within one tenant, an interactive job
// submitted last overtakes every queued batch job.
func TestPriorityPreemptionOrdering(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	first := true
	s.testBeforeRun = func(j *Job) {
		mu.Lock()
		order = append(order, PriorityName(j.priority))
		hold := first
		first = false
		mu.Unlock()
		if hold {
			<-gate
		}
	}

	submitAs(t, ts, "", specWithNodes(2, "batch")) // plug
	for i := 0; i < 5; i++ {
		submitAs(t, ts, "", specWithNodes(3+i, "batch"))
	}
	resp, probe := submitAs(t, ts, "", specWithNodes(16, "interactive"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("probe = %d", resp.StatusCode)
	}
	release()
	await(t, s, probe.Job.ID)
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	if len(got) < 2 || got[1] != "interactive" {
		t.Fatalf("dispatch order = %v; interactive must preempt the queued batch work", got)
	}
}

// TestPriorityNotInCacheKey: the same spec at different priorities maps
// to one cache entry — priority changes when a job runs, not what it
// produces.
func TestPriorityNotInCacheKey(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, first := submitAs(t, ts, "", specWithNodes(4, "interactive"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first = %d", resp.StatusCode)
	}
	await(t, s, first.Job.ID)
	resp, second := submitAs(t, ts, "", specWithNodes(4, "batch"))
	if resp.StatusCode != http.StatusCreated || !second.Cached {
		t.Fatalf("second = %d cached=%v, want cache hit across priorities", resp.StatusCode, second.Cached)
	}
}

// TestDedupPromotesPriority: an interactive submission coalescing onto
// a queued batch job lifts that job ahead of batch work queued before
// it (placement promotion — the job's recorded spec keeps its class).
func TestDedupPromotesPriority(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	first := true
	s.testBeforeRun = func(j *Job) {
		mu.Lock()
		order = append(order, j.ID)
		hold := first
		first = false
		mu.Unlock()
		if hold {
			<-gate
		}
	}

	submitAs(t, ts, "", specWithNodes(2, "batch")) // plug
	_, filler := submitAs(t, ts, "", specWithNodes(8, "batch"))
	respA, a := submitAs(t, ts, "", specWithNodes(7, "batch"))
	if respA.StatusCode != http.StatusCreated {
		t.Fatalf("batch submit = %d", respA.StatusCode)
	}
	respB, b := submitAs(t, ts, "", specWithNodes(7, "interactive"))
	if respB.StatusCode != http.StatusOK || !b.Dedup || b.Job.ID != a.Job.ID {
		t.Fatalf("dedup submit = %d dedup=%v id=%s/%s", respB.StatusCode, b.Dedup, b.Job.ID, a.Job.ID)
	}
	release()
	await(t, s, filler.Job.ID)
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	// Without promotion the order would be plug, filler, a.
	if len(got) != 3 || got[1] != a.Job.ID || got[2] != filler.Job.ID {
		t.Fatalf("dispatch order = %v; promoted job %s must overtake filler %s", got, a.Job.ID, filler.Job.ID)
	}
}

// TestTenantMetricsAndJobView: tenant identity lands on the job view
// and the tenant gauge series appear on /metrics.
func TestTenantMetricsAndJobView(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "acme", Key: "sk-acme", TenantLimits: TenantLimits{Weight: 4}}},
	})
	resp, sr := submitAs(t, ts, "sk-acme", runSpecBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if sr.Job.Tenant != "acme" {
		t.Fatalf("job view tenant = %q", sr.Job.Tenant)
	}
	await(t, s, sr.Job.ID)
	body, _ := getBody(t, ts.URL+"/metrics")
	for _, line := range []string{
		`slipd_tenant_weight{tenant="acme"} 4`,
		`slipd_tenant_dispatched_total{tenant="acme"} 1`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q\n%s", line, body)
		}
	}
}

package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := newLRUCache(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", got)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newLRUCache(10)
	c.Put("a", []byte("aaaa")) // 4
	c.Put("b", []byte("bbbb")) // 8
	// Touch a so b is the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("cccc")) // 12 > 10: evict b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c (just inserted) was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newLRUCache(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a much longer value"))
	v, ok := c.Get("k")
	if !ok || string(v) != "a much longer value" {
		t.Fatalf("Get(k) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("a much longer value")) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := newLRUCache(4)
	c.Put("big", []byte("too large to fit"))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized value was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Evictions != 0 {
		t.Fatalf("oversized Put should be a no-op, stats = %+v", st)
	}
}

func TestCacheZeroBudgetDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-budget cache stored a value")
	}
}

func TestCacheBudgetHeldUnderChurn(t *testing.T) {
	c := newLRUCache(64)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 16))
	}
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.Budget)
	}
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4 (64/16)", st.Entries)
	}
	if st.Evictions != 96 {
		t.Fatalf("evictions = %d, want 96", st.Evictions)
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/store"
)

// Durability: with Config.DataDir set, every job transition is recorded
// in a write-ahead journal and every completed result is written to a
// disk-backed content-addressed store before the in-memory LRU sees it.
// On startup the journal is replayed: terminal jobs are rehydrated (done
// jobs pick their bytes back up from the result store), and jobs that
// were queued or running when the process died are requeued under a
// bounded retry budget with exponential backoff. This is sound for the
// same reason the result cache is sound — every simulation is
// deterministic and side-effect-free, so at-least-once re-execution is
// idempotent and equal cache keys always name equal bytes.

// journalStateCancelled marks a client cancellation in the journal; it
// folds back to StateFailed on replay (the job never ran to completion).
const journalStateCancelled = "cancelled"

// maxRequeueBackoff caps the exponential backoff between crash-recovery
// requeues.
const maxRequeueBackoff = 30 * time.Second

// Open builds a Server, replaying the journal under cfg.DataDir when one
// is configured, and starts its workers. New is the in-memory
// convenience wrapper; this is the constructor the daemon uses.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newLRUCache(cfg.CacheBytes),
		metrics:   newMetrics(),
		jobs:      map[string]*Job{},
		inflight:  map[string]*Job{},
		campaigns: map[string]*campaign{},
		sched:     newScheduler(cfg, time.Now),
		quit:      make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if cfg.DataDir != "" {
		rs, err := store.OpenResults(filepath.Join(cfg.DataDir, "results"))
		if err != nil {
			return nil, fmt.Errorf("open result store: %w", err)
		}
		s.store = rs
		jn, recs, err := store.Open(filepath.Join(cfg.DataDir, "journal"), 0)
		if err != nil {
			return nil, fmt.Errorf("open journal: %w", err)
		}
		s.journal = jn
		s.replay(recs)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.ready.Store(true)
	return s, nil
}

// replay folds the journal back into live state: terminal jobs
// rehydrate, interrupted jobs requeue (or exhaust their retry budget and
// settle as failed). Runs before the workers start and before the
// handler is reachable, so /readyz turning 200 means replay is complete.
func (s *Server) replay(recs []store.Record) {
	// Jobs first, then campaigns: a campaign rebuild reattaches to the
	// requeued jobs (via the in-flight index) and the cache entries the
	// job pass restored.
	var campRecs, cellRecs []store.Record
	for _, r := range recs {
		if r.Campaign != "" && r.Job == r.Campaign {
			campRecs = append(campRecs, r)
			continue
		}
		if r.Campaign != "" && strings.HasPrefix(r.Job, r.Campaign+"/") {
			cellRecs = append(cellRecs, r)
			continue
		}
		s.noteJobID(r.Job)
		switch r.State {
		case string(StateDone):
			s.rehydrateDone(r)
		case string(StateFailed), journalStateCancelled:
			s.restoreTerminal(r, StateFailed, r.Error, nil)
		default: // queued, running, or anything a future version wrote
			s.requeue(r)
		}
	}
	s.rebuildCampaigns(campRecs, cellRecs)
}

// noteJobID keeps nextID ahead of every journaled id so new submissions
// never collide with rehydrated jobs.
func (s *Server) noteJobID(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// rehydrateDone restores a completed job, pulling its bytes from the
// result store. A done record whose bytes are gone (store wiped, partial
// copy) degrades to a requeue — determinism makes the re-run produce the
// same result the record promised.
func (s *Server) rehydrateDone(r store.Record) {
	bytes, ok, err := s.store.Get(r.Key)
	if err != nil {
		s.metrics.journalError()
	}
	if !ok {
		s.requeue(r)
		return
	}
	s.cache.Put(r.Key, bytes)
	s.restoreTerminal(r, StateDone, "", bytes)
}

// restoreTerminal registers a journaled job already in a terminal state.
func (s *Server) restoreTerminal(r store.Record, st State, errMsg string, result []byte) {
	var spec JobSpec
	if len(r.Spec) > 0 {
		json.Unmarshal(r.Spec, &spec) // best-effort: the view shows what survived
	}
	j := newJob(r.Job, r.Key, spec, st)
	j.restored = true
	j.tenant = r.Tenant
	j.priority = PriorityValue(r.Priority)
	j.campaign = r.Campaign
	j.cell = r.Cell
	if r.Attempts > 0 {
		j.attempts = r.Attempts
	}
	j.cached = r.Cached
	j.result = result
	j.errMsg = errMsg
	close(j.done)
	j.broker.close()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.metrics.jobRestored(st, false)
}

// requeue puts a crash-interrupted job back on the queue, charging its
// retry budget. Budget exhaustion and unreplayable specs settle the job
// as permanently failed — journaled, so the next restart doesn't retry
// it again.
func (s *Server) requeue(r store.Record) {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	next := attempts + 1

	fail := func(msg string) {
		s.restoreTerminal(r, StateFailed, msg, nil)
		s.journalAppend(store.Record{Job: r.Job, Key: r.Key, State: string(StateFailed), Error: msg, Attempts: attempts}, true)
	}
	if next > s.cfg.MaxAttempts {
		fail(fmt.Sprintf("crash-recovery retry budget exhausted after %d attempts", attempts))
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(r.Spec, &spec); err != nil {
		fail(fmt.Sprintf("unreplayable spec: %v", err))
		return
	}
	c, err := compile(spec)
	if err != nil {
		fail(fmt.Sprintf("unreplayable spec: %v", err))
		return
	}
	// Re-derive the key under the current code version: if the version
	// was bumped between restarts, the re-run must cache under the new
	// truth, not the old record's.
	key, err := c.cacheKey(s.cfg.Version)
	if err != nil {
		fail(fmt.Sprintf("unreplayable spec: %v", err))
		return
	}

	j := newJob(r.Job, key, c.spec, StateQueued)
	j.restored = true
	j.attempts = next
	j.tenant = r.Tenant
	j.priority = c.priority
	j.campaign = r.Campaign
	j.cell = r.Cell
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.inflight[key] = j
	s.metrics.jobRestored(StateQueued, true)
	s.journalAppend(store.Record{Job: j.ID, Key: key, State: string(StateQueued), Attempts: next, Spec: specJSON(c.spec), Tenant: r.Tenant, Priority: PriorityName(c.priority), Campaign: r.Campaign, Cell: r.Cell}, false)

	// Exponential backoff between requeues: the first retry waits one
	// base delay, each further attempt doubles it.
	delay := s.cfg.RetryBackoff << (next - 2)
	if delay > maxRequeueBackoff || delay <= 0 {
		delay = maxRequeueBackoff
	}
	go s.enqueueAfter(j, delay)
}

// enqueueAfter hands a requeued job to the workers after its backoff
// delay. A shutdown (or a client cancel) during the wait abandons the
// hand-off; the job's journaled queued record makes the *next* start
// requeue it instead.
func (s *Server) enqueueAfter(j *Job, delay time.Duration) {
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.quit:
			return
		case <-j.done:
			return
		}
	}
	select {
	case <-s.quit:
		return
	case <-j.done:
		return
	default:
	}
	// Unconditional: journaled work must never be dropped by admission
	// limits — the budget that bounds it is MaxAttempts.
	s.sched.force(j)
}

// journalAppend records a transition, degrading gracefully on write
// errors: the daemon keeps serving from memory and the failure is
// visible in slipd_journal_errors_total.
func (s *Server) journalAppend(r store.Record, sync bool) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(r, sync); err != nil {
		s.metrics.journalError()
	}
}

// specJSON renders a normalized spec for a journal record.
func specJSON(spec JobSpec) json.RawMessage {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil
	}
	return b
}

// cacheGet is the tiered result lookup: memory LRU first, then the disk
// store (a disk hit re-populates the LRU — eviction only ever drops
// bytes from RAM, the disk copy is permanent).
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if b, ok := s.cache.Get(key); ok {
		return b, true
	}
	if s.store == nil {
		return nil, false
	}
	b, ok, err := s.store.Get(key)
	if err != nil {
		s.metrics.journalError()
		return nil, false
	}
	if !ok {
		return nil, false
	}
	s.cache.Put(key, b)
	return b, true
}

// cachePut writes through: disk first (so a crash after the put still
// has the bytes), then the LRU.
func (s *Server) cachePut(key string, val []byte) {
	if s.store != nil {
		if err := s.store.Put(key, val); err != nil {
			s.metrics.journalError()
		}
	}
	s.cache.Put(key, val)
}

// StoreResult lands externally produced result bytes in the tiered
// cache (disk store first, then the LRU). It implements the cluster
// package's ResultSink: a coordinator that learns a claim's outcome —
// from a worker's report or from peer replication — stores the bytes
// here so it can serve GET /results/{key} itself. Safe for any caller
// because keys are content-addressed: equal key, equal bytes.
func (s *Server) StoreResult(key string, result []byte) error {
	if !store.ValidKey(key) {
		return fmt.Errorf("invalid result key %q", key)
	}
	s.cachePut(key, result)
	return nil
}

// LoadResult is the read side of the same seam (the cluster package's
// ResultSource): a coordinator restarting over a claims journal asks
// the tiered cache for the payloads its replayed done entries lost.
func (s *Server) LoadResult(key string) ([]byte, bool) {
	if !store.ValidKey(key) {
		return nil, false
	}
	return s.cacheGet(key)
}

// closePersistence compacts and closes the journal on shutdown. After a
// clean drain every job is terminal, so the compacted journal replays
// with zero requeues.
func (s *Server) closePersistence() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Compact(); err != nil {
		s.metrics.journalError()
	}
	if err := s.journal.Close(); err != nil {
		s.metrics.journalError()
	}
}

// durabilityStats snapshots the journal/store gauges for /metrics.
func (s *Server) durabilityStats() durabilityStats {
	var d durabilityStats
	if s.journal != nil {
		d.JournalBytes = s.journal.Size()
	}
	if s.store != nil {
		d.StoreHits, d.StoreMisses = s.store.Stats()
	}
	return d
}

// handleReady is the readiness probe: 200 only after journal replay
// finished and while the server is accepting work. Liveness stays on
// /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("replaying journal"))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
		return
	}
	resp := map[string]any{"status": "ready"}
	// A coordinator is still ready with zero workers — it executes jobs
	// locally — but the degraded flag tells operators the fleet is gone
	// (or a peer coordinator has stopped taking replication).
	if cs := s.clusterStats(); cs != nil {
		resp["degraded"] = cs.Degraded
		resp["role"] = cs.Role
		if cs.Peers != nil {
			resp["peers"] = cs.Peers
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResultByKey serves a result straight from the content-addressed
// store (memory or disk). This is the resume path: a client that
// remembers its cache key can pick its result up after a server restart
// without resubmitting.
func (s *Server) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed result key"))
		return
	}
	b, ok := s.cacheGet(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no result for key %s", key))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// RecoveryStats reports how many jobs the startup replay rehydrated in a
// terminal state and how many it requeued (exported for the daemon's
// startup log and the smoke tool; the same numbers are in /metrics).
func (s *Server) RecoveryStats() (recovered, requeued uint64) {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	return s.metrics.recovered, s.metrics.requeued
}

package server

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/npb"
	"repro/internal/omp"
	"repro/internal/synth"
)

// execute runs a compiled spec to completion and renders the same text
// artifacts the CLI tools print. Rendering is fully deterministic (matrix
// order collection, sorted kernels, fixed config order), which is what
// lets the result cache serve these bytes as if the run had happened.
//
// Partial failures fail the job: a suite with cell errors returns an
// error and nothing is cached, so the cache only ever holds complete,
// verified artifacts.
func (s *Server) execute(ctx context.Context, c *compiledSpec, progress io.Writer) ([]byte, error) {
	// A context already dead (job timeout, shutdown) fails every kind up
	// front — including single runs, which cannot observe cancellation
	// mid-simulation.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	opts := c.opts
	opts.Jobs = s.cfg.SuiteJobs

	switch c.spec.Kind {
	case KindRun:
		return s.executeRun(c, &buf)

	case KindStatic:
		suite, err := experiments.RunStaticCtx(ctx, opts, progress)
		if err != nil {
			return nil, err
		}
		if err := suite.Err(); err != nil {
			return nil, err
		}
		suite.Fig2(&buf)
		suite.Fig3(&buf)

	case KindDynamic:
		suite, err := experiments.RunDynamicCtx(ctx, opts, progress)
		if err != nil {
			return nil, err
		}
		if err := suite.Err(); err != nil {
			return nil, err
		}
		suite.Fig4(&buf)
		suite.Fig5(&buf)

	case KindScaling:
		rows, err := experiments.RunScalingCtx(ctx, c.spec.Kernel, c.spec.NodeCounts,
			c.scale, s.cfg.SuiteJobs, *c.spec.Verify, progress)
		if err != nil {
			return nil, err
		}
		experiments.PrintScaling(c.spec.Kernel, rows, &buf)

	case KindTokens:
		rows, err := experiments.RunTokenSweepCtx(ctx, c.spec.Kernel, c.spec.Nodes,
			c.scale, c.spec.TokenCounts, s.cfg.SuiteJobs, *c.spec.Verify, progress)
		if err != nil {
			return nil, err
		}
		experiments.PrintTokenSweep(c.spec.Kernel, rows, &buf)

	case KindChaos:
		suite, err := experiments.RunChaosCtx(ctx, opts, *c.faults, c.chaosRates, progress)
		if err != nil {
			return nil, err
		}
		if err := suite.Err(); err != nil {
			return nil, err
		}
		s.metrics.addFaults(suite.TotalFaults(), suite.TotalRecoveries())
		suite.Curves(&buf)

	case KindTasks:
		suite, err := experiments.RunTasksCtx(ctx, opts, c.spec.NodeCounts, c.spec.Cutoffs, progress)
		if err != nil {
			return nil, err
		}
		if err := suite.Err(); err != nil {
			return nil, err
		}
		suite.Table(&buf)

	case KindCharacterize:
		rows, err := experiments.CharacterizeCtx(ctx, c.spec.Nodes, synth.DefaultParams(),
			s.cfg.SuiteJobs, progress)
		if err != nil {
			return nil, err
		}
		experiments.PrintCharacterization(rows, &buf)

	default:
		return nil, fmt.Errorf("unexecutable kind %q", c.spec.Kind)
	}
	return buf.Bytes(), nil
}

// executeRun performs a single kernel run. A single cell cannot be
// usefully interrupted mid-simulation (cancellation is observed between
// cells everywhere else), so it takes no context.
func (s *Server) executeRun(c *compiledSpec, buf *bytes.Buffer) ([]byte, error) {
	k, err := npb.ByName(c.spec.Kernel)
	if err != nil {
		return nil, err
	}
	p := *c.opts.Params
	cfg := omp.Config{
		Machine:        p,
		Mode:           c.mode,
		Slipstream:     c.sync,
		SelfInvalidate: c.spec.SelfInvalidate,
		Sched:          c.sched,
		Chunk:          c.spec.Chunk,
		Faults:         c.faults,
	}
	if cfg.Chunk == 0 && cfg.Sched != omp.Static {
		cfg.Chunk = k.ChunkFor(c.scale, p.Nodes)
	}
	name := fmt.Sprintf("%s/%s/%s", c.spec.Mode, c.spec.Sched, cfg.Slipstream)
	r, err := experiments.RunOne(k, name, cfg, c.scale, *c.spec.Verify)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(buf, "%s %s\n", r.Kernel, r.Size)
	fmt.Fprintf(buf, "config:     %s\n", r.Config)
	fmt.Fprintf(buf, "cycles:     %d (%.3f ms simulated at %.1f GHz)\n",
		r.Wall, float64(r.Wall)/(p.ClockGHz*1e6), p.ClockGHz)
	fmt.Fprintf(buf, "breakdown:  %s\n", r.Breakdown.String())
	if c.faults != nil {
		s.metrics.addFaults(r.Faults, r.Recoveries)
		fmt.Fprintf(buf, "faults:     %d injected (plan %s)\n", r.Faults, c.faults.String())
	}
	if c.spec.Mode == "slipstream" {
		fmt.Fprintf(buf, "recoveries: %d\nshared-request classification:\n%s\n", r.Recoveries, r.Class.String())
	}
	if *c.spec.Verify {
		fmt.Fprintln(buf, "verification: PASSED (matches serial reference)")
	}
	return buf.Bytes(), nil
}
